package xt910_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"xt910"
	"xt910/isa"
)

// The public-API tests exercise the facade exactly the way examples and
// downstream users do.

const apiProgram = `
_start:
    li   a0, 0
    li   t0, 64
loop:
    add  a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    li   a7, 93
    ecall
`

func TestPublicAPIRoundTrip(t *testing.T) {
	sys, err := xt910.NewSystem(xt910.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sys.LoadAssembly(apiProgram, xt910.AsmOptions{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000_000)
	if !sys.AllHalted() {
		t.Fatal("system did not halt")
	}
	want := 64 * 65 / 2
	h := sys.Hart(0)
	if h.ExitCode() != want {
		t.Fatalf("exit = %d, want %d", h.ExitCode(), want)
	}
	if h.Stats().IPC() <= 0 {
		t.Fatal("stats empty")
	}
	if h.Reg(isa.A0) != uint64(want) {
		t.Fatal("register readback")
	}

	// the emulator must agree
	m := xt910.NewEmulator(prog)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != want {
		t.Fatalf("emulator exit = %d", m.ExitCode)
	}
}

func TestPublicConfigs(t *testing.T) {
	for _, cfg := range []xt910.CoreConfig{
		xt910.XT910Core(), xt910.U74Core(), xt910.A73Core(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestPublicMultiCore(t *testing.T) {
	cfg := xt910.DefaultConfig()
	cfg.CoresPerCluster = 2
	sys, err := xt910.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := `
_start:
    csrr a0, mhartid
    li   a7, 93
    ecall
`
	if _, err := sys.LoadAssembly(src, xt910.AsmOptions{Base: 0x1000}); err != nil {
		t.Fatal(err)
	}
	sys.Run(100000)
	if sys.Harts() != 2 {
		t.Fatalf("Harts() = %d, want 2", sys.Harts())
	}
	for i := 0; i < sys.Harts(); i++ {
		h := sys.Hart(i)
		if h.ID() != i {
			t.Fatalf("Hart(%d).ID() = %d", i, h.ID())
		}
		if h.ExitCode() != i {
			t.Fatalf("hart %d exit = %d, want the hart id", i, h.ExitCode())
		}
	}
}

func TestAssembleErrorsSurface(t *testing.T) {
	if _, err := xt910.Assemble("bogus a0", xt910.AsmOptions{}); err == nil {
		t.Fatal("expected assembly error")
	}
	cfg := xt910.DefaultConfig()
	cfg.CoresPerCluster = 3
	if _, err := xt910.NewSystem(cfg); err == nil {
		t.Fatal("expected Table I validation error")
	}
}

const spinForever = `
_start:
loop:
    j loop
`

func TestRunContext(t *testing.T) {
	newSys := func(t *testing.T, src string) *xt910.System {
		t.Helper()
		sys, err := xt910.NewSystem(xt910.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if src != "" {
			if _, err := sys.LoadAssembly(src, xt910.AsmOptions{Base: 0x1000}); err != nil {
				t.Fatal(err)
			}
		}
		return sys
	}

	t.Run("halts cleanly", func(t *testing.T) {
		sys := newSys(t, apiProgram)
		cycles, err := sys.RunContext(context.Background(), 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if cycles == 0 || !sys.AllHalted() {
			t.Fatalf("cycles=%d halted=%v", cycles, sys.AllHalted())
		}
		if sys.Hart(0).ExitCode() != 64*65/2 {
			t.Fatalf("exit = %d", sys.Hart(0).ExitCode())
		}
	})

	t.Run("no program loaded", func(t *testing.T) {
		sys := newSys(t, "")
		_, err := sys.RunContext(context.Background(), 1000)
		if !errors.Is(err, xt910.ErrNoProgram) {
			t.Fatalf("want ErrNoProgram, got %v", err)
		}
	})

	t.Run("cycle budget exhausted", func(t *testing.T) {
		sys := newSys(t, spinForever)
		cycles, err := sys.RunContext(context.Background(), 10_000)
		if !errors.Is(err, xt910.ErrDidNotHalt) {
			t.Fatalf("want ErrDidNotHalt, got %v", err)
		}
		if cycles != 10_000 {
			t.Fatalf("cycles = %d, want the full budget", cycles)
		}
	})

	t.Run("cancelled before start", func(t *testing.T) {
		sys := newSys(t, spinForever)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := sys.RunContext(ctx, 1_000_000)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	})

	t.Run("deadline mid-run", func(t *testing.T) {
		sys := newSys(t, spinForever)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		cycles, err := sys.RunContext(ctx, 1<<62)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want DeadlineExceeded, got %v", err)
		}
		if cycles == 0 {
			t.Fatal("the run must make progress before the deadline lands")
		}
		// the machine remains inspectable and resumable after cancellation
		if sys.AllHalted() {
			t.Fatal("spin loop cannot have halted")
		}
		if n := sys.Run(5_000); n != 5_000 {
			t.Fatalf("resume after cancel ran %d cycles, want 5000", n)
		}
	})

	t.Run("Run wrapper unchanged", func(t *testing.T) {
		sys := newSys(t, apiProgram)
		if sys.Run(1_000_000) == 0 || !sys.AllHalted() {
			t.Fatal("legacy Run must still drive the machine")
		}
	})
}

func TestTypedErrors(t *testing.T) {
	cfg := xt910.DefaultConfig()
	cfg.CoresPerCluster = 3
	_, err := xt910.NewSystem(cfg)
	if !errors.Is(err, xt910.ErrInvalidConfig) {
		t.Fatalf("want ErrInvalidConfig, got %v", err)
	}
	cfg = xt910.DefaultConfig()
	cfg.L2Ways = 5
	if _, err := xt910.NewSystem(cfg); !errors.Is(err, xt910.ErrInvalidConfig) {
		t.Fatalf("want ErrInvalidConfig for bad L2 ways, got %v", err)
	}
	// sentinels are distinct
	for _, pair := range [][2]error{
		{xt910.ErrInvalidConfig, xt910.ErrNoProgram},
		{xt910.ErrNoProgram, xt910.ErrDidNotHalt},
		{xt910.ErrDidNotHalt, xt910.ErrInvalidConfig},
	} {
		if errors.Is(pair[0], pair[1]) {
			t.Fatalf("sentinels alias: %v / %v", pair[0], pair[1])
		}
	}
}

func TestHartIndexValidation(t *testing.T) {
	sys, err := xt910.NewSystem(xt910.DefaultConfig()) // one hart: index 0 only
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LoadAssembly(apiProgram, xt910.AsmOptions{Base: 0x1000}); err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000_000)

	for _, bad := range []int{-1, 1, 64} {
		h := sys.Hart(bad)
		if h.Core() != nil {
			t.Fatalf("Hart(%d).Core() must be nil", bad)
		}
		if got := h.ExitCode(); got != 0 {
			t.Fatalf("Hart(%d).ExitCode() = %d, want 0", bad, got)
		}
		if got := h.Output(); got != nil {
			t.Fatalf("Hart(%d).Output() = %v, want nil", bad, got)
		}
		st := h.Stats()
		if st == nil {
			t.Fatalf("Hart(%d).Stats() must never be nil", bad)
		}
		if st.IPC() != 0 {
			t.Fatalf("Hart(%d).Stats() must be zeroed", bad)
		}
		if got := h.Reg(isa.A0); got != 0 {
			t.Fatalf("Hart(%d).Reg() = %d, want 0", bad, got)
		}
	}
	// the valid hart still reads through
	h := sys.Hart(0)
	if h.Core() == nil || h.ExitCode() != 64*65/2 || h.Stats().IPC() <= 0 {
		t.Fatal("valid hart accessors broken by bounds checking")
	}
	// the deprecated index-parameter wrappers must keep answering through the
	// same handles until they are removed
	if sys.Core(0) != h.Core() || sys.ExitCode(0) != h.ExitCode() ||
		sys.Stats(0).Retired != h.Stats().Retired ||
		sys.Reg(0, isa.A0) != h.Reg(isa.A0) {
		t.Fatal("deprecated wrappers diverge from Hart handles")
	}
	if sys.Core(-1) != nil || sys.ExitCode(99) != 0 || sys.Output(99) != nil ||
		sys.Stats(99) == nil || sys.Reg(99, isa.A0) != 0 {
		t.Fatal("deprecated wrappers lost their bounds degradation")
	}
}
