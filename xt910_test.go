package xt910_test

import (
	"testing"

	"xt910"
	"xt910/isa"
)

// The public-API tests exercise the facade exactly the way examples and
// downstream users do.

const apiProgram = `
_start:
    li   a0, 0
    li   t0, 64
loop:
    add  a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    li   a7, 93
    ecall
`

func TestPublicAPIRoundTrip(t *testing.T) {
	sys, err := xt910.NewSystem(xt910.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sys.LoadAssembly(apiProgram, xt910.AsmOptions{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000_000)
	if !sys.AllHalted() {
		t.Fatal("system did not halt")
	}
	want := 64 * 65 / 2
	if sys.ExitCode(0) != want {
		t.Fatalf("exit = %d, want %d", sys.ExitCode(0), want)
	}
	if sys.Stats(0).IPC() <= 0 {
		t.Fatal("stats empty")
	}
	if sys.Reg(0, isa.A0) != uint64(want) {
		t.Fatal("register readback")
	}

	// the emulator must agree
	m := xt910.NewEmulator(prog)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != want {
		t.Fatalf("emulator exit = %d", m.ExitCode)
	}
}

func TestPublicConfigs(t *testing.T) {
	for _, cfg := range []xt910.CoreConfig{
		xt910.XT910Core(), xt910.U74Core(), xt910.A73Core(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestPublicMultiCore(t *testing.T) {
	cfg := xt910.DefaultConfig()
	cfg.CoresPerCluster = 2
	sys, err := xt910.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := `
_start:
    csrr a0, mhartid
    li   a7, 93
    ecall
`
	if _, err := sys.LoadAssembly(src, xt910.AsmOptions{Base: 0x1000}); err != nil {
		t.Fatal(err)
	}
	sys.Run(100000)
	if sys.ExitCode(0) != 0 || sys.ExitCode(1) != 1 {
		t.Fatalf("hart ids: %d, %d", sys.ExitCode(0), sys.ExitCode(1))
	}
}

func TestAssembleErrorsSurface(t *testing.T) {
	if _, err := xt910.Assemble("bogus a0", xt910.AsmOptions{}); err == nil {
		t.Fatal("expected assembly error")
	}
	cfg := xt910.DefaultConfig()
	cfg.CoresPerCluster = 3
	if _, err := xt910.NewSystem(cfg); err == nil {
		t.Fatal("expected Table I validation error")
	}
}
