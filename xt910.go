// Package xt910 is the public API of the XT-910 processor model: a
// cycle-approximate, value-carrying simulator of the Xuantie-910 (ISCA 2020)
// 12-stage out-of-order RV64GCV core, its vector engine, memory subsystem
// (L1/L2 caches with MOSEI coherence, multi-size TLBs, multi-mode multi-stream
// prefetch) and multi-core/multi-cluster SMP topology, together with the
// assembler and the functional (golden) emulator.
//
// Quick start:
//
//	sys, _ := xt910.NewSystem(xt910.DefaultConfig())
//	prog, _ := xt910.Assemble(src, xt910.AsmOptions{})
//	sys.LoadProgram(prog)
//	sys.Run(10_000_000)
//	h := sys.Hart(0)
//	fmt.Println(h.ExitCode(), h.Stats().IPC())
package xt910

import (
	"context"
	"fmt"
	"io"

	"xt910/internal/asm"
	"xt910/internal/core"
	"xt910/internal/emu"
	"xt910/internal/mem"
	"xt910/internal/soc"
	"xt910/internal/trace"
	"xt910/internal/xterrors"
	"xt910/isa"
)

// Sentinel errors returned (wrapped) by the facade; match with errors.Is.
var (
	// ErrInvalidConfig reports a configuration outside the Table I envelope
	// (returned by NewSystem).
	ErrInvalidConfig = xterrors.ErrInvalidConfig
	// ErrNoProgram reports RunContext called before LoadProgram/LoadAssembly.
	ErrNoProgram = xterrors.ErrNoProgram
	// ErrDidNotHalt reports a run that exhausted its cycle budget with at
	// least one hart still executing (returned by RunContext and the bench
	// harness).
	ErrDidNotHalt = xterrors.ErrDidNotHalt
)

// CoreConfig selects a core microarchitecture; see XT910Core, U74Core and
// A73Core for the paper's three comparison points.
type CoreConfig = core.Config

// XT910Core returns the paper's machine: triple-issue decode, 8-slot
// out-of-order issue, 192-entry ROB, dual-issue OoO LSU, vector engine,
// custom extensions, full prediction and prefetch machinery.
func XT910Core() CoreConfig { return core.XT910Config() }

// U74Core returns the dual-issue in-order comparison core (Fig. 17).
func U74Core() CoreConfig { return core.U74Config() }

// A73Core returns the Cortex-A73-class out-of-order comparison core
// (Figs. 18/19).
func A73Core() CoreConfig { return core.A73Config() }

// Config sizes a full system (cores per cluster, clusters, L2, DRAM).
type Config = soc.Config

// DefaultConfig returns a single-core XT-910 with 1 MB L2 and the paper's
// 200-cycle memory latency.
func DefaultConfig() Config { return soc.DefaultConfig() }

// Stats exposes the per-core performance counters.
type Stats = core.Stats

// Program is an assembled binary image.
type Program = asm.Program

// AsmOptions configures assembly.
type AsmOptions = asm.Options

// Assemble assembles XT-910 assembly source (RV64GCV plus the custom
// extensions, GNU-flavoured syntax).
func Assemble(src string, opts AsmOptions) (*Program, error) {
	return asm.Assemble(src, opts)
}

// System is a simulated XT-910 machine.
type System struct {
	*soc.System
	loaded bool
}

// NewSystem builds a system from cfg (validated against Table I). A rejected
// configuration satisfies errors.Is(err, ErrInvalidConfig); the wrapped
// *core.ConfigError carries the specific Table I bound that failed.
func NewSystem(cfg Config) (*System, error) {
	s, err := soc.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("xt910: %w: %w", ErrInvalidConfig, err)
	}
	return &System{System: s}, nil
}

// LoadProgram loads an assembled image and resets every core to its entry.
func (s *System) LoadProgram(p *Program) {
	s.System.LoadProgram(p)
	s.loaded = true
}

// LoadAssembly assembles src and loads it, resetting all cores to its entry.
func (s *System) LoadAssembly(src string, opts AsmOptions) (*Program, error) {
	p, err := asm.Assemble(src, opts)
	if err != nil {
		return nil, fmt.Errorf("xt910: assemble: %w", err)
	}
	s.LoadProgram(p)
	return p, nil
}

// RunContext steps the machine until every hart halts, maxCycles elapse, or
// ctx is cancelled. It returns the number of cycles simulated along with:
//
//   - nil when every hart reached the host exit syscall;
//   - a ctx error (matching context.Canceled / context.DeadlineExceeded via
//     errors.Is) when the run was cut short — the machine stays inspectable
//     and resumable at the cycle it stopped on;
//   - ErrNoProgram when nothing was loaded;
//   - ErrDidNotHalt when the cycle budget ran out first.
func (s *System) RunContext(ctx context.Context, maxCycles uint64) (uint64, error) {
	if !s.loaded {
		return 0, fmt.Errorf("xt910: run: %w", ErrNoProgram)
	}
	cycles, err := s.System.RunContext(ctx, maxCycles)
	if err != nil {
		return cycles, fmt.Errorf("xt910: run cancelled after %d cycles: %w", cycles, err)
	}
	if !s.AllHalted() {
		return cycles, fmt.Errorf("xt910: %w after %d cycles", ErrDidNotHalt, cycles)
	}
	return cycles, nil
}

// Run steps until every hart halts or maxCycles elapse and returns the number
// of cycles simulated — the pre-context API, kept as a thin wrapper so
// existing callers compile unchanged. Use RunContext for cancellation,
// deadlines and typed errors.
func (s *System) Run(maxCycles uint64) uint64 {
	return s.System.Run(maxCycles)
}

// Hart is a handle on one hardware thread of a System. It is the unit of
// per-hart inspection: a multi-hart program is examined hart by hart rather
// than by threading an index through every System accessor:
//
//	for i := 0; i < sys.Harts(); i++ {
//		h := sys.Hart(i)
//		fmt.Printf("hart %d: exit=%d ipc=%.2f\n", h.ID(), h.ExitCode(), h.Stats().IPC())
//	}
//
// A Hart is a cheap value (copy it freely) and stays valid for the lifetime
// of its System. The handle for an out-of-range index is still usable: every
// accessor degrades to a zero value instead of panicking.
type Hart struct {
	id int
	c  *core.Core
}

// Hart returns the handle for hart i. An out-of-range i yields a degraded
// handle whose accessors return zero values.
func (s *System) Hart(i int) Hart { return Hart{id: i, c: s.hart(i)} }

// Harts returns the number of harts in the system (cores per cluster times
// clusters).
func (s *System) Harts() int { return len(s.Cores) }

// ID returns the hart index this handle was created with.
func (h Hart) ID() int { return h.id }

// Core returns the hart's core model (predictors, caches, MMU, counters), or
// nil for a degraded handle.
func (h Hart) Core() *core.Core { return h.c }

// ExitCode returns the hart's exit status (valid after it halts); 0 for a
// degraded handle.
func (h Hart) ExitCode() int {
	if h.c != nil {
		return h.c.ExitCode
	}
	return 0
}

// Output returns the bytes the hart wrote through the host write syscall;
// nil for a degraded handle.
func (h Hart) Output() []byte {
	if h.c != nil {
		return h.c.Output
	}
	return nil
}

// Stats returns the hart's performance counters; zeroed counters for a
// degraded handle (never nil, so chained calls like Stats().IPC() are always
// safe).
func (h Hart) Stats() *Stats {
	if h.c != nil {
		return &h.c.Stats
	}
	return &Stats{}
}

// Reg reads the hart's architectural register r; 0 for a degraded handle.
func (h Hart) Reg(r isa.Reg) uint64 {
	if h.c != nil {
		return h.c.Reg(r)
	}
	return 0
}

// hart returns hart i's core, or nil when i is out of range — Hart handles
// degrade to zero values instead of panicking on a bad hart index.
func (s *System) hart(i int) *core.Core {
	if i < 0 || i >= len(s.Cores) {
		return nil
	}
	return s.Cores[i]
}

// Core returns hart i's core model, or nil when i is out of range.
//
// Deprecated: use Hart(i).Core().
func (s *System) Core(i int) *core.Core { return s.Hart(i).Core() }

// ExitCode returns hart i's exit status.
//
// Deprecated: use Hart(i).ExitCode().
func (s *System) ExitCode(i int) int { return s.Hart(i).ExitCode() }

// Output returns the bytes hart i wrote through the host write syscall.
//
// Deprecated: use Hart(i).Output().
func (s *System) Output(i int) []byte { return s.Hart(i).Output() }

// Stats returns hart i's performance counters.
//
// Deprecated: use Hart(i).Stats().
func (s *System) Stats(i int) *Stats { return s.Hart(i).Stats() }

// Reg reads hart i's architectural register.
//
// Deprecated: use Hart(i).Reg(r).
func (s *System) Reg(hart int, r isa.Reg) uint64 { return s.Hart(hart).Reg(r) }

// Tracer is the per-hart pipeline observability hook set: per-µop lifecycle
// tracing (Konata/JSONL) plus the always-on top-down CPI stack. Attach one to
// a hart with AttachTracer (inherited from the SoC layer) before running, and
// Close it after the run to flush the sinks:
//
//	t := xt910.NewTracer(xt910.TraceConfig{}, xt910.NewKonataWriter(f))
//	sys.AttachTracer(0, t)
//	sys.Run(budget)
//	t.Close()
//	fmt.Println(t.CPI())
type Tracer = trace.Tracer

// TraceConfig bounds tracer cost: cycle window, sampling, flight-recorder
// depth and the in-flight buffer cap.
type TraceConfig = trace.Config

// CPIStack is the top-down cycle-attribution histogram accumulated by a
// Tracer; its buckets sum exactly to the traced hart's Stats.Cycles.
type CPIStack = trace.CPIStack

// NewTracer builds a tracer feeding the given sinks; with no sinks it still
// accumulates the CPI stack.
func NewTracer(cfg TraceConfig, sinks ...trace.Sink) *Tracer {
	return trace.New(cfg, sinks...)
}

// NewKonataWriter returns a sink streaming the Kanata log format understood
// by the Konata pipeline visualizer.
func NewKonataWriter(w io.Writer) trace.Sink { return trace.NewKonataWriter(w) }

// NewJSONLWriter returns a sink streaming one JSON object per µop.
func NewJSONLWriter(w io.Writer) trace.Sink { return trace.NewJSONLWriter(w) }

// Emulator is the functional golden model (the "instruction accurate
// simulator" of the paper's CDS toolchain, §IX).
type Emulator = emu.Machine

// NewEmulator builds a functional emulator with the program loaded.
func NewEmulator(p *Program) *Emulator {
	m := emu.New(mem.NewMemory())
	p.LoadInto(m.Mem)
	m.PC = p.Entry
	m.X[2] = 0x400000
	return m
}
