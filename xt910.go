// Package xt910 is the public API of the XT-910 processor model: a
// cycle-approximate, value-carrying simulator of the Xuantie-910 (ISCA 2020)
// 12-stage out-of-order RV64GCV core, its vector engine, memory subsystem
// (L1/L2 caches with MOSEI coherence, multi-size TLBs, multi-mode multi-stream
// prefetch) and multi-core/multi-cluster SMP topology, together with the
// assembler and the functional (golden) emulator.
//
// Quick start:
//
//	sys, _ := xt910.NewSystem(xt910.DefaultConfig())
//	prog, _ := xt910.Assemble(src, xt910.AsmOptions{})
//	sys.LoadProgram(prog)
//	sys.Run(10_000_000)
//	fmt.Println(sys.ExitCode(0), sys.Stats(0).IPC())
package xt910

import (
	"xt910/internal/asm"
	"xt910/internal/core"
	"xt910/internal/emu"
	"xt910/internal/mem"
	"xt910/internal/soc"
	"xt910/isa"
)

// CoreConfig selects a core microarchitecture; see XT910Core, U74Core and
// A73Core for the paper's three comparison points.
type CoreConfig = core.Config

// XT910Core returns the paper's machine: triple-issue decode, 8-slot
// out-of-order issue, 192-entry ROB, dual-issue OoO LSU, vector engine,
// custom extensions, full prediction and prefetch machinery.
func XT910Core() CoreConfig { return core.XT910Config() }

// U74Core returns the dual-issue in-order comparison core (Fig. 17).
func U74Core() CoreConfig { return core.U74Config() }

// A73Core returns the Cortex-A73-class out-of-order comparison core
// (Figs. 18/19).
func A73Core() CoreConfig { return core.A73Config() }

// Config sizes a full system (cores per cluster, clusters, L2, DRAM).
type Config = soc.Config

// DefaultConfig returns a single-core XT-910 with 1 MB L2 and the paper's
// 200-cycle memory latency.
func DefaultConfig() Config { return soc.DefaultConfig() }

// Stats exposes the per-core performance counters.
type Stats = core.Stats

// Program is an assembled binary image.
type Program = asm.Program

// AsmOptions configures assembly.
type AsmOptions = asm.Options

// Assemble assembles XT-910 assembly source (RV64GCV plus the custom
// extensions, GNU-flavoured syntax).
func Assemble(src string, opts AsmOptions) (*Program, error) {
	return asm.Assemble(src, opts)
}

// System is a simulated XT-910 machine.
type System struct {
	*soc.System
}

// NewSystem builds a system from cfg (validated against Table I).
func NewSystem(cfg Config) (*System, error) {
	s, err := soc.New(cfg)
	if err != nil {
		return nil, err
	}
	return &System{System: s}, nil
}

// LoadAssembly assembles src and loads it, resetting all cores to its entry.
func (s *System) LoadAssembly(src string, opts AsmOptions) (*Program, error) {
	p, err := asm.Assemble(src, opts)
	if err != nil {
		return nil, err
	}
	s.LoadProgram(p)
	return p, nil
}

// Core returns hart i's core model (predictors, caches, MMU, counters).
func (s *System) Core(i int) *core.Core { return s.Cores[i] }

// ExitCode returns hart i's exit status (valid after it halts).
func (s *System) ExitCode(i int) int { return s.Cores[i].ExitCode }

// Output returns the bytes hart i wrote through the host write syscall.
func (s *System) Output(i int) []byte { return s.Cores[i].Output }

// Stats returns hart i's performance counters.
func (s *System) Stats(i int) *Stats { return &s.Cores[i].Stats }

// Reg reads hart i's architectural register.
func (s *System) Reg(hart int, r isa.Reg) uint64 { return s.Cores[hart].Reg(r) }

// Emulator is the functional golden model (the "instruction accurate
// simulator" of the paper's CDS toolchain, §IX).
type Emulator = emu.Machine

// NewEmulator builds a functional emulator with the program loaded.
func NewEmulator(p *Program) *Emulator {
	m := emu.New(mem.NewMemory())
	p.LoadInto(m.Mem)
	m.PC = p.Entry
	m.X[2] = 0x400000
	return m
}
