package isa

// Reverse lookup tables, built from the encoder tables so that the two stay
// consistent by construction. TestEncodeDecodeRoundTrip exercises every op.
var (
	decOpR    = map[uint32]Op{} // f3<<7 | f7       → OP
	decOp32R  = map[uint32]Op{} // f3<<7 | f7       → OP-32
	decOpImm  = map[uint32]Op{} // f3               → OP-IMM (non-shift)
	decLoad   = map[uint32]Op{}
	decStore  = map[uint32]Op{}
	decBranch = map[uint32]Op{}
	decCSR    = map[uint32]Op{}
	decAMO    = map[uint32]Op{} // f3<<5 | f5
	decFP     = map[uint32]Op{} // keyed specially, see decodeFP
	decV      = map[uint32]Op{} // f3<<6 | f6
	decXR     = map[uint32]Op{} // funct7
	decXIdxLd = map[uint32]Op{} // funct7>>2
	decXIdxSt = map[uint32]Op{}
	decXCache = map[uint32]Op{} // imm12
)

func init() {
	for op, e := range opRType {
		decOpR[e.f3<<7|e.f7] = op
	}
	for op, e := range op32RType {
		decOp32R[e.f3<<7|e.f7] = op
	}
	for op, f3 := range opImmF3 {
		decOpImm[f3] = op
	}
	for op, f3 := range loadF3 {
		decLoad[f3] = op
	}
	for op, f3 := range storeF3 {
		decStore[f3] = op
	}
	for op, f3 := range branchF3 {
		decBranch[f3] = op
	}
	for op, f3 := range csrF3 {
		decCSR[f3] = op
	}
	for op, e := range amoF5 {
		decAMO[e.f3<<5|e.f5] = op
	}
	for op, e := range opFPEnc {
		key := e.f7 << 8
		if e.f3 >= 0 {
			key |= 0x80 | uint32(e.f3)
		}
		if e.rs2sel >= 0 {
			key |= 0x4000000 | uint32(e.rs2sel)<<16
		}
		decFP[key] = op
	}
	for op, e := range opVEnc {
		decV[e.f3<<6|e.f6] = op
	}
	for op, f7 := range xRTypeSub {
		decXR[f7] = op
	}
	for op, sub := range xIdxLoadSub {
		decXIdxLd[sub] = op
	}
	for op, sub := range xIdxStoreSub {
		decXIdxSt[sub] = op
	}
	for op, imm := range xCacheOpImm {
		decXCache[uint32(imm)] = op
	}
}

func bf(v uint32, hi, lo uint) uint32 { return v >> lo & (1<<(hi-lo+1) - 1) }

func signExtend(v uint32, width uint) int64 {
	return int64(int32(v<<(32-width))) >> (32 - width)
}

func immI(raw uint32) int64 { return int64(int32(raw)) >> 20 }

func immS(raw uint32) int64 {
	return signExtend(bf(raw, 31, 25)<<5|bf(raw, 11, 7), 12)
}

func immB(raw uint32) int64 {
	v := bf(raw, 31, 31)<<12 | bf(raw, 7, 7)<<11 | bf(raw, 30, 25)<<5 | bf(raw, 11, 8)<<1
	return signExtend(v, 13)
}

func immU(raw uint32) int64 { return int64(int32(raw & 0xFFFFF000)) }

func immJ(raw uint32) int64 {
	v := bf(raw, 31, 31)<<20 | bf(raw, 19, 12)<<12 | bf(raw, 20, 20)<<11 | bf(raw, 30, 21)<<1
	return signExtend(v, 21)
}

// Decode decodes a 32-bit instruction word. Unrecognized encodings decode to
// an ILLEGAL instruction rather than an error: the pipeline traps on them at
// execute, matching hardware behaviour.
func Decode(raw uint32) Inst {
	in := NewInst(ILLEGAL)
	in.Size = 4
	rd := X(int(bf(raw, 11, 7)))
	rs1 := X(int(bf(raw, 19, 15)))
	rs2 := X(int(bf(raw, 24, 20)))
	f3 := bf(raw, 14, 12)
	f7 := bf(raw, 31, 25)

	switch raw & 0x7F {
	case opcLui:
		in.Op, in.Rd, in.Imm = LUI, rd, immU(raw)
	case opcAuipc:
		in.Op, in.Rd, in.Imm = AUIPC, rd, immU(raw)
	case opcJAL:
		in.Op, in.Rd, in.Imm = JAL, rd, immJ(raw)
	case opcJALR:
		in.Op, in.Rd, in.Rs1, in.Imm = JALR, rd, rs1, immI(raw)
	case opcBranch:
		if op, ok := decBranch[f3]; ok {
			in.Op, in.Rs1, in.Rs2, in.Imm = op, rs1, rs2, immB(raw)
		}
	case opcLoad:
		if op, ok := decLoad[f3]; ok {
			in.Op, in.Rd, in.Rs1, in.Imm = op, rd, rs1, immI(raw)
		}
	case opcStore:
		if op, ok := decStore[f3]; ok {
			in.Op, in.Rs1, in.Rs2, in.Imm = op, rs1, rs2, immS(raw)
		}
	case opcOpImm:
		switch f3 {
		case 1:
			if f7>>1 == 0 {
				in.Op, in.Rd, in.Rs1, in.Imm = SLLI, rd, rs1, int64(bf(raw, 25, 20))
			}
		case 5:
			switch f7 >> 1 {
			case 0:
				in.Op, in.Rd, in.Rs1, in.Imm = SRLI, rd, rs1, int64(bf(raw, 25, 20))
			case 0x10:
				in.Op, in.Rd, in.Rs1, in.Imm = SRAI, rd, rs1, int64(bf(raw, 25, 20))
			}
		default:
			if op, ok := decOpImm[f3]; ok {
				in.Op, in.Rd, in.Rs1, in.Imm = op, rd, rs1, immI(raw)
			}
		}
	case opcOpImm32:
		switch f3 {
		case 0:
			in.Op, in.Rd, in.Rs1, in.Imm = ADDIW, rd, rs1, immI(raw)
		case 1:
			if f7 == 0 {
				in.Op, in.Rd, in.Rs1, in.Imm = SLLIW, rd, rs1, int64(bf(raw, 24, 20))
			}
		case 5:
			switch f7 {
			case 0:
				in.Op, in.Rd, in.Rs1, in.Imm = SRLIW, rd, rs1, int64(bf(raw, 24, 20))
			case 0x20:
				in.Op, in.Rd, in.Rs1, in.Imm = SRAIW, rd, rs1, int64(bf(raw, 24, 20))
			}
		}
	case opcOp:
		if op, ok := decOpR[f3<<7|f7]; ok {
			in.Op, in.Rd, in.Rs1, in.Rs2 = op, rd, rs1, rs2
		}
	case opcOp32:
		if op, ok := decOp32R[f3<<7|f7]; ok {
			in.Op, in.Rd, in.Rs1, in.Rs2 = op, rd, rs1, rs2
		}
	case opcMiscMem:
		switch f3 {
		case 0:
			in.Op = FENCE
		case 1:
			in.Op = FENCEI
		}
	case opcSystem:
		switch f3 {
		case 0:
			if f7 == 0x09 {
				in.Op, in.Rs1, in.Rs2 = SFENCEVMA, rs1, rs2
				break
			}
			switch bf(raw, 31, 20) {
			case 0:
				in.Op = ECALL
			case 1:
				in.Op = EBREAK
			case 0x302:
				in.Op = MRET
			case 0x102:
				in.Op = SRET
			case 0x105:
				in.Op = WFI
			}
		default:
			if op, ok := decCSR[f3]; ok {
				in.Op, in.Rd, in.CSR = op, rd, uint16(bf(raw, 31, 20))
				if f3 >= 5 {
					in.Imm = int64(bf(raw, 19, 15))
				} else {
					in.Rs1 = rs1
				}
			}
		}
	case opcAMO:
		if op, ok := decAMO[f3<<5|f7>>2]; ok {
			in.Op, in.Rd, in.Rs1 = op, rd, rs1
			if op != LRW && op != LRD {
				in.Rs2 = rs2
			}
		}
	case opcLoadFP:
		switch f3 {
		case 2:
			in.Op, in.Rd, in.Rs1, in.Imm = FLW, F(rd.Index()), rs1, immI(raw)
		case 3:
			in.Op, in.Rd, in.Rs1, in.Imm = FLD, F(rd.Index()), rs1, immI(raw)
		case 7:
			// funct7 bit 0 (instruction bit 25) marks a masked access.
			switch f7 &^ 1 {
			case 0:
				in.Op, in.Rd, in.Rs1 = VLE, V(rd.Index()), rs1
			case 0x08:
				in.Op, in.Rd, in.Rs1, in.Rs2 = VLSE, V(rd.Index()), rs1, rs2
			case 0x0C:
				in.Op, in.Rd, in.Rs1, in.Rs2 = VLXEI, V(rd.Index()), rs1, V(rs2.Index())
			}
			if in.Op != ILLEGAL {
				in.Masked = f7&1 == 1
			}
		}
	case opcStoreFP:
		switch f3 {
		case 2:
			in.Op, in.Rs1, in.Rs2, in.Imm = FSW, rs1, F(rs2.Index()), immS(raw)
		case 3:
			in.Op, in.Rs1, in.Rs2, in.Imm = FSD, rs1, F(rs2.Index()), immS(raw)
		case 7:
			switch f7 &^ 1 {
			case 0:
				in.Op, in.Rs1, in.Rs2 = VSE, rs1, V(rd.Index())
			case 0x08:
				in.Op, in.Rs1, in.Rs2, in.Rs3 = VSSE, rs1, V(rd.Index()), rs2
			case 0x0C:
				in.Op, in.Rs1, in.Rs2, in.Rs3 = VSXEI, rs1, V(rd.Index()), V(rs2.Index())
			}
			if in.Op != ILLEGAL {
				in.Masked = f7&1 == 1
			}
		}
	case opcFMAdd, opcFMSub:
		fmt2 := bf(raw, 26, 25)
		var op Op
		switch {
		case raw&0x7F == opcFMAdd && fmt2 == 0:
			op = FMADDS
		case raw&0x7F == opcFMAdd && fmt2 == 1:
			op = FMADDD
		case raw&0x7F == opcFMSub && fmt2 == 0:
			op = FMSUBS
		case raw&0x7F == opcFMSub && fmt2 == 1:
			op = FMSUBD
		default:
			return in
		}
		in.Op = op
		in.Rd, in.Rs1, in.Rs2 = F(rd.Index()), F(rs1.Index()), F(rs2.Index())
		in.Rs3 = F(int(bf(raw, 31, 27)))
	case opcOpFP:
		return decodeFP(raw, rd, rs1, rs2, f3, f7)
	case opcOpV:
		return decodeV(raw, rd, rs1, rs2, f3)
	case opcCustom0:
		return decodeCustom(raw, rd, rs1, rs2, f3, f7)
	}
	return in
}

func decodeFP(raw uint32, rd, rs1, rs2 Reg, f3, f7 uint32) Inst {
	in := NewInst(ILLEGAL)
	// Try keys from most to least specific: (f7,f3,rs2sel), (f7,rs2sel),
	// (f7,f3), (f7). The key layout matches the one built in init.
	rs2v := uint32(rs2.Index())
	keys := [4]uint32{
		f7<<8 | 0x80 | f3 | 0x4000000 | rs2v<<16,
		f7<<8 | 0x4000000 | rs2v<<16,
		f7<<8 | 0x80 | f3,
		f7 << 8,
	}
	for _, k := range keys {
		op, ok := decFP[k]
		if !ok {
			continue
		}
		e := opFPEnc[op]
		in.Op = op
		// Register-file assignment depends on the operation: conversions and
		// moves cross between the integer and FP files.
		fr := func(r Reg) Reg { return F(r.Index()) }
		switch op {
		case FCVTWS, FCVTLS, FCVTWD, FCVTLD, FMVXW, FMVXD, FEQS, FLTS, FLES, FEQD, FLTD, FLED:
			in.Rd = rd // integer destination
			in.Rs1 = fr(rs1)
			if e.rs2sel < 0 {
				in.Rs2 = fr(rs2)
			}
		case FCVTSW, FCVTSL, FCVTDW, FCVTDL, FMVWX, FMVDX:
			in.Rd = fr(rd)
			in.Rs1 = rs1 // integer source
		default:
			in.Rd, in.Rs1 = fr(rd), fr(rs1)
			if e.rs2sel < 0 {
				in.Rs2 = fr(rs2)
			}
		}
		return in
	}
	return in
}

func decodeV(raw uint32, rd, rs1, rs2 Reg, f3 uint32) Inst {
	in := NewInst(ILLEGAL)
	if f3 == 7 {
		if raw>>31 == 0 {
			in.Op, in.Rd, in.Rs1 = VSETVLI, rd, rs1
			in.Imm = int64(bf(raw, 30, 20))
		} else if bf(raw, 31, 25) == 0x40 {
			in.Op, in.Rd, in.Rs1, in.Rs2 = VSETVL, rd, rs1, rs2
		}
		return in
	}
	f6 := bf(raw, 31, 26)
	op, ok := decV[f3<<6|f6]
	if !ok {
		return in
	}
	in.Op = op
	in.Masked = bf(raw, 25, 25) == 0 // vm=0: masked by v0
	in.Rd = V(rd.Index())
	vs2 := V(rs2.Index())
	switch f3 {
	case 0, 1, 2: // vector-vector
		in.Rs1, in.Rs2 = V(rs1.Index()), vs2
	case 3: // vector-immediate
		in.Imm, in.Rs2 = signExtend(uint32(rs1.Index()), 5), vs2
	case 4, 6: // vector-scalar
		in.Rs1, in.Rs2 = rs1, vs2
	}
	switch op {
	case VMVXS: // integer destination
		in.Rd = rd
		in.Rs1 = RegNone
		in.Rs2 = vs2
	case VMVSX, VMVVX:
		in.Rd = V(rd.Index())
		in.Rs1 = rs1
		in.Rs2 = RegNone
	case VMVVV:
		in.Rs2 = RegNone
	}
	return in
}

func decodeCustom(raw uint32, rd, rs1, rs2 Reg, f3, f7 uint32) Inst {
	in := NewInst(ILLEGAL)
	switch f3 {
	case 0:
		if op, ok := decXR[f7]; ok {
			in.Op, in.Rd, in.Rs1 = op, rd, rs1
			switch op {
			case XREV, XFF0, XFF1, XTSTNBZ:
			default:
				in.Rs2 = rs2
			}
		}
	case 1:
		if op, ok := decXIdxLd[f7>>2]; ok {
			in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm = op, rd, rs1, rs2, int64(f7&3)
		}
	case 2:
		if op, ok := decXIdxSt[f7>>2]; ok {
			in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm = op, rd, rs1, rs2, int64(f7&3)
		}
	case 3:
		if f7>>2 == 0 {
			in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm = XADDSL, rd, rs1, rs2, int64(f7&3)
		}
	case 4:
		in.Op, in.Rd, in.Rs1, in.Imm = XEXT, rd, rs1, int64(bf(raw, 31, 20))
	case 5:
		in.Op, in.Rd, in.Rs1, in.Imm = XEXTU, rd, rs1, int64(bf(raw, 31, 20))
	case 6:
		if f7>>1 == 0 {
			in.Op, in.Rd, in.Rs1, in.Imm = XSRRI, rd, rs1, int64(bf(raw, 25, 20))
		}
	case 7:
		if op, ok := decXCache[bf(raw, 31, 20)]; ok {
			in.Op = op
			switch op {
			case XDCACHECVA, XDCACHEIVA, XTLBIASID, XTLBIVA:
				in.Rs1 = rs1
			}
		}
	}
	return in
}
