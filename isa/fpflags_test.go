package isa

import (
	"math"
	"testing"
)

const (
	sNaN64 = uint64(0x7FF0000000000001)
	qNaN64 = uint64(0x7FF8000000000000)
)

func sNaN32() uint64 { return BoxF32(0x7F800001) }
func qNaN32() uint64 { return BoxF32(0x7FC00000) }

func TestFPUFlags(t *testing.T) {
	cases := []struct {
		name    string
		op      Op
		a, b, c uint64
		want    uint8
	}{
		{"add exact", FADDD, F64(1), F64(2), 0, 0},
		{"add inexact", FADDD, F64(1), F64(0x1p-60), 0, FFlagNX},
		{"add inf exact", FADDD, F64(math.Inf(1)), F64(1), 0, 0},
		{"inf minus inf", FSUBD, F64(math.Inf(1)), F64(math.Inf(1)), 0, FFlagNV},
		{"add qnan quiet", FADDD, qNaN64, F64(1), 0, 0},
		{"add snan", FADDD, sNaN64, F64(1), 0, FFlagNV},
		{"add.s overflow", FADDS, F32(math.MaxFloat32), F32(math.MaxFloat32), 0, FFlagOF | FFlagNX},
		{"mul underflow", FMULD, F64(0x1p-1000), F64(0x1p-100), 0, FFlagUF | FFlagNX},
		{"mul zero times inf", FMULD, F64(0), F64(math.Inf(1)), 0, FFlagNV},
		{"div inexact", FDIVD, F64(1), F64(3), 0, FFlagNX},
		{"div exact", FDIVD, F64(1), F64(4), 0, 0},
		{"div by zero", FDIVD, F64(1), F64(0), 0, FFlagDZ},
		{"zero over zero", FDIVD, F64(0), F64(0), 0, FFlagNV},
		{"div.s by zero", FDIVS, F32(2), F32(0), 0, FFlagDZ},
		{"sqrt negative", FSQRTD, F64(-1), 0, 0, FFlagNV},
		{"sqrt inexact", FSQRTD, F64(2), 0, 0, FFlagNX},
		{"sqrt exact", FSQRTD, F64(4), 0, 0, 0},
		{"sqrt.s exact", FSQRTS, F32(9), 0, 0, 0},
		{"fma exact", FMADDD, F64(2), F64(3), F64(4), 0},
		{"fma inexact", FMADDD, F64(1 + 0x1p-52), F64(1 + 0x1p-52), F64(0), FFlagNX},
		{"fma inf times zero", FMADDD, F64(math.Inf(1)), F64(0), F64(1), FFlagNV},
		{"min snan", FMIND, sNaN64, F64(1), 0, FFlagNV},
		{"min qnan", FMIND, qNaN64, F64(1), 0, 0},
		{"cvt.w.d inexact", FCVTWD, F64(3.5), 0, 0, FFlagNX},
		{"cvt.w.d exact", FCVTWD, F64(-3), 0, 0, 0},
		{"cvt.w.d nan", FCVTWD, qNaN64, 0, 0, FFlagNV},
		{"cvt.w.d range", FCVTWD, F64(0x1p40), 0, 0, FFlagNV},
		{"cvt.l.d range", FCVTLD, F64(0x1p63), 0, 0, FFlagNV},
		{"cvt.l.d max ok", FCVTLD, F64(0x1p62), 0, 0, 0},
		{"cvt.s.d inexact", FCVTSD, F64(1 + 0x1p-40), 0, 0, FFlagNX},
		{"cvt.s.d exact", FCVTSD, F64(1.5), 0, 0, 0},
		{"cvt.d.s snan", FCVTDS, sNaN32(), 0, 0, FFlagNV},
		{"cvt.s.l inexact", FCVTSL, uint64(1)<<60 + 1, 0, 0, FFlagNX},
		{"cvt.d.l inexact", FCVTDL, uint64(1)<<60 + 1, 0, 0, FFlagNX},
		{"cvt.s.w exact", FCVTSW, 16, 0, 0, 0},
		{"feq qnan quiet", FEQD, qNaN64, F64(1), 0, 0},
		{"feq snan", FEQD, sNaN64, F64(1), 0, FFlagNV},
		{"flt qnan", FLTD, qNaN64, F64(1), 0, FFlagNV},
		{"flt.s qnan", FLTS, qNaN32(), F32(1), 0, FFlagNV},
		{"sgnj no flags", FSGNJD, sNaN64, F64(-1), 0, 0},
		{"fmv no flags", FMVXD, sNaN64, 0, 0, 0},
	}
	for _, tc := range cases {
		res, flags, ok := EvalFPUFlags(tc.op, tc.a, tc.b, tc.c)
		if !ok {
			t.Fatalf("%s: EvalFPUFlags not ok", tc.name)
		}
		want, _ := EvalFPU(tc.op, tc.a, tc.b, tc.c)
		if res != want {
			t.Errorf("%s: result %x diverges from EvalFPU %x", tc.name, res, want)
		}
		if flags != tc.want {
			t.Errorf("%s: flags = %05b, want %05b", tc.name, flags, tc.want)
		}
	}
}

// TestFPUFlagsResultUntouched: EvalFPUFlags must return EvalFPU's result
// bit-for-bit for every FP op, so adopting it can never change state.
func TestFPUFlagsResultUntouched(t *testing.T) {
	vals := []uint64{
		F64(0), F64(1.5), F64(-2.25), F64(math.Inf(1)), qNaN64, sNaN64,
		F64(0x1p-1050), F64(math.MaxFloat64), F32(3.5), F32(-0.5),
		sNaN32(), qNaN32(), 0x12345678, // improperly boxed
	}
	for op := FADDS; op <= FLED; op++ {
		if _, ok := EvalFPU(op, vals[0], vals[1], vals[2]); !ok {
			continue
		}
		for i, a := range vals {
			b, c := vals[(i+3)%len(vals)], vals[(i+7)%len(vals)]
			want, _ := EvalFPU(op, a, b, c)
			got, _, ok := EvalFPUFlags(op, a, b, c)
			if !ok || got != want {
				t.Fatalf("%v(%x,%x,%x): result %x, want %x", op, a, b, c, got, want)
			}
		}
	}
}

// TestFcsrCSRForms pins the fcsr-family CSR addresses and their assembler
// names, and round-trips a CSR access to each through encode/decode.
func TestFcsrCSRForms(t *testing.T) {
	for _, c := range []struct {
		name string
		addr uint16
	}{{"fflags", CSRFflags}, {"frm", CSRFrm}, {"fcsr", CSRFcsr}} {
		got, ok := ParseCSR(c.name)
		if !ok || got != c.addr {
			t.Fatalf("ParseCSR(%q) = %#x, %v", c.name, got, ok)
		}
		in := NewInst(CSRRS)
		in.Rd, in.Rs1, in.CSR = A0, Zero, c.addr
		raw, err := Encode(in)
		if err != nil {
			t.Fatalf("encode csrrs %s: %v", c.name, err)
		}
		out := Decode(raw)
		if out.Op != CSRRS || out.CSR != c.addr {
			t.Fatalf("decode csrrs %s: %+v", c.name, out)
		}
		raw2, _ := Encode(out)
		if raw2 != raw {
			t.Fatalf("csrrs %s not byte-identical: %08x vs %08x", c.name, raw, raw2)
		}
	}
}
