package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randInst builds a random valid instruction for op, suitable for an
// encode/decode round trip.
func randInst(rng *rand.Rand, op Op) (Inst, bool) {
	in := NewInst(op)
	rx := func() Reg { return X(rng.Intn(32)) }
	rf := func() Reg { return F(rng.Intn(32)) }
	rv := func() Reg { return V(rng.Intn(32)) }
	imm12 := func() int64 { return int64(rng.Intn(4096) - 2048) }
	switch op {
	case LUI, AUIPC:
		in.Rd = rx()
		in.Imm = int64(int32(rng.Uint32())) &^ 0xFFF
	case JAL:
		in.Rd = rx()
		in.Imm = int64(rng.Intn(1<<20)-1<<19) &^ 1
	case JALR:
		in.Rd, in.Rs1, in.Imm = rx(), rx(), imm12()
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		in.Rs1, in.Rs2 = rx(), rx()
		in.Imm = int64(rng.Intn(1<<12)-1<<11) &^ 1
	case LB, LH, LW, LD, LBU, LHU, LWU:
		in.Rd, in.Rs1, in.Imm = rx(), rx(), imm12()
	case SB, SH, SW, SD:
		in.Rs1, in.Rs2, in.Imm = rx(), rx(), imm12()
	case ADDI, SLTI, SLTIU, XORI, ORI, ANDI, ADDIW:
		in.Rd, in.Rs1, in.Imm = rx(), rx(), imm12()
	case SLLI, SRLI, SRAI, XSRRI:
		in.Rd, in.Rs1, in.Imm = rx(), rx(), int64(rng.Intn(64))
	case SLLIW, SRLIW, SRAIW:
		in.Rd, in.Rs1, in.Imm = rx(), rx(), int64(rng.Intn(32))
	case ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		ADDW, SUBW, SLLW, SRLW, SRAW,
		MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,
		MULW, DIVW, DIVUW, REMW, REMUW:
		in.Rd, in.Rs1, in.Rs2 = rx(), rx(), rx()
	case CSRRW, CSRRS, CSRRC:
		in.Rd, in.Rs1, in.CSR = rx(), rx(), uint16(rng.Intn(4096))
	case CSRRWI, CSRRSI, CSRRCI:
		in.Rd, in.CSR, in.Imm = rx(), uint16(rng.Intn(4096)), int64(rng.Intn(32))
	case LRW, LRD:
		in.Rd, in.Rs1 = rx(), rx()
	case SCW, SCD, AMOSWAPW, AMOSWAPD, AMOADDW, AMOADDD, AMOANDW, AMOANDD,
		AMOORW, AMOORD, AMOXORW, AMOXORD, AMOMAXW, AMOMAXD, AMOMINW, AMOMIND:
		in.Rd, in.Rs1, in.Rs2 = rx(), rx(), rx()
	case FLW, FLD:
		in.Rd, in.Rs1, in.Imm = rf(), rx(), imm12()
	case FSW, FSD:
		in.Rs1, in.Rs2, in.Imm = rx(), rf(), imm12()
	case FADDS, FSUBS, FMULS, FDIVS, FADDD, FSUBD, FMULD, FDIVD,
		FSGNJS, FSGNJNS, FSGNJXS, FSGNJD, FSGNJND, FSGNJXD,
		FMINS, FMAXS, FMIND, FMAXD:
		in.Rd, in.Rs1, in.Rs2 = rf(), rf(), rf()
	case FSQRTS, FSQRTD, FCVTSD, FCVTDS:
		in.Rd, in.Rs1 = rf(), rf()
	case FMADDS, FMSUBS, FMADDD, FMSUBD:
		in.Rd, in.Rs1, in.Rs2, in.Rs3 = rf(), rf(), rf(), rf()
	case FCVTWS, FCVTLS, FCVTWD, FCVTLD, FMVXW, FMVXD:
		in.Rd, in.Rs1 = rx(), rf()
	case FEQS, FLTS, FLES, FEQD, FLTD, FLED:
		in.Rd, in.Rs1, in.Rs2 = rx(), rf(), rf()
	case FCVTSW, FCVTSL, FCVTDW, FCVTDL, FMVWX, FMVDX:
		in.Rd, in.Rs1 = rf(), rx()
	case VSETVLI:
		in.Rd, in.Rs1, in.Imm = rx(), rx(), int64(MakeVType(rng.Intn(4), rng.Intn(4)))
	case VSETVL:
		in.Rd, in.Rs1, in.Rs2 = rx(), rx(), rx()
	case VLE:
		in.Rd, in.Rs1 = rv(), rx()
	case VLSE:
		in.Rd, in.Rs1, in.Rs2 = rv(), rx(), rx()
	case VSE:
		in.Rs1, in.Rs2 = rx(), rv()
	case VSSE:
		in.Rs1, in.Rs2, in.Rs3 = rx(), rv(), rx()
	case VADDVV, VSUBVV, VMULVV, VMACCVV, VWMACCVV, VANDVV, VORVV, VXORVV,
		VSLLVV, VSRLVV, VMINVV, VMAXVV, VDIVVV, VREMVV, VREDSUMVS, VREDMAXVS,
		VFADDVV, VFSUBVV, VFMULVV, VFDIVVV, VFMACCVV, VFREDSUMVS:
		in.Rd, in.Rs1, in.Rs2 = rv(), rv(), rv()
	case VADDVX, VSUBVX, VMULVX:
		in.Rd, in.Rs1, in.Rs2 = rv(), rx(), rv()
	case VADDVI:
		in.Rd, in.Rs2, in.Imm = rv(), rv(), int64(rng.Intn(32)-16)
	case VMVVV:
		in.Rd, in.Rs1 = rv(), rv()
	case VMVVX, VMVSX:
		in.Rd, in.Rs1 = rv(), rx()
	case VMVXS:
		in.Rd, in.Rs2 = rx(), rv()
	case VMSEQVV:
		in.Rd, in.Rs1, in.Rs2 = rv(), rv(), rv()
	case VLXEI:
		in.Rd, in.Rs1, in.Rs2 = rv(), rx(), rv()
	case VSXEI:
		in.Rs1, in.Rs2, in.Rs3 = rx(), rv(), rv()
	case XLRB, XLRH, XLRW, XLRD, XLURB, XLURH, XLURW:
		in.Rd, in.Rs1, in.Rs2, in.Imm = rx(), rx(), rx(), int64(rng.Intn(4))
	case XSRB, XSRH, XSRW, XSRD:
		in.Rd, in.Rs1, in.Rs2, in.Imm = rx(), rx(), rx(), int64(rng.Intn(4))
	case XADDSL:
		in.Rd, in.Rs1, in.Rs2, in.Imm = rx(), rx(), rx(), int64(rng.Intn(4))
	case XEXT, XEXTU:
		lsb := rng.Intn(64)
		msb := lsb + rng.Intn(64-lsb)
		in.Rd, in.Rs1, in.Imm = rx(), rx(), int64(msb<<6|lsb)
	case XFF0, XFF1, XREV, XTSTNBZ:
		in.Rd, in.Rs1 = rx(), rx()
	case XMVEQZ, XMVNEZ, XMULA, XMULS, XMULAH, XMULSH, XMULAW, XMULSW:
		in.Rd, in.Rs1, in.Rs2 = rx(), rx(), rx()
	case XDCACHECVA, XDCACHEIVA, XTLBIASID, XTLBIVA:
		in.Rs1 = rx()
	case XDCACHECALL, XDCACHEIALL, XICACHEIALL, XSYNC,
		ECALL, EBREAK, MRET, SRET, WFI, FENCE, FENCEI:
		// no operands
	case SFENCEVMA:
		in.Rs1, in.Rs2 = rx(), rx()
	default:
		return in, false
	}
	// Every vector compute/memory op can carry a v0 mask.
	switch op.Class() {
	case ClassVALU, ClassVFPU, ClassVLoad, ClassVStore:
		in.Masked = rng.Intn(2) == 0
	}
	return in, true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(910))
	for op := Op(1); op < numOps; op++ {
		for trial := 0; trial < 64; trial++ {
			in, ok := randInst(rng, op)
			if !ok {
				t.Fatalf("randInst has no generator for %v", op)
			}
			raw, err := Encode(in)
			if err != nil {
				t.Fatalf("encode %v: %v", op, err)
			}
			got := Decode(raw)
			if got.Op != in.Op || got.Rd != in.Rd || got.Rs1 != in.Rs1 ||
				got.Rs2 != in.Rs2 || got.Rs3 != in.Rs3 ||
				got.Imm != in.Imm || got.CSR != in.CSR || got.Masked != in.Masked {
				t.Fatalf("%v: round trip mismatch\n in: %+v\nout: %+v (raw %08x)", op, in, got, raw)
			}
			// re-encode: decode must preserve everything Encode consumes
			raw2, err := Encode(got)
			if err != nil {
				t.Fatalf("re-encode %v: %v", op, err)
			}
			if raw2 != raw {
				t.Fatalf("%v: encode→decode→encode not byte-identical: %08x vs %08x", op, raw, raw2)
			}
		}
	}
}

func TestOpMetaComplete(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		if opMeta[op].name == "" {
			t.Errorf("op %d has no metadata", op)
		}
		if opMeta[op].class == ClassIllegal && op != ILLEGAL {
			t.Errorf("op %v has illegal class", op)
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(raw uint32) bool {
		_ = Decode(raw | 3) // force 32-bit form
		_ = Decode16(uint16(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestRVCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	compressed := 0
	for op := Op(1); op < numOps; op++ {
		for trial := 0; trial < 200; trial++ {
			in, ok := randInst(rng, op)
			if !ok {
				continue
			}
			raw16, ok := Compress(in)
			if !ok {
				continue
			}
			compressed++
			got := Decode16(raw16)
			got.Size = 4 // compare payloads, not size
			in.Size = 4
			// c.li decodes as addi rd, zero, imm — canonicalize
			if got.Op != in.Op || got.Rd != in.Rd || got.Rs1 != in.Rs1 ||
				got.Rs2 != in.Rs2 || got.Imm != in.Imm {
				t.Fatalf("%v: rvc round trip mismatch\n in: %+v\nout: %+v (raw %04x)", op, in, got, raw16)
			}
		}
	}
	if compressed < 100 {
		t.Fatalf("too few compressible samples: %d", compressed)
	}
}

func TestIntALUSemantics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		imm  int64
		want uint64
	}{
		{ADD, 2, 3, 0, 5},
		{SUB, 2, 3, 0, ^uint64(0)},
		{ADDW, 0x7FFFFFFF, 1, 0, 0xFFFFFFFF80000000},
		{SRAI, 0xFFFFFFFFFFFFFFF0, 0, 2, 0xFFFFFFFFFFFFFFFC},
		{SRLI, 0xF0, 0, 4, 0xF},
		{SLTU, 1, 2, 0, 1},
		{SLT, ^uint64(0), 0, 0, 1},
		{DIV, 10, 3, 0, 3},
		{DIV, 10, 0, 0, ^uint64(0)},
		{REM, 10, 0, 0, 10},
		{DIV, 1 << 63, ^uint64(0), 0, 1 << 63},
		{REM, 1 << 63, ^uint64(0), 0, 0},
		{MULHU, 1 << 32, 1 << 32, 0, 1},
		{MULH, ^uint64(0), ^uint64(0), 0, 0}, // (-1)*(-1)=1, high half 0
		{XEXTU, 0xABCD, 0, 15<<6 | 8, 0xAB},
		{XEXT, 0x80, 0, 7<<6 | 0, 0xFFFFFFFFFFFFFF80},
		{XREV, 0x0102030405060708, 0, 0, 0x0807060504030201},
		{XFF1, 1 << 62, 0, 0, 1},
		{XFF0, ^uint64(0), 0, 0, 64},
		{XTSTNBZ, 0x00FF00FF00FF00FF, 0, 0, 0xFF00FF00FF00FF00},
		{XADDSL, 100, 3, 2, 112},
		{XSRRI, 1, 0, 1, 1 << 63},
	}
	for _, c := range cases {
		got, ok := EvalIntALU(c.op, c.a, c.b, 0, c.imm, 4)
		if !ok {
			t.Fatalf("%v: not an ALU op", c.op)
		}
		if got != c.want {
			t.Errorf("%v(%#x,%#x,imm=%d) = %#x, want %#x", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestMulhMatchesBigMul(t *testing.T) {
	f := func(a, b int64) bool {
		got, _ := EvalIntALU(MULH, uint64(a), uint64(b), 0, 0, 4)
		// reference via 128-bit split computation
		hi := mulh128(a, b)
		return got == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// mulh128 computes the high 64 bits of the signed 128-bit product using
// schoolbook 32-bit limbs, as an independent reference.
func mulh128(a, b int64) uint64 {
	neg := (a < 0) != (b < 0)
	ua, ub := absU(a), absU(b)
	aLo, aHi := ua&0xFFFFFFFF, ua>>32
	bLo, bHi := ub&0xFFFFFFFF, ub>>32
	t := aLo * bLo
	lo := t & 0xFFFFFFFF
	carry := t >> 32
	t = aHi*bLo + carry
	mid1 := t & 0xFFFFFFFF
	hi := t >> 32
	t = aLo*bHi + mid1
	lo |= (t & 0xFFFFFFFF) << 32
	hi += t >> 32
	hi += aHi * bHi
	if neg && (lo|hi) != 0 {
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return hi
}

func TestBranchSemantics(t *testing.T) {
	if !EvalBranch(BLT, ^uint64(0), 0) {
		t.Error("blt -1 < 0 should be taken")
	}
	if EvalBranch(BLTU, ^uint64(0), 0) {
		t.Error("bltu max < 0 should not be taken")
	}
	if !EvalBranch(BGEU, ^uint64(0), 0) {
		t.Error("bgeu should be taken")
	}
}

func TestFPUSemantics(t *testing.T) {
	got, ok := EvalFPU(FADDD, F64(1.5), F64(2.25), 0)
	if !ok || got != F64(3.75) {
		t.Errorf("fadd.d = %x", got)
	}
	got, _ = EvalFPU(FADDS, F32(1.5), F32(2.25), 0)
	if UnboxF32(got) != 3.75 {
		t.Errorf("fadd.s = %v", UnboxF32(got))
	}
	got, _ = EvalFPU(FMADDD, F64(2), F64(3), F64(4))
	if got != F64(10) {
		t.Errorf("fmadd.d = %x", got)
	}
	got, _ = EvalFPU(FCVTWD, F64(-3.7), 0, 0)
	if int64(got) != -3 {
		t.Errorf("fcvt.w.d(-3.7) = %d, want -3 (round toward zero)", int64(got))
	}
	got, _ = EvalFPU(FLTD, F64(1), F64(2), 0)
	if got != 1 {
		t.Error("flt.d 1<2 should be 1")
	}
}

func TestAMOSemantics(t *testing.T) {
	if EvalAMO(AMOADDD, 5, 7) != 12 {
		t.Error("amoadd.d")
	}
	if EvalAMO(AMOMAXW, uint64(uint32(0xFFFFFFFF)), 1) != 1 {
		t.Error("amomax.w should treat 0xFFFFFFFF as -1")
	}
	if EvalAMO(AMOSWAPD, 5, 7) != 7 {
		t.Error("amoswap.d")
	}
}

func TestVType(t *testing.T) {
	vt := MakeVType(SEW16, 1) // e16, m2
	if vt.SEW() != 16 || vt.LMUL() != 2 {
		t.Fatalf("vtype fields: sew=%d lmul=%d", vt.SEW(), vt.LMUL())
	}
	if vt.VLMAX(128) != 16 {
		t.Fatalf("vlmax = %d, want 16", vt.VLMAX(128))
	}
	if vt.String() != "e16,m2" {
		t.Fatalf("string = %q", vt.String())
	}
	parsed, err := ParseVTypeArgs([]string{"e16", "m2"})
	if err != nil || parsed != vt {
		t.Fatalf("parse: %v %v", parsed, err)
	}
}

func TestRegNames(t *testing.T) {
	for _, c := range []struct {
		name string
		reg  Reg
	}{{"a0", A0}, {"x10", A0}, {"fp", S0}, {"fa0", F(10)}, {"v3", V(3)}} {
		got, ok := ParseReg(c.name)
		if !ok || got != c.reg {
			t.Errorf("ParseReg(%q) = %v, %v", c.name, got, ok)
		}
	}
	if A0.String() != "a0" || F(10).String() != "fa0" || V(3).String() != "v3" {
		t.Error("reg String()")
	}
}

func TestSatpFields(t *testing.T) {
	s := MakeSatp(SatpModeSV39, 0xBEEF, 0x12345)
	if SatpMode(s) != SatpModeSV39 || SatpASID(s) != 0xBEEF || SatpPPN(s) != 0x12345 {
		t.Fatalf("satp fields: %x", s)
	}
}

func TestDivLatencyBounds(t *testing.T) {
	f := func(v uint64) bool {
		l := DivLatency(DIV, v)
		return l >= 6 && l <= 25
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSourcesAndWrites(t *testing.T) {
	in := NewInst(ADD)
	in.Rd, in.Rs1, in.Rs2 = A0, A1, A2
	regs, n := in.Sources()
	if n != 2 || regs[0] != A1 || regs[1] != A2 {
		t.Fatalf("sources: %v %d", regs, n)
	}
	if !in.WritesReg() {
		t.Error("add writes rd")
	}
	st := NewInst(SD)
	st.Rs1, st.Rs2 = A0, A1
	if st.WritesReg() {
		t.Error("sd writes no register")
	}
	mac := NewInst(XMULA)
	mac.Rd, mac.Rs1, mac.Rs2 = A0, A1, A2
	_, n = mac.Sources()
	if n != 3 {
		t.Fatalf("mula reads rd: n=%d", n)
	}
}
