package isa

// RVC (compressed) support. The XT-910 fetches 128-bit lines holding up to 8
// compressed instructions (§III), so code density directly shapes front-end
// behaviour. The model implements the RV64C subset that covers the compiler
// and assembler output: loads/stores (including stack-relative), immediates,
// register arithmetic, and control flow.

func cReg(v uint32) Reg  { return X(int(8 + v&7)) } // the x8–x15 window
func cFReg(v uint32) Reg { return F(int(8 + v&7)) } // the f8–f15 window

// Decode16 expands a 16-bit compressed instruction to its full Inst.
// Unrecognized encodings decode to ILLEGAL with Size 2.
func Decode16(raw uint16) Inst {
	in := NewInst(ILLEGAL)
	in.Size = 2
	r := uint32(raw)
	f3 := bf(r, 15, 13)
	switch r & 3 {
	case 0: // quadrant 0
		switch f3 {
		case 1: // c.fld
			imm := bf(r, 12, 10)<<3 | bf(r, 6, 5)<<6
			in.Op, in.Rd, in.Rs1, in.Imm = FLD, cFReg(bf(r, 4, 2)), cReg(bf(r, 9, 7)), int64(imm)
		case 5: // c.fsd
			imm := bf(r, 12, 10)<<3 | bf(r, 6, 5)<<6
			in.Op, in.Rs1, in.Rs2, in.Imm = FSD, cReg(bf(r, 9, 7)), cFReg(bf(r, 4, 2)), int64(imm)
		case 0: // c.addi4spn
			imm := bf(r, 12, 11)<<4 | bf(r, 10, 7)<<6 | bf(r, 6, 6)<<2 | bf(r, 5, 5)<<3
			if imm == 0 {
				return in // reserved (includes the all-zero illegal encoding)
			}
			in.Op, in.Rd, in.Rs1, in.Imm = ADDI, cReg(bf(r, 4, 2)), SP, int64(imm)
		case 2: // c.lw
			imm := bf(r, 12, 10)<<3 | bf(r, 6, 6)<<2 | bf(r, 5, 5)<<6
			in.Op, in.Rd, in.Rs1, in.Imm = LW, cReg(bf(r, 4, 2)), cReg(bf(r, 9, 7)), int64(imm)
		case 3: // c.ld
			imm := bf(r, 12, 10)<<3 | bf(r, 6, 5)<<6
			in.Op, in.Rd, in.Rs1, in.Imm = LD, cReg(bf(r, 4, 2)), cReg(bf(r, 9, 7)), int64(imm)
		case 6: // c.sw
			imm := bf(r, 12, 10)<<3 | bf(r, 6, 6)<<2 | bf(r, 5, 5)<<6
			in.Op, in.Rs1, in.Rs2, in.Imm = SW, cReg(bf(r, 9, 7)), cReg(bf(r, 4, 2)), int64(imm)
		case 7: // c.sd
			imm := bf(r, 12, 10)<<3 | bf(r, 6, 5)<<6
			in.Op, in.Rs1, in.Rs2, in.Imm = SD, cReg(bf(r, 9, 7)), cReg(bf(r, 4, 2)), int64(imm)
		}
	case 1: // quadrant 1
		switch f3 {
		case 0: // c.addi / c.nop
			rd := X(int(bf(r, 11, 7)))
			imm := signExtend(bf(r, 12, 12)<<5|bf(r, 6, 2), 6)
			in.Op, in.Rd, in.Rs1, in.Imm = ADDI, rd, rd, imm
		case 1: // c.addiw
			rd := X(int(bf(r, 11, 7)))
			if rd == Zero {
				return in
			}
			imm := signExtend(bf(r, 12, 12)<<5|bf(r, 6, 2), 6)
			in.Op, in.Rd, in.Rs1, in.Imm = ADDIW, rd, rd, imm
		case 2: // c.li
			rd := X(int(bf(r, 11, 7)))
			imm := signExtend(bf(r, 12, 12)<<5|bf(r, 6, 2), 6)
			in.Op, in.Rd, in.Rs1, in.Imm = ADDI, rd, Zero, imm
		case 3:
			rd := X(int(bf(r, 11, 7)))
			if rd == SP { // c.addi16sp
				imm := signExtend(bf(r, 12, 12)<<9|bf(r, 6, 6)<<4|bf(r, 5, 5)<<6|
					bf(r, 4, 3)<<7|bf(r, 2, 2)<<5, 10)
				if imm == 0 {
					return in
				}
				in.Op, in.Rd, in.Rs1, in.Imm = ADDI, SP, SP, imm
			} else { // c.lui
				imm := signExtend(bf(r, 12, 12)<<17|bf(r, 6, 2)<<12, 18)
				if imm == 0 || rd == Zero {
					return in
				}
				in.Op, in.Rd, in.Imm = LUI, rd, imm
			}
		case 4:
			rd := cReg(bf(r, 9, 7))
			switch bf(r, 11, 10) {
			case 0: // c.srli
				in.Op, in.Rd, in.Rs1, in.Imm = SRLI, rd, rd, int64(bf(r, 12, 12)<<5|bf(r, 6, 2))
			case 1: // c.srai
				in.Op, in.Rd, in.Rs1, in.Imm = SRAI, rd, rd, int64(bf(r, 12, 12)<<5|bf(r, 6, 2))
			case 2: // c.andi
				in.Op, in.Rd, in.Rs1, in.Imm = ANDI, rd, rd, signExtend(bf(r, 12, 12)<<5|bf(r, 6, 2), 6)
			case 3:
				rs2 := cReg(bf(r, 4, 2))
				sel := bf(r, 6, 5)
				if bf(r, 12, 12) == 0 {
					ops := [4]Op{SUB, XOR, OR, AND}
					in.Op, in.Rd, in.Rs1, in.Rs2 = ops[sel], rd, rd, rs2
				} else {
					switch sel {
					case 0:
						in.Op, in.Rd, in.Rs1, in.Rs2 = SUBW, rd, rd, rs2
					case 1:
						in.Op, in.Rd, in.Rs1, in.Rs2 = ADDW, rd, rd, rs2
					}
				}
			}
		case 5: // c.j
			imm := signExtend(bf(r, 12, 12)<<11|bf(r, 11, 11)<<4|bf(r, 10, 9)<<8|
				bf(r, 8, 8)<<10|bf(r, 7, 7)<<6|bf(r, 6, 6)<<7|
				bf(r, 5, 3)<<1|bf(r, 2, 2)<<5, 12)
			in.Op, in.Rd, in.Imm = JAL, Zero, imm
		case 6, 7: // c.beqz / c.bnez
			imm := signExtend(bf(r, 12, 12)<<8|bf(r, 11, 10)<<3|bf(r, 6, 5)<<6|
				bf(r, 4, 3)<<1|bf(r, 2, 2)<<5, 9)
			op := BEQ
			if f3 == 7 {
				op = BNE
			}
			in.Op, in.Rs1, in.Rs2, in.Imm = op, cReg(bf(r, 9, 7)), Zero, imm
		}
	case 2: // quadrant 2
		rd := X(int(bf(r, 11, 7)))
		rs2 := X(int(bf(r, 6, 2)))
		switch f3 {
		case 0: // c.slli
			in.Op, in.Rd, in.Rs1, in.Imm = SLLI, rd, rd, int64(bf(r, 12, 12)<<5|bf(r, 6, 2))
		case 1: // c.fldsp
			imm := bf(r, 12, 12)<<5 | bf(r, 6, 5)<<3 | bf(r, 4, 2)<<6
			in.Op, in.Rd, in.Rs1, in.Imm = FLD, F(int(bf(r, 11, 7))), SP, int64(imm)
		case 5: // c.fsdsp
			imm := bf(r, 12, 10)<<3 | bf(r, 9, 7)<<6
			in.Op, in.Rs1, in.Rs2, in.Imm = FSD, SP, F(int(bf(r, 6, 2))), int64(imm)
		case 2: // c.lwsp
			if rd == Zero {
				return in
			}
			imm := bf(r, 12, 12)<<5 | bf(r, 6, 4)<<2 | bf(r, 3, 2)<<6
			in.Op, in.Rd, in.Rs1, in.Imm = LW, rd, SP, int64(imm)
		case 3: // c.ldsp
			if rd == Zero {
				return in
			}
			imm := bf(r, 12, 12)<<5 | bf(r, 6, 5)<<3 | bf(r, 4, 2)<<6
			in.Op, in.Rd, in.Rs1, in.Imm = LD, rd, SP, int64(imm)
		case 4:
			if bf(r, 12, 12) == 0 {
				if rs2 == Zero { // c.jr
					if rd == Zero {
						return in
					}
					in.Op, in.Rd, in.Rs1, in.Imm = JALR, Zero, rd, 0
				} else { // c.mv
					in.Op, in.Rd, in.Rs1, in.Rs2 = ADD, rd, Zero, rs2
				}
			} else {
				switch {
				case rd == Zero && rs2 == Zero: // c.ebreak
					in.Op = EBREAK
				case rs2 == Zero: // c.jalr
					in.Op, in.Rd, in.Rs1, in.Imm = JALR, RA, rd, 0
				default: // c.add
					in.Op, in.Rd, in.Rs1, in.Rs2 = ADD, rd, rd, rs2
				}
			}
		case 6: // c.swsp
			imm := bf(r, 12, 9)<<2 | bf(r, 8, 7)<<6
			in.Op, in.Rs1, in.Rs2, in.Imm = SW, SP, rs2, int64(imm)
		case 7: // c.sdsp
			imm := bf(r, 12, 10)<<3 | bf(r, 9, 7)<<6
			in.Op, in.Rs1, in.Rs2, in.Imm = SD, SP, rs2, int64(imm)
		}
	}
	return in
}

func isCReg(r Reg) bool  { return r.IsX() && r >= 8 && r <= 15 }
func isCFReg(r Reg) bool { return r.IsF() && r.Index() >= 8 && r.Index() <= 15 }

// Compress attempts to produce a 16-bit encoding of the instruction. It
// returns (0, false) when no compressed form exists. The assembler uses it to
// model the code density the XT-910 front end was designed around.
func Compress(in Inst) (uint16, bool) {
	u := func(v int64, bits uint) bool { return v >= 0 && v < int64(1)<<bits }
	s := func(v int64, bits uint) bool {
		return v >= -(int64(1)<<(bits-1)) && v < int64(1)<<(bits-1)
	}
	switch in.Op {
	case ADDI:
		switch {
		case in.Rs1 == Zero && s(in.Imm, 6): // c.li
			return uint16(1 | 2<<13 | uint32(in.Rd.Index())<<7 |
				uint32(in.Imm>>5&1)<<12 | uint32(in.Imm&0x1F)<<2), true
		case in.Rd == in.Rs1 && in.Rd != Zero && s(in.Imm, 6) && in.Imm != 0: // c.addi
			return uint16(1 | uint32(in.Rd.Index())<<7 |
				uint32(in.Imm>>5&1)<<12 | uint32(in.Imm&0x1F)<<2), true
		case in.Rd == SP && in.Rs1 == SP && in.Imm != 0 && in.Imm&15 == 0 && s(in.Imm, 10): // c.addi16sp
			v := uint32(in.Imm)
			return uint16(1 | 3<<13 | uint32(SP)<<7 |
				(v>>9&1)<<12 | (v>>4&1)<<6 | (v>>6&1)<<5 | (v>>7&3)<<3 | (v>>5&1)<<2), true
		case in.Rs1 == SP && isCReg(in.Rd) && in.Imm > 0 && in.Imm&3 == 0 && u(in.Imm, 10): // c.addi4spn
			v := uint32(in.Imm)
			return uint16(0 | (v>>4&3)<<11 | (v>>6&15)<<7 |
				(v>>2&1)<<6 | (v>>3&1)<<5 | uint32(in.Rd.Index()-8)<<2), true
		}
	case ADDIW:
		if in.Rd == in.Rs1 && in.Rd != Zero && s(in.Imm, 6) {
			return uint16(1 | 1<<13 | uint32(in.Rd.Index())<<7 |
				uint32(in.Imm>>5&1)<<12 | uint32(in.Imm&0x1F)<<2), true
		}
	case LUI:
		if in.Rd != Zero && in.Rd != SP && in.Imm != 0 && s(in.Imm>>12, 6) {
			v := uint32(in.Imm >> 12)
			return uint16(1 | 3<<13 | uint32(in.Rd.Index())<<7 | (v>>5&1)<<12 | (v&0x1F)<<2), true
		}
	case LW:
		switch {
		case in.Rs1 == SP && in.Rd != Zero && in.Rd.IsX() && in.Imm&3 == 0 && u(in.Imm, 8): // c.lwsp
			v := uint32(in.Imm)
			return uint16(2 | 2<<13 | uint32(in.Rd.Index())<<7 |
				(v>>5&1)<<12 | (v>>2&7)<<4 | (v>>6&3)<<2), true
		case isCReg(in.Rd) && isCReg(in.Rs1) && in.Imm&3 == 0 && u(in.Imm, 7): // c.lw
			v := uint32(in.Imm)
			return uint16(0 | 2<<13 | (v>>3&7)<<10 | uint32(in.Rs1.Index()-8)<<7 |
				(v>>2&1)<<6 | (v>>6&1)<<5 | uint32(in.Rd.Index()-8)<<2), true
		}
	case LD:
		switch {
		case in.Rs1 == SP && in.Rd != Zero && in.Rd.IsX() && in.Imm&7 == 0 && u(in.Imm, 9): // c.ldsp
			v := uint32(in.Imm)
			return uint16(2 | 3<<13 | uint32(in.Rd.Index())<<7 |
				(v>>5&1)<<12 | (v>>3&3)<<5 | (v>>6&7)<<2), true
		case isCReg(in.Rd) && isCReg(in.Rs1) && in.Imm&7 == 0 && u(in.Imm, 8): // c.ld
			v := uint32(in.Imm)
			return uint16(0 | 3<<13 | (v>>3&7)<<10 | uint32(in.Rs1.Index()-8)<<7 |
				(v>>6&3)<<5 | uint32(in.Rd.Index()-8)<<2), true
		}
	case SW:
		switch {
		case in.Rs1 == SP && in.Rs2.IsX() && in.Imm&3 == 0 && u(in.Imm, 8): // c.swsp
			v := uint32(in.Imm)
			return uint16(2 | 6<<13 | (v>>2&15)<<9 | (v>>6&3)<<7 | uint32(in.Rs2.Index())<<2), true
		case isCReg(in.Rs1) && isCReg(in.Rs2) && in.Imm&3 == 0 && u(in.Imm, 7): // c.sw
			v := uint32(in.Imm)
			return uint16(0 | 6<<13 | (v>>3&7)<<10 | uint32(in.Rs1.Index()-8)<<7 |
				(v>>2&1)<<6 | (v>>6&1)<<5 | uint32(in.Rs2.Index()-8)<<2), true
		}
	case SD:
		switch {
		case in.Rs1 == SP && in.Rs2.IsX() && in.Imm&7 == 0 && u(in.Imm, 9): // c.sdsp
			v := uint32(in.Imm)
			return uint16(2 | 7<<13 | (v>>3&7)<<10 | (v>>6&7)<<7 | uint32(in.Rs2.Index())<<2), true
		case isCReg(in.Rs1) && isCReg(in.Rs2) && in.Imm&7 == 0 && u(in.Imm, 8): // c.sd
			v := uint32(in.Imm)
			return uint16(0 | 7<<13 | (v>>3&7)<<10 | uint32(in.Rs1.Index()-8)<<7 |
				(v>>6&3)<<5 | uint32(in.Rs2.Index()-8)<<2), true
		}
	case FLD:
		switch {
		case in.Rs1 == SP && in.Rd.IsF() && in.Imm&7 == 0 && u(in.Imm, 9): // c.fldsp
			v := uint32(in.Imm)
			return uint16(2 | 1<<13 | uint32(in.Rd.Index())<<7 |
				(v>>5&1)<<12 | (v>>3&3)<<5 | (v>>6&7)<<2), true
		case isCFReg(in.Rd) && isCReg(in.Rs1) && in.Imm&7 == 0 && u(in.Imm, 8): // c.fld
			v := uint32(in.Imm)
			return uint16(0 | 1<<13 | (v>>3&7)<<10 | uint32(in.Rs1.Index()-8)<<7 |
				(v>>6&3)<<5 | uint32(in.Rd.Index()-8)<<2), true
		}
	case FSD:
		switch {
		case in.Rs1 == SP && in.Rs2.IsF() && in.Imm&7 == 0 && u(in.Imm, 9): // c.fsdsp
			v := uint32(in.Imm)
			return uint16(2 | 5<<13 | (v>>3&7)<<10 | (v>>6&7)<<7 | uint32(in.Rs2.Index())<<2), true
		case isCReg(in.Rs1) && isCFReg(in.Rs2) && in.Imm&7 == 0 && u(in.Imm, 8): // c.fsd
			v := uint32(in.Imm)
			return uint16(0 | 5<<13 | (v>>3&7)<<10 | uint32(in.Rs1.Index()-8)<<7 |
				(v>>6&3)<<5 | uint32(in.Rs2.Index()-8)<<2), true
		}
	case SLLI:
		if in.Rd == in.Rs1 && in.Rd != Zero && in.Imm != 0 && u(in.Imm, 6) {
			return uint16(2 | uint32(in.Rd.Index())<<7 |
				uint32(in.Imm>>5&1)<<12 | uint32(in.Imm&0x1F)<<2), true
		}
	case SRLI, SRAI:
		if in.Rd == in.Rs1 && isCReg(in.Rd) && in.Imm != 0 && u(in.Imm, 6) {
			sel := uint32(0)
			if in.Op == SRAI {
				sel = 1
			}
			return uint16(1 | 4<<13 | uint32(in.Imm>>5&1)<<12 | sel<<10 |
				uint32(in.Rd.Index()-8)<<7 | uint32(in.Imm&0x1F)<<2), true
		}
	case ANDI:
		if in.Rd == in.Rs1 && isCReg(in.Rd) && s(in.Imm, 6) {
			return uint16(1 | 4<<13 | uint32(in.Imm>>5&1)<<12 | 2<<10 |
				uint32(in.Rd.Index()-8)<<7 | uint32(in.Imm&0x1F)<<2), true
		}
	case SUB, XOR, OR, AND, SUBW, ADDW:
		if in.Rd != in.Rs1 || !isCReg(in.Rd) || !isCReg(in.Rs2) {
			break
		}
		var hi, sel uint32
		switch in.Op {
		case SUB:
			hi, sel = 0, 0
		case XOR:
			hi, sel = 0, 1
		case OR:
			hi, sel = 0, 2
		case AND:
			hi, sel = 0, 3
		case SUBW:
			hi, sel = 1, 0
		case ADDW:
			hi, sel = 1, 1
		}
		return uint16(1 | 4<<13 | hi<<12 | 3<<10 |
			uint32(in.Rd.Index()-8)<<7 | sel<<5 | uint32(in.Rs2.Index()-8)<<2), true
	case ADD:
		switch {
		case in.Rs1 == Zero && in.Rd != Zero && in.Rs2 != Zero: // c.mv
			return uint16(2 | 4<<13 | uint32(in.Rd.Index())<<7 | uint32(in.Rs2.Index())<<2), true
		case in.Rd == in.Rs1 && in.Rd != Zero && in.Rs2 != Zero: // c.add
			return uint16(2 | 4<<13 | 1<<12 | uint32(in.Rd.Index())<<7 | uint32(in.Rs2.Index())<<2), true
		}
	case JAL:
		if in.Rd == Zero && s(in.Imm, 12) && in.Imm&1 == 0 { // c.j
			v := uint32(in.Imm)
			return uint16(1 | 5<<13 | (v>>11&1)<<12 | (v>>4&1)<<11 | (v>>8&3)<<9 |
				(v>>10&1)<<8 | (v>>6&1)<<7 | (v>>7&1)<<6 | (v>>1&7)<<3 | (v>>5&1)<<2), true
		}
	case JALR:
		if in.Imm != 0 || in.Rs1 == Zero {
			break
		}
		if in.Rd == Zero { // c.jr
			return uint16(2 | 4<<13 | uint32(in.Rs1.Index())<<7), true
		}
		if in.Rd == RA { // c.jalr
			return uint16(2 | 4<<13 | 1<<12 | uint32(in.Rs1.Index())<<7), true
		}
	case BEQ, BNE:
		if in.Rs2 == Zero && isCReg(in.Rs1) && s(in.Imm, 9) && in.Imm&1 == 0 {
			f3 := uint32(6)
			if in.Op == BNE {
				f3 = 7
			}
			v := uint32(in.Imm)
			return uint16(1 | f3<<13 | (v>>8&1)<<12 | (v>>3&3)<<10 |
				uint32(in.Rs1.Index()-8)<<7 | (v>>6&3)<<5 | (v>>1&3)<<3 | (v>>5&1)<<2), true
		}
	case EBREAK:
		return uint16(2 | 4<<13 | 1<<12), true
	}
	return 0, false
}
