package isa

import "fmt"

// CSR addresses implemented by the model. The set covers what the XT-910
// evaluation needs: privilege plumbing (M/S modes, traps), SV39 translation
// (satp with its 16-bit ASID field, per §V-E), the vector configuration state
// (vl/vtype/vstart per the 0.7.1 draft), and the performance counters the
// paper's profiling tool exposes (§IX).
const (
	CSRFflags   uint16 = 0x001
	CSRFrm      uint16 = 0x002
	CSRFcsr     uint16 = 0x003
	CSRVstart   uint16 = 0x008
	CSRVl       uint16 = 0xC20
	CSRVtype    uint16 = 0xC21
	CSRVlenb    uint16 = 0xC22
	CSRCycle    uint16 = 0xC00
	CSRTime     uint16 = 0xC01
	CSRInstret  uint16 = 0xC02
	CSRSstatus  uint16 = 0x100
	CSRSie      uint16 = 0x104
	CSRStvec    uint16 = 0x105
	CSRSscratch uint16 = 0x140
	CSRSepc     uint16 = 0x141
	CSRScause   uint16 = 0x142
	CSRStval    uint16 = 0x143
	CSRSip      uint16 = 0x144
	CSRSatp     uint16 = 0x180
	CSRMstatus  uint16 = 0x300
	CSRMisa     uint16 = 0x301
	CSRMedeleg  uint16 = 0x302
	CSRMideleg  uint16 = 0x303
	CSRMie      uint16 = 0x304
	CSRMtvec    uint16 = 0x305
	CSRMscratch uint16 = 0x340
	CSRMepc     uint16 = 0x341
	CSRMcause   uint16 = 0x342
	CSRMtval    uint16 = 0x343
	CSRMip      uint16 = 0x344
	CSRMhartid  uint16 = 0xF14
	CSRMcycle   uint16 = 0xB00
	CSRMinstret uint16 = 0xB02

	// Hardware performance-monitor counters (§II "performance monitors").
	// The model maps them onto its pipeline statistics; see core.CSR.
	CSRMhpmcounter3  uint16 = 0xB03 // branches retired
	CSRMhpmcounter4  uint16 = 0xB04 // branch mispredictions
	CSRMhpmcounter5  uint16 = 0xB05 // L1D misses
	CSRMhpmcounter6  uint16 = 0xB06 // L1I misses
	CSRMhpmcounter7  uint16 = 0xB07 // loads retired
	CSRMhpmcounter8  uint16 = 0xB08 // stores retired
	CSRMhpmcounter9  uint16 = 0xB09 // store-to-load forwards
	CSRMhpmcounter10 uint16 = 0xB0A // pipeline flushes
	CSRMhpmcounter11 uint16 = 0xB0B // page-table walks
	CSRMhpmcounter12 uint16 = 0xB0C // vector instructions

	// XT-910 implementation-defined CSRs (modelled after T-Head's mxstatus
	// family): extension enable and hardware-prefetch control.
	CSRMxstatus uint16 = 0x7C0 // bit0: enable custom extensions
	CSRMhcr     uint16 = 0x7C1 // prefetch control: bit0 L1, bit1 L2, bit2 TLB, bit3 large distance
)

// WARL masks for the machine interrupt CSRs. The model implements the three
// machine interrupt sources (MSI/MTI/MEI) plus their S-mode shadows; every
// other bit is hard-wired to zero. mip's software-writable mask covers only
// the S-mode bits — MSIP/MTIP/MEIP are driven by the CLINT/PLIC and read
// through the hart's interrupt-source hook, never stored.
const (
	MieWritableMask     uint64 = 0xAAA // SSIP/MSIP, STIP/MTIP, SEIP/MEIP enables
	MipWritableMask     uint64 = 0x222 // SSIP/STIP/SEIP (machine bits are wired)
	MidelegWritableMask uint64 = 0x222 // only S-mode interrupts are delegable
)

// Machine interrupt causes (mcause values with bit 63 set on delivery) and
// their mip/mie bit positions.
const (
	IntMSoft  = 3  // machine software interrupt (IPI)
	IntMTimer = 7  // machine timer interrupt
	IntMExt   = 11 // machine external interrupt
)

// satp field helpers (SV39). The ASID field is 16 bits wide per §V-E.
const (
	SatpModeSV39 uint64 = 8
	SatpModeOff  uint64 = 0
)

// SatpMode extracts the translation mode from a satp value.
func SatpMode(satp uint64) uint64 { return satp >> 60 }

// SatpASID extracts the 16-bit ASID from a satp value.
func SatpASID(satp uint64) uint16 { return uint16(satp >> 44) }

// SatpPPN extracts the root page-table physical page number.
func SatpPPN(satp uint64) uint64 { return satp & ((1 << 44) - 1) }

// MakeSatp composes a satp value.
func MakeSatp(mode uint64, asid uint16, ppn uint64) uint64 {
	return mode<<60 | uint64(asid)<<44 | (ppn & ((1 << 44) - 1))
}

// Privilege levels.
const (
	PrivU = 0
	PrivS = 1
	PrivM = 3
)

// Trap causes (mcause/scause values).
const (
	ExcInstAddrMisaligned  = 0
	ExcInstAccessFault     = 1
	ExcIllegalInst         = 2
	ExcBreakpoint          = 3
	ExcLoadAddrMisaligned  = 4
	ExcLoadAccessFault     = 5
	ExcStoreAddrMisaligned = 6
	ExcStoreAccessFault    = 7
	ExcEcallU              = 8
	ExcEcallS              = 9
	ExcEcallM              = 11
	ExcInstPageFault       = 12
	ExcLoadPageFault       = 13
	ExcStorePageFault      = 15
)

var csrNames = map[uint16]string{
	CSRFflags: "fflags", CSRFrm: "frm", CSRFcsr: "fcsr",
	CSRVstart: "vstart", CSRVl: "vl", CSRVtype: "vtype", CSRVlenb: "vlenb",
	CSRCycle: "cycle", CSRTime: "time", CSRInstret: "instret",
	CSRSstatus: "sstatus", CSRSie: "sie", CSRStvec: "stvec",
	CSRSscratch: "sscratch", CSRSepc: "sepc", CSRScause: "scause",
	CSRStval: "stval", CSRSip: "sip", CSRSatp: "satp",
	CSRMstatus: "mstatus", CSRMisa: "misa", CSRMedeleg: "medeleg",
	CSRMideleg: "mideleg", CSRMie: "mie", CSRMtvec: "mtvec",
	CSRMscratch: "mscratch", CSRMepc: "mepc", CSRMcause: "mcause",
	CSRMtval: "mtval", CSRMip: "mip", CSRMhartid: "mhartid",
	CSRMcycle: "mcycle", CSRMinstret: "minstret",
	CSRMxstatus: "mxstatus", CSRMhcr: "mhcr",
	CSRMhpmcounter3: "mhpmcounter3", CSRMhpmcounter4: "mhpmcounter4",
	CSRMhpmcounter5: "mhpmcounter5", CSRMhpmcounter6: "mhpmcounter6",
	CSRMhpmcounter7: "mhpmcounter7", CSRMhpmcounter8: "mhpmcounter8",
	CSRMhpmcounter9: "mhpmcounter9", CSRMhpmcounter10: "mhpmcounter10",
	CSRMhpmcounter11: "mhpmcounter11", CSRMhpmcounter12: "mhpmcounter12",
}

var csrByName = map[string]uint16{}

func init() {
	for num, name := range csrNames {
		csrByName[name] = num
	}
}

// CSRName returns the symbolic name of a CSR, or a hex spelling for unknown
// addresses.
func CSRName(num uint16) string {
	if n, ok := csrNames[num]; ok {
		return n
	}
	return fmt.Sprintf("0x%03x", num)
}

// ParseCSR resolves a CSR name to its address.
func ParseCSR(name string) (uint16, bool) {
	n, ok := csrByName[name]
	return n, ok
}
