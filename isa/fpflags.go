package isa

import (
	"math"
	"math/big"
)

// IEEE-754 exception flags in the fflags CSR bit layout.
const (
	FFlagNX uint8 = 1 << 0 // inexact
	FFlagUF uint8 = 1 << 1 // underflow
	FFlagOF uint8 = 1 << 2 // overflow
	FFlagDZ uint8 = 1 << 3 // divide by zero
	FFlagNV uint8 = 1 << 4 // invalid operation
)

// MstatusFSDirty is the mstatus pattern a floating-point state write leaves
// behind: FS (bits 14:13) = Dirty plus the SD summary bit.
const MstatusFSDirty uint64 = 3<<13 | 1<<63

// bigPrec is wide enough that sums, products, and fused multiply-adds of
// float64 operands are always exact: the worst case (a subnormal product
// added to a value at the opposite end of the exponent range) spans about
// 4300 bits.
const bigPrec = 4500

// EvalFPUFlags is EvalFPU plus the IEEE exception flags the operation raises
// (fflags bit layout). The result value comes from EvalFPU itself, so a
// caller switching to this function can never change architectural results.
//
// Fidelity notes: rounding is always round-to-nearest-even regardless of frm
// (Go arithmetic semantics — frm is writable but non-functional), and NaN
// payloads follow Go, as EvalFPU already does. Flags are computed against
// the exact real result via math/big, so NX/OF/UF are exact-rounding flags
// even where the underlying value computation double-rounds (single-
// precision sqrt/FMA go through float64).
func EvalFPUFlags(op Op, a, b, c uint64) (res uint64, flags uint8, ok bool) {
	res, ok = EvalFPU(op, a, b, c)
	if !ok {
		return 0, 0, false
	}
	return res, fpuFlags(op, a, b, c), true
}

// fpuFlags computes the fflags bits raised by one scalar FP operation on raw
// register operands.
func fpuFlags(op Op, a, b, c uint64) uint8 {
	sa, sb, sc := UnboxF32(a), UnboxF32(b), UnboxF32(c)
	da, db := math.Float64frombits(a), math.Float64frombits(b)
	dc := math.Float64frombits(c)
	switch op {
	case FADDS:
		return nv32(a, b) | addSub32(sa, sb, false)
	case FSUBS:
		return nv32(a, b) | addSub32(sa, sb, true)
	case FMULS:
		return nv32(a, b) | mul32(sa, sb)
	case FDIVS:
		return nv32(a, b) | div32(sa, sb)
	case FSQRTS:
		return nv32(a) | sqrt32(sa)
	case FMADDS:
		return nv32(a, b, c) | fma32(sa, sb, sc, false)
	case FMSUBS:
		return nv32(a, b, c) | fma32(sa, sb, sc, true)
	case FADDD:
		return nv64(a, b) | addSub64(da, db, false)
	case FSUBD:
		return nv64(a, b) | addSub64(da, db, true)
	case FMULD:
		return nv64(a, b) | mul64(da, db)
	case FDIVD:
		return nv64(a, b) | div64(da, db)
	case FSQRTD:
		return nv64(a) | sqrt64(da)
	case FMADDD:
		return nv64(a, b, c) | fma64(da, db, dc, false)
	case FMSUBD:
		return nv64(a, b, c) | fma64(da, db, dc, true)
	case FMINS, FMAXS:
		return nv32(a, b) // signaling NaN operands raise NV; quiet do not
	case FMIND, FMAXD:
		return nv64(a, b)
	case FCVTWS:
		return cvtIntFlags(float64(sa), -0x1p31, 0x1p31)
	case FCVTLS:
		return cvtIntFlags(float64(sa), -0x1p63, 0x1p63)
	case FCVTWD:
		return cvtIntFlags(da, -0x1p31, 0x1p31)
	case FCVTLD:
		return cvtIntFlags(da, -0x1p63, 0x1p63)
	case FCVTSW:
		v := int32(uint32(a))
		if float64(float32(v)) != float64(v) {
			return FFlagNX
		}
		return 0
	case FCVTSL:
		if _, acc := new(big.Float).SetInt64(int64(a)).Float32(); acc != big.Exact {
			return FFlagNX
		}
		return 0
	case FCVTDL:
		if _, acc := new(big.Float).SetInt64(int64(a)).Float64(); acc != big.Exact {
			return FFlagNX
		}
		return 0
	case FCVTDW:
		return 0 // every int32 is exact in double
	case FCVTSD:
		if math.IsNaN(da) {
			return nv64(a)
		}
		if math.IsInf(da, 0) {
			return 0
		}
		return flags32(bfloat(da))
	case FCVTDS:
		return nv32(a) // widening is exact; a signaling NaN still raises NV
	case FEQS:
		return nv32(a, b) // quiet comparison: NV on signaling NaN only
	case FEQD:
		return nv64(a, b)
	case FLTS, FLES:
		if isNaN32(sa) || isNaN32(sb) {
			return FFlagNV // signaling comparison: NV on any NaN
		}
		return 0
	case FLTD, FLED:
		if math.IsNaN(da) || math.IsNaN(db) {
			return FFlagNV
		}
		return 0
	}
	return 0 // sign injection and moves raise no flags
}

// sn64 reports whether v is a signaling NaN in double precision.
func sn64(v uint64) bool {
	return v&0x7FF0000000000000 == 0x7FF0000000000000 &&
		v&0x000FFFFFFFFFFFFF != 0 && v&0x0008000000000000 == 0
}

// sn32 reports whether v is a properly NaN-boxed signaling single-precision
// NaN. An improperly boxed value reads as the canonical quiet NaN and does
// not signal.
func sn32(v uint64) bool {
	if v>>32 != 0xFFFFFFFF {
		return false
	}
	w := uint32(v)
	return w&0x7F800000 == 0x7F800000 && w&0x007FFFFF != 0 && w&0x00400000 == 0
}

func nv32(vs ...uint64) uint8 {
	for _, v := range vs {
		if sn32(v) {
			return FFlagNV
		}
	}
	return 0
}

func nv64(vs ...uint64) uint8 {
	for _, v := range vs {
		if sn64(v) {
			return FFlagNV
		}
	}
	return 0
}

func isNaN32(f float32) bool { return f != f }

func isInf32(f float32) bool { return f > math.MaxFloat32 || f < -math.MaxFloat32 }

func abs32(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

// bfloat lifts a finite float64 into an exact big.Float.
func bfloat(f float64) *big.Float {
	return new(big.Float).SetPrec(bigPrec).SetFloat64(f)
}

// flags64 derives NX/OF/UF from an exact result z when rounded to double.
func flags64(z *big.Float) uint8 {
	r, acc := z.Float64()
	var fl uint8
	if acc != big.Exact {
		fl = FFlagNX
	}
	if math.IsInf(r, 0) && !z.IsInf() {
		fl |= FFlagOF | FFlagNX
	}
	if fl&FFlagNX != 0 && fl&FFlagOF == 0 && (r == 0 || math.Abs(r) < 0x1p-1022) {
		fl |= FFlagUF
	}
	return fl
}

// flags32 derives NX/OF/UF from an exact result z when rounded to single.
func flags32(z *big.Float) uint8 {
	r, acc := z.Float32()
	var fl uint8
	if acc != big.Exact {
		fl = FFlagNX
	}
	if isInf32(r) && !z.IsInf() {
		fl |= FFlagOF | FFlagNX
	}
	if fl&FFlagNX != 0 && fl&FFlagOF == 0 && (r == 0 || abs32(r) < 0x1p-126) {
		fl |= FFlagUF
	}
	return fl
}

func addSub64(x, y float64, sub bool) uint8 {
	if math.IsNaN(x) || math.IsNaN(y) {
		return 0
	}
	r := x + y
	if sub {
		r = x - y
	}
	if math.IsNaN(r) {
		return FFlagNV // inf - inf
	}
	if math.IsInf(x, 0) || math.IsInf(y, 0) {
		return 0
	}
	z := bfloat(x)
	if sub {
		z.Sub(z, bfloat(y))
	} else {
		z.Add(z, bfloat(y))
	}
	return flags64(z)
}

func addSub32(x, y float32, sub bool) uint8 {
	if isNaN32(x) || isNaN32(y) {
		return 0
	}
	r := x + y
	if sub {
		r = x - y
	}
	if isNaN32(r) {
		return FFlagNV
	}
	if isInf32(x) || isInf32(y) {
		return 0
	}
	z := bfloat(float64(x))
	if sub {
		z.Sub(z, bfloat(float64(y)))
	} else {
		z.Add(z, bfloat(float64(y)))
	}
	return flags32(z)
}

func mul64(x, y float64) uint8 {
	if math.IsNaN(x) || math.IsNaN(y) {
		return 0
	}
	if math.IsNaN(x * y) {
		return FFlagNV // 0 × inf
	}
	if math.IsInf(x, 0) || math.IsInf(y, 0) {
		return 0
	}
	z := bfloat(x)
	z.Mul(z, bfloat(y))
	return flags64(z)
}

func mul32(x, y float32) uint8 {
	if isNaN32(x) || isNaN32(y) {
		return 0
	}
	if isNaN32(x * y) {
		return FFlagNV
	}
	if isInf32(x) || isInf32(y) {
		return 0
	}
	z := bfloat(float64(x))
	z.Mul(z, bfloat(float64(y)))
	return flags32(z)
}

// div exactness: a finite quotient is exact iff r·y == x in real arithmetic
// (an exact binary quotient always fits the result format's mantissa), which
// sidesteps any reliance on big.Float.Quo accuracy reporting.
func div64(x, y float64) uint8 {
	if math.IsNaN(x) || math.IsNaN(y) {
		return 0
	}
	r := x / y
	if math.IsNaN(r) {
		return FFlagNV // 0/0 or inf/inf
	}
	if y == 0 {
		return FFlagDZ
	}
	if math.IsInf(x, 0) || math.IsInf(y, 0) {
		return 0
	}
	if math.IsInf(r, 0) {
		return FFlagOF | FFlagNX
	}
	z := bfloat(r)
	z.Mul(z, bfloat(y))
	if z.Cmp(bfloat(x)) == 0 {
		return 0
	}
	fl := FFlagNX
	if r == 0 || math.Abs(r) < 0x1p-1022 {
		fl |= FFlagUF
	}
	return fl
}

func div32(x, y float32) uint8 {
	if isNaN32(x) || isNaN32(y) {
		return 0
	}
	r := x / y
	if isNaN32(r) {
		return FFlagNV
	}
	if y == 0 {
		return FFlagDZ
	}
	if isInf32(x) || isInf32(y) {
		return 0
	}
	if isInf32(r) {
		return FFlagOF | FFlagNX
	}
	z := bfloat(float64(r))
	z.Mul(z, bfloat(float64(y)))
	if z.Cmp(bfloat(float64(x))) == 0 {
		return 0
	}
	fl := FFlagNX
	if r == 0 || abs32(r) < 0x1p-126 {
		fl |= FFlagUF
	}
	return fl
}

// sqrt exactness: r is exact iff r² == x in real arithmetic (an exact square
// root has at most half the mantissa bits, so its square is representable).
func sqrt64(x float64) uint8 {
	if math.IsNaN(x) {
		return 0
	}
	if x < 0 {
		return FFlagNV
	}
	if x == 0 || math.IsInf(x, 1) {
		return 0
	}
	z := bfloat(math.Sqrt(x))
	z.Mul(z, z)
	if z.Cmp(bfloat(x)) == 0 {
		return 0
	}
	return FFlagNX
}

func sqrt32(x float32) uint8 {
	if isNaN32(x) {
		return 0
	}
	if x < 0 {
		return FFlagNV
	}
	if x == 0 || isInf32(x) {
		return 0
	}
	z := bfloat(float64(float32(math.Sqrt(float64(x)))))
	z.Mul(z, z)
	if z.Cmp(bfloat(float64(x))) == 0 {
		return 0
	}
	return FFlagNX
}

func fma64(x, y, w float64, sub bool) uint8 {
	if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(w) {
		return 0
	}
	if sub {
		w = -w
	}
	if math.IsNaN(math.FMA(x, y, w)) {
		return FFlagNV // inf × 0, or an infinite product cancelling w
	}
	if math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(w, 0) {
		return 0
	}
	z := bfloat(x)
	z.Mul(z, bfloat(y))
	z.Add(z, bfloat(w))
	return flags64(z)
}

func fma32(x, y, w float32, sub bool) uint8 {
	if isNaN32(x) || isNaN32(y) || isNaN32(w) {
		return 0
	}
	if sub {
		w = -w
	}
	if isNaN32(float32(math.FMA(float64(x), float64(y), float64(w)))) {
		return FFlagNV
	}
	if isInf32(x) || isInf32(y) || isInf32(w) {
		return 0
	}
	z := bfloat(float64(x))
	z.Mul(z, bfloat(float64(y)))
	z.Add(z, bfloat(float64(w)))
	return flags32(z)
}

// cvtIntFlags computes fflags for a float→int conversion truncating toward
// zero into [lo, hi): NV when the truncated value falls outside the target
// range (or the input is NaN), NX when truncation discards a fraction.
func cvtIntFlags(f, lo, hi float64) uint8 {
	if math.IsNaN(f) {
		return FFlagNV
	}
	t := math.Trunc(f)
	if t >= hi || t < lo {
		return FFlagNV
	}
	if t != f {
		return FFlagNX
	}
	return 0
}
