// Package isa models the XT-910 instruction set: the RV64IMAFD base, the RVC
// compressed subset, the RISC-V Vector extension (0.7.1 draft subset), and the
// XT-910 non-standard custom extensions (indexed load/store, bit manipulation,
// multiply-accumulate, cache/TLB maintenance).
//
// The package provides bit-level encoding and decoding, disassembly, and pure
// semantic helpers shared by the architectural emulator (internal/emu) and the
// cycle-approximate pipeline model (internal/core), so that both models execute
// exactly the same ISA.
package isa

import "fmt"

// Reg identifies an architectural register in a unified namespace:
// x0–x31 occupy 0–31, f0–f31 occupy 32–63, and v0–v31 occupy 64–95.
// The unified numbering lets the rename stage treat all three files uniformly.
type Reg uint8

// Register namespace boundaries.
const (
	RegX0 Reg = 0  // integer file base
	RegF0 Reg = 32 // floating-point file base
	RegV0 Reg = 64 // vector file base

	NumXRegs = 32
	NumFRegs = 32
	NumVRegs = 32

	// RegNone marks an absent operand.
	RegNone Reg = 255
)

// Common ABI registers used by the assembler and code generators.
const (
	Zero Reg = 0
	RA   Reg = 1
	SP   Reg = 2
	GP   Reg = 3
	TP   Reg = 4
	T0   Reg = 5
	T1   Reg = 6
	T2   Reg = 7
	S0   Reg = 8
	S1   Reg = 9
	A0   Reg = 10
	A1   Reg = 11
	A2   Reg = 12
	A3   Reg = 13
	A4   Reg = 14
	A5   Reg = 15
	A6   Reg = 16
	A7   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	S8   Reg = 24
	S9   Reg = 25
	S10  Reg = 26
	S11  Reg = 27
	T3   Reg = 28
	T4   Reg = 29
	T5   Reg = 30
	T6   Reg = 31
)

// X returns the integer register with the given index (0–31).
func X(i int) Reg { return Reg(i) }

// F returns the floating-point register with the given index (0–31).
func F(i int) Reg { return RegF0 + Reg(i) }

// V returns the vector register with the given index (0–31).
func V(i int) Reg { return RegV0 + Reg(i) }

// IsX reports whether r names an integer register.
func (r Reg) IsX() bool { return r < RegF0 }

// IsF reports whether r names a floating-point register.
func (r Reg) IsF() bool { return r >= RegF0 && r < RegV0 }

// IsV reports whether r names a vector register.
func (r Reg) IsV() bool { return r >= RegV0 && r < RegV0+NumVRegs }

// Index returns the register's index within its own file (0–31).
func (r Reg) Index() int {
	switch {
	case r.IsX():
		return int(r)
	case r.IsF():
		return int(r - RegF0)
	case r.IsV():
		return int(r - RegV0)
	}
	return -1
}

var xABINames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

var fABINames = [32]string{
	"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
	"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
	"fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
	"fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
}

// String returns the ABI name of the register ("a0", "fs1", "v7", …).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "<none>"
	case r.IsX():
		return xABINames[r]
	case r.IsF():
		return fABINames[r.Index()]
	case r.IsV():
		return fmt.Sprintf("v%d", r.Index())
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// regNames maps every accepted spelling (ABI and numeric) to a Reg.
// The assembler uses it to parse operands.
var regNames = map[string]Reg{}

func init() {
	for i := 0; i < 32; i++ {
		regNames[fmt.Sprintf("x%d", i)] = X(i)
		regNames[xABINames[i]] = X(i)
		regNames[fmt.Sprintf("f%d", i)] = F(i)
		regNames[fABINames[i]] = F(i)
		regNames[fmt.Sprintf("v%d", i)] = V(i)
	}
	regNames["fp"] = S0
}

// ParseReg resolves a register name ("a0", "x10", "fa0", "v3", "fp") to a Reg.
func ParseReg(name string) (Reg, bool) {
	r, ok := regNames[name]
	return r, ok
}
