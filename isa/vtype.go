package isa

import "fmt"

// VType models the vtype CSR as laid out in the 0.7.1 vector draft that the
// XT-910 implements: vlmul in bits [1:0], vsew in bits [4:2]. The element
// width and register-group multiplier are configured by vsetvl/vsetvli and the
// hardware derives VLMAX from them (§VII).
type VType uint64

// SEW element-width encodings (vsew field values).
const (
	SEW8  = 0
	SEW16 = 1
	SEW32 = 2
	SEW64 = 3
)

// MakeVType composes a vtype value from a vsew code (SEW8…SEW64) and an LMUL
// exponent (0→m1, 1→m2, 2→m4, 3→m8).
func MakeVType(vsew, vlmulExp int) VType {
	return VType(uint64(vlmulExp&3) | uint64(vsew&7)<<2)
}

// SEW returns the element width in bits (8, 16, 32 or 64).
func (v VType) SEW() int { return 8 << ((v >> 2) & 7) }

// LMUL returns the register-group multiplier (1, 2, 4 or 8).
func (v VType) LMUL() int { return 1 << (v & 3) }

// VLMAX returns the maximum vector length for the given VLEN in bits.
func (v VType) VLMAX(vlenBits int) int {
	return vlenBits / v.SEW() * v.LMUL()
}

// Valid reports whether the vtype encodes a supported configuration.
func (v VType) Valid() bool { return (v>>2)&7 <= 3 }

// String renders the configuration in assembler syntax ("e32,m2").
func (v VType) String() string {
	return fmt.Sprintf("e%d,m%d", v.SEW(), v.LMUL())
}

// ParseVTypeArgs parses the assembler spelling of vtype arguments
// ("e32", "m2") into a VType. Both parts are optional; defaults are e8,m1.
func ParseVTypeArgs(parts []string) (VType, error) {
	vsew, vlmul := 0, 0
	for _, p := range parts {
		switch p {
		case "e8":
			vsew = SEW8
		case "e16":
			vsew = SEW16
		case "e32":
			vsew = SEW32
		case "e64":
			vsew = SEW64
		case "m1":
			vlmul = 0
		case "m2":
			vlmul = 1
		case "m4":
			vlmul = 2
		case "m8":
			vlmul = 3
		case "d1", "d2", "d4", "d8": // 0.7.1 EDIV hints: accepted, ignored
		default:
			return 0, fmt.Errorf("isa: unknown vtype element %q", p)
		}
	}
	return MakeVType(vsew, vlmul), nil
}
