package isa

import "fmt"

// Inst is a decoded instruction. It is the common currency between the
// assembler, the functional emulator, and the pipeline model.
//
// Operand conventions:
//   - Rd is the destination (or store-data source for stores, matching the
//     XT-910 custom store forms; standard stores keep data in Rs2).
//   - Imm holds the sign-extended immediate. For indexed custom memory ops and
//     addsl it holds the 2-bit shift amount; for ext/extu it packs msb<<6|lsb.
//   - CSR holds the CSR address for Zicsr operations.
type Inst struct {
	Op   Op
	Rd   Reg
	Rs1  Reg
	Rs2  Reg
	Rs3  Reg
	Imm  int64
	CSR  uint16
	Size uint8 // encoded size in bytes: 2 (RVC) or 4
	// Masked marks a vector operation predicated on v0 (vm=0 in the
	// encoding): elements whose mask bit is clear are left undisturbed.
	Masked bool
}

// NewInst returns an instruction with unused register fields set to RegNone
// and Size defaulted to 4.
func NewInst(op Op) Inst {
	return Inst{Op: op, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone, Size: 4}
}

// Sources returns the architectural source registers the instruction reads,
// in a fixed-size array plus a count (to avoid allocation on the hot path).
func (i *Inst) Sources() (regs [3]Reg, n int) {
	// x0 is kept: consumers resolve operands positionally (operand k of a
	// non-commutative op must stay at index k), and the rename stage maps
	// x0 to the permanently-zero physical register, so including it costs
	// nothing. Dropping it shifted later sources down a slot and made e.g.
	// `sra rd, x0, rs2` read the shift amount as the value being shifted.
	add := func(r Reg) {
		if r != RegNone {
			regs[n] = r
			n++
		}
	}
	add(i.Rs1)
	add(i.Rs2)
	add(i.Rs3)
	// Stores carry their data in Rs2 (standard) or Rd (custom indexed form);
	// MACs and conditional moves read their destination.
	switch i.Op {
	case XSRB, XSRH, XSRW, XSRD,
		XMULA, XMULS, XMULAH, XMULSH, XMULAW, XMULSW,
		XMVEQZ, XMVNEZ,
		VMACCVV, VWMACCVV, VFMACCVV:
		add(i.Rd)
	}
	return regs, n
}

// WritesReg reports whether the instruction produces a register result.
func (i *Inst) WritesReg() bool {
	if i.Rd == RegNone {
		return false
	}
	switch i.Op.Class() {
	case ClassStore, ClassBranch, ClassSys, ClassCacheOp, ClassVStore:
		return false
	}
	if i.Rd == Zero && i.Rd.IsX() {
		return false
	}
	return true
}

// vmSuffix renders the v0-mask operand of a masked vector instruction.
func (i Inst) vmSuffix() string {
	if i.Masked {
		return ", v0.t"
	}
	return ""
}

// String disassembles the instruction.
func (i Inst) String() string {
	op := i.Op
	switch op.Class() {
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, %d", op, i.Rs1, i.Rs2, i.Imm)
	case ClassJump:
		if op == JAL {
			return fmt.Sprintf("jal %s, %d", i.Rd, i.Imm)
		}
		return fmt.Sprintf("jalr %s, %d(%s)", i.Rd, i.Imm, i.Rs1)
	case ClassLoad:
		switch op {
		case XLRB, XLRH, XLRW, XLRD, XLURB, XLURH, XLURW:
			return fmt.Sprintf("%s %s, %s, %s, %d", op, i.Rd, i.Rs1, i.Rs2, i.Imm)
		}
		return fmt.Sprintf("%s %s, %d(%s)", op, i.Rd, i.Imm, i.Rs1)
	case ClassStore:
		switch op {
		case XSRB, XSRH, XSRW, XSRD:
			return fmt.Sprintf("%s %s, %s, %s, %d", op, i.Rd, i.Rs1, i.Rs2, i.Imm)
		}
		return fmt.Sprintf("%s %s, %d(%s)", op, i.Rs2, i.Imm, i.Rs1)
	case ClassCSR:
		if op == CSRRWI || op == CSRRSI || op == CSRRCI {
			return fmt.Sprintf("%s %s, %s, %d", op, i.Rd, CSRName(i.CSR), i.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", op, i.Rd, CSRName(i.CSR), i.Rs1)
	case ClassSys:
		if op == SFENCEVMA {
			return fmt.Sprintf("sfence.vma %s, %s", i.Rs1, i.Rs2)
		}
		return op.String()
	case ClassAMO:
		if op == LRW || op == LRD {
			return fmt.Sprintf("%s %s, (%s)", op, i.Rd, i.Rs1)
		}
		return fmt.Sprintf("%s %s, %s, (%s)", op, i.Rd, i.Rs2, i.Rs1)
	case ClassVSet:
		if op == VSETVLI {
			return fmt.Sprintf("vsetvli %s, %s, %s", i.Rd, i.Rs1, VType(i.Imm).String())
		}
		return fmt.Sprintf("vsetvl %s, %s, %s", i.Rd, i.Rs1, i.Rs2)
	case ClassVLoad:
		if op == VLSE || op == VLXEI {
			return fmt.Sprintf("%s %s, (%s), %s%s", op, i.Rd, i.Rs1, i.Rs2, i.vmSuffix())
		}
		return fmt.Sprintf("%s %s, (%s)%s", op, i.Rd, i.Rs1, i.vmSuffix())
	case ClassVStore:
		if op == VSSE || op == VSXEI {
			return fmt.Sprintf("%s %s, (%s), %s%s", op, i.Rs2, i.Rs1, i.Rs3, i.vmSuffix())
		}
		return fmt.Sprintf("%s %s, (%s)%s", op, i.Rs2, i.Rs1, i.vmSuffix())
	case ClassCacheOp:
		switch op {
		case XDCACHECVA, XDCACHEIVA, XTLBIASID, XTLBIVA:
			return fmt.Sprintf("%s %s", op, i.Rs1)
		}
		return op.String()
	case ClassVALU, ClassVFPU:
		// assembler operand order: vd, vs2, vs1/rs1/imm
		switch op {
		case VMVXS:
			return fmt.Sprintf("%s %s, %s", op, i.Rd, i.Rs2)
		case VMVSX, VMVVX, VMVVV:
			return fmt.Sprintf("%s %s, %s", op, i.Rd, i.Rs1)
		case VADDVI:
			return fmt.Sprintf("%s %s, %s, %d%s", op, i.Rd, i.Rs2, i.Imm, i.vmSuffix())
		}
		return fmt.Sprintf("%s %s, %s, %s%s", op, i.Rd, i.Rs2, i.Rs1, i.vmSuffix())
	}
	switch op {
	case LUI, AUIPC:
		return fmt.Sprintf("%s %s, %d", op, i.Rd, i.Imm>>12)
	case XADDSL:
		return fmt.Sprintf("addsl %s, %s, %s, %d", i.Rd, i.Rs1, i.Rs2, i.Imm)
	case XEXT, XEXTU:
		return fmt.Sprintf("%s %s, %s, %d, %d", op, i.Rd, i.Rs1, (i.Imm>>6)&63, i.Imm&63)
	case FMADDS, FMSUBS, FMADDD, FMSUBD:
		return fmt.Sprintf("%s %s, %s, %s, %s", op, i.Rd, i.Rs1, i.Rs2, i.Rs3)
	}
	if i.Rs2 == RegNone {
		if i.Rs1 == RegNone {
			return fmt.Sprintf("%s %s, %d", op, i.Rd, i.Imm)
		}
		switch op {
		case SLLI, SRLI, SRAI, SLLIW, SRLIW, SRAIW, XSRRI,
			ADDI, SLTI, SLTIU, XORI, ORI, ANDI, ADDIW:
			return fmt.Sprintf("%s %s, %s, %d", op, i.Rd, i.Rs1, i.Imm)
		}
		return fmt.Sprintf("%s %s, %s", op, i.Rd, i.Rs1)
	}
	return fmt.Sprintf("%s %s, %s, %s", op, i.Rd, i.Rs1, i.Rs2)
}
