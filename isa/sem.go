package isa

import (
	"math"
	"math/bits"
)

// This file holds the pure architectural semantics of every scalar operation.
// Both the functional emulator (internal/emu) and the out-of-order pipeline
// (internal/core) call these helpers, guaranteeing that the golden model and
// the timing model can never disagree on a result.

func sext32(v uint64) uint64 { return uint64(int64(int32(uint32(v)))) }

// EvalIntALU computes the result of a single-cycle integer operation. b holds
// the second register operand or the immediate, as appropriate; pc is needed
// by lui/auipc/jal/jalr (which produce link or pc-relative values).
// ok is false when the op is not an integer ALU/Mul/Div producer.
func EvalIntALU(op Op, a, b uint64, pc uint64, imm int64, size uint8) (res uint64, ok bool) {
	ok = true
	switch op {
	case LUI:
		res = uint64(imm)
	case AUIPC:
		res = pc + uint64(imm)
	case JAL, JALR:
		res = pc + uint64(size)
	case ADDI:
		res = a + uint64(imm)
	case SLTI:
		if int64(a) < imm {
			res = 1
		}
	case SLTIU:
		if a < uint64(imm) {
			res = 1
		}
	case XORI:
		res = a ^ uint64(imm)
	case ORI:
		res = a | uint64(imm)
	case ANDI:
		res = a & uint64(imm)
	case SLLI:
		res = a << (imm & 63)
	case SRLI:
		res = a >> (imm & 63)
	case SRAI:
		res = uint64(int64(a) >> (imm & 63))
	case ADDIW:
		res = sext32(a + uint64(imm))
	case SLLIW:
		res = sext32(a << (imm & 31))
	case SRLIW:
		res = sext32(uint64(uint32(a) >> (imm & 31)))
	case SRAIW:
		res = uint64(int64(int32(uint32(a)) >> (imm & 31)))
	case ADD:
		res = a + b
	case SUB:
		res = a - b
	case SLL:
		res = a << (b & 63)
	case SLT:
		if int64(a) < int64(b) {
			res = 1
		}
	case SLTU:
		if a < b {
			res = 1
		}
	case XOR:
		res = a ^ b
	case SRL:
		res = a >> (b & 63)
	case SRA:
		res = uint64(int64(a) >> (b & 63))
	case OR:
		res = a | b
	case AND:
		res = a & b
	case ADDW:
		res = sext32(a + b)
	case SUBW:
		res = sext32(a - b)
	case SLLW:
		res = sext32(a << (b & 31))
	case SRLW:
		res = sext32(uint64(uint32(a) >> (b & 31)))
	case SRAW:
		res = uint64(int64(int32(uint32(a)) >> (b & 31)))
	case MUL:
		res = a * b
	case MULH:
		hi, _ := bits.Mul64(absU(int64(a)), absU(int64(b)))
		lo := a * b
		res = hi
		if (int64(a) < 0) != (int64(b) < 0) && lo|hi != 0 {
			// negate the 128-bit product
			res = ^hi
			if lo == 0 {
				res++
			}
		}
	case MULHU:
		res, _ = bits.Mul64(a, b)
	case MULHSU:
		hi, lo := bits.Mul64(absU(int64(a)), b)
		res = hi
		if int64(a) < 0 && lo|hi != 0 {
			res = ^hi
			if lo == 0 {
				res++
			}
		}
	case MULW:
		res = sext32(a * b)
	case DIV:
		res = divS(int64(a), int64(b))
	case DIVU:
		res = divU(a, b)
	case REM:
		res = remS(int64(a), int64(b))
	case REMU:
		res = remU(a, b)
	case DIVW:
		res = sext32(divS(int64(int32(uint32(a))), int64(int32(uint32(b)))))
	case DIVUW:
		res = sext32(divU(uint64(uint32(a)), uint64(uint32(b))))
	case REMW:
		res = sext32(remS(int64(int32(uint32(a))), int64(int32(uint32(b)))))
	case REMUW:
		res = sext32(remU(uint64(uint32(a)), uint64(uint32(b))))
	case XADDSL:
		res = a + b<<(imm&3)
	case XEXT:
		msb, lsb := uint(imm>>6&63), uint(imm&63)
		if msb < lsb {
			msb = lsb
		}
		w := msb - lsb + 1
		res = uint64(int64(a<<(64-1-msb)) >> (64 - w))
	case XEXTU:
		msb, lsb := uint(imm>>6&63), uint(imm&63)
		if msb < lsb {
			msb = lsb
		}
		res = a << (64 - 1 - msb) >> (64 - (msb - lsb + 1))
	case XFF0:
		res = uint64(bits.LeadingZeros64(^a))
	case XFF1:
		res = uint64(bits.LeadingZeros64(a))
	case XREV:
		res = bits.ReverseBytes64(a)
	case XSRRI:
		res = bits.RotateLeft64(a, -int(imm&63))
	case XTSTNBZ:
		for i := 0; i < 8; i++ {
			if a>>(8*i)&0xFF == 0 {
				res |= 0xFF << (8 * i)
			}
		}
	default:
		ok = false
	}
	return res, ok
}

// EvalIntALU3 computes three-source integer ops (MACs and conditional moves),
// where c is the old destination value.
func EvalIntALU3(op Op, a, b, c uint64) (uint64, bool) {
	switch op {
	case XMULA:
		return c + a*b, true
	case XMULS:
		return c - a*b, true
	case XMULAH:
		return c + uint64(int64(int16(a))*int64(int16(b))), true
	case XMULSH:
		return c - uint64(int64(int16(a))*int64(int16(b))), true
	case XMULAW:
		return sext32(c + a*b), true
	case XMULSW:
		return sext32(c - a*b), true
	case XMVEQZ:
		if b == 0 {
			return a, true
		}
		return c, true
	case XMVNEZ:
		if b != 0 {
			return a, true
		}
		return c, true
	}
	return 0, false
}

func absU(v int64) uint64 {
	if v < 0 {
		return uint64(-v)
	}
	return uint64(v)
}

func divS(a, b int64) uint64 {
	switch {
	case b == 0:
		return ^uint64(0)
	case a == math.MinInt64 && b == -1:
		return uint64(a)
	}
	return uint64(a / b)
}

func divU(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	return a / b
}

func remS(a, b int64) uint64 {
	switch {
	case b == 0:
		return uint64(a)
	case a == math.MinInt64 && b == -1:
		return 0
	}
	return uint64(a % b)
}

func remU(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}

// EvalBranch evaluates a conditional branch's direction.
func EvalBranch(op Op, a, b uint64) bool {
	switch op {
	case BEQ:
		return a == b
	case BNE:
		return a != b
	case BLT:
		return int64(a) < int64(b)
	case BGE:
		return int64(a) >= int64(b)
	case BLTU:
		return a < b
	case BGEU:
		return a >= b
	}
	return false
}

// FP register values are kept NaN-boxed in uint64s: a float32 occupies the
// low 32 bits with the high bits all-ones, per the RISC-V convention.

// BoxF32 NaN-boxes a float32 bit pattern.
func BoxF32(bits32 uint32) uint64 { return 0xFFFFFFFF00000000 | uint64(bits32) }

// UnboxF32 extracts a float32 from a NaN-boxed register value.
func UnboxF32(v uint64) float32 {
	if v>>32 != 0xFFFFFFFF {
		return float32(math.NaN())
	}
	return math.Float32frombits(uint32(v))
}

// F32 converts a float32 value to its boxed register representation.
func F32(f float32) uint64 { return BoxF32(math.Float32bits(f)) }

// F64 converts a float64 value to its register representation.
func F64(f float64) uint64 { return math.Float64bits(f) }

// EvalFPU computes scalar floating-point operations. a, b, c are raw register
// values (NaN-boxed for single precision); the result is likewise raw.
// ok is false for non-FP ops.
func EvalFPU(op Op, a, b, c uint64) (uint64, bool) {
	sa, sb, sc := UnboxF32(a), UnboxF32(b), UnboxF32(c)
	da, db, dc := math.Float64frombits(a), math.Float64frombits(b), math.Float64frombits(c)
	switch op {
	case FADDS:
		return F32(sa + sb), true
	case FSUBS:
		return F32(sa - sb), true
	case FMULS:
		return F32(sa * sb), true
	case FDIVS:
		return F32(sa / sb), true
	case FSQRTS:
		return F32(float32(math.Sqrt(float64(sa)))), true
	case FADDD:
		return F64(da + db), true
	case FSUBD:
		return F64(da - db), true
	case FMULD:
		return F64(da * db), true
	case FDIVD:
		return F64(da / db), true
	case FSQRTD:
		return F64(math.Sqrt(da)), true
	case FMADDS:
		return F32(float32(math.FMA(float64(sa), float64(sb), float64(sc)))), true
	case FMSUBS:
		return F32(float32(math.FMA(float64(sa), float64(sb), -float64(sc)))), true
	case FMADDD:
		return F64(math.FMA(da, db, dc)), true
	case FMSUBD:
		return F64(math.FMA(da, db, -dc)), true
	case FSGNJS:
		return BoxF32(math.Float32bits(sa)&0x7FFFFFFF | math.Float32bits(sb)&0x80000000), true
	case FSGNJNS:
		return BoxF32(math.Float32bits(sa)&0x7FFFFFFF | ^math.Float32bits(sb)&0x80000000), true
	case FSGNJXS:
		return BoxF32(math.Float32bits(sa) ^ math.Float32bits(sb)&0x80000000), true
	case FSGNJD:
		return a&0x7FFFFFFFFFFFFFFF | b&0x8000000000000000, true
	case FSGNJND:
		return a&0x7FFFFFFFFFFFFFFF | ^b&0x8000000000000000, true
	case FSGNJXD:
		return a ^ b&0x8000000000000000, true
	case FMINS:
		return F32(float32(math.Min(float64(sa), float64(sb)))), true
	case FMAXS:
		return F32(float32(math.Max(float64(sa), float64(sb)))), true
	case FMIND:
		return F64(math.Min(da, db)), true
	case FMAXD:
		return F64(math.Max(da, db)), true
	case FCVTWS:
		return uint64(int64(cvtToI32(float64(sa)))), true
	case FCVTLS:
		return uint64(cvtToI64(float64(sa))), true
	case FCVTWD:
		return uint64(int64(cvtToI32(da))), true
	case FCVTLD:
		return uint64(cvtToI64(da)), true
	case FCVTSW:
		return F32(float32(int32(uint32(a)))), true
	case FCVTSL:
		return F32(float32(int64(a))), true
	case FCVTDW:
		return F64(float64(int32(uint32(a)))), true
	case FCVTDL:
		return F64(float64(int64(a))), true
	case FCVTSD:
		return F32(float32(da)), true
	case FCVTDS:
		return F64(float64(sa)), true
	case FMVXW:
		return sext32(a & 0xFFFFFFFF), true
	case FMVWX:
		return BoxF32(uint32(a)), true
	case FMVXD:
		return a, true
	case FMVDX:
		return a, true
	case FEQS:
		return b2u(sa == sb), true
	case FLTS:
		return b2u(sa < sb), true
	case FLES:
		return b2u(sa <= sb), true
	case FEQD:
		return b2u(da == db), true
	case FLTD:
		return b2u(da < db), true
	case FLED:
		return b2u(da <= db), true
	}
	return 0, false
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// cvtToI32 rounds toward zero with RISC-V saturation semantics.
func cvtToI32(f float64) int32 {
	switch {
	case math.IsNaN(f):
		return math.MaxInt32
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return math.MinInt32
	}
	return int32(f)
}

func cvtToI64(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return math.MaxInt64
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}

// EvalAMO computes the memory result of an AMO given the old memory value and
// the register operand. The register result of an AMO is always the old
// memory value (sign-extended for .w forms).
func EvalAMO(op Op, old, src uint64) uint64 {
	w := op.MemBytes() == 4
	if w {
		old, src = uint64(uint32(old)), uint64(uint32(src))
	}
	var v uint64
	switch op {
	case AMOSWAPW, AMOSWAPD:
		v = src
	case AMOADDW, AMOADDD:
		v = old + src
	case AMOANDW, AMOANDD:
		v = old & src
	case AMOORW, AMOORD:
		v = old | src
	case AMOXORW, AMOXORD:
		v = old ^ src
	case AMOMAXW:
		if int32(old) > int32(src) {
			v = old
		} else {
			v = src
		}
	case AMOMAXD:
		if int64(old) > int64(src) {
			v = old
		} else {
			v = src
		}
	case AMOMINW:
		if int32(old) < int32(src) {
			v = old
		} else {
			v = src
		}
	case AMOMIND:
		if int64(old) < int64(src) {
			v = old
		} else {
			v = src
		}
	}
	return v
}

// DivLatency returns the data-dependent latency of an iterative divide, which
// the XT-910's multi-cycle pipe exhibits (§VII quotes 6–25 cycles for
// divides). The model uses the significant-bit count of the dividend.
func DivLatency(op Op, dividend uint64) int {
	n := bits.Len64(dividend)
	lat := 6 + n/4
	if lat > 25 {
		lat = 25
	}
	return lat
}
