package isa

import "fmt"

// Op enumerates every operation the XT-910 model implements. The set covers
// RV64IMAFD, the Zicsr/Zifencei system instructions, a practical subset of the
// 0.7.1 vector draft, and the XT-910 custom extensions (prefixed X…).
type Op uint16

// Class groups operations by the execution resource they consume. The pipeline
// model dispatches on Class when binding micro-ops to issue queues and pipes.
type Class uint8

// Operation classes.
const (
	ClassIllegal Class = iota
	ClassALU           // single-cycle integer
	ClassMul           // integer multiply (shares a pipe with the ALUs)
	ClassDiv           // iterative integer divide (multi-cycle ALU pipe)
	ClassBranch        // conditional branch
	ClassJump          // jal/jalr (unconditional control flow)
	ClassLoad          // integer/FP load
	ClassStore         // integer/FP store
	ClassAMO           // atomics (lr/sc/amo*)
	ClassFPU           // scalar floating point
	ClassCSR           // CSR read/write
	ClassSys           // ecall/ebreak/mret/sret/wfi/fence
	ClassVSet          // vsetvl/vsetvli
	ClassVALU          // vector integer arithmetic
	ClassVFPU          // vector floating point
	ClassVLoad         // vector load
	ClassVStore        // vector store
	ClassCacheOp       // custom cache/TLB maintenance
)

// classNames renders each class in the short form used by reports and
// divergence signatures.
var classNames = [...]string{
	ClassIllegal: "illegal", ClassALU: "alu", ClassMul: "mul", ClassDiv: "div",
	ClassBranch: "branch", ClassJump: "jump", ClassLoad: "load", ClassStore: "store",
	ClassAMO: "amo", ClassFPU: "fpu", ClassCSR: "csr", ClassSys: "sys",
	ClassVSet: "vset", ClassVALU: "valu", ClassVFPU: "vfpu", ClassVLoad: "vload",
	ClassVStore: "vstore", ClassCacheOp: "cacheop",
}

// String returns the class's short report name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Operations. Keep this list in sync with opMeta below; TestOpMetaComplete
// enforces the invariant.
const (
	ILLEGAL Op = iota

	// RV64I
	LUI
	AUIPC
	JAL
	JALR
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	LB
	LH
	LW
	LD
	LBU
	LHU
	LWU
	SB
	SH
	SW
	SD
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND
	ADDIW
	SLLIW
	SRLIW
	SRAIW
	ADDW
	SUBW
	SLLW
	SRLW
	SRAW
	FENCE
	FENCEI
	ECALL
	EBREAK
	MRET
	SRET
	WFI
	SFENCEVMA

	// Zicsr
	CSRRW
	CSRRS
	CSRRC
	CSRRWI
	CSRRSI
	CSRRCI

	// RV64M
	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU
	MULW
	DIVW
	DIVUW
	REMW
	REMUW

	// RV64A
	LRW
	LRD
	SCW
	SCD
	AMOSWAPW
	AMOSWAPD
	AMOADDW
	AMOADDD
	AMOANDW
	AMOANDD
	AMOORW
	AMOORD
	AMOXORW
	AMOXORD
	AMOMAXW
	AMOMAXD
	AMOMINW
	AMOMIND

	// RV64F/D (subset)
	FLW
	FLD
	FSW
	FSD
	FADDS
	FSUBS
	FMULS
	FDIVS
	FSQRTS
	FADDD
	FSUBD
	FMULD
	FDIVD
	FSQRTD
	FMADDS
	FMSUBS
	FMADDD
	FMSUBD
	FSGNJS
	FSGNJNS
	FSGNJXS
	FSGNJD
	FSGNJND
	FSGNJXD
	FMINS
	FMAXS
	FMIND
	FMAXD
	FCVTWS
	FCVTLS
	FCVTSW
	FCVTSL
	FCVTWD
	FCVTLD
	FCVTDW
	FCVTDL
	FCVTSD
	FCVTDS
	FMVXW
	FMVWX
	FMVXD
	FMVDX
	FEQS
	FLTS
	FLES
	FEQD
	FLTD
	FLED

	// Vector 0.7.1 subset. Element width and LMUL come from vtype; the loads
	// and stores are unit-stride with the element size taken from vtype (the
	// 0.7.1 vle.v/vse.v forms).
	VSETVLI
	VSETVL
	VLE
	VSE
	VLSE // strided load
	VSSE // strided store
	VADDVV
	VADDVX
	VADDVI
	VSUBVV
	VSUBVX
	VMULVV
	VMULVX
	VMACCVV
	VWMACCVV
	VANDVV
	VORVV
	VXORVV
	VSLLVV
	VSRLVV
	VMINVV
	VMAXVV
	VDIVVV
	VREMVV
	VMVVV
	VMVVX
	VMVSX
	VMVXS
	VREDSUMVS
	VREDMAXVS
	VFADDVV
	VFSUBVV
	VFMULVV
	VFDIVVV
	VFMACCVV
	VFREDSUMVS
	VLXEI   // indexed load: element i comes from rs1 + offsets[i]
	VSXEI   // indexed store: element i goes to rs1 + offsets[i]
	VMSEQVV // mask compare: bit i of vd = (vs2[i] == vs1[i])

	// XT-910 custom extensions: indexed memory access (register+register
	// addressing, optional zero-extended 32-bit index), per §VIII-A.
	XLRB // rd = sext(mem8 [rs1 + rs2<<imm2])
	XLRH
	XLRW
	XLRD
	XLURB // rd = mem (rs1 + zext32(rs2)<<imm2), zero-extended load
	XLURH
	XLURW
	XSRB // mem[rs1 + rs2<<imm2] = rd (rd read as store data)
	XSRH
	XSRW
	XSRD
	XADDSL // rd = rs1 + rs2<<imm2

	// XT-910 custom extensions: bit manipulation and MACs, per §VIII-B.
	XEXT    // rd = sext(rs1[msb:lsb])       imm = msb<<6 | lsb
	XEXTU   // rd = zext(rs1[msb:lsb])
	XFF0    // rd = index of first 0 bit from MSB (64 if none)
	XFF1    // rd = index of first 1 bit from MSB (64 if none)
	XREV    // rd = byte-reversed rs1
	XSRRI   // rd = rs1 rotated right by imm
	XTSTNBZ // rd = per-byte mask: 0xff where byte==0
	XMVEQZ  // rd = (rs2 == 0) ? rs1 : rd
	XMVNEZ  // rd = (rs2 != 0) ? rs1 : rd
	XMULA   // rd += rs1 * rs2
	XMULS   // rd -= rs1 * rs2
	XMULAH  // rd += sext16(rs1) * sext16(rs2)
	XMULSH  // rd -= sext16(rs1) * sext16(rs2)
	XMULAW  // rd = sext32(rd + rs1*rs2)
	XMULSW  // rd = sext32(rd - rs1*rs2)

	// XT-910 custom extensions: cache and TLB operations (§II, §V-E).
	XDCACHECALL // clean entire D-cache
	XDCACHEIALL // invalidate entire D-cache
	XDCACHECVA  // clean D-cache line by virtual address (rs1)
	XDCACHEIVA  // invalidate D-cache line by virtual address (rs1)
	XICACHEIALL // invalidate entire I-cache
	XSYNC       // full memory barrier
	XTLBIASID   // broadcast TLB invalidate for ASID in rs1
	XTLBIVA     // broadcast TLB invalidate for VA in rs1

	numOps
)

// NumOps is the number of defined operations (for table sizing in other
// packages).
const NumOps = int(numOps)

type opMetaInfo struct {
	name  string
	class Class
	// latency is the default execution latency in cycles used by the pipeline
	// model (loads/stores add memory time on top of their pipe latency).
	latency uint8
}

var opMeta = [numOps]opMetaInfo{
	ILLEGAL: {"illegal", ClassIllegal, 1},

	LUI:   {"lui", ClassALU, 1},
	AUIPC: {"auipc", ClassALU, 1},
	JAL:   {"jal", ClassJump, 1},
	JALR:  {"jalr", ClassJump, 1},
	BEQ:   {"beq", ClassBranch, 1},
	BNE:   {"bne", ClassBranch, 1},
	BLT:   {"blt", ClassBranch, 1},
	BGE:   {"bge", ClassBranch, 1},
	BLTU:  {"bltu", ClassBranch, 1},
	BGEU:  {"bgeu", ClassBranch, 1},
	LB:    {"lb", ClassLoad, 1},
	LH:    {"lh", ClassLoad, 1},
	LW:    {"lw", ClassLoad, 1},
	LD:    {"ld", ClassLoad, 1},
	LBU:   {"lbu", ClassLoad, 1},
	LHU:   {"lhu", ClassLoad, 1},
	LWU:   {"lwu", ClassLoad, 1},
	SB:    {"sb", ClassStore, 1},
	SH:    {"sh", ClassStore, 1},
	SW:    {"sw", ClassStore, 1},
	SD:    {"sd", ClassStore, 1},
	ADDI:  {"addi", ClassALU, 1},
	SLTI:  {"slti", ClassALU, 1},
	SLTIU: {"sltiu", ClassALU, 1},
	XORI:  {"xori", ClassALU, 1},
	ORI:   {"ori", ClassALU, 1},
	ANDI:  {"andi", ClassALU, 1},
	SLLI:  {"slli", ClassALU, 1},
	SRLI:  {"srli", ClassALU, 1},
	SRAI:  {"srai", ClassALU, 1},
	ADD:   {"add", ClassALU, 1},
	SUB:   {"sub", ClassALU, 1},
	SLL:   {"sll", ClassALU, 1},
	SLT:   {"slt", ClassALU, 1},
	SLTU:  {"sltu", ClassALU, 1},
	XOR:   {"xor", ClassALU, 1},
	SRL:   {"srl", ClassALU, 1},
	SRA:   {"sra", ClassALU, 1},
	OR:    {"or", ClassALU, 1},
	AND:   {"and", ClassALU, 1},
	ADDIW: {"addiw", ClassALU, 1},
	SLLIW: {"slliw", ClassALU, 1},
	SRLIW: {"srliw", ClassALU, 1},
	SRAIW: {"sraiw", ClassALU, 1},
	ADDW:  {"addw", ClassALU, 1},
	SUBW:  {"subw", ClassALU, 1},
	SLLW:  {"sllw", ClassALU, 1},
	SRLW:  {"srlw", ClassALU, 1},
	SRAW:  {"sraw", ClassALU, 1},

	FENCE:     {"fence", ClassSys, 1},
	FENCEI:    {"fence.i", ClassSys, 1},
	ECALL:     {"ecall", ClassSys, 1},
	EBREAK:    {"ebreak", ClassSys, 1},
	MRET:      {"mret", ClassSys, 1},
	SRET:      {"sret", ClassSys, 1},
	WFI:       {"wfi", ClassSys, 1},
	SFENCEVMA: {"sfence.vma", ClassSys, 1},

	CSRRW:  {"csrrw", ClassCSR, 1},
	CSRRS:  {"csrrs", ClassCSR, 1},
	CSRRC:  {"csrrc", ClassCSR, 1},
	CSRRWI: {"csrrwi", ClassCSR, 1},
	CSRRSI: {"csrrsi", ClassCSR, 1},
	CSRRCI: {"csrrci", ClassCSR, 1},

	MUL:    {"mul", ClassMul, 3},
	MULH:   {"mulh", ClassMul, 3},
	MULHSU: {"mulhsu", ClassMul, 3},
	MULHU:  {"mulhu", ClassMul, 3},
	DIV:    {"div", ClassDiv, 12},
	DIVU:   {"divu", ClassDiv, 12},
	REM:    {"rem", ClassDiv, 12},
	REMU:   {"remu", ClassDiv, 12},
	MULW:   {"mulw", ClassMul, 3},
	DIVW:   {"divw", ClassDiv, 8},
	DIVUW:  {"divuw", ClassDiv, 8},
	REMW:   {"remw", ClassDiv, 8},
	REMUW:  {"remuw", ClassDiv, 8},

	LRW:      {"lr.w", ClassAMO, 1},
	LRD:      {"lr.d", ClassAMO, 1},
	SCW:      {"sc.w", ClassAMO, 1},
	SCD:      {"sc.d", ClassAMO, 1},
	AMOSWAPW: {"amoswap.w", ClassAMO, 1},
	AMOSWAPD: {"amoswap.d", ClassAMO, 1},
	AMOADDW:  {"amoadd.w", ClassAMO, 1},
	AMOADDD:  {"amoadd.d", ClassAMO, 1},
	AMOANDW:  {"amoand.w", ClassAMO, 1},
	AMOANDD:  {"amoand.d", ClassAMO, 1},
	AMOORW:   {"amoor.w", ClassAMO, 1},
	AMOORD:   {"amoor.d", ClassAMO, 1},
	AMOXORW:  {"amoxor.w", ClassAMO, 1},
	AMOXORD:  {"amoxor.d", ClassAMO, 1},
	AMOMAXW:  {"amomax.w", ClassAMO, 1},
	AMOMAXD:  {"amomax.d", ClassAMO, 1},
	AMOMINW:  {"amomin.w", ClassAMO, 1},
	AMOMIND:  {"amomin.d", ClassAMO, 1},

	FLW:     {"flw", ClassLoad, 1},
	FLD:     {"fld", ClassLoad, 1},
	FSW:     {"fsw", ClassStore, 1},
	FSD:     {"fsd", ClassStore, 1},
	FADDS:   {"fadd.s", ClassFPU, 3},
	FSUBS:   {"fsub.s", ClassFPU, 3},
	FMULS:   {"fmul.s", ClassFPU, 5},
	FDIVS:   {"fdiv.s", ClassFPU, 12},
	FSQRTS:  {"fsqrt.s", ClassFPU, 14},
	FADDD:   {"fadd.d", ClassFPU, 3},
	FSUBD:   {"fsub.d", ClassFPU, 3},
	FMULD:   {"fmul.d", ClassFPU, 5},
	FDIVD:   {"fdiv.d", ClassFPU, 18},
	FSQRTD:  {"fsqrt.d", ClassFPU, 20},
	FMADDS:  {"fmadd.s", ClassFPU, 5},
	FMSUBS:  {"fmsub.s", ClassFPU, 5},
	FMADDD:  {"fmadd.d", ClassFPU, 5},
	FMSUBD:  {"fmsub.d", ClassFPU, 5},
	FSGNJS:  {"fsgnj.s", ClassFPU, 1},
	FSGNJNS: {"fsgnjn.s", ClassFPU, 1},
	FSGNJXS: {"fsgnjx.s", ClassFPU, 1},
	FSGNJD:  {"fsgnj.d", ClassFPU, 1},
	FSGNJND: {"fsgnjn.d", ClassFPU, 1},
	FSGNJXD: {"fsgnjx.d", ClassFPU, 1},
	FMINS:   {"fmin.s", ClassFPU, 2},
	FMAXS:   {"fmax.s", ClassFPU, 2},
	FMIND:   {"fmin.d", ClassFPU, 2},
	FMAXD:   {"fmax.d", ClassFPU, 2},
	FCVTWS:  {"fcvt.w.s", ClassFPU, 3},
	FCVTLS:  {"fcvt.l.s", ClassFPU, 3},
	FCVTSW:  {"fcvt.s.w", ClassFPU, 3},
	FCVTSL:  {"fcvt.s.l", ClassFPU, 3},
	FCVTWD:  {"fcvt.w.d", ClassFPU, 3},
	FCVTLD:  {"fcvt.l.d", ClassFPU, 3},
	FCVTDW:  {"fcvt.d.w", ClassFPU, 3},
	FCVTDL:  {"fcvt.d.l", ClassFPU, 3},
	FCVTSD:  {"fcvt.s.d", ClassFPU, 3},
	FCVTDS:  {"fcvt.d.s", ClassFPU, 3},
	FMVXW:   {"fmv.x.w", ClassFPU, 1},
	FMVWX:   {"fmv.w.x", ClassFPU, 1},
	FMVXD:   {"fmv.x.d", ClassFPU, 1},
	FMVDX:   {"fmv.d.x", ClassFPU, 1},
	FEQS:    {"feq.s", ClassFPU, 2},
	FLTS:    {"flt.s", ClassFPU, 2},
	FLES:    {"fle.s", ClassFPU, 2},
	FEQD:    {"feq.d", ClassFPU, 2},
	FLTD:    {"flt.d", ClassFPU, 2},
	FLED:    {"fle.d", ClassFPU, 2},

	VSETVLI:    {"vsetvli", ClassVSet, 1},
	VSETVL:     {"vsetvl", ClassVSet, 1},
	VLE:        {"vle.v", ClassVLoad, 1},
	VSE:        {"vse.v", ClassVStore, 1},
	VLSE:       {"vlse.v", ClassVLoad, 1},
	VSSE:       {"vsse.v", ClassVStore, 1},
	VADDVV:     {"vadd.vv", ClassVALU, 3},
	VADDVX:     {"vadd.vx", ClassVALU, 3},
	VADDVI:     {"vadd.vi", ClassVALU, 3},
	VSUBVV:     {"vsub.vv", ClassVALU, 3},
	VSUBVX:     {"vsub.vx", ClassVALU, 3},
	VMULVV:     {"vmul.vv", ClassVALU, 4},
	VMULVX:     {"vmul.vx", ClassVALU, 4},
	VMACCVV:    {"vmacc.vv", ClassVALU, 4},
	VWMACCVV:   {"vwmacc.vv", ClassVALU, 4},
	VANDVV:     {"vand.vv", ClassVALU, 3},
	VORVV:      {"vor.vv", ClassVALU, 3},
	VXORVV:     {"vxor.vv", ClassVALU, 3},
	VSLLVV:     {"vsll.vv", ClassVALU, 3},
	VSRLVV:     {"vsrl.vv", ClassVALU, 3},
	VMINVV:     {"vmin.vv", ClassVALU, 3},
	VMAXVV:     {"vmax.vv", ClassVALU, 3},
	VDIVVV:     {"vdiv.vv", ClassVALU, 16},
	VREMVV:     {"vrem.vv", ClassVALU, 16},
	VMVVV:      {"vmv.v.v", ClassVALU, 1},
	VMVVX:      {"vmv.v.x", ClassVALU, 1},
	VMVSX:      {"vmv.s.x", ClassVALU, 1},
	VMVXS:      {"vmv.x.s", ClassVALU, 1},
	VREDSUMVS:  {"vredsum.vs", ClassVALU, 4},
	VREDMAXVS:  {"vredmax.vs", ClassVALU, 4},
	VFADDVV:    {"vfadd.vv", ClassVFPU, 3},
	VFSUBVV:    {"vfsub.vv", ClassVFPU, 3},
	VFMULVV:    {"vfmul.vv", ClassVFPU, 5},
	VFDIVVV:    {"vfdiv.vv", ClassVFPU, 16},
	VFMACCVV:   {"vfmacc.vv", ClassVFPU, 5},
	VFREDSUMVS: {"vfredsum.vs", ClassVFPU, 4},
	VLXEI:      {"vlxei.v", ClassVLoad, 1},
	VSXEI:      {"vsxei.v", ClassVStore, 1},
	VMSEQVV:    {"vmseq.vv", ClassVALU, 3},

	XLRB:   {"lrb", ClassLoad, 1},
	XLRH:   {"lrh", ClassLoad, 1},
	XLRW:   {"lrw", ClassLoad, 1},
	XLRD:   {"lrd", ClassLoad, 1},
	XLURB:  {"lurb", ClassLoad, 1},
	XLURH:  {"lurh", ClassLoad, 1},
	XLURW:  {"lurw", ClassLoad, 1},
	XSRB:   {"srb", ClassStore, 1},
	XSRH:   {"srh", ClassStore, 1},
	XSRW:   {"srw", ClassStore, 1},
	XSRD:   {"srd", ClassStore, 1},
	XADDSL: {"addsl", ClassALU, 1},

	XEXT:    {"ext", ClassALU, 1},
	XEXTU:   {"extu", ClassALU, 1},
	XFF0:    {"ff0", ClassALU, 1},
	XFF1:    {"ff1", ClassALU, 1},
	XREV:    {"rev", ClassALU, 1},
	XSRRI:   {"srri", ClassALU, 1},
	XTSTNBZ: {"tstnbz", ClassALU, 1},
	XMVEQZ:  {"mveqz", ClassALU, 1},
	XMVNEZ:  {"mvnez", ClassALU, 1},
	XMULA:   {"mula", ClassMul, 3},
	XMULS:   {"muls", ClassMul, 3},
	XMULAH:  {"mulah", ClassMul, 3},
	XMULSH:  {"mulsh", ClassMul, 3},
	XMULAW:  {"mulaw", ClassMul, 3},
	XMULSW:  {"mulsw", ClassMul, 3},

	XDCACHECALL: {"dcache.call", ClassCacheOp, 1},
	XDCACHEIALL: {"dcache.iall", ClassCacheOp, 1},
	XDCACHECVA:  {"dcache.cva", ClassCacheOp, 1},
	XDCACHEIVA:  {"dcache.iva", ClassCacheOp, 1},
	XICACHEIALL: {"icache.iall", ClassCacheOp, 1},
	XSYNC:       {"sync", ClassCacheOp, 1},
	XTLBIASID:   {"tlbi.asid", ClassCacheOp, 1},
	XTLBIVA:     {"tlbi.va", ClassCacheOp, 1},
}

// String returns the assembler mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opMeta) && opMeta[o].name != "" {
		return opMeta[o].name
	}
	return "op?"
}

// Class returns the execution class of the operation.
func (o Op) Class() Class {
	if int(o) < len(opMeta) {
		return opMeta[o].class
	}
	return ClassIllegal
}

// Latency returns the default execution latency in cycles. Memory operations
// add cache/DRAM time on top of this pipe latency; divides return the default
// and the core adjusts by operand magnitude.
func (o Op) Latency() int { return int(opMeta[o].latency) }

// IsLoad reports whether the operation reads data memory (scalar loads,
// indexed custom loads, and FP loads; vector loads are ClassVLoad).
func (o Op) IsLoad() bool { return o.Class() == ClassLoad }

// IsStore reports whether the operation writes data memory (scalar stores;
// vector stores are ClassVStore).
func (o Op) IsStore() bool { return o.Class() == ClassStore }

// IsBranch reports whether the operation is a conditional branch.
func (o Op) IsBranch() bool { return o.Class() == ClassBranch }

// IsControlFlow reports whether the operation can redirect the PC.
func (o Op) IsControlFlow() bool {
	c := o.Class()
	return c == ClassBranch || c == ClassJump || o == MRET || o == SRET || o == ECALL || o == EBREAK
}

// MemBytes returns the access width in bytes for scalar loads/stores/AMOs,
// or 0 for non-memory operations.
func (o Op) MemBytes() int {
	switch o {
	case LB, LBU, SB, XLRB, XLURB, XSRB:
		return 1
	case LH, LHU, SH, XLRH, XLURH, XSRH:
		return 2
	case LW, LWU, SW, FLW, FSW, XLRW, XLURW, XSRW,
		LRW, SCW, AMOSWAPW, AMOADDW, AMOANDW, AMOORW, AMOXORW, AMOMAXW, AMOMINW:
		return 4
	case LD, SD, FLD, FSD, XLRD, XSRD,
		LRD, SCD, AMOSWAPD, AMOADDD, AMOANDD, AMOORD, AMOXORD, AMOMAXD, AMOMIND:
		return 8
	}
	return 0
}

// LoadUnsigned reports whether a load zero-extends its result.
func (o Op) LoadUnsigned() bool {
	switch o {
	case LBU, LHU, LWU, XLURB, XLURH, XLURW:
		return true
	}
	return false
}

// opsByName resolves mnemonics for the assembler.
var opsByName = map[string]Op{}

func init() {
	for op := Op(1); op < numOps; op++ {
		if opMeta[op].name != "" {
			opsByName[opMeta[op].name] = op
		}
	}
}

// ParseOp resolves an assembler mnemonic to an Op.
func ParseOp(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}
