package isa

import "fmt"

// Major opcodes (bits [6:0] of a 32-bit instruction).
const (
	opcLoad    = 0x03
	opcLoadFP  = 0x07
	opcMiscMem = 0x0F
	opcOpImm   = 0x13
	opcAuipc   = 0x17
	opcOpImm32 = 0x1B
	opcStore   = 0x23
	opcStoreFP = 0x27
	opcAMO     = 0x2F
	opcOp      = 0x33
	opcLui     = 0x37
	opcOp32    = 0x3B
	opcFMAdd   = 0x43
	opcFMSub   = 0x47
	opcOpFP    = 0x53
	opcOpV     = 0x57
	opcBranch  = 0x63
	opcJALR    = 0x67
	opcJAL     = 0x6F
	opcSystem  = 0x73
	opcCustom0 = 0x0B
)

func encR(opc, f3, f7 uint32, rd, rs1, rs2 Reg) uint32 {
	return opc | uint32(rd.Index())<<7 | f3<<12 | uint32(rs1.Index())<<15 |
		uint32(rs2.Index())<<20 | f7<<25
}

func encI(opc, f3 uint32, rd, rs1 Reg, imm int64) uint32 {
	return opc | uint32(rd.Index())<<7 | f3<<12 | uint32(rs1.Index())<<15 |
		uint32(imm&0xFFF)<<20
}

func encS(opc, f3 uint32, rs1, rs2 Reg, imm int64) uint32 {
	return opc | uint32(imm&0x1F)<<7 | f3<<12 | uint32(rs1.Index())<<15 |
		uint32(rs2.Index())<<20 | uint32((imm>>5)&0x7F)<<25
}

func encB(opc, f3 uint32, rs1, rs2 Reg, imm int64) uint32 {
	u := uint32(imm)
	return opc | (u>>11&1)<<7 | (u>>1&0xF)<<8 | f3<<12 |
		uint32(rs1.Index())<<15 | uint32(rs2.Index())<<20 |
		(u>>5&0x3F)<<25 | (u>>12&1)<<31
}

func encU(opc uint32, rd Reg, imm int64) uint32 {
	return opc | uint32(rd.Index())<<7 | uint32(imm)&0xFFFFF000
}

func encJ(opc uint32, rd Reg, imm int64) uint32 {
	u := uint32(imm)
	return opc | uint32(rd.Index())<<7 | (u>>12&0xFF)<<12 | (u>>11&1)<<20 |
		(u>>1&0x3FF)<<21 | (u>>20&1)<<31
}

func encR4(opc, fmt2 uint32, rd, rs1, rs2, rs3 Reg) uint32 {
	return opc | uint32(rd.Index())<<7 | uint32(rs1.Index())<<15 |
		uint32(rs2.Index())<<20 | fmt2<<25 | uint32(rs3.Index())<<27
}

// rEnc describes a plain R-type encoding.
type rEnc struct{ f3, f7 uint32 }

var opRType = map[Op]rEnc{
	ADD: {0, 0x00}, SUB: {0, 0x20}, SLL: {1, 0}, SLT: {2, 0}, SLTU: {3, 0},
	XOR: {4, 0}, SRL: {5, 0}, SRA: {5, 0x20}, OR: {6, 0}, AND: {7, 0},
	MUL: {0, 1}, MULH: {1, 1}, MULHSU: {2, 1}, MULHU: {3, 1},
	DIV: {4, 1}, DIVU: {5, 1}, REM: {6, 1}, REMU: {7, 1},
}

var op32RType = map[Op]rEnc{
	ADDW: {0, 0x00}, SUBW: {0, 0x20}, SLLW: {1, 0}, SRLW: {5, 0}, SRAW: {5, 0x20},
	MULW: {0, 1}, DIVW: {4, 1}, DIVUW: {5, 1}, REMW: {6, 1}, REMUW: {7, 1},
}

var opImmF3 = map[Op]uint32{
	ADDI: 0, SLTI: 2, SLTIU: 3, XORI: 4, ORI: 6, ANDI: 7,
}

var loadF3 = map[Op]uint32{
	LB: 0, LH: 1, LW: 2, LD: 3, LBU: 4, LHU: 5, LWU: 6,
}

var storeF3 = map[Op]uint32{SB: 0, SH: 1, SW: 2, SD: 3}

var branchF3 = map[Op]uint32{
	BEQ: 0, BNE: 1, BLT: 4, BGE: 5, BLTU: 6, BGEU: 7,
}

var csrF3 = map[Op]uint32{
	CSRRW: 1, CSRRS: 2, CSRRC: 3, CSRRWI: 5, CSRRSI: 6, CSRRCI: 7,
}

// amoF5 holds funct5 values (instruction bits [31:27]).
var amoF5 = map[Op]struct {
	f3 uint32
	f5 uint32
}{
	LRW: {2, 0x02}, LRD: {3, 0x02}, SCW: {2, 0x03}, SCD: {3, 0x03},
	AMOSWAPW: {2, 0x01}, AMOSWAPD: {3, 0x01},
	AMOADDW: {2, 0x00}, AMOADDD: {3, 0x00},
	AMOXORW: {2, 0x04}, AMOXORD: {3, 0x04},
	AMOANDW: {2, 0x0C}, AMOANDD: {3, 0x0C},
	AMOORW: {2, 0x08}, AMOORD: {3, 0x08},
	AMOMINW: {2, 0x10}, AMOMIND: {3, 0x10},
	AMOMAXW: {2, 0x14}, AMOMAXD: {3, 0x14},
}

// fpREnc: OP-FP encodings. f3 is the funct3 value (rounding-mode field for
// arithmetic, selector for sign-injection/min-max/compare); rs2sel is the
// rs2 field value for single-source conversions (-1 when rs2 is a register).
type fpEnc struct {
	f7     uint32
	f3     int8 // -1: rounding mode field, encoded as 0
	rs2sel int8 // -1: real rs2 operand
}

var opFPEnc = map[Op]fpEnc{
	FADDS: {0x00, -1, -1}, FSUBS: {0x04, -1, -1}, FMULS: {0x08, -1, -1},
	FDIVS: {0x0C, -1, -1}, FSQRTS: {0x2C, -1, 0},
	FADDD: {0x01, -1, -1}, FSUBD: {0x05, -1, -1}, FMULD: {0x09, -1, -1},
	FDIVD: {0x0D, -1, -1}, FSQRTD: {0x2D, -1, 0},
	FSGNJS: {0x10, 0, -1}, FSGNJNS: {0x10, 1, -1}, FSGNJXS: {0x10, 2, -1},
	FSGNJD: {0x11, 0, -1}, FSGNJND: {0x11, 1, -1}, FSGNJXD: {0x11, 2, -1},
	FMINS: {0x14, 0, -1}, FMAXS: {0x14, 1, -1},
	FMIND: {0x15, 0, -1}, FMAXD: {0x15, 1, -1},
	FCVTWS: {0x60, -1, 0}, FCVTLS: {0x60, -1, 2},
	FCVTSW: {0x68, -1, 0}, FCVTSL: {0x68, -1, 2},
	FCVTWD: {0x61, -1, 0}, FCVTLD: {0x61, -1, 2},
	FCVTDW: {0x69, -1, 0}, FCVTDL: {0x69, -1, 2},
	FCVTSD: {0x20, -1, 1}, FCVTDS: {0x21, -1, 0},
	FMVXW: {0x70, 0, 0}, FMVWX: {0x78, 0, 0},
	FMVXD: {0x71, 0, 0}, FMVDX: {0x79, 0, 0},
	FEQS: {0x50, 2, -1}, FLTS: {0x50, 1, -1}, FLES: {0x50, 0, -1},
	FEQD: {0x51, 2, -1}, FLTD: {0x51, 1, -1}, FLED: {0x51, 0, -1},
}

// Vector funct6 assignments (mostly following the 0.7.1 layout); f3 selects
// the operand category: 0=OPIVV, 1=OPFVV, 2=OPMVV, 3=OPIVI, 4=OPIVX, 6=OPMVX.
type vEnc struct{ f6, f3 uint32 }

var opVEnc = map[Op]vEnc{
	VADDVV: {0x00, 0}, VADDVX: {0x00, 4}, VADDVI: {0x00, 3},
	VSUBVV: {0x02, 0}, VSUBVX: {0x02, 4},
	VMINVV: {0x05, 0}, VMAXVV: {0x07, 0},
	VANDVV: {0x09, 0}, VORVV: {0x0A, 0}, VXORVV: {0x0B, 0},
	VSLLVV: {0x25, 0}, VSRLVV: {0x28, 0},
	VMVVV: {0x17, 0}, VMVVX: {0x17, 4},
	VMULVV: {0x25, 2}, VMULVX: {0x25, 6},
	VMACCVV: {0x2D, 2}, VWMACCVV: {0x3D, 2},
	VDIVVV: {0x21, 2}, VREMVV: {0x23, 2},
	VREDSUMVS: {0x00, 2}, VREDMAXVS: {0x07, 2},
	VMVXS: {0x10, 2}, VMVSX: {0x10, 6},
	VFADDVV: {0x00, 1}, VFSUBVV: {0x02, 1},
	VFMULVV: {0x24, 1}, VFDIVVV: {0x20, 1},
	VFMACCVV: {0x2C, 1}, VFREDSUMVS: {0x01, 1},
	VMSEQVV: {0x18, 0},
}

// vmemF7 composes the funct7 field of a vector memory op: bit 0 (instruction
// bit 25) set marks a masked access. Note the polarity is inverted relative
// to the opcOpV vm bit (where vm=1 means unmasked) so that the pre-existing
// unit-stride/strided encodings with f7=0x00/0x08 stay byte-identical.
func vmemF7(base uint32, masked bool) uint32 {
	if masked {
		return base | 1
	}
	return base
}

var xCacheOpImm = map[Op]int64{
	XDCACHECALL: 0, XDCACHEIALL: 1, XDCACHECVA: 2, XDCACHEIVA: 3,
	XICACHEIALL: 4, XSYNC: 5, XTLBIASID: 6, XTLBIVA: 7,
}

var xIdxLoadSub = map[Op]uint32{
	XLRB: 0, XLRH: 1, XLRW: 2, XLRD: 3, XLURB: 4, XLURH: 5, XLURW: 6,
}

var xIdxStoreSub = map[Op]uint32{XSRB: 0, XSRH: 1, XSRW: 2, XSRD: 3}

var xRTypeSub = map[Op]uint32{
	XREV: 0x02, XFF0: 0x03, XFF1: 0x04, XTSTNBZ: 0x05,
	XMVEQZ: 0x10, XMVNEZ: 0x11,
	XMULA: 0x20, XMULS: 0x21, XMULAH: 0x22, XMULSH: 0x23,
	XMULAW: 0x24, XMULSW: 0x25,
}

// Encode produces the 32-bit encoding of an instruction. RVC compression is a
// separate, optional step (Compress).
func Encode(in Inst) (uint32, error) {
	op := in.Op
	switch {
	case op == LUI:
		return encU(opcLui, in.Rd, in.Imm), nil
	case op == AUIPC:
		return encU(opcAuipc, in.Rd, in.Imm), nil
	case op == JAL:
		return encJ(opcJAL, in.Rd, in.Imm), nil
	case op == JALR:
		return encI(opcJALR, 0, in.Rd, in.Rs1, in.Imm), nil
	}
	if f3, ok := branchF3[op]; ok {
		return encB(opcBranch, f3, in.Rs1, in.Rs2, in.Imm), nil
	}
	if f3, ok := loadF3[op]; ok {
		return encI(opcLoad, f3, in.Rd, in.Rs1, in.Imm), nil
	}
	if f3, ok := storeF3[op]; ok {
		return encS(opcStore, f3, in.Rs1, in.Rs2, in.Imm), nil
	}
	if f3, ok := opImmF3[op]; ok {
		return encI(opcOpImm, f3, in.Rd, in.Rs1, in.Imm), nil
	}
	if e, ok := opRType[op]; ok {
		return encR(opcOp, e.f3, e.f7, in.Rd, in.Rs1, in.Rs2), nil
	}
	if e, ok := op32RType[op]; ok {
		return encR(opcOp32, e.f3, e.f7, in.Rd, in.Rs1, in.Rs2), nil
	}
	if f3, ok := csrF3[op]; ok {
		v := uint32(0)
		if op == CSRRWI || op == CSRRSI || op == CSRRCI {
			v = encI(opcSystem, f3, in.Rd, Reg(in.Imm&0x1F), int64(in.CSR))
		} else {
			v = encI(opcSystem, f3, in.Rd, in.Rs1, int64(in.CSR))
		}
		return v, nil
	}
	if e, ok := amoF5[op]; ok {
		rs2 := in.Rs2
		if op == LRW || op == LRD {
			rs2 = X(0)
		}
		return encR(opcAMO, e.f3, e.f5<<2, in.Rd, in.Rs1, rs2), nil
	}
	if e, ok := opFPEnc[op]; ok {
		f3 := uint32(0)
		if e.f3 >= 0 {
			f3 = uint32(e.f3)
		}
		rs2 := in.Rs2
		if e.rs2sel >= 0 {
			rs2 = X(int(e.rs2sel))
		}
		return encR(opcOpFP, f3, e.f7, in.Rd, in.Rs1, rs2), nil
	}
	if e, ok := opVEnc[op]; ok {
		var second Reg
		switch e.f3 {
		case 3: // OPIVI: immediate in rs1 slot
			second = X(int(in.Imm) & 0x1F)
		default:
			second = in.Rs1
			if second == RegNone {
				second = X(0)
			}
		}
		vs2 := in.Rs2
		if vs2 == RegNone {
			vs2 = V(0)
		}
		vm := uint32(1) // vm=1: unmasked
		if in.Masked {
			vm = 0
		}
		// vector R-layout: vd | f3 | vs1/rs1/imm | vs2 | vm | funct6
		return opcOpV | uint32(in.Rd.Index())<<7 | e.f3<<12 |
			uint32(second.Index())<<15 | uint32(vs2.Index())<<20 |
			vm<<25 | e.f6<<26, nil
	}

	switch op {
	case SLLI, SRLI, SRAI:
		f3, f6 := uint32(1), uint32(0)
		if op == SRLI {
			f3 = 5
		} else if op == SRAI {
			f3, f6 = 5, 0x10
		}
		return encI(opcOpImm, f3, in.Rd, in.Rs1, in.Imm&0x3F|int64(f6)<<6), nil
	case ADDIW:
		return encI(opcOpImm32, 0, in.Rd, in.Rs1, in.Imm), nil
	case SLLIW, SRLIW, SRAIW:
		f3, f7 := uint32(1), uint32(0)
		if op == SRLIW {
			f3 = 5
		} else if op == SRAIW {
			f3, f7 = 5, 0x20
		}
		return encR(opcOpImm32, f3, f7, in.Rd, in.Rs1, X(int(in.Imm)&0x1F)), nil
	case FENCE:
		return encI(opcMiscMem, 0, X(0), X(0), 0x0FF), nil
	case FENCEI:
		return encI(opcMiscMem, 1, X(0), X(0), 0), nil
	case ECALL:
		return encI(opcSystem, 0, X(0), X(0), 0), nil
	case EBREAK:
		return encI(opcSystem, 0, X(0), X(0), 1), nil
	case MRET:
		return encI(opcSystem, 0, X(0), X(0), 0x302), nil
	case SRET:
		return encI(opcSystem, 0, X(0), X(0), 0x102), nil
	case WFI:
		return encI(opcSystem, 0, X(0), X(0), 0x105), nil
	case SFENCEVMA:
		rs1, rs2 := in.Rs1, in.Rs2
		if rs1 == RegNone {
			rs1 = X(0)
		}
		if rs2 == RegNone {
			rs2 = X(0)
		}
		return encR(opcSystem, 0, 0x09, X(0), rs1, rs2), nil
	case FLW:
		return encI(opcLoadFP, 2, in.Rd, in.Rs1, in.Imm), nil
	case FLD:
		return encI(opcLoadFP, 3, in.Rd, in.Rs1, in.Imm), nil
	case FSW:
		return encS(opcStoreFP, 2, in.Rs1, in.Rs2, in.Imm), nil
	case FSD:
		return encS(opcStoreFP, 3, in.Rs1, in.Rs2, in.Imm), nil
	case FMADDS:
		return encR4(opcFMAdd, 0, in.Rd, in.Rs1, in.Rs2, in.Rs3), nil
	case FMADDD:
		return encR4(opcFMAdd, 1, in.Rd, in.Rs1, in.Rs2, in.Rs3), nil
	case FMSUBS:
		return encR4(opcFMSub, 0, in.Rd, in.Rs1, in.Rs2, in.Rs3), nil
	case FMSUBD:
		return encR4(opcFMSub, 1, in.Rd, in.Rs1, in.Rs2, in.Rs3), nil
	case VSETVLI:
		return encI(opcOpV, 7, in.Rd, in.Rs1, in.Imm&0x7FF), nil
	case VSETVL:
		return encR(opcOpV, 7, 0x40, in.Rd, in.Rs1, in.Rs2), nil
	case VLE:
		return encR(opcLoadFP, 7, vmemF7(0, in.Masked), in.Rd, in.Rs1, X(0)), nil
	case VLSE:
		return encR(opcLoadFP, 7, vmemF7(0x08, in.Masked), in.Rd, in.Rs1, in.Rs2), nil
	case VLXEI:
		// index vector travels in the rs2 field
		return encR(opcLoadFP, 7, vmemF7(0x0C, in.Masked), in.Rd, in.Rs1, in.Rs2), nil
	case VSE:
		// store layout mirrors the load: vs3 (data) in the rd slot
		return encR(opcStoreFP, 7, vmemF7(0, in.Masked), in.Rs2, in.Rs1, X(0)), nil
	case VSSE:
		return encR(opcStoreFP, 7, vmemF7(0x08, in.Masked), in.Rs2, in.Rs1, in.Rs3), nil
	case VSXEI:
		return encR(opcStoreFP, 7, vmemF7(0x0C, in.Masked), in.Rs2, in.Rs1, in.Rs3), nil
	case XADDSL:
		return encR(opcCustom0, 3, uint32(in.Imm)&3, in.Rd, in.Rs1, in.Rs2), nil
	case XEXT:
		return encI(opcCustom0, 4, in.Rd, in.Rs1, in.Imm&0xFFF), nil
	case XEXTU:
		return encI(opcCustom0, 5, in.Rd, in.Rs1, in.Imm&0xFFF), nil
	case XSRRI:
		return encI(opcCustom0, 6, in.Rd, in.Rs1, in.Imm&0x3F), nil
	}
	if sub, ok := xIdxLoadSub[op]; ok {
		return encR(opcCustom0, 1, sub<<2|uint32(in.Imm)&3, in.Rd, in.Rs1, in.Rs2), nil
	}
	if sub, ok := xIdxStoreSub[op]; ok {
		// data register travels in the rd field for the custom store form
		return encR(opcCustom0, 2, sub<<2|uint32(in.Imm)&3, in.Rd, in.Rs1, in.Rs2), nil
	}
	if sub, ok := xRTypeSub[op]; ok {
		rs2 := in.Rs2
		if rs2 == RegNone {
			rs2 = X(0)
		}
		return encR(opcCustom0, 0, sub, in.Rd, in.Rs1, rs2), nil
	}
	if imm, ok := xCacheOpImm[op]; ok {
		rs1 := in.Rs1
		if rs1 == RegNone {
			rs1 = X(0)
		}
		return encI(opcCustom0, 7, X(0), rs1, imm), nil
	}
	return 0, fmt.Errorf("isa: cannot encode %v", op)
}

// MustEncode is Encode for known-good instructions (panics on failure); it is
// used by code generators whose instruction set is fixed.
func MustEncode(in Inst) uint32 {
	v, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return v
}
