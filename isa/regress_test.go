package isa

import "testing"

// TestSourcesPositional pins the positional contract of Sources(): slot k of
// the returned array corresponds to the k-th architectural source (Rs1, Rs2,
// Rs3/Rd-as-source), with only RegNone skipped. An earlier version dropped
// x0 too, which shifted later operands down a slot and made the OoO core
// evaluate non-commutative ops like `sra rd, x0, rs2` with swapped operands
// (found by the co-simulation fuzzer, internal/cosim).
func TestSourcesPositional(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
		want []Reg
	}{
		{"x0_first_kept", Inst{Op: SRA, Rd: X(5), Rs1: Zero, Rs2: X(22), Rs3: RegNone}, []Reg{Zero, X(22)}},
		{"x0_second_kept", Inst{Op: SUB, Rd: X(5), Rs1: X(6), Rs2: Zero, Rs3: RegNone}, []Reg{X(6), Zero}},
		{"regnone_skipped", Inst{Op: ADDI, Rd: X(5), Rs1: X(6), Rs2: RegNone, Rs3: RegNone}, []Reg{X(6)}},
		{"three_sources", Inst{Op: FMADDD, Rd: F(0), Rs1: F(1), Rs2: F(2), Rs3: F(3)}, []Reg{F(1), F(2), F(3)}},
		{"branch_x0", Inst{Op: BLT, Rd: RegNone, Rs1: Zero, Rs2: X(6), Rs3: RegNone}, []Reg{Zero, X(6)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs, n := tc.in.Sources()
			if n != len(tc.want) {
				t.Fatalf("n = %d, want %d", n, len(tc.want))
			}
			for i, r := range tc.want {
				if regs[i] != r {
					t.Errorf("regs[%d] = %v, want %v", i, regs[i], r)
				}
			}
		})
	}
}

// TestEvalWordWidth pins the sign-extension behaviour of the *W family: the
// result is always the sign-extended low 32 bits, upper source bits are
// ignored, and shift amounts mask to 5 bits.
func TestEvalWordWidth(t *testing.T) {
	cases := []struct {
		name string
		op   Op
		a, b uint64
		imm  int64
		want uint64
	}{
		{"addiw_overflow", ADDIW, 0x7fffffff, 0, 1, 0xffffffff80000000},
		{"addiw_ignores_high", ADDIW, 0xdeadbeef_00000001, 0, 1, 2},
		{"addw_wrap", ADDW, 0xffffffff, 1, 0, 0},
		{"subw_borrow", SUBW, 0, 1, 0, 0xffffffffffffffff},
		{"slliw_sign", SLLIW, 1, 0, 31, 0xffffffff80000000},
		{"srliw_zero_extends_then_sexts", SRLIW, 0xdeadbeef_80000000, 0, 31, 1},
		{"sraiw_sign", SRAIW, 0x80000000, 0, 31, 0xffffffffffffffff},
		{"sllw_ignores_high", SLLW, 0xffffffff_00000001, 1, 0, 2},
		{"srlw_low32", SRLW, 0x80000000, 4, 0, 0x08000000},
		{"sraw_mask5", SRAW, 0x80000000, 32, 0, 0xffffffff80000000},
		{"sraw_neg", SRAW, 0x80000000, 1, 0, 0xffffffffc0000000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := EvalIntALU(tc.op, tc.a, tc.b, 0, tc.imm, 4)
			if !ok {
				t.Fatalf("EvalIntALU(%v) not handled", tc.op)
			}
			if got != tc.want {
				t.Errorf("got %#x, want %#x", got, tc.want)
			}
		})
	}
}

// TestDecode16Expansion pins the expansion of compressed encodings with
// sign-extended immediates and the offset scaling of the load/store forms.
// Raw values are hand-assembled from the RVC spec tables.
func TestDecode16Expansion(t *testing.T) {
	cases := []struct {
		name string
		raw  uint16
		want Inst
	}{
		// c.addi a0, -1 → addi x10, x10, -1
		{"c.addi_neg", 0x157d, Inst{Op: ADDI, Rd: X(10), Rs1: X(10), Imm: -1}},
		// c.addiw a1, -2 → addiw x11, x11, -2
		{"c.addiw_neg", 0x35f9, Inst{Op: ADDIW, Rd: X(11), Rs1: X(11), Imm: -2}},
		// c.lw a0, 4(a1) → lw x10, 4(x11)
		{"c.lw_scaled", 0x41c8, Inst{Op: LW, Rd: X(10), Rs1: X(11), Imm: 4}},
		// c.srai a2, 63 → srai x12, x12, 63
		{"c.srai_full", 0x967d, Inst{Op: SRAI, Rd: X(12), Rs1: X(12), Imm: 63}},
		// c.beqz a0, +16 → beq x10, x0, 16
		{"c.beqz_fwd", 0xc901, Inst{Op: BEQ, Rs1: X(10), Rs2: Zero, Imm: 16}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Decode16(tc.raw)
			if got.Op != tc.want.Op || got.Imm != tc.want.Imm {
				t.Fatalf("got %v (op=%v imm=%d), want op=%v imm=%d",
					got, got.Op, got.Imm, tc.want.Op, tc.want.Imm)
			}
			if tc.want.Rd != 0 && got.Rd != tc.want.Rd {
				t.Errorf("rd = %v, want %v", got.Rd, tc.want.Rd)
			}
			if tc.want.Rs1 != 0 && got.Rs1 != tc.want.Rs1 {
				t.Errorf("rs1 = %v, want %v", got.Rs1, tc.want.Rs1)
			}
			if got.Size != 2 {
				t.Errorf("size = %d, want 2", got.Size)
			}
		})
	}
}

// TestCompressRoundTrip checks Decode16(Compress(in)) == in over the forms
// the assembler emits, so the two directions cannot drift apart.
func TestCompressRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: ADDI, Rd: X(10), Rs1: X(10), Imm: -32},
		{Op: ADDI, Rd: X(10), Rs1: Zero, Imm: 31},
		{Op: ADDI, Rd: SP, Rs1: SP, Imm: -496},
		{Op: ADDI, Rd: X(8), Rs1: SP, Imm: 4},
		{Op: LW, Rd: X(9), Rs1: X(8), Imm: 124},
		{Op: LD, Rd: X(14), Rs1: X(15), Imm: 248},
		{Op: SW, Rs1: X(8), Rs2: X(9), Imm: 64},
		{Op: SD, Rs1: X(8), Rs2: X(9), Imm: 0},
		{Op: SRAI, Rd: X(12), Rs1: X(12), Imm: 1},
		{Op: ANDI, Rd: X(13), Rs1: X(13), Imm: -1},
		{Op: SUBW, Rd: X(8), Rs1: X(8), Rs2: X(9)},
	}
	for _, in := range cases {
		raw, ok := Compress(in)
		if !ok {
			t.Errorf("%v: no compressed form", in)
			continue
		}
		got := Decode16(raw)
		if got.Op != in.Op || got.Imm != in.Imm {
			t.Errorf("%v: round-trip gave %v (imm %d)", in, got, got.Imm)
		}
	}
}
