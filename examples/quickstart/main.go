// Quickstart: assemble a small program, run it on the XT-910 pipeline model,
// and read back the result and the headline performance counters.
package main

import (
	"fmt"
	"log"

	"xt910"
)

const program = `
# sum of squares 1..100 = 338350
_start:
    li   a0, 0
    li   t0, 1
    li   t1, 100
loop:
    mul  t2, t0, t0
    add  a0, a0, t2
    addi t0, t0, 1
    ble  t0, t1, loop
    li   a7, 93        # host exit syscall
    ecall
`

func main() {
	sys, err := xt910.NewSystem(xt910.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sys.LoadAssembly(program, xt910.AsmOptions{Base: 0x1000, Compress: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d bytes (%d instructions)\n", len(prog.Data), prog.NumInsts)

	sys.Run(1_000_000)

	hart := sys.Hart(0)
	stats := hart.Stats()
	fmt.Printf("exit code : %d (want 338350)\n", hart.ExitCode())
	fmt.Printf("cycles    : %d\n", stats.Cycles)
	fmt.Printf("retired   : %d\n", stats.Retired)
	fmt.Printf("IPC       : %.2f\n", stats.IPC())
	fmt.Printf("branches  : %d (%.1f%% mispredicted)\n",
		stats.Branches, 100*stats.MispredictRate())
	fmt.Printf("loop buffer supplied %d instructions (§III-C)\n", stats.LoopBufInsts)

	// cross-check against the functional golden model
	emu := xt910.NewEmulator(prog)
	if err := emu.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulator agrees: %v (exit %d)\n",
		emu.ExitCode == hart.ExitCode(), emu.ExitCode)
}
