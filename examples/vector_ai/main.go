// Vector AI example: the §VII/§X story — an int16 dot product run three ways:
// scalar, RVV-0.7.1 vector (widening 16-bit MACs), and half-precision vector.
// The vector engine's two 64-bit slices retire 16 int16 MACs per cycle at
// e16, which is what gives the XT-910 its 2x AI advantage over NEON.
package main

import (
	"fmt"
	"log"

	"xt910"
	"xt910/internal/workloads"
)

func run(name string, w workloads.Workload, iters int) (uint64, int) {
	sys, err := xt910.NewSystem(xt910.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	prog, err := w.Program(iters, true)
	if err != nil {
		log.Fatal(err)
	}
	sys.LoadProgram(prog)
	sys.Run(200_000_000)
	h := sys.Hart(0)
	st := h.Stats()
	fmt.Printf("%-14s cycles=%9d IPC=%.2f vector-ops=%d exit=%d\n",
		name, st.Cycles, st.IPC(), st.VecOps, h.ExitCode())
	return st.Cycles, h.ExitCode()
}

func main() {
	const iters = 10
	scalarCycles, scalarSum := run("scalar int16", workloads.AIDotScalar, iters)
	vectorCycles, vectorSum := run("vector int16", workloads.AIDotVector, iters)
	run("vector fp16", workloads.AIDotFP16, iters)

	if scalarSum != vectorSum {
		log.Fatalf("scalar and vector dot products disagree: %d vs %d", scalarSum, vectorSum)
	}
	const macs = 2048 * iters
	fmt.Printf("\nscalar : %.2f MACs/cycle\n", float64(macs)/float64(scalarCycles))
	fmt.Printf("vector : %.2f MACs/cycle (peak 16/cycle at e16, §VII)\n",
		float64(macs)/float64(vectorCycles))
	fmt.Printf("speedup: %.2fx\n", float64(scalarCycles)/float64(vectorCycles))
}
