// Toolchain example (§IX / Fig. 20): compiles the same IR kernel with the
// baseline backend and the optimized+extensions backend, prints both
// assembly listings side by side conceptually (static instruction counts),
// and times them on the XT-910 model.
package main

import (
	"fmt"
	"log"

	"xt910"
	"xt910/internal/compiler"
)

func timeIt(src string) (uint64, int) {
	sys, err := xt910.NewSystem(xt910.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.LoadAssembly(src, xt910.AsmOptions{Base: 0x1000, Compress: true}); err != nil {
		log.Fatal(err)
	}
	sys.Run(500_000_000)
	h := sys.Hart(0)
	return h.Stats().Cycles, h.ExitCode()
}

func main() {
	kernel := compiler.DotProduct()
	fmt.Printf("kernel: %s (dot product over 256 elements, %d reps)\n\n",
		kernel.Name, kernel.Repeat)

	backends := []compiler.Backend{
		compiler.Baseline{},
		compiler.Optimized{},                   // §IX compiler optimizations only
		compiler.Optimized{UseCustomExt: true}, // + §VIII custom instructions
	}
	var baseCycles uint64
	var baseExit int
	for i, be := range backends {
		src, err := be.Compile(kernel)
		if err != nil {
			log.Fatal(err)
		}
		cycles, exit := timeIt(src)
		if i == 0 {
			baseCycles, baseExit = cycles, exit
		} else if exit != baseExit {
			log.Fatalf("%s computes a different result: %d vs %d", be.Name(), exit, baseExit)
		}
		fmt.Printf("%-14s static insts %3d   cycles %8d   speedup %.2fx\n",
			be.Name(), compiler.StaticInsts(src), cycles,
			float64(baseCycles)/float64(cycles))
	}
	fmt.Println("\npaper §X: extensions + optimized compiler ≈ +20% end to end (Fig. 20)")

	// show what the optimized backend actually emits
	src, _ := (compiler.Optimized{UseCustomExt: true}).Compile(kernel)
	fmt.Println("\noptimized+ext assembly (code section):")
	for i, line := range splitCode(src) {
		fmt.Println("   ", line)
		if i > 24 {
			fmt.Println("    ...")
			break
		}
	}
}

func splitCode(src string) []string {
	var out []string
	for _, line := range split(src, '\n') {
		if line == "" {
			break // data section follows the first blank line
		}
		out = append(out, line)
	}
	return out
}

func split(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}
