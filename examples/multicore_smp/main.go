// Multi-core SMP example (§VI): four cores in one cluster increment a shared
// counter under an LR/SC spinlock. The run exercises the MOSEI coherence
// protocol, the snoop filter and cross-core reservation invalidation; the
// printout shows the coherence traffic the snoop filter saved.
package main

import (
	"fmt"
	"log"

	"xt910"
)

const program = `
.equ N, 500
_start:
    csrr t0, mhartid
    la   t1, counter
    li   t2, N
loop:
    addi t3, t0, 1          # each hart adds (hartid+1)
retry:
    lr.d t4, (t1)
    add  t4, t4, t3
    sc.d t5, t4, (t1)
    bnez t5, retry
    addi t2, t2, -1
    bnez t2, loop
    # join barrier: atomically count arrivals
    la   t1, done
arrive:
    lr.d t4, (t1)
    addi t4, t4, 1
    sc.d t5, t4, (t1)
    bnez t5, arrive
    csrr t0, mhartid
    bnez t0, halt
wait:
    ld   t4, 0(t1)
    li   t5, 4
    blt  t4, t5, wait
    la   t1, counter
    ld   a0, 0(t1)
    li   a7, 93
    ecall
halt:
    li   a0, 0
    li   a7, 93
    ecall
.align 3
counter: .dword 0
done:    .dword 0
`

func main() {
	cfg := xt910.DefaultConfig()
	cfg.CoresPerCluster = 4
	sys, err := xt910.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.LoadAssembly(program, xt910.AsmOptions{Base: 0x1000}); err != nil {
		log.Fatal(err)
	}
	sys.Run(100_000_000)

	want := 500 * (1 + 2 + 3 + 4)
	fmt.Printf("shared counter = %d (want %d)\n", sys.Hart(0).ExitCode(), want)
	for i := 0; i < sys.Harts(); i++ {
		h := sys.Hart(i)
		st := h.Stats()
		fmt.Printf("hart %d: cycles=%d retired=%d IPC=%.2f atomics=%d\n",
			h.ID(), st.Cycles, st.Retired, st.IPC(), st.Atomics)
	}
	l2 := sys.Clusters[0].L2
	fmt.Printf("\ncoherence: %d snoops sent, %d filtered by the snoop filter (§VI)\n",
		l2.Stats.SnoopsSent, l2.Stats.SnoopsFiltered)
	fmt.Printf("           %d invalidations, %d dirty cache-to-cache transfers\n",
		l2.Stats.Invalidations, l2.Stats.DirtyTransfers)
}
