// Prefetch tuning example (§V-C / Fig. 21): runs STREAM against a 200-cycle
// memory with the multi-mode multi-stream prefetcher in different
// configurations and prints the speedups — a miniature of the paper's Fig. 21
// experiment that you can tweak.
package main

import (
	"fmt"
	"log"

	"xt910"
	"xt910/internal/prefetch"
	"xt910/internal/workloads"
)

func main() {
	prog, err := workloads.Stream.Program(1, true)
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		pf   prefetch.Config
	}{
		{"all prefetch off", prefetch.Config{Mode: prefetch.ModeOff}},
		{"L1 only, small distance", prefetch.Config{
			Mode: prefetch.ModeMultiStream, L1Enable: true}},
		{"L1+L2, small distance", prefetch.Config{
			Mode: prefetch.ModeMultiStream, L1Enable: true, L2Enable: true}},
		{"L1+L2, large distance", prefetch.Config{
			Mode: prefetch.ModeMultiStream, L1Enable: true, L2Enable: true,
			LargeDistance: true}},
	}

	var base uint64
	for _, c := range configs {
		cfg := xt910.DefaultConfig()
		cfg.L2SizeBytes = 256 << 10 // keep the arrays memory-resident
		cfg.L2Ways = 8
		cfg.DRAMLatency = 200 // §X: "about 200 CPU clock cycles"
		cfg.DRAMGap = 12
		cfg.Core.Prefetch = c.pf
		cfg.Core.L1D.MSHRs = 1
		sys, err := xt910.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sys.LoadProgram(prog)
		sys.Run(2_000_000_000)
		hart := sys.Hart(0)
		cycles := hart.Stats().Cycles
		if base == 0 {
			base = cycles
		}
		core := hart.Core()
		fmt.Printf("%-26s %10d cycles  %.2fx  (L1 prefetches %d, useful %d)\n",
			c.name, cycles, float64(base)/float64(cycles),
			core.PF.Stats.L1Issued, core.L1D.Cache.Stats.PrefetchUseful)
	}
	fmt.Println("\npaper Fig. 21: b=3.8x, c=4.9x, d=5.4x over the no-prefetch baseline")
}
