// Package-level benchmark harness: one testing.B benchmark per table/figure
// of the paper's evaluation (§X). `go test -bench=. -benchmem` regenerates
// them; each benchmark reports the reproduced quantity as a custom metric so
// the -bench output doubles as the paper-vs-measured record.
package xt910_test

import (
	"context"
	"testing"

	"xt910/internal/bench"
	"xt910/internal/perf"
)

// runFigure executes one reproduction inside a testing.B, reporting every row
// as a custom benchmark metric.
func runFigure(b *testing.B, fn func(context.Context, bench.Options) (*perf.Result, error)) {
	b.ReportAllocs()
	var res *perf.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = fn(context.Background(), bench.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Measured, metricName(row.Label))
	}
	b.Logf("\n%s", res.Format())
}

func metricName(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkTable1Configs regenerates Table I (core configuration matrix).
func BenchmarkTable1Configs(b *testing.B) { runFigure(b, bench.Table1) }

// BenchmarkTable2AreaPower regenerates Table II (frequency/area/power model).
func BenchmarkTable2AreaPower(b *testing.B) { runFigure(b, bench.Table2) }

// BenchmarkFig17CoreMark regenerates Fig. 17 (CoreMark comparison,
// XT-910 ≈ 1.39x the U74-class).
func BenchmarkFig17CoreMark(b *testing.B) { runFigure(b, bench.Fig17) }

// BenchmarkFig18EEMBC regenerates Fig. 18 (EEMBC vs Cortex-A73-class).
func BenchmarkFig18EEMBC(b *testing.B) { runFigure(b, bench.Fig18) }

// BenchmarkFig19NBench regenerates Fig. 19 (NBench vs Cortex-A73-class).
func BenchmarkFig19NBench(b *testing.B) { runFigure(b, bench.Fig19) }

// BenchmarkSpecLike regenerates the §X SPECInt2006 comparison
// (XT-910 ≈ 0.9x the A73 on large-footprint work).
func BenchmarkSpecLike(b *testing.B) { runFigure(b, bench.SpecInt) }

// BenchmarkFig20Toolchain regenerates Fig. 20 (extensions + optimized
// compiler ≈ +20%).
func BenchmarkFig20Toolchain(b *testing.B) { runFigure(b, bench.Fig20) }

// BenchmarkFig21Prefetch regenerates Fig. 21 (prefetch scenarios a–e on
// STREAM over a 200-cycle memory).
func BenchmarkFig21Prefetch(b *testing.B) { runFigure(b, bench.Fig21) }

// BenchmarkVectorMAC regenerates the §VII/§X 16-bit MAC throughput claim.
func BenchmarkVectorMAC(b *testing.B) { runFigure(b, bench.VectorMAC) }

// BenchmarkASIDFlushes regenerates the §V-E 16-bit-ASID flush-reduction claim.
func BenchmarkASIDFlushes(b *testing.B) { runFigure(b, bench.ASID) }

// BenchmarkHugePages regenerates the §V-E huge-page TLB-miss claim.
func BenchmarkHugePages(b *testing.B) { runFigure(b, bench.HugePages) }

// BenchmarkBlockchain regenerates the §I custom-extension hash acceleration.
func BenchmarkBlockchain(b *testing.B) { runFigure(b, bench.Blockchain) }
