package xt910_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoDeprecatedFacadeCallers walks every Go file outside the facade itself
// and rejects calls to the deprecated index-parameter System accessors
// (Stats(i), Reg(i, r), Output(i), ExitCode(i), Core(i)). In-repo code must
// use the Hart(i) handle; the wrappers exist only for downstream users.
//
// The check is syntactic: a call to a selector named like one of the wrappers
// with the wrapper's arity (the Hart methods take one argument fewer, so
// arity separates them without type information). cosim.Session carries its
// own zero-argument deprecated Core()/Emu() pair; those are outside this
// check's scope.
func TestNoDeprecatedFacadeCallers(t *testing.T) {
	deprecatedArity := map[string]int{
		"Stats":    1,
		"Output":   1,
		"ExitCode": 1,
		"Core":     1,
		"Reg":      2,
	}
	var bad []string
	for _, dir := range []string{"examples", "cmd", "internal"} {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				arity, watched := deprecatedArity[sel.Sel.Name]
				if !watched || len(call.Args) != arity {
					return true
				}
				// arity alone would also catch unrelated types whose methods
				// share these names; only integer-literal or plain-identifier
				// hart indexes appear in this repo, and only receiver
				// variables holding a *xt910.System ever spelled them —
				// restrict to the facade import being present so packages
				// that never touch the facade cannot false-positive.
				if !importsFacade(f) {
					return false
				}
				bad = append(bad, fmt.Sprintf("%s: %s.%s/%d",
					fset.Position(call.Pos()), exprString(sel.X), sel.Sel.Name, arity))
				return true
			})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(bad) > 0 {
		t.Errorf("deprecated index-parameter facade calls (use sys.Hart(i) handles):\n  %s",
			strings.Join(bad, "\n  "))
	}
}

func importsFacade(f *ast.File) bool {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"xt910"` {
			return true
		}
	}
	return false
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	default:
		return "?"
	}
}
