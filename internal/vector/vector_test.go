package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xt910/isa"
)

func TestFp16RoundTripExact(t *testing.T) {
	// every finite fp16 value must survive f16 -> f32 -> f16
	for h := 0; h < 1<<16; h++ {
		f := F16ToF32(uint16(h))
		if math.IsNaN(float64(f)) {
			continue
		}
		back := F32ToF16(f)
		if back != uint16(h) {
			t.Fatalf("fp16 %04x -> %v -> %04x", h, f, back)
		}
	}
}

func TestFp16KnownValues(t *testing.T) {
	cases := []struct {
		bits uint16
		val  float32
	}{
		{0x3C00, 1.0}, {0xC000, -2.0}, {0x3555, 0.333251953125},
		{0x7C00, float32(math.Inf(1))}, {0x0001, 5.960464477539063e-08},
	}
	for _, c := range cases {
		if got := F16ToF32(c.bits); got != c.val {
			t.Errorf("F16ToF32(%04x) = %v, want %v", c.bits, got, c.val)
		}
	}
	if AddF16(0x3C00, 0x3C00) != 0x4000 { // 1+1=2
		t.Error("1+1 != 2 in fp16")
	}
	if MulF16(0x4000, 0x4200) != 0x4600 { // 2*3=6
		t.Error("2*3 != 6 in fp16")
	}
}

func TestFp16RoundToNearestEven(t *testing.T) {
	f := func(a, b uint16) bool {
		// adding zero must be identity for normals
		fa := F16ToF32(a &^ 0x8000 & 0x7BFF) // clear sign, avoid inf/nan
		return F32ToF16(fa) == a&^0x8000&0x7BFF || math.IsNaN(float64(fa))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSetVLClamping(t *testing.T) {
	u := NewUnit(128)
	if vl := u.SetVL(100, isa.MakeVType(isa.SEW32, 0)); vl != 4 {
		t.Fatalf("e32,m1 VLMAX = 4, got %d", vl)
	}
	if vl := u.SetVL(1000, isa.MakeVType(isa.SEW8, 3)); vl != 128 {
		t.Fatalf("e8,m8 VLMAX = 128, got %d", vl)
	}
	if vl := u.SetVL(3, isa.MakeVType(isa.SEW16, 1)); vl != 3 {
		t.Fatalf("requests under VLMAX pass through, got %d", vl)
	}
}

func execVV(t *testing.T, u *Unit, op isa.Op, vd, vs2, vs1 int) {
	t.Helper()
	in := isa.NewInst(op)
	in.Rd, in.Rs1, in.Rs2 = isa.V(vd), isa.V(vs1), isa.V(vs2)
	if _, _, err := u.Exec(in, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntegerElementwise(t *testing.T) {
	u := NewUnit(128)
	u.SetVL(4, isa.MakeVType(isa.SEW32, 0))
	for i := 0; i < 4; i++ {
		u.File.setElem(1, i, 32, uint64(i+1))     // v1 = 1,2,3,4
		u.File.setElem(2, i, 32, uint64(10*i+10)) // v2 = 10,20,30,40
	}
	execVV(t, u, isa.VADDVV, 3, 1, 2) // v3 = v1 + v2 (vs2=v1, vs1=v2)
	for i := 0; i < 4; i++ {
		want := uint64(i+1) + uint64(10*i+10)
		if got := u.File.elem(3, i, 32); got != want {
			t.Fatalf("vadd elem %d = %d, want %d", i, got, want)
		}
	}
	execVV(t, u, isa.VMULVV, 4, 1, 2)
	if got := u.File.elem(4, 3, 32); got != 160 {
		t.Fatalf("vmul elem 3 = %d", got)
	}
	execVV(t, u, isa.VMAXVV, 5, 1, 2)
	if got := u.File.elem(5, 0, 32); got != 10 {
		t.Fatalf("vmax elem 0 = %d", got)
	}
}

func TestSignedSemantics(t *testing.T) {
	u := NewUnit(128)
	u.SetVL(2, isa.MakeVType(isa.SEW16, 0))
	u.File.setElem(1, 0, 16, 0xFFFF) // -1
	u.File.setElem(1, 1, 16, 0x8000) // -32768
	u.File.setElem(2, 0, 16, 2)
	u.File.setElem(2, 1, 16, 2)
	execVV(t, u, isa.VMULVV, 3, 1, 2)
	if got := int16(u.File.elem(3, 0, 16)); got != -2 {
		t.Fatalf("(-1)*2 = %d", got)
	}
	execVV(t, u, isa.VMINVV, 4, 1, 2)
	if got := int16(u.File.elem(4, 1, 16)); got != -32768 {
		t.Fatalf("min(-32768,2) = %d", got)
	}
	execVV(t, u, isa.VDIVVV, 5, 1, 2)
	if got := int16(u.File.elem(5, 1, 16)); got != -16384 {
		t.Fatalf("-32768/2 = %d", got)
	}
}

func TestWideningMAC16(t *testing.T) {
	// the §X AI claim: 16-bit MACs accumulate into 32-bit elements
	u := NewUnit(128)
	u.SetVL(8, isa.MakeVType(isa.SEW16, 0)) // 8 x int16 in one 128-bit reg
	for i := 0; i < 8; i++ {
		u.File.setElem(1, i, 16, uint64(i+1))
		u.File.setElem(2, i, 16, 1000)
	}
	in := isa.NewInst(isa.VWMACCVV)
	in.Rd, in.Rs1, in.Rs2 = isa.V(4), isa.V(1), isa.V(2)
	if _, _, err := u.Exec(in, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got := u.File.elem(4, i, 32); got != uint64((i+1)*1000) {
			t.Fatalf("wmacc elem %d = %d", i, got)
		}
	}
}

func TestReduction(t *testing.T) {
	u := NewUnit(128)
	u.SetVL(4, isa.MakeVType(isa.SEW32, 0))
	for i := 0; i < 4; i++ {
		u.File.setElem(2, i, 32, uint64(i+1)) // 1..4
	}
	u.File.setElem(1, 0, 32, 100) // scalar seed
	in := isa.NewInst(isa.VREDSUMVS)
	in.Rd, in.Rs1, in.Rs2 = isa.V(3), isa.V(1), isa.V(2)
	if _, _, err := u.Exec(in, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := u.File.elem(3, 0, 32); got != 110 {
		t.Fatalf("redsum = %d, want 110", got)
	}
}

func TestFP32Elementwise(t *testing.T) {
	u := NewUnit(128)
	u.SetVL(4, isa.MakeVType(isa.SEW32, 0))
	for i := 0; i < 4; i++ {
		u.File.setElem(1, i, 32, uint64(math.Float32bits(float32(i)+0.5)))
		u.File.setElem(2, i, 32, uint64(math.Float32bits(2.0)))
	}
	execVV(t, u, isa.VFMULVV, 3, 1, 2)
	for i := 0; i < 4; i++ {
		got := math.Float32frombits(uint32(u.File.elem(3, i, 32)))
		if got != (float32(i)+0.5)*2 {
			t.Fatalf("vfmul elem %d = %v", i, got)
		}
	}
}

func TestFP16Elementwise(t *testing.T) {
	u := NewUnit(128)
	u.SetVL(8, isa.MakeVType(isa.SEW16, 0))
	for i := 0; i < 8; i++ {
		u.File.setElem(1, i, 16, uint64(F32ToF16(1.5)))
		u.File.setElem(2, i, 16, uint64(F32ToF16(2.0)))
	}
	execVV(t, u, isa.VFMULVV, 3, 1, 2)
	for i := 0; i < 8; i++ {
		if got := F16ToF32(uint16(u.File.elem(3, i, 16))); got != 3.0 {
			t.Fatalf("fp16 vfmul elem %d = %v", i, got)
		}
	}
}

func TestVectorLoadStore(t *testing.T) {
	u := NewUnit(128)
	u.SetVL(4, isa.MakeVType(isa.SEW32, 0))
	memory := map[uint64]uint64{}
	ld := func(addr uint64, size int) uint64 { return memory[addr] }
	st := func(addr uint64, size int, v uint64) { memory[addr] = v }
	for i := uint64(0); i < 4; i++ {
		memory[0x100+4*i] = i * 7
	}
	lin := isa.NewInst(isa.VLE)
	lin.Rd, lin.Rs1 = isa.V(1), isa.A0
	if _, _, err := u.Exec(lin, 0x100, ld, st); err != nil {
		t.Fatal(err)
	}
	sin := isa.NewInst(isa.VSE)
	sin.Rs2, sin.Rs1 = isa.V(1), isa.A1
	if _, _, err := u.Exec(sin, 0x200, ld, st); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if memory[0x200+4*i] != i*7 {
			t.Fatalf("elem %d round trip failed", i)
		}
	}
}

func TestStridedLoad(t *testing.T) {
	u := NewUnit(128)
	u.SetVL(4, isa.MakeVType(isa.SEW32, 0))
	memory := map[uint64]uint64{}
	for i := uint64(0); i < 4; i++ {
		memory[0x100+16*i] = i + 1
	}
	ld := func(addr uint64, size int) uint64 { return memory[addr] }
	in := isa.NewInst(isa.VLSE)
	in.Rd, in.Rs1 = isa.V(2), isa.A0
	in.Imm = 16 // stride, pre-resolved by caller
	if _, _, err := u.Exec(in, 0x100, ld, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := u.File.elem(2, i, 32); got != uint64(i+1) {
			t.Fatalf("strided elem %d = %d", i, got)
		}
	}
}

func TestLMULGroupsSpanRegisters(t *testing.T) {
	u := NewUnit(128)
	u.SetVL(8, isa.MakeVType(isa.SEW32, 1)) // e32,m2: 8 elements across v2,v3
	for i := 0; i < 8; i++ {
		u.File.setElem(2, i, 32, uint64(i))
	}
	// element 4 must land in the second register of the group
	if got := u.File.elem(3, 0, 32); got != 4 {
		t.Fatalf("element 4 should be v3[0], got %d", got)
	}
}

func TestOccupancyAndMemCycles(t *testing.T) {
	if OccupancyCycles(isa.MakeVType(isa.SEW32, 0)) != 1 {
		t.Fatal("m1 occupies 1 cycle")
	}
	if OccupancyCycles(isa.MakeVType(isa.SEW32, 3)) != 8 {
		t.Fatal("m8 occupies 8 cycles")
	}
	if MemCycles(4, isa.MakeVType(isa.SEW32, 0)) != 1 {
		t.Fatal("128 bits move in 1 cycle")
	}
	if MemCycles(8, isa.MakeVType(isa.SEW32, 1)) != 2 {
		t.Fatal("256 bits move in 2 cycles")
	}
}

func TestFileCloneEqual(t *testing.T) {
	u := NewUnit(128)
	rng := rand.New(rand.NewSource(5))
	for r := 0; r < 32; r++ {
		for b := 0; b < 16; b++ {
			u.File.Bytes(r)[b] = byte(rng.Intn(256))
		}
	}
	c := u.File.Clone()
	if !u.File.Equal(c) {
		t.Fatal("clone must be equal")
	}
	c.Bytes(7)[3] ^= 1
	if u.File.Equal(c) {
		t.Fatal("mutation must break equality")
	}
}
