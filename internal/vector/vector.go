// Package vector implements the XT-910 vector engine (§VII): the 0.7.1-draft
// register state (VLEN/SLEN = 128 recommended configuration), the functional
// semantics of the implemented vector operations, and the slice-based timing
// parameters the pipeline model charges.
//
// The architecture is two vector slices, each with a full 64-bit data path
// and two execution pipelines, producing up to 256 bits of results per cycle;
// loads and stores move 128 bits per cycle through the LSU.
package vector

import (
	"encoding/binary"
	"fmt"
	"math"

	"xt910/isa"
)

// DefaultVLEN is the recommended configuration from §VII: "two vector slices
// with 128-bit VLEN and SLEN are recommended".
const DefaultVLEN = 128

// File is the vector register file: 32 registers of VLEN bits.
type File struct {
	VLENBits int
	regs     [32][]byte
}

// NewFile allocates a register file.
func NewFile(vlenBits int) *File {
	f := &File{VLENBits: vlenBits}
	for i := range f.regs {
		f.regs[i] = make([]byte, vlenBits/8)
	}
	return f
}

// Bytes exposes register r's backing storage.
func (f *File) Bytes(r int) []byte { return f.regs[r] }

// Clone deep-copies the file (used for co-simulation checks).
func (f *File) Clone() *File {
	n := NewFile(f.VLENBits)
	for i := range f.regs {
		copy(n.regs[i], f.regs[i])
	}
	return n
}

// Equal reports whether two files hold identical contents.
func (f *File) Equal(o *File) bool {
	if f.VLENBits != o.VLENBits {
		return false
	}
	for i := range f.regs {
		for j := range f.regs[i] {
			if f.regs[i][j] != o.regs[i][j] {
				return false
			}
		}
	}
	return true
}

// elem reads element idx of width sew bits from the register group starting
// at reg. Register groups are contiguous: element byte offset i*sew/8 simply
// runs across consecutive registers.
func (f *File) elem(reg, idx, sew int) uint64 {
	bytesPerReg := f.VLENBits / 8
	off := idx * sew / 8
	r := reg + off/bytesPerReg
	o := off % bytesPerReg
	switch sew {
	case 8:
		return uint64(f.regs[r][o])
	case 16:
		return uint64(binary.LittleEndian.Uint16(f.regs[r][o:]))
	case 32:
		return uint64(binary.LittleEndian.Uint32(f.regs[r][o:]))
	default:
		return binary.LittleEndian.Uint64(f.regs[r][o:])
	}
}

func (f *File) setElem(reg, idx, sew int, v uint64) {
	bytesPerReg := f.VLENBits / 8
	off := idx * sew / 8
	r := reg + off/bytesPerReg
	o := off % bytesPerReg
	switch sew {
	case 8:
		f.regs[r][o] = byte(v)
	case 16:
		binary.LittleEndian.PutUint16(f.regs[r][o:], uint16(v))
	case 32:
		binary.LittleEndian.PutUint32(f.regs[r][o:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(f.regs[r][o:], v)
	}
}

// MemLoad and MemStore are the LSU callbacks vector memory operations use.
type MemLoad func(addr uint64, size int) uint64

// MemStore writes size bytes of val at addr.
type MemStore func(addr uint64, size int, val uint64)

// Unit binds a register file with configuration state and executes vector
// operations functionally.
type Unit struct {
	File  *File
	VL    uint64
	VType isa.VType
}

// NewUnit creates a vector unit with the given VLEN.
func NewUnit(vlenBits int) *Unit {
	return &Unit{File: NewFile(vlenBits)}
}

// VLMax returns VLMAX for the current vtype.
func (u *Unit) VLMax() uint64 {
	return uint64(u.VType.VLMAX(u.File.VLENBits))
}

// SetVL applies a vsetvl/vsetvli request: vl = min(requested, VLMAX),
// per the 0.7.1 rule that hardware picks the element count.
func (u *Unit) SetVL(requested uint64, vt isa.VType) uint64 {
	u.VType = vt
	max := uint64(vt.VLMAX(u.File.VLENBits))
	if requested > max {
		requested = max
	}
	u.VL = requested
	return requested
}

// maskBit reads bit i of the mask register v0 (mask layout: one bit per
// element, packed LSB-first).
func (f *File) maskBit(i int) bool {
	return f.regs[0][i/8]>>(uint(i)%8)&1 == 1
}

func sextTo(v uint64, sew int) int64 {
	sh := 64 - uint(sew)
	return int64(v<<sh) >> sh
}

// Exec executes one vector instruction functionally. scalar carries the
// integer register operand for .vx/.s.x forms. The returned xres/hasX pair
// holds an integer result (vmv.x.s). Memory operations use the callbacks.
func (u *Unit) Exec(in isa.Inst, scalar uint64, ld MemLoad, st MemStore) (xres uint64, hasX bool, err error) {
	f := u.File
	sew := u.VType.SEW()
	vl := int(u.VL)
	vd := in.Rd.Index()
	op := in.Op
	// Masked-off elements are skipped entirely: destinations stay
	// undisturbed and no memory access is issued for them.
	active := func(i int) bool { return !in.Masked || f.maskBit(i) }

	switch op {
	case isa.VLE:
		base := scalar
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			f.setElem(vd, i, sew, ld(base+uint64(i*sew/8), sew/8))
		}
		return 0, false, nil
	case isa.VLSE:
		base := scalar
		stride := in.Imm // core/emu pass the stride via Imm after reading rs2
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			f.setElem(vd, i, sew, ld(base+uint64(int64(i)*stride), sew/8))
		}
		return 0, false, nil
	case isa.VLXEI:
		base := scalar
		vidx := in.Rs2.Index()
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			f.setElem(vd, i, sew, ld(base+f.elem(vidx, i, sew), sew/8))
		}
		return 0, false, nil
	case isa.VSE:
		vs := in.Rs2.Index()
		base := scalar
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			st(base+uint64(i*sew/8), sew/8, f.elem(vs, i, sew))
		}
		return 0, false, nil
	case isa.VSSE:
		vs := in.Rs2.Index()
		base := scalar
		stride := in.Imm
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			st(base+uint64(int64(i)*stride), sew/8, f.elem(vs, i, sew))
		}
		return 0, false, nil
	case isa.VSXEI:
		vs, vidx := in.Rs2.Index(), in.Rs3.Index()
		base := scalar
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			st(base+f.elem(vidx, i, sew), sew/8, f.elem(vs, i, sew))
		}
		return 0, false, nil
	case isa.VMSEQVV:
		// mask-register result: bit i of vd = (vs2[i] == vs1[i]);
		// masked-off bits stay undisturbed
		vs1, vs2 := in.Rs1.Index(), in.Rs2.Index()
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			bit := byte(1) << (uint(i) % 8)
			if f.elem(vs2, i, sew) == f.elem(vs1, i, sew) {
				f.regs[vd][i/8] |= bit
			} else {
				f.regs[vd][i/8] &^= bit
			}
		}
		return 0, false, nil
	case isa.VMVXS:
		return sextXLen(f.elem(in.Rs2.Index(), 0, sew), sew), true, nil
	case isa.VMVSX:
		f.setElem(vd, 0, sew, scalar)
		return 0, false, nil
	case isa.VMVVX:
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			f.setElem(vd, i, sew, scalar)
		}
		return 0, false, nil
	case isa.VMVVV:
		vs := in.Rs1.Index()
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			f.setElem(vd, i, sew, f.elem(vs, i, sew))
		}
		return 0, false, nil
	case isa.VREDSUMVS, isa.VREDMAXVS:
		// vd[0] = op(vs1[0], vs2[0..vl-1]); masked-off elements don't
		// participate in the reduction
		vs1, vs2 := in.Rs1.Index(), in.Rs2.Index()
		acc := sextTo(f.elem(vs1, 0, sew), sew)
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			e := sextTo(f.elem(vs2, i, sew), sew)
			if op == isa.VREDSUMVS {
				acc += e
			} else if e > acc {
				acc = e
			}
		}
		f.setElem(vd, 0, sew, uint64(acc))
		return 0, false, nil
	case isa.VFREDSUMVS:
		vs1, vs2 := in.Rs1.Index(), in.Rs2.Index()
		acc := u.fbits2f(f.elem(vs1, 0, sew), sew)
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			acc += u.fbits2f(f.elem(vs2, i, sew), sew)
		}
		f.setElem(vd, 0, sew, u.f2fbits(acc, sew))
		return 0, false, nil
	case isa.VWMACCVV:
		// widening MAC: vd (2*SEW elements) += vs1 * vs2 (SEW elements).
		vs1, vs2 := in.Rs1.Index(), in.Rs2.Index()
		wide := sew * 2
		if wide > 64 {
			return 0, false, fmt.Errorf("vector: vwmacc with sew=%d unsupported", sew)
		}
		for i := 0; i < vl; i++ {
			if !active(i) {
				continue
			}
			a := sextTo(f.elem(vs1, i, sew), sew)
			b := sextTo(f.elem(vs2, i, sew), sew)
			c := sextTo(f.elem(vd, i, wide), wide)
			f.setElem(vd, i, wide, uint64(c+a*b))
		}
		return 0, false, nil
	}

	// Element-wise integer/FP arithmetic.
	getB := func(i int) uint64 {
		switch op {
		case isa.VADDVX, isa.VSUBVX, isa.VMULVX:
			return scalar
		case isa.VADDVI:
			return uint64(in.Imm)
		}
		return f.elem(in.Rs1.Index(), i, sew)
	}
	vs2 := in.Rs2.Index()
	for i := 0; i < vl; i++ {
		if !active(i) {
			continue
		}
		a := f.elem(vs2, i, sew)
		b := getB(i)
		var r uint64
		switch op {
		case isa.VADDVV, isa.VADDVX, isa.VADDVI:
			r = a + b
		case isa.VSUBVV, isa.VSUBVX:
			r = a - b
		case isa.VMULVV, isa.VMULVX:
			r = uint64(sextTo(a, sew) * sextTo(b, sew))
		case isa.VMACCVV:
			r = uint64(sextTo(f.elem(vd, i, sew), sew) + sextTo(a, sew)*sextTo(b, sew))
		case isa.VANDVV:
			r = a & b
		case isa.VORVV:
			r = a | b
		case isa.VXORVV:
			r = a ^ b
		case isa.VSLLVV:
			r = a << (b & uint64(sew-1))
		case isa.VSRLVV:
			r = a >> (b & uint64(sew-1))
		case isa.VMINVV:
			if sextTo(a, sew) < sextTo(b, sew) {
				r = a
			} else {
				r = b
			}
		case isa.VMAXVV:
			if sextTo(a, sew) > sextTo(b, sew) {
				r = a
			} else {
				r = b
			}
		case isa.VDIVVV:
			sa, sb := sextTo(a, sew), sextTo(b, sew)
			if sb == 0 {
				r = ^uint64(0)
			} else {
				r = uint64(sa / sb)
			}
		case isa.VREMVV:
			sa, sb := sextTo(a, sew), sextTo(b, sew)
			if sb == 0 {
				r = uint64(sa)
			} else {
				r = uint64(sa % sb)
			}
		case isa.VFADDVV:
			r = u.f2fbits(u.fbits2f(a, sew)+u.fbits2f(b, sew), sew)
		case isa.VFSUBVV:
			r = u.f2fbits(u.fbits2f(a, sew)-u.fbits2f(b, sew), sew)
		case isa.VFMULVV:
			r = u.f2fbits(u.fbits2f(a, sew)*u.fbits2f(b, sew), sew)
		case isa.VFDIVVV:
			r = u.f2fbits(u.fbits2f(a, sew)/u.fbits2f(b, sew), sew)
		case isa.VFMACCVV:
			c := u.fbits2f(f.elem(vd, i, sew), sew)
			r = u.f2fbits(u.fbits2f(a, sew)*u.fbits2f(b, sew)+c, sew)
		default:
			return 0, false, fmt.Errorf("vector: unimplemented op %v", op)
		}
		// fp16 special-case: round through half precision for exactness
		if sew == 16 {
			switch op {
			case isa.VFADDVV:
				r = uint64(AddF16(uint16(a), uint16(b)))
			case isa.VFSUBVV:
				r = uint64(SubF16(uint16(a), uint16(b)))
			case isa.VFMULVV:
				r = uint64(MulF16(uint16(a), uint16(b)))
			case isa.VFDIVVV:
				r = uint64(DivF16(uint16(a), uint16(b)))
			case isa.VFMACCVV:
				r = uint64(MaccF16(uint16(a), uint16(b), uint16(f.elem(vd, i, sew))))
			}
		}
		f.setElem(vd, i, sew, r)
	}
	return 0, false, nil
}

// fbits2f interprets raw element bits as a float by SEW (16/32/64).
func (u *Unit) fbits2f(v uint64, sew int) float64 {
	switch sew {
	case 16:
		return float64(F16ToF32(uint16(v)))
	case 32:
		return float64(math.Float32frombits(uint32(v)))
	default:
		return math.Float64frombits(v)
	}
}

func (u *Unit) f2fbits(f float64, sew int) uint64 {
	switch sew {
	case 16:
		return uint64(F32ToF16(float32(f)))
	case 32:
		return uint64(math.Float32bits(float32(f)))
	default:
		return math.Float64bits(f)
	}
}

func sextXLen(v uint64, sew int) uint64 {
	return uint64(sextTo(v, sew))
}

// OccupancyCycles returns how many cycles a vector operation occupies one of
// the vector pipes: one pass of the two 64-bit slices retires 128 bits of
// results, so an op over LMUL registers takes LMUL passes.
func OccupancyCycles(vt isa.VType) int {
	l := vt.LMUL()
	if l < 1 {
		l = 1
	}
	return l
}

// MemCycles returns the LSU occupancy of a vector load/store: 128 bits per
// cycle (§VII: "complete a 128-bit vector load/store operation" per cycle).
func MemCycles(vl int, vt isa.VType) int {
	bits := vl * vt.SEW()
	c := (bits + 127) / 128
	if c < 1 {
		c = 1
	}
	return c
}
