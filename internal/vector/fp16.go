package vector

import "math"

// IEEE-754 binary16 (half precision) software implementation. §X notes that
// "XT-910 supports half-precision operation (which is not supported by
// Cortex-A73), further widening the performance gap in AI scenarios"; the
// vector unit executes fp16 elements through these helpers.

// F16ToF32 expands a half-precision bit pattern to float32.
func F16ToF32(h uint16) float32 {
	sign := uint32(h>>15) << 31
	exp := uint32(h >> 10 & 0x1F)
	frac := uint32(h & 0x3FF)
	switch exp {
	case 0:
		if frac == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= 0x3FF
		return math.Float32frombits(sign | e<<23 | frac<<13)
	case 0x1F:
		return math.Float32frombits(sign | 0xFF<<23 | frac<<13) // inf/NaN
	}
	return math.Float32frombits(sign | (exp+127-15)<<23 | frac<<13)
}

// F32ToF16 converts float32 to half precision with round-to-nearest-even.
func F32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b >> 16 & 0x8000)
	exp := int32(b>>23&0xFF) - 127 + 15
	frac := b & 0x7FFFFF
	switch {
	case int32(b>>23&0xFF) == 0xFF: // inf/NaN
		if frac != 0 {
			return sign | 0x7E00 // quiet NaN
		}
		return sign | 0x7C00
	case exp >= 0x1F:
		return sign | 0x7C00 // overflow → inf
	case exp <= 0:
		if exp < -10 {
			return sign // underflow → 0
		}
		// subnormal result
		frac |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		v := frac >> shift
		if frac&(half<<1-1) > half || (frac&(half<<1-1) == half && v&1 == 1) {
			v++
		}
		return sign | uint16(v)
	}
	// normal: round 23→10 bits
	v := frac >> 13
	rem := frac & 0x1FFF
	if rem > 0x1000 || (rem == 0x1000 && v&1 == 1) {
		v++
		if v == 0x400 {
			v = 0
			exp++
			if exp >= 0x1F {
				return sign | 0x7C00
			}
		}
	}
	return sign | uint16(exp)<<10 | uint16(v)
}

// AddF16, MulF16, MaccF16 perform fp16 arithmetic by widening to float32,
// operating, and rounding back — the behaviour of a hardware fp16 FMA path
// with a wider internal accumulator.
func AddF16(a, b uint16) uint16 { return F32ToF16(F16ToF32(a) + F16ToF32(b)) }

// SubF16 computes a-b in half precision.
func SubF16(a, b uint16) uint16 { return F32ToF16(F16ToF32(a) - F16ToF32(b)) }

// MulF16 computes a*b in half precision.
func MulF16(a, b uint16) uint16 { return F32ToF16(F16ToF32(a) * F16ToF32(b)) }

// DivF16 computes a/b in half precision.
func DivF16(a, b uint16) uint16 { return F32ToF16(F16ToF32(a) / F16ToF32(b)) }

// MaccF16 computes a*b+c in half precision.
func MaccF16(a, b, c uint16) uint16 {
	return F32ToF16(F16ToF32(a)*F16ToF32(b) + F16ToF32(c))
}
