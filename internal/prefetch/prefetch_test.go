package prefetch

import (
	"testing"
)

// recordSink collects issued prefetches.
type recordSink struct {
	l1, l2 []uint64
	tlb    []uint64
}

func (r *recordSink) PrefetchL1(addr uint64, now uint64) { r.l1 = append(r.l1, addr) }
func (r *recordSink) PrefetchL2(addr uint64, now uint64) { r.l2 = append(r.l2, addr) }
func (r *recordSink) PrefetchTLB(va uint64)              { r.tlb = append(r.tlb, va) }

func trainSequential(e *Engine, base uint64, stride int64, n int) {
	for i := 0; i < n; i++ {
		e.Train(uint64(int64(base)+stride*int64(i)), uint64(i*4))
	}
}

func TestStrideDetectionAndIssue(t *testing.T) {
	sink := &recordSink{}
	e := New(Config{Mode: ModeGlobal, L1Enable: true, L2Enable: true, LineBytes: 64}, sink)
	trainSequential(e, 0x10000, 64, 10)
	if len(sink.l1) == 0 {
		t.Fatal("sequential stream must trigger L1 prefetches")
	}
	// issued lines must be ahead of the demand stream
	for _, a := range sink.l1 {
		if a <= 0x10000 {
			t.Fatalf("prefetch %#x behind the stream", a)
		}
	}
}

func TestNoIssueWhenOff(t *testing.T) {
	sink := &recordSink{}
	e := New(Config{Mode: ModeOff, LineBytes: 64}, sink)
	trainSequential(e, 0x10000, 64, 100)
	if len(sink.l1)+len(sink.l2)+len(sink.tlb) != 0 {
		t.Fatal("disabled prefetcher must stay silent")
	}
}

func TestLargeDistanceRunsFurtherAhead(t *testing.T) {
	far := func(large bool) uint64 {
		sink := &recordSink{}
		e := New(Config{Mode: ModeGlobal, L1Enable: true, L2Enable: true,
			LargeDistance: large, LineBytes: 64}, sink)
		trainSequential(e, 0x10000, 64, 8)
		max := uint64(0)
		for _, a := range append(sink.l1, sink.l2...) {
			if a > max {
				max = a
			}
		}
		return max
	}
	if far(true) <= far(false) {
		t.Fatalf("large distance must reach further: %#x vs %#x", far(true), far(false))
	}
}

func TestArbitraryStrides(t *testing.T) {
	for _, stride := range []int64{8, 64, 256, 1024, -64} {
		sink := &recordSink{}
		e := New(Config{Mode: ModeGlobal, L1Enable: true, LineBytes: 64}, sink)
		trainSequential(e, 0x100000, stride, 10)
		if len(sink.l1) == 0 {
			t.Fatalf("stride %d not detected", stride)
		}
		// direction must follow the stride
		last := sink.l1[len(sink.l1)-1]
		if stride > 0 && last < 0x100000 {
			t.Fatalf("stride %d prefetched backwards", stride)
		}
		if stride < 0 && last > 0x100000 {
			t.Fatalf("stride %d prefetched forwards", stride)
		}
	}
}

func TestMultiStreamTracksEightStreams(t *testing.T) {
	sink := &recordSink{}
	e := New(Config{Mode: ModeMultiStream, L1Enable: true, LineBytes: 64}, sink)
	// interleave 8 streams at widely separated bases
	for round := 0; round < 12; round++ {
		for s := 0; s < 8; s++ {
			base := uint64(s+1) << 24
			e.Train(base+uint64(round*64), uint64(round*8))
		}
	}
	if e.ActiveStreams() != 8 {
		t.Fatalf("active streams = %d, want 8", e.ActiveStreams())
	}
	if len(sink.l1) == 0 {
		t.Fatal("interleaved streams must still prefetch")
	}
}

func TestConfidenceThrottlesRandomPattern(t *testing.T) {
	sink := &recordSink{}
	e := New(Config{Mode: ModeGlobal, L1Enable: true, LineBytes: 64}, sink)
	// pseudo-random addresses: no stable stride, prefetcher must stay quiet
	addr := uint64(0x5000)
	for i := 0; i < 200; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407
		e.Train(addr&0xFFFFFF, uint64(i*4))
	}
	if len(sink.l1) > 20 {
		t.Fatalf("random pattern should be throttled, issued %d", len(sink.l1))
	}
	if e.Stats.Throttled == 0 {
		t.Fatal("confidence control should have engaged")
	}
}

func TestTLBPrefetchAtPageBoundary(t *testing.T) {
	sink := &recordSink{}
	e := New(Config{Mode: ModeGlobal, L1Enable: true, L2Enable: true,
		TLBPrefetch: true, LargeDistance: true, LineBytes: 64, PageBytes: 4096}, sink)
	trainSequential(e, 0x10000, 64, 80) // sweeps across page boundaries
	if len(sink.tlb) == 0 {
		t.Fatal("cross-page stream must issue TLB prefetches")
	}
	// prefetched pages must be page-aligned and ahead
	for _, va := range sink.tlb {
		if va%4096 != 0 {
			t.Fatalf("TLB prefetch %#x not page aligned", va)
		}
	}
}

func TestL2OnlyConfiguration(t *testing.T) {
	sink := &recordSink{}
	e := New(Config{Mode: ModeGlobal, L2Enable: true, LineBytes: 64}, sink)
	trainSequential(e, 0x10000, 64, 10)
	if len(sink.l1) != 0 {
		t.Fatal("L1 disabled but L1 prefetches issued")
	}
	if len(sink.l2) == 0 {
		t.Fatal("L2 prefetches expected")
	}
}

func TestFlushForgetsStreams(t *testing.T) {
	sink := &recordSink{}
	e := New(DefaultConfig(), sink)
	trainSequential(e, 0x10000, 64, 10)
	e.Flush()
	if e.ActiveStreams() != 0 {
		t.Fatal("flush must clear stream state")
	}
}

func TestNoDuplicateLines(t *testing.T) {
	sink := &recordSink{}
	e := New(Config{Mode: ModeGlobal, L1Enable: true, L2Enable: true, LineBytes: 64}, sink)
	trainSequential(e, 0x10000, 64, 50)
	seen := map[uint64]int{}
	for _, a := range append(sink.l1, sink.l2...) {
		seen[a]++
	}
	for a, n := range seen {
		if n > 2 { // allow an L1/L2 overlap but not repeated spam
			t.Fatalf("line %#x prefetched %d times", a, n)
		}
	}
}
