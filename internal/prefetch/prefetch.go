// Package prefetch implements the XT-910 multi-mode multi-stream data
// prefetcher (§V-C). Two modes are supported: the global mode for a single
// simple stream (any stride, depth up to 64 cache lines) and the multi-stream
// mode tracking up to 8 concurrent streams with independent strides (depth up
// to 32 lines each). Operation follows the paper's three steps: stride
// detection, policy/confidence control, and issue. Cross-page virtual
// prefetch requests a translation for the next page (TLB prefetch).
package prefetch

// Mode selects the prefetch mode.
type Mode int

// Prefetcher modes (§V-C, Fig. 11).
const (
	ModeOff Mode = iota
	ModeGlobal
	ModeMultiStream
)

// Config controls the prefetcher, mirroring the knobs the paper sweeps in
// Fig. 21: per-destination enables and the distance setting.
type Config struct {
	Mode Mode
	// L1Enable issues prefetches that fill the L1 D-cache.
	L1Enable bool
	// L2Enable issues (deeper) prefetches that fill the shared L2.
	L2Enable bool
	// TLBPrefetch requests next-page translations at page boundaries.
	TLBPrefetch bool
	// LargeDistance selects the aggressive distance (scenario d vs b/c).
	LargeDistance bool
	// LineBytes is the cache line size used to align prefetch addresses.
	LineBytes int
	// PageBytes is the page size used for cross-page TLB prefetch.
	PageBytes int
}

// DefaultConfig returns the full-featured configuration (scenario d).
func DefaultConfig() Config {
	return Config{
		Mode: ModeMultiStream, L1Enable: true, L2Enable: true,
		TLBPrefetch: true, LargeDistance: true, LineBytes: 64, PageBytes: 4096,
	}
}

// Sink receives prefetch requests from the engine.
type Sink interface {
	// PrefetchL1 fills a line into the L1 D-cache.
	PrefetchL1(addr uint64, now uint64)
	// PrefetchL2 fills a line into the shared L2.
	PrefetchL2(addr uint64, now uint64)
	// PrefetchTLB warms the translation for va.
	PrefetchTLB(va uint64)
}

// Stats counts prefetcher activity.
type Stats struct {
	Trains       uint64
	L1Issued     uint64
	L2Issued     uint64
	TLBIssued    uint64
	StreamsAlloc uint64
	Throttled    uint64 // suppressed by confidence control
}

// stream is one tracked access pattern. The L1 and L2 destinations keep
// separate issue cursors: the near cursor keeps the L1 topped up at the short
// distance while the far cursor runs ahead filling the L2.
type stream struct {
	valid      bool
	lastAddr   uint64
	stride     int64
	confidence int
	lastL1     uint64 // furthest line issued toward the L1
	lastL2     uint64 // furthest line issued toward the L2
	lru        uint64
}

const (
	maxStreams     = 8
	confidenceMax  = 7
	confidenceArm  = 2 // issue prefetches at or above this confidence
	globalDepthMax = 64
	streamDepthMax = 32
)

// Engine is the prefetch unit attached to one core's load pipe.
type Engine struct {
	cfg     Config
	streams []stream
	global  stream
	tick    uint64
	Stats   Stats
	sink    Sink
}

// New builds an engine delivering into sink.
func New(cfg Config, sink Sink) *Engine {
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = 4096
	}
	return &Engine{cfg: cfg, streams: make([]stream, maxStreams), sink: sink}
}

// Config returns the active configuration.
func (e *Engine) Config() Config { return e.cfg }

// depths returns (lines ahead for L1, lines ahead for L2) given the distance
// setting. The small distance keeps prefetches just ahead of the demand
// stream; the large distance runs far enough ahead to hide the ~200-cycle
// memory latency (scenario d in Fig. 21).
func (e *Engine) depths() (l1, l2 int) {
	// distances must run ahead of what the out-of-order window already
	// covers (~4 lines with a 192-entry ROB on a streaming loop), otherwise
	// prefetch merely merges with demand misses
	if e.cfg.LargeDistance {
		l1, l2 = 24, 56
	} else {
		l1, l2 = 2, 12
	}
	max := streamDepthMax
	if e.cfg.Mode == ModeGlobal {
		max = globalDepthMax
	}
	if l2 > max {
		l2 = max
	}
	return l1, l2
}

// Train observes a demand load's address and issues prefetches.
func (e *Engine) Train(addr uint64, now uint64) {
	if e.cfg.Mode == ModeOff || (!e.cfg.L1Enable && !e.cfg.L2Enable && !e.cfg.TLBPrefetch) {
		return
	}
	e.Stats.Trains++
	e.tick++
	s := e.pick(addr)
	if s == nil {
		return
	}
	delta := int64(addr) - int64(s.lastAddr)
	switch {
	case delta == 0:
		return
	case s.stride == delta:
		if s.confidence < confidenceMax {
			s.confidence++
		}
	default:
		// Step 2, confidence evaluation: a broken pattern decays confidence
		// and eventually re-trains the stride, preventing the "overly
		// aggressive prefetch" cache pollution the paper warns about.
		s.confidence--
		if s.confidence <= 0 {
			s.stride = delta
			s.confidence = 1
			s.lastL1, s.lastL2 = 0, 0
		}
		s.lastAddr = addr
		s.lru = e.tick
		e.Stats.Throttled++
		return
	}
	s.lastAddr = addr
	s.lru = e.tick
	if s.confidence < confidenceArm || s.stride == 0 {
		return
	}
	e.issue(s, addr, now)
}

// pick selects the stream tracker for addr: the single global tracker in
// global mode, or the matching/LRU stream in multi-stream mode.
func (e *Engine) pick(addr uint64) *stream {
	if e.cfg.Mode == ModeGlobal {
		g := &e.global
		if !g.valid {
			*g = stream{valid: true, lastAddr: addr}
			return nil
		}
		return g
	}
	// match: stream whose next expected address neighbourhood contains addr
	var best *stream
	for i := range e.streams {
		s := &e.streams[i]
		if !s.valid {
			continue
		}
		d := int64(addr) - int64(s.lastAddr)
		if d < 0 {
			d = -d
		}
		if d <= 4*int64(e.cfg.LineBytes)*8 { // generous match window
			if best == nil || absI(int64(addr)-int64(s.lastAddr)) < absI(int64(addr)-int64(best.lastAddr)) {
				best = s
			}
		}
	}
	if best != nil {
		return best
	}
	// allocate LRU slot
	victim := &e.streams[0]
	for i := range e.streams {
		if !e.streams[i].valid {
			victim = &e.streams[i]
			break
		}
		if e.streams[i].lru < victim.lru {
			victim = &e.streams[i]
		}
	}
	*victim = stream{valid: true, lastAddr: addr, lru: e.tick}
	e.Stats.StreamsAlloc++
	return nil
}

func absI(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// issue performs step 3: emit the prefetch requests ahead of the stream.
// The L1 and L2 destinations advance independently so both stay topped up at
// their own distances in steady state.
func (e *Engine) issue(s *stream, addr uint64, now uint64) {
	l1Depth, l2Depth := e.depths()
	line := int64(e.cfg.LineBytes)
	stride := s.stride
	// normalize tiny strides to line-granular stepping
	step := stride
	if absI(step) < line {
		if step > 0 {
			step = line
		} else {
			step = -line
		}
	}
	emitRange := func(depth int, cursor *uint64, toL1 bool) {
		for i := 1; i <= depth; i++ {
			target := uint64(int64(addr) + step*int64(i))
			lineAddr := target &^ uint64(line-1)
			if *cursor != 0 && sameDirectionCovered(stride, lineAddr, *cursor) {
				continue
			}
			if toL1 {
				e.sink.PrefetchL1(lineAddr, now)
				e.Stats.L1Issued++
			} else {
				e.sink.PrefetchL2(lineAddr, now)
				e.Stats.L2Issued++
			}
			*cursor = lineAddr
			// Cross-page prefetch: "when data is prefetched at the page
			// boundary, a conversion for the next virtual page is
			// automatically requested" (§V-C).
			if e.cfg.TLBPrefetch && crossesPage(lineAddr, uint64(line), uint64(e.cfg.PageBytes)) {
				e.sink.PrefetchTLB(nextPage(lineAddr, stride, uint64(e.cfg.PageBytes)))
				e.Stats.TLBIssued++
			}
		}
	}
	if e.cfg.L1Enable {
		emitRange(l1Depth, &s.lastL1, true)
	}
	if e.cfg.L2Enable {
		emitRange(l2Depth, &s.lastL2, false)
	}
}

func sameDirectionCovered(stride int64, lineAddr, lastIssued uint64) bool {
	if stride >= 0 {
		return lineAddr <= lastIssued
	}
	return lineAddr >= lastIssued
}

func crossesPage(lineAddr, lineBytes, pageBytes uint64) bool {
	return lineAddr/pageBytes != (lineAddr+lineBytes)/pageBytes ||
		lineAddr%pageBytes == 0
}

func nextPage(lineAddr uint64, stride int64, pageBytes uint64) uint64 {
	page := lineAddr &^ (pageBytes - 1)
	if stride < 0 {
		return page - pageBytes
	}
	return page + pageBytes
}

// Flush drops all trained state (context switch / sfence).
func (e *Engine) Flush() {
	for i := range e.streams {
		e.streams[i] = stream{}
	}
	e.global = stream{}
}

// ActiveStreams reports how many streams are currently tracked.
func (e *Engine) ActiveStreams() int {
	if e.cfg.Mode == ModeGlobal {
		if e.global.valid {
			return 1
		}
		return 0
	}
	n := 0
	for i := range e.streams {
		if e.streams[i].valid {
			n++
		}
	}
	return n
}
