// Package xterrors defines the sentinel errors shared by the public xt910
// facade and the internal harnesses. They live in an internal package so that
// internal code (the bench harness, the scheduler) can wrap them with %w
// while the facade re-exports the same values as xt910.Err*; errors.Is
// matches across both spellings because they are the identical values.
package xterrors

import "errors"

var (
	// ErrInvalidConfig reports a system or core configuration outside the
	// Table I envelope.
	ErrInvalidConfig = errors.New("invalid configuration")

	// ErrNoProgram reports a run attempted before any program was loaded.
	ErrNoProgram = errors.New("no program loaded")

	// ErrDidNotHalt reports a simulation that exhausted its cycle budget
	// without every hart reaching the host exit syscall.
	ErrDidNotHalt = errors.New("simulation did not halt")

	// ErrUnknownWorkload reports a kernel name not in the workload suite.
	ErrUnknownWorkload = errors.New("unknown workload")
)
