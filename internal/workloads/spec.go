package workloads

import "fmt"

// SpecLike is the large-footprint workload standing in for SPECInt2006 (§X:
// "SPECInt2006 uses very large programs that frequently incur L2 cache
// misses. It factors in core performance, cache size, cache miss, DDR
// latency…"). Three phases stress exactly those factors: a pseudo-random
// pointer chase over a multi-megabyte ring (L2-missing, dependent loads), a
// strided sweep of a large array (bandwidth), and a hash-table
// insert/probe mix (mixed locality with branches).
var SpecLike = Workload{
	Name:         "speclike",
	DefaultIters: 2,
	Gen:          genSpecLike,
}

// specRingNodes × 64 B stride ≈ 4 MB of pointer-chased footprint.
const specRingNodes = 1 << 16

func genSpecLike(iters int) string {
	return fmt.Sprintf(`
.equ ITER, %d
.equ NODES, %d
_start:
    li   s11, ITER
    li   a0, 0

    # Build a pseudo-random ring: node i -> node (i*a+c mod NODES), 64B apart.
    # The multiplier is odd so the walk is a permutation cycle over a power
    # of two when the increment is odd (LCG full-period conditions).
    la   s0, ring
    li   t1, 0            # i
    li   t2, NODES
ring_init:
    li   t3, 2862933555777941757
    mul  t4, t1, t3
    li   t3, 3037000493
    add  t4, t4, t3
    li   t5, NODES-1
    and  t4, t4, t5       # target index
    slli t5, t4, 6
    la   t6, ring
    add  t5, t5, t6       # target address
    slli t6, t1, 6
    la   a2, ring
    add  t6, t6, a2
    sd   t5, 0(t6)
    sd   t1, 8(t6)        # payload
    addi t1, t1, 1
    blt  t1, t2, ring_init

main_loop:
    # ---- phase 1: dependent pointer chase (L2-missing loads) ----
    la   t1, ring
    li   t2, 30000        # hops
    li   t0, 0
chase:
    ld   t3, 8(t1)
    add  t0, t0, t3
    ld   t1, 0(t1)
    addi t2, t2, -1
    bnez t2, chase
`+mix+`
    # ---- phase 2: strided sweep (bandwidth + prefetchable) ----
    la   t1, ring
    li   t2, NODES
    li   t0, 0
sweep:
    ld   t3, 8(t1)
    add  t0, t0, t3
    addi t1, t1, 64
    addi t2, t2, -1
    bnez t2, sweep
`+mix+`
    # ---- phase 3: hash probe mix over the same footprint ----
    li   t1, 12345
    li   t2, 20000        # probes
    li   t0, 0
probe:
    li   t3, 6364136223846793005
    mul  t1, t1, t3
    li   t3, 1442695040888963407
    add  t1, t1, t3
    srli t3, t1, 33
    li   t4, NODES-1
    and  t3, t3, t4
    slli t3, t3, 6
    la   t4, ring
    add  t3, t3, t4
    ld   t5, 8(t3)
    andi t6, t5, 1
    beqz t6, probe_even
    add  t0, t0, t5
    j    probe_next
probe_even:
    sub  t0, t0, t5
probe_next:
    addi t2, t2, -1
    bnez t2, probe
`+mix+`
    addi s11, s11, -1
    bnez s11, main_loop
`+exit+`
.align 6
ring: .space NODES*64
`, iters, specRingNodes)
}
