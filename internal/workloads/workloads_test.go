package workloads

import (
	"testing"

	"xt910/internal/cache"
	"xt910/internal/coherence"
	"xt910/internal/core"
	"xt910/internal/emu"
	"xt910/internal/mem"
)

// runEmu returns the workload's architectural exit code from the golden model.
func runEmu(t *testing.T, w Workload, iters int) int {
	t.Helper()
	p, err := w.Program(iters, false)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	m := emu.New(mem.NewMemory())
	p.LoadInto(m.Mem)
	m.PC = p.Entry
	m.X[2] = 0x400000
	if err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatalf("%s did not halt on the emulator", w.Name)
	}
	return m.ExitCode
}

// runPipe returns the exit code and stats from the XT-910 pipeline.
func runPipe(t *testing.T, w Workload, iters int, cfg core.Config) *core.Core {
	t.Helper()
	p, err := w.Program(iters, false)
	if err != nil {
		t.Fatal(err)
	}
	memory := mem.NewMemory()
	dram := mem.NewDRAM()
	l2 := coherence.NewL2(cache.Config{SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, HitLatency: 10}, dram)
	c := core.New(cfg, 0, memory, l2)
	p.LoadInto(memory)
	c.Reset(p.Entry, 0x400000)
	c.Run(400_000_000)
	if !c.Halted {
		t.Fatalf("%s did not halt on the pipeline: %s", w.Name, c.Stats.String())
	}
	return c
}

// checkWorkload cross-validates a workload on the pipeline vs the emulator.
func checkWorkload(t *testing.T, w Workload, iters int) {
	t.Helper()
	want := runEmu(t, w, iters)
	c := runPipe(t, w, iters, core.XT910Config())
	if c.ExitCode != want {
		t.Fatalf("%s: pipeline=%d emulator=%d", w.Name, c.ExitCode, want)
	}
	if c.Stats.Retired == 0 || c.Stats.IPC() <= 0 {
		t.Fatalf("%s: empty run", w.Name)
	}
}

func TestCoreMarkKernel(t *testing.T) { checkWorkload(t, CoreMark, 3) }

func TestAllWorkloadsCrossValidate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			checkWorkload(t, w, 1)
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	a := runEmu(t, CoreMark, 2)
	b := runEmu(t, CoreMark, 2)
	if a != b {
		t.Fatal("workload must be deterministic")
	}
	if a == 0 {
		t.Fatal("checksum should be nonzero")
	}
}

func TestStreamValidates(t *testing.T) {
	checkWorkload(t, Stream, 1)
}

func TestSpecLikeValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("large footprint")
	}
	checkWorkload(t, SpecLike, 1)
}

func TestVectorBeatsScalarOnMACs(t *testing.T) {
	sc := runPipe(t, AIDotScalar, 4, core.XT910Config())
	vec := runPipe(t, AIDotVector, 4, core.XT910Config())
	scC := float64(sc.Stats.Cycles)
	vecC := float64(vec.Stats.Cycles)
	if vecC >= scC {
		t.Fatalf("vector MACs must beat scalar: scalar=%v vector=%v cycles", scC, vecC)
	}
	t.Logf("int16 MAC speedup: %.1fx", scC/vecC)
}

func TestBlockchainExtFasterThanBase(t *testing.T) {
	base := runPipe(t, BlockchainBase, 20, core.XT910Config())
	ext := runPipe(t, BlockchainExt, 20, core.XT910Config())
	if ext.Stats.Cycles >= base.Stats.Cycles {
		t.Fatalf("custom extensions must accelerate the hash kernel: base=%d ext=%d",
			base.Stats.Cycles, ext.Stats.Cycles)
	}
	t.Logf("blockchain ext speedup: %.2fx",
		float64(base.Stats.Cycles)/float64(ext.Stats.Cycles))
}
