package workloads

import (
	"fmt"
	"strings"
)

// CoreMark is the CoreMark-like workload (Fig. 17): §X lists its algorithm
// suite as "list processing (find and sort), matrix manipulation (common
// matrix operations), state machine (determine if an input stream contains
// valid numbers), and CRC". The four kernels below implement exactly those,
// cache-resident as the paper notes ("basically all cache-hit and hardly
// affected by DDR latency"). The exit code is an order-sensitive checksum.
var CoreMark = Workload{
	Name:         "coremark",
	DefaultIters: 40,
	Gen:          genCoreMark,
}

func genCoreMark(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    call list_bench
` + mix + `
    call matrix_bench
` + mix + `
    call state_bench
` + mix + `
    call crc_bench
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit + `

# ---- list processing: find, in-place reversal, weighted walk -------------
# nodes are (next, value) pairs; find the node with value==77, reverse the
# whole list, then compute a position-weighted sum. Returns t0.
list_bench:
    la   t1, list_head
    ld   t1, 0(t1)
    li   t0, 0
    li   t2, 77
find:
    beqz t1, find_done
    ld   t3, 8(t1)
    beq  t3, t2, found
    ld   t1, 0(t1)
    j    find
found:
    addi t0, t0, 1
    ld   t1, 0(t1)
    j    find
find_done:
    # reverse
    la   t1, list_head
    ld   t2, 0(t1)        # cur
    li   t3, 0            # prev
rev:
    beqz t2, rev_done
    ld   t4, 0(t2)        # next
    sd   t3, 0(t2)
    mv   t3, t2
    mv   t2, t4
    j    rev
rev_done:
    la   t1, list_head
    sd   t3, 0(t1)
    # weighted walk
    li   t4, 1
walk:
    beqz t3, walk_done
    ld   t5, 8(t3)
    mul  t5, t5, t4
    add  t0, t0, t5
    addi t4, t4, 1
    ld   t3, 0(t3)
    j    walk
walk_done:
    ret

# ---- matrix manipulation: 10x10 integer multiply, diagonal sum -----------
matrix_bench:
    la   t1, mat_a
    la   t2, mat_b
    la   t3, mat_c
    li   t4, 0            # i
mm_i:
    li   t5, 0            # j
mm_j:
    li   a2, 0            # acc
    li   a3, 0            # k
mm_k:
    # acc += a[i][k] * b[k][j]
    li   a4, 10
    mul  a5, t4, a4
    add  a5, a5, a3
    slli a5, a5, 2
    add  a5, a5, t1
    lw   a5, 0(a5)
    mul  a6, a3, a4
    add  a6, a6, t5
    slli a6, a6, 2
    add  a6, a6, t2
    lw   a6, 0(a6)
    mul  a5, a5, a6
    add  a2, a2, a5
    addi a3, a3, 1
    li   a4, 10
    blt  a3, a4, mm_k
    # c[i][j] = acc
    li   a4, 10
    mul  a5, t4, a4
    add  a5, a5, t5
    slli a5, a5, 2
    add  a5, a5, t3
    sw   a2, 0(a5)
    addi t5, t5, 1
    li   a4, 10
    blt  t5, a4, mm_j
    addi t4, t4, 1
    li   a4, 10
    blt  t4, a4, mm_i
    # diagonal sum
    li   t0, 0
    li   t4, 0
mm_d:
    li   a4, 11
    mul  a5, t4, a4
    slli a5, a5, 2
    add  a5, a5, t3
    lw   a5, 0(a5)
    add  t0, t0, a5
    addi t4, t4, 1
    li   a4, 10
    blt  t4, a4, mm_d
    ret

# ---- state machine: count valid decimal/hex numbers in a byte stream ------
# states: 0=start 1=int 2=hex-prefix 3=hex; transitions on digit/x/other.
state_bench:
    la   t1, input_str
    li   t0, 0            # valid count
    li   t2, 0            # state
st_loop:
    lbu  t3, 0(t1)
    beqz t3, st_done
    addi t1, t1, 1
    # classify: t4 = 0 digit, 1 'x', 2 other
    li   a2, 48
    blt  t3, a2, st_other
    li   a2, 58
    blt  t3, a2, st_digit
    li   a2, 120
    beq  t3, a2, st_x
st_other:
    # terminating a number state counts it
    beqz t2, st_next
    li   a2, 2
    beq  t2, a2, st_reset    # lone 0x: invalid
    addi t0, t0, 1
st_reset:
    li   t2, 0
st_next:
    j    st_loop
st_digit:
    bnez t2, st_dig2
    li   t2, 1
    j    st_loop
st_dig2:
    li   a2, 2
    bne  t2, a2, st_loop
    li   t2, 3
    j    st_loop
st_x:
    li   a2, 1
    bne  t2, a2, st_other
    li   t2, 2
    j    st_loop
st_done:
    beqz t2, st_fin
    addi t0, t0, 1
st_fin:
    ret

# ---- CRC-16/CCITT (bitwise) over the data block ---------------------------
crc_bench:
    la   t1, crc_data
    li   t2, 64           # length
    li   t0, 0xFFFF       # crc
crc_byte:
    beqz t2, crc_done
    lbu  t3, 0(t1)
    addi t1, t1, 1
    addi t2, t2, -1
    slli t3, t3, 8
    xor  t0, t0, t3
    li   t4, 8
crc_bit:
    slli t0, t0, 1
    li   a2, 0x10000
    and  a3, t0, a2
    beqz a3, crc_nox
    li   a2, 0x1021
    xor  t0, t0, a2
crc_nox:
    li   a2, 0xFFFF
    and  t0, t0, a2
    addi t4, t4, -1
    bnez t4, crc_bit
    bnez t2, crc_byte
crc_done:
    ret

# ---- data ------------------------------------------------------------------
.align 3
list_head: .dword list_nodes
`)
	// 24 list nodes, each (next, value)
	const nNodes = 24
	b.WriteString("list_nodes:\n")
	for i := 0; i < nNodes; i++ {
		next := "0"
		if i != nNodes-1 {
			next = fmt.Sprintf("list_nodes + %d", (i+1)*16)
		}
		val := (i*37 + 11) % 100
		if i == 13 {
			val = 77 // the find target
		}
		b.WriteString(fmt.Sprintf("    .dword %s, %d\n", next, val))
	}
	b.WriteString("\n.align 3\nmat_a:\n")
	for i := 0; i < 100; i++ {
		b.WriteString(fmt.Sprintf("    .word %d\n", (i*7+3)%41-20))
	}
	b.WriteString("mat_b:\n")
	for i := 0; i < 100; i++ {
		b.WriteString(fmt.Sprintf("    .word %d\n", (i*13+5)%37-18))
	}
	b.WriteString("mat_c: .space 400\n")
	b.WriteString(`
input_str: .asciz "12 abc 0x1F 7 0x zz 42 0xdead 9 x7 333 hello 0x0 5"
.align 3
crc_data:
`)
	for i := 0; i < 8; i++ {
		b.WriteString(fmt.Sprintf("    .dword 0x%016x\n", uint64(i)*0x9E3779B97F4A7C15+0x0123456789ABCDEF))
	}
	return b.String()
}
