package workloads

import (
	"fmt"
	"math"
	"strings"
)

// StreamN is the per-array element count (float64). Three arrays of 128 KB
// each overflow the L1 D-cache and a 256 KB L2, so every pass streams from
// memory — the regime Fig. 21 measures with its ~200-cycle DDR latency.
const StreamN = 16384

// Stream is the STREAM benchmark (Fig. 21): copy, scale, add and triad over
// large float64 arrays. iters is the number of full passes.
var Stream = Workload{
	Name:         "stream",
	DefaultIters: 1,
	Gen:          genStream,
}

func genStream(iters int) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf(`
.equ ITER, %d
.equ N, %d
_start:
    li   s11, ITER
    li   a0, 0
    # initialize a[i] = i, b[i] = 2i (runtime init keeps the image small)
    la   s0, arr_a
    la   s1, arr_b
    la   s2, arr_c
    li   t1, 0
    li   t2, N
    la   t3, fone
    fld  ft0, 0(t3)      # 1.0
    la   t3, fzero
    fld  ft1, 0(t3)      # running value
    fmv.d ft2, ft1
init:
    fsd  ft1, 0(s0)
    fadd.d ft3, ft1, ft1
    fsd  ft3, 0(s1)
    fsd  ft2, 0(s2)
    fadd.d ft1, ft1, ft0
    addi s0, s0, 8
    addi s1, s1, 8
    addi s2, s2, 8
    addi t1, t1, 1
    blt  t1, t2, init

main_loop:
    # ---- COPY: c = a ----
    la   s0, arr_a
    la   s2, arr_c
    li   t1, N
copy:
    fld  ft0, 0(s0)
    fsd  ft0, 0(s2)
    addi s0, s0, 8
    addi s2, s2, 8
    addi t1, t1, -1
    bnez t1, copy
    # ---- SCALE: b = 3*c ----
    la   s1, arr_b
    la   s2, arr_c
    la   t3, fthree
    fld  ft1, 0(t3)
    li   t1, N
scale:
    fld  ft0, 0(s2)
    fmul.d ft0, ft0, ft1
    fsd  ft0, 0(s1)
    addi s1, s1, 8
    addi s2, s2, 8
    addi t1, t1, -1
    bnez t1, scale
    # ---- ADD: c = a + b ----
    la   s0, arr_a
    la   s1, arr_b
    la   s2, arr_c
    li   t1, N
vadd:
    fld  ft0, 0(s0)
    fld  ft1, 0(s1)
    fadd.d ft0, ft0, ft1
    fsd  ft0, 0(s2)
    addi s0, s0, 8
    addi s1, s1, 8
    addi s2, s2, 8
    addi t1, t1, -1
    bnez t1, vadd
    # ---- TRIAD: a = b + 3*c ----
    la   s0, arr_a
    la   s1, arr_b
    la   s2, arr_c
    la   t3, fthree
    fld  ft2, 0(t3)
    li   t1, N
triad:
    fld  ft0, 0(s1)
    fld  ft1, 0(s2)
    fmadd.d ft0, ft1, ft2, ft0
    fsd  ft0, 0(s0)
    addi s0, s0, 8
    addi s1, s1, 8
    addi s2, s2, 8
    addi t1, t1, -1
    bnez t1, triad
    addi s11, s11, -1
    bnez s11, main_loop

    # checksum: a[1] + a[N/2] + a[N-1], scaled to an integer
    la   s0, arr_a
    fld  ft0, 8(s0)
    li   t1, %d
    add  t2, s0, t1
    fld  ft1, 0(t2)
    fadd.d ft0, ft0, ft1
    li   t1, N*8-8
    add  t2, s0, t1
    fld  ft1, 0(t2)
    fadd.d ft0, ft0, ft1
    fcvt.l.d a0, ft0
`, iters, StreamN, StreamN/2*8))
	b.WriteString(exit)
	b.WriteString(fmt.Sprintf(`
.align 3
fzero:  .dword 0x%016x
fone:   .dword 0x%016x
fthree: .dword 0x%016x
.align 6
arr_a: .space N*8
arr_b: .space N*8
arr_c: .space N*8
`, math.Float64bits(0), math.Float64bits(1), math.Float64bits(3)))
	return b.String()
}
