package workloads

import (
	"fmt"
	"math"
	"strings"
)

// NBench returns the NBench-like kernel suite used for Fig. 19: numeric sort,
// string sort, bit-field operations, emulated floating point, Fourier
// coefficients, assignment, IDEA-style cipher rounds and a neural-net layer.
func NBench() []Workload {
	return []Workload{
		{Name: "nbench-numsort", DefaultIters: 80, Gen: genNumSort},
		{Name: "nbench-strsort", DefaultIters: 80, Gen: genStrSort},
		{Name: "nbench-bitfield", DefaultIters: 300, Gen: genBitfield},
		{Name: "nbench-fpemu", DefaultIters: 150, Gen: genFPEmu},
		{Name: "nbench-fourier", DefaultIters: 60, Gen: genFourier},
		{Name: "nbench-assign", DefaultIters: 120, Gen: genAssign},
		{Name: "nbench-idea", DefaultIters: 120, Gen: genIDEA},
		{Name: "nbench-neural", DefaultIters: 80, Gen: genNeural},
	}
}

// genNumSort: insertion sort of 48 integers (copied fresh each iteration).
func genNumSort(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    # copy the pristine array
    la   a2, src
    la   a3, arr
    li   a4, 48
ns_copy:
    ld   a5, 0(a2)
    sd   a5, 0(a3)
    addi a2, a2, 8
    addi a3, a3, 8
    addi a4, a4, -1
    bnez a4, ns_copy
    # insertion sort
    la   a2, arr
    li   a3, 1            # i
ns_outer:
    slli a4, a3, 3
    add  a4, a4, a2
    ld   a5, 0(a4)        # key
    addi a6, a3, -1       # j
ns_inner:
    bltz a6, ns_place
    slli a7, a6, 3
    add  a7, a7, a2
    ld   t2, 0(a7)
    ble  t2, a5, ns_place
    sd   t2, 8(a7)
    addi a6, a6, -1
    j    ns_inner
ns_place:
    addi a7, a6, 1
    slli a7, a7, 3
    add  a7, a7, a2
    sd   a5, 0(a7)
    addi a3, a3, 1
    li   a4, 48
    blt  a3, a4, ns_outer
    # checksum: weighted sum of sorted array
    li   t0, 0
    li   a3, 0
ns_sum:
    slli a4, a3, 3
    add  a4, a4, a2
    ld   a5, 0(a4)
    addi a6, a3, 1
    mul  a5, a5, a6
    add  t0, t0, a5
    addi a3, a3, 1
    li   a4, 48
    blt  a3, a4, ns_sum
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 3\nsrc:\n")
	for i := 0; i < 48; i++ {
		b.WriteString(fmt.Sprintf("    .dword %d\n", (i*7919+104729)%1000-500))
	}
	b.WriteString("arr: .space 384\n")
	return b.String()
}

// genStrSort: selection sort of 12 fixed-width 8-byte strings by bytewise
// comparison (big-endian compare via rev + unsigned compare).
func genStrSort(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    la   a2, strsrc
    la   a3, strarr
    li   a4, 12
ss_copy:
    ld   a5, 0(a2)
    sd   a5, 0(a3)
    addi a2, a2, 8
    addi a3, a3, 8
    addi a4, a4, -1
    bnez a4, ss_copy
    la   a2, strarr
    li   a3, 0            # i
ss_outer:
    mv   a4, a3           # min idx
    addi a5, a3, 1        # j
ss_inner:
    li   a6, 12
    bge  a5, a6, ss_swap
    # strcmp(str[j], str[min]): bytewise compare, first difference decides
    slli a6, a5, 3
    add  a6, a6, a2       # &str[j]
    slli a7, a4, 3
    add  a7, a7, a2       # &str[min]
    li   t2, 8            # width
ss_cmp:
    lbu  t3, 0(a6)
    lbu  t4, 0(a7)
    bltu t3, t4, ss_less
    bltu t4, t3, ss_nmin
    addi a6, a6, 1
    addi a7, a7, 1
    addi t2, t2, -1
    bnez t2, ss_cmp
    j    ss_nmin          # equal
ss_less:
    mv   a4, a5
ss_nmin:
    addi a5, a5, 1
    j    ss_inner
ss_swap:
    slli a5, a3, 3
    add  a5, a5, a2
    slli a6, a4, 3
    add  a6, a6, a2
    ld   a7, 0(a5)
    ld   t2, 0(a6)
    sd   t2, 0(a5)
    sd   a7, 0(a6)
    addi a3, a3, 1
    li   a4, 11
    blt  a3, a4, ss_outer
    # checksum
    li   t0, 0
    li   a3, 0
ss_sum:
    slli a4, a3, 3
    add  a4, a4, a2
    ld   a5, 0(a4)
    addi a6, a3, 3
    mul  a5, a5, a6
    add  t0, t0, a5
    addi a3, a3, 1
    li   a4, 12
    blt  a3, a4, ss_sum
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	words := []string{"delta", "alpha", "kappa", "sigma", "omega", "gamma",
		"theta", "zeta", "beta", "iota", "lambda", "mu"}
	b.WriteString("\n.align 3\nstrsrc:\n")
	for _, w := range words {
		padded := (w + "\x00\x00\x00\x00\x00\x00\x00\x00")[:8]
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(padded[i]) << (8 * i)
		}
		b.WriteString(fmt.Sprintf("    .dword 0x%016x\n", v))
	}
	b.WriteString("strarr: .space 96\n")
	return b.String()
}

// genBitfield: set/clear/toggle runs of bits in a 1024-bit map, then count.
func genBitfield(iters int) string {
	return header(iters) + `
main_loop:
    # clear the map
    la   a2, bitmap
    li   a3, 16
bf_clr:
    sd   zero, 0(a2)
    addi a2, a2, 8
    addi a3, a3, -1
    bnez a3, bf_clr
    # set bit runs: for r in 0..31: set bits [r*29 .. r*29+r] mod 1024
    li   a3, 0            # r
bf_run:
    li   a4, 29
    mul  a5, a3, a4       # start
    mv   a6, a3           # length
bf_setbit:
    li   a7, 1023
    and  t2, a5, a7
    srli t3, t2, 6
    slli t3, t3, 3
    la   t4, bitmap
    add  t3, t3, t4
    ld   t5, 0(t3)
    andi t6, t2, 63
    li   t4, 1
    sll  t4, t4, t6
    xor  t5, t5, t4       # toggle
    sd   t5, 0(t3)
    addi a5, a5, 1
    addi a6, a6, -1
    bgez a6, bf_setbit
    addi a3, a3, 1
    li   a4, 32
    blt  a3, a4, bf_run
    # popcount the map (bitwise)
    li   t0, 0
    la   a2, bitmap
    li   a3, 16
bf_cnt:
    ld   a4, 0(a2)
bf_pop:
    beqz a4, bf_pnext
    addi a5, a4, -1
    and  a4, a4, a5
    addi t0, t0, 1
    j    bf_pop
bf_pnext:
    addi a2, a2, 8
    addi a3, a3, -1
    bnez a3, bf_cnt
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit + `
.align 3
bitmap: .space 128
`
}

// genFPEmu: software floating point — 16.16 fixed-point multiply/divide
// chains emulating the NBench FP-emulation kernel's integer character.
func genFPEmu(iters int) string {
	return header(iters) + `
main_loop:
    li   t0, 0
    li   t2, 1            # x = 1.0 in 16.16
    slli t2, t2, 16
    li   t3, 40           # steps
    li   t4, 0x18000      # 1.5
fp_loop:
    # x = x * 1.5 (fixed point), renormalize if > 256.0
    mul  t2, t2, t4
    srai t2, t2, 16
    li   a2, 0x1000000
    blt  t2, a2, fp_ok
    # divide by 3.7 (0x3B333 in 16.16)
    slli t2, t2, 8
    li   a3, 0x3B333
    div  t2, t2, a3
    slli t2, t2, 8
fp_ok:
    add  t0, t0, t2
    addi t3, t3, -1
    bnez t3, fp_loop
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit
}

// genFourier: float64 power-series evaluation of Fourier coefficients
// (a trigonometric series via Horner), the FP-heavy NBench kernel.
func genFourier(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    li   t0, 0
    la   a2, xs
    li   a3, 16           # points
fr_pt:
    fld  fa0, 0(a2)
    addi a2, a2, 8
    # sin(x) ~ x - x^3/6 + x^5/120 - x^7/5040 (Horner)
    fmul.d fa1, fa0, fa0   # x^2
    la   a4, fc7
    fld  fa2, 0(a4)
    la   a4, fc5
    fld  fa3, 0(a4)
    fmadd.d fa2, fa2, fa1, fa3
    la   a4, fc3
    fld  fa3, 0(a4)
    fmadd.d fa2, fa2, fa1, fa3
    la   a4, fc1
    fld  fa3, 0(a4)
    fmadd.d fa2, fa2, fa1, fa3
    fmul.d fa2, fa2, fa0
    # accumulate scaled integer checksum
    la   a4, scale
    fld  fa3, 0(a4)
    fmul.d fa2, fa2, fa3
    fcvt.w.d a5, fa2
    add  t0, t0, a5
    addi a3, a3, -1
    bnez a3, fr_pt
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 3\nxs:\n")
	for i := 0; i < 16; i++ {
		x := -1.5 + float64(i)*0.2
		b.WriteString(fmt.Sprintf("    .dword 0x%016x\n", math.Float64bits(x)))
	}
	coef := func(name string, v float64) {
		b.WriteString(fmt.Sprintf("%s: .dword 0x%016x\n", name, math.Float64bits(v)))
	}
	coef("fc1", 1.0)
	coef("fc3", -1.0/6)
	coef("fc5", 1.0/120)
	coef("fc7", -1.0/5040)
	coef("scale", 1e6)
	return b.String()
}

// genAssign: greedy row-minimum assignment over an 8x8 cost matrix.
func genAssign(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    li   t0, 0
    li   t2, 0            # used-column bitmap
    li   a2, 0            # row
as_row:
    la   a3, costs
    slli a4, a2, 5        # row*8*4
    add  a3, a3, a4
    li   a5, -1           # best col
    li   a6, 0x7FFFFFFF   # best cost
    li   a7, 0            # col
as_col:
    li   t3, 1
    sll  t3, t3, a7
    and  t4, t2, t3
    bnez t4, as_next      # column taken
    slli t4, a7, 2
    add  t4, t4, a3
    lw   t5, 0(t4)
    bge  t5, a6, as_next
    mv   a6, t5
    mv   a5, a7
as_next:
    addi a7, a7, 1
    li   t3, 8
    blt  a7, t3, as_col
    li   t3, 1
    sll  t3, t3, a5
    or   t2, t2, t3
    add  t0, t0, a6
    addi a2, a2, 1
    li   t3, 8
    blt  a2, t3, as_row
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 3\ncosts:\n")
	for i := 0; i < 64; i++ {
		b.WriteString(fmt.Sprintf("    .word %d\n", (i*151+37)%90+10))
	}
	return b.String()
}

// genIDEA: IDEA-style cipher rounds (mul mod 2^16+1, add mod 2^16, xor).
func genIDEA(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    li   t0, 0
    la   a2, blocks
    li   a3, 8            # blocks
id_blk:
    lhu  a4, 0(a2)
    lhu  a5, 2(a2)
    lhu  a6, 4(a2)
    lhu  a7, 6(a2)
    la   t2, keys
    li   t3, 8            # rounds
id_round:
    lhu  t4, 0(t2)
    lhu  t5, 2(t2)
    addi t2, t2, 4
    # a4 = a4 (*) k1 mod 65537 ; treat 0 as 65536
    bnez a4, id_nz
    li   a4, 65536
id_nz:
    mul  a4, a4, t4
    li   t6, 65537
    remu a4, a4, t6
    li   t6, 0xFFFF
    and  a4, a4, t6
    # a5 = a5 (+) k2 mod 65536
    add  a5, a5, t5
    and  a5, a5, t6
    # mix
    xor  a6, a6, a4
    xor  a7, a7, a5
    # rotate quartet
    mv   t4, a4
    mv   a4, a5
    mv   a5, a6
    mv   a6, a7
    mv   a7, t4
    addi t3, t3, -1
    bnez t3, id_round
    add  t0, t0, a4
    add  t0, t0, a5
    add  t0, t0, a6
    add  t0, t0, a7
    addi a2, a2, 8
    addi a3, a3, -1
    bnez a3, id_blk
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 3\nblocks:\n")
	for i := 0; i < 8; i++ {
		b.WriteString(fmt.Sprintf("    .dword 0x%016x\n", uint64(i)*0x1357_9BDF_2468_ACE1+0xFEDC))
	}
	b.WriteString("keys:\n")
	for i := 0; i < 16; i++ {
		b.WriteString(fmt.Sprintf("    .half %d\n", (i*40503+12345)&0xFFFF))
	}
	return b.String()
}

// genNeural: one dense layer (16→8) in float32 with a hard-sigmoid clamp.
func genNeural(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    li   t0, 0
    li   t2, 0            # neuron
nn_neuron:
    la   a2, inputs
    la   a3, weights
    slli a4, t2, 6        # neuron * 16 * 4
    add  a3, a3, a4
    # dot product (16 taps, float32)
    la   a5, fzero
    flw  fa0, 0(a5)
    li   a5, 16
nn_tap:
    flw  fa1, 0(a2)
    flw  fa2, 0(a3)
    fmadd.s fa0, fa1, fa2, fa0
    addi a2, a2, 4
    addi a3, a3, 4
    addi a5, a5, -1
    bnez a5, nn_tap
    # hard clamp to [-4, 4], scale, accumulate
    la   a5, ffour
    flw  fa1, 0(a5)
    fmin.s fa0, fa0, fa1
    fneg.s fa1, fa1
    fmax.s fa0, fa0, fa1
    la   a5, fscale
    flw  fa2, 0(a5)
    fmul.s fa0, fa0, fa2
    fcvt.w.s a5, fa0
    add  t0, t0, a5
    addi t2, t2, 1
    li   a4, 8
    blt  t2, a4, nn_neuron
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	f32 := func(v float64) uint32 { return math.Float32bits(float32(v)) }
	b.WriteString("\n.align 3\ninputs:\n")
	for i := 0; i < 16; i++ {
		b.WriteString(fmt.Sprintf("    .word 0x%08x\n", f32(math.Sin(float64(i))*0.8)))
	}
	b.WriteString("weights:\n")
	for i := 0; i < 128; i++ {
		b.WriteString(fmt.Sprintf("    .word 0x%08x\n", f32(math.Cos(float64(i)*0.37)*0.5)))
	}
	b.WriteString(fmt.Sprintf("fzero: .word 0x%08x\n", f32(0)))
	b.WriteString(fmt.Sprintf("ffour: .word 0x%08x\n", f32(4)))
	b.WriteString(fmt.Sprintf("fscale: .word 0x%08x\n", f32(1000)))
	return b.String()
}
