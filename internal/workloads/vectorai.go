package workloads

import (
	"fmt"
	"strings"
)

// The AI kernels reproduce the §X vector claim: "the Cortex-A73 supports 8X
// 16-bit-MAC operation, and the computing power of XT-910 is 16X 16-bit MACs"
// plus fp16 support the A73 lacks. The dot-product kernel is provided in a
// scalar form, a vector int16 widening-MAC form, and a vector fp16 form.

// aiN is the dot-product length (int16 elements).
const aiN = 2048

// AIDotScalar is the scalar int16 dot product baseline.
var AIDotScalar = Workload{
	Name:         "ai-dot-scalar",
	DefaultIters: 30,
	Gen:          genAIDotScalar,
}

// AIDotVector is the vector int16 dot product using vwmacc (16 MACs/cycle
// across the two 64-bit slices at e16).
var AIDotVector = Workload{
	Name:         "ai-dot-vector",
	DefaultIters: 30,
	Gen:          genAIDotVector,
}

// AIDotFP16 is the half-precision vector dot product (unsupported on the
// A73-class comparison machine).
var AIDotFP16 = Workload{
	Name:         "ai-dot-fp16",
	DefaultIters: 30,
	Gen:          genAIDotFP16,
}

func aiData() string {
	var b strings.Builder
	b.WriteString("\n.align 4\nvec_x:\n")
	for i := 0; i < aiN; i++ {
		b.WriteString(fmt.Sprintf("    .half %d\n", (i*37+11)%251-125))
	}
	b.WriteString("vec_w:\n")
	for i := 0; i < aiN; i++ {
		b.WriteString(fmt.Sprintf("    .half %d\n", (i*91+43)%199-99))
	}
	return b.String()
}

func genAIDotScalar(iters int) string {
	return header(iters) + fmt.Sprintf(`
.equ N, %d
main_loop:
    la   a2, vec_x
    la   a3, vec_w
    li   a4, N
    li   t0, 0
dot:
    lh   a5, 0(a2)
    lh   a6, 0(a3)
    mul  a5, a5, a6
    add  t0, t0, a5
    addi a2, a2, 2
    addi a3, a3, 2
    addi a4, a4, -1
    bnez a4, dot
`, aiN) + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit + aiData()
}

func genAIDotVector(iters int) string {
	return header(iters) + fmt.Sprintf(`
.equ N, %d
main_loop:
    la   a2, vec_x
    la   a3, vec_w
    li   a4, N
    li   t0, 0
    # zero the widened accumulator group once (e32, m4 = v4..v7)
    li   t3, 16
    vsetvli t3, t3, e32, m4
    vmv.v.x v4, zero
vdot:
    vsetvli t2, a4, e16, m2      # 16 int16 lanes per op
    vle.v  v0, (a2)
    vle.v  v2, (a3)
    vwmacc.vv v4, v0, v2         # accumulate across the whole loop
    slli t3, t2, 1
    add  a2, a2, t3
    add  a3, a3, t3
    sub  a4, a4, t2
    bnez a4, vdot
    # single reduction at the end (e32 over the m4 group)
    li   t3, 16
    vsetvli t3, t3, e32, m4
    vmv.s.x v8, zero
    vredsum.vs v12, v4, v8
    vmv.x.s t4, v12
    add  t0, t0, t4
`, aiN) + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit + aiData()
}

func genAIDotFP16(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(fmt.Sprintf(`
.equ N, %d
main_loop:
    la   a2, hvec_x
    la   a3, hvec_w
    li   a4, N
    li   t0, 0
    li   t3, 16
    vsetvli t3, t3, e16, m2
    vmv.v.x v4, zero             # fp16 accumulator group
hdot:
    vsetvli t2, a4, e16, m2
    vle.v  v0, (a2)
    vle.v  v2, (a3)
    vfmacc.vv v4, v0, v2         # fp16 fused MACs, accumulated across the loop
    slli t3, t2, 1
    add  a2, a2, t3
    add  a3, a3, t3
    sub  a4, a4, t2
    bnez a4, hdot
    # single horizontal reduce at the end
    li   t3, 16
    vsetvli t3, t3, e16, m2
    vmv.s.x v8, zero
    vfredsum.vs v12, v4, v8
    vmv.x.s t4, v12
    li   t5, 0xFFFF
    and  t4, t4, t5
    add  t0, t0, t4              # checksum over raw fp16 bits
`, 512))
	b.WriteString(mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 4\nhvec_x:\n")
	for i := 0; i < 512; i++ {
		b.WriteString(fmt.Sprintf("    .half 0x%04x\n", fp16Of(float32(i%13)*0.25-1.5)))
	}
	b.WriteString("hvec_w:\n")
	for i := 0; i < 512; i++ {
		b.WriteString(fmt.Sprintf("    .half 0x%04x\n", fp16Of(float32(i%7)*0.125-0.375)))
	}
	return b.String()
}

// fp16Of converts to IEEE binary16 (mirrors internal/vector's conversion; a
// local copy keeps this package free of simulator imports).
func fp16Of(f float32) uint16 {
	// only small exact values are used, so truncation is fine here
	switch {
	case f == 0:
		return 0
	}
	sign := uint16(0)
	if f < 0 {
		sign = 0x8000
		f = -f
	}
	exp := 15
	for f >= 2 {
		f /= 2
		exp++
	}
	for f < 1 {
		f *= 2
		exp--
	}
	frac := uint16((f - 1) * 1024)
	return sign | uint16(exp)<<10 | frac
}
