package workloads

import (
	"fmt"
	"strings"
)

// EEMBC returns the EEMBC-automotive-like kernel suite used for Fig. 18.
// §X describes EEMBC as "a benchmark for the hardware and software used in
// autonomous driving, the Internet of Things, mobile devices"; the automotive
// suite's kernels are short integer filters, table lookups, pointer chases
// and bit-field manipulations, re-implemented below.
func EEMBC() []Workload {
	return []Workload{
		{Name: "eembc-a2time", DefaultIters: 250, Gen: genA2Time},
		{Name: "eembc-aifirf", DefaultIters: 150, Gen: genFIR},
		{Name: "eembc-iirflt", DefaultIters: 150, Gen: genIIR},
		{Name: "eembc-canrdr", DefaultIters: 200, Gen: genCAN},
		{Name: "eembc-idctrn", DefaultIters: 120, Gen: genIDCT},
		{Name: "eembc-matrix", DefaultIters: 150, Gen: genMatrix3},
		{Name: "eembc-pntrch", DefaultIters: 150, Gen: genPointerChase},
		{Name: "eembc-tblook", DefaultIters: 200, Gen: genTableLookup},
	}
}

// genA2Time: angle-to-time conversion — per tooth: time = angle*scale/speed
// with wrap handling, the arithmetic core of the EEMBC a2time kernel.
func genA2Time(iters int) string {
	return header(iters) + `
main_loop:
    la   t1, angles
    li   t2, 32           # teeth
    li   t0, 0
    li   t3, 3600         # scale
    li   t4, 7            # speed
a2_loop:
    lw   a2, 0(t1)
    addi t1, t1, 4
    mul  a3, a2, t3
    div  a3, a3, t4
    # wrap into [0, 360000)
    li   a4, 360000
    rem  a3, a3, a4
    bgez a3, a2_pos
    add  a3, a3, a4
a2_pos:
    add  t0, t0, a3
    addi t2, t2, -1
    bnez t2, a2_loop
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit + angleData()
}

func angleData() string {
	var b strings.Builder
	b.WriteString("\n.align 3\nangles:\n")
	for i := 0; i < 32; i++ {
		b.WriteString(fmt.Sprintf("    .word %d\n", (i*523+91)%720-360))
	}
	return b.String()
}

// genFIR: 16-tap integer FIR filter over 64 samples.
func genFIR(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    li   t0, 0
    li   t2, 0            # n (output index)
fir_n:
    la   a2, samples
    slli a3, t2, 2
    add  a2, a2, a3       # &samples[n]
    la   a4, coeffs
    li   a5, 0            # acc
    li   a6, 16           # taps
fir_tap:
    lw   t3, 0(a2)
    lw   t4, 0(a4)
    mul  t3, t3, t4
    add  a5, a5, t3
    addi a2, a2, 4
    addi a4, a4, 4
    addi a6, a6, -1
    bnez a6, fir_tap
    srai a5, a5, 8        # scale
    add  t0, t0, a5
    addi t2, t2, 1
    li   a3, 48
    blt  t2, a3, fir_n
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 3\nsamples:\n")
	for i := 0; i < 64; i++ {
		b.WriteString(fmt.Sprintf("    .word %d\n", (i*97+13)%201-100))
	}
	b.WriteString("coeffs:\n")
	for i := 0; i < 16; i++ {
		b.WriteString(fmt.Sprintf("    .word %d\n", (i*31+7)%65-32))
	}
	return b.String()
}

// genIIR: cascaded integer biquad (direct form I) over the sample block.
func genIIR(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    li   t0, 0
    la   a2, samples
    li   a3, 64
    li   t2, 0            # x1
    li   t3, 0            # x2
    li   t4, 0            # y1
    li   t5, 0            # y2
iir_loop:
    lw   a4, 0(a2)
    addi a2, a2, 4
    # y = (181*x + 362*x1 + 181*x2 + 452*y1 - 113*y2) >> 9
    li   a5, 181
    mul  a6, a4, a5
    mul  a7, t2, a5
    slli a7, a7, 1
    add  a6, a6, a7
    mul  a7, t3, a5
    add  a6, a6, a7
    li   a5, 452
    mul  a7, t4, a5
    add  a6, a6, a7
    li   a5, 113
    mul  a7, t5, a5
    sub  a6, a6, a7
    srai a6, a6, 9
    mv   t3, t2
    mv   t2, a4
    mv   t5, t4
    mv   t4, a6
    add  t0, t0, a6
    addi a3, a3, -1
    bnez a3, iir_loop
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 3\nsamples:\n")
	for i := 0; i < 64; i++ {
		b.WriteString(fmt.Sprintf("    .word %d\n", (i*57+29)%401-200))
	}
	return b.String()
}

// genCAN: CAN-message field extraction and response assembly — bit-field
// heavy (the workload class §VIII-B's extensions target).
func genCAN(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    li   t0, 0
    la   a2, canmsgs
    li   a3, 16
can_loop:
    ld   a4, 0(a2)
    addi a2, a2, 8
    # id = bits [28:18], dlc = bits [3:0], data = bits [17:4]
    srli a5, a4, 18
    li   a6, 0x7FF
    and  a5, a5, a6
    andi a6, a4, 15
    srli a7, a4, 4
    li   t2, 0x3FFF
    and  a7, a7, t2
    # response: id match 0x2A5 doubles the data field
    li   t2, 0x2A5
    bne  a5, t2, can_acc
    slli a7, a7, 1
can_acc:
    add  t0, t0, a5
    add  t0, t0, a6
    add  t0, t0, a7
    addi a3, a3, -1
    bnez a3, can_loop
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 3\ncanmsgs:\n")
	for i := 0; i < 16; i++ {
		v := uint64(i)*0xA5A5A5A7 + 0x12345
		if i%5 == 0 {
			v = v&^(0x7FF<<18) | 0x2A5<<18
		}
		b.WriteString(fmt.Sprintf("    .dword 0x%016x\n", v))
	}
	return b.String()
}

// genIDCT: simplified 8-point integer butterfly transform over 8 rows.
func genIDCT(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    li   t0, 0
    li   t2, 0            # row
idct_row:
    la   a2, idctin
    slli a3, t2, 5        # row * 8 * 4
    add  a2, a2, a3
    # butterfly: out[i] = in[i] + in[7-i], out[7-i] = (in[i]-in[7-i])*c >> 6
    li   a4, 0            # i
idct_b:
    slli a5, a4, 2
    add  a5, a5, a2
    lw   a6, 0(a5)
    li   a7, 7
    sub  a7, a7, a4
    slli a7, a7, 2
    add  a7, a7, a2
    lw   t3, 0(a7)
    add  t4, a6, t3
    sub  t5, a6, t3
    li   t6, 46341        # ~cos scale
    mul  t5, t5, t6
    srai t5, t5, 16
    add  t0, t0, t4
    add  t0, t0, t5
    addi a4, a4, 1
    li   a5, 4
    blt  a4, a5, idct_b
    addi t2, t2, 1
    li   a3, 8
    blt  t2, a3, idct_row
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 3\nidctin:\n")
	for i := 0; i < 64; i++ {
		b.WriteString(fmt.Sprintf("    .word %d\n", (i*119+41)%513-256))
	}
	return b.String()
}

// genMatrix3: 3x3 determinants over an array of matrices.
func genMatrix3(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    li   t0, 0
    la   a2, mats
    li   a3, 12           # matrices
m3_loop:
    lw   a4, 0(a2)
    lw   a5, 4(a2)
    lw   a6, 8(a2)
    lw   a7, 12(a2)
    lw   t2, 16(a2)
    lw   t3, 20(a2)
    lw   t4, 24(a2)
    lw   t5, 28(a2)
    lw   t6, 32(a2)
    # det = a(ei-fh) - b(di-fg) + c(dh-eg)
    mul  s2, t2, t6
    mul  s3, t3, t5
    sub  s2, s2, s3
    mul  s2, s2, a4
    mul  s3, a7, t6
    mul  s4, t3, t4
    sub  s3, s3, s4
    mul  s3, s3, a5
    sub  s2, s2, s3
    mul  s3, a7, t5
    mul  s4, t2, t4
    sub  s3, s3, s4
    mul  s3, s3, a6
    add  s2, s2, s3
    add  t0, t0, s2
    addi a2, a2, 36
    addi a3, a3, -1
    bnez a3, m3_loop
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 3\nmats:\n")
	for i := 0; i < 12*9; i++ {
		b.WriteString(fmt.Sprintf("    .word %d\n", (i*67+19)%21-10))
	}
	return b.String()
}

// genPointerChase: follow a scattered pointer ring comparing payloads.
func genPointerChase(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    la   t1, ring
    ld   t1, 0(t1)
    li   t0, 0
    li   t2, 64           # hops
pc_loop:
    ld   t3, 8(t1)        # payload
    li   a2, 50
    blt  t3, a2, pc_small
    addi t0, t0, 3
    j    pc_next
pc_small:
    addi t0, t0, 1
pc_next:
    ld   t1, 0(t1)        # follow
    addi t2, t2, -1
    bnez t2, pc_loop
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	// a permuted ring of 32 nodes spread over cache lines
	const n = 32
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i*19 + 7) % n // 19 is coprime with 32: a full cycle
	}
	b.WriteString("\n.align 3\nring: .dword node0\n")
	for i := 0; i < n; i++ {
		b.WriteString(fmt.Sprintf("node%d: .dword node%d, %d\n    .space 48\n",
			i, perm[i], (i*43+9)%100))
	}
	return b.String()
}

// genTableLookup: indexed table walk with linear interpolation.
func genTableLookup(iters int) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    li   t0, 0
    li   t2, 0            # query index
tl_loop:
    # query value in [0, 1024)
    slli a2, t2, 5
    addi a2, a2, 17
    li   a3, 1024
    rem  a2, a2, a3
    # segment = q >> 6 (16 segments), frac = q & 63
    srli a4, a2, 6
    andi a5, a2, 63
    la   a6, table
    slli a7, a4, 2
    add  a6, a6, a7
    lw   t3, 0(a6)
    lw   t4, 4(a6)
    sub  t5, t4, t3
    mul  t5, t5, a5
    srai t5, t5, 6
    add  t3, t3, t5
    add  t0, t0, t3
    addi t2, t2, 1
    li   a3, 64
    blt  t2, a3, tl_loop
` + mix + `
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 3\ntable:\n")
	for i := 0; i <= 16; i++ {
		b.WriteString(fmt.Sprintf("    .word %d\n", i*i*40-i*300+500))
	}
	return b.String()
}
