package workloads

import (
	"fmt"
	"strings"
)

// The blockchain workload reproduces the §I deployment claim: XT-910 FPGA
// instances accelerate blockchain transactions in Alibaba Cloud "by taking
// advantage of the custom extensions". The kernel is the SHA-256-style
// compression round mix — rotate/xor/add over a message schedule — which the
// §VIII-B bit-manipulation extensions (srri rotate, rev byte reverse, ext
// bit-field extract) accelerate directly.

// BlockchainBase uses only standard RV64G instructions (rotates take three
// instructions, byte reversal takes a shift/or cascade).
var BlockchainBase = Workload{
	Name:         "blockchain-base",
	DefaultIters: 60,
	Gen:          func(iters int) string { return genBlockchain(iters, false) },
}

// BlockchainExt uses the XT-910 custom extensions (srri, rev).
var BlockchainExt = Workload{
	Name:         "blockchain-ext",
	DefaultIters: 60,
	Gen:          func(iters int) string { return genBlockchain(iters, true) },
}

// rotr emits "dst = rotate-right-64(src, n)" with or without the custom
// extension; tmp names a scratch register for the base-ISA form.
func rotr(ext bool, dst, src string, n int, tmp string) string {
	if ext {
		return fmt.Sprintf("    srri %s, %s, %d\n", dst, src, n)
	}
	return fmt.Sprintf(`    srli %s, %s, %d
    slli %s, %s, %d
    or   %s, %s, %s
`, tmp, src, n, dst, src, 64-n, dst, dst, tmp)
}

// byterev emits "dst = byte-reverse(src)".
func byterev(ext bool, dst, src string) string {
	if ext {
		return fmt.Sprintf("    rev %s, %s\n", dst, src)
	}
	// 3-stage swap: bytes, half-words, words
	return fmt.Sprintf(`    li   t6, 0x00FF00FF00FF00FF
    srli s4, %[2]s, 8
    and  s4, s4, t6
    and  %[1]s, %[2]s, t6
    slli %[1]s, %[1]s, 8
    or   %[1]s, %[1]s, s4
    li   t6, 0x0000FFFF0000FFFF
    srli s4, %[1]s, 16
    and  s4, s4, t6
    and  %[1]s, %[1]s, t6
    slli %[1]s, %[1]s, 16
    or   %[1]s, %[1]s, s4
    srli s4, %[1]s, 32
    slli %[1]s, %[1]s, 32
    or   %[1]s, %[1]s, s4
`, dst, src)
}

func genBlockchain(iters int, ext bool) string {
	var b strings.Builder
	b.WriteString(header(iters))
	b.WriteString(`
main_loop:
    # load the 8-word state
    la   s0, hstate
    ld   a2, 0(s0)
    ld   a3, 8(s0)
    ld   a4, 16(s0)
    ld   a5, 24(s0)
    la   s1, sched
    li   s2, 24           # rounds
round:
    ld   s3, 0(s1)
    addi s1, s1, 8
    # byte-swap the schedule word (message is big-endian on the wire)
`)
	b.WriteString(byterev(ext, "t2", "s3"))
	b.WriteString("    # sigma0 = rotr(a,28) ^ rotr(a,34) ^ rotr(a,39)\n")
	b.WriteString(rotr(ext, "t3", "a2", 28, "t5"))
	b.WriteString(rotr(ext, "t4", "a2", 34, "t5"))
	b.WriteString("    xor  t3, t3, t4\n")
	b.WriteString(rotr(ext, "t4", "a2", 39, "t5"))
	b.WriteString(`    xor  t3, t3, t4
    # ch = (b & c) ^ (~b & d)
    and  t4, a3, a4
    not  t5, a3
    and  t5, t5, a5
    xor  t4, t4, t5
    # mix
    add  t4, t4, t2
    add  t4, t4, t3
    # rotate state
    mv   a5, a4
    mv   a4, a3
    mv   a3, a2
    add  a2, t4, a5
    addi s2, s2, -1
    bnez s2, round
    # fold state into checksum
    mv   t0, a2
` + mix + `
    mv   t0, a3
` + mix + `
    # feed the state forward
    la   s0, hstate
    ld   t2, 0(s0)
    add  t2, t2, a2
    sd   t2, 0(s0)
    ld   t2, 8(s0)
    add  t2, t2, a3
    sd   t2, 8(s0)
    addi s11, s11, -1
    bnez s11, main_loop
` + exit)
	b.WriteString("\n.align 3\nhstate:\n")
	seeds := []uint64{0x6A09E667F3BCC908, 0xBB67AE8584CAA73B,
		0x3C6EF372FE94F82B, 0xA54FF53A5F1D36F1}
	for _, s := range seeds {
		b.WriteString(fmt.Sprintf("    .dword 0x%016x\n", s))
	}
	b.WriteString("sched:\n")
	for i := 0; i < 24; i++ {
		b.WriteString(fmt.Sprintf("    .dword 0x%016x\n",
			uint64(i)*0x428A2F98D728AE22+0x7137449123EF65CD))
	}
	return b.String()
}
