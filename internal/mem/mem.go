// Package mem provides the physical memory substrate of the XT-910 model:
// a sparse byte-addressable memory and a fixed-latency DRAM timing model.
//
// The paper's memory-subsystem evaluation (Fig. 21) configures the FPGA
// harness so that "the CPU issues a read request and obtains the data from the
// bus after 200 CPU cycles"; DRAM reproduces exactly that contract.
package mem

import "encoding/binary"

const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse little-endian physical memory. The zero value is ready
// to use. It is not safe for concurrent use; the SoC model steps cores in a
// deterministic lock-step loop, so no locking is needed.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty physical memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// LoadByte returns the byte at addr (0 for untouched memory).
func (m *Memory) LoadByte(addr uint64) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&(pageSize-1)]
	}
	return 0
}

// StoreByte stores one byte.
func (m *Memory) StoreByte(addr uint64, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// Read returns size bytes starting at addr as a little-endian integer.
// size must be 1, 2, 4 or 8; the access may cross page boundaries.
func (m *Memory) Read(addr uint64, size int) uint64 {
	if off := addr & (pageSize - 1); off+uint64(size) <= pageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores size bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	if off := addr & (pageSize - 1); off+uint64(size) <= pageSize {
		p := m.page(addr, true)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	for i := 0; i < size; i++ {
		m.StoreByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// LoadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) LoadBytes(addr uint64, dst []byte) {
	for i := range dst {
		dst[i] = m.LoadByte(addr + uint64(i))
	}
}

// StoreBytes stores src at addr.
func (m *Memory) StoreBytes(addr uint64, src []byte) {
	for i, b := range src {
		m.StoreByte(addr+uint64(i), b)
	}
}

// FootprintBytes reports how much memory has been touched (allocated pages).
func (m *Memory) FootprintBytes() uint64 {
	return uint64(len(m.pages)) * pageSize
}

// Snapshot returns a deep copy of every touched page, keyed by page number
// (byte address >> 12). It is the serializable image of the memory: restoring
// it into an empty Memory reproduces every Load exactly, because untouched
// pages read as zero in both.
func (m *Memory) Snapshot() map[uint64][]byte {
	out := make(map[uint64][]byte, len(m.pages))
	for pn, p := range m.pages {
		out[pn] = append([]byte(nil), p[:]...)
	}
	return out
}

// RestoreSnapshot replaces the memory's entire contents with a snapshot taken
// by Snapshot. Pages absent from the snapshot are dropped (they read as zero
// again); short page images are zero-padded.
func (m *Memory) RestoreSnapshot(pages map[uint64][]byte) {
	m.pages = make(map[uint64]*[pageSize]byte, len(pages))
	for pn, data := range pages {
		p := new([pageSize]byte)
		copy(p[:], data)
		m.pages[pn] = p
	}
}

// DRAM models main-memory timing as a fixed access latency plus a bandwidth
// limit expressed as a minimum inter-access gap, matching the paper's
// "configure bus delay and DDR delay to ~200 CPU cycles" methodology.
type DRAM struct {
	// Latency is the request-to-data delay in CPU cycles (default 200, §X).
	Latency int
	// GapCycles is the minimum spacing between successive DRAM accesses,
	// modelling channel bandwidth. Zero means unlimited bandwidth.
	GapCycles int

	nextFree uint64 // earliest cycle the channel can accept a request
	Accesses uint64 // statistics: number of DRAM accesses
}

// NewDRAM returns a DRAM model with the paper's 200-cycle latency.
func NewDRAM() *DRAM { return &DRAM{Latency: 200, GapCycles: 4} }

// Access returns the cycle at which data for a request issued at cycle `now`
// becomes available, accounting for channel occupancy.
func (d *DRAM) Access(now uint64) uint64 {
	start := now
	if d.nextFree > start {
		start = d.nextFree
	}
	d.nextFree = start + uint64(d.GapCycles)
	d.Accesses++
	return start + uint64(d.Latency)
}

// Reset clears channel state and statistics.
func (d *DRAM) Reset() {
	d.nextFree = 0
	d.Accesses = 0
}
