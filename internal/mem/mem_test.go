package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint64, sizeSel uint8) bool {
		size := []int{1, 2, 4, 8}[sizeSel%4]
		addr &= 0xFFFFFFF
		m.Write(addr, size, v)
		got := m.Read(addr, size)
		want := v
		if size < 8 {
			want = v & (1<<(8*size) - 1)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(0x1FFD) // 3 bytes before a page boundary
	m.Write(addr, 8, 0x1122334455667788)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Fatalf("cross-page read = %#x", got)
	}
	if got := m.Read(0x2000, 1); got != 0x55 {
		t.Fatalf("byte on second page = %#x", got)
	}
}

func TestUntouchedReadsZero(t *testing.T) {
	m := NewMemory()
	if m.Read(0xDEADBEEF, 8) != 0 {
		t.Fatal("untouched memory must read zero")
	}
	if m.FootprintBytes() != 0 {
		t.Fatal("reads must not allocate")
	}
}

func TestBytesHelpers(t *testing.T) {
	m := NewMemory()
	src := []byte("the quick brown fox")
	m.StoreBytes(0x4FFA, src) // crosses a page
	dst := make([]byte, len(src))
	m.LoadBytes(0x4FFA, dst)
	if string(dst) != string(src) {
		t.Fatalf("got %q", dst)
	}
}

func TestDRAMLatency(t *testing.T) {
	d := NewDRAM()
	done := d.Access(1000)
	if done != 1200 {
		t.Fatalf("first access done at %d, want 1200 (200-cycle latency, §X)", done)
	}
	// immediate second access must respect the channel gap
	done2 := d.Access(1000)
	if done2 != 1204 {
		t.Fatalf("second access done at %d, want 1204", done2)
	}
	if d.Accesses != 2 {
		t.Fatalf("accesses = %d", d.Accesses)
	}
}

func TestDRAMBandwidthSaturation(t *testing.T) {
	d := &DRAM{Latency: 200, GapCycles: 10}
	var last uint64
	for i := 0; i < 100; i++ {
		last = d.Access(0)
	}
	// 100 back-to-back requests serialize on the channel: 99*10 + 200
	if last != 99*10+200 {
		t.Fatalf("saturated completion = %d, want %d", last, 99*10+200)
	}
}
