package cosim

import (
	"fmt"
	"strings"
)

// Modes is the composable run/fuzz mode set shared by the cosim library and
// every campaign CLI: each flag turns on one program profile and the session
// wiring it needs. Modes replaces the old independent Paged/IRQ booleans so a
// single `-modes paged,irq` style spec can express every legal combination
// and the legality rules live in exactly one place (Validate).
type Modes struct {
	// Paged boots programs in S-mode under SV39 (see Options.Paged).
	Paged bool
	// IRQ generates interrupt-driven programs with deterministic per-seed
	// mip schedules (see Options.IRQ).
	IRQ bool
	// SMP runs the program SPMD on multiple lock-step hart pairs with
	// cross-hart contention segments and the store-order oracle.
	SMP bool
}

// ParseModes parses a comma-separated mode spec ("", "irq", "smp,irq", ...)
// and validates the combination.
func ParseModes(spec string) (Modes, error) {
	var m Modes
	for _, f := range strings.Split(spec, ",") {
		switch strings.TrimSpace(f) {
		case "":
		case "paged":
			m.Paged = true
		case "irq":
			m.IRQ = true
		case "smp":
			m.SMP = true
		default:
			return Modes{}, fmt.Errorf("unknown mode %q (valid: paged, irq, smp)", strings.TrimSpace(f))
		}
	}
	return m, m.Validate()
}

// Validate rejects mode combinations the models cannot support.
func (m Modes) Validate() error {
	if m.Paged && m.IRQ {
		return fmt.Errorf("modes paged and irq cannot be combined (interrupt CSR traffic is M-mode)")
	}
	if m.Paged && m.SMP {
		return fmt.Errorf("modes paged and smp cannot be combined (the SMP profile runs M-mode physical)")
	}
	return nil
}

// String renders the spec back in canonical order ("" for the empty set).
func (m Modes) String() string {
	var parts []string
	if m.Paged {
		parts = append(parts, "paged")
	}
	if m.IRQ {
		parts = append(parts, "irq")
	}
	if m.SMP {
		parts = append(parts, "smp")
	}
	return strings.Join(parts, ",")
}
