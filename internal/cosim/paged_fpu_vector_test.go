package cosim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"xt910/internal/asm"
	"xt910/internal/core"
	"xt910/internal/emu"
	"xt910/isa"
)

func mustRunOpts(t *testing.T, src string, opts Options) Result {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Run(prog, opts)
}

func checkCleanOpts(t *testing.T, src string, opts Options) Result {
	t.Helper()
	r := mustRunOpts(t, src, opts)
	if r.Diverged {
		t.Fatalf("diverged:\n%s", r.Report)
	}
	return r
}

// TestPagedAliasLRSC is the hand-written repro for the VA-vs-PA reservation
// class: the +1GB alias window gives every buffer line two virtual
// addresses, and the LR/SC reservation must behave as if it were keyed by
// the physical line — because in both models it now is. A wrong branch hits
// ebreak, so the exit code checks the semantics, not just model agreement.
func TestPagedAliasLRSC(t *testing.T) {
	r := checkCleanOpts(t, `
_start:
    la x8, buf
    li x5, 111
    li x6, 222
    li x28, 0x40000000
    add x28, x28, x8

    # (1) the reservation is physical: LR through the alias, SC through the
    # identity VA — different virtual addresses, same line — must succeed
    lr.d x9, (x28)
    sc.d x10, x6, (x8)
    bnez x10, bad
    # (2) a store through the alias to the reserved physical line kills the
    # reservation even though its VA is 1GB away: SC must fail
    lr.d x9, (x8)
    sd x5, 8(x28)
    sc.d x10, x6, (x8)
    beqz x10, bad
    # (3) a store through the alias to a different line leaves it live
    lr.d x9, (x8)
    sd x5, 64(x28)
    sc.d x10, x6, (x8)
    bnez x10, bad
`+exitEpilogue+`
bad:
    ebreak
.align 6
buf:
    .dword 0, 0, 0, 0, 0, 0, 0, 0
    .dword 0, 0, 0, 0, 0, 0, 0, 0
`, Options{Paged: true})
	if r.ExitCode != 0 {
		t.Fatalf("exit code = %d, want 0 (an SC branch went the wrong way)", r.ExitCode)
	}
}

// TestPagedFaults pins the trap plumbing for every page-fault flavor the
// paged profile can raise: with all exceptions delegated and stvec=0, both
// models halt with -(16+cause) after latching scause/stval/sepc (compared
// by the drain). LR faults as a *store* page fault in both models — the
// pipeline checks writability up front so SC can never fault after a
// successful LR, and the golden model mirrors that.
func TestPagedFaults(t *testing.T) {
	cases := []struct {
		name string
		body string
		exit int
	}{
		{"load_unmapped", "    li x5, 0x400A0000\n    ld x6, 0(x5)\n", -(16 + 13)},
		{"store_unmapped", "    li x5, 0x400A0008\n    sd x6, 0(x5)\n", -(16 + 15)},
		{"lr_unmapped_is_store_fault", "    li x5, 0x400A0040\n    lr.d x6, (x5)\n", -(16 + 15)},
		{"fetch_alias_not_executable", "    li x5, 0x40001000\n    jalr x1, x5, 0\n", -(16 + 12)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := checkCleanOpts(t, "_start:\n"+tc.body+exitEpilogue, Options{Paged: true})
			if r.ExitCode != tc.exit {
				t.Fatalf("exit code = %d, want %d", r.ExitCode, tc.exit)
			}
		})
	}
}

// TestPagedPageCross drives a doubleword access across a 4K page boundary
// in the alias window (physically contiguous, so the value must round-trip)
// and checks the write is visible through the identity window too.
func TestPagedPageCross(t *testing.T) {
	r := checkCleanOpts(t, `
_start:
    li x5, 0x4007FFFC
    li x6, 0x1122334455667788
    sd x6, 0(x5)
    ld x7, 0(x5)
    bne x6, x7, bad
    li x5, 0x7FFFC
    ld x9, 0(x5)
    bne x6, x9, bad
`+exitEpilogue+`
bad:
    ebreak
`, Options{Paged: true})
	if r.ExitCode != 0 {
		t.Fatalf("exit code = %d, want 0 (page-crossing value mismatch)", r.ExitCode)
	}
}

// TestFFlagsAccrual is the hand-written repro for the FPU-flag class: each
// step provokes one IEEE flag, reads the accrued fflags back, and branches
// to ebreak on the wrong value — so it checks the flag semantics themselves
// (NX/DZ/NV/OF/UF accrual and the fflags/frm/fcsr aliasing), not just that
// the two models agree on them.
func TestFFlagsAccrual(t *testing.T) {
	r := checkClean(t, `
_start:
    la x8, buf
    csrrwi x0, fflags, 0
    li x5, 1
    fcvt.d.l f0, x5
    li x5, 3
    fcvt.d.l f1, x5
    fdiv.d f2, f0, f1        # 1/3: inexact
    csrr x6, fflags
    li x7, 1                 # NX
    bne x6, x7, bad
    fmv.d.x f3, x0
    fdiv.d f4, f0, f3        # 1/0: divide by zero
    csrr x6, fflags
    li x7, 9                 # NX|DZ accrued
    bne x6, x7, bad
    li x5, -1
    fcvt.d.l f5, x5
    fsqrt.d f6, f5           # sqrt(-1): invalid
    csrr x6, fflags
    li x7, 25                # NX|DZ|NV
    bne x6, x7, bad
    csrrwi x0, fflags, 0
    li x5, 0x7FE0000000000000
    fmv.d.x f7, x5
    fmul.d f9, f7, f7        # overflow
    csrr x6, fflags
    li x7, 5                 # OF|NX
    bne x6, x7, bad
    csrrwi x0, frm, 3
    csrr x6, fcsr            # frm window lands at bits 7:5 of fcsr
    li x7, 101               # 5 | 3<<5
    bne x6, x7, bad
    csrrwi x0, fcsr, 0
    li x5, 0x0010000000000000
    fmv.d.x f7, x5
    fmul.d f9, f7, f7        # smallest normal squared: underflow
    csrr x6, fflags
    li x7, 3                 # UF|NX
    bne x6, x7, bad
`+exitEpilogue+`
bad:
    ebreak
.align 6
buf:
    .dword 0, 0, 0, 0, 0, 0, 0, 0
`)
	if r.ExitCode != 0 {
		t.Fatalf("exit code = %d, want 0 (an fflags check went the wrong way)", r.ExitCode)
	}
}

// TestVectorMaskedStore is the hand-written repro for the masked-vector
// class: a vmseq-derived mask in v0 predicates a unit-stride store, and the
// masked-off destination words must keep their previous memory contents.
func TestVectorMaskedStore(t *testing.T) {
	r := checkClean(t, `
_start:
    la x8, buf
    li x29, 4
    vsetvli x5, x29, e32, m1
    vle.v v1, (x8)           # v1 = {1, 2, 3, 4}
    li x5, 1
    vmv.v.x v2, x5
    vand.vv v3, v1, v2
    vmseq.vv v0, v3, v2      # mask = odd elements: {1, 0, 1, 0}
    addi x29, x8, 64
    vse.v v1, (x29), v0.t    # only elements 0 and 2 may touch memory
    lw x6, 64(x8)
    li x7, 1
    bne x6, x7, bad
    lw x6, 68(x8)
    li x7, 9                 # masked off: original value survives
    bne x6, x7, bad
    lw x6, 72(x8)
    li x7, 3
    bne x6, x7, bad
    lw x6, 76(x8)
    li x7, 9
    bne x6, x7, bad
`+exitEpilogue+`
bad:
    ebreak
.align 6
buf:
    .dword 0x0000000200000001, 0x0000000400000003
    .dword 0, 0, 0, 0, 0, 0
    .dword 0x0000000900000009, 0x0000000900000009
`)
	if r.ExitCode != 0 {
		t.Fatalf("exit code = %d, want 0 (a masked-store word check failed)", r.ExitCode)
	}
}

// TestVectorStridedIndexed checks the strided and indexed memory forms end
// to end: a stride-8 load picks every other word, and a scatter through an
// index vector lands each element at base+offset.
func TestVectorStridedIndexed(t *testing.T) {
	r := checkClean(t, `
_start:
    la x8, buf
    li x29, 2
    vsetvli x5, x29, e32, m1
    li x6, 8
    vlse.v v1, (x8), x6      # stride 8: {w0, w2} = {1, 3}
    vmv.x.s x7, v1
    li x5, 1
    bne x7, x5, bad
    addi x29, x8, 32
    vle.v v2, (x29)          # index vector: {8, 16}
    vlxei.v v3, (x8), v2     # gather buf[8]=3, buf[16]=7
    vmv.x.s x7, v3
    li x5, 3
    bne x7, x5, bad
    addi x29, x8, 64
    vsxei.v v3, (x29), v2    # scatter: 3 -> +72, 7 -> +80
    lw x7, 72(x8)
    li x5, 3
    bne x7, x5, bad
    lw x7, 80(x8)
    li x5, 7
    bne x7, x5, bad
`+exitEpilogue+`
bad:
    ebreak
.align 6
buf:
    .dword 0x0000000200000001, 0x0000000400000003
    .dword 0x0000000600000007, 0x0000000500000008
    .dword 0x0000001000000008, 0, 0, 0
    .dword 0, 0, 0, 0, 0, 0, 0, 0
`)
	if r.ExitCode != 0 {
		t.Fatalf("exit code = %d, want 0 (a strided/indexed element check failed)", r.ExitCode)
	}
}

// TestInjectedFlagBugCaught proves the checker compares fcsr at EVERY
// commit, not just at CSR commits or halt: the golden model starts with a
// corrupted fcsr that the program's final `csrrwi x0, fcsr, 0` would wash
// out before the halt-time comparison, so only the per-commit compare can
// see it.
func TestInjectedFlagBugCaught(t *testing.T) {
	hookModels = func(c *core.Core, m *emu.Machine) {
		m.SetCSR(isa.CSRFcsr, 0x2)
		m.SetCSR(isa.CSRMstatus, c.CSR(isa.CSRMstatus)) // undo the FS-dirty side effect
	}
	defer func() { hookModels = nil }()
	r := mustRun(t, `
_start:
    li x5, 1
    addi x5, x5, 2
    csrrwi x0, fcsr, 0
`+exitEpilogue)
	if !r.Diverged || r.Kind != "fcsr" {
		t.Fatalf("injected fflags bug not caught per-commit: diverged=%v kind=%q\n%s",
			r.Diverged, r.Kind, r.Report)
	}
}

// TestInjectedVectorBugCaught proves the vector file is compared at a
// vector store's own commit rather than only at halt: the golden model's v7
// is corrupted up front, and the program rewrites v7 in both models after
// the store (behind a serializing CSR read, so the rewrite cannot execute
// ahead of the store's retirement) — at halt the files agree again, and
// only the per-vector-store compare can catch the transient difference.
func TestInjectedVectorBugCaught(t *testing.T) {
	hookModels = func(c *core.Core, m *emu.Machine) {
		m.Vec.File.Bytes(7)[0] ^= 1
	}
	defer func() { hookModels = nil }()
	r := mustRun(t, `
_start:
    la x8, buf
    li x29, 4
    vsetvli x5, x29, e32, m1
    vle.v v1, (x8)
    addi x29, x8, 64
    vse.v v1, (x29)
    csrr x6, mscratch
    li x5, 5
    vmv.v.x v7, x5
`+exitEpilogue+`
.align 6
buf:
    .dword 1, 2, 3, 4, 5, 6, 7, 8
`)
	if !r.Diverged || r.Kind != "vec" || !strings.Contains(r.Report, "v7") {
		t.Fatalf("injected vector-element bug not caught at the store commit: diverged=%v kind=%q\n%s",
			r.Diverged, r.Kind, r.Report)
	}
}

// TestPagedFixedSeeds is the paged twin of TestFuzzFixedSeeds: the standard
// seed sweep under S-mode/SV39 with alias-window segments enabled must stay
// divergence-free at HEAD.
func TestPagedFixedSeeds(t *testing.T) {
	frs, err := RunSeeds(context.Background(), seedRange(1, 60), 40, Options{Paged: true}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frs {
		if fr.Diverged {
			t.Errorf("seed %d diverged:\n%s\nshrunk:\n%s",
				fr.Seed, fr.Result.Report, fr.Shrunk)
		}
	}
}

// TestPagedDeterministic checks the paged profile leaks no scheduling order
// into outcomes: results are byte-identical at any worker-pool width.
func TestPagedDeterministic(t *testing.T) {
	seeds := seedRange(1, 12)
	a, err := RunSeeds(context.Background(), seeds, 40, Options{Paged: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeeds(context.Background(), seeds, 40, Options{Paged: true}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("paged results differ between jobs=1 and jobs=8")
	}
}
