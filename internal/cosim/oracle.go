package cosim

import (
	"fmt"

	"xt910/internal/coherence"
	"xt910/internal/core"
	"xt910/isa"
)

// storeOracle is the multi-hart store-order checker: it maintains a shadow
// ownership map purely from the coherence fabric's OwnerEvent stream and, at
// every store-class retirement, verifies the committing hart holds write
// ownership of every line the access spans. Architectural register compare
// cannot see a dropped invalidation — in this model cache state is timing
// metadata over one shared memory, so both worlds still read identical values
// — which is exactly the class of coherence bug this oracle exists to catch.
//
// The invariant it checks ("a store retires only while its hart owns the
// line") is made true by construction for a healthy fabric: multi-hart
// sessions set core.OwnStoresAtCommit, so a committing store whose line was
// stolen between execute and retire re-acquires ownership — and the fabric
// reports that acquisition as an OwnExcl event — before the oracle looks. Any
// violation therefore means the fabric granted, lost or failed to revoke
// ownership without saying so.
//
// Besides the per-commit check, the ownership transitions themselves are
// cross-validated: an exclusive grant while another hart still holds the line,
// or a shared grant while the line is exclusively owned, is latched and
// reported at the next commit. A bounded global commit log (stores and
// ownership transitions interleaved in retirement order) accompanies every
// report.
type storeOracle struct {
	mmio interface{ Covers(pa uint64) bool }

	exclOwner map[uint64]int    // line -> hart holding it in a writable state
	holders   map[uint64]uint32 // line -> bitmask of harts holding any copy

	log  [orderLogSize]orderEntry // ring: global commit log window
	logN int

	pending string // transition violation latched until the next commit
}

const orderLogSize = 48

// orderEntry is one global-commit-log record: either a store-class retirement
// or a coherence ownership transition, in the order they happened.
type orderEntry struct {
	event bool // true: ownership transition, false: store-class commit
	hart  int
	line  uint64

	kind coherence.OwnerKind // transitions only

	commit uint64 // commits only: global commit index
	pc     uint64
	inst   isa.Inst
	addr   uint64
}

// newStoreOracle attaches the oracle to the shared L2's ownership-event
// stream. mmio, when non-nil, identifies device addresses whose stores bypass
// the cache hierarchy and are exempt from the ownership check.
func newStoreOracle(l2 *coherence.L2, mmio interface{ Covers(pa uint64) bool }) *storeOracle {
	o := &storeOracle{
		mmio:      mmio,
		exclOwner: make(map[uint64]int),
		holders:   make(map[uint64]uint32),
	}
	l2.OwnerHook = o.onOwner
	return o
}

func (o *storeOracle) push(e orderEntry) {
	o.log[o.logN%orderLogSize] = e
	o.logN++
}

// onOwner ingests one fabric transition, cross-validating it against the
// shadow map before applying it. Violations are latched (first one wins) and
// surface at the next commit so they carry a commit index and trace.
func (o *storeOracle) onOwner(ev coherence.OwnerEvent) {
	o.push(orderEntry{event: true, hart: ev.Port, line: ev.Line, kind: ev.Kind})
	bit := uint32(1) << uint(ev.Port)
	switch ev.Kind {
	case coherence.OwnExcl:
		if others := o.holders[ev.Line] &^ bit; others != 0 && o.pending == "" {
			o.pending = fmt.Sprintf("exclusive grant of line %#x to hart %d while harts %s were never invalidated",
				ev.Line, ev.Port, hartList(others))
		}
		o.exclOwner[ev.Line] = ev.Port
		o.holders[ev.Line] = bit
	case coherence.OwnShared:
		if ow, ok := o.exclOwner[ev.Line]; ok && ow != ev.Port && o.pending == "" {
			o.pending = fmt.Sprintf("shared grant of line %#x to hart %d while hart %d still owns it exclusively",
				ev.Line, ev.Port, ow)
		}
		delete(o.exclOwner, ev.Line)
		o.holders[ev.Line] |= bit
	case coherence.OwnDowngrade:
		if ow, ok := o.exclOwner[ev.Line]; ok && ow == ev.Port {
			delete(o.exclOwner, ev.Line)
		}
		o.holders[ev.Line] |= bit
	case coherence.OwnRelease:
		if o.holders[ev.Line] &^= bit; o.holders[ev.Line] == 0 {
			delete(o.holders, ev.Line)
		}
		if ow, ok := o.exclOwner[ev.Line]; ok && ow == ev.Port {
			delete(o.exclOwner, ev.Line)
		}
	}
}

// commit checks one retirement. Non-nil return is the divergence detail for a
// kind="order" failure. global is the session-wide commit index (all harts).
func (o *storeOracle) commit(hart int, global uint64, ci core.Commit) []string {
	flush := func() []string {
		if o.pending == "" {
			return nil
		}
		msg := o.pending
		o.pending = ""
		return append([]string{msg}, o.renderLog()...)
	}
	cls := ci.Inst.Op.Class()
	if (cls != isa.ClassStore && cls != isa.ClassAMO) || !ci.HasAddr {
		return flush()
	}
	if o.mmio != nil && o.mmio.Covers(ci.Addr) {
		return flush() // device stores bypass the cache hierarchy
	}
	o.push(orderEntry{hart: hart, line: ci.Addr &^ 63, commit: global, pc: ci.PC, inst: ci.Inst, addr: ci.Addr})
	if d := flush(); d != nil {
		return d
	}
	// LR is architecturally a read: it is logged for the reservation context
	// it gives the trace, but losing the line to another hart between the LR
	// and its commit is legal (the reservation dies, a later SC fails). A
	// failed SC (rd != 0) wrote nothing; it is logged but exempt. An SC whose
	// outcome is invisible (rd = x0) is exempt too.
	if op := ci.Inst.Op; op == isa.LRW || op == isa.LRD {
		return nil
	}
	if isSC(ci.Inst.Op) && (!ci.HasRd || ci.RdVal != 0) {
		return nil
	}
	size := ci.Inst.Op.MemBytes()
	if size <= 0 {
		size = 1
	}
	for line := ci.Addr &^ 63; line <= (ci.Addr+uint64(size)-1)&^63; line += 64 {
		if ow, ok := o.exclOwner[line]; !ok || ow != hart {
			owner := "nobody"
			if ok {
				owner = fmt.Sprintf("hart %d", ow)
			}
			msg := fmt.Sprintf("hart %d retires %s pa=%#x without owning line %#x (owner: %s, holders: %s)",
				hart, ci.Inst.String(), ci.Addr, line, owner, hartList(o.holders[line]))
			return append([]string{msg}, o.renderLog()...)
		}
	}
	return nil
}

func isSC(op isa.Op) bool {
	return op == isa.SCW || op == isa.SCD
}

// hartList renders a holder bitmask as "{0,2}".
func hartList(mask uint32) string {
	if mask == 0 {
		return "{}"
	}
	s := "{"
	for h := 0; mask != 0; h, mask = h+1, mask>>1 {
		if mask&1 != 0 {
			if len(s) > 1 {
				s += ","
			}
			s += fmt.Sprint(h)
		}
	}
	return s + "}"
}

// renderLog formats the global commit-log window, oldest entry first.
func (o *storeOracle) renderLog() []string {
	n := o.logN
	if n > orderLogSize {
		n = orderLogSize
	}
	out := make([]string, 0, n+1)
	out = append(out, fmt.Sprintf("global commit log (last %d of %d records):", n, o.logN))
	for i := o.logN - n; i < o.logN; i++ {
		e := o.log[i%orderLogSize]
		if e.event {
			out = append(out, fmt.Sprintf("  own   hart=%d line=%#x %s", e.hart, e.line, e.kind))
		} else {
			out = append(out, fmt.Sprintf("  store hart=%d g#%-5d pc=%#06x %s [addr=%#x]",
				e.hart, e.commit, e.pc, e.inst.String(), e.addr))
		}
	}
	return out
}
