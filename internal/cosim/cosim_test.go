package cosim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"xt910/internal/asm"
)

func mustRun(t *testing.T, src string) Result {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Run(prog, Options{})
}

func checkClean(t *testing.T, src string) Result {
	t.Helper()
	r := mustRun(t, src)
	if r.Diverged {
		t.Fatalf("diverged:\n%s", r.Report)
	}
	return r
}

const exitEpilogue = `
    li a7, 93
    li a0, 0
    ecall
`

// TestRegressions replays distilled versions of programs the fuzzer shrank
// while hunting real timing-core/golden-model divergences. Each entry names
// the root cause that was fixed; the lock-step checker is the oracle.
func TestRegressions(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{
			// isa.Inst.Sources() used to drop x0, shifting later operands
			// down a slot: the core evaluated `sra x5, x0, x22` as
			// sra(x22val, 0) and took branches like `blt x0, xN` on the
			// wrong operand. Shrunk from fuzz seed 3.
			name: "sources_x0_positional",
			body: `
    li x22, 61
    li x6, -7
    sub x5, x0, x6
    sll x7, x0, x22
    srl x9, x0, x22
    sra x10, x0, x22
    slt x11, x0, x6
    sltu x12, x0, x6
    subw x13, x0, x6
    sllw x14, x0, x22
    sraw x15, x0, x6
    blt x0, x6, skip1
    addi x16, x16, 1
skip1:
    bge x0, x6, skip2
    addi x16, x16, 2
skip2:
    mula x16, x0, x6
`,
		},
		{
			// The golden model counted a trapping instruction in instret;
			// the core flushes it without committing. Shrunk from fuzz
			// seed 11 (ebreak finale): instret 214 != 215 at the halt
			// compare. Exercised below by the ebreak terminator.
			name: "instret_excludes_trapped",
			body: `
    li x5, 3
    addi x5, x5, 4
    slli x6, x5, 2
`,
		},
		{
			// Word-width ops with x0 as the shifted value hit the same
			// positional-operand bug in its nastiest form: sraiw-family
			// results were the (sign-extended) shift amount instead of 0.
			name: "word_width_x0",
			body: `
    li x20, 0x7fffffff
    addiw x5, x20, 1
    sraiw x6, x20, 4
    srliw x7, x20, 4
    slliw x9, x20, 1
    sraw x10, x0, x20
    srlw x11, x0, x20
    addw x12, x0, x20
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			end := exitEpilogue
			if tc.name == "instret_excludes_trapped" {
				end = "\n    ebreak\n"
			}
			checkClean(t, "_start:\n    la x8, buf\n"+tc.body+end+
				".align 6\nbuf:\n    .dword 1, 2, 3, 4, 5, 6, 7, 8\n")
		})
	}
}

// TestLRSCReservation pins the reservation semantics both models must share:
// any store to the reserved 64-byte line — including the hart's own — kills
// the reservation, and an SC without a live reservation fails. A wrong path
// hits ebreak, so the exit code checks the semantics themselves, not just
// that both models agree.
func TestLRSCReservation(t *testing.T) {
	r := checkClean(t, `
_start:
    la x8, buf
    li x5, 111
    li x6, 222

    # own store to the reserved line kills the reservation: SC must fail
    lr.d x9, (x8)
    sd x5, 8(x8)
    sc.d x10, x6, (x8)
    bnez x10, sc_failed
    ebreak
sc_failed:
    # store to a different line leaves the reservation live: SC succeeds
    lr.d x9, (x8)
    sd x5, 64(x8)
    sc.d x10, x6, (x8)
    beqz x10, sc_ok
    ebreak
sc_ok:
    # orphan SC (no reservation) fails
    sc.d x10, x5, (x8)
    bnez x10, orphan_failed
    ebreak
orphan_failed:
`+exitEpilogue+`
.align 6
buf:
    .dword 0, 0, 0, 0, 0, 0, 0, 0
    .dword 0, 0, 0, 0, 0, 0, 0, 0
`)
	if r.ExitCode != 0 {
		t.Fatalf("exit code = %d, want 0 (an SC branch went the wrong way)", r.ExitCode)
	}
}

// TestTrapHalt checks the drain-phase synchronization on a trapping finale:
// the core flush-halts on ebreak without committing it, the emulator takes
// one catch-up step, and both land on the same exit code and instret.
func TestTrapHalt(t *testing.T) {
	r := checkClean(t, `
_start:
    li x5, 10
    addi x5, x5, 5
    ebreak
`)
	if r.ExitCode != -(16 + 3) { // breakpoint cause 3
		t.Fatalf("exit code = %d, want %d", r.ExitCode, -(16 + 3))
	}
	if r.Commits != 2 {
		t.Fatalf("commits = %d, want 2", r.Commits)
	}
}

// TestFuzzFixedSeeds is the property-test entry point: a fixed-seed sweep
// that must stay divergence-free at HEAD. Budget is a fraction of a second.
func TestFuzzFixedSeeds(t *testing.T) {
	frs, err := RunSeeds(context.Background(), seedRange(1, 60), 40, Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frs {
		if fr.Diverged {
			t.Errorf("seed %d diverged:\n%s\nshrunk:\n%s",
				fr.Seed, fr.Result.Report, fr.Shrunk)
		}
	}
}

// TestRunSeedsDeterministic checks that results are byte-identical at any
// worker count: the pool must not leak scheduling order into outcomes.
func TestRunSeedsDeterministic(t *testing.T) {
	seeds := seedRange(1, 12)
	a, err := RunSeeds(context.Background(), seeds, 40, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeeds(context.Background(), seeds, 40, Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("results differ between jobs=1 and jobs=8")
	}
}

// TestShrinkMinimizes plants a single real divergence (a deliberately
// desynced data word via self-modifying code with no fence.i would be
// out-of-scope, so instead corrupt the golden model through an unmodeled
// CSR write) — cheaper: just check the shrinker machinery on a synthetic
// program by dropping segments that don't matter.
func TestShrinkMinimizes(t *testing.T) {
	// Build a program whose divergence (if any) would come from one
	// segment; with a healthy HEAD there is none, so instead verify the
	// shrinker preserves a diverging predicate by driving it directly.
	p := &program{
		inits: []string{"    li x5, 1"},
		segs: [][]string{
			{"    addi x6, x5, 1"},
			{"    addi x7, x5, 2"},
			{"    addi x9, x5, 3"},
		},
	}
	src, r := shrink(p, Options{})
	if r.Diverged {
		t.Fatalf("healthy program reported divergent:\n%s", r.Report)
	}
	// With nothing diverging, the mask must stay full: shrink only keeps
	// removals that preserve a failure.
	for _, seg := range []string{"addi x6", "addi x7", "addi x9"} {
		if !strings.Contains(src, seg) {
			t.Fatalf("shrink dropped segment %q from a passing program", seg)
		}
	}
}

func seedRange(lo, hi int64) []int64 {
	var s []int64
	for i := lo; i <= hi; i++ {
		s = append(s, i)
	}
	return s
}
