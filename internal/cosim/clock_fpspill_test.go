package cosim

import (
	"strings"
	"testing"

	"xt910/isa"
)

// TestClockCSRReadsCompareModuloClock pins the clock-CSR comparison policy:
// reads of cycle/time/mcycle land different values in the two models, but the
// checker adopts the core's committed value, so arithmetic, branches and
// stores computed *from* the timestamp are still compared exactly.
func TestClockCSRReadsCompareModuloClock(t *testing.T) {
	checkClean(t, `
_start:
    la x8, buf
    csrr x5, cycle
    csrr x6, time
    csrr x7, mcycle
    sub  x9, x7, x5
    sd   x5, 0(x8)
    sd   x9, 8(x8)
    csrr x10, cycle
    bltu x10, x5, bad       # the clock never goes backwards
    csrr x11, instret
    add  x12, x11, x9
`+exitEpilogue+`
bad:
    li a7, 93
    li a0, 1
    ecall
.align 6
buf:
    .dword 0, 0, 0, 0
`)
}

// TestSPRelativeFPSpills pins the c.fldsp/c.fsdsp path outside the scratch
// buffer: FP doubles spilled sp-relative across the full 9-bit compressed
// offset range (0..504) and reloaded into different registers.
func TestSPRelativeFPSpills(t *testing.T) {
	checkClean(t, `
_start:
    la x8, buf
    li x5, 0x3ff0000000000001
    fmv.d.x f8, x5
    li x6, -1
    fmv.d.x f3, x6
    fsd f8, 0(x2)
    fsd f3, 504(x2)
    fsd f8, 248(x2)
    fld f9, 0(x2)
    fld f10, 504(x2)
    fld f11, 248(x2)
    fmv.x.d x7, f10
    sd x7, 0(x8)
    fadd.d f12, f9, f11
`+exitEpilogue+`
.align 6
buf:
    .dword 0, 0, 0, 0
`)
}

// TestCompressedFPSpillEncodings proves the spill forms the fuzzer emits
// actually exercise the compressed encodings: sp-relative FP doubles at
// 8-byte offsets within 0..504 must shrink to c.fldsp/c.fsdsp.
func TestCompressedFPSpillEncodings(t *testing.T) {
	for _, off := range []int64{0, 24, 248, 504} {
		fsd := isa.Inst{Op: isa.FSD, Rs1: isa.SP, Rs2: isa.F(8), Imm: off}
		if _, ok := isa.Compress(fsd); !ok {
			t.Errorf("fsd f8, %d(sp) did not compress to c.fsdsp", off)
		}
		fld := isa.Inst{Op: isa.FLD, Rd: isa.F(9), Rs1: isa.SP, Imm: off}
		if _, ok := isa.Compress(fld); !ok {
			t.Errorf("fld f9, %d(sp) did not compress to c.fldsp", off)
		}
	}
	// outside the 9-bit uimm range there is no compressed form
	if _, ok := isa.Compress(isa.Inst{Op: isa.FSD, Rs1: isa.SP, Rs2: isa.F(8), Imm: 512}); ok {
		t.Error("fsd f8, 512(sp) must not compress (offset out of range)")
	}
}

// TestFuzzerEmitsFPSpillsAndClockReads is the fixed-seed coverage regression:
// across the standard seed sweep the generator must produce sp-relative FP
// spills (compressing to c.fsdsp/c.fldsp) and clock-CSR reads, and those
// programs must stay divergence-free (TestFuzzFixedSeeds runs the same range).
func TestFuzzerEmitsFPSpillsAndClockReads(t *testing.T) {
	var fsdsp, fldsp, clock int
	for seed := int64(1); seed <= 60; seed++ {
		src := generate(seed, 40, Modes{}, 1).render(nil)
		for _, line := range strings.Split(src, "\n") {
			switch {
			case strings.Contains(line, "fsd f") && strings.Contains(line, "(x2)"):
				fsdsp++
			case strings.Contains(line, "fld f") && strings.Contains(line, "(x2)"):
				fldsp++
			case strings.Contains(line, "csrr") &&
				(strings.HasSuffix(line, " cycle") || strings.HasSuffix(line, " time") ||
					strings.HasSuffix(line, " mcycle")):
				clock++
			}
		}
	}
	for what, n := range map[string]int{"c.fsdsp spills": fsdsp, "c.fldsp reloads": fldsp, "clock CSR reads": clock} {
		if n == 0 {
			t.Errorf("seed sweep 1..60 generated no %s", what)
		}
	}
	t.Logf("coverage: %d fsdsp, %d fldsp, %d clock reads", fsdsp, fldsp, clock)
}

// TestFuzzClockSeedRegression replays a handful of fixed seeds end to end at a
// larger segment count than the sweep, as a dedicated regression for the
// clock-CSR and FP-spill generator paths.
func TestFuzzClockSeedRegression(t *testing.T) {
	for _, seed := range []int64{7, 19, 42} {
		fr := Fuzz(seed, 80, Options{})
		if fr.Err != nil {
			t.Fatalf("seed %d: %v", seed, fr.Err)
		}
		if fr.Diverged {
			t.Errorf("seed %d diverged:\n%s\nshrunk:\n%s", seed, fr.Result.Report, fr.Shrunk)
		}
	}
}
