package cosim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"xt910/internal/emu"
	"xt910/internal/mem"
)

// Checkpoint is a serializable image of a single-hart simulation at a commit
// boundary: the golden model's full architectural state (registers, PC,
// privilege, vector file, every materialized CSR), its memory pages, and the
// program output so far. Session.Checkpoint only hands one out after proving
// the timing core agrees with the golden model at that exact boundary — the
// same compare the lock-step checker runs at halt — so a checkpoint is valid
// by construction: resuming from it is indistinguishable from having run the
// prefix (see DESIGN.md "Checkpoint soundness").
type Checkpoint struct {
	// Commits is the lock-step-compared commit count at the boundary.
	Commits uint64 `json:"commits"`
	// Cycles is the core cycle count at the boundary (timing context only;
	// the restored machine is the functional model and carries no clock).
	Cycles uint64 `json:"cycles"`
	// Output is the program output accumulated up to the boundary.
	Output []byte `json:"output,omitempty"`
	// Arch is the golden model's architectural snapshot (no CSR subset —
	// the full raw CSR file lives in CSRs).
	Arch emu.ArchState `json:"arch"`
	// CSRs is the complete raw CSR file (emu.Machine.DumpCSRs), unfiltered
	// by any comparison policy.
	CSRs map[uint16]uint64 `json:"csrs"`
	// Pages is the sparse memory image, keyed by page number (addr >> 12).
	Pages map[uint64][]byte `json:"pages"`
}

// Checkpoint captures the session's state at the current commit boundary,
// first proving the boundary is a sound compare point: the timing core's
// architectural state, every dirty memory line and the program output must
// all match the golden model, exactly as the checker's halt-time drain would
// demand. A mismatch returns an error rather than a checkpoint — either the
// models have truly diverged (the checker will report it), or an instruction
// is architecturally in flight (a vector op executed ahead of retirement);
// in the latter case stepping further and retrying yields a clean boundary.
// Multi-hart sessions are not checkpointable: their state spans a shared
// memory mid-interleaving with no single-hart-local commit boundary.
func (s *Session) Checkpoint() (*Checkpoint, error) {
	if len(s.harts) != 1 {
		return nil, errors.New("cosim: checkpoint requires a single-hart session")
	}
	h := s.harts[0]
	k := h.k
	if k.failed {
		return nil, fmt.Errorf("cosim: session diverged (kind=%s); cannot checkpoint", k.kind)
	}
	if string(h.c.Output) != string(h.m.Output) {
		return nil, fmt.Errorf("cosim: output differs at boundary: core=%q emu=%q", h.c.Output, h.m.Output)
	}
	for line := range k.dirty {
		base := line << 6
		for off := uint64(0); off < 64; off += 8 {
			if cv, ev := h.c.Mem.Read(base+off, 8), h.m.Mem.Read(base+off, 8); cv != ev {
				return nil, fmt.Errorf("cosim: memory differs at boundary: [%#x] core=%#x emu=%#x",
					base+off, cv, ev)
			}
		}
	}
	if diffs := k.coreState().Diff(h.m.Snapshot(compareCSRs...)); len(diffs) > 0 {
		return nil, fmt.Errorf("cosim: models differ at boundary: %s", diffs[0])
	}
	return &Checkpoint{
		Commits: k.commits,
		Cycles:  h.c.Now(),
		Output:  append([]byte(nil), h.m.Output...),
		Arch:    h.m.Snapshot(),
		CSRs:    h.m.DumpCSRs(),
		Pages:   h.m.Mem.Snapshot(),
	}, nil
}

// NewMachine materializes a fresh golden model at the checkpoint: memory
// pages, the raw CSR file, the scalar and vector architectural state and the
// accumulated output are all restored. Running it forward produces exactly
// the execution the checkpointed session would have produced.
func (cp *Checkpoint) NewMachine() *emu.Machine {
	m := emu.New(mem.NewMemory())
	m.Mem.RestoreSnapshot(cp.Pages)
	m.RestoreCSRs(cp.CSRs)
	m.RestoreArch(cp.Arch)
	m.Output = append([]byte(nil), cp.Output...)
	return m
}

// Encode writes the checkpoint as one JSON document. Maps marshal with
// sorted keys, so the encoding of a given state is deterministic.
func (cp *Checkpoint) Encode(w io.Writer) error {
	return json.NewEncoder(w).Encode(cp)
}

// DecodeCheckpoint reads a checkpoint written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	cp := new(Checkpoint)
	if err := json.NewDecoder(r).Decode(cp); err != nil {
		return nil, err
	}
	return cp, nil
}
