// Package cosim is the lock-step differential checker of the repo's CDS
// toolchain (§IX): it runs the 12-stage OoO timing core (internal/core) and
// the golden architectural emulator (internal/emu) side by side on the same
// program and compares architectural state at every commit — PC, integer and
// FP register files, touched memory, the LR/SC reservation and the trap/CSR
// state. The first divergence is reported with a windowed commit trace.
//
// Comparison policy (see DESIGN.md "Differential co-simulation"):
//
//   - x/f registers, PC, instret, fcsr and the LR/SC reservation: every
//     commit (IEEE flags are speculative in the pipeline and accrue into
//     fcsr only at retire, which is what makes the per-commit compare sound).
//   - touched memory (64-byte lines written by either model): at every scalar
//     store/AMO commit and once more at halt. Vector stores write memory at
//     execute time in the pipeline (their own ordered queue guarantees older
//     stores have drained), so their lines are checked at the vector store's
//     own commit when no younger vector op has executed yet, and otherwise at
//     the next scalar memory commit or at halt.
//   - trap CSRs (mstatus, mepc/mcause/mtval, sepc/scause/stval, mscratch,
//     sscratch, satp, mie, medeleg, mtvec, stvec): at CSR/system commits and
//     at halt.
//   - vector register file, vl and vtype: at each vector store's commit while
//     that store is still the youngest executed vector op (vector ops execute
//     early relative to retirement, so an unconditional per-commit comparison
//     would race younger in-flight vector ops), and again at halt.
//   - cycle/time/mcycle CSR reads: compared modulo the clock. The golden
//     model has no cycle-accurate clock (emu.Machine.Cycles is a coarse
//     retired-instruction model), so after the emulator steps such a read the
//     checker overwrites its destination register with the value the core
//     committed. Everything downstream of the read — arithmetic on the
//     timestamp, branches over deltas — is then compared exactly, which lets
//     the fuzzer emit rdcycle/rdtime/csrr-mcycle instead of excluding them.
//
// # Multi-hart sessions
//
// With Options.Harts > 1 (or Modes.SMP) the session runs N lock-step hart
// pairs: N timing cores sharing one memory and one coherent L2, and N golden
// emulators sharing a second memory. Each emulator steps inside its own
// core's commit hook, so the emulator-world interleaving of architectural
// effects is exactly the core-world global commit order — which is what makes
// per-commit register compare and shared-memory compare sound across harts.
// Cross-hart coupling mirrors the SoC fabric: a committed store kills remote
// reservations, invalidates remote predecode, and squashes remote
// speculatively-executed overlapping loads (the snoop-triggered machine
// clear); the emulators broadcast reservation kills the same way. Each world
// gets its own CLINT (neither ticks — mtime stays 0 and deterministic) so
// MSIP IPIs deliver at identical commit positions.
//
// On top of the per-hart architectural compare, multi-hart sessions run the
// store-order oracle (see oracle.go): a global commit log of store/AMO/LR-SC
// retirement cross-checked against the coherence fabric's ownership
// transitions, catching protocol bugs — a store retiring on a hart that does
// not own the line — that register compare is structurally blind to.
package cosim

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"xt910/internal/asm"
	"xt910/internal/cache"
	"xt910/internal/coherence"
	"xt910/internal/core"
	"xt910/internal/emu"
	"xt910/internal/mem"
	"xt910/internal/mmu"
	"xt910/internal/soc"
	"xt910/isa"
)

// Options configures one lock-step run.
type Options struct {
	Config    core.Config // pipeline configuration; zero value means XT910Config
	MaxCycles uint64      // core cycle budget before declaring a hang (0: 10M)
	Window    int         // commit-trace window kept for the report (0: 16)

	// Modes is the composable mode set (paged / irq / smp). The legacy
	// Paged and IRQ booleans below are ORed in, and Harts > 1 implies SMP.
	Modes Modes

	// Harts is the number of lock-step hart pairs. 0 means 1, or 2 when
	// Modes.SMP is set; values are clamped to [1, 4] (one cluster, Table I).
	Harts int

	// Paged boots the program in S-mode under SV39 translation using the
	// identity-plus-offset layout (see mmu.IdentityPlusOffset): [0, 640K)
	// mapped onto itself RWX in 4K pages, plus a read-write non-executable
	// alias of the same physical range at +1GB. All exceptions are delegated
	// to S-mode and stvec is left at 0, so a page fault halts both models
	// with exit code -(16+cause) and the trap CSRs (scause/stval/sepc) are
	// compared like any other run.
	//
	// Deprecated: set Modes.Paged.
	Paged bool

	// IRQ makes the fuzzer generate interrupt-driven programs: an mtvec
	// handler prologue, WFI / MIE-toggle / interrupt-CSR segments, and a
	// deterministic per-seed schedule of IRQEvents (see below).
	//
	// Deprecated: set Modes.IRQ.
	IRQ bool

	// IRQSchedule, when non-empty, drives both models' external interrupt
	// sources with the same deterministic schedule of (commit index → mip
	// bits) events. An event arms once a model has retired AfterCommit
	// instructions and stays armed until that model delivers the interrupt;
	// because the core re-samples at every retirement boundary and the
	// emulator checks before every instruction, both models deliver at the
	// identical architectural point and the checker compares
	// mcause/mepc/mstatus at delivery. In a multi-hart session this is
	// hart 0's schedule; use IRQSchedules for the rest.
	IRQSchedule []IRQEvent

	// IRQSchedules are per-hart interrupt schedules for multi-hart runs
	// (index = hart id). When empty, IRQSchedule serves as hart 0's.
	IRQSchedules [][]IRQEvent

	// DisableStoreOracle turns the multi-hart store-order oracle off. The
	// oracle is a passive observer — simulated timing is identical either
	// way — so A/B runs isolate exactly what only the oracle can see.
	DisableStoreOracle bool

	// SeedTimeout, when positive, bounds the wall time of one fuzz seed in
	// RunSeeds. A seed that blows the deadline is retried once at twice the
	// budget and then reported with TimedOut set instead of failing the run.
	SeedTimeout time.Duration
}

// modes folds the deprecated booleans and the hart count into the mode set.
func (o Options) modes() Modes {
	m := o.Modes
	m.Paged = m.Paged || o.Paged
	m.IRQ = m.IRQ || o.IRQ
	m.SMP = m.SMP || o.Harts > 1
	return m
}

// Validate checks the fully resolved mode set — including the SMP implied by
// Harts > 1 and the deprecated Paged/IRQ booleans — against the Modes
// legality rules. A validated -modes spec is not enough on its own: Harts
// can smuggle SMP into a set whose spec alone was legal (e.g. paged with
// -harts 2), so callers that accept a hart count must validate the Options,
// not just the spec.
func (o Options) Validate() error { return o.modes().Validate() }

// effectiveHarts resolves the hart-pair count (see Options.Harts).
func (o Options) effectiveHarts() int {
	h := o.Harts
	if h <= 0 {
		if o.modes().SMP {
			return 2
		}
		return 1
	}
	if h > maxHarts {
		return maxHarts
	}
	return h
}

// hartSchedules normalizes the two schedule fields into one per-hart slice.
func (o Options) hartSchedules(harts int) [][]IRQEvent {
	out := make([][]IRQEvent, harts)
	if len(o.IRQSchedules) > 0 {
		for i := 0; i < harts && i < len(o.IRQSchedules); i++ {
			out[i] = o.IRQSchedules[i]
		}
		return out
	}
	if len(o.IRQSchedule) > 0 {
		out[0] = o.IRQSchedule
	}
	return out
}

// IRQEvent is one entry of an interrupt-injection schedule: the external
// source drives Bits into mip once the model has retired AfterCommit
// instructions, until the resulting interrupt is taken.
type IRQEvent struct {
	AfterCommit uint64 // commit index at which the source arms
	Bits        uint64 // driven mip bits: 1<<3 MSI, 1<<7 MTI, 1<<11 MEI
}

// Paged-mode memory layout. The program, stack and scratch buffer live in
// the identity window; the page tables sit just above it, outside every
// mapping, so the guest cannot scribble over them.
const (
	pagedPhysSize  = 0xA0000
	pagedOffset    = 0x40000000
	pagedTableBase = 0x100000
)

// hookModels, when set (tests only), runs after both models are constructed
// and configured, immediately before the first cycle (single-hart sessions).
// Tests use it to perturb one model and prove the checker catches a given
// divergence class.
var hookModels func(c *core.Core, m *emu.Machine)

// Result summarises one lock-step run.
type Result struct {
	Commits  uint64 // lock-step-compared commits, summed over all harts
	Cycles   uint64
	ExitCode int
	Diverged bool
	Kind     string // first divergence class: pc xreg freg mem csr lrsc instret vec irq order halt exit output hang emuerr
	Report   string // human-readable report with the windowed commit trace

	// Hart is the hart pair that diverged (0 in single-hart runs).
	Hart int

	// FailCommit is the diverging hart's local commit index of the first
	// divergence (fault-injection campaigns use it to measure detection
	// latency in commits).
	FailCommit uint64

	// Field names the first diverging architectural field within the Kind
	// ("x5", "fcsr", "pc", ...): the label the checker printed before the
	// first ':' of its detail line. Empty for divergence kinds without a
	// field-granular detail.
	Field string

	// OpClass is the instruction class of the committing instruction at the
	// divergence point (isa.Class.String()), or "none" when the divergence
	// was detected outside a commit (hang, drain-time compare).
	OpClass string

	// TimedOut marks a run killed by its context deadline (RunContext); the
	// comparison state is whatever had been checked when the clock ran out.
	TimedOut bool
}

// Signature is the root-cause bucket of a divergence: the comparison kind,
// the first diverging field and the class of the instruction that exposed
// it, joined as "kind/field/opclass". Two repros with the same signature are
// overwhelmingly the same underlying bug, which is what campaign corpora
// dedup on. Non-diverged results return "".
func (r Result) Signature() string {
	if !r.Diverged {
		return ""
	}
	field, opClass := r.Field, r.OpClass
	if field == "" {
		field = "none"
	}
	if opClass == "" {
		opClass = "none"
	}
	return r.Kind + "/" + field + "/" + opClass
}

// compareCSRs is the trap/translation state checked at CSR and system-class
// commits and at halt. Counters are deliberately absent: instret is checked
// directly against the commit count, and cycle/time have no golden value.
var compareCSRs = []uint16{
	isa.CSRMstatus, isa.CSRMtvec, isa.CSRMepc, isa.CSRMcause, isa.CSRMtval,
	isa.CSRMscratch, isa.CSRMedeleg, isa.CSRMie, isa.CSRMip, isa.CSRMideleg,
	isa.CSRSatp,
	isa.CSRStvec, isa.CSRSepc, isa.CSRScause, isa.CSRStval, isa.CSRSscratch,
	isa.CSRFcsr,
}

// HartSession is one lock-step hart pair inside a Session: a timing core, its
// golden emulator, and the checker comparing them at this hart's own commit
// boundary.
type HartSession struct {
	id  int
	c   *core.Core
	m   *emu.Machine
	k   *checker
	arm *irqArm

	parkRun uint64 // consecutive cycles this hart has been WFI-parked
}

// ID returns the hart index.
func (h *HartSession) ID() int { return h.id }

// Core exposes this hart's timing model (fault injection, inspection).
func (h *HartSession) Core() *core.Core { return h.c }

// Emu exposes this hart's golden model.
func (h *HartSession) Emu() *emu.Machine { return h.m }

// Commits returns this hart's lock-step-compared commit count.
func (h *HartSession) Commits() uint64 { return h.k.commits }

// Session is one in-progress lock-step run that the caller drives cycle by
// cycle: an array of hart pairs (one in single-hart runs) over shared
// memories, plus the store-order oracle when more than one hart is present.
// It exposes both models of every pair so fault-injection campaigns can
// perturb microarchitectural state at a chosen cycle and let the checker
// decide whether the corruption is detected; Run and RunContext are thin
// loops on top of it.
type Session struct {
	harts  []*HartSession
	l2     *coherence.L2
	oracle *storeOracle

	maxCycles     uint64
	cyc           uint64
	globalCommits uint64
	failHart      int // first hart pair to diverge, -1 while clean
}

// irqArm is one hart's interrupt-injection schedule state: each model
// consumes events independently (coreIdx / emuIdx), which stay equal at every
// comparison point because both models deliver at the same commit index.
type irqArm struct {
	events  []IRQEvent
	coreIdx int
	emuIdx  int
}

// armedCore returns the mip bits the schedule drives into the core at the
// given commit count.
func (a *irqArm) armedCore(commits uint64) uint64 {
	if a.coreIdx < len(a.events) && commits >= a.events[a.coreIdx].AfterCommit {
		return a.events[a.coreIdx].Bits
	}
	return 0
}

func (a *irqArm) armedEmu(instret uint64) uint64 {
	if a.emuIdx < len(a.events) && instret >= a.events[a.emuIdx].AfterCommit {
		return a.events[a.emuIdx].Bits
	}
	return 0
}

// consumeCore advances the core-side schedule cursor when the delivered
// interrupt was (or could have been) the armed event's. The guard matters in
// mixed CLINT+schedule sessions: an MSIP IPI must not eat a scheduled timer
// event, or the two models' cursors drift apart when their CLINT traffic
// interleaves differently with schedule arming. In pure-schedule runs the
// guard is always true at delivery (the pending bits are exactly the armed
// event's), so single-hart behaviour is unchanged.
func (a *irqArm) consumeCore(cause, commits uint64) {
	if a.coreIdx < len(a.events) {
		if ev := a.events[a.coreIdx]; commits >= ev.AfterCommit && ev.Bits&(1<<cause) != 0 {
			a.coreIdx++
		}
	}
}

func (a *irqArm) consumeEmu(cause, instret uint64) {
	if a.emuIdx < len(a.events) {
		if ev := a.events[a.emuIdx]; instret >= ev.AfterCommit && ev.Bits&(1<<cause) != 0 {
			a.emuIdx++
		}
	}
}

const (
	stackBase = 0x80000

	// maxHarts bounds a session to one cluster's worth of cores (Table I).
	maxHarts = 4

	// smpStackStride separates per-hart stacks in multi-hart sessions
	// (32 KB each, descending from stackBase).
	smpStackStride = 0x8000
)

// NewSession builds the models for an already-assembled program and wires the
// lock-step checker (each emulator steps once per commit inside its core's
// retire hook). Single-hart sessions use two private memories; multi-hart
// sessions share one memory and one coherent L2 per world and run the program
// SPMD, one stack per hart.
func NewSession(p *asm.Program, opts Options) *Session {
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 10_000_000
	}
	if opts.Window == 0 {
		opts.Window = 16
	}
	cfg := opts.Config
	if cfg.RetireWidth == 0 {
		cfg = core.XT910Config()
	}
	modes := opts.modes()
	harts := opts.effectiveHarts()
	scheds := opts.hartSchedules(harts)

	s := &Session{maxCycles: opts.MaxCycles, failHart: -1}

	cmem := mem.NewMemory()
	s.l2 = coherence.NewL2(cache.Config{
		SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, HitLatency: 10, ECC: true, Parity: true,
	}, mem.NewDRAM())

	if harts == 1 {
		c := core.New(cfg, 0, cmem, s.l2)
		p.LoadInto(cmem)
		c.Reset(p.Entry, stackBase)

		m := emu.New(mem.NewMemory())
		p.LoadInto(m.Mem)
		m.PC = p.Entry
		m.X[isa.SP] = stackBase

		if modes.Paged {
			setupPaged(c, m)
		}

		k := &checker{c: c, m: m, window: opts.Window, dirty: make(map[uint64]struct{})}
		c.CommitHook = k.onCommit
		c.MemWriteHook = func(pa uint64, size int, from int) { k.markDirty(pa, size) }
		m.OnStore = func(pa uint64, size int) { k.markDirty(pa, size) }

		hs := &HartSession{id: 0, c: c, m: m, k: k}
		s.harts = []*HartSession{hs}
		if sched := scheds[0]; len(sched) > 0 {
			s.wireIRQ(hs, sched, nil, nil)
		}
		if hookModels != nil {
			hookModels(c, m)
		}
		return s
	}

	// Multi-hart: one memory image per world, shared by every hart of that
	// world, and a CLINT per world for MSIP IPIs. Neither CLINT ticks, so
	// mtime reads 0 in both worlds and every run stays deterministic.
	clintC := soc.NewCLINT(harts)
	clintE := soc.NewCLINT(harts)
	if !opts.DisableStoreOracle {
		s.oracle = newStoreOracle(s.l2, clintC)
	}
	emem := mem.NewMemory()
	p.LoadInto(cmem)
	p.LoadInto(emem)
	dirty := make(map[uint64]struct{})
	for h := 0; h < harts; h++ {
		c := core.New(cfg, h, cmem, s.l2)
		// Commit-time ownership re-acquire: makes the oracle's invariant —
		// a store retires only while its hart owns the line — true by
		// construction for a healthy fabric.
		c.OwnStoresAtCommit = true
		c.AtomicsAtCommit = true
		c.MMIO = clintC
		c.Reset(p.Entry, stackBase-uint64(h)*smpStackStride)

		m := emu.New(emem)
		m.MMIO = clintE
		m.PC = p.Entry
		m.X[isa.SP] = stackBase - uint64(h)*smpStackStride
		m.SetCSR(isa.CSRMhartid, uint64(h))

		k := &checker{c: c, m: m, window: opts.Window, dirty: dirty, hart: h, multi: true, checkIRQ: true}
		s.harts = append(s.harts, &HartSession{id: h, c: c, m: m, k: k})
	}
	for _, hs := range s.harts {
		hs := hs
		c, m, k := hs.c, hs.m, hs.k
		c.CommitHook = func(ci core.Commit) { s.smpCommit(hs, ci) }
		// Committed-write broadcast, mirroring soc.System.killReservations:
		// remote reservations die, remote predecode over the range drops,
		// and remote speculatively-executed overlapping loads squash.
		c.MemWriteHook = func(pa uint64, size int, from int) {
			k.markDirty(pa, size)
			for _, o := range s.harts {
				if o.c != c {
					o.c.KillReservation(pa, size)
					o.c.InvalidatePredecode(pa, size)
					o.c.SquashCoherentLoads(pa, size)
				}
			}
		}
		m.OnStore = func(pa uint64, size int) {
			k.markDirty(pa, size)
			for _, o := range s.harts {
				if o.m != m {
					o.m.KillReservation(pa, size)
				}
			}
		}
		s.wireIRQ(hs, scheds[hs.id], clintC, clintE)
	}
	return s
}

// wireIRQ connects one hart pair's interrupt sources: the per-hart schedule
// (when present) and, in multi-hart sessions, the per-world CLINT's MSIP bit.
// The core side keys schedule arming on the checker's commit count rather
// than Stats.Retired: the commit hook (and hence the checker's CSR compares)
// runs before Stats.Retired increments, so k.commits is the count that
// matches the emulator's Instret at every point where either model reads mip
// or decides deliverability.
func (s *Session) wireIRQ(hs *HartSession, sched []IRQEvent, clintC, clintE *soc.CLINT) {
	c, m, k := hs.c, hs.m, hs.k
	var arm *irqArm
	if len(sched) > 0 {
		// Private copy: the WFI force-arm mutates the schedule, and callers
		// (the shrinker in particular) re-run the same Options.
		arm = &irqArm{events: append([]IRQEvent(nil), sched...)}
		hs.arm = arm
		k.irq = arm
		k.checkIRQ = true
	}
	if arm == nil && clintC == nil {
		return
	}
	hart := hs.id
	c.IntSource = func(int) uint64 {
		var bits uint64
		if clintC != nil && clintC.SoftPending(hart) {
			bits |= 1 << isa.IntMSoft
		}
		if arm != nil {
			bits |= arm.armedCore(k.commits)
		}
		return bits
	}
	c.InterruptHook = func(cause, resume uint64) {
		if arm != nil {
			arm.consumeCore(cause, k.commits)
		}
		k.coreIRQ = true
		k.coreCause, k.coreResume = cause, resume
	}
	m.IntSource = func() uint64 {
		var bits uint64
		if clintE != nil && clintE.SoftPending(hart) {
			bits |= 1 << isa.IntMSoft
		}
		if arm != nil {
			bits |= arm.armedEmu(m.Instret)
		}
		return bits
	}
	m.OnInterrupt = func(cause uint64) {
		if arm != nil {
			arm.consumeEmu(cause, m.Instret)
		}
		k.emuIRQ = true
		k.emuCause = cause
	}
}

// smpCommit is the multi-hart commit hook: the per-hart checker first, then
// the store-order oracle over the global retirement stream.
func (s *Session) smpCommit(hs *HartSession, ci core.Commit) {
	s.globalCommits++
	k := hs.k
	wasFailed := k.failed
	k.onCommit(ci)
	if s.oracle != nil && !k.failed {
		if detail := s.oracle.commit(hs.id, s.globalCommits, ci); detail != nil {
			k.fail(ci, "order", detail...)
		}
	}
	if k.failed && !wasFailed && s.failHart < 0 {
		s.failHart = hs.id
	}
}

// Harts returns the number of lock-step hart pairs.
func (s *Session) Harts() int { return len(s.harts) }

// Hart returns one lock-step hart pair.
func (s *Session) Hart(i int) *HartSession { return s.harts[i] }

// L2 exposes the (core-world) shared L2 so experiments can perturb coherence
// state — coherence.InjectOwnershipGrant in particular — mid-run.
func (s *Session) L2() *coherence.L2 { return s.l2 }

// Core exposes hart 0's timing model.
//
// Deprecated: use Hart(0).Core(); kept for single-hart callers.
func (s *Session) Core() *core.Core { return s.harts[0].c }

// Emu exposes hart 0's golden model.
//
// Deprecated: use Hart(0).Emu(); kept for single-hart callers.
func (s *Session) Emu() *emu.Machine { return s.harts[0].m }

// Commits returns the number of lock-step-compared commits so far, summed
// over all harts.
func (s *Session) Commits() uint64 {
	var n uint64
	for _, h := range s.harts {
		n += h.k.commits
	}
	return n
}

// Cycles returns the core cycle count so far.
func (s *Session) Cycles() uint64 { return s.harts[0].c.Now() }

// Done reports whether the run is over: every core halted, any checker
// failed, or the cycle budget ran out.
func (s *Session) Done() bool {
	if s.cyc >= s.maxCycles {
		return true
	}
	all := true
	for _, h := range s.harts {
		if h.k.failed {
			return true
		}
		if !h.c.Halted {
			all = false
		}
	}
	return all
}

// wfiParkWindow is how many cycles a WFI-parked hart idles before the session
// force-arms the next schedule event to wake it. The delay makes the park
// observable (Stats.WFIParkedCycles, the frontend CPI bucket) while still
// bounding it — a parked hart can never idle to the cycle budget.
const wfiParkWindow = 16

// Step advances every live core by one cycle (each emulator follows inside
// its core's commit hook; cores step in hart order, so the global commit
// interleaving is deterministic). A hart parked on WFI for wfiParkWindow
// cycles force-arms its next schedule event — derived purely from simulation
// state, so runs stay deterministic — instead of idling to the cycle budget.
func (s *Session) Step() {
	if s.Done() {
		return
	}
	for _, h := range s.harts {
		if !h.c.Halted {
			h.c.Step()
		}
	}
	s.cyc++
	for _, h := range s.harts {
		if h.arm != nil && h.c.WFIParked() {
			h.parkRun++
			if h.parkRun >= wfiParkWindow {
				s.forceArm(h)
			}
		} else {
			h.parkRun = 0
		}
	}
}

// forceArm wakes a WFI-parked hart: the next schedule event's arm point is
// pulled down to the current commit index, or a synthetic timer event is
// appended when the schedule is exhausted. Both models see the mutation (the
// schedule is shared), so delivery still happens at the same commit index.
func (s *Session) forceArm(h *HartSession) {
	arm := h.arm
	if arm.coreIdx < len(arm.events) {
		if h.k.commits < arm.events[arm.coreIdx].AfterCommit {
			arm.events[arm.coreIdx].AfterCommit = h.k.commits
		}
		return
	}
	arm.events = append(arm.events, IRQEvent{AfterCommit: h.k.commits, Bits: 1 << isa.IntMTimer})
}

// Finish runs the end-of-program comparison and assembles the Result. Call
// once, after Done.
func (s *Session) Finish() Result {
	h0 := s.harts[0]
	res := Result{Commits: s.Commits(), Cycles: h0.c.Now(), ExitCode: h0.c.ExitCode}
	if s.failHart < 0 {
		for _, h := range s.harts {
			if h.k.failed {
				// Single-hart sessions have no commit wrapper latching this.
				s.failHart = h.id
				break
			}
		}
	}
	if s.failHart < 0 {
		for _, h := range s.harts {
			h.k.drain()
			if h.k.failed {
				s.failHart = h.id
				break
			}
		}
	}
	if s.failHart >= 0 {
		k := s.harts[s.failHart].k
		res.Diverged = true
		res.Kind = k.kind
		res.Field = k.field
		res.Report = k.report()
		res.FailCommit = k.failCommit
		res.Hart = s.failHart
		if k.failInst.Op != 0 {
			res.OpClass = k.failInst.Op.Class().String()
		} else {
			res.OpClass = "none"
		}
	}
	return res
}

// Run drives a program to completion under the lock-step checker.
func Run(p *asm.Program, opts Options) Result {
	s := NewSession(p, opts)
	for !s.Done() {
		s.Step()
	}
	return s.Finish()
}

// RunContext is Run with cancellation: the context is polled every 1024
// cycles, and an expired deadline returns a Result with TimedOut set (not a
// divergence) holding whatever had been compared so far.
func RunContext(ctx context.Context, p *asm.Program, opts Options) Result {
	s := NewSession(p, opts)
	for !s.Done() {
		for i := 0; i < 1024 && !s.Done(); i++ {
			s.Step()
		}
		if ctx.Err() != nil {
			h0 := s.harts[0]
			return Result{Commits: s.Commits(), Cycles: h0.c.Now(), ExitCode: h0.c.ExitCode, TimedOut: true}
		}
	}
	return s.Finish()
}

// setupPaged builds the identity-plus-offset SV39 page table into both
// models' memories and drops them to S-mode with every exception delegated.
// The layout parameters are compile-time constants, so a build failure here
// is a programming error, not a run outcome.
func setupPaged(c *core.Core, m *emu.Machine) {
	var satp uint64
	for _, mm := range []*mem.Memory{c.Mem, m.Mem} {
		b, err := mmu.IdentityPlusOffset(mm, pagedTableBase, pagedPhysSize, pagedOffset)
		if err != nil {
			panic(err)
		}
		satp = b.Satp(0)
	}
	c.SetCSR(isa.CSRSatp, satp)
	c.SetCSR(isa.CSRMedeleg, 0xFFFF)
	c.SetPrivilege(isa.PrivS)
	m.SetCSR(isa.CSRSatp, satp)
	m.SetCSR(isa.CSRMedeleg, 0xFFFF)
	m.Priv = isa.PrivS
}

type checker struct {
	c      *core.Core
	m      *emu.Machine
	window int
	hart   int  // hart pair index (0 in single-hart sessions)
	multi  bool // part of a multi-hart session (report labelling)

	commits uint64
	dirty   map[uint64]struct{} // 64-byte lines written by either model (shared across harts)
	trace   []string            // rolling window of committed instructions

	// Interrupt-delivery bookkeeping: each model's delivery latches its
	// cause here; the next commit — the handler's first instruction —
	// verifies both delivered the same interrupt and compares the delivery
	// CSRs. checkIRQ turns the check on (schedule runs and every multi-hart
	// session); irq is non-nil only when a schedule drives this hart, and
	// adds the schedule-position compare.
	checkIRQ   bool
	irq        *irqArm
	coreIRQ    bool
	emuIRQ     bool
	coreCause  uint64
	coreResume uint64
	emuCause   uint64

	failed     bool
	kind       string
	field      string
	detail     []string
	failCommit uint64
	failPC     uint64
	failInst   isa.Inst
}

// divergenceField extracts the diverging-field label from the first detail
// line: the "x5" of "x5: core=... emu=...". Memory lines carry an address,
// not a field — the address is incidental to the root cause, so every memory
// divergence buckets under "addr". Prose details (no "label:" prefix) yield
// the empty string.
func divergenceField(detail []string) string {
	if len(detail) == 0 {
		return ""
	}
	d := detail[0]
	i := strings.IndexByte(d, ':')
	if i <= 0 {
		return ""
	}
	f := d[:i]
	if strings.ContainsAny(f, " =") {
		return "" // a sentence, not a field label
	}
	if strings.HasPrefix(f, "[") {
		return "addr"
	}
	return f
}

func (k *checker) markDirty(addr uint64, size int) {
	for line := addr >> 6; line <= (addr+uint64(size)-1)>>6; line++ {
		k.dirty[line] = struct{}{}
	}
}

func (k *checker) fail(ci core.Commit, kind string, detail ...string) {
	if k.failed {
		return
	}
	k.failed = true
	k.kind = kind
	k.field = divergenceField(detail)
	k.detail = detail
	k.failCommit = k.commits
	k.failPC = ci.PC
	k.failInst = ci.Inst
}

// onCommit fires from the core's retire stage for every committed
// instruction; the emulator is stepped here so both models observe the same
// retirement order.
func (k *checker) onCommit(ci core.Commit) {
	if k.failed {
		return
	}
	if k.m.Halted {
		k.fail(ci, "halt", "emulator halted while the core is still committing")
		return
	}
	if k.m.PC != ci.PC {
		// The emulator may be one step behind across a trap the core took
		// without committing (trap handlers redirect without a commit
		// record). Give it exactly one catch-up step.
		if err := k.m.Step(); err != nil {
			k.fail(ci, "emuerr", err.Error())
			return
		}
	}
	if k.m.Halted {
		k.fail(ci, "halt", "emulator halted while the core is still committing")
		return
	}
	if k.m.PC != ci.PC {
		k.fail(ci, "pc", fmt.Sprintf("core commits pc=%#x but emulator is at pc=%#x", ci.PC, k.m.PC))
		return
	}
	if err := k.m.Step(); err != nil {
		k.fail(ci, "emuerr", err.Error())
		return
	}
	k.commits++
	k.pushTrace(ci)

	// Interrupt-delivery check: the core's delivery latched coreIRQ and the
	// emulator's catch-up step (which consumed the same schedule event before
	// executing anything) latched emuIRQ; the first commit after delivery —
	// the handler's first instruction — must see both or neither, the same
	// cause, and identical post-delivery trap state.
	if k.checkIRQ && (k.coreIRQ || k.emuIRQ) {
		if k.coreIRQ != k.emuIRQ {
			k.fail(ci, "irq", fmt.Sprintf("delivery mismatch: core took=%v (cause=%d) emu took=%v (cause=%d)",
				k.coreIRQ, k.coreCause, k.emuIRQ, k.emuCause))
			return
		}
		if k.coreCause != k.emuCause {
			k.fail(ci, "irq", fmt.Sprintf("cause: core=%d emu=%d", k.coreCause, k.emuCause))
			return
		}
		if k.irq != nil && k.irq.coreIdx != k.irq.emuIdx {
			k.fail(ci, "irq", fmt.Sprintf("schedule position: core=%d emu=%d", k.irq.coreIdx, k.irq.emuIdx))
			return
		}
		if ev := k.m.CSR(isa.CSRMepc); ev != k.coreResume {
			k.fail(ci, "irq", fmt.Sprintf("resume pc: core mepc=%#x emu mepc=%#x", k.coreResume, ev))
			return
		}
		for _, n := range []uint16{isa.CSRMcause, isa.CSRMepc, isa.CSRMstatus, isa.CSRMtvec} {
			if cv, ev := k.c.CSR(n), k.m.CSR(n); cv != ev {
				k.fail(ci, "irq", fmt.Sprintf("%s at delivery: core=%#x emu=%#x", isa.CSRName(n), cv, ev))
				return
			}
		}
		k.coreIRQ, k.emuIRQ = false, false
	}

	// cycle/time reads diverge by construction (the golden model has no
	// clock): adopt the core's committed value so the comparison covers
	// everything computed *from* the timestamp rather than the timestamp
	// itself (see the package comment).
	if isCycleCSRRead(ci) {
		k.m.X[ci.Inst.Rd.Index()] = ci.RdVal
	}

	for i := 1; i < 32; i++ {
		if cv, ev := k.c.Reg(isa.X(i)), k.m.X[i]; cv != ev {
			k.fail(ci, "xreg", fmt.Sprintf("%s: core=%#x emu=%#x", isa.X(i), cv, ev))
			return
		}
	}
	for i := 0; i < 32; i++ {
		if cv, ev := k.c.Reg(isa.F(i)), k.m.F[i]; cv != ev {
			k.fail(ci, "freg", fmt.Sprintf("%s: core=%#x emu=%#x", isa.F(i), cv, ev))
			return
		}
	}
	cOK, cAddr := k.c.Reservation()
	eOK, eAddr := k.m.Reservation()
	if cOK != eOK || (cOK && cAddr != eAddr) {
		k.fail(ci, "lrsc", fmt.Sprintf("reservation: core valid=%v addr=%#x, emu valid=%v addr=%#x",
			cOK, cAddr, eOK, eAddr))
		return
	}
	if k.m.Instret != k.commits {
		k.fail(ci, "instret", fmt.Sprintf("emulator instret=%d after %d core commits",
			k.m.Instret, k.commits))
		return
	}
	// fcsr accrues on every FP commit in both models (flags at execute are
	// speculative in the core and land at retire), so it is comparable at
	// every commit, unlike the clocked counters.
	if cv, ev := k.c.CSR(isa.CSRFcsr), k.m.CSR(isa.CSRFcsr); cv != ev {
		k.fail(ci, "fcsr", fmt.Sprintf("fcsr: core=%#x emu=%#x", cv, ev))
		return
	}
	switch ci.Inst.Op.Class() {
	case isa.ClassStore, isa.ClassAMO:
		k.compareMemory(ci)
	case isa.ClassCSR, isa.ClassSys:
		k.compareCSRState(ci)
	case isa.ClassVStore:
		k.compareVector(ci)
	}
}

// compareVector checks the full vector file, vl and vtype at a vector
// store's commit — plus the dirty memory lines, which are safe to compare
// here for the same reason the file is. Vector ops execute (and mutate the
// architectural file) ahead of retirement, so the comparison only runs when
// the committing op is still the youngest executed vector op; otherwise a
// younger in-flight vector op would make the core look diverged. Halt-time
// comparison in drain covers whatever this skips.
func (k *checker) compareVector(ci core.Commit) {
	if k.c.Vec == nil || k.c.LastVectorSeq() != ci.Seq {
		return
	}
	if cv, ev := k.c.Vec.VL, k.m.CSR(isa.CSRVl); cv != ev {
		k.fail(ci, "vec", fmt.Sprintf("vl: core=%d emu=%d", cv, ev))
		return
	}
	if cv, ev := uint64(k.c.Vec.VType), k.m.CSR(isa.CSRVtype); cv != ev {
		k.fail(ci, "vec", fmt.Sprintf("vtype: core=%#x emu=%#x", cv, ev))
		return
	}
	for r := 0; r < 32; r++ {
		if cb, eb := k.c.Vec.File.Bytes(r), k.m.Vec.File.Bytes(r); !bytes.Equal(cb, eb) {
			k.fail(ci, "vec", fmt.Sprintf("v%d: core=%x emu=%x", r, cb, eb))
			return
		}
	}
	k.compareMemory(ci)
}

// isCycleCSRRead reports whether a commit is a CSR-class access of a clock
// CSR landing in a comparable integer register.
func isCycleCSRRead(ci core.Commit) bool {
	if ci.Inst.Op.Class() != isa.ClassCSR || !ci.HasRd {
		return false
	}
	if !ci.Inst.Rd.IsX() || ci.Inst.Rd == isa.Zero {
		return false
	}
	switch ci.Inst.CSR {
	case isa.CSRCycle, isa.CSRTime, isa.CSRMcycle:
		return true
	}
	return false
}

// compareMemory checks every 64-byte line either model has written. It is
// only sound at scalar store/AMO commits and at halt (see the package
// comment for why vector-store commits are excluded). In multi-hart sessions
// the dirty set spans every hart — sound because the memories are shared and
// both worlds apply stores in the same global commit order.
func (k *checker) compareMemory(ci core.Commit) {
	for line := range k.dirty {
		base := line << 6
		for off := uint64(0); off < 64; off += 8 {
			if cv, ev := k.c.Mem.Read(base+off, 8), k.m.Mem.Read(base+off, 8); cv != ev {
				k.fail(ci, "mem", fmt.Sprintf("[%#x]: core=%#x emu=%#x", base+off, cv, ev))
				return
			}
		}
	}
}

func (k *checker) compareCSRState(ci core.Commit) {
	for _, n := range compareCSRs {
		if cv, ev := k.c.CSR(n), k.m.CSR(n); cv != ev {
			k.fail(ci, "csr", fmt.Sprintf("%s: core=%#x emu=%#x", isa.CSRName(n), cv, ev))
			return
		}
	}
}

// drain runs the end-of-program comparison after the core stops: halt state,
// exit code, output, final registers/memory/CSRs and the vector file.
func (k *checker) drain() {
	last := core.Commit{PC: k.m.PC}
	if !k.c.Halted {
		k.fail(last, "hang", fmt.Sprintf("core did not halt within the cycle budget (%d commits so far)", k.commits))
		return
	}
	// The core may have halted on a trap it never committed; let the
	// emulator execute that trapping instruction.
	if !k.m.Halted {
		if err := k.m.Step(); err != nil {
			k.fail(last, "emuerr", err.Error())
			return
		}
	}
	if !k.m.Halted {
		k.fail(last, "halt", fmt.Sprintf("core halted (exit=%d) but emulator is still running at pc=%#x",
			k.c.ExitCode, k.m.PC))
		return
	}
	if k.c.ExitCode != k.m.ExitCode {
		k.fail(last, "exit", fmt.Sprintf("exit code: core=%d emu=%d", k.c.ExitCode, k.m.ExitCode))
		return
	}
	if string(k.c.Output) != string(k.m.Output) {
		k.fail(last, "output", fmt.Sprintf("output: core=%q emu=%q", k.c.Output, k.m.Output))
		return
	}
	k.compareMemory(last)
	k.compareCSRState(last)
	if k.failed {
		return
	}
	if diffs := k.coreState().Diff(k.m.Snapshot(compareCSRs...)); len(diffs) > 0 {
		k.fail(last, "final", diffs...)
	}
}

// coreState assembles the core's architectural state as an emu.ArchState so
// the final comparison can reuse ArchState.Diff. PC and privilege are
// normalized to the emulator's (the drained core has no architectural PC to
// read back, and both models' trap CSRs are compared separately).
func (k *checker) coreState() emu.ArchState {
	s := emu.ArchState{PC: k.m.PC, Priv: k.m.Priv, Instret: k.c.Stats.Retired}
	for i := 0; i < 32; i++ {
		s.X[i] = k.c.Reg(isa.X(i))
		s.F[i] = k.c.Reg(isa.F(i))
	}
	s.ResValid, s.ResAddr = k.c.Reservation()
	s.CSR = make(map[uint16]uint64, len(compareCSRs))
	for _, n := range compareCSRs {
		s.CSR[n] = k.c.CSR(n)
	}
	if k.c.Vec != nil {
		s.VL = k.c.Vec.VL
		s.VType = uint64(k.c.Vec.VType)
		s.V = make([][]byte, 32)
		for r := 0; r < 32; r++ {
			s.V[r] = append([]byte(nil), k.c.Vec.File.Bytes(r)...)
		}
	}
	return s
}

func (k *checker) pushTrace(ci core.Commit) {
	line := fmt.Sprintf("#%-5d pc=%#06x  %s", k.commits, ci.PC, ci.Inst.String())
	if ci.HasRd {
		line += fmt.Sprintf("  => %s=%#x", ci.Inst.Rd, ci.RdVal)
	}
	if ci.HasAddr {
		line += fmt.Sprintf("  [addr=%#x]", ci.Addr)
	}
	k.trace = append(k.trace, line)
	if len(k.trace) > k.window {
		k.trace = k.trace[1:]
	}
}

// report renders the first divergence with its commit-trace window.
func (k *checker) report() string {
	var b strings.Builder
	if k.multi {
		fmt.Fprintf(&b, "cosim divergence: hart=%d kind=%s commit=%d pc=%#x\n", k.hart, k.kind, k.failCommit, k.failPC)
	} else {
		fmt.Fprintf(&b, "cosim divergence: kind=%s commit=%d pc=%#x\n", k.kind, k.failCommit, k.failPC)
	}
	if k.failInst.Op != 0 {
		fmt.Fprintf(&b, "  inst: %s\n", k.failInst.String())
	}
	for _, d := range k.detail {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	if len(k.trace) > 0 {
		fmt.Fprintf(&b, "  last %d commits:\n", len(k.trace))
		for _, t := range k.trace {
			fmt.Fprintf(&b, "    %s\n", t)
		}
	}
	return b.String()
}
