// Package cosim is the lock-step differential checker of the repo's CDS
// toolchain (§IX): it runs the 12-stage OoO timing core (internal/core) and
// the golden architectural emulator (internal/emu) side by side on the same
// program and compares architectural state at every commit — PC, integer and
// FP register files, touched memory, the LR/SC reservation and the trap/CSR
// state. The first divergence is reported with a windowed commit trace.
//
// Comparison policy (see DESIGN.md "Differential co-simulation"):
//
//   - x/f registers, PC, instret, fcsr and the LR/SC reservation: every
//     commit (IEEE flags are speculative in the pipeline and accrue into
//     fcsr only at retire, which is what makes the per-commit compare sound).
//   - touched memory (64-byte lines written by either model): at every scalar
//     store/AMO commit and once more at halt. Vector stores write memory at
//     execute time in the pipeline (their own ordered queue guarantees older
//     stores have drained), so their lines are checked at the vector store's
//     own commit when no younger vector op has executed yet, and otherwise at
//     the next scalar memory commit or at halt.
//   - trap CSRs (mstatus, mepc/mcause/mtval, sepc/scause/stval, mscratch,
//     sscratch, satp, mie, medeleg, mtvec, stvec): at CSR/system commits and
//     at halt.
//   - vector register file, vl and vtype: at each vector store's commit while
//     that store is still the youngest executed vector op (vector ops execute
//     early relative to retirement, so an unconditional per-commit comparison
//     would race younger in-flight vector ops), and again at halt.
//   - cycle/time/mcycle CSR reads: compared modulo the clock. The golden
//     model has no cycle-accurate clock (emu.Machine.Cycles is a coarse
//     retired-instruction model), so after the emulator steps such a read the
//     checker overwrites its destination register with the value the core
//     committed. Everything downstream of the read — arithmetic on the
//     timestamp, branches over deltas — is then compared exactly, which lets
//     the fuzzer emit rdcycle/rdtime/csrr-mcycle instead of excluding them.
package cosim

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"xt910/internal/asm"
	"xt910/internal/cache"
	"xt910/internal/coherence"
	"xt910/internal/core"
	"xt910/internal/emu"
	"xt910/internal/mem"
	"xt910/internal/mmu"
	"xt910/isa"
)

// Options configures one lock-step run.
type Options struct {
	Config    core.Config // pipeline configuration; zero value means XT910Config
	MaxCycles uint64      // core cycle budget before declaring a hang (0: 10M)
	Window    int         // commit-trace window kept for the report (0: 16)

	// Paged boots the program in S-mode under SV39 translation using the
	// identity-plus-offset layout (see mmu.IdentityPlusOffset): [0, 640K)
	// mapped onto itself RWX in 4K pages, plus a read-write non-executable
	// alias of the same physical range at +1GB. All exceptions are delegated
	// to S-mode and stvec is left at 0, so a page fault halts both models
	// with exit code -(16+cause) and the trap CSRs (scause/stval/sepc) are
	// compared like any other run.
	Paged bool

	// IRQ makes the fuzzer generate interrupt-driven programs: an mtvec
	// handler prologue, WFI / MIE-toggle / interrupt-CSR segments, and a
	// deterministic per-seed schedule of IRQEvents (see below).
	IRQ bool

	// IRQSchedule, when non-empty, drives both models' external interrupt
	// sources with the same deterministic schedule of (commit index → mip
	// bits) events. An event arms once a model has retired AfterCommit
	// instructions and stays armed until that model delivers the interrupt;
	// because the core re-samples at every retirement boundary and the
	// emulator checks before every instruction, both models deliver at the
	// identical architectural point and the checker compares
	// mcause/mepc/mstatus at delivery.
	IRQSchedule []IRQEvent

	// SeedTimeout, when positive, bounds the wall time of one fuzz seed in
	// RunSeeds. A seed that blows the deadline is retried once at twice the
	// budget and then reported with TimedOut set instead of failing the run.
	SeedTimeout time.Duration
}

// IRQEvent is one entry of an interrupt-injection schedule: the external
// source drives Bits into mip once the model has retired AfterCommit
// instructions, until the resulting interrupt is taken.
type IRQEvent struct {
	AfterCommit uint64 // commit index at which the source arms
	Bits        uint64 // driven mip bits: 1<<3 MSI, 1<<7 MTI, 1<<11 MEI
}

// Paged-mode memory layout. The program, stack and scratch buffer live in
// the identity window; the page tables sit just above it, outside every
// mapping, so the guest cannot scribble over them.
const (
	pagedPhysSize  = 0xA0000
	pagedOffset    = 0x40000000
	pagedTableBase = 0x100000
)

// hookModels, when set (tests only), runs after both models are constructed
// and configured, immediately before the first cycle. Tests use it to
// perturb one model and prove the checker catches a given divergence class.
var hookModels func(c *core.Core, m *emu.Machine)

// Result summarises one lock-step run.
type Result struct {
	Commits  uint64
	Cycles   uint64
	ExitCode int
	Diverged bool
	Kind     string // first divergence class: pc xreg freg mem csr lrsc instret vec irq halt exit output hang emuerr
	Report   string // human-readable report with the windowed commit trace

	// FailCommit is the commit index of the first divergence (fault-injection
	// campaigns use it to measure detection latency in commits).
	FailCommit uint64

	// TimedOut marks a run killed by its context deadline (RunContext); the
	// comparison state is whatever had been checked when the clock ran out.
	TimedOut bool
}

// compareCSRs is the trap/translation state checked at CSR and system-class
// commits and at halt. Counters are deliberately absent: instret is checked
// directly against the commit count, and cycle/time have no golden value.
var compareCSRs = []uint16{
	isa.CSRMstatus, isa.CSRMtvec, isa.CSRMepc, isa.CSRMcause, isa.CSRMtval,
	isa.CSRMscratch, isa.CSRMedeleg, isa.CSRMie, isa.CSRMip, isa.CSRMideleg,
	isa.CSRSatp,
	isa.CSRStvec, isa.CSRSepc, isa.CSRScause, isa.CSRStval, isa.CSRSscratch,
	isa.CSRFcsr,
}

// Session is one in-progress lock-step run that the caller drives cycle by
// cycle. It exposes both models so fault-injection campaigns can perturb
// microarchitectural state at a chosen cycle and let the checker decide
// whether the corruption is detected; Run and RunContext are thin loops on
// top of it.
type Session struct {
	c   *core.Core
	m   *emu.Machine
	k   *checker
	arm *irqArm

	maxCycles uint64
	cyc       uint64
	parkRun   uint64 // consecutive cycles the hart has been WFI-parked
}

// irqArm is the shared interrupt-injection schedule state: each model
// consumes events independently (coreIdx / emuIdx), which stay equal at every
// comparison point because both models deliver at the same commit index.
type irqArm struct {
	events  []IRQEvent
	coreIdx int
	emuIdx  int
}

// NewSession builds both models for an already-assembled program, loads it
// into two private memories, and wires the lock-step checker (the emulator
// steps once per commit inside the core's retire hook).
func NewSession(p *asm.Program, opts Options) *Session {
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 10_000_000
	}
	if opts.Window == 0 {
		opts.Window = 16
	}
	cfg := opts.Config
	if cfg.RetireWidth == 0 {
		cfg = core.XT910Config()
	}

	cmem := mem.NewMemory()
	l2 := coherence.NewL2(cache.Config{
		SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, HitLatency: 10, ECC: true, Parity: true,
	}, mem.NewDRAM())
	c := core.New(cfg, 0, cmem, l2)
	p.LoadInto(cmem)
	c.Reset(p.Entry, stackBase)

	m := emu.New(mem.NewMemory())
	p.LoadInto(m.Mem)
	m.PC = p.Entry
	m.X[isa.SP] = stackBase

	if opts.Paged {
		setupPaged(c, m)
	}

	k := &checker{c: c, m: m, window: opts.Window, dirty: make(map[uint64]struct{})}
	c.CommitHook = k.onCommit
	c.MemWriteHook = func(pa uint64, size int, from int) { k.markDirty(pa, size) }
	m.OnStore = func(pa uint64, size int) { k.markDirty(pa, size) }

	s := &Session{c: c, m: m, k: k, maxCycles: opts.MaxCycles}
	if len(opts.IRQSchedule) > 0 {
		// Private copy: the WFI force-arm mutates the schedule, and callers
		// (the shrinker in particular) re-run the same Options.
		arm := &irqArm{events: append([]IRQEvent(nil), opts.IRQSchedule...)}
		s.arm = arm
		k.irq = arm
		// The core side keys arming on the checker's commit count rather than
		// Stats.Retired: the commit hook (and hence the checker's CSR
		// compares) runs before Stats.Retired increments, so k.commits is the
		// count that matches the emulator's Instret at every point where
		// either model reads mip or decides deliverability.
		c.IntSource = func(hart int) uint64 {
			if arm.coreIdx < len(arm.events) && k.commits >= arm.events[arm.coreIdx].AfterCommit {
				return arm.events[arm.coreIdx].Bits
			}
			return 0
		}
		c.InterruptHook = func(cause, resume uint64) {
			arm.coreIdx++
			k.coreIRQ = true
			k.coreCause, k.coreResume = cause, resume
		}
		m.IntSource = func() uint64 {
			if arm.emuIdx < len(arm.events) && m.Instret >= arm.events[arm.emuIdx].AfterCommit {
				return arm.events[arm.emuIdx].Bits
			}
			return 0
		}
		m.OnInterrupt = func(cause uint64) {
			arm.emuIdx++
			k.emuIRQ = true
			k.emuCause = cause
		}
	}
	if hookModels != nil {
		hookModels(c, m)
	}
	return s
}

// Core exposes the timing model (fault injection, state inspection).
func (s *Session) Core() *core.Core { return s.c }

// Emu exposes the golden model.
func (s *Session) Emu() *emu.Machine { return s.m }

// Commits returns the number of lock-step-compared commits so far.
func (s *Session) Commits() uint64 { return s.k.commits }

// Cycles returns the core cycle count so far.
func (s *Session) Cycles() uint64 { return s.c.Now() }

// Done reports whether the run is over: the core halted, the checker failed,
// or the cycle budget ran out.
func (s *Session) Done() bool {
	return s.c.Halted || s.k.failed || s.cyc >= s.maxCycles
}

// wfiParkWindow is how many cycles a WFI-parked hart idles before the session
// force-arms the next schedule event to wake it. The delay makes the park
// observable (Stats.WFIParkedCycles, the frontend CPI bucket) while still
// bounding it — a parked hart can never idle to the cycle budget.
const wfiParkWindow = 16

// Step advances the core by one cycle (the emulator follows inside the commit
// hook). A hart parked on WFI for wfiParkWindow cycles force-arms the next
// schedule event — derived purely from simulation state, so runs stay
// deterministic — instead of idling to the cycle budget.
func (s *Session) Step() {
	if s.Done() {
		return
	}
	s.c.Step()
	s.cyc++
	if s.arm != nil && s.c.WFIParked() {
		s.parkRun++
		if s.parkRun >= wfiParkWindow {
			s.forceArm()
		}
	} else {
		s.parkRun = 0
	}
}

// forceArm wakes a WFI-parked hart: the next schedule event's arm point is
// pulled down to the current commit index, or a synthetic timer event is
// appended when the schedule is exhausted. Both models see the mutation (the
// schedule is shared), so delivery still happens at the same commit index.
func (s *Session) forceArm() {
	arm := s.arm
	if arm.coreIdx < len(arm.events) {
		if s.k.commits < arm.events[arm.coreIdx].AfterCommit {
			arm.events[arm.coreIdx].AfterCommit = s.k.commits
		}
		return
	}
	arm.events = append(arm.events, IRQEvent{AfterCommit: s.k.commits, Bits: 1 << isa.IntMTimer})
}

// Finish runs the end-of-program comparison and assembles the Result. Call
// once, after Done.
func (s *Session) Finish() Result {
	k := s.k
	res := Result{Commits: k.commits, Cycles: s.c.Now(), ExitCode: s.c.ExitCode}
	if !k.failed {
		k.drain()
	}
	if k.failed {
		res.Diverged = true
		res.Kind = k.kind
		res.Report = k.report()
		res.FailCommit = k.failCommit
	}
	return res
}

// Run drives a program to completion under the lock-step checker.
func Run(p *asm.Program, opts Options) Result {
	s := NewSession(p, opts)
	for !s.Done() {
		s.Step()
	}
	return s.Finish()
}

// RunContext is Run with cancellation: the context is polled every 1024
// cycles, and an expired deadline returns a Result with TimedOut set (not a
// divergence) holding whatever had been compared so far.
func RunContext(ctx context.Context, p *asm.Program, opts Options) Result {
	s := NewSession(p, opts)
	for !s.Done() {
		for i := 0; i < 1024 && !s.Done(); i++ {
			s.Step()
		}
		if ctx.Err() != nil {
			return Result{Commits: s.k.commits, Cycles: s.c.Now(), ExitCode: s.c.ExitCode, TimedOut: true}
		}
	}
	return s.Finish()
}

const stackBase = 0x80000

// setupPaged builds the identity-plus-offset SV39 page table into both
// models' memories and drops them to S-mode with every exception delegated.
// The layout parameters are compile-time constants, so a build failure here
// is a programming error, not a run outcome.
func setupPaged(c *core.Core, m *emu.Machine) {
	var satp uint64
	for _, mm := range []*mem.Memory{c.Mem, m.Mem} {
		b, err := mmu.IdentityPlusOffset(mm, pagedTableBase, pagedPhysSize, pagedOffset)
		if err != nil {
			panic(err)
		}
		satp = b.Satp(0)
	}
	c.SetCSR(isa.CSRSatp, satp)
	c.SetCSR(isa.CSRMedeleg, 0xFFFF)
	c.SetPrivilege(isa.PrivS)
	m.SetCSR(isa.CSRSatp, satp)
	m.SetCSR(isa.CSRMedeleg, 0xFFFF)
	m.Priv = isa.PrivS
}

type checker struct {
	c      *core.Core
	m      *emu.Machine
	window int

	commits uint64
	dirty   map[uint64]struct{} // 64-byte lines written by either model
	trace   []string            // rolling window of committed instructions

	// Interrupt-delivery bookkeeping (IRQ schedule runs only): each model's
	// delivery latches its cause here; the next commit — the handler's first
	// instruction — verifies both delivered the same interrupt and compares
	// the delivery CSRs.
	irq        *irqArm
	coreIRQ    bool
	emuIRQ     bool
	coreCause  uint64
	coreResume uint64
	emuCause   uint64

	failed     bool
	kind       string
	detail     []string
	failCommit uint64
	failPC     uint64
	failInst   isa.Inst
}

func (k *checker) markDirty(addr uint64, size int) {
	for line := addr >> 6; line <= (addr+uint64(size)-1)>>6; line++ {
		k.dirty[line] = struct{}{}
	}
}

func (k *checker) fail(ci core.Commit, kind string, detail ...string) {
	if k.failed {
		return
	}
	k.failed = true
	k.kind = kind
	k.detail = detail
	k.failCommit = k.commits
	k.failPC = ci.PC
	k.failInst = ci.Inst
}

// onCommit fires from the core's retire stage for every committed
// instruction; the emulator is stepped here so both models observe the same
// retirement order.
func (k *checker) onCommit(ci core.Commit) {
	if k.failed {
		return
	}
	if k.m.Halted {
		k.fail(ci, "halt", "emulator halted while the core is still committing")
		return
	}
	if k.m.PC != ci.PC {
		// The emulator may be one step behind across a trap the core took
		// without committing (trap handlers redirect without a commit
		// record). Give it exactly one catch-up step.
		if err := k.m.Step(); err != nil {
			k.fail(ci, "emuerr", err.Error())
			return
		}
	}
	if k.m.Halted {
		k.fail(ci, "halt", "emulator halted while the core is still committing")
		return
	}
	if k.m.PC != ci.PC {
		k.fail(ci, "pc", fmt.Sprintf("core commits pc=%#x but emulator is at pc=%#x", ci.PC, k.m.PC))
		return
	}
	if err := k.m.Step(); err != nil {
		k.fail(ci, "emuerr", err.Error())
		return
	}
	k.commits++
	k.pushTrace(ci)

	// Interrupt-delivery check: the core's delivery latched coreIRQ and the
	// emulator's catch-up step (which consumed the same schedule event before
	// executing anything) latched emuIRQ; the first commit after delivery —
	// the handler's first instruction — must see both or neither, the same
	// cause, and identical post-delivery trap state.
	if k.irq != nil && (k.coreIRQ || k.emuIRQ) {
		if k.coreIRQ != k.emuIRQ {
			k.fail(ci, "irq", fmt.Sprintf("delivery mismatch: core took=%v (cause=%d) emu took=%v (cause=%d)",
				k.coreIRQ, k.coreCause, k.emuIRQ, k.emuCause))
			return
		}
		if k.coreCause != k.emuCause {
			k.fail(ci, "irq", fmt.Sprintf("cause: core=%d emu=%d", k.coreCause, k.emuCause))
			return
		}
		if k.irq.coreIdx != k.irq.emuIdx {
			k.fail(ci, "irq", fmt.Sprintf("schedule position: core=%d emu=%d", k.irq.coreIdx, k.irq.emuIdx))
			return
		}
		if ev := k.m.CSR(isa.CSRMepc); ev != k.coreResume {
			k.fail(ci, "irq", fmt.Sprintf("resume pc: core mepc=%#x emu mepc=%#x", k.coreResume, ev))
			return
		}
		for _, n := range []uint16{isa.CSRMcause, isa.CSRMepc, isa.CSRMstatus, isa.CSRMtvec} {
			if cv, ev := k.c.CSR(n), k.m.CSR(n); cv != ev {
				k.fail(ci, "irq", fmt.Sprintf("%s at delivery: core=%#x emu=%#x", isa.CSRName(n), cv, ev))
				return
			}
		}
		k.coreIRQ, k.emuIRQ = false, false
	}

	// cycle/time reads diverge by construction (the golden model has no
	// clock): adopt the core's committed value so the comparison covers
	// everything computed *from* the timestamp rather than the timestamp
	// itself (see the package comment).
	if isCycleCSRRead(ci) {
		k.m.X[ci.Inst.Rd.Index()] = ci.RdVal
	}

	for i := 1; i < 32; i++ {
		if cv, ev := k.c.Reg(isa.X(i)), k.m.X[i]; cv != ev {
			k.fail(ci, "xreg", fmt.Sprintf("%s: core=%#x emu=%#x", isa.X(i), cv, ev))
			return
		}
	}
	for i := 0; i < 32; i++ {
		if cv, ev := k.c.Reg(isa.F(i)), k.m.F[i]; cv != ev {
			k.fail(ci, "freg", fmt.Sprintf("%s: core=%#x emu=%#x", isa.F(i), cv, ev))
			return
		}
	}
	cOK, cAddr := k.c.Reservation()
	eOK, eAddr := k.m.Reservation()
	if cOK != eOK || (cOK && cAddr != eAddr) {
		k.fail(ci, "lrsc", fmt.Sprintf("reservation: core valid=%v addr=%#x, emu valid=%v addr=%#x",
			cOK, cAddr, eOK, eAddr))
		return
	}
	if k.m.Instret != k.commits {
		k.fail(ci, "instret", fmt.Sprintf("emulator instret=%d after %d core commits",
			k.m.Instret, k.commits))
		return
	}
	// fcsr accrues on every FP commit in both models (flags at execute are
	// speculative in the core and land at retire), so it is comparable at
	// every commit, unlike the clocked counters.
	if cv, ev := k.c.CSR(isa.CSRFcsr), k.m.CSR(isa.CSRFcsr); cv != ev {
		k.fail(ci, "fcsr", fmt.Sprintf("fcsr: core=%#x emu=%#x", cv, ev))
		return
	}
	switch ci.Inst.Op.Class() {
	case isa.ClassStore, isa.ClassAMO:
		k.compareMemory(ci)
	case isa.ClassCSR, isa.ClassSys:
		k.compareCSRState(ci)
	case isa.ClassVStore:
		k.compareVector(ci)
	}
}

// compareVector checks the full vector file, vl and vtype at a vector
// store's commit — plus the dirty memory lines, which are safe to compare
// here for the same reason the file is. Vector ops execute (and mutate the
// architectural file) ahead of retirement, so the comparison only runs when
// the committing op is still the youngest executed vector op; otherwise a
// younger in-flight vector op would make the core look diverged. Halt-time
// comparison in drain covers whatever this skips.
func (k *checker) compareVector(ci core.Commit) {
	if k.c.Vec == nil || k.c.LastVectorSeq() != ci.Seq {
		return
	}
	if cv, ev := k.c.Vec.VL, k.m.CSR(isa.CSRVl); cv != ev {
		k.fail(ci, "vec", fmt.Sprintf("vl: core=%d emu=%d", cv, ev))
		return
	}
	if cv, ev := uint64(k.c.Vec.VType), k.m.CSR(isa.CSRVtype); cv != ev {
		k.fail(ci, "vec", fmt.Sprintf("vtype: core=%#x emu=%#x", cv, ev))
		return
	}
	for r := 0; r < 32; r++ {
		if cb, eb := k.c.Vec.File.Bytes(r), k.m.Vec.File.Bytes(r); !bytes.Equal(cb, eb) {
			k.fail(ci, "vec", fmt.Sprintf("v%d: core=%x emu=%x", r, cb, eb))
			return
		}
	}
	k.compareMemory(ci)
}

// isCycleCSRRead reports whether a commit is a CSR-class access of a clock
// CSR landing in a comparable integer register.
func isCycleCSRRead(ci core.Commit) bool {
	if ci.Inst.Op.Class() != isa.ClassCSR || !ci.HasRd {
		return false
	}
	if !ci.Inst.Rd.IsX() || ci.Inst.Rd == isa.Zero {
		return false
	}
	switch ci.Inst.CSR {
	case isa.CSRCycle, isa.CSRTime, isa.CSRMcycle:
		return true
	}
	return false
}

// compareMemory checks every 64-byte line either model has written. It is
// only sound at scalar store/AMO commits and at halt (see the package
// comment for why vector-store commits are excluded).
func (k *checker) compareMemory(ci core.Commit) {
	for line := range k.dirty {
		base := line << 6
		for off := uint64(0); off < 64; off += 8 {
			if cv, ev := k.c.Mem.Read(base+off, 8), k.m.Mem.Read(base+off, 8); cv != ev {
				k.fail(ci, "mem", fmt.Sprintf("[%#x]: core=%#x emu=%#x", base+off, cv, ev))
				return
			}
		}
	}
}

func (k *checker) compareCSRState(ci core.Commit) {
	for _, n := range compareCSRs {
		if cv, ev := k.c.CSR(n), k.m.CSR(n); cv != ev {
			k.fail(ci, "csr", fmt.Sprintf("%s: core=%#x emu=%#x", isa.CSRName(n), cv, ev))
			return
		}
	}
}

// drain runs the end-of-program comparison after the core stops: halt state,
// exit code, output, final registers/memory/CSRs and the vector file.
func (k *checker) drain() {
	last := core.Commit{PC: k.m.PC}
	if !k.c.Halted {
		k.fail(last, "hang", fmt.Sprintf("core did not halt within the cycle budget (%d commits so far)", k.commits))
		return
	}
	// The core may have halted on a trap it never committed; let the
	// emulator execute that trapping instruction.
	if !k.m.Halted {
		if err := k.m.Step(); err != nil {
			k.fail(last, "emuerr", err.Error())
			return
		}
	}
	if !k.m.Halted {
		k.fail(last, "halt", fmt.Sprintf("core halted (exit=%d) but emulator is still running at pc=%#x",
			k.c.ExitCode, k.m.PC))
		return
	}
	if k.c.ExitCode != k.m.ExitCode {
		k.fail(last, "exit", fmt.Sprintf("exit code: core=%d emu=%d", k.c.ExitCode, k.m.ExitCode))
		return
	}
	if string(k.c.Output) != string(k.m.Output) {
		k.fail(last, "output", fmt.Sprintf("output: core=%q emu=%q", k.c.Output, k.m.Output))
		return
	}
	k.compareMemory(last)
	k.compareCSRState(last)
	if k.failed {
		return
	}
	if diffs := k.coreState().Diff(k.m.Snapshot(compareCSRs...)); len(diffs) > 0 {
		k.fail(last, "final", diffs...)
	}
}

// coreState assembles the core's architectural state as an emu.ArchState so
// the final comparison can reuse ArchState.Diff. PC and privilege are
// normalized to the emulator's (the drained core has no architectural PC to
// read back, and both models' trap CSRs are compared separately).
func (k *checker) coreState() emu.ArchState {
	s := emu.ArchState{PC: k.m.PC, Priv: k.m.Priv, Instret: k.c.Stats.Retired}
	for i := 0; i < 32; i++ {
		s.X[i] = k.c.Reg(isa.X(i))
		s.F[i] = k.c.Reg(isa.F(i))
	}
	s.ResValid, s.ResAddr = k.c.Reservation()
	s.CSR = make(map[uint16]uint64, len(compareCSRs))
	for _, n := range compareCSRs {
		s.CSR[n] = k.c.CSR(n)
	}
	if k.c.Vec != nil {
		s.VL = k.c.Vec.VL
		s.VType = uint64(k.c.Vec.VType)
		s.V = make([][]byte, 32)
		for r := 0; r < 32; r++ {
			s.V[r] = append([]byte(nil), k.c.Vec.File.Bytes(r)...)
		}
	}
	return s
}

func (k *checker) pushTrace(ci core.Commit) {
	line := fmt.Sprintf("#%-5d pc=%#06x  %s", k.commits, ci.PC, ci.Inst.String())
	if ci.HasRd {
		line += fmt.Sprintf("  => %s=%#x", ci.Inst.Rd, ci.RdVal)
	}
	if ci.HasAddr {
		line += fmt.Sprintf("  [addr=%#x]", ci.Addr)
	}
	k.trace = append(k.trace, line)
	if len(k.trace) > k.window {
		k.trace = k.trace[1:]
	}
}

// report renders the first divergence with its commit-trace window.
func (k *checker) report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cosim divergence: kind=%s commit=%d pc=%#x\n", k.kind, k.failCommit, k.failPC)
	if k.failInst.Op != 0 {
		fmt.Fprintf(&b, "  inst: %s\n", k.failInst.String())
	}
	for _, d := range k.detail {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	if len(k.trace) > 0 {
		fmt.Fprintf(&b, "  last %d commits:\n", len(k.trace))
		for _, t := range k.trace {
			fmt.Fprintf(&b, "    %s\n", t)
		}
	}
	return b.String()
}
