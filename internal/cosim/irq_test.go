package cosim

import (
	"context"
	"reflect"
	"testing"
	"time"

	"xt910/internal/asm"
	"xt910/internal/core"
	"xt910/internal/emu"
	"xt910/internal/trace"
)

// irqSession builds and runs one IRQ-mode session for seed, returning the
// session and result (the caller inspects core stats or the report).
func irqSession(t *testing.T, seed int64, sinks ...trace.Sink) (*Session, Result) {
	t.Helper()
	src, sched := GenerateSource(seed, 0, Options{IRQ: true})
	prog, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	s := NewSession(prog, Options{IRQ: true, IRQSchedule: sched})
	var tr *trace.Tracer
	if len(sinks) > 0 {
		tr = trace.New(trace.Config{}, sinks...)
		s.Core().AttachTracer(tr)
	}
	for !s.Done() {
		s.Step()
	}
	r := s.Finish()
	if tr != nil {
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return s, r
}

// TestIRQFixedSeeds locks the interrupt-injection protocol over seeds 1..60:
// deterministic per-seed mip schedules delivered to both models at identical
// commit indices, with delivery-time mcause/mepc/mstatus validation.
func TestIRQFixedSeeds(t *testing.T) {
	frs, err := RunSeeds(context.Background(), seedRange(1, 60), 0, Options{IRQ: true}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frs {
		if fr.Diverged {
			t.Errorf("seed %d diverged:\n%s\nshrunk:\n%s", fr.Seed, fr.Result.Report, fr.Shrunk)
		}
	}
}

// TestIRQDeterministic checks IRQ-mode results are identical at any worker
// count — the schedule mutation done by WFI force-arming must stay inside one
// session.
func TestIRQDeterministic(t *testing.T) {
	seeds := seedRange(1, 12)
	a, err := RunSeeds(context.Background(), seeds, 0, Options{IRQ: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeeds(context.Background(), seeds, 0, Options{IRQ: true}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("IRQ results differ between jobs=1 and jobs=8")
	}
}

// squashCountSink counts µops killed by asynchronous-interrupt delivery.
type squashCountSink struct{ n int }

func (s *squashCountSink) Emit(r *trace.Record) error {
	if !r.Retired && r.Cause == trace.SquashInterrupt {
		s.n++
	}
	return nil
}
func (s *squashCountSink) Close() error { return nil }

// TestIRQSquashInterruptInFlight pins the acceptance scenario: on seed 5 an
// interrupt is delivered while speculative µops are in flight, so delivery
// must squash them (SquashInterrupt records in the trace) and recovery must
// stay divergence-free. The seed also parks on WFI, exercising the bounded
// force-arm wakeup.
func TestIRQSquashInterruptInFlight(t *testing.T) {
	sink := &squashCountSink{}
	s, r := irqSession(t, 5, sink)
	if r.Diverged {
		t.Fatalf("seed 5 diverged:\n%s", r.Report)
	}
	st := &s.Core().Stats
	if st.Interrupts == 0 {
		t.Fatal("seed 5 delivered no interrupts")
	}
	if sink.n == 0 {
		t.Fatal("no µops were squashed by interrupt delivery — every interrupt hit an empty pipeline")
	}
	if st.WFIParkedCycles == 0 {
		t.Fatal("seed 5 contains WFI but no parked cycles were recorded")
	}
}

// TestIRQWatchdog checks the per-seed deadline path: an impossible budget
// reports TimedOut (after one 2× retry), not an error and not a divergence.
func TestIRQWatchdog(t *testing.T) {
	frs, err := RunSeeds(context.Background(), []int64{1}, 0,
		Options{IRQ: true, SeedTimeout: time.Nanosecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr := frs[0]
	if !fr.TimedOut {
		t.Fatalf("1ns budget did not time out: %+v", fr.Result)
	}
	if !fr.Retried {
		t.Fatal("timed-out seed was not retried at 2× budget")
	}
	if fr.Diverged {
		t.Fatal("a timeout must not be reported as a divergence")
	}
}

// TestIRQDeliveryMismatchCaught proves the checker catches a model that
// swallows interrupts: the emulator's interrupt source is detached after
// construction, so the core delivers and the emulator does not.
func TestIRQDeliveryMismatchCaught(t *testing.T) {
	src, sched := GenerateSource(1, 0, Options{IRQ: true})
	prog, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { hookModels = nil }()
	hookModels = func(c *core.Core, m *emu.Machine) { m.IntSource = nil }
	r := Run(prog, Options{IRQ: true, IRQSchedule: sched})
	if !r.Diverged {
		t.Fatal("emulator with a detached interrupt source was not caught")
	}
}
