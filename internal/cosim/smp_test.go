package cosim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"xt910/internal/asm"
)

// runSMPSession assembles src and drives a multi-hart session to completion,
// returning the session (for per-hart inspection) alongside the result.
func runSMPSession(t *testing.T, src string, harts int) (*Session, Result) {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	s := NewSession(prog, Options{Harts: harts, MaxCycles: 2_000_000})
	for !s.Done() {
		s.Step()
	}
	return s, s.Finish()
}

// checkSMPClean asserts a divergence-free run in which every hart reached the
// exit ecall with code 0.
func checkSMPClean(t *testing.T, src string, harts int) (*Session, Result) {
	t.Helper()
	s, r := runSMPSession(t, src, harts)
	if r.Diverged {
		t.Fatalf("diverged (hart %d):\n%s", r.Hart, r.Report)
	}
	for i := 0; i < s.Harts(); i++ {
		h := s.Hart(i)
		if !h.Core().Halted {
			t.Fatalf("hart %d never halted (cycle budget?)", i)
		}
		if h.Core().ExitCode != 0 {
			t.Fatalf("hart %d exit code = %d, want 0", i, h.Core().ExitCode)
		}
	}
	return s, r
}

// TestSMPLRSCPingPong is the LR/SC contention divergence-class repro: both
// harts increment one shared counter through bounded LR/SC retry loops, so SC
// failures, cross-hart reservation kills and ownership ping-pong on a single
// line are all exercised under the lock-step compare and the store oracle.
func TestSMPLRSCPingPong(t *testing.T) {
	checkSMPClean(t, `
_start:
    la x8, buf
    li x5, 8
outer:
    li x6, 64
retry:
    lr.d x9, (x8)
    addi x9, x9, 1
    sc.d x10, x9, (x8)
    beqz x10, next
    addi x6, x6, -1
    bnez x6, retry
next:
    addi x5, x5, -1
    bnez x5, outer
    ld x11, 0(x8)
`+exitEpilogue+`
.align 6
buf:
    .dword 0, 0, 0, 0, 0, 0, 0, 0
`, 2)
}

// TestSMPAMOCounterRace is the AMO contention repro: each hart atomically
// adds 1 to a shared counter 16 times, then spins until the counter reaches
// the cross-hart total. Reaching 32 (and not overshooting past the join, via
// ebreak) proves every AMO was applied exactly once in both worlds.
func TestSMPAMOCounterRace(t *testing.T) {
	checkSMPClean(t, `
_start:
    la x8, buf
    addi x9, x8, 8
    li x6, 1
    li x5, 16
aloop:
    amoadd.d x7, x6, (x9)
    addi x5, x5, -1
    bnez x5, aloop
wait:
    ld x7, 8(x8)
    li x28, 32
    bltu x7, x28, wait
    beq x7, x28, okc
    ebreak
okc:
`+exitEpilogue+`
.align 6
buf:
    .dword 0, 0, 0, 0, 0, 0, 0, 0
`, 2)
}

// TestSMPFenceProducerConsumer is the fence-ordering repro: hart 0 publishes
// data then raises a flag behind a fence; hart 1 spins on the flag, fences,
// and must observe the published value (ebreak otherwise).
func TestSMPFenceProducerConsumer(t *testing.T) {
	checkSMPClean(t, `
_start:
    la x8, buf
    csrr x5, mhartid
    bnez x5, consumer
    li x6, 19088743
    sd x6, 0(x8)
    fence
    li x7, 1
    sd x7, 8(x8)
    beq x0, x0, done
consumer:
spin:
    ld x7, 8(x8)
    beqz x7, spin
    fence
    ld x6, 0(x8)
    li x9, 19088743
    beq x6, x9, done
    ebreak
done:
`+exitEpilogue+`
.align 6
buf:
    .dword 0, 0, 0, 0, 0, 0, 0, 0
`, 2)
}

// TestSMPMSIPIPIDelivery is the IPI repro: hart 0 rings hart 1's CLINT msip
// doorbell and exits; hart 1 spins on a mailbox only its interrupt handler
// writes. Hart 1 can therefore only exit if the machine-software interrupt
// was delivered — at the same commit boundary in both worlds, or the
// lock-step compare fails.
func TestSMPMSIPIPIDelivery(t *testing.T) {
	checkSMPClean(t, `
_start:
    la x8, buf
    la x29, handler
    csrw mtvec, x29
    li x29, 8
    csrw mie, x29
    csrrsi x0, mstatus, 8
    csrr x5, mhartid
    bnez x5, waiter
    li x6, 33554436
    li x7, 1
    sw x7, 0(x6)
    beq x0, x0, done
waiter:
spin:
    ld x7, 16(x8)
    beqz x7, spin
done:
`+exitEpilogue+`
.align 2
handler:
    csrw mscratch, x29
    li x29, 1
    sd x29, 16(x8)
    csrw sscratch, x30
    csrr x29, mhartid
    slli x29, x29, 2
    li x30, 33554432
    add x29, x29, x30
    sw x0, 0(x29)
    csrr x30, sscratch
    csrr x29, mscratch
    mret
.align 6
buf:
    .dword 0, 0, 0, 0, 0, 0, 0, 0
`, 2)
}

// TestSMPOracleCatchesInjectedGrant is the store-order oracle's A/B proof.
// An InjectOwnershipGrant plants a silent Modified copy of one line in hart
// 1's L1 — the model of a dropped invalidation. Cache state is pure timing
// metadata over one shared memory here, so the corruption is architecturally
// invisible: register and memory compare pass in both worlds by construction,
// and only the oracle (hart 1 retires a store to a line the fabric never
// granted it) can see it. With the oracle off the same run must be clean.
func TestSMPOracleCatchesInjectedGrant(t *testing.T) {
	src := `
_start:
    csrr x5, mhartid
    beqz x5, done
    li x9, 262144
    li x7, 77
    sd x7, 0(x9)
done:
` + exitEpilogue
	prog, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	run := func(disable bool) Result {
		s := NewSession(prog, Options{Harts: 2, MaxCycles: 1_000_000, DisableStoreOracle: disable})
		s.L2().InjectOwnershipGrant(262144, 1)
		for !s.Done() {
			s.Step()
		}
		return s.Finish()
	}
	r := run(false)
	if !r.Diverged || r.Kind != "order" {
		t.Fatalf("oracle run: diverged=%v kind=%q, want an order violation\n%s",
			r.Diverged, r.Kind, r.Report)
	}
	if r.Hart != 1 {
		t.Fatalf("order violation attributed to hart %d, want 1:\n%s", r.Hart, r.Report)
	}
	if !strings.Contains(r.Report, "without owning line") {
		t.Fatalf("report missing ownership detail:\n%s", r.Report)
	}
	if rb := run(true); rb.Diverged {
		t.Fatalf("oracle disabled but run still diverged (%s):\n%s", rb.Kind, rb.Report)
	}
}

// TestSMPFuzzFixedSeeds is the multi-hart property-test entry point: a
// fixed-seed SPMD sweep with contention segments enabled that must stay
// divergence-free at HEAD.
func TestSMPFuzzFixedSeeds(t *testing.T) {
	frs, err := RunSeeds(context.Background(), seedRange(1, 20), 40,
		Options{Modes: Modes{SMP: true}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frs {
		if fr.Err != nil {
			t.Errorf("seed %d: %v", fr.Seed, fr.Err)
		}
		if fr.Diverged {
			t.Errorf("seed %d diverged (hart %d, %s):\n%s\nshrunk:\n%s",
				fr.Seed, fr.Result.Hart, fr.Result.Kind, fr.Result.Report, fr.Shrunk)
		}
	}
}

// TestSMPDeterministicAcrossJobs checks the acceptance criterion that a
// multi-hart sweep is byte-identical at any worker width.
func TestSMPDeterministicAcrossJobs(t *testing.T) {
	seeds := seedRange(1, 8)
	opts := Options{Modes: Modes{SMP: true}}
	a, err := RunSeeds(context.Background(), seeds, 40, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeeds(context.Background(), seeds, 40, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SMP results differ between jobs=1 and jobs=8")
	}
}

// TestSMPGeneratorEmitsContentionSegments pins the SPMD generator profile:
// across a modest seed sweep every contention segment class appears, the
// handler prologue (with the MSIP doorbell clear) is installed, and the
// segments that are unsound across harts never appear.
func TestSMPGeneratorEmitsContentionSegments(t *testing.T) {
	var lrsc, prodCons, ipi int
	for seed := int64(1); seed <= 40; seed++ {
		src := generate(seed, 40, Modes{SMP: true}, 2).render(nil)
		if strings.Contains(src, "smp_retry") {
			lrsc++
		}
		if strings.Contains(src, "smp_cons") {
			prodCons++
		}
		if strings.Contains(src, "remu x29") {
			ipi++
		}
		if !strings.Contains(src, "irq_handler:") || !strings.Contains(src, "sw x0, 0(x29)") {
			t.Fatalf("seed %d: SMP program missing handler or MSIP doorbell clear", seed)
		}
		for _, banned := range []string{"vsetvli", "fence.i", "patch_", "ebreak"} {
			if strings.Contains(src, banned) {
				t.Fatalf("seed %d: SMP program contains banned construct %q", seed, banned)
			}
		}
	}
	if lrsc == 0 || prodCons == 0 || ipi == 0 {
		t.Fatalf("contention segment coverage: lrsc=%d prodCons=%d ipi=%d (want all > 0)",
			lrsc, prodCons, ipi)
	}
}

// TestModesParsing pins the mode-spec grammar shared by every campaign CLI.
func TestModesParsing(t *testing.T) {
	m, err := ParseModes("smp,irq")
	if err != nil || !m.SMP || !m.IRQ || m.Paged {
		t.Fatalf("ParseModes(smp,irq) = %+v, %v", m, err)
	}
	if m.String() != "irq,smp" {
		t.Fatalf("String() = %q, want irq,smp", m.String())
	}
	for _, bad := range []string{"paged,smp", "paged,irq", "bogus"} {
		if _, err := ParseModes(bad); err == nil {
			t.Fatalf("ParseModes(%q) accepted, want error", bad)
		}
	}
	if m, err := ParseModes(""); err != nil || m != (Modes{}) {
		t.Fatalf("ParseModes(\"\") = %+v, %v", m, err)
	}
}

// TestOptionsValidateHartsFold pins that Options.Validate checks the mode set
// AFTER folding in the SMP implied by Harts > 1: a spec that is legal on its
// own must still be rejected when the hart count smuggles SMP into an illegal
// combination.
func TestOptionsValidateHartsFold(t *testing.T) {
	if err := (Options{Modes: Modes{Paged: true}}).Validate(); err != nil {
		t.Fatalf("paged alone: %v", err)
	}
	if err := (Options{Modes: Modes{Paged: true}, Harts: 2}).Validate(); err == nil {
		t.Fatal("paged + Harts 2 accepted, want error (implies paged+smp)")
	}
	if err := (Options{Modes: Modes{IRQ: true}, Harts: 4}).Validate(); err != nil {
		t.Fatalf("irq + Harts 4: %v", err)
	}
	if err := (Options{Paged: true, Harts: 2}).Validate(); err == nil {
		t.Fatal("deprecated Paged bool + Harts 2 accepted, want error")
	}
}
