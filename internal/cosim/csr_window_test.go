package cosim

import (
	"fmt"
	"testing"

	"xt910/internal/asm"
	"xt910/internal/emu"
	"xt910/internal/mem"
	"xt910/isa"
)

// warlCases tables the interrupt-CSR write windows both models must share:
// writing all-ones stores exactly the writable mask.
var warlCases = []struct {
	name string
	csr  string
	num  uint16
	want uint64
}{
	{"mie", "mie", isa.CSRMie, isa.MieWritableMask},
	{"mip", "mip", isa.CSRMip, isa.MipWritableMask},
	{"mideleg", "mideleg", isa.CSRMideleg, isa.MidelegWritableMask},
}

// TestEmuCSRWindows pins the golden model's WARL masks directly.
func TestEmuCSRWindows(t *testing.T) {
	for _, tc := range warlCases {
		t.Run(tc.name, func(t *testing.T) {
			m := emu.New(mem.NewMemory())
			m.SetCSR(tc.num, ^uint64(0))
			if got := m.CSR(tc.num); got != tc.want {
				t.Fatalf("emu %s after writing ~0: got %#x, want %#x", tc.name, got, tc.want)
			}
		})
	}
}

// TestCSRWindowParity writes all-ones to each interrupt CSR on both models
// under the lock-step checker and asserts the identical masked value lands in
// a register — a WARL window mismatch diverges, a matching one must settle on
// the documented mask.
func TestCSRWindowParity(t *testing.T) {
	for _, tc := range warlCases {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(`
_start:
    li x5, -1
    csrrw x0, %[1]s, x5
    csrr x6, %[1]s
    li x17, 93
    li x10, 0
    ecall
`, tc.csr)
			prog, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: true})
			if err != nil {
				t.Fatal(err)
			}
			s := NewSession(prog, Options{})
			for !s.Done() {
				s.Step()
			}
			if r := s.Finish(); r.Diverged {
				t.Fatalf("WARL parity broke:\n%s", r.Report)
			}
			if got := s.Core().Reg(isa.X(6)); got != tc.want {
				t.Fatalf("core read back %#x after writing ~0 to %s, want %#x", got, tc.csr, tc.want)
			}
		})
	}
}

// TestWFIPendingIsNop checks the pending-source WFI window under the checker:
// with an armed-but-gated source (mie enables it, the global MIE is off), WFI
// must neither park nor deliver on either model — it falls through as a nop
// and the run completes with no interrupt taken.
func TestWFIPendingIsNop(t *testing.T) {
	prog, err := asm.Assemble(`
_start:
    li x5, 2184
    csrrw x0, mie, x5
    wfi
    addi x6, x0, 9
    li x17, 93
    li x10, 0
    ecall
`, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(prog, Options{IRQSchedule: []IRQEvent{{AfterCommit: 0, Bits: 1 << isa.IntMTimer}}})
	for !s.Done() {
		s.Step()
	}
	if r := s.Finish(); r.Diverged {
		t.Fatalf("pending-WFI run diverged:\n%s", r.Report)
	}
	st := &s.Core().Stats
	if st.Interrupts != 0 {
		t.Fatalf("Interrupts=%d: the globally-gated source must not deliver", st.Interrupts)
	}
	if st.WFIParkedCycles != 0 {
		t.Fatalf("WFIParkedCycles=%d: WFI with a pending enabled source must not park", st.WFIParkedCycles)
	}
}
