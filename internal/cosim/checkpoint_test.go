package cosim

import (
	"bytes"
	"reflect"
	"testing"

	"xt910/internal/asm"
	"xt910/internal/emu"
	"xt910/internal/mem"
	"xt910/isa"
)

// checkpointProg runs long enough to checkpoint mid-flight and touches
// memory, branches and output so the restored run has real state to get
// wrong.
const checkpointProg = `
_start:
    la x8, buf
    li x5, 0
    li x6, 40
    li x10, 0
loop:
    addi x5, x5, 1
    sd x5, 0(x8)
    ld x9, 0(x8)
    add x10, x10, x9
    xor x11, x10, x5
    sd x10, 8(x8)
    blt x5, x6, loop
    li a7, 93
    li a0, 0
    ecall
.align 6
buf:
    .dword 0, 0, 0, 0, 0, 0, 0, 0
`

func assembleCheckpointProg(t *testing.T) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(checkpointProg, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return prog
}

// referenceRun executes the program on a fresh golden model to completion,
// exactly as a session's emulator would have.
func referenceRun(t *testing.T, prog *asm.Program) *emu.Machine {
	t.Helper()
	m := emu.New(mem.NewMemory())
	prog.LoadInto(m.Mem)
	m.PC = prog.Entry
	m.X[isa.SP] = stackBase
	for i := 0; !m.Halted; i++ {
		if err := m.Step(); err != nil {
			t.Fatalf("reference run: %v", err)
		}
		if i > 1_000_000 {
			t.Fatal("reference run did not halt")
		}
	}
	return m
}

// captureMidRun steps a session partway, then takes the first valid
// checkpoint, proving it lands strictly inside the program.
func captureMidRun(t *testing.T, s *Session) *Checkpoint {
	t.Helper()
	for s.Commits() < 20 && !s.Done() {
		s.Step()
	}
	for !s.Done() {
		cp, err := s.Checkpoint()
		if err == nil {
			if cp.Commits == 0 {
				t.Fatal("checkpoint captured before any commit")
			}
			return cp
		}
		s.Step()
	}
	t.Fatal("no valid checkpoint boundary before the program ended")
	return nil
}

func TestCheckpointResumeMatchesStraightRun(t *testing.T) {
	prog := assembleCheckpointProg(t)
	ref := referenceRun(t, prog)

	s := NewSession(prog, Options{})
	cp := captureMidRun(t, s)

	// The interrupted session itself must still finish clean — taking a
	// checkpoint is a pure observation.
	for !s.Done() {
		s.Step()
	}
	if r := s.Finish(); r.Diverged {
		t.Fatalf("session diverged after checkpoint:\n%s", r.Report)
	}
	if cp.Commits >= s.Commits() {
		t.Fatalf("checkpoint at commit %d is not mid-run (program has %d)", cp.Commits, s.Commits())
	}

	// Resume from the checkpoint and run the suffix to completion.
	m := cp.NewMachine()
	for i := 0; !m.Halted; i++ {
		if err := m.Step(); err != nil {
			t.Fatalf("resumed run: %v", err)
		}
		if i > 1_000_000 {
			t.Fatal("resumed run did not halt")
		}
	}

	if m.ExitCode != ref.ExitCode {
		t.Fatalf("exit code: resumed=%d reference=%d", m.ExitCode, ref.ExitCode)
	}
	if string(m.Output) != string(ref.Output) {
		t.Fatalf("output: resumed=%q reference=%q", m.Output, ref.Output)
	}
	if diffs := m.Snapshot().Diff(ref.Snapshot()); len(diffs) > 0 {
		t.Fatalf("final architectural state differs: %v", diffs)
	}
	if !reflect.DeepEqual(m.DumpCSRs(), ref.DumpCSRs()) {
		t.Fatalf("final CSR file differs: resumed=%v reference=%v", m.DumpCSRs(), ref.DumpCSRs())
	}
	if !reflect.DeepEqual(m.Mem.Snapshot(), ref.Mem.Snapshot()) {
		t.Fatal("final memory image differs")
	}
}

func TestCheckpointJSONRoundTrip(t *testing.T) {
	prog := assembleCheckpointProg(t)
	s := NewSession(prog, Options{})
	cp := captureMidRun(t, s)

	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Fatal("checkpoint did not survive a JSON round trip")
	}

	// Determinism: re-encoding the decoded checkpoint is byte-identical.
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if err := cp.Encode(&buf); err != nil {
		t.Fatalf("encode again: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("checkpoint encoding is not deterministic")
	}
}

func TestCheckpointRejectsPerturbedState(t *testing.T) {
	prog := assembleCheckpointProg(t)
	s := NewSession(prog, Options{})
	if _, err := s.Checkpoint(); err != nil {
		t.Fatalf("clean initial state must checkpoint: %v", err)
	}
	// Corrupt the golden model behind the checker's back: the boundary
	// compare must refuse to certify the checkpoint.
	s.Hart(0).Emu().X[5] ^= 0xdeadbeef
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint certified a perturbed state")
	}
}

func TestCheckpointRejectsMultiHart(t *testing.T) {
	prog := assembleCheckpointProg(t)
	s := NewSession(prog, Options{Harts: 2})
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("multi-hart session must not checkpoint")
	}
}
