package cosim

import (
	"context"
	"fmt"
	"time"

	"xt910/internal/asm"
	"xt910/internal/sched"
)

// shrink minimizes a diverging program with greedy delta-debugging over its
// segments: repeatedly try dropping chunks (halving the chunk size down to
// single segments) and keep any removal that still diverges. The result is
// deterministic for a given program and the run budget bounds worst-case
// shrink cost on pathological inputs.
func shrink(p *program, opts Options) (string, Result) {
	mask := make([]bool, len(p.segs))
	for i := range mask {
		mask[i] = true
	}
	try := func(m []bool) (Result, bool) {
		prog, err := asm.Assemble(p.render(m), asm.Options{Base: 0x1000, Compress: true})
		if err != nil {
			return Result{}, false
		}
		return Run(prog, opts), true
	}
	budget := 300
	for improved := true; improved && budget > 0; {
		improved = false
		for chunk := len(p.segs) / 2; chunk >= 1 && budget > 0; chunk /= 2 {
			for start := 0; start < len(p.segs) && budget > 0; start += chunk {
				changed := false
				trial := append([]bool(nil), mask...)
				for i := start; i < start+chunk && i < len(trial); i++ {
					if trial[i] {
						trial[i] = false
						changed = true
					}
				}
				if !changed {
					continue
				}
				budget--
				if r, ok := try(trial); ok && r.Diverged {
					mask = trial
					improved = true
				}
			}
		}
	}
	src := p.render(mask)
	r, _ := try(mask)
	return src, r
}

// RunSeeds fuzzes each seed on the worker pool (one job per seed) and
// returns results in seed order — byte-identical at any jobs width.
//
// When opts.SeedTimeout is set, each seed runs under a per-run watchdog: a
// seed that blows the deadline is retried once at twice the budget, and a
// second timeout yields a FuzzResult with TimedOut set rather than an error —
// a hung seed is a finding to report, not a reason to stall the campaign.
func RunSeeds(ctx context.Context, seeds []int64, nSegs int, opts Options, jobs int) ([]FuzzResult, error) {
	jl := make([]sched.Job, len(seeds))
	for i, seed := range seeds {
		seed := seed
		jl[i] = sched.Job{
			ID: fmt.Sprintf("seed%d", seed),
			Run: func(ctx context.Context) (any, error) {
				fr := FuzzWatched(ctx, seed, nSegs, opts)
				sched.AddCycles(ctx, fr.Result.Cycles)
				sched.AddInstrs(ctx, fr.Result.Commits)
				return fr, fr.Err
			},
		}
	}
	rs := sched.Run(ctx, jl, sched.Options{Workers: jobs})
	out := make([]FuzzResult, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			return nil, r.Err
		}
		out[i] = r.Value.(FuzzResult)
	}
	return out, nil
}

// FuzzWatched fuzzes one seed under the per-seed deadline policy of RunSeeds:
// opts.SeedTimeout bounds the run, one 2× retry on timeout, and a second
// timeout is reported in the FuzzResult rather than as an error. It is the
// single-seed unit that campaign shards schedule themselves.
func FuzzWatched(ctx context.Context, seed int64, nSegs int, opts Options) FuzzResult {
	if opts.SeedTimeout <= 0 {
		return FuzzContext(ctx, seed, nSegs, opts)
	}
	run := func(budget time.Duration) FuzzResult {
		sctx, cancel := context.WithTimeout(ctx, budget)
		defer cancel()
		return FuzzContext(sctx, seed, nSegs, opts)
	}
	fr := run(opts.SeedTimeout)
	if !fr.TimedOut || ctx.Err() != nil {
		return fr
	}
	fr = run(2 * opts.SeedTimeout)
	fr.Retried = true
	return fr
}
