package cosim

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"xt910/internal/asm"
	"xt910/isa"
)

// The fuzzer generates deterministic random RV64IMFD+RVC+V-subset programs
// biased toward the hazards the pipeline gets wrong first: long RAW chains,
// misaligned and line-crossing loads/stores with store-to-load forwarding,
// LR/SC pairs with intervening stores, forward branches into compressed
// regions, counted loops (loop buffer), fence.i after self-modifying stores,
// AMOs, CSR traffic and the XT custom ops. Programs terminate by
// construction: all generated branches are forward except counted loops on a
// dedicated counter register.
//
// Register conventions inside generated programs:
//
//	x8  (s0)  scratch-buffer base, never written after the prologue
//	x29 (t4)  loop counter / address temporary, never in the random pool
//	x17 (a7)  syscall number, written only by the exit epilogue
//	x2  (sp)  stack pointer, used only as a base for sp-relative accesses
//
// Everything else (incl. the FP file) is fair game.

// gpPool is the set of integer registers the generator reads and writes.
var gpPool = []int{1, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15, 16,
	18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 30, 31}

const (
	bufBytes = 2048
	fpRegs   = 16 // f0..f15 participate
)

// FuzzResult is the outcome of one seeded fuzz iteration.
type FuzzResult struct {
	Seed     int64
	Err      error // generation/assembly failure: a fuzzer bug, not a model bug
	Diverged bool
	Result   Result // run of the full generated program
	Source   string // full generated program
	Shrunk   string // minimized reproducer (set when Diverged)
	ShrunkResult Result

	// TimedOut marks a seed killed by the per-seed watchdog (after one retry
	// at twice the budget); Retried marks a seed that needed the retry but
	// finished within the doubled budget.
	TimedOut bool
	Retried  bool
}

// Fuzz generates the program for seed, runs it in lock-step, and minimizes
// any divergence. nSegs controls program size (0 means 40 segments).
func Fuzz(seed int64, nSegs int, opts Options) FuzzResult {
	return FuzzContext(context.Background(), seed, nSegs, opts)
}

// FuzzContext is Fuzz with cancellation: an expired deadline marks the result
// TimedOut instead of blocking on a pathological seed.
func FuzzContext(ctx context.Context, seed int64, nSegs int, opts Options) FuzzResult {
	if nSegs == 0 {
		nSegs = 40
	}
	fr := FuzzResult{Seed: seed}
	modes := opts.modes()
	if err := modes.Validate(); err != nil {
		fr.Err = fmt.Errorf("seed %d: %w", seed, err)
		return fr
	}
	harts := opts.effectiveHarts()
	prog := generate(seed, nSegs, modes, harts)
	fr.Source = prog.render(nil)
	if modes.IRQ {
		if harts > 1 {
			opts.IRQSchedules = prog.irqs
		} else {
			opts.IRQSchedule = prog.irq
		}
	}
	p, err := asm.Assemble(fr.Source, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		fr.Err = fmt.Errorf("seed %d: assemble: %w", seed, err)
		return fr
	}
	fr.Result = RunContext(ctx, p, opts)
	if fr.Result.TimedOut {
		fr.TimedOut = true
		return fr
	}
	if !fr.Result.Diverged {
		return fr
	}
	fr.Diverged = true
	fr.Shrunk, fr.ShrunkResult = shrink(prog, opts)
	return fr
}

// GenerateSource returns the deterministic fuzz program for a seed together
// with its interrupt schedule (empty unless opts.IRQ). Fault-injection
// campaigns use it to rebuild the exact program a seed denotes.
func GenerateSource(seed int64, nSegs int, opts Options) (string, []IRQEvent) {
	if nSegs == 0 {
		nSegs = 40
	}
	prog := generate(seed, nSegs, opts.modes(), opts.effectiveHarts())
	return prog.render(nil), prog.irq
}

// program is a generated test program in shrinkable form: a fixed prologue
// and epilogue around independent segments that can be dropped one by one.
type program struct {
	inits   []string     // register initialization (kept through shrinking)
	segs    [][]string   // independent hazard segments
	trapEnd bool         // end with ebreak instead of the exit ecall
	data    []string     // scratch-buffer contents
	irq     []IRQEvent   // hart 0's interrupt schedule (IRQ mode); implies the handler
	irqs    [][]IRQEvent // per-hart schedules (IRQ mode; irqs[0] == irq)
	smp     bool         // SPMD multi-hart profile; implies the handler
}

// handler reports whether the program installs the interrupt handler: every
// scheduled run needs it for delivery, and every SMP run needs it so MSIP
// IPIs can be taken (and the level-triggered doorbell cleared).
func (p *program) handler() bool { return p.smp || len(p.irq) > 0 }

// render emits assembly source with the masked-out segments removed
// (mask==nil keeps everything).
func (p *program) render(mask []bool) string {
	var b strings.Builder
	b.WriteString("_start:\n")
	b.WriteString("    la x8, buf\n")
	if p.handler() {
		// Install the handler and enable all three machine sources. Only x29
		// (never in the random pool) is clobbered, before its first use.
		b.WriteString("    la x29, irq_handler\n")
		b.WriteString("    csrw mtvec, x29\n")
		b.WriteString("    li x29, 2184\n") // 0x888: MSIE|MTIE|MEIE
		b.WriteString("    csrw mie, x29\n")
		b.WriteString("    csrrsi x0, mstatus, 8\n") // mstatus.MIE
	}
	for _, l := range p.inits {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for i, seg := range p.segs {
		if mask != nil && !mask[i] {
			continue
		}
		for _, l := range seg {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	if p.trapEnd {
		b.WriteString("    ebreak\n")
	} else {
		b.WriteString("    li x17, 93\n    li x10, 0\n    ecall\n")
	}
	if p.handler() {
		// The handler is transparent up to its trace in the buffer tail: x29
		// is preserved through mscratch, mcause/mepc and a delivery counter
		// are logged where random stores may also land (both models see the
		// same interleaving, so cross-traffic is welcome), and mret resumes.
		// Not shrinkable: delivery needs it as long as the schedule exists.
		// 4-byte alignment matters: mtvec's two mode bits are masked off on
		// delivery, so a 2-byte-aligned handler (possible under compression)
		// would vector into the middle of the preceding instruction.
		b.WriteString(".align 2\nirq_handler:\n")
		b.WriteString("    csrw mscratch, x29\n")
		if p.smp {
			b.WriteString("    csrw sscratch, x30\n")
		}
		b.WriteString("    csrr x29, mcause\n")
		b.WriteString("    sd x29, 2024(x8)\n")
		b.WriteString("    csrr x29, mepc\n")
		b.WriteString("    sd x29, 2032(x8)\n")
		b.WriteString("    ld x29, 2040(x8)\n")
		b.WriteString("    addi x29, x29, 1\n")
		b.WriteString("    sd x29, 2040(x8)\n")
		if p.smp {
			// Drop this hart's MSIP doorbell: the CLINT source is level-
			// triggered, so an un-cleared IPI would re-deliver forever after
			// mret. x30 rides through sscratch (x29 is already in mscratch);
			// both models run the handler, so the sscratch clobber compares
			// clean like any other architectural effect.
			b.WriteString("    csrr x29, mhartid\n")
			b.WriteString("    slli x29, x29, 2\n")
			b.WriteString("    li x30, 33554432\n") // 0x02000000: CLINT msip base
			b.WriteString("    add x29, x29, x30\n")
			b.WriteString("    sw x0, 0(x29)\n")
			b.WriteString("    csrr x30, sscratch\n")
		}
		b.WriteString("    csrr x29, mscratch\n")
		b.WriteString("    mret\n")
	}
	b.WriteString(".align 6\nbuf:\n")
	for _, l := range p.data {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

type gen struct {
	rng      *rand.Rand
	label    int
	lastDest string // RAW-chain bias: last integer destination written
	paged    bool   // S-mode/SV39 profile: alias-window segments enabled
	irq      bool   // interrupt-injection profile: WFI/MIE-toggle segments
	smp      bool   // SPMD multi-hart profile: cross-hart contention segments
	harts    int    // hart count the SMP segments target (IPI wrap-around)
}

func (g *gen) reg() string  { return fmt.Sprintf("x%d", gpPool[g.rng.Intn(len(gpPool))]) }
func (g *gen) freg() string { return fmt.Sprintf("f%d", g.rng.Intn(fpRegs)) }

// src picks a source operand: usually a pool register, sometimes x0 and
// sometimes the previous destination (RAW chain).
func (g *gen) src() string {
	r := g.rng.Intn(100)
	switch {
	case r < 12:
		return "x0"
	case r < 55 && g.lastDest != "":
		return g.lastDest
	}
	return g.reg()
}

func (g *gen) newLabel(stem string) string {
	g.label++
	return fmt.Sprintf("%s_%d", stem, g.label)
}

func generate(seed int64, nSegs int, modes Modes, harts int) *program {
	if harts < 1 {
		harts = 1
	}
	g := &gen{rng: rand.New(rand.NewSource(seed)), paged: modes.Paged, irq: modes.IRQ,
		smp: modes.SMP, harts: harts}
	// trapEnd is incompatible with an installed handler (ebreak would vector
	// into it and mret back onto itself forever), so IRQ and SMP programs
	// always end on the exit ecall.
	p := &program{smp: modes.SMP, trapEnd: !modes.IRQ && !modes.SMP && g.rng.Intn(10) == 0}
	for _, r := range gpPool {
		p.inits = append(p.inits, fmt.Sprintf("    li x%d, %d", r, int64(g.rng.Uint64())))
	}
	for f := 0; f < fpRegs; f++ {
		p.inits = append(p.inits, fmt.Sprintf("    fmv.d.x f%d, x%d", f, gpPool[g.rng.Intn(len(gpPool))]))
	}
	for i := 0; i < nSegs; i++ {
		p.segs = append(p.segs, g.segment())
	}
	for i := 0; i < bufBytes/8; i += 4 {
		p.data = append(p.data, fmt.Sprintf("    .dword %d, %d, %d, %d",
			int64(g.rng.Uint64()), int64(g.rng.Uint64()), int64(g.rng.Uint64()), int64(g.rng.Uint64())))
	}
	if modes.IRQ {
		// One schedule per hart, drawn in hart order from the same stream
		// (hart 0's draw matches the single-hart stream exactly).
		p.irqs = make([][]IRQEvent, harts)
		for h := 0; h < harts; h++ {
			p.irqs[h] = g.schedule(nSegs)
		}
		p.irq = p.irqs[0]
	}
	return p
}

// schedule derives the interrupt-injection schedule from the same seeded
// stream: a handful of events spread over the program's estimated dynamic
// length (segments average a few instructions, loops stretch it — late
// events that never arm are harmless). One in three events drives several
// mip bits at once, exercising the MEI > MSI > MTI priority ordering.
func (g *gen) schedule(nSegs int) []IRQEvent {
	n := 2 + g.rng.Intn(4)
	span := uint64(nSegs*6 + 64)
	evs := make([]IRQEvent, 0, n)
	var at uint64 = 5
	for i := 0; i < n; i++ {
		at += 1 + uint64(g.rng.Int63n(int64(span)/int64(n)+1))
		bits := uint64(1) << []uint{isa.IntMSoft, isa.IntMTimer, isa.IntMExt}[g.rng.Intn(3)]
		if g.rng.Intn(3) == 0 {
			bits |= 1 << []uint{isa.IntMSoft, isa.IntMTimer, isa.IntMExt}[g.rng.Intn(3)]
		}
		evs = append(evs, IRQEvent{AfterCommit: at, Bits: bits})
	}
	return evs
}

// segment emits one self-contained hazard segment. The SMP profile swaps the
// segments that are unsound across harts for scalar equivalents: vector
// stores write memory at execute time (a remote hart would see them out of
// commit order), and cross-hart self-modifying code has no defined coherence
// point in the model.
func (g *gen) segment() []string {
	if g.smp && g.rng.Intn(3) == 0 {
		return g.segSMP()
	}
	if g.paged && g.rng.Intn(12) == 0 {
		return g.segPaged()
	}
	if g.irq && g.rng.Intn(8) == 0 {
		return g.segIRQ()
	}
	switch r := g.rng.Intn(100); {
	case r < 28:
		return g.segALU()
	case r < 44:
		return g.segMem()
	case r < 52:
		return g.segBranch()
	case r < 59:
		return g.segLoop()
	case r < 66:
		return g.segLRSC()
	case r < 72:
		return g.segAMO()
	case r < 79:
		return g.segFPU()
	case r < 84:
		return g.segCSR()
	case r < 89:
		return g.segFFlags()
	case r < 93:
		return g.segCustom()
	case r < 96:
		if g.smp {
			return g.segMem()
		}
		return g.segSMC()
	default:
		if g.smp {
			return g.segALU()
		}
		return g.segVector()
	}
}

var aluRR = []string{"add", "sub", "sll", "srl", "sra", "slt", "sltu", "xor", "or", "and",
	"addw", "subw", "sllw", "srlw", "sraw",
	"mul", "mulh", "mulhsu", "mulhu", "mulw",
	"div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw"}
var aluRI = []string{"addi", "slti", "sltiu", "xori", "ori", "andi", "addiw"}

// aluInst emits one random integer ALU instruction.
func (g *gen) aluInst() string {
	rd := g.reg()
	defer func() { g.lastDest = rd }()
	switch g.rng.Intn(10) {
	case 0, 1, 2:
		return fmt.Sprintf("    %s %s, %s, %d", aluRI[g.rng.Intn(len(aluRI))], rd, g.src(), g.rng.Intn(4096)-2048)
	case 3:
		return fmt.Sprintf("    lui %s, %d", rd, g.rng.Intn(1<<20))
	case 4:
		sh := []string{"slli", "srli", "srai"}[g.rng.Intn(3)]
		return fmt.Sprintf("    %s %s, %s, %d", sh, rd, g.src(), g.rng.Intn(64))
	case 5:
		sh := []string{"slliw", "srliw", "sraiw"}[g.rng.Intn(3)]
		return fmt.Sprintf("    %s %s, %s, %d", sh, rd, g.src(), g.rng.Intn(32))
	default:
		return fmt.Sprintf("    %s %s, %s, %s", aluRR[g.rng.Intn(len(aluRR))], rd, g.src(), g.src())
	}
}

func (g *gen) segALU() []string {
	n := 1 + g.rng.Intn(4)
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, g.aluInst())
	}
	return out
}

// segMem mixes scalar loads and stores over the scratch buffer (misaligned
// and line-crossing offsets included) and sp-relative accesses that compress
// to the RVC stack forms: c.ldsp/c.sdsp and the FP spills c.fldsp/c.fsdsp.
func (g *gen) segMem() []string {
	var out []string
	n := 2 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		if g.rng.Intn(10) < 2 { // sp-relative (RVC stack forms)
			switch g.rng.Intn(4) {
			case 0:
				out = append(out, fmt.Sprintf("    sd %s, %d(x2)", g.reg(), g.rng.Intn(32)*8))
			case 1:
				rd := g.reg()
				out = append(out, fmt.Sprintf("    ld %s, %d(x2)", rd, g.rng.Intn(32)*8))
				g.lastDest = rd
			case 2: // FP spill: the full 9-bit c.fsdsp range (0..504)
				out = append(out, fmt.Sprintf("    fsd %s, %d(x2)", g.freg(), g.rng.Intn(64)*8))
			default: // FP reload via c.fldsp
				out = append(out, fmt.Sprintf("    fld %s, %d(x2)", g.freg(), g.rng.Intn(64)*8))
			}
			continue
		}
		size := []int{1, 2, 4, 8}[g.rng.Intn(4)]
		off := g.rng.Intn(bufBytes - 8)
		if g.rng.Intn(10) < 6 { // mostly aligned, often not
			off &^= size - 1
		}
		if g.rng.Intn(2) == 0 {
			st := map[int]string{1: "sb", 2: "sh", 4: "sw", 8: "sd"}[size]
			if size >= 4 && g.rng.Intn(6) == 0 {
				st = map[int]string{4: "fsw", 8: "fsd"}[size]
				out = append(out, fmt.Sprintf("    %s %s, %d(x8)", st, g.freg(), off))
				continue
			}
			out = append(out, fmt.Sprintf("    %s %s, %d(x8)", st, g.src(), off))
		} else {
			lds := map[int][]string{1: {"lb", "lbu"}, 2: {"lh", "lhu"}, 4: {"lw", "lwu"}, 8: {"ld"}}[size]
			ld := lds[g.rng.Intn(len(lds))]
			if size >= 4 && g.rng.Intn(6) == 0 {
				ld = map[int]string{4: "flw", 8: "fld"}[size]
				out = append(out, fmt.Sprintf("    %s %s, %d(x8)", ld, g.freg(), off))
				continue
			}
			rd := g.reg()
			out = append(out, fmt.Sprintf("    %s %s, %d(x8)", ld, rd, off))
			g.lastDest = rd
		}
	}
	return out
}

var branchOps = []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}

// segBranch emits a forward conditional branch over a short block; the
// target lands on whatever alignment compression produces, so branches into
// compressed regions happen naturally.
func (g *gen) segBranch() []string {
	l := g.newLabel("skip")
	a, b := g.src(), g.src()
	if g.rng.Intn(5) == 0 {
		a = "x0"
	}
	out := []string{fmt.Sprintf("    %s %s, %s, %s", branchOps[g.rng.Intn(len(branchOps))], a, b, l)}
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		out = append(out, g.aluInst())
	}
	return append(out, l+":")
}

// segLoop emits a counted loop on the dedicated counter (loop-buffer food).
func (g *gen) segLoop() []string {
	l := g.newLabel("loop")
	out := []string{fmt.Sprintf("    li x29, %d", 2+g.rng.Intn(5)), l + ":"}
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		out = append(out, g.aluInst())
	}
	return append(out, "    addi x29, x29, -1", fmt.Sprintf("    bnez x29, %s", l))
}

// segLRSC emits an LR/SC pair over the buffer, often with an intervening
// store to the same or a different cache line, and sometimes an orphan SC.
func (g *gen) segLRSC() []string {
	w := g.rng.Intn(2) == 0 // word vs double
	suffix, align := ".d", 8
	if w {
		suffix, align = ".w", 4
	}
	off := g.rng.Intn(bufBytes-8) &^ (align - 1)
	out := []string{fmt.Sprintf("    addi x29, x8, %d", off)}
	if g.rng.Intn(6) != 0 { // usually a real LR
		out = append(out, fmt.Sprintf("    lr%s %s, (x29)", suffix, g.reg()))
	}
	switch g.rng.Intn(3) {
	case 0: // intervening store to the same line
		same := off&^63 + g.rng.Intn(64)&^7
		out = append(out, fmt.Sprintf("    sd %s, %d(x8)", g.src(), same))
	case 1: // intervening store to a different line
		other := (off + 64 + g.rng.Intn(bufBytes-128)) % (bufBytes - 8) &^ 7
		out = append(out, fmt.Sprintf("    sd %s, %d(x8)", g.src(), other))
	}
	out = append(out, fmt.Sprintf("    sc%s %s, %s, (x29)", suffix, g.reg(), g.src()))
	return out
}

var amoOps = []string{"amoswap", "amoadd", "amoand", "amoor", "amoxor", "amomax", "amomin"}

func (g *gen) segAMO() []string {
	w := g.rng.Intn(2) == 0
	suffix, align := ".d", 8
	if w {
		suffix, align = ".w", 4
	}
	off := g.rng.Intn(bufBytes-8) &^ (align - 1)
	rd := g.reg()
	g.lastDest = rd
	return []string{
		fmt.Sprintf("    addi x29, x8, %d", off),
		fmt.Sprintf("    %s%s %s, %s, (x29)", amoOps[g.rng.Intn(len(amoOps))], suffix, rd, g.src()),
	}
}

// SMP contention layout inside the shared data buffer. All harts run the same
// program (SPMD), so any buffer offset is automatically contended; these slots
// concentrate the traffic. The contention line (buf+1920..1983) and the
// producer/consumer line (buf+1856..1919, data and flag on the SAME line so
// the fence, not the coherence order, is what the test exercises) both stay
// clear of the handler trace slots at 2024/2032/2040.
const (
	smpLine     = 1920
	smpDataSlot = 1856
	smpFlagSlot = 1864
)

// distinct picks n distinct pool registers (deterministic rng consumption).
func (g *gen) distinct(n int) []string {
	idx := g.rng.Perm(len(gpPool))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = fmt.Sprintf("x%d", gpPool[j])
	}
	return out
}

// segSMP picks one cross-hart contention segment.
func (g *gen) segSMP() []string {
	switch g.rng.Intn(4) {
	case 0:
		return g.segSMPLRSC()
	case 1:
		return g.segSMPAMO()
	case 2:
		return g.segSMPProdCons()
	default:
		return g.segSMPIPI()
	}
}

// segSMPLRSC is an LR/SC retry loop on the shared contention line: every hart
// ping-pongs ownership of one cache line, so SC failures, reservation kills by
// remote stores and the resulting retries are all exercised. The retry count
// is bounded so a pathological interleaving cannot livelock the program.
func (g *gen) segSMPLRSC() []string {
	w := g.rng.Intn(2) == 0
	suffix, align := ".d", 8
	if w {
		suffix, align = ".w", 4
	}
	regs := g.distinct(3)
	rd, ok, cnt := regs[0], regs[1], regs[2]
	off := smpLine + g.rng.Intn(64)&^(align-1)
	retry := g.newLabel("smp_retry")
	done := g.newLabel("smp_done")
	g.lastDest = rd
	return []string{
		fmt.Sprintf("    li %s, %d", cnt, 2+g.rng.Intn(4)),
		fmt.Sprintf("    addi x29, x8, %d", off),
		retry + ":",
		fmt.Sprintf("    lr%s %s, (x29)", suffix, rd),
		fmt.Sprintf("    addi %s, %s, 1", rd, rd),
		fmt.Sprintf("    sc%s %s, %s, (x29)", suffix, ok, rd),
		fmt.Sprintf("    beqz %s, %s", ok, done),
		fmt.Sprintf("    addi %s, %s, -1", cnt, cnt),
		fmt.Sprintf("    bnez %s, %s", cnt, retry),
		done + ":",
	}
}

// segSMPAMO hammers the shared contention line with one atomic op: AMOs from
// different harts to the same line force exclusive-ownership migration at
// every retirement.
func (g *gen) segSMPAMO() []string {
	w := g.rng.Intn(2) == 0
	suffix, align := ".d", 8
	if w {
		suffix, align = ".w", 4
	}
	off := smpLine + g.rng.Intn(64)&^(align-1)
	rd := g.reg()
	g.lastDest = rd
	return []string{
		fmt.Sprintf("    addi x29, x8, %d", off),
		fmt.Sprintf("    %s%s %s, %s, (x29)", amoOps[g.rng.Intn(len(amoOps))], suffix, rd, g.src()),
	}
}

// segSMPProdCons is a fence-ordered producer/consumer handshake: hart 0
// publishes a value then raises a non-zero flag behind a fence; every other
// hart polls the flag ONCE (no spin — lock-step pacing makes arrival
// unpredictable and a spin could livelock) and, if raised, fences and reads
// the data back. Both worlds observe the same memory at the same commit
// boundaries, so the loaded pair must match — a reordered store pair in the
// pipeline world diverges here.
func (g *gen) segSMPProdCons() []string {
	regs := g.distinct(3)
	t, d, f := regs[0], regs[1], regs[2]
	cons := g.newLabel("smp_cons")
	done := g.newLabel("smp_pc_done")
	g.lastDest = d
	return []string{
		fmt.Sprintf("    csrr %s, mhartid", t),
		fmt.Sprintf("    bnez %s, %s", t, cons),
		fmt.Sprintf("    li %s, %d", d, int64(g.rng.Uint64())),
		fmt.Sprintf("    sd %s, %d(x8)", d, smpDataSlot),
		"    fence",
		fmt.Sprintf("    li %s, %d", f, 1+g.rng.Intn(255)),
		fmt.Sprintf("    sd %s, %d(x8)", f, smpFlagSlot),
		fmt.Sprintf("    beq x0, x0, %s", done),
		cons + ":",
		fmt.Sprintf("    ld %s, %d(x8)", f, smpFlagSlot),
		fmt.Sprintf("    beqz %s, %s", f, done),
		"    fence",
		fmt.Sprintf("    ld %s, %d(x8)", d, smpDataSlot),
		done + ":",
	}
}

// segSMPIPI sends a machine-software IPI by storing to a CLINT msip doorbell:
// the target is (mhartid + hop) mod harts, so harts ring each other and
// sometimes themselves. The handler (render installs it for every SMP
// program) clears the doorbell, so delivery is level-triggered but finite.
func (g *gen) segSMPIPI() []string {
	regs := g.distinct(2)
	t, v := regs[0], regs[1]
	hop := g.rng.Intn(g.harts)
	return []string{
		"    csrr x29, mhartid",
		fmt.Sprintf("    addi x29, x29, %d", hop),
		fmt.Sprintf("    li %s, %d", t, g.harts),
		fmt.Sprintf("    remu x29, x29, %s", t),
		"    slli x29, x29, 2",
		fmt.Sprintf("    li %s, 33554432", t), // CLINT msip base 0x0200_0000
		fmt.Sprintf("    add x29, x29, %s", t),
		fmt.Sprintf("    li %s, 1", v),
		fmt.Sprintf("    sw %s, 0(x29)", v),
	}
}

var fpu2 = []string{"fadd", "fsub", "fmul", "fdiv", "fmin", "fmax", "fsgnj", "fsgnjn", "fsgnjx"}
var fcmp = []string{"feq", "flt", "fle"}

func (g *gen) segFPU() []string {
	var out []string
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		sz := []string{".s", ".d"}[g.rng.Intn(2)]
		switch g.rng.Intn(8) {
		case 0:
			rd := g.reg()
			out = append(out, fmt.Sprintf("    %s%s %s, %s, %s", fcmp[g.rng.Intn(3)], sz, rd, g.freg(), g.freg()))
			g.lastDest = rd
		case 1:
			out = append(out, fmt.Sprintf("    fsqrt%s %s, %s", sz, g.freg(), g.freg()))
		case 2:
			out = append(out, fmt.Sprintf("    fmv.d.x %s, %s", g.freg(), g.src()))
		case 3:
			rd := g.reg()
			out = append(out, fmt.Sprintf("    fmv.x.d %s, %s", rd, g.freg()))
			g.lastDest = rd
		case 4:
			cv := []string{"fcvt.w.d", "fcvt.l.d", "fcvt.w.s", "fcvt.l.s"}[g.rng.Intn(4)]
			rd := g.reg()
			out = append(out, fmt.Sprintf("    %s %s, %s", cv, rd, g.freg()))
			g.lastDest = rd
		case 5:
			cv := []string{"fcvt.d.w", "fcvt.d.l", "fcvt.s.w", "fcvt.s.l", "fcvt.d.s", "fcvt.s.d"}[g.rng.Intn(6)]
			src := g.src()
			if cv == "fcvt.d.s" || cv == "fcvt.s.d" {
				src = g.freg()
			}
			out = append(out, fmt.Sprintf("    %s %s, %s", cv, g.freg(), src))
		case 6:
			fm := []string{"fmadd", "fmsub"}[g.rng.Intn(2)]
			out = append(out, fmt.Sprintf("    %s%s %s, %s, %s, %s", fm, sz, g.freg(), g.freg(), g.freg(), g.freg()))
		default:
			out = append(out, fmt.Sprintf("    %s%s %s, %s, %s", fpu2[g.rng.Intn(len(fpu2))], sz, g.freg(), g.freg(), g.freg()))
		}
	}
	return out
}

// segCSR reads and writes scratch CSRs and reads identity/counter CSRs,
// including the clock CSRs — the checker compares those modulo the clock by
// adopting the core's committed read value (see isCycleCSRRead).
func (g *gen) segCSR() []string {
	rd := g.reg()
	g.lastDest = rd
	switch g.rng.Intn(7) {
	case 0:
		return []string{fmt.Sprintf("    csrrw %s, mscratch, %s", rd, g.src())}
	case 1:
		return []string{fmt.Sprintf("    csrrs %s, mscratch, %s", rd, g.src())}
	case 2:
		return []string{fmt.Sprintf("    csrrc %s, sscratch, %s", rd, g.src())}
	case 3:
		op := []string{"csrrwi", "csrrsi", "csrrci"}[g.rng.Intn(3)]
		return []string{fmt.Sprintf("    %s %s, mscratch, %d", op, rd, g.rng.Intn(32))}
	case 4:
		csr := []string{"misa", "mhartid", "mscratch", "sscratch"}[g.rng.Intn(4)]
		return []string{fmt.Sprintf("    csrr %s, %s", rd, csr)}
	case 5: // clock CSRs: compared modulo the clock, then folded into state
		csr := []string{"cycle", "time", "mcycle"}[g.rng.Intn(3)]
		return []string{fmt.Sprintf("    csrr %s, %s", rd, csr)}
	default:
		return []string{fmt.Sprintf("    csrr %s, instret", rd)}
	}
}

// segCustom exercises the XT extension: address-generation fusion, bit
// manipulation, MACs, conditional moves and the indexed memory forms.
func (g *gen) segCustom() []string {
	rd := g.reg()
	g.lastDest = rd
	switch g.rng.Intn(8) {
	case 0:
		return []string{fmt.Sprintf("    addsl %s, %s, %s, %d", rd, g.src(), g.src(), g.rng.Intn(4))}
	case 1:
		lsb := g.rng.Intn(64)
		msb := lsb + g.rng.Intn(64-lsb)
		op := []string{"ext", "extu"}[g.rng.Intn(2)]
		return []string{fmt.Sprintf("    %s %s, %s, %d, %d", op, rd, g.src(), msb, lsb)}
	case 2:
		op := []string{"ff0", "ff1", "rev", "tstnbz"}[g.rng.Intn(4)]
		return []string{fmt.Sprintf("    %s %s, %s", op, rd, g.src())}
	case 3:
		return []string{fmt.Sprintf("    srri %s, %s, %d", rd, g.src(), g.rng.Intn(64))}
	case 4:
		op := []string{"mveqz", "mvnez"}[g.rng.Intn(2)]
		return []string{fmt.Sprintf("    %s %s, %s, %s", op, rd, g.src(), g.src())}
	case 5:
		op := []string{"mula", "muls", "mulah", "mulsh", "mulaw", "mulsw"}[g.rng.Intn(6)]
		return []string{fmt.Sprintf("    %s %s, %s, %s", op, rd, g.src(), g.src())}
	case 6: // indexed load: x29 holds a bounded index
		sh := g.rng.Intn(4)
		op := []string{"lrb", "lrh", "lrw", "lrd", "lurb", "lurh", "lurw"}[g.rng.Intn(7)]
		return []string{
			fmt.Sprintf("    andi x29, %s, %d", g.reg(), 127),
			fmt.Sprintf("    %s %s, x8, x29, %d", op, rd, sh),
		}
	default: // indexed store: data travels in rd
		sh := g.rng.Intn(4)
		op := []string{"srb", "srh", "srw", "srd"}[g.rng.Intn(4)]
		return []string{
			fmt.Sprintf("    andi x29, %s, %d", g.reg(), 127),
			fmt.Sprintf("    %s %s, x8, x29, %d", op, g.reg(), sh),
		}
	}
}

// segSMC patches the next instruction slot with a freshly encoded ALU
// instruction, then executes it after a fence.i. The placeholder is a
// 4-byte `xor x0, x0, x0`, which RVC compression cannot shrink, so the
// patch overwrites exactly one instruction.
func (g *gen) segSMC() []string {
	site := g.newLabel("patch")
	in := isa.NewInst(isa.Op(0))
	for {
		op, ok := isa.ParseOp(aluRR[g.rng.Intn(len(aluRR))])
		if !ok {
			continue
		}
		in = isa.NewInst(op)
		break
	}
	in.Rd = isa.X(gpPool[g.rng.Intn(len(gpPool))])
	in.Rs1 = isa.X(gpPool[g.rng.Intn(len(gpPool))])
	in.Rs2 = isa.X(gpPool[g.rng.Intn(len(gpPool))])
	raw, err := isa.Encode(in)
	if err != nil {
		return g.segALU() // unencodable pick: fall back, keep determinism
	}
	g.lastDest = in.Rd.String()
	carrier := g.reg()
	return []string{
		fmt.Sprintf("    la x29, %s", site),
		fmt.Sprintf("    li %s, %d", carrier, int64(raw)),
		fmt.Sprintf("    sw %s, 0(x29)", carrier),
		"    fence.i",
		site + ":",
		"    xor x0, x0, x0",
	}
}

var vecVVOps = []string{"vadd.vv", "vsub.vv", "vand.vv", "vor.vv", "vxor.vv", "vmul.vv", "vmin.vv", "vmax.vv"}

// segVector emits a small vector block: configure, load, compute, store,
// extract. Four variants cover unit-stride, masked, strided and indexed
// accesses; addresses stay inside the buffer (VL <= 16, SEW == 32 bits).
func (g *gen) segVector() []string {
	switch g.rng.Intn(4) {
	case 0:
		return g.segVectorUnit()
	case 1:
		return g.segVectorMasked()
	case 2:
		return g.segVectorStrided()
	default:
		return g.segVectorIndexed()
	}
}

func (g *gen) segVectorUnit() []string {
	v := func() string { return fmt.Sprintf("v%d", g.rng.Intn(4)) }
	rd := g.reg()
	g.lastDest = rd
	stOff := 1024 + g.rng.Intn(bufBytes/2-64)&^63
	return []string{
		fmt.Sprintf("    li x29, %d", 1+g.rng.Intn(16)),
		fmt.Sprintf("    vsetvli %s, x29, e32, m1", g.reg()),
		fmt.Sprintf("    vle.v %s, (x8)", v()),
		fmt.Sprintf("    %s %s, %s, %s", vecVVOps[g.rng.Intn(len(vecVVOps))], v(), v(), v()),
		fmt.Sprintf("    addi x29, x8, %d", stOff),
		fmt.Sprintf("    vse.v %s, (x29)", v()),
		fmt.Sprintf("    vmv.x.s %s, %s", rd, v()),
	}
}

// segVectorMasked builds a data-dependent mask in v0 with vmseq and runs a
// masked ALU op plus a masked unit-stride store through it: masked-off
// elements must stay undisturbed in both the destination register and the
// stored-to memory in both models.
func (g *gen) segVectorMasked() []string {
	rd := g.reg()
	g.lastDest = rd
	one := g.reg()
	ldOff := g.rng.Intn(256) &^ 3
	stOff := 1024 + g.rng.Intn(bufBytes/2-64)&^63
	return []string{
		fmt.Sprintf("    li x29, %d", 1+g.rng.Intn(16)),
		fmt.Sprintf("    vsetvli %s, x29, e32, m1", rd),
		fmt.Sprintf("    addi x29, x8, %d", ldOff),
		"    vle.v v1, (x29)",
		fmt.Sprintf("    li %s, 1", one),
		fmt.Sprintf("    vmv.v.x v2, %s", one),
		"    vand.vv v3, v1, v2",
		"    vmseq.vv v0, v3, v2", // mask: elements of v1 with bit 0 set
		fmt.Sprintf("    %s v3, v1, v1, v0.t", vecVVOps[g.rng.Intn(len(vecVVOps))]),
		fmt.Sprintf("    addi x29, x8, %d", stOff),
		"    vse.v v3, (x29), v0.t",
		fmt.Sprintf("    vmv.x.s %s, v3", rd),
	}
}

// segVectorStrided loads and stores with a constant byte stride, including
// stride 0 (every element hits the same address; ascending element order
// makes the final value deterministic in both models).
func (g *gen) segVectorStrided() []string {
	rd := g.reg()
	g.lastDest = rd
	sreg := g.reg()
	stride := 4 * g.rng.Intn(15) // 0..56 bytes
	stOff := 1024 + g.rng.Intn(256)&^7
	return []string{
		fmt.Sprintf("    li x29, %d", 1+g.rng.Intn(8)),
		fmt.Sprintf("    vsetvli %s, x29, e32, m1", rd),
		fmt.Sprintf("    li %s, %d", sreg, stride),
		fmt.Sprintf("    vlse.v v1, (x8), %s", sreg),
		fmt.Sprintf("    %s v2, v1, v1", vecVVOps[g.rng.Intn(len(vecVVOps))]),
		fmt.Sprintf("    addi x29, x8, %d", stOff),
		fmt.Sprintf("    vsse.v v2, (x29), %s", sreg),
		fmt.Sprintf("    vmv.x.s %s, v2", rd),
	}
}

// segVectorIndexed derives a bounded index vector from buffer data (each
// offset masked to an 8-byte-aligned value <= 504) and gathers/scatters
// through it; half the scatters are additionally masked through v0.
func (g *gen) segVectorIndexed() []string {
	rd := g.reg()
	g.lastDest = rd
	mreg := g.reg()
	ldOff := g.rng.Intn(512) &^ 3
	out := []string{
		fmt.Sprintf("    li x29, %d", 1+g.rng.Intn(8)),
		fmt.Sprintf("    vsetvli %s, x29, e32, m1", rd),
		fmt.Sprintf("    addi x29, x8, %d", ldOff),
		"    vle.v v2, (x29)",
		fmt.Sprintf("    li %s, %d", mreg, 0x1F8),
		fmt.Sprintf("    vmv.v.x v3, %s", mreg),
		"    vand.vv v2, v2, v3", // offsets: 8-aligned, 0..504
		"    vlxei.v v1, (x8), v2",
		"    vadd.vv v1, v1, v2",
		"    addi x29, x8, 1024",
	}
	if g.rng.Intn(2) == 0 {
		out = append(out,
			fmt.Sprintf("    li %s, 8", mreg),
			fmt.Sprintf("    vmv.v.x v3, %s", mreg),
			"    vand.vv v4, v2, v3",
			"    vmseq.vv v0, v4, v3", // mask: offsets with bit 3 set
			"    vsxei.v v1, (x29), v2, v0.t")
	} else {
		out = append(out, "    vsxei.v v1, (x29), v2")
	}
	return append(out, fmt.Sprintf("    vmv.x.s %s, v1", rd))
}

// segIRQ only appears in interrupt-injection mode: WFI parks (the schedule's
// force-arm wakes it), mstatus.MIE toggles open windows where an armed source
// must stay pending and deliver at the exact commit the window reopens, mip
// and mie reads observe the WARL windows and the source-driven bits, and an
// mtimecmp-shaped store exercises the CLINT doorbell address (plain memory in
// the single-hart checker profile, compared like any other line). Segments
// only ever SET mie bits, so a parked hart is always wakeable.
func (g *gen) segIRQ() []string {
	rd := g.reg()
	switch g.rng.Intn(8) {
	case 0, 1: // park; delivery or wake-without-take follows
		return []string{"    wfi"}
	case 2: // interrupts-off window: delivery defers to the closing csrrsi
		out := []string{"    csrrci x0, mstatus, 8"}
		for i := 0; i < 1+g.rng.Intn(3); i++ {
			out = append(out, g.aluInst())
		}
		return append(out, "    csrrsi x0, mstatus, 8")
	case 3: // nested toggle with a WFI inside: pending-but-disabled unparks
		return []string{
			"    csrrci x0, mstatus, 8",
			g.aluInst(),
			"    wfi",
			"    csrrsi x0, mstatus, 8",
		}
	case 4: // observe the live mip bits and the interrupt enables
		g.lastDest = rd
		csr := []string{"mip", "mie", "mideleg", "mstatus"}[g.rng.Intn(4)]
		return []string{fmt.Sprintf("    csrr %s, %s", rd, csr)}
	case 5: // WARL probe: set every bit, read back the writable window
		g.lastDest = rd
		t := g.reg()
		csr := []string{"mie", "mideleg"}[g.rng.Intn(2)]
		return []string{
			fmt.Sprintf("    li %s, -1", t),
			fmt.Sprintf("    csrrs %s, %s, %s", rd, csr, t),
		}
	default: // mtimecmp-style doorbell write
		return []string{
			"    li x29, 33570816", // 0x02004000: CLINT mtimecmp
			fmt.Sprintf("    sd %s, 0(x29)", g.src()),
		}
	}
}

// segFFlags provokes IEEE exception flags and reads them straight back:
// the fflags/frm/fcsr windows and mstatus.FS dirtying are the conformance
// surface the checker compares per commit.
func (g *gen) segFFlags() []string {
	rd := g.reg()
	g.lastDest = rd
	t := g.reg()
	f := g.freg()
	switch g.rng.Intn(6) {
	case 0: // a random divide is almost always inexact, sometimes much worse
		return []string{
			fmt.Sprintf("    fdiv.d %s, %s, %s", g.freg(), g.freg(), g.freg()),
			fmt.Sprintf("    csrr %s, fflags", rd),
		}
	case 1: // invalid: signaling NaN through an add
		return []string{
			fmt.Sprintf("    li %s, %d", t, int64(0x7FF0000000000001)),
			fmt.Sprintf("    fmv.d.x %s, %s", f, t),
			fmt.Sprintf("    fadd.d %s, %s, %s", g.freg(), f, g.freg()),
			fmt.Sprintf("    csrr %s, fflags", rd),
		}
	case 2: // overflow: square the largest finite exponent
		return []string{
			fmt.Sprintf("    li %s, %d", t, int64(0x7FE0000000000000)),
			fmt.Sprintf("    fmv.d.x %s, %s", f, t),
			fmt.Sprintf("    fmul.d %s, %s, %s", g.freg(), f, f),
			fmt.Sprintf("    csrr %s, fcsr", rd),
		}
	case 3: // underflow: square the smallest normal
		return []string{
			fmt.Sprintf("    li %s, %d", t, int64(0x0010000000000000)),
			fmt.Sprintf("    fmv.d.x %s, %s", f, t),
			fmt.Sprintf("    fmul.d %s, %s, %s", g.freg(), f, f),
			fmt.Sprintf("    csrr %s, fflags", rd),
		}
	case 4: // clear, accrue, read back
		return []string{
			"    csrrwi x0, fflags, 0",
			fmt.Sprintf("    fsqrt.d %s, %s", g.freg(), g.freg()),
			fmt.Sprintf("    csrr %s, fflags", rd),
		}
	default: // frm write (non-functional rounding, but state must match)
		return []string{
			fmt.Sprintf("    csrrwi %s, frm, %d", rd, g.rng.Intn(8)),
			fmt.Sprintf("    csrr %s, fcsr", t),
		}
	}
}

// segPaged emits segments that only make sense under translation: accesses
// through the +1GB alias window sharing physical lines with identity
// addresses, page-crossing accesses, and (rarely) an outright page fault
// that ends the program.
func (g *gen) segPaged() []string {
	switch g.rng.Intn(8) {
	case 0:
		return g.segPageFault()
	case 1, 2:
		return g.segAliasStore()
	case 3:
		return g.segPageCross()
	default:
		return g.segAliasLRSC()
	}
}

// segAliasLRSC stresses the VA-vs-PA reservation granule: a reservation
// taken through one virtual window must interact with accesses through the
// other exactly as the shared physical line dictates.
func (g *gen) segAliasLRSC() []string {
	w := g.rng.Intn(2) == 0
	suffix, align := ".d", 8
	if w {
		suffix, align = ".w", 4
	}
	off := g.rng.Intn(bufBytes-8) &^ (align - 1)
	t := g.reg()
	if g.rng.Intn(2) == 0 {
		// LR through the alias, SC through the identity VA: the reservation
		// is physical, so the SC must succeed in both models.
		return []string{
			fmt.Sprintf("    addi x29, x8, %d", off),
			fmt.Sprintf("    li %s, %d", t, pagedOffset),
			fmt.Sprintf("    add %s, %s, x29", t, t),
			fmt.Sprintf("    lr%s %s, (%s)", suffix, g.reg(), t),
			fmt.Sprintf("    sc%s %s, %s, (x29)", suffix, g.reg(), g.src()),
		}
	}
	// LR through the identity VA, intervening store through the alias —
	// same physical line kills the reservation, a different line keeps it.
	var aliasOff int
	if g.rng.Intn(3) == 0 {
		aliasOff = (off + 64 + g.rng.Intn(bufBytes-128)) % (bufBytes - 8) &^ 7
	} else {
		aliasOff = off&^63 + g.rng.Intn(64)&^7
	}
	return []string{
		fmt.Sprintf("    addi x29, x8, %d", off),
		fmt.Sprintf("    lr%s %s, (x29)", suffix, g.reg()),
		fmt.Sprintf("    li %s, %d", t, pagedOffset),
		fmt.Sprintf("    add %s, %s, x8", t, t),
		fmt.Sprintf("    sd %s, %d(%s)", g.src(), aliasOff, t),
		fmt.Sprintf("    sc%s %s, %s, (x29)", suffix, g.reg(), g.src()),
	}
}

// segAliasStore writes through one window and reads through the other: both
// models must observe the store at the shared physical address.
func (g *gen) segAliasStore() []string {
	rd := g.reg()
	g.lastDest = rd
	t := g.reg()
	off := g.rng.Intn(bufBytes-8) &^ 7
	return []string{
		fmt.Sprintf("    li %s, %d", t, pagedOffset),
		fmt.Sprintf("    add %s, %s, x8", t, t),
		fmt.Sprintf("    sd %s, %d(%s)", g.src(), off, t),
		fmt.Sprintf("    ld %s, %d(x8)", rd, off),
	}
}

// segPageCross accesses a doubleword straddling a 4K page boundary through
// the alias window (the pages map physically contiguous memory, so the
// access is legal in both models). The boundary at the stack base is used
// because the bytes on either side are plain data in every profile.
func (g *gen) segPageCross() []string {
	rd := g.reg()
	g.lastDest = rd
	t := g.reg()
	addr := pagedOffset + stackBase - uint64(1+g.rng.Intn(7))
	out := []string{fmt.Sprintf("    li %s, %d", t, addr)}
	if g.rng.Intn(2) == 0 {
		out = append(out, fmt.Sprintf("    sd %s, 0(%s)", g.src(), t))
	}
	return append(out, fmt.Sprintf("    ld %s, 0(%s)", rd, t))
}

// segPageFault runs off the end of the alias window into the first unmapped
// page. With every exception delegated and stvec=0, both models must latch
// the same scause/stval/sepc and halt with -(16+cause).
func (g *gen) segPageFault() []string {
	t := g.reg()
	addr := pagedOffset + pagedPhysSize + uint64(g.rng.Intn(4096)&^7)
	out := []string{fmt.Sprintf("    li %s, %d", t, addr)}
	if g.rng.Intn(2) == 0 {
		return append(out, fmt.Sprintf("    ld %s, 0(%s)", g.reg(), t))
	}
	return append(out, fmt.Sprintf("    sd %s, 0(%s)", g.src(), t))
}
