package cosim

// SeedRecord is the per-seed JSON row of a fuzz campaign — the format behind
// `xtfuzz -json` and the campaign service's merged fuzz reports. Both emit
// exactly this struct, which is what makes a sharded, restart-resumed
// campaign's merged report byte-identical to a direct xtfuzz run over the
// same seed range.
type SeedRecord struct {
	Seed    int64  `json:"seed"`
	Status  string `json:"status"` // ok | diverged | timeout
	Commits uint64 `json:"commits"`
	Cycles  uint64 `json:"cycles"`
	Kind    string `json:"kind,omitempty"`
	Hart    int    `json:"hart,omitempty"`
	Retried bool   `json:"retried,omitempty"`
}

// NewSeedRecord classifies one fuzz outcome into its report row.
func NewSeedRecord(fr FuzzResult) SeedRecord {
	rec := SeedRecord{Seed: fr.Seed, Status: "ok", Commits: fr.Result.Commits,
		Cycles: fr.Result.Cycles, Kind: fr.Result.Kind, Hart: fr.Result.Hart, Retried: fr.Retried}
	switch {
	case fr.TimedOut:
		rec.Status = "timeout"
	case fr.Diverged:
		rec.Status = "diverged"
	}
	return rec
}
