package cosim

import (
	"encoding/json"
	"testing"

	"xt910/internal/core"
)

// TestSuperblockFastPathIdentity pins the host-speed fast path's soundness
// contract at the cosim level: the predecode cache, the superblock trace
// cache and idle fast-forward are pure host-speed mechanisms, so a fuzz run
// with all three enabled must be byte-identical — architectural state, cycle
// counts, divergence verdicts, JSON-visible report fields — to the same run
// with all three disabled, in every mode profile. Any difference here means
// the fast path changed simulated behaviour, which is a bug by definition.
func TestSuperblockFastPathIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-seed A/B sweep is not short")
	}
	cfgOn := core.XT910Config()
	if !cfgOn.PredecodeCache || !cfgOn.PredecodeSuperblock || !cfgOn.FastForward {
		t.Fatal("XT910Config no longer enables the fast path; the A arm tests nothing")
	}
	cfgOff := core.XT910Config()
	cfgOff.PredecodeCache = false
	cfgOff.PredecodeSuperblock = false
	cfgOff.FastForward = false

	profiles := []struct {
		name  string
		modes Modes
	}{
		{"base", Modes{}},
		{"paged", Modes{Paged: true}},
		{"irq", Modes{IRQ: true}},
		{"smp", Modes{SMP: true}},
	}
	for _, p := range profiles {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 8; seed++ {
				on := Fuzz(seed, 0, Options{Modes: p.modes, Config: cfgOn})
				off := Fuzz(seed, 0, Options{Modes: p.modes, Config: cfgOff})
				if on.Err != nil || off.Err != nil {
					t.Fatalf("seed %d: generation failed: on=%v off=%v", seed, on.Err, off.Err)
				}
				if on.Diverged || off.Diverged {
					t.Fatalf("seed %d: divergence (on=%v off=%v):\n%s%s",
						seed, on.Diverged, off.Diverged, on.Result.Report, off.Result.Report)
				}
				if on.Source != off.Source {
					t.Fatalf("seed %d: generated program differs between arms", seed)
				}
				// Result is a comparable struct: this covers commits, cycles,
				// exit code, divergence class, hart, fail commit and the full
				// formatted report in one shot.
				if on.Result != off.Result {
					t.Fatalf("seed %d: results differ\n  fast path on:  %+v\n  fast path off: %+v",
						seed, on.Result, off.Result)
				}
				// The JSON-report view must agree too (guards against a future
				// field that compares equal but marshals differently).
				jOn, err := json.Marshal(on.Result)
				if err != nil {
					t.Fatal(err)
				}
				jOff, err := json.Marshal(off.Result)
				if err != nil {
					t.Fatal(err)
				}
				if string(jOn) != string(jOff) {
					t.Fatalf("seed %d: JSON reports differ\non:  %s\noff: %s", seed, jOn, jOff)
				}
			}
		})
	}
}
