// Package sched is the experiment engine behind the paper-reproduction
// harness: a deterministic bounded worker pool that runs independent
// simulator instances (each experiment, each core-config arm, each ablation)
// concurrently across GOMAXPROCS goroutines.
//
// Determinism contract: results are returned in job-submission order and
// every job builds its own simulator state, so the output of a run is
// byte-identical whatever the worker count — `-jobs 1` and `-jobs N` produce
// the same tables, only the wall clock differs. A panicking simulation is
// converted into a structured *JobError carrying a *PanicError instead of
// killing the process, and every job gets its own context.Context with
// optional deadline for cancellation.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one unit of work: an independent simulation executed on its own
// worker goroutine.
type Job struct {
	// ID names the job in results, errors and the progress stream.
	ID string
	// Run performs the work. The context carries the job's cancellation,
	// deadline and metrics accounting; simulations report progress through
	// AddCycles(ctx, n).
	Run func(ctx context.Context) (any, error)
	// Timeout, when positive, bounds this job's wall time (overriding the
	// pool-wide Options.Timeout).
	Timeout time.Duration
}

// Result is the outcome of one job together with its host-side metrics.
type Result struct {
	ID    string
	Value any
	Err   error
	// Wall is the host wall-clock time the job took.
	Wall time.Duration
	// Cycles is the number of simulated cycles the job reported through
	// AddCycles — the sim-side progress measure.
	Cycles uint64
	// Instrs is the number of retired instructions the job reported through
	// AddInstrs — the numerator of the host-MIPS throughput measure.
	Instrs uint64
}

// CyclesPerSec returns the simulation rate: simulated cycles per host second.
func (r Result) CyclesPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Cycles) / r.Wall.Seconds()
}

// MIPS returns the simulation throughput in millions of retired instructions
// per host second — the conventional figure of merit for simulator speed.
func (r Result) MIPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Instrs) / r.Wall.Seconds() / 1e6
}

// JobError attributes a failure to a job; Unwrap exposes the cause so
// errors.Is/As see through it.
type JobError struct {
	ID  string
	Err error
}

func (e *JobError) Error() string { return e.ID + ": " + e.Err.Error() }
func (e *JobError) Unwrap() error { return e.Err }

// PanicError is a recovered panic from a crashed simulation, converted into
// an ordinary error so one bad experiment cannot kill the whole run.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("simulation panicked: %v", e.Value) }

// Options tunes a pool run.
type Options struct {
	// Workers bounds concurrency; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Timeout, when positive, is the default per-job deadline.
	Timeout time.Duration
	// OnDone, when set, receives each Result as its job completes
	// (completion order, serialized — safe to write to a terminal).
	OnDone func(Result)

	// OnResult, when set, receives each Result together with its job index as
	// it completes. Like OnDone it fires in completion order and is
	// serialized, but the index ties the result back to its submission slot,
	// which is what incremental consumers (checkpointing a long campaign
	// result by result instead of waiting for pool drain) need. The batch
	// return of Run is unaffected: results are still merged deterministically
	// in job-submission order, byte-identical at any worker count.
	OnResult func(index int, r Result)
}

// ctxKey keys the per-job metrics slot carried by the job context.
type ctxKey int

const (
	cyclesKey ctxKey = iota
	instrsKey
)

// AddCycles credits n simulated cycles to the job owning ctx. It is a no-op
// on contexts that did not come from Run, so harness code can call it
// unconditionally.
func AddCycles(ctx context.Context, n uint64) {
	if c, ok := ctx.Value(cyclesKey).(*atomic.Uint64); ok {
		c.Add(n)
	}
}

// AddInstrs credits n retired instructions to the job owning ctx (same
// contract as AddCycles).
func AddInstrs(ctx context.Context, n uint64) {
	if c, ok := ctx.Value(instrsKey).(*atomic.Uint64); ok {
		c.Add(n)
	}
}

// Run executes jobs on a bounded worker pool and returns one Result per job,
// in job order regardless of completion order. It never returns an error
// itself: per-job failures (including recovered panics and cancellation) are
// recorded in the corresponding Result.Err as a *JobError.
func Run(ctx context.Context, jobs []Job, o Options) []Result {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	idx := make(chan int)
	var done sync.Mutex // serializes OnDone/OnResult
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := runJob(ctx, jobs[i], o.Timeout)
				results[i] = r
				if o.OnDone != nil || o.OnResult != nil {
					done.Lock()
					if o.OnDone != nil {
						o.OnDone(r)
					}
					if o.OnResult != nil {
						o.OnResult(i, r)
					}
					done.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runJob executes one job with panic recovery, deadline and metrics.
func runJob(ctx context.Context, j Job, defaultTimeout time.Duration) Result {
	res := Result{ID: j.ID}
	if err := ctx.Err(); err != nil {
		// the whole run was cancelled before this job started
		res.Err = &JobError{ID: j.ID, Err: err}
		return res
	}
	var cycles, instrs atomic.Uint64
	jctx := context.WithValue(ctx, cyclesKey, &cycles)
	jctx = context.WithValue(jctx, instrsKey, &instrs)
	if d := j.Timeout; d > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(jctx, d)
		defer cancel()
	} else if defaultTimeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(jctx, defaultTimeout)
		defer cancel()
	}
	start := time.Now()
	func() {
		defer func() {
			if v := recover(); v != nil {
				res.Err = &JobError{ID: j.ID, Err: &PanicError{Value: v, Stack: debug.Stack()}}
			}
		}()
		v, err := j.Run(jctx)
		res.Value = v
		if err != nil {
			res.Err = &JobError{ID: j.ID, Err: err}
		}
	}()
	res.Wall = time.Since(start)
	res.Cycles = cycles.Load()
	res.Instrs = instrs.Load()
	// nested pools: credit this job's cycles to any enclosing job so the
	// outer metrics stream sees the whole simulation volume
	AddCycles(ctx, res.Cycles)
	AddInstrs(ctx, res.Instrs)
	return res
}

// FirstError returns the first failed result in job order (matching what a
// serial run would have reported), or nil if every job succeeded.
func FirstError(rs []Result) error {
	for _, r := range rs {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
