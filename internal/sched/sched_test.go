package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestResultsInJobOrder(t *testing.T) {
	// jobs finish in reverse submission order; results must not
	const n = 8
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{ID: fmt.Sprintf("job%d", i), Run: func(ctx context.Context) (any, error) {
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return i, nil
		}}
	}
	rs := Run(context.Background(), jobs, Options{Workers: n})
	if len(rs) != n {
		t.Fatalf("got %d results, want %d", len(rs), n)
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.Value.(int) != i {
			t.Fatalf("result %d holds value %v — completion order leaked into result order", i, r.Value)
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func() []Job {
		jobs := make([]Job, 16)
		for i := range jobs {
			i := i
			jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) (any, error) {
				return i * i, nil
			}}
		}
		return jobs
	}
	serial := Run(context.Background(), mk(), Options{Workers: 1})
	par := Run(context.Background(), mk(), Options{Workers: 8})
	for i := range serial {
		if serial[i].Value != par[i].Value || serial[i].ID != par[i].ID {
			t.Fatalf("worker count changed result %d: %v vs %v", i, serial[i], par[i])
		}
	}
}

func TestPanicBecomesJobError(t *testing.T) {
	jobs := []Job{
		{ID: "ok", Run: func(ctx context.Context) (any, error) { return 1, nil }},
		{ID: "boom", Run: func(ctx context.Context) (any, error) { panic("simulated crash") }},
		{ID: "also-ok", Run: func(ctx context.Context) (any, error) { return 3, nil }},
	}
	rs := Run(context.Background(), jobs, Options{Workers: 2})
	if rs[0].Err != nil || rs[2].Err != nil {
		t.Fatalf("healthy jobs must survive a sibling panic: %v / %v", rs[0].Err, rs[2].Err)
	}
	err := rs[1].Err
	if err == nil {
		t.Fatal("panic was not converted into an error")
	}
	var je *JobError
	if !errors.As(err, &je) || je.ID != "boom" {
		t.Fatalf("want *JobError{ID: boom}, got %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want wrapped *PanicError, got %v", err)
	}
	if pe.Value != "simulated crash" || len(pe.Stack) == 0 {
		t.Fatalf("panic payload lost: %v", pe)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error does not name the job: %q", err)
	}
}

func TestPerJobTimeout(t *testing.T) {
	jobs := []Job{{
		ID:      "slow",
		Timeout: 5 * time.Millisecond,
		Run: func(ctx context.Context) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}}
	rs := Run(context.Background(), jobs, Options{})
	if !errors.Is(rs[0].Err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", rs[0].Err)
	}
}

func TestPoolTimeoutDefault(t *testing.T) {
	jobs := []Job{{ID: "slow", Run: func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}}
	rs := Run(context.Background(), jobs, Options{Timeout: 5 * time.Millisecond})
	if !errors.Is(rs[0].Err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", rs[0].Err)
	}
}

func TestCancelledRunMarksUnstartedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job{
		{ID: "a", Run: func(ctx context.Context) (any, error) { return 1, nil }},
		{ID: "b", Run: func(ctx context.Context) (any, error) { return 2, nil }},
	}
	rs := Run(ctx, jobs, Options{Workers: 1})
	for _, r := range rs {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %s: want Canceled, got %v", r.ID, r.Err)
		}
	}
}

func TestAddCyclesMetrics(t *testing.T) {
	jobs := []Job{{ID: "sim", Run: func(ctx context.Context) (any, error) {
		AddCycles(ctx, 1000)
		AddCycles(ctx, 234)
		return nil, nil
	}}}
	rs := Run(context.Background(), jobs, Options{})
	if rs[0].Cycles != 1234 {
		t.Fatalf("cycles = %d, want 1234", rs[0].Cycles)
	}
	if rs[0].Wall <= 0 {
		t.Fatal("wall time not recorded")
	}
	if rs[0].CyclesPerSec() <= 0 {
		t.Fatal("cycles/sec not derivable")
	}
	// AddCycles on a foreign context is a harmless no-op
	AddCycles(context.Background(), 5)
}

func TestNestedPoolsPropagateCycles(t *testing.T) {
	outer := []Job{{ID: "outer", Run: func(ctx context.Context) (any, error) {
		inner := []Job{
			{ID: "i0", Run: func(ctx context.Context) (any, error) { AddCycles(ctx, 100); return nil, nil }},
			{ID: "i1", Run: func(ctx context.Context) (any, error) { AddCycles(ctx, 200); return nil, nil }},
		}
		irs := Run(ctx, inner, Options{Workers: 2})
		if err := FirstError(irs); err != nil {
			return nil, err
		}
		AddCycles(ctx, 1)
		return nil, nil
	}}}
	rs := Run(context.Background(), outer, Options{})
	if rs[0].Cycles != 301 {
		t.Fatalf("outer job cycles = %d, want 301 (inner pools must credit the enclosing job)", rs[0].Cycles)
	}
}

func TestOnDoneStreamsEveryJob(t *testing.T) {
	var seen atomic.Int32
	jobs := make([]Job, 10)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) (any, error) { return nil, nil }}
	}
	Run(context.Background(), jobs, Options{Workers: 4, OnDone: func(Result) { seen.Add(1) }})
	if got := seen.Load(); got != 10 {
		t.Fatalf("OnDone fired %d times, want 10", got)
	}
}

func TestOnResultStreamsIndexedResults(t *testing.T) {
	jobs := make([]Job, 12)
	for i := range jobs {
		i := i
		jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) (any, error) { return i * i, nil }}
	}
	// The callback must see every job exactly once, with the index matching
	// the submission slot, and callbacks must be serialized (no lock needed
	// around the map).
	seen := make(map[int]int)
	rs := Run(context.Background(), jobs, Options{Workers: 4, OnResult: func(i int, r Result) {
		seen[i] = r.Value.(int)
	}})
	if len(seen) != len(jobs) {
		t.Fatalf("OnResult fired for %d jobs, want %d", len(seen), len(jobs))
	}
	for i := range jobs {
		if seen[i] != i*i {
			t.Fatalf("OnResult index %d carried value %d, want %d", i, seen[i], i*i)
		}
		// the batch return must be unaffected by streaming
		if rs[i].Value.(int) != i*i {
			t.Fatalf("batch result %d = %v, want %d", i, rs[i].Value, i*i)
		}
	}
}

func TestFirstErrorIsJobOrder(t *testing.T) {
	errB := errors.New("b failed")
	errD := errors.New("d failed")
	jobs := []Job{
		{ID: "a", Run: func(ctx context.Context) (any, error) { return nil, nil }},
		{ID: "b", Run: func(ctx context.Context) (any, error) {
			time.Sleep(10 * time.Millisecond)
			return nil, errB
		}},
		{ID: "c", Run: func(ctx context.Context) (any, error) { return nil, nil }},
		{ID: "d", Run: func(ctx context.Context) (any, error) { return nil, errD }},
	}
	rs := Run(context.Background(), jobs, Options{Workers: 4})
	if err := FirstError(rs); !errors.Is(err, errB) {
		t.Fatalf("FirstError must report job order, not completion order: got %v", err)
	}
	if FirstError(nil) != nil {
		t.Fatal("FirstError(nil) must be nil")
	}
}

func TestEmptyAndDefaults(t *testing.T) {
	if rs := Run(context.Background(), nil, Options{}); len(rs) != 0 {
		t.Fatalf("empty job list must yield empty results, got %d", len(rs))
	}
	// Workers <= 0 falls back to GOMAXPROCS and must still work
	rs := Run(context.Background(), []Job{{ID: "x", Run: func(ctx context.Context) (any, error) { return 7, nil }}},
		Options{Workers: -3})
	if rs[0].Value.(int) != 7 {
		t.Fatalf("default worker count broken: %v", rs[0])
	}
}
