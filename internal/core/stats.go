package core

import (
	"fmt"

	"xt910/isa"
)

// Stats aggregates the performance counters the XT-910's performance monitor
// unit exposes (§II) and the harness reports.
type Stats struct {
	Cycles  uint64
	Retired uint64
	Renamed uint64
	Issued  uint64

	Branches      uint64
	BrMispredicts uint64
	Flushes       uint64

	Loads              uint64
	Stores             uint64
	Atomics            uint64
	LoadMisses         uint64
	StoreForwards      uint64
	UnalignedAccesses  uint64
	MemOrderViolations uint64
	MemOrderFlushes    uint64
	CrossHartSquashes  uint64
	SerializeFlushes   uint64
	Traps              uint64
	Interrupts         uint64
	WFIParkedCycles    uint64

	StallROB  uint64
	StallLQ   uint64
	StallSQ   uint64
	StallIQ   uint64
	StallPhys uint64
	StallCkpt uint64

	FetchJalrStalls  uint64
	L0BTBRedirects   uint64
	LoopBufRedirects uint64
	LoopBufInsts     uint64

	VecOps      uint64
	VlSpecFails uint64

	PFDroppedTLB uint64

	// PredecodeHits/Misses count fetch-path decodes served by (or filled
	// into) the host-side predecode cache; SuperblockHits counts decodes
	// replayed from cached fetch-group runs (which bypass the per-
	// instruction cache entirely, so toggling superblocks shifts the
	// Predecode* counters too — these three are the only host-side counters
	// that may differ between superblock-on and superblock-off runs).
	PredecodeHits   uint64
	PredecodeMisses uint64
	SuperblockHits  uint64

	// HeadStall* histogram why retirement was blocked (cycles, by the class
	// of the ROB-head instruction) — the profiler view of where time goes.
	HeadStallLoad  uint64
	HeadStallStore uint64
	HeadStallFPU   uint64
	HeadStallALU   uint64
	HeadStallVec   uint64
	HeadStallOther uint64
	HeadStallEmpty uint64
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// MispredictRate returns branch mispredictions per branch.
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.BrMispredicts) / float64(s.Branches)
}

// String summarizes the headline counters.
func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d retired=%d IPC=%.3f branches=%d mispred=%.2f%% loads=%d stores=%d fwd=%d flushes=%d",
		s.Cycles, s.Retired, s.IPC(), s.Branches, 100*s.MispredictRate(),
		s.Loads, s.Stores, s.StoreForwards, s.Flushes)
}

// CheckInvariants validates internal pipeline consistency; tests call it
// after runs to catch resource leaks early. It returns a description of the
// first violation found, or "" when everything holds.
func (c *Core) CheckInvariants() string {
	// free list entries must be unique and disjoint from the retirement map
	seen := make(map[int16]bool, len(c.pf.free))
	for _, p := range c.pf.free {
		if seen[p] {
			return "duplicate physical register on the free list"
		}
		seen[p] = true
	}
	for r, p := range c.archRAT {
		if seen[p] {
			return "architectural register " + isa.Reg(r).String() + " maps to a freed physical register"
		}
	}
	// every issue-queue entry must reference a live ROB slot
	for pipe := range c.queues {
		for _, idx := range c.queues[pipe] {
			if !c.robQ.live(idx) {
				return "issue queue references a dead ROB slot"
			}
		}
	}
	// LQ/SQ entries must be ordered by sequence number
	for i := 1; i < len(c.lq); i++ {
		if c.lq[i-1].seq >= c.lq[i].seq {
			return "load queue out of order"
		}
	}
	for i := 1; i < len(c.sq); i++ {
		if c.sq[i-1].seq >= c.sq[i].seq {
			return "store queue out of order"
		}
	}
	return ""
}
