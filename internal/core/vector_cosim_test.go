package core

import (
	"fmt"
	"math/rand"
	"testing"

	"xt910/internal/asm"
	"xt910/internal/emu"
	"xt910/internal/mem"
)

// TestRandomVectorCoSim generates random vector programs (configuration
// changes, loads/stores, arithmetic, MACs, reductions) and verifies that the
// pipeline's vector architectural state and memory match the emulator's
// exactly — the vector path executes in its own ordered queue, so this guards
// its ordering rules.
func TestRandomVectorCoSim(t *testing.T) {
	rng := rand.New(rand.NewSource(771))
	for trial := 0; trial < 20; trial++ {
		src := genVectorProgram(rng)
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			p, err := asm.Assemble(src, asm.Options{Base: 0x1000})
			if err != nil {
				t.Fatal(err)
			}
			c, cm := buildCore(XT910Config())
			p.LoadInto(cm)
			c.Reset(p.Entry, 0x80000)
			c.Run(10_000_000)

			m := emu.New(mem.NewMemory())
			p.LoadInto(m.Mem)
			m.PC = p.Entry
			m.X[2] = 0x80000
			if err := m.Run(10_000_000); err != nil {
				t.Fatal(err)
			}
			if !c.Halted || !m.Halted {
				t.Fatalf("halt: core=%v emu=%v", c.Halted, m.Halted)
			}
			if c.ExitCode != m.ExitCode {
				t.Fatalf("exit: core=%d emu=%d", c.ExitCode, m.ExitCode)
			}
			if !c.Vec.File.Equal(m.Vec.File) {
				for r := 0; r < 32; r++ {
					a, b := c.Vec.File.Bytes(r), m.Vec.File.Bytes(r)
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("v%d byte %d: core=%02x emu=%02x", r, i, a[i], b[i])
						}
					}
				}
			}
			// compare the scratch buffer contents (vector stores)
			base := p.Symbols["vbuf"]
			for off := uint64(0); off < 512; off += 8 {
				if got, want := c.Mem.Read(base+off, 8), m.Mem.Read(base+off, 8); got != want {
					t.Fatalf("vbuf+%d: core=%#x emu=%#x", off, got, want)
				}
			}
		})
	}
}

// genVectorProgram builds a random but well-formed vector program over a
// scratch buffer. Register groups are kept LMUL-aligned.
func genVectorProgram(rng *rand.Rand) string {
	var b []byte
	app := func(s string) { b = append(b, s...); b = append(b, '\n') }
	app("_start:")
	app("    la   s0, vbuf")
	app("    li   a0, 0")
	// seed the buffer deterministically
	app("    li   t0, 64")
	app("    mv   t1, s0")
	app("    li   t2, 0x9E3779B97F4A7C15")
	app("    li   t3, 1")
	app("init:")
	app("    mul  t3, t3, t2")
	app("    sd   t3, 0(t1)")
	app("    addi t1, t1, 8")
	app("    addi t0, t0, -1")
	app("    bnez t0, init")

	sews := []string{"e8", "e16", "e32", "e64"}
	lmuls := []string{"m1", "m2", "m4"}
	lmulOf := map[string]int{"m1": 1, "m2": 2, "m4": 4}
	n := 6 + rng.Intn(10)
	lm := lmuls[rng.Intn(len(lmuls))]
	group := lmulOf[lm]
	vreg := func() string { return fmt.Sprintf("v%d", rng.Intn(32/group)*group) }
	app(fmt.Sprintf("    li t0, %d", 1+rng.Intn(64)))
	app(fmt.Sprintf("    vsetvli t1, t0, %s, %s", sews[rng.Intn(len(sews))], lm))
	for i := 0; i < n; i++ {
		switch rng.Intn(9) {
		case 0: // reconfigure
			lm = lmuls[rng.Intn(len(lmuls))]
			group = lmulOf[lm]
			app(fmt.Sprintf("    li t0, %d", 1+rng.Intn(64)))
			app(fmt.Sprintf("    vsetvli t1, t0, %s, %s", sews[rng.Intn(len(sews))], lm))
		case 1:
			app(fmt.Sprintf("    vle.v %s, (s0)", vreg()))
		case 2:
			app(fmt.Sprintf("    vse.v %s, (s0)", vreg()))
		case 3:
			app(fmt.Sprintf("    vadd.vv %s, %s, %s", vreg(), vreg(), vreg()))
		case 4:
			app(fmt.Sprintf("    vmul.vv %s, %s, %s", vreg(), vreg(), vreg()))
		case 5:
			app(fmt.Sprintf("    vmacc.vv %s, %s, %s", vreg(), vreg(), vreg()))
		case 6:
			app(fmt.Sprintf("    li t2, %d", rng.Intn(1000)))
			app(fmt.Sprintf("    vmv.v.x %s, t2", vreg()))
		case 7:
			app(fmt.Sprintf("    vredsum.vs %s, %s, %s", vreg(), vreg(), vreg()))
		case 8: // scalar interleave: exercises vector/scalar ordering
			app(fmt.Sprintf("    vmv.x.s t3, %s", vreg()))
			app("    add  a0, a0, t3")
			app("    sd   t3, 504(s0)")
			app("    ld   t4, 504(s0)")
			app("    add  a0, a0, t4")
		}
	}
	app("    vmv.x.s t3, v0")
	app("    add  a0, a0, t3")
	app("    li a7, 93")
	app("    ecall")
	app(".align 6")
	app("vbuf: .space 1024")
	return string(b)
}
