package core

import (
	"xt910/internal/mmu"
	"xt910/isa"
)

const (
	mmuAccLoad  = mmu.AccLoad
	mmuAccStore = mmu.AccStore
)

func (c *Core) mmuTranslate(va uint64, acc mmu.Access) (uint64, uint64, error) {
	return c.MMU.Translate(va, acc, c.now)
}

// findSQ locates a store-queue entry by sequence number.
func (c *Core) findSQ(seq uint64) *sqEntry {
	for i := range c.sq {
		if c.sq[i].seq == seq {
			return &c.sq[i]
		}
	}
	return nil
}

func (c *Core) findLQ(seq uint64) *lqEntry {
	for i := range c.lq {
		if c.lq[i].seq == seq {
			return &c.lq[i]
		}
	}
	return nil
}

// memAddr computes a scalar memory op's effective address, including the
// custom indexed forms (§VIII-A).
func (c *Core) memAddr(u *uop) uint64 {
	switch u.inst.Op {
	case isa.XLRB, isa.XLRH, isa.XLRW, isa.XLRD:
		return c.srcVal(u, 0) + c.srcVal(u, 1)<<uint(u.inst.Imm&3)
	case isa.XLURB, isa.XLURH, isa.XLURW:
		return c.srcVal(u, 0) + uint64(uint32(c.srcVal(u, 1)))<<uint(u.inst.Imm&3)
	case isa.XSRB, isa.XSRH, isa.XSRW, isa.XSRD:
		return c.srcVal(u, 0) + c.srcVal(u, 1)<<uint(u.inst.Imm&3)
	}
	return c.srcVal(u, 0) + uint64(u.inst.Imm)
}

// storeDataVal extracts the store's data value from its renamed sources.
// Standard stores read data from Rs2 (the second renamed source); custom
// indexed stores read data from Rd (the third renamed source, via Sources).
func (c *Core) storeDataVal(u *uop) (int16, uint64, bool) {
	var phys int16 = noPhys
	switch u.inst.Op {
	case isa.XSRB, isa.XSRH, isa.XSRW, isa.XSRD:
		if u.nsrc >= 3 {
			phys = u.srcPhys[2]
		}
	default:
		// rs2 is the data source; rs1 (base) is srcPhys[0]
		if u.inst.Rs2 == isa.Zero || u.inst.Rs2 == isa.RegNone {
			return noPhys, 0, true // storing x0: data is zero and ready
		}
		if u.nsrc >= 2 {
			phys = u.srcPhys[1]
		}
	}
	if phys == noPhys {
		return noPhys, 0, true
	}
	if !c.pf.ready(phys, c.now) {
		return phys, 0, false
	}
	return phys, c.pf.read(phys), true
}

// addrSrcsReady: the st.addr leg needs only the address operands.
func (c *Core) addrSrcsReady(u *uop) bool {
	switch u.inst.Op {
	case isa.XSRB, isa.XSRH, isa.XSRW, isa.XSRD:
		return c.pf.ready(u.srcPhys[0], c.now) && c.pf.ready(u.srcPhys[1], c.now)
	}
	return c.pf.ready(u.srcPhys[0], c.now)
}

// execStoreAddr is the st.addr µOp (§V-B): address generation, uTLB access
// and cache query on the store pipe, plus the §V-A ordering-violation check
// against younger already-executed loads.
func (c *Core) execStoreAddr(idx int, u *uop) bool {
	if u.addrDone {
		return false
	}
	if !c.addrSrcsReady(u) {
		return false
	}
	if !c.Cfg.SplitStores {
		// unified store µOp: both operands must be ready before it issues,
		// and the data is captured here (no separate st.data pipe)
		_, val, ready := c.storeDataVal(u)
		if !ready {
			return false
		}
		u.dataDone = true
		if e := c.findSQ(u.seq); e != nil {
			e.val = val
			e.dataDone = true
		}
	}
	va := c.memAddr(u)
	pa, doneT, err := c.mmuTranslate(va, mmuAccStore)
	if err != nil {
		u.excCause = err.(*mmu.PageFault).Cause()
		u.excTval = va
		u.addrDone, u.dataDone = true, true
		u.done, u.issued = true, true
		u.readyAt = c.now + 1
		if e := c.findSQ(u.seq); e != nil {
			e.addrDone, e.dataDone = true, true
		}
		return true
	}
	u.addr = pa
	u.addrDone = true
	u.issued = true
	e := c.findSQ(u.seq)
	if e != nil {
		e.addr = pa
		e.size = u.memSize
		e.addrDone = true
	}
	// charge the store-pipe cache query (write permission fetch happens here);
	// device addresses bypass the cache
	if c.MMIO == nil || !c.MMIO.Covers(pa) {
		c.L1D.Access(pa, true, doneT)
		u.memLevel = c.L1D.LastLevel
	}

	// §V-A: a younger load that already executed with an overlapping address
	// violated the memory order — tag it to squash at retirement and train
	// the dependence predictor so the pair blocks next time.
	for i := range c.lq {
		le := &c.lq[i]
		if le.seq > u.seq && le.executed && overlap(pa, u.memSize, le.addr, le.size) {
			lu := c.robQ.at(le.robIdx)
			if lu.seq == le.seq && !lu.squashRetry {
				lu.squashRetry = true
				c.Stats.MemOrderViolations++
				if c.Cfg.MemDepPredict {
					c.memDep[lu.pc] = true
				}
			}
		}
	}
	c.finishStoreIfReady(u)
	return true
}

// SquashCoherentLoads tags this hart's executed-but-uncommitted loads that
// overlap a remote hart's committed write for squash-and-retry at the ROB
// head — the snoop-triggered machine clear a real SMP core performs so a
// speculatively-read value never survives a conflicting remote store. The
// SoC fabric (and the multi-hart cosimulator) calls this from its committed-
// write broadcast; the existing §V-A retire-time squash machinery re-fetches
// the load and it re-reads coherent memory.
func (c *Core) SquashCoherentLoads(pa uint64, size int) {
	for i := range c.lq {
		le := &c.lq[i]
		if !le.executed || !overlap(pa, size, le.addr, le.size) {
			continue
		}
		lu := c.robQ.at(le.robIdx)
		if lu.seq == le.seq && !lu.squashRetry {
			lu.squashRetry = true
			c.Stats.CrossHartSquashes++
		}
	}
}

// execStoreData is the st.data µOp: it reads the data operand from the
// physical register file (or the bypass network) into the SQ entry.
func (c *Core) execStoreData(u *uop) bool {
	if u.dataDone {
		return false
	}
	_, val, ready := c.storeDataVal(u)
	if !ready {
		return false
	}
	u.dataDone = true
	if e := c.findSQ(u.seq); e != nil {
		e.val = val
		e.dataDone = true
	}
	c.finishStoreIfReady(u)
	return true
}

// finishStoreIfReady marks the store complete once both µOps have merged in
// the write buffer (§V-B).
func (c *Core) finishStoreIfReady(u *uop) {
	if u.addrDone && u.dataDone && !u.done {
		u.done = true
		u.readyAt = c.now + 1
	}
}

// execLoad is the load pipe (AG/DC/DA/WB, §V-A): address generation and
// translation, store-queue search with forwarding, dependence-predictor
// blocking, then the D-cache access. Unaligned accesses crossing a line pay a
// second access (§II: the LSU supports unaligned data access).
func (c *Core) execLoad(idx int, u *uop) bool {
	if !c.srcsReady(u) {
		return false
	}
	// in-flight vector stores and atomics are not in the SQ; loads younger
	// than one wait until it commits its memory effect
	if c.hasOlderPendingVStore(u.seq) {
		return false
	}
	va := c.memAddr(u)
	pa, doneT, err := c.mmuTranslate(va, mmuAccLoad)
	if err != nil {
		u.excCause = err.(*mmu.PageFault).Cause()
		u.excTval = va
		u.done, u.issued = true, true
		u.readyAt = c.now + 1
		return true
	}

	// device loads have side effects (PLIC claim): execute them only at the
	// ROB head, bypassing the cache hierarchy
	if c.MMIO != nil && c.MMIO.Covers(pa) {
		if c.robQ.headEntry().seq != u.seq {
			return false
		}
		v := extendLoad(u.inst.Op, c.MMIO.Read(pa, u.memSize), u.memSize)
		done := doneT + 20 // uncached device access
		c.pf.write(u.newPhys, v, done)
		if le := c.findLQ(u.seq); le != nil {
			le.addr = pa
			le.size = u.memSize
			le.executed = true
		}
		u.addr = pa
		u.done, u.issued = true, true
		u.readyAt = done
		c.Stats.Loads++
		return true
	}

	// dependence-predicted loads wait until all older store addresses are known
	blocked := c.Cfg.MemDepPredict && c.memDep[u.pc]
	var fwdVal uint64
	fwd := false
	for i := range c.sq {
		e := &c.sq[i]
		if e.seq >= u.seq {
			continue
		}
		if !e.addrDone {
			if blocked || !c.Cfg.MemDepPredict {
				return false // conservative: wait for the older address
			}
			continue // speculate past the unknown-address store
		}
		if !overlap(pa, u.memSize, e.addr, e.size) {
			continue
		}
		// overlapping older store: forward when it fully covers the load
		if e.dataDone && covers(e.addr, e.size, pa, u.memSize) {
			sh := (pa - e.addr) * 8
			fwdVal = e.val >> sh
			fwd = true
			continue // a younger matching store may override — keep scanning
		}
		return false // partial overlap or data not ready: wait
	}

	var value uint64
	var done uint64
	if fwd {
		value = fwdVal
		done = doneT + 3 // forwarded through the DA stage
		u.fwd = true
		c.Stats.StoreForwards++
	} else {
		value = c.Mem.Read(pa, u.memSize)
		var hit bool
		done, hit = c.L1D.Access(pa, false, doneT)
		u.memLevel = c.L1D.LastLevel
		if crossesLine(pa, u.memSize, c.Cfg.L1D.LineBytes) {
			d2, _ := c.L1D.Access(pa+uint64(u.memSize)-1, false, doneT)
			if d2 > done {
				done = d2
			}
			if c.L1D.LastLevel > u.memLevel {
				u.memLevel = c.L1D.LastLevel // deeper half dominates the stall
			}
			c.Stats.UnalignedAccesses++
		}
		done += uint64(1) // DA stage
		if !hit {
			c.Stats.LoadMisses++
		}
	}
	c.PF.Train(va, c.now)

	value = extendLoad(u.inst.Op, value, u.memSize)
	c.pf.write(u.newPhys, value, done+1) // WB stage
	if le := c.findLQ(u.seq); le != nil {
		le.addr = pa
		le.size = u.memSize
		le.executed = true
	}
	u.addr = pa
	u.done, u.issued = true, true
	u.readyAt = done + 1
	c.Stats.Loads++
	return true
}

func (c *Core) hasOlderPendingVStore(seq uint64) bool {
	found := false
	c.robQ.forEach(func(_ int, u *uop) bool {
		if u.seq >= seq {
			return false
		}
		// an amoPending atomic is done for retirement purposes but its memory
		// effect has not landed yet — younger loads must keep waiting
		if (!u.done || u.amoPending) && (u.inst.Op.Class() == isa.ClassVStore || u.inst.Op.Class() == isa.ClassAMO) {
			found = true
			return false
		}
		return true
	})
	return found
}

func extendLoad(op isa.Op, v uint64, size int) uint64 {
	switch op {
	case isa.FLW:
		return isa.BoxF32(uint32(v))
	case isa.FLD:
		return v
	}
	if size == 8 {
		return v
	}
	v &= 1<<(8*size) - 1
	if op.LoadUnsigned() {
		return v
	}
	sh := uint(64 - 8*size)
	return uint64(int64(v<<sh) >> sh)
}

func overlap(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

func covers(outer uint64, on int, inner uint64, in int) bool {
	return outer <= inner && inner+uint64(in) <= outer+uint64(on)
}

func crossesLine(addr uint64, size, line int) bool {
	return addr/uint64(line) != (addr+uint64(size)-1)/uint64(line)
}
