package core

import "xt910/isa"

// predecode is a direct-mapped cache of decoded instructions keyed by
// physical address: raw fetch bytes → isa.Inst, so steady-state fetch skips
// the bit-level decoder (and the second halfword read of 4-byte encodings)
// on every cycle. It is a host-simulation optimization with no architectural
// or timing meaning of its own — the real XT-910 has no such structure — so
// correctness demands it never serve stale bytes: entries covering a
// committed store (this hart's or, via the coherence fabric, any other
// hart's) are dropped immediately, and fence.i / icache.iall flush it
// entirely, mirroring what they do to the L1I.
//
// Keying by physical address makes the cache immune to virtual aliasing and
// satp changes; an instruction whose two halfwords are not physically
// contiguous (a page-crossing fetch) is simply never cached.
const (
	predecodeEntries = 1 << 12 // 2-byte granules, direct-mapped
	predecodeMask    = predecodeEntries - 1
)

type predecode struct {
	// tag[i] holds pa|1 for a valid entry describing the instruction whose
	// first halfword lives at pa; 0 is free (pa is always 2-byte aligned,
	// so bit 0 doubles as the valid bit).
	tag  [predecodeEntries]uint64
	inst [predecodeEntries]isa.Inst
}

func newPredecode() *predecode { return &predecode{} }

func predecodeIdx(pa uint64) uint64 { return (pa >> 1) & predecodeMask }

func (p *predecode) lookup(pa uint64) (isa.Inst, bool) {
	i := predecodeIdx(pa)
	if p.tag[i] == pa|1 {
		return p.inst[i], true
	}
	return isa.Inst{}, false
}

func (p *predecode) insert(pa uint64, in isa.Inst) {
	if pa&1 != 0 {
		return // misaligned fetch: not cacheable
	}
	i := predecodeIdx(pa)
	p.tag[i] = pa | 1
	p.inst[i] = in
}

// invalidate drops every entry whose instruction bytes overlap [pa, pa+size).
// An entry starting at t covers at most t..t+3, so the scan starts two bytes
// below the write.
func (p *predecode) invalidate(pa uint64, size int) {
	if size <= 0 {
		return
	}
	lo := pa &^ 1
	if lo >= 2 {
		lo -= 2
	} else {
		lo = 0
	}
	for g := lo; g < pa+uint64(size); g += 2 {
		i := predecodeIdx(g)
		if p.tag[i] == g|1 {
			p.tag[i] = 0
		}
	}
}

func (p *predecode) flush() {
	clear(p.tag[:])
}
