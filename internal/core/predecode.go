package core

import "xt910/isa"

// predecode is a direct-mapped cache of decoded instructions keyed by
// physical address: raw fetch bytes → isa.Inst, so steady-state fetch skips
// the bit-level decoder (and the second halfword read of 4-byte encodings)
// on every cycle. It is a host-simulation optimization with no architectural
// or timing meaning of its own — the real XT-910 has no such structure — so
// correctness demands it never serve stale bytes: entries covering a
// committed store (this hart's or, via the coherence fabric, any other
// hart's) are dropped immediately, and fence.i / icache.iall flush it
// entirely, mirroring what they do to the L1I.
//
// Keying by physical address makes the cache immune to virtual aliasing and
// satp changes; an instruction whose two halfwords are not physically
// contiguous (a page-crossing fetch) is simply never cached.
const (
	predecodeEntries = 1 << 12 // 2-byte granules, direct-mapped
	predecodeMask    = predecodeEntries - 1
)

type predecode struct {
	// tag[i] holds pa|1 for a valid entry describing the instruction whose
	// first halfword lives at pa; 0 is free (pa is always 2-byte aligned,
	// so bit 0 doubles as the valid bit).
	tag  [predecodeEntries]uint64
	inst [predecodeEntries]isa.Inst
}

func newPredecode() *predecode { return &predecode{} }

func predecodeIdx(pa uint64) uint64 { return (pa >> 1) & predecodeMask }

func (p *predecode) lookup(pa uint64) (isa.Inst, bool) {
	i := predecodeIdx(pa)
	if p.tag[i] == pa|1 {
		return p.inst[i], true
	}
	return isa.Inst{}, false
}

func (p *predecode) insert(pa uint64, in isa.Inst) {
	if pa&1 != 0 {
		return // misaligned fetch: not cacheable
	}
	i := predecodeIdx(pa)
	p.tag[i] = pa | 1
	p.inst[i] = in
}

// invalidate drops every entry whose instruction bytes overlap [pa, pa+size).
// An entry starting at t covers at most t..t+3, so the scan starts two bytes
// below the write. The scan is count-based so it is immune to uint64 wrap:
// near the top of the address space pa+size overflows to 0, which used to
// terminate an address-compared loop before it ran and leave stale entries
// live across a committed store. Granule addresses themselves wrap mod 2^64,
// matching how insert keys them.
func (p *predecode) invalidate(pa uint64, size int) {
	if size <= 0 {
		return
	}
	start := (pa &^ 1) - 2 // wraps intentionally: an entry at ^uint64(0)-1 spans address 0
	n := (pa - start + uint64(size) + 1) / 2
	for k := uint64(0); k < n; k++ {
		g := start + 2*k
		i := predecodeIdx(g)
		if p.tag[i] == g|1 {
			p.tag[i] = 0
		}
	}
}

func (p *predecode) flush() {
	clear(p.tag[:])
}
