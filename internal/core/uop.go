package core

import "xt910/isa"

// pipeID names the eight execution pipes of the EX stage (§IV: "The EX stage
// contains 8 pipes, which can process 2 arithmetic operation instructions,
// 1 branch instruction, 1 load instruction, 2 store instructions (i.e., the
// pseudo double store instructions), 2 scalar floating point and vector
// instructions in parallel").
type pipeID int

// The eight pipes. ALU0 shares with the integer multiplier; ALU1 is the
// multi-cycle ALU pipe shared with the iterative divider.
const (
	pipeALU0 pipeID = iota
	pipeALU1
	pipeBJU
	pipeLD
	pipeSTA
	pipeSTD
	pipeFV0
	pipeFV1
	numPipes
)

var pipeNames = [numPipes]string{"alu0", "alu1", "bju", "ld", "st.addr", "st.data", "fv0", "fv1"}

func (p pipeID) String() string { return pipeNames[p] }

const noPhys = int16(-1)

// uop is one ROB entry: a decoded instruction with its rename bindings and
// execution state. Stores carry their pseudo-double µOps (st.addr/st.data) as
// two scheduling legs of the same entry.
type uop struct {
	seq  uint64
	pc   uint64
	inst isa.Inst

	// rename bindings
	srcPhys [3]int16
	nsrc    int
	newPhys int16
	oldPhys int16

	pipe     pipeID
	minIssue uint64
	issued   bool
	done     bool
	readyAt  uint64

	// memory state
	lqIdx    int
	sqIdx    int
	addr     uint64
	memSize  int
	addrDone bool
	dataDone bool
	fwd      bool
	// memLevel is the coherence.Level* the op's cache access was served from,
	// recorded at execute time (LevelL1 until then). The CPI stack's mem
	// sub-bucket attribution reads it at commit-stall time; recording at
	// execute keeps it constant over fast-forward windows (see DESIGN.md).
	memLevel uint8

	// control-flow state
	isCtrl     bool
	predTaken  bool
	predTarget uint64
	dirIdx     uint64
	histBefore uint64
	rasSnap    []uint64
	fromLoop   bool
	ckptID     int

	// retire behaviour
	atRetire    bool // executes when it reaches the ROB head (CSR/sys/AMO)
	amoPending  bool // atomic finished its cache access; arch effects at pop
	flushAfter  bool // serializing: flush the pipeline after retirement
	redirectTo  uint64
	squashRetry bool // §V-A ordering violation: squash at retire, refetch
	excCause    int  // -1: none
	excTval     uint64

	// fpFlags holds the IEEE exception flags an FPU op raised at execute.
	// They are speculative until retirement, where they accrue into fcsr —
	// a squashed FP op must leave fflags untouched.
	fpFlags uint8
}

func (u *uop) isLoad() bool {
	return u.inst.Op.IsLoad()
}

func (u *uop) isStore() bool {
	return u.inst.Op.IsStore()
}

// rob is the re-order buffer: a ring of uops retired strictly in order
// ("to ensure the correctness of program execution, the instructions are
// retired in order in spite of the out-of-order execution", §IV).
type rob struct {
	entries []uop
	head    int
	tail    int
	count   int
}

func newROB(size int) *rob { return &rob{entries: make([]uop, size)} }

func (r *rob) full() bool  { return r.count == len(r.entries) }
func (r *rob) empty() bool { return r.count == 0 }
func (r *rob) len() int    { return r.count }

// push appends a uop and returns its slot index.
func (r *rob) push(u uop) int {
	idx := r.tail
	r.entries[idx] = u
	r.tail = (r.tail + 1) % len(r.entries)
	r.count++
	return idx
}

func (r *rob) at(idx int) *uop { return &r.entries[idx] }

func (r *rob) headEntry() *uop { return &r.entries[r.head] }

// pop retires the head entry.
func (r *rob) pop() {
	r.head = (r.head + 1) % len(r.entries)
	r.count--
}

// live reports whether slot idx currently holds an allocated entry.
func (r *rob) live(idx int) bool {
	if r.count == 0 {
		return false
	}
	pos := (idx - r.head + len(r.entries)) % len(r.entries)
	return pos < r.count
}

// forEach visits entries oldest-first.
func (r *rob) forEach(fn func(idx int, u *uop) bool) {
	for i, idx := 0, r.head; i < r.count; i, idx = i+1, (idx+1)%len(r.entries) {
		if !fn(idx, &r.entries[idx]) {
			return
		}
	}
}

// squashAfter removes every entry with seq > keepSeq (walking from the tail),
// invoking fn for each removed entry (newest first) so the core can release
// resources.
func (r *rob) squashAfter(keepSeq uint64, fn func(u *uop)) {
	for r.count > 0 {
		lastIdx := (r.tail - 1 + len(r.entries)) % len(r.entries)
		u := &r.entries[lastIdx]
		if u.seq <= keepSeq {
			return
		}
		fn(u)
		r.tail = lastIdx
		r.count--
	}
}

// physFile is a unified scalar physical register file covering the integer
// and FP architectural spaces (§IV: "register renaming is applied to scalar
// integer, floating point and vector registers"; the vector file is tracked
// by a per-register scoreboard in the vector queue).
type physFile struct {
	val     []uint64
	readyAt []uint64 // pendingCycle while unwritten
	free    []int16
}

const pendingCycle = ^uint64(0)

// newPhysFile maps the 64 scalar architectural registers onto phys 0–63 and
// places the remainder on the free list.
func newPhysFile(intRegs, fpRegs int) (*physFile, []int16) {
	total := intRegs + fpRegs
	pf := &physFile{
		val:     make([]uint64, total),
		readyAt: make([]uint64, total),
	}
	rat := make([]int16, 64)
	for i := 0; i < 64; i++ {
		rat[i] = int16(i)
	}
	for i := total - 1; i >= 64; i-- {
		pf.free = append(pf.free, int16(i))
	}
	return pf, rat
}

func (pf *physFile) alloc() (int16, bool) {
	if len(pf.free) == 0 {
		return noPhys, false
	}
	p := pf.free[len(pf.free)-1]
	pf.free = pf.free[:len(pf.free)-1]
	pf.readyAt[p] = pendingCycle
	return p, true
}

func (pf *physFile) release(p int16) {
	if p != noPhys {
		pf.free = append(pf.free, p)
	}
}

func (pf *physFile) ready(p int16, now uint64) bool {
	return p == noPhys || pf.readyAt[p] <= now
}

// readyCycle returns when p becomes readable (pendingCycle if unknown).
func (pf *physFile) readyCycle(p int16) uint64 {
	if p == noPhys {
		return 0
	}
	return pf.readyAt[p]
}

func (pf *physFile) write(p int16, v uint64, at uint64) {
	if p == noPhys {
		return
	}
	pf.val[p] = v
	pf.readyAt[p] = at
}

func (pf *physFile) read(p int16) uint64 {
	if p == noPhys {
		return 0
	}
	return pf.val[p]
}

// checkpoint captures the front-end speculative state at a branch for
// single-cycle recovery (§IV speculative allocation of physical registers).
type checkpoint struct {
	used    bool
	seq     uint64
	rat     [64]int16
	ras     []uint64
	history uint64
}
