package core

import (
	"xt910/internal/cache"
	"xt910/internal/emu"
	"xt910/internal/trace"
	"xt910/isa"
)

// retire is the RT1/RT2 stage (§IV): up to RetireWidth instructions commit in
// order per cycle. Stores drain to the data cache, physical registers are
// released, and exceptional or serializing instructions flush the pipeline
// with precise state (Fig. 8).
func (c *Core) retire() {
	if c.robQ.empty() {
		c.Stats.HeadStallEmpty++
	}
	for n := 0; n < c.Cfg.RetireWidth && !c.robQ.empty(); n++ {
		// Re-sample interrupts at every retirement boundary, not just at the
		// cycle edge: a source that arms between two same-cycle commits (the
		// cosim injection protocol arms on commit indices) is delivered at
		// exactly the first boundary where it pends, which is the point the
		// synchronous golden model checks before each instruction.
		if n > 0 && c.sampleInterrupts() {
			return
		}
		u := c.robQ.headEntry()

		// squash-at-commit for §V-A ordering violations: re-execute the load
		if u.squashRetry {
			pc := u.pc
			c.flushAll(pc, trace.SquashMemOrder)
			c.badSpecUntil = c.fetchAllowed // wrong-path recovery window
			c.memDep[pc] = true
			c.Stats.MemOrderFlushes++
			return
		}

		if !u.done {
			if u.atRetire {
				if !c.executeAtRetire(u) {
					return // stalled at head (e.g. AMO memory access)
				}
				if c.tr != nil {
					c.traceAtRetireExec(u.seq)
				}
			} else {
				if n == 0 {
					c.countHeadStall(u)
				}
				return // oldest instruction still executing
			}
		}
		if u.readyAt > c.now {
			if n == 0 {
				c.countHeadStall(u)
			}
			return
		}

		// precise exception at the head (Fig. 8)
		if u.excCause >= 0 {
			c.takeTrap(u)
			return
		}

		// atomics apply their architectural effects here, at the boundary
		if u.amoPending {
			c.commitAMO(u)
			u.amoPending = false
		}

		// commit memory effects
		if u.isStore() {
			c.commitStore(u)
		}
		if u.isLoad() {
			if len(c.lq) > 0 && c.lq[0].seq == u.seq {
				// copy-down pop keeps the backing array anchored (no
				// re-slice drift, no reallocation in the hot loop)
				copy(c.lq, c.lq[1:])
				c.lq = c.lq[:len(c.lq)-1]
			}
		}

		// release rename resources
		if u.newPhys != noPhys {
			c.pf.release(c.archRAT[int(u.inst.Rd)])
			c.archRAT[int(u.inst.Rd)] = u.newPhys
		}
		if u.ckptID >= 0 {
			c.ckpts[u.ckptID].used = false
		}

		// Floating-point architectural side effects land here, before the
		// commit hooks observe state: IEEE flags accrue into fcsr, and any
		// FP execution or f-register load leaves mstatus.FS dirty. The same
		// rule runs in the golden model's exec, keeping fcsr and mstatus
		// comparable per commit.
		switch u.inst.Op.Class() {
		case isa.ClassFPU:
			c.csr[isa.CSRFcsr] |= uint64(u.fpFlags)
			c.csr[isa.CSRMstatus] |= isa.MstatusFSDirty
		case isa.ClassLoad:
			if u.inst.Rd.IsF() {
				c.csr[isa.CSRMstatus] |= isa.MstatusFSDirty
			}
		}

		if c.tr != nil {
			c.traceRetire(u.seq, u.readyAt)
		}
		if c.RetireHook != nil {
			c.RetireHook(u.pc, u.inst)
		}
		if c.CommitHook != nil {
			c.CommitHook(c.commitRecord(u))
		}
		c.Stats.Retired++
		if u.fromLoop {
			c.Stats.LoopBufInsts++
		}

		flushAfter := u.flushAfter
		redirect := u.redirectTo
		c.robQ.pop()
		if c.Halted {
			return
		}
		if flushAfter {
			c.flushAll(redirect, trace.SquashSerialize)
			c.Stats.SerializeFlushes++
			return
		}
	}
}

// traceAtRetireExec stamps an at-retire op, which issues and executes at the
// ROB head. Kept out of retire so the untraced path pays only the nil check.
func (c *Core) traceAtRetireExec(seq uint64) {
	c.tr.StageAt(seq, trace.StageIssue, c.now)
	c.tr.StageAt(seq, trace.StageExec, c.now)
}

// traceRetire stamps writeback (the µop's ready time) and completes the
// record as committed.
func (c *Core) traceRetire(seq, readyAt uint64) {
	c.tr.StageAt(seq, trace.StageWriteback, readyAt)
	c.tr.Retire(seq, c.now)
}

// countHeadStall attributes a blocked-retirement cycle to the head's class.
func (c *Core) countHeadStall(u *uop) {

	switch u.inst.Op.Class() {
	case isa.ClassLoad:
		c.Stats.HeadStallLoad++
	case isa.ClassStore:
		c.Stats.HeadStallStore++
	case isa.ClassFPU:
		c.Stats.HeadStallFPU++
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		c.Stats.HeadStallALU++
	case isa.ClassVALU, isa.ClassVFPU, isa.ClassVLoad, isa.ClassVStore, isa.ClassVSet:
		c.Stats.HeadStallVec++
	default:
		c.Stats.HeadStallOther++
	}
}

// commitStore writes the SQ head to memory and the data cache.
func (c *Core) commitStore(u *uop) {
	if len(c.sq) == 0 || c.sq[0].seq != u.seq {
		return
	}
	e := c.sq[0]
	copy(c.sq, c.sq[1:])
	c.sq = c.sq[:len(c.sq)-1]
	if c.MMIO != nil && c.MMIO.Covers(e.addr) {
		c.MMIO.Write(e.addr, e.size, e.val)
		c.Stats.Stores++
		return
	}
	if c.OwnStoresAtCommit {
		c.ensureOwned(e.addr)
		if crossesLine(e.addr, e.size, c.Cfg.L1D.LineBytes) {
			c.ensureOwned(e.addr + uint64(e.size) - 1)
		}
	}
	c.Mem.Write(e.addr, e.size, e.val)
	c.notifyWrite(e.addr, e.size)
	c.Stats.Stores++
	c.PF.Train(e.addr, c.now)
}

// ensureOwned re-acquires write ownership of addr's line if it was lost (or
// downgraded) since the st.addr query — the commit-time bus transaction a
// real machine's write buffer performs when its line was snooped away.
func (c *Core) ensureOwned(addr uint64) {
	if l := c.L1D.Cache.Lookup(addr); l != nil &&
		(l.State == cache.Modified || l.State == cache.Exclusive) {
		return
	}
	c.L1D.Access(addr, true, c.now)
}

// executeAtRetire performs instructions that must run non-speculatively at
// the ROB head: CSR accesses, system instructions, atomics and cache/TLB
// maintenance. It returns false if the instruction needs more cycles.
func (c *Core) executeAtRetire(u *uop) bool {
	op := u.inst.Op
	nextPC := u.pc + uint64(u.inst.Size)
	switch op.Class() {
	case isa.ClassCSR:
		c.execCSRAtRetire(u)
	case isa.ClassAMO:
		return c.execAMOAtRetire(u)
	case isa.ClassSys:
		switch op {
		case isa.ECALL:
			if c.handleHostEcall() {
				u.done = true
				u.readyAt = c.now
				u.flushAfter = true
				u.redirectTo = nextPC
				return true
			}
			cause := isa.ExcEcallU + c.priv
			if c.priv == isa.PrivM {
				cause = isa.ExcEcallM
			}
			u.excCause = cause
			u.done = true
			u.readyAt = c.now
			return true
		case isa.EBREAK:
			u.excCause = isa.ExcBreakpoint
			u.excTval = u.pc
			u.done = true
			u.readyAt = c.now
			return true
		case isa.MRET:
			st := c.csr[isa.CSRMstatus]
			c.priv = int(st >> 11 & 3)
			st = st&^(1<<3) | (st&(1<<7))>>4&(1<<3)
			st |= 1 << 7
			st &^= 3 << 11
			c.csr[isa.CSRMstatus] = st
			c.MMU.Priv = c.priv
			u.redirectTo = c.csr[isa.CSRMepc]
			u.flushAfter = true
		case isa.SRET:
			st := c.csr[isa.CSRMstatus]
			if st&(1<<8) != 0 {
				c.priv = isa.PrivS
			} else {
				c.priv = isa.PrivU
			}
			st = st&^(1<<1) | (st&(1<<5))>>4&(1<<1)
			st |= 1 << 5
			st &^= 1 << 8
			c.csr[isa.CSRMstatus] = st
			c.MMU.Priv = c.priv
			u.redirectTo = c.csr[isa.CSRSepc]
			u.flushAfter = true
		case isa.SFENCEVMA:
			c.MMU.FlushAll()
			c.PF.Flush()
			u.flushAfter = true
			u.redirectTo = nextPC
		case isa.FENCEI:
			c.L1I.Cache.InvalidateAll()
			if c.predec != nil {
				c.predec.flush()
			}
			if c.sblk != nil {
				c.sblk.flush()
			}
			u.flushAfter = true
			u.redirectTo = nextPC
		case isa.WFI:
			// §II timers: wait-for-interrupt parks the hart until an
			// interrupt source pends (taken or not, per the privileged spec)
			if c.IntSource != nil && c.pendingBits() == 0 {
				c.wfiWait = true
			}
			u.flushAfter = true
			u.redirectTo = nextPC
		case isa.FENCE:
			// full drain is implied by at-retire execution
		}
	case isa.ClassCacheOp:
		c.execCacheOpAtRetire(u)
	default:
		// an exception-carrying placeholder (fetch fault, illegal op)
		if u.excCause < 0 {
			u.excCause = isa.ExcIllegalInst
			u.excTval = u.pc
		}
	}
	u.done = true
	u.readyAt = c.now
	if u.flushAfter && u.redirectTo == 0 {
		u.redirectTo = nextPC
	}
	return true
}

func (c *Core) execCSRAtRetire(u *uop) {
	op := u.inst.Op
	var src uint64
	if op == isa.CSRRWI || op == isa.CSRRSI || op == isa.CSRRCI {
		src = uint64(u.inst.Imm)
	} else if u.nsrc > 0 {
		src = c.srcVal(u, 0)
	}
	old := c.CSR(u.inst.CSR)
	switch op {
	case isa.CSRRW, isa.CSRRWI:
		c.SetCSR(u.inst.CSR, src)
	case isa.CSRRS, isa.CSRRSI:
		if src != 0 {
			c.SetCSR(u.inst.CSR, old|src)
		}
	case isa.CSRRC, isa.CSRRCI:
		if src != 0 {
			c.SetCSR(u.inst.CSR, old&^src)
		}
	}
	c.pf.write(u.newPhys, old, c.now)
	// writes to translation or mode state serialize the pipeline
	switch u.inst.CSR {
	case isa.CSRSatp, isa.CSRMstatus, isa.CSRMxstatus, isa.CSRMhcr:
		if op != isa.CSRRS && op != isa.CSRRC || src != 0 {
			u.flushAfter = true
		}
	}
	if u.inst.CSR == isa.CSRSatp {
		c.PF.Flush()
		if c.Cfg.EnableLoopBuf {
			c.LoopBuf.Flush() // context switch flushes the LBUF (§III-C)
		}
	}
}

// execAMOAtRetire is the timing phase of an atomic: translation and the data
// cache access (which acquires write ownership of the line) happen when the op
// reaches the ROB head. By default the architectural read-modify-write runs
// here too. Under AtomicsAtCommit (multi-hart sessions) it is instead deferred
// to commitAMO at the pop itself, so no cycle exists where memory holds an
// atomic's result before its commit hooks have run — another hart's commits
// interleave with the head-stall window, and an early write would be observed
// out of global commit order.
func (c *Core) execAMOAtRetire(u *uop) bool {
	va := c.srcVal(u, 0)
	pa, doneT, err := c.mmuTranslate(va, mmuAccStore)
	if err != nil {
		u.excCause = isa.ExcStorePageFault
		u.excTval = va
		u.done = true
		u.readyAt = c.now
		return true
	}
	done, _ := c.L1D.Access(pa, true, doneT)
	u.memLevel = c.L1D.LastLevel
	u.addr = pa
	u.done = true
	u.readyAt = done
	c.Stats.Atomics++
	if c.AtomicsAtCommit {
		u.amoPending = true
		return true
	}
	c.applyAMO(u, done)
	return true
}

// commitAMO is the deferred architectural phase of an atomic, run at the
// retirement boundary under AtomicsAtCommit. The register result becomes
// readable at u.readyAt — the cycle it is written, since retirement precedes
// issue within a cycle — so dependent wakeup timing matches the
// execute-at-head default exactly. hasOlderPendingVStore keeps the hart's own
// younger loads blocked while the effect is pending, and ownership lost to
// another hart during the head-stall window is re-acquired before the write,
// like commitStore.
func (c *Core) commitAMO(u *uop) {
	c.applyAMO(u, u.readyAt)
}

// applyAMO performs an atomic's architectural read-modify-write; ready is the
// cycle the register result becomes readable.
func (c *Core) applyAMO(u *uop, ready uint64) {
	op := u.inst.Op
	size := op.MemBytes()
	pa := u.addr
	switch op {
	case isa.LRW, isa.LRD:
		v := c.Mem.Read(pa, size)
		c.resAddr, c.resOK = pa, true
		c.pf.write(u.newPhys, loadExtendSized(v, size), ready)
	case isa.SCW, isa.SCD:
		if c.resOK && c.resAddr == pa {
			if c.OwnStoresAtCommit {
				c.ensureOwned(pa)
			}
			c.Mem.Write(pa, size, c.srcVal(u, 1))
			c.notifyWrite(pa, size)
			c.pf.write(u.newPhys, 0, ready)
		} else {
			c.pf.write(u.newPhys, 1, ready)
		}
		c.resOK = false
	default:
		if c.OwnStoresAtCommit {
			c.ensureOwned(pa)
		}
		old := c.Mem.Read(pa, size)
		c.Mem.Write(pa, size, isa.EvalAMO(op, old, c.srcVal(u, 1)))
		c.notifyWrite(pa, size)
		c.pf.write(u.newPhys, loadExtendSized(old, size), ready)
	}
}

// notifyWrite publishes a committed write to the SoC fabric and drops any
// predecoded instructions the write overlaps (self-modifying code). The
// hart's own LR/SC reservation dies too when the write touches the reserved
// line — an intervening store must fail a following SC, exactly as in the
// golden model (the SoC hook covers only the *other* harts).
func (c *Core) notifyWrite(pa uint64, size int) {
	c.InvalidatePredecode(pa, size)
	c.KillReservation(pa, size)
	if c.MemWriteHook != nil {
		c.MemWriteHook(pa, size, c.ID)
	}
}

// KillReservation drops this hart's LR/SC reservation if the written range
// touches the reserved line (64-byte granule, matching the cache line).
func (c *Core) KillReservation(pa uint64, size int) {
	if c.resOK && pa>>6 == c.resAddr>>6 {
		c.resOK = false
	}
}

func loadExtendSized(v uint64, size int) uint64 {
	if size == 4 {
		return uint64(int64(int32(uint32(v))))
	}
	return v
}

func (c *Core) execCacheOpAtRetire(u *uop) {
	nextPC := u.pc + uint64(u.inst.Size)
	switch u.inst.Op {
	case isa.XDCACHECALL:
		c.L1D.Cache.CleanAll()
	case isa.XDCACHEIALL:
		c.L1D.FlushAll(c.now)
	case isa.XDCACHECVA:
		c.L1D.FlushVA(c.srcVal(u, 0), false, c.now)
	case isa.XDCACHEIVA:
		c.L1D.FlushVA(c.srcVal(u, 0), true, c.now)
	case isa.XICACHEIALL:
		c.L1I.Cache.InvalidateAll()
		if c.predec != nil {
			c.predec.flush()
		}
		if c.sblk != nil {
			c.sblk.flush()
		}
		u.flushAfter = true
		u.redirectTo = nextPC
	case isa.XSYNC:
		u.flushAfter = true
		u.redirectTo = nextPC
	case isa.XTLBIASID:
		// §V-E: broadcast maintenance over the interconnect, no IPIs
		c.MMU.FlushASID(uint16(c.srcVal(u, 0)))
		if c.TLBBroadcast != nil {
			c.TLBBroadcast(u.inst.Op, c.srcVal(u, 0), c.ID)
		}
		u.flushAfter = true
		u.redirectTo = nextPC
	case isa.XTLBIVA:
		c.MMU.FlushVA(c.srcVal(u, 0))
		if c.TLBBroadcast != nil {
			c.TLBBroadcast(u.inst.Op, c.srcVal(u, 0), c.ID)
		}
		u.flushAfter = true
		u.redirectTo = nextPC
	}
}

// handleHostEcall services the bare-metal host ABI shared with the emulator.
func (c *Core) handleHostEcall() bool {
	a7 := c.Reg(isa.A7)
	switch a7 {
	case emu.SysExit:
		c.Halted = true
		c.ExitCode = int(int64(c.Reg(isa.A0)))
		return true
	case emu.SysWrite:
		addr, n := c.Reg(isa.A1), c.Reg(isa.A2)
		for i := uint64(0); i < n; i++ {
			pa, _, err := c.mmuTranslate(addr+i, mmuAccLoad)
			if err != nil {
				break
			}
			c.Output = append(c.Output, c.Mem.LoadByte(pa))
		}
		c.setArchReg(isa.A0, n)
		return true
	}
	return false
}

// setArchReg writes an architectural register at retire time (host-ecall
// results): the retirement map's physical register is updated in place.
func (c *Core) setArchReg(r isa.Reg, v uint64) {
	c.pf.write(c.archRAT[int(r)], v, c.now)
	// the speculative map may alias the same physical register; anything
	// in flight was fetched after this serializing ecall anyway
}

// pendingBits returns the externally-driven mip bits masked by mie.
func (c *Core) pendingBits() uint64 {
	if c.IntSource == nil {
		return 0
	}
	return c.IntSource(c.ID) & c.csr[isa.CSRMie]
}

// sampleInterrupts takes the highest-priority enabled machine interrupt
// (MEI > MSI > MTI) and reports whether one was delivered. It runs at the
// cycle boundary and again between same-cycle retirements.
func (c *Core) sampleInterrupts() bool {
	pend := c.pendingBits()
	if pend == 0 {
		return false
	}
	c.wfiWait = false
	// M-mode interrupts fire when running below M, or in M with MIE set
	if c.priv == isa.PrivM && c.csr[isa.CSRMstatus]&(1<<3) == 0 {
		return false
	}
	var cause uint64
	switch {
	case pend&(1<<isa.IntMExt) != 0:
		cause = isa.IntMExt
	case pend&(1<<isa.IntMSoft) != 0:
		cause = isa.IntMSoft
	default:
		cause = isa.IntMTimer
	}
	return c.takeInterrupt(cause)
}

// takeInterrupt flushes the pipeline and vectors to mtvec with the interrupt
// bit set in mcause; mepc points at the oldest unretired instruction. It
// returns false when no handler is installed (the interrupt stays pending).
func (c *Core) takeInterrupt(cause uint64) bool {
	resume := c.fetchPC
	if !c.robQ.empty() {
		resume = c.robQ.headEntry().pc
	} else if c.fqLen() > 0 {
		resume = c.fqFront().pc
	}
	target := c.csr[isa.CSRMtvec] &^ 3
	if target == 0 {
		return false // no handler installed: leave the interrupt pending
	}
	c.csr[isa.CSRMepc] = resume
	c.csr[isa.CSRMcause] = 1<<63 | cause
	c.csr[isa.CSRMtval] = 0
	st := c.csr[isa.CSRMstatus]
	st = st&^(1<<7) | (st&(1<<3))<<4
	st &^= 1 << 3
	st = st&^(3<<11) | uint64(c.priv)<<11
	c.csr[isa.CSRMstatus] = st
	c.priv = isa.PrivM
	c.MMU.Priv = c.priv
	c.Stats.Interrupts++
	c.flushAll(target, trace.SquashInterrupt)
	// everything in flight was squashed by the delivery: the refill window is
	// bad-speculation time, exactly like a mispredict recovery
	c.badSpecUntil = c.fetchAllowed
	if c.InterruptHook != nil {
		c.InterruptHook(cause, resume)
	}
	return true
}

// takeTrap implements precise exception entry with medeleg delegation,
// flushing the pipeline and redirecting to the handler.
func (c *Core) takeTrap(u *uop) {
	cause := u.excCause
	deleg := c.csr[isa.CSRMedeleg]
	toS := c.priv != isa.PrivM && deleg>>uint(cause)&1 == 1
	st := c.csr[isa.CSRMstatus]
	var target uint64
	if toS {
		c.csr[isa.CSRSepc] = u.pc
		c.csr[isa.CSRScause] = uint64(cause)
		c.csr[isa.CSRStval] = u.excTval
		st = st&^(1<<5) | (st&(1<<1))<<4
		st &^= 1 << 1
		if c.priv == isa.PrivS {
			st |= 1 << 8
		} else {
			st &^= 1 << 8
		}
		c.csr[isa.CSRMstatus] = st
		c.priv = isa.PrivS
		target = c.csr[isa.CSRStvec] &^ 3
	} else {
		c.csr[isa.CSRMepc] = u.pc
		c.csr[isa.CSRMcause] = uint64(cause)
		c.csr[isa.CSRMtval] = u.excTval
		st = st&^(1<<7) | (st&(1<<3))<<4
		st &^= 1 << 3
		st = st&^(3<<11) | uint64(c.priv)<<11
		c.csr[isa.CSRMstatus] = st
		c.priv = isa.PrivM
		target = c.csr[isa.CSRMtvec] &^ 3
	}
	c.MMU.Priv = c.priv
	c.Stats.Traps++
	if target == 0 {
		// no handler installed: halt distinctively, mirroring the emulator
		c.Halted = true
		c.ExitCode = -(16 + cause)
		return
	}
	c.flushAll(target, trace.SquashException)
}
