// Package core implements the XT-910 execution core (§IV): the 12-stage
// pipeline (IF IP IB ID IR IS RF EX1–EX4 RT1 RT2) with 3-wide decode, 4-wide
// rename onto speculatively-allocated physical registers, an 8-slot
// age-vector out-of-order issue stage with dynamic load balancing, eight
// execution pipes (two single-cycle ALUs, one branch unit, a dual-issue
// out-of-order LSU with pseudo-double stores, two FPU/vector pipes), a
// 192-entry re-order buffer and in-order retirement with precise exceptions.
//
// The model is value-carrying: instructions execute functionally inside the
// pipeline using renamed physical registers, so the architectural results are
// exact and continuously cross-checked against the functional emulator.
package core

import (
	"xt910/internal/cache"
	"xt910/internal/prefetch"
)

// Config selects a microarchitecture. XT910Config is the paper's machine;
// U74Config and A73Config model the comparison cores in Figs. 17–19.
type Config struct {
	Name string

	// Front end (§III).
	FetchBytes     int  // fetch-group width in bytes (XT-910: 16 = 128 bits)
	FetchQueue     int  // IBUF capacity in instructions
	FrontendDelay  int  // IF→ID stage count minus one (IP, IB)
	EnableL0BTB    bool // zero-bubble redirects at IF
	EnableLoopBuf  bool // 16-entry LBUF (§III-C)
	EnableIndirect bool // indirect-branch predictor
	DirBits        uint // direction-predictor index bits
	L0BTBEntries   int
	L1BTBEntries   int
	RASDepth       int
	TakenPenalty   int // IP-stage redirect bubble for taken branches missing L0

	// Mid pipeline (§IV).
	DecodeWidth   int
	RenameWidth   int
	RenameDelay   int // ID→issue-ready stage count (IR, IS, RF)
	IssueWidth    int // shared instruction slots per cycle (XT-910: 8)
	IssueQueue    int // per-pipe issue queue capacity
	ROBSize       int
	RetireWidth   int
	IntPhysRegs   int
	FpPhysRegs    int
	Checkpoints   int  // branch RAT checkpoints in flight
	OutOfOrder    bool // false: oldest-first (in-order) issue, U74-class
	MemDepPredict bool // §V-A load/store speculation-failure tagging
	SplitStores   bool // §V-B pseudo-double store µops

	// LSU and memory.
	LQSize        int
	SQSize        int
	MispredictMin int // minimum redirect gap after EX-stage branch resolution

	// TLB geometry (§V-D). Zero values select the XT-910 defaults
	// (32-entry micro-TLB, 1024-entry 4-way joint TLB).
	UTLBEntries int
	JTLBEntries int

	L1I      cache.Config
	L1D      cache.Config
	Prefetch prefetch.Config

	// Vector engine (§VII).
	EnableVector bool
	VLEN         int

	// EnableCustomExt gates the non-standard instructions (§VIII); with it
	// off the core traps on them, operating "fully compatible with the
	// standard RISC-V" (§II).
	EnableCustomExt bool

	// PredecodeCache enables the host-side raw-bytes→isa.Inst fetch cache
	// (predecode.go). It is a simulator speedup, not a modelled structure:
	// it never serves stale bytes (invalidated on committed stores and
	// fence.i), but toggling it may shift TLB access patterns slightly.
	PredecodeCache bool

	// PredecodeSuperblock extends the predecode cache to straight-line
	// decoded runs replayed whole (superblock.go). Host-only like the
	// single-instruction cache, active only while translation is off;
	// toggling it changes nothing but the Predecode*/Superblock* counters.
	PredecodeSuperblock bool

	// FastForward enables event-driven cycle skipping in Run (fastforward.go):
	// windows where provably no pipeline stage can make progress are jumped in
	// one step, with every per-cycle counter and CPI bucket replicated exactly.
	// Host-only; Stats are byte-identical with it on or off.
	FastForward bool
}

// XT910Config returns the paper's machine: triple-issue decode, 8-slot issue,
// 192-entry ROB, dual-issue OoO LSU, full prediction and prefetch machinery.
func XT910Config() Config {
	return Config{
		Name:           "XT-910",
		FetchBytes:     16,
		FetchQueue:     16,
		FrontendDelay:  2,
		EnableL0BTB:    true,
		EnableLoopBuf:  true,
		EnableIndirect: true,
		DirBits:        14,
		L0BTBEntries:   16,
		L1BTBEntries:   1024,
		RASDepth:       16,
		TakenPenalty:   2,

		DecodeWidth:   3,
		RenameWidth:   4,
		RenameDelay:   3,
		IssueWidth:    8,
		IssueQueue:    12,
		ROBSize:       192,
		RetireWidth:   4,
		IntPhysRegs:   96,
		FpPhysRegs:    64,
		Checkpoints:   16,
		OutOfOrder:    true,
		MemDepPredict: true,
		SplitStores:   true,

		LQSize:        32,
		SQSize:        24,
		MispredictMin: 5,

		L1I:      cache.Config{SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, HitLatency: 1},
		L1D:      cache.Config{SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, HitLatency: 2},
		Prefetch: prefetch.DefaultConfig(),

		EnableVector:    true,
		VLEN:            128,
		EnableCustomExt: true,

		PredecodeCache:      true,
		PredecodeSuperblock: true,
		FastForward:         true,
	}
}

// U74Config models a SiFive-U74-class core: dual-issue, in-order, 8-stage
// class pipeline with a simpler front end and no data prefetcher. Used as the
// Fig. 17 comparison point.
func U74Config() Config {
	c := XT910Config()
	c.Name = "U74-class"
	c.FetchBytes = 8
	c.FetchQueue = 8
	c.FrontendDelay = 1
	c.EnableL0BTB = false
	c.EnableLoopBuf = false
	c.DirBits = 14
	c.L1BTBEntries = 256
	c.TakenPenalty = 1
	c.DecodeWidth = 2
	c.RenameWidth = 2
	c.RenameDelay = 1
	c.IssueWidth = 2
	c.IssueQueue = 8
	c.ROBSize = 32
	c.RetireWidth = 2
	c.IntPhysRegs = 48
	c.FpPhysRegs = 40
	c.Checkpoints = 4
	c.OutOfOrder = false
	c.MemDepPredict = false
	c.SplitStores = false
	c.LQSize = 4
	c.SQSize = 4
	c.MispredictMin = 3
	c.L1I.SizeBytes = 32 << 10
	c.L1D.SizeBytes = 32 << 10
	c.L1D.HitLatency = 1 // short in-order load-to-use path
	c.Prefetch.Mode = prefetch.ModeOff
	c.EnableVector = false
	c.EnableCustomExt = false
	return c
}

// A73Config models an ARM-Cortex-A73-class core: 2-wide out-of-order with a
// moderate window, the Fig. 18/19 comparison point. §X notes the A73 and
// XT-910 share "many architectural similarities (e.g., pipeline stages,
// instruction issue width)"; the A73 is slightly narrower at decode.
func A73Config() Config {
	c := XT910Config()
	c.Name = "A73-class"
	c.DecodeWidth = 2
	c.RenameWidth = 3
	c.IssueWidth = 6
	c.ROBSize = 64
	c.RetireWidth = 3
	c.IntPhysRegs = 80
	c.FpPhysRegs = 64
	c.EnableLoopBuf = false
	c.LQSize = 16
	c.SQSize = 12
	c.Prefetch.Mode = prefetch.ModeGlobal
	c.Prefetch.TLBPrefetch = false
	// the A73's memory subsystem sustains more outstanding misses — the §X
	// SPECInt comparison attributes its edge to exactly this
	c.L1D.MSHRs = 16
	c.EnableVector = false // NEON modelled separately in the AI comparison
	c.EnableCustomExt = false
	return c
}

// Validate reports configuration errors (Table I bounds).
func (c *Config) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{c.FetchBytes >= 4, "fetch width too small"},
		{c.DecodeWidth >= 1, "decode width"},
		{c.ROBSize >= 8, "ROB too small"},
		{c.IntPhysRegs >= 40, "need at least 40 int phys regs (32 arch + margin)"},
		{c.FpPhysRegs >= 40, "need at least 40 fp phys regs"},
		{c.LQSize >= 2 && c.SQSize >= 2, "LQ/SQ too small"},
		{c.L1I.SizeBytes == 32<<10 || c.L1I.SizeBytes == 64<<10, "L1I must be 32KB or 64KB (Table I)"},
		{c.L1D.SizeBytes == 32<<10 || c.L1D.SizeBytes == 64<<10, "L1D must be 32KB or 64KB (Table I)"},
		{!c.EnableVector || c.VLEN == 128, "vector config uses the recommended VLEN=128 (§VII)"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return &ConfigError{Config: c.Name, Reason: ch.msg}
		}
	}
	return nil
}

// ConfigError reports an invalid configuration.
type ConfigError struct {
	Config string
	Reason string
}

func (e *ConfigError) Error() string {
	return "core: invalid config " + e.Config + ": " + e.Reason
}
