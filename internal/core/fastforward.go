package core

import (
	"xt910/isa"
)

// Event-driven fast-forward: Run skips stall windows — spans of cycles where
// provably no pipeline stage can make progress — in one jump, generalizing
// the WFI-parking special case from the interrupt protocol. It is a host
// optimization with the same contract as the predecode cache: Stats, CPI
// buckets and architectural state are byte-identical with it on or off.
//
// The soundness argument rests on the model being pull-based: caches, DRAM,
// the MMU and the prefetcher are all keyed on the `now` passed into an
// access, and nothing in the machine mutates state in a cycle where no stage
// acts. A cycle is provably inert when
//
//   - retire cannot act: the ROB head is stalled (not done, or done with a
//     future readyAt) and is not squash/at-retire special-cased,
//   - issue cannot act: every queued µop's earliest-possible issue cycle — a
//     lower bound from its minIssue, its pipe's busy window and its sources'
//     register-file ready times — lies in the future,
//   - rename cannot act: the fetch queue is empty, its head is not yet
//     decoded, or the ROB is full,
//   - fetch cannot act: stalled on a jalr, throttled by fetchAllowed, or the
//     fetch queue is full.
//
// The skip lands on the earliest of those future events, so the cycle where
// work resumes is stepped normally. Issue estimates are lower bounds, never
// exact: a µop whose estimate arrives may still fail its full gating (store-
// queue conflicts, dependence prediction), but that only wakes the stepped
// loop early, never late — and every failure path in the issue/LSU code is
// side-effect-free, so a skipped cycle and a stepped-but-inert cycle are
// indistinguishable once the per-cycle stall counters (HeadStall*, StallROB)
// and the CPI bucket are replicated over the window.
//
// The skip self-disables whenever an interrupt source or MMIO device is
// attached (per-cycle sampling must observe every boundary; cosim sessions
// drive Step directly and never enter this path) and whenever a vector µop
// is in flight (the vector queue gates on scoreboards and quiesce state the
// estimator does not model).

const ffNever = ^uint64(0)

// ffSkip jumps c.now to the next event if the current cycle is provably
// inert, replicating per-cycle counters over the window. It reports whether
// it advanced time; the caller steps normally otherwise. target caps the jump
// (Run's cycle budget), so an event-free machine — a genuine hang — burns its
// budget in one skip exactly as the stepped loop would burn it spinning.
func (c *Core) ffSkip(target uint64) bool {
	if c.IntSource != nil || c.MMIO != nil || c.wfiWait || c.robQ.empty() {
		return false
	}
	head := c.robQ.headEntry()
	if head.squashRetry {
		return false
	}
	next := uint64(ffNever)
	if head.done {
		if head.readyAt <= c.now {
			return false // head retires this cycle
		}
		next = head.readyAt
	} else if head.atRetire {
		return false // executes at the head; each attempt may touch the cache
	}

	// fetch: inert iff stalled, throttled into the future, or queue-full
	if !c.fetchWait && c.fqLen() < c.Cfg.FetchQueue {
		if c.fetchAllowed <= c.now {
			return false
		}
		if c.fetchAllowed < next {
			next = c.fetchAllowed
		}
	}

	// rename: inert iff nothing decoded, head entry not ready, ROB full (the
	// ROB-full case wakes via head.readyAt; StallROB accrues below), or
	// structurally blocked — a per-cycle stall counter accrues in that case
	var renameStall *uint64
	if c.fqLen() > 0 && !c.robQ.full() {
		r := c.fqFront().readyAt
		if r > c.now {
			if r < next {
				next = r
			}
		} else {
			s, blocked := c.ffRenameStall()
			if !blocked {
				return false // rename would make progress this cycle
			}
			renameStall = s
		}
	}

	// issue: earliest lower-bound issue cycle over every queued µop
	for p := pipeID(0); p < numPipes; p++ {
		floor := c.pipeBusy[p]
		for _, idx := range c.queues[p] {
			u := c.robQ.at(idx)
			if (p == pipeFV0 || p == pipeFV1) && u.inst.Op.Class() != isa.ClassFPU {
				return false // vector µop in flight: never skip
			}
			est, known := c.ffIssueEstimate(p, u, floor)
			if known {
				if est <= c.now {
					return false // an issue attempt could happen this cycle
				}
				if est < next {
					next = est
				}
			}
			// unknown estimate: a source's producer has not issued yet, so
			// this µop cannot act before an event already tracked (the
			// producer's own issue estimate)
			if !c.Cfg.OutOfOrder {
				break // in-order: the queue head gates everything younger
			}
		}
	}

	if next <= c.now {
		return false
	}
	skipTo := next
	if skipTo > target {
		skipTo = target
	}
	n := skipTo - c.now
	if n == 0 {
		return false
	}

	// Replicate exactly what n stepped-but-inert cycles would have recorded:
	// retire's head-stall attribution, rename's ROB-full stall, and the CPI
	// bucket for a backend-bound cycle with this head class.
	c.chargeHeadStall(head, n)
	if renameStall != nil {
		*renameStall += n
	}
	if c.robQ.full() && c.fqLen() > 0 {
		from := c.fqFront().readyAt
		if from < c.now {
			from = c.now
		}
		if from < skipTo {
			c.Stats.StallROB += skipTo - from
		}
	}
	if c.tr != nil {
		// The window's head cannot retire, issue or change memLevel across an
		// inert window, so n batched cycles attribute exactly as n stepped
		// ones would: same class, same mem sub-bucket, same owning PC.
		cl, sub, pc := headCycleAttr(head)
		c.tr.CycleN(cl, sub, pc, n)
	}
	c.ffSkippedCycles += n
	c.now = skipTo
	c.Stats.Cycles = c.now
	return true
}

// ffRenameStall mirrors tryRename's decision chain — classification plus the
// structural gates, all side-effect-free — for the fetch-queue head, which
// renameDispatch attempts first each cycle. blocked reports that rename
// cannot make progress; counter, when non-nil, is the stall counter a
// stepped cycle would charge (the gates read only queue lengths, checkpoint
// occupancy and the phys free list, none of which change across an inert
// window, so the same gate fires every cycle of it).
func (c *Core) ffRenameStall() (counter *uint64, blocked bool) {
	e := c.fqFront()
	in := e.inst
	cost := 1
	if c.Cfg.SplitStores && in.Op.IsStore() {
		cost = 2
	}
	if cost > c.Cfg.RenameWidth {
		return nil, true // pathological config: silently stuck, no counter
	}
	exc := e.excCause
	if !c.Cfg.EnableCustomExt && isCustomOp(in.Op) {
		exc = isa.ExcIllegalInst
	}
	var pipe pipeID
	atRetire := exc >= 0
	isCtrl := false
	if !atRetire {
		switch in.Op.Class() {
		case isa.ClassALU:
			pipe = c.balanceALU()
		case isa.ClassMul:
			pipe = pipeALU0
		case isa.ClassDiv:
			pipe = pipeALU1
		case isa.ClassBranch, isa.ClassJump:
			pipe = pipeBJU
			isCtrl = true
		case isa.ClassLoad:
			pipe = pipeLD
		case isa.ClassStore:
			pipe = pipeSTA
		case isa.ClassFPU:
			pipe = c.balanceFV()
		case isa.ClassVSet, isa.ClassVALU, isa.ClassVFPU, isa.ClassVLoad, isa.ClassVStore:
			if c.Vec == nil {
				atRetire = true
			} else {
				pipe = pipeFV0
			}
		default:
			atRetire = true
		}
	}
	if exc < 0 {
		if in.Op.IsLoad() && len(c.lq) >= c.Cfg.LQSize {
			return &c.Stats.StallLQ, true
		}
		if in.Op.IsStore() && len(c.sq) >= c.Cfg.SQSize {
			return &c.Stats.StallSQ, true
		}
	}
	if isCtrl && in.Op != isa.JAL && !c.ffHasFreeCkpt() {
		return &c.Stats.StallCkpt, true
	}
	if exc < 0 && !atRetire && len(c.queues[pipe]) >= c.Cfg.IssueQueue {
		return &c.Stats.StallIQ, true
	}
	if in.WritesReg() && !in.Rd.IsV() && len(c.pf.free) == 0 {
		return &c.Stats.StallPhys, true
	}
	return nil, false // every gate passes: rename would succeed
}

func (c *Core) ffHasFreeCkpt() bool {
	for i := range c.ckpts {
		if !c.ckpts[i].used {
			return true
		}
	}
	return false
}

// ffIssueEstimate lower-bounds the cycle µop u could issue on pipe p: the
// max of its minIssue, the pipe's busy window and its relevant sources'
// ready cycles. known is false when a source is still pending (its producer
// has not issued), in which case the µop carries no event of its own.
func (c *Core) ffIssueEstimate(p pipeID, u *uop, floor uint64) (est uint64, known bool) {
	est = u.minIssue
	if floor > est {
		est = floor
	}
	upd := func(phys int16) bool {
		r := c.pf.readyCycle(phys)
		if r == pendingCycle {
			return false
		}
		if r > est {
			est = r
		}
		return true
	}
	if u.isStore() && (p == pipeSTA || p == pipeSTD) {
		if p == pipeSTA {
			// st.addr leg: address operands, plus the data operand for the
			// unified (non-split) store µop, mirroring execStoreAddr
			if !upd(u.srcPhys[0]) {
				return 0, false
			}
			switch u.inst.Op {
			case isa.XSRB, isa.XSRH, isa.XSRW, isa.XSRD:
				if !upd(u.srcPhys[1]) {
					return 0, false
				}
			}
			if !c.Cfg.SplitStores && !upd(c.ffStoreDataPhys(u)) {
				return 0, false
			}
			return est, true
		}
		// st.data leg: the data operand only, mirroring storeDataVal
		if !upd(c.ffStoreDataPhys(u)) {
			return 0, false
		}
		return est, true
	}
	for i := 0; i < u.nsrc; i++ {
		if !upd(u.srcPhys[i]) {
			return 0, false
		}
	}
	return est, true
}

// ffStoreDataPhys mirrors storeDataVal's source selection without reading
// the value: the physical register the store's data comes from, or noPhys
// when the data is constant-ready (storing x0).
func (c *Core) ffStoreDataPhys(u *uop) int16 {
	switch u.inst.Op {
	case isa.XSRB, isa.XSRH, isa.XSRW, isa.XSRD:
		if u.nsrc >= 3 {
			return u.srcPhys[2]
		}
	default:
		if u.inst.Rs2 == isa.Zero || u.inst.Rs2 == isa.RegNone {
			return noPhys
		}
		if u.nsrc >= 2 {
			return u.srcPhys[1]
		}
	}
	return noPhys
}

// chargeHeadStall is countHeadStall × n for a fast-forwarded window.
func (c *Core) chargeHeadStall(u *uop, n uint64) {
	switch u.inst.Op.Class() {
	case isa.ClassLoad:
		c.Stats.HeadStallLoad += n
	case isa.ClassStore:
		c.Stats.HeadStallStore += n
	case isa.ClassFPU:
		c.Stats.HeadStallFPU += n
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		c.Stats.HeadStallALU += n
	case isa.ClassVALU, isa.ClassVFPU, isa.ClassVLoad, isa.ClassVStore, isa.ClassVSet:
		c.Stats.HeadStallVec += n
	default:
		c.Stats.HeadStallOther += n
	}
}
