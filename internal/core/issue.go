package core

import (
	"xt910/internal/mmu"
	"xt910/internal/trace"
	"xt910/internal/vector"
	"xt910/isa"
)

// issueAndExecute models the IS/RF/EX stages: each pipe selects its oldest
// ready micro-op (age-vector scheduling, §IV), up to IssueWidth issues per
// cycle across the 8 shared instruction slots. Execution is value-carrying:
// results are computed at issue time from the physical register file and
// become visible to consumers at now+latency (full bypass network).
func (c *Core) issueAndExecute() {
	slots := c.Cfg.IssueWidth
	for p := pipeID(0); p < numPipes && slots > 0; p++ {
		if c.pipeBusy[p] > c.now {
			continue
		}
		q := c.queues[p]
		for qi := 0; qi < len(q); qi++ {
			idx := q[qi]
			u := c.robQ.at(idx)
			if u.minIssue > c.now {
				// queues are age-ordered; younger entries cannot be ready
				// earlier in the in-order machine, but in the OoO machine a
				// younger op may still issue — keep scanning.
				if !c.Cfg.OutOfOrder {
					break
				}
				continue
			}
			if !c.Cfg.OutOfOrder && !c.allOlderIssued(u.seq) {
				break
			}
			if c.tryExecute(p, idx, u) {
				if c.tr != nil {
					c.traceIssue(p, u.seq)
				}
				// tryExecute may itself rewrite the queues (branch recovery
				// squashes younger entries), so remove the issued entry from
				// the queue's current contents rather than the stale slice.
				cur := c.queues[p]
				for j, v := range cur {
					if v == idx {
						c.queues[p] = append(cur[:j], cur[j+1:]...)
						break
					}
				}
				slots--
				c.Stats.Issued++
				break // one issue per pipe per cycle
			}
			if !c.Cfg.OutOfOrder {
				break // in-order: blocked head blocks the pipe
			}
			if p == pipeFV0 && c.robQ.at(idx).inst.Op.Class() != isa.ClassFPU {
				// the vector queue is strictly ordered (§VII: vector ops
				// mutate architectural vector state at execute)
				break
			}
		}
	}
}

// traceIssue stamps the issue-side lifecycle events for a µop that just left
// pipe p's queue: the scheduler selection itself, then the pipe-specific
// execution point (AGU leg, store-data capture, or EX1).
func (c *Core) traceIssue(p pipeID, seq uint64) {
	c.tr.StageAt(seq, trace.StageIssue, c.now)
	switch p {
	case pipeLD:
		c.tr.StageAt(seq, trace.StageAddr, c.now)
	case pipeSTA:
		c.tr.StageAt(seq, trace.StageAddr, c.now)
		if !c.Cfg.SplitStores {
			// unified store µOp captures its data on the same pipe
			c.tr.StageAt(seq, trace.StageData, c.now)
		}
	case pipeSTD:
		c.tr.StageAt(seq, trace.StageData, c.now)
	default:
		c.tr.StageAt(seq, trace.StageExec, c.now)
	}
}

// allOlderIssued enforces in-order issue for the U74-class configuration:
// a micro-op may issue only when every older one has issued.
func (c *Core) allOlderIssued(seq uint64) bool {
	ok := true
	c.robQ.forEach(func(_ int, u *uop) bool {
		if u.seq >= seq {
			return false
		}
		// the store-data leg and atRetire ops do not gate in-order issue
		if !u.issued && !u.atRetire && u.excCause < 0 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

func (c *Core) srcsReady(u *uop) bool {
	for i := 0; i < u.nsrc; i++ {
		if !c.pf.ready(u.srcPhys[i], c.now) {
			return false
		}
	}
	return true
}

func (c *Core) srcVal(u *uop, i int) uint64 { return c.pf.read(u.srcPhys[i]) }

// opndABC resolves up to three scalar operand values in Sources() order.
func (c *Core) opndABC(u *uop) (a, b, cc uint64) {
	vals := [3]uint64{}
	for i := 0; i < u.nsrc; i++ {
		vals[i] = c.srcVal(u, i)
	}
	return vals[0], vals[1], vals[2]
}

// tryExecute attempts to issue the micro-op on pipe p; returns true when it
// issued (for stores, when the corresponding leg issued).
func (c *Core) tryExecute(p pipeID, idx int, u *uop) bool {
	switch {
	case p == pipeSTA && u.isStore():
		return c.execStoreAddr(idx, u)
	case p == pipeSTD && u.isStore():
		return c.execStoreData(u)
	case p == pipeLD:
		return c.execLoad(idx, u)
	case p == pipeFV0 || p == pipeFV1:
		if u.inst.Op.Class() == isa.ClassFPU {
			return c.execFPU(p, u)
		}
		return c.execVector(p, idx, u)
	case p == pipeBJU:
		return c.execBranch(u)
	default:
		return c.execALU(p, u)
	}
}

func (c *Core) execALU(p pipeID, u *uop) bool {
	if !c.srcsReady(u) {
		return false
	}
	op := u.inst.Op
	a, b, _ := c.opndABC(u)
	var res uint64
	var ok bool
	// three-source forms read the old destination as their last source
	if res, ok = isa.EvalIntALU(op, a, b, u.pc, u.inst.Imm, u.inst.Size); !ok {
		v0, v1, v2 := c.opndABC(u)
		if res, ok = isa.EvalIntALU3(op, v0, v1, v2); !ok {
			u.excCause = isa.ExcIllegalInst
			u.excTval = u.pc
			u.done = true
			u.readyAt = c.now + 1
			u.issued = true
			return true
		}
	}
	lat := uint64(op.Latency())
	if op.Class() == isa.ClassDiv {
		lat = uint64(isa.DivLatency(op, a))
		c.pipeBusy[p] = c.now + lat // the divider is not pipelined
	}
	c.pf.write(u.newPhys, res, c.now+lat)
	u.done, u.issued = true, true
	u.readyAt = c.now + lat
	return true
}

func (c *Core) execFPU(p pipeID, u *uop) bool {
	if !c.srcsReady(u) {
		return false
	}
	a, b, cc := c.opndABC(u)
	res, flags, ok := isa.EvalFPUFlags(u.inst.Op, a, b, cc)
	if !ok {
		u.excCause = isa.ExcIllegalInst
		u.excTval = u.pc
	}
	u.fpFlags = flags
	lat := uint64(u.inst.Op.Latency())
	if lat > 8 {
		c.pipeBusy[p] = c.now + lat/2 // long-latency FP ops partially block
	}
	c.pf.write(u.newPhys, res, c.now+lat)
	u.done, u.issued = true, true
	u.readyAt = c.now + lat
	return true
}

// execBranch resolves branches and jumps at EX1 and recovers from
// mispredictions via the rename checkpoints.
func (c *Core) execBranch(u *uop) bool {
	if !c.srcsReady(u) {
		return false
	}
	op := u.inst.Op
	a, b, _ := c.opndABC(u)
	nextPC := u.pc + uint64(u.inst.Size)
	actTaken := false
	actTarget := nextPC
	switch op {
	case isa.JAL:
		actTaken = true
		actTarget = u.pc + uint64(u.inst.Imm)
	case isa.JALR:
		actTaken = true
		actTarget = (a + uint64(u.inst.Imm)) &^ 1
	default:
		actTaken = isa.EvalBranch(op, a, b)
		if actTaken {
			actTarget = u.pc + uint64(u.inst.Imm)
		}
	}
	// link register
	if u.newPhys != noPhys {
		c.pf.write(u.newPhys, nextPC, c.now+1)
	}
	u.done, u.issued = true, true
	u.readyAt = c.now + 1
	u.redirectTo = actTarget

	// train the predictors (§III)
	c.Stats.Branches++
	if op.IsBranch() {
		c.Dir.Update(u.dirIdx, actTaken, u.predTaken)
		if actTaken {
			c.L1BTB.Insert(u.pc, actTarget, false, false, false)
			if c.Cfg.EnableL0BTB {
				c.L0BTB.Insert(u.pc, actTarget, false, false, false)
			}
			if c.Cfg.EnableLoopBuf && actTarget < u.pc {
				body := int(u.pc-actTarget)/2 + 1
				c.LoopBuf.Observe(u.pc, actTarget, body)
			}
		} else if c.Cfg.EnableLoopBuf && c.LoopBuf.Active() && u.pc == c.LoopBuf.End() {
			c.LoopBuf.Exit()
		}
	}
	if op == isa.JALR {
		c.L1BTB.Insert(u.pc, actTarget, u.inst.Rd == isa.RA, u.inst.Rs1 == isa.RA, true)
		if c.Cfg.EnableIndirect {
			c.Ind.Update(u.pc, u.histBefore, actTarget)
		}
	}

	mispredict := actTaken != u.predTaken || (actTaken && actTarget != u.predTarget)
	if mispredict {
		c.Stats.BrMispredicts++
		c.recoverFromBranch(u, actTarget, actTaken)
	} else if u.ckptID >= 0 {
		c.ckpts[u.ckptID].used = false
		u.ckptID = -1
	}
	return true
}

// execVector runs the ordered vector queue (§VII). Vector operations execute
// non-speculatively: the head of the vector queue issues only once no older
// unresolved control flow, unexecuted memory operation, or retire-executed
// (CSR/system) instruction remains in the ROB, because vector execution
// mutates the architectural vector file directly.
func (c *Core) execVector(p pipeID, idx int, u *uop) bool {
	if !c.srcsReady(u) || c.vecBusy > c.now {
		return false
	}
	if !c.olderQuiesced(u.seq) {
		return false
	}
	op := u.inst.Op
	cls := op.Class()
	if cls == isa.ClassVLoad || cls == isa.ClassVStore {
		// memory-ordered: all older scalar stores must have drained
		for i := range c.sq {
			if c.sq[i].seq < u.seq {
				return false
			}
		}
	}
	// vector register dependencies via the scoreboard
	vt := c.Vec.VType
	group := vt.LMUL()
	checkGroup := func(r isa.Reg) bool {
		if !r.IsV() {
			return true
		}
		base := r.Index()
		for i := 0; i < group && base+i < 32; i++ {
			if c.vregReady[base+i] > c.now {
				return false
			}
		}
		return true
	}
	if !checkGroup(u.inst.Rs1) || !checkGroup(u.inst.Rs2) || !checkGroup(u.inst.Rs3) ||
		!checkGroup(u.inst.Rd) {
		return false
	}
	// masked ops read v0 as the mask source regardless of operand fields
	if u.inst.Masked && c.vregReady[0] > c.now {
		return false
	}

	if op == isa.VSETVLI || op == isa.VSETVL {
		requested := uint64(0)
		if u.nsrc > 0 {
			requested = c.srcVal(u, 0)
		}
		var nvt isa.VType
		if op == isa.VSETVLI {
			nvt = isa.VType(u.inst.Imm)
		} else {
			nvt = isa.VType(c.srcVal(u, 1))
		}
		if u.inst.Rs1 == isa.Zero && u.inst.Rd != isa.Zero {
			requested = ^uint64(0)
		}
		vl := c.Vec.SetVL(requested, nvt)
		c.pf.write(u.newPhys, vl, c.now+1)
		// §VII vl speculation: a changed vl breaks the predicted vector
		// configuration and costs a re-steer of in-flight vector work.
		if vl != c.lastVL {
			c.Stats.VlSpecFails++
			c.vecBusy = c.now + 6
		}
		c.lastVL = vl
		c.lastVecSeq = u.seq
		u.done, u.issued = true, true
		u.readyAt = c.now + 1
		return true
	}

	// execute functionally against architectural vector state
	scalar := uint64(0)
	if u.nsrc > 0 {
		scalar = c.srcVal(u, 0)
	}
	vin := u.inst
	switch op {
	case isa.VLSE:
		vin.Imm = int64(c.srcVal(u, 1))
	case isa.VSSE:
		vin.Imm = int64(c.srcVal(u, 1))
	}
	memDone := c.now
	var memErr error
	var memErrVA uint64
	ld := func(addr uint64, size int) uint64 {
		pa, done, err := c.translateData(addr, false)
		if err != nil {
			if memErr == nil {
				memErr, memErrVA = err, addr
			}
			return 0 // matches the golden model: a faulting element reads 0
		}
		if done > memDone {
			memDone = done
		}
		return c.Mem.Read(pa, size)
	}
	st := func(addr uint64, size int, v uint64) {
		pa, done, err := c.translateData(addr, true)
		if err != nil {
			if memErr == nil {
				memErr, memErrVA = err, addr
			}
			return
		}
		if done > memDone {
			memDone = done
		}
		c.Mem.Write(pa, size, v)
		c.notifyWrite(pa, size)
	}
	xres, hasX, err := c.Vec.Exec(vin, scalar, ld, st)
	if err != nil || memErr != nil {
		// same precedence as the golden model: a vector-unit error is an
		// illegal instruction; otherwise the first element fault reports its
		// real page-fault cause with the faulting element's virtual address
		if pf, ok := memErr.(*mmu.PageFault); err == nil && ok {
			u.excCause = pf.Cause()
			u.excTval = memErrVA
		} else {
			u.excCause = isa.ExcIllegalInst
			u.excTval = u.pc
		}
		u.done, u.issued = true, true
		u.readyAt = c.now + 1
		return true
	}

	lat := uint64(op.Latency())
	occ := uint64((vector.OccupancyCycles(vt) + 1) / 2) // two slices
	if occ < 1 {
		occ = 1
	}
	switch cls {
	case isa.ClassVLoad, isa.ClassVStore:
		// one demand access per touched line, 128 bits/cycle through the LSU
		vl := int(c.Vec.VL)
		bytes := vl * vt.SEW() / 8
		lineStep := c.Cfg.L1D.LineBytes
		base := scalar
		var last uint64
		for off := 0; off < bytes; off += lineStep {
			pa, _, err := c.translateData(base+uint64(off), cls == isa.ClassVStore)
			if err != nil {
				break
			}
			done, _ := c.L1D.Access(pa, cls == isa.ClassVStore, c.now)
			if done > last {
				last = done
			}
			if cls == isa.ClassVLoad {
				c.PF.Train(base+uint64(off), c.now)
			}
		}
		if last > memDone {
			memDone = last
		}
		mc := uint64(vector.MemCycles(vl, vt))
		c.pipeBusy[pipeLD] = c.now + mc
		lat = memDone - c.now + 2
		occ = mc
	default:
		c.pipeBusy[pipeFV1] = c.now + occ // both slices work in concert
	}
	c.vecBusy = c.now + occ
	// scoreboard: destination group ready after latency
	if u.inst.Rd.IsV() {
		base := u.inst.Rd.Index()
		wide := group
		if op == isa.VWMACCVV {
			wide = group * 2
		}
		for i := 0; i < wide && base+i < 32; i++ {
			c.vregReady[base+i] = c.now + lat
		}
	}
	if hasX {
		c.pf.write(u.newPhys, xres, c.now+lat)
	}
	c.lastVecSeq = u.seq
	u.done, u.issued = true, true
	u.readyAt = c.now + lat
	c.Stats.VecOps++
	return true
}

// LastVectorSeq reports the sequence number of the youngest vector-queue
// operation that has executed. Vector ops mutate the architectural vector
// file (and vl/vtype) at execute time, ahead of their own retirement, so a
// checker can compare vector state at a vector op's commit only when that op
// is still the youngest executed one.
func (c *Core) LastVectorSeq() uint64 { return c.lastVecSeq }

// olderQuiesced reports whether everything older than seq is safe to commit
// past: no unresolved control flow, no unexecuted memory op, no pending
// retire-executed instruction, no pending squash/exception.
func (c *Core) olderQuiesced(seq uint64) bool {
	ok := true
	c.robQ.forEach(func(_ int, u *uop) bool {
		if u.seq >= seq {
			return false
		}
		if u.excCause >= 0 || u.squashRetry || u.atRetire {
			ok = false
			return false
		}
		if u.isCtrl && !u.done {
			ok = false
			return false
		}
		if u.isLoad() && !u.done {
			ok = false
			return false
		}
		if u.isStore() && !(u.addrDone && u.dataDone) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// translateData resolves a data virtual address through the MMU.
func (c *Core) translateData(va uint64, write bool) (uint64, uint64, error) {
	acc := mmuAccLoad
	if write {
		acc = mmuAccStore
	}
	return c.mmuTranslate(va, acc)
}
