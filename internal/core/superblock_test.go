package core

import "testing"

func TestSuperblockUnit(t *testing.T) {
	in4 := asmInstForTest(t, "addi a0, a0, 2")

	mk := func(entry uint64, n int) *sbBlock {
		b := &sbBlock{tag: entry | 1}
		for i := 0; i < n; i++ {
			b.insts[b.n] = in4
			b.n++
			b.endPA = entry + uint64(4*(i+1))
		}
		return b
	}

	s := newSuperblockCache()
	s.insert(mk(0x1000, 4)) // spans [0x1000, 0x1010)
	if s.lookup(0x1000) == nil {
		t.Fatal("insert/lookup round trip failed")
	}
	if s.lookup(0x1004) != nil {
		t.Fatal("interior address must not hit: blocks are keyed by entry PA")
	}

	// a write anywhere inside the span drops the block — containment, not
	// merely entry-PA match
	for _, wr := range []struct {
		addr uint64
		size int
		hit  bool
	}{
		{0x0ffc, 4, true},  // ends at the entry: untouched
		{0x0ffe, 4, false}, // overlaps the first instruction
		{0x1000, 1, false}, // first byte
		{0x1008, 2, false}, // middle of the block
		{0x100f, 1, false}, // last byte
		{0x1010, 8, true},  // starts past the block
	} {
		s.flush()
		s.insert(mk(0x1000, 4))
		s.invalidate(wr.addr, wr.size)
		if got := s.lookup(0x1000) != nil; got != wr.hit {
			t.Fatalf("write [%#x,+%d): lookup hit=%v, want %v", wr.addr, wr.size, got, wr.hit)
		}
	}

	// wrap boundary: a block whose span reaches the top of the address space
	// must die to a store there even though pa+size overflows, and a store at
	// address 0 must kill a block wrapping past the boundary
	top := ^uint64(0) - 15 // 0xfff...fff0
	s.flush()
	s.insert(mk(top, 4)) // spans the last 16 bytes
	s.invalidate(^uint64(0)-3, 4)
	if s.lookup(top) != nil {
		t.Fatal("store at the top of the address space left the block live")
	}
	s.flush()
	b := mk(top, 4)
	b.endPA = top + 18 // tail instruction straddles the wrap, ends at 0x2
	s.insert(b)
	s.invalidate(0, 2)
	if s.lookup(top) != nil {
		t.Fatal("store at address 0 left a wrapping block live")
	}

	s.flush()
	s.insert(mk(0x1000, 4))
	s.flush()
	if s.lookup(0x1000) != nil {
		t.Fatal("flush must empty the cache")
	}
}

// TestSuperblockSelfModifyingCode re-runs the SMC programs with superblocks
// explicitly on and off: a committed store over a cached block's interior
// must invalidate the whole block, with and without fence.i.
func TestSuperblockSelfModifyingCode(t *testing.T) {
	for _, enabled := range []bool{true, false} {
		cfg := XT910Config()
		cfg.PredecodeSuperblock = enabled
		c := runCore(t, cfg, selfModifyingProgram)
		if c.ExitCode != 3 {
			t.Fatalf("superblock=%v: exit = %d, want 3 (stale replay served?)", enabled, c.ExitCode)
		}
		c2 := runCore(t, cfg, smcNoFenceProgram)
		c3cfg := cfg
		c3cfg.PredecodeCache = false
		c3cfg.PredecodeSuperblock = false
		c3 := runCore(t, c3cfg, smcNoFenceProgram)
		if c2.ExitCode != c3.ExitCode {
			t.Fatalf("superblock=%v changed architectural behaviour: %d vs %d",
				enabled, c2.ExitCode, c3.ExitCode)
		}
	}
}
