package core

import (
	"xt910/internal/trace"
	"xt910/isa"
)

// recoverFromBranch restores front-end state from the branch's rename-time
// checkpoint (§IV speculative allocation) and squashes everything younger.
// The misprediction penalty — "at least seven clock cycles ... compared to
// executing jump at the IP stage" (§III-A) — emerges from the redirect gap
// plus the refill of the IF/IP/IB and ID/IR/IS/RF stages.
func (c *Core) recoverFromBranch(u *uop, target uint64, actTaken bool) {
	ck := &c.ckpts[u.ckptID]
	copy(c.rat, ck.rat[:])
	// the RAS and global history rewind to their fetch-time snapshots (the
	// rename-time view already contains younger wrong-path speculation),
	// then the branch's own resolved outcome is replayed into the history.
	c.RAS.Restore(u.rasSnap)
	c.Dir.RestoreHistory(u.histBefore)
	if u.inst.Op.IsBranch() {
		c.Dir.SpeculateHistory(actTaken)
	}
	if u.inst.Op == isa.JALR && u.inst.Rd == isa.RA {
		c.RAS.Push(u.pc + uint64(u.inst.Size))
	}
	ck.used = false
	u.ckptID = -1

	c.squashYounger(u.seq)
	c.fqReset()
	c.fetchWait = false
	c.fetchPC = target
	c.fetchAllowed = c.now + uint64(c.Cfg.MispredictMin)
	c.badSpecUntil = c.fetchAllowed // wrong-path recovery window (CPI stack)
	c.Stats.Flushes++
}

// squashYounger removes all micro-ops younger than keepSeq from the ROB,
// issue queues, LQ and SQ, releasing their physical registers and
// checkpoints.
func (c *Core) squashYounger(keepSeq uint64) {
	c.robQ.squashAfter(keepSeq, func(u *uop) {
		if c.tr != nil {
			// squashYounger is only reached from branch recovery
			c.tr.Squash(u.seq, c.now, trace.SquashMispredict)
		}
		if u.newPhys != noPhys {
			// undo the rename: the checkpointed RAT no longer references it
			c.pf.release(u.newPhys)
		}
		if u.ckptID >= 0 {
			c.ckpts[u.ckptID].used = false
		}
	})
	for p := range c.queues {
		q := c.queues[p][:0]
		for _, idx := range c.queues[p] {
			if c.robQ.live(idx) && c.robQ.at(idx).seq <= keepSeq {
				q = append(q, idx)
			}
		}
		c.queues[p] = q
	}
	c.lq = filterLQ(c.lq, keepSeq)
	c.sq = filterSQ(c.sq, keepSeq)
}

func filterLQ(q []lqEntry, keepSeq uint64) []lqEntry {
	out := q[:0]
	for _, e := range q {
		if e.seq <= keepSeq {
			out = append(out, e)
		}
	}
	return out
}

func filterSQ(q []sqEntry, keepSeq uint64) []sqEntry {
	out := q[:0]
	for _, e := range q {
		if e.seq <= keepSeq {
			out = append(out, e)
		}
	}
	return out
}

// flushAll empties the whole pipeline (taken at retirement for exceptions,
// serializing instructions and memory-ordering squashes, Fig. 8) and
// restarts fetch at pc, attributing every killed µop to cause. The
// speculative RAT is rebuilt from the retirement RAT and the free list from
// scratch.
func (c *Core) flushAll(pc uint64, cause trace.SquashCause) {
	// release every in-flight rename
	c.robQ.forEach(func(_ int, u *uop) bool {
		if c.tr != nil {
			c.tr.Squash(u.seq, c.now, cause)
		}
		if u.newPhys != noPhys {
			c.pf.release(u.newPhys)
		}
		return true
	})
	c.robQ.head, c.robQ.tail, c.robQ.count = 0, 0, 0
	for p := range c.queues {
		c.queues[p] = c.queues[p][:0]
	}
	c.lq = c.lq[:0]
	c.sq = c.sq[:0]
	for i := range c.ckpts {
		c.ckpts[i].used = false
	}
	copy(c.rat, c.archRAT)
	c.fqReset()
	c.fetchWait = false
	c.fetchPC = pc
	c.fetchAllowed = c.now + uint64(c.Cfg.MispredictMin)
	if c.fetchAllowed > c.feRedirectUntil {
		// serialize/exception refill: frontend cycles until fetch resumes are
		// redirect-bound (mispredict recovery sets badSpecUntil instead)
		c.feRedirectUntil = c.fetchAllowed
	}
	c.Stats.Flushes++
	for p := range c.pipeBusy {
		c.pipeBusy[p] = 0
	}
	c.vecBusy = 0
}
