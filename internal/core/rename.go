package core

import (
	"xt910/internal/trace"
	"xt910/isa"
)

// renameDispatch models ID/IR/IS dispatch (§IV): up to DecodeWidth
// instructions leave the IBUF per cycle, are cracked into micro-ops (stores
// split into st.addr/st.data legs, §V-B), renamed onto speculatively
// allocated physical registers (up to RenameWidth rename slots), and
// dispatched into the per-pipe issue queues with dynamic load balancing.
func (c *Core) renameDispatch() {
	renameSlots := c.Cfg.RenameWidth
	for n := 0; n < c.Cfg.DecodeWidth && c.fqLen() > 0; n++ {
		e := *c.fqFront()
		if e.readyAt > c.now {
			return
		}
		cost := 1
		if c.Cfg.SplitStores && e.inst.Op.IsStore() {
			cost = 2 // pseudo-double store consumes two rename slots
		}
		if cost > renameSlots {
			return
		}
		if c.robQ.full() {
			c.Stats.StallROB++
			return
		}
		if !c.tryRename(&e) {
			return // structural stall (phys regs, LQ/SQ, queue, checkpoint)
		}
		renameSlots -= cost
		c.fqPop()
	}
}

// tryRename renames and dispatches one instruction; returns false on a
// structural hazard (leaving the instruction in the IBUF).
func (c *Core) tryRename(e *fqEntry) bool {
	in := e.inst
	u := uop{
		seq:        c.seq + 1,
		pc:         e.pc,
		inst:       in,
		newPhys:    noPhys,
		oldPhys:    noPhys,
		lqIdx:      -1,
		sqIdx:      -1,
		ckptID:     -1,
		minIssue:   c.now + uint64(c.Cfg.RenameDelay),
		predTaken:  e.predTaken,
		predTarget: e.predTarget,
		dirIdx:     e.dirIdx,
		histBefore: e.histBefore,
		rasSnap:    e.rasSnap,
		fromLoop:   e.fromLoop,
		excCause:   e.excCause,
		excTval:    e.excTval,
		memSize:    in.Op.MemBytes(),
	}

	if !c.Cfg.EnableCustomExt && isCustomOp(in.Op) {
		// §II: with the non-standard extensions disabled the core operates
		// fully standard-compatible — custom encodings trap as illegal.
		u.excCause = isa.ExcIllegalInst
		u.excTval = e.pc
	}

	class := in.Op.Class()
	if u.excCause < 0 {
		switch class {
		case isa.ClassALU:
			u.pipe = c.balanceALU()
		case isa.ClassMul:
			u.pipe = pipeALU0
		case isa.ClassDiv:
			u.pipe = pipeALU1 // multi-cycle ALU/divider pipe (§II)
		case isa.ClassBranch, isa.ClassJump:
			u.pipe = pipeBJU
			u.isCtrl = true
		case isa.ClassLoad:
			u.pipe = pipeLD
		case isa.ClassStore:
			u.pipe = pipeSTA // plus an st.data leg below
		case isa.ClassFPU:
			u.pipe = c.balanceFV()
		case isa.ClassVSet, isa.ClassVALU, isa.ClassVFPU, isa.ClassVLoad, isa.ClassVStore:
			if c.Vec == nil {
				u.excCause = isa.ExcIllegalInst
				u.excTval = e.pc
				u.atRetire = true
			} else {
				u.pipe = pipeFV0 // ordered vector queue
			}
		case isa.ClassCSR, isa.ClassSys, isa.ClassAMO, isa.ClassCacheOp:
			u.atRetire = true
		default:
			u.atRetire = true
		}
	} else {
		u.atRetire = true
	}

	// structural resources
	if u.isLoad() && u.excCause < 0 {
		if len(c.lq) >= c.Cfg.LQSize {
			c.Stats.StallLQ++
			return false
		}
	}
	if u.isStore() && u.excCause < 0 {
		if len(c.sq) >= c.Cfg.SQSize {
			c.Stats.StallSQ++
			return false
		}
	}
	needCkpt := u.isCtrl && in.Op != isa.JAL
	ckptID := -1
	if needCkpt {
		ckptID = c.allocCkpt()
		if ckptID < 0 {
			c.Stats.StallCkpt++
			return false
		}
	}
	if u.excCause < 0 && !u.atRetire && len(c.queues[u.pipe]) >= c.Cfg.IssueQueue {
		c.Stats.StallIQ++
		if ckptID >= 0 {
			c.ckpts[ckptID].used = false
		}
		return false
	}

	// rename sources through the speculative RAT
	regs, nsrc := in.Sources()
	for i := 0; i < nsrc; i++ {
		r := regs[i]
		if r.IsV() {
			continue // vector operands tracked by the vector scoreboard
		}
		u.srcPhys[u.nsrc] = c.rat[int(r)]
		u.nsrc++
	}
	// allocate destination
	if in.WritesReg() && !in.Rd.IsV() {
		p, ok := c.pf.alloc()
		if !ok {
			c.Stats.StallPhys++
			if ckptID >= 0 {
				c.ckpts[ckptID].used = false
			}
			return false
		}
		u.newPhys = p
		u.oldPhys = c.rat[int(in.Rd)]
		c.rat[int(in.Rd)] = p
	}

	c.seq++
	u.seq = c.seq
	if ckptID >= 0 {
		u.ckptID = ckptID
		ck := &c.ckpts[ckptID]
		ck.seq = u.seq
		copy(ck.rat[:], c.rat)
		ck.ras = c.RAS.Snapshot()
		ck.history = c.Dir.History()
	}

	idx := c.robQ.push(u)
	pu := c.robQ.at(idx)

	if c.tr != nil {
		c.traceRename(pu, e)
	}

	if pu.isLoad() && pu.excCause < 0 {
		pu.lqIdx = len(c.lq)
		c.lq = append(c.lq, lqEntry{seq: pu.seq, robIdx: idx})
	}
	if pu.isStore() && pu.excCause < 0 {
		pu.sqIdx = len(c.sq)
		c.sq = append(c.sq, sqEntry{seq: pu.seq, robIdx: idx})
	}
	if !pu.atRetire && pu.excCause < 0 {
		c.queues[pu.pipe] = append(c.queues[pu.pipe], idx)
		if pu.isStore() && c.Cfg.SplitStores {
			// st.data leg issues independently from its own queue (§V-B);
			// without the split, the store is a single µOp on the store pipe
			// that waits for both its address and data operands
			c.queues[pipeSTD] = append(c.queues[pipeSTD], idx)
		}
	}
	c.Stats.Renamed++
	return true
}

// traceRename opens the µop's trace record — seq exists only from rename on —
// with the frontend stamps back-dated from the fetch-queue entry. Kept out of
// tryRename so the untraced hot path pays only the nil check.
func (c *Core) traceRename(pu *uop, e *fqEntry) {
	c.tr.Begin(pu.seq, pu.pc, pu.inst, c.now)
	c.tr.StageAt(pu.seq, trace.StageFetch, e.readyAt-uint64(e.fetchLag))
	c.tr.StageAt(pu.seq, trace.StagePredecode, e.readyAt)
	c.tr.StageAt(pu.seq, trace.StageRename, c.now)
	c.tr.StageAt(pu.seq, trace.StageDispatch, c.now)
}

func isCustomOp(op isa.Op) bool {
	return op >= isa.XLRB && op <= isa.XTLBIVA
}

// balanceALU implements the §IV dynamic load balancing: ALU work goes to the
// shorter of the two ALU queues.
func (c *Core) balanceALU() pipeID {
	if len(c.queues[pipeALU1]) < len(c.queues[pipeALU0]) {
		return pipeALU1
	}
	return pipeALU0
}

func (c *Core) balanceFV() pipeID {
	if len(c.queues[pipeFV1]) < len(c.queues[pipeFV0]) {
		return pipeFV1
	}
	return pipeFV0
}

func (c *Core) allocCkpt() int {
	for i := range c.ckpts {
		if !c.ckpts[i].used {
			c.ckpts[i].used = true
			return i
		}
	}
	return -1
}
