package core

import (
	"xt910/internal/mmu"
	"xt910/isa"
)

// The fetch queue (IBUF) is a head-indexed slice: rename pops by advancing
// fqHead instead of re-slicing, so the backing array never drifts forward and
// is reused for the whole run — the hot loop allocates nothing. The array
// compacts only when a push lands on a full backing array with dead space at
// the front, and snaps back to the origin whenever the queue drains.

func (c *Core) fqLen() int { return len(c.fq) - c.fqHead }

func (c *Core) fqFront() *fqEntry { return &c.fq[c.fqHead] }

func (c *Core) fqPush(e fqEntry) {
	if c.fqHead > 0 && len(c.fq) == cap(c.fq) {
		n := copy(c.fq, c.fq[c.fqHead:])
		c.fq = c.fq[:n]
		c.fqHead = 0
	}
	c.fq = append(c.fq, e)
}

func (c *Core) fqPop() {
	c.fqHead++
	if c.fqHead == len(c.fq) {
		c.fqReset()
	}
}

func (c *Core) fqReset() {
	c.fq = c.fq[:0]
	c.fqHead = 0
}

// fetch models the IF/IP/IB stages (§III): one 128-bit fetch group per cycle
// from the L1 I-cache (or the loop buffer), multi-branch prediction within
// the group via the two-level-buffered direction predictor, L0/L1 BTBs, RAS
// and the indirect predictor. Predicted-taken redirects cost TakenPenalty
// bubbles unless served by the L0 BTB (zero-bubble, §III-B) or the LBUF.
func (c *Core) fetch() {
	if c.fetchWait || c.now < c.fetchAllowed || c.fqLen() >= c.Cfg.FetchQueue {
		return
	}
	pc := c.fetchPC
	fromLoop := c.Cfg.EnableLoopBuf && c.LoopBuf.Covers(pc)

	var groupReady uint64
	if fromLoop {
		// LBUF fetch: no I-cache access, available next cycle (§III-C).
		groupReady = c.now + 1
	} else {
		pa := pc
		if c.MMU.Enabled() {
			var err error
			var doneT uint64
			walks := c.MMU.Stats.Walks
			pa, doneT, err = c.MMU.Translate(pc, mmu.AccFetch, c.now)
			if err != nil {
				c.injectFetchFault(pc, err)
				return
			}
			if c.MMU.Stats.Walks > walks && doneT > c.feITLBUntil {
				c.feITLBUntil = doneT // ITLB miss: frontend starves on the walk
			}
			groupReady = doneT
		} else {
			groupReady = c.now
		}
		done, hit := c.L1I.Fetch(pa, groupReady)
		groupReady = done + uint64(c.Cfg.FrontendDelay)
		if !hit && groupReady > c.feICacheUntil {
			c.feICacheUntil = groupReady // I-cache miss: starved until the fill
		}
	}

	groupEnd := (pc | uint64(c.Cfg.FetchBytes-1)) + 1
	redirected := false

	// Superblock replay/build (superblock.go): only while translation is off,
	// so pa == pc for every instruction in the walk. A hit supplies decoded
	// instructions to the walk below in place of decodeAt; everything else —
	// prediction, redirects, queue pressure, timing — runs identically.
	var sb *sbBlock
	sbPos := 0
	var build sbBlock
	if c.sblk != nil && !c.MMU.Enabled() {
		if sb = c.sblk.lookup(pc); sb == nil {
			build.tag = pc | 1
		}
	}
	for pc < groupEnd && c.fqLen() < c.Cfg.FetchQueue {
		var in isa.Inst
		if sb != nil && sbPos < int(sb.n) {
			in = sb.insts[sbPos]
			sbPos++
			c.Stats.SuperblockHits++
		} else {
			var ok bool
			in, ok = c.decodeAt(pc)
			if !ok {
				// crosses a page we cannot translate yet: stop the group here
				break
			}
			if build.tag != 0 && build.n < sbMaxInsts {
				build.insts[build.n] = in
				build.n++
				build.endPA = pc + uint64(in.Size)
			}
		}
		e := fqEntry{inst: in, pc: pc, readyAt: groupReady, fetchLag: uint32(groupReady - c.now), excCause: -1, fromLoop: fromLoop}
		nextPC := pc + uint64(in.Size)

		switch {
		case in.Op == isa.ILLEGAL:
			e.excCause = isa.ExcIllegalInst
			e.excTval = pc
			c.fqPush(e)
			c.fetchWait = true // stop fetching until the trap redirects
			if c.sblk != nil {
				c.sblk.insert(&build)
			}
			return
		case in.Op == isa.JAL:
			target := pc + uint64(in.Imm)
			if in.Rd == isa.RA {
				c.RAS.Push(nextPC)
			}
			e.predTaken, e.predTarget = true, target
			c.fqPush(e)
			c.redirectFetch(pc, target)
			redirected = true
		case in.Op == isa.JALR:
			e.predTaken = true
			e.rasSnap = c.RAS.Snapshot()
			e.histBefore = c.Dir.History()
			isRet := in.Rd == isa.Zero && in.Rs1 == isa.RA && in.Imm == 0
			if isRet && c.RAS.Depth() > 0 {
				e.predTarget = c.RAS.Pop()
			} else if c.Cfg.EnableIndirect {
				if t, ok := c.Ind.Predict(pc, c.Dir.History()); ok {
					e.predTarget = t
				} else if ent, ok := c.L1BTB.Lookup(pc); ok {
					e.predTarget = ent.Target()
				}
			} else if ent, ok := c.L1BTB.Lookup(pc); ok {
				e.predTarget = ent.Target()
			}
			if in.Rd == isa.RA {
				c.RAS.Push(nextPC)
			}
			c.fqPush(e)
			if e.predTarget != 0 {
				c.redirectFetch(pc, e.predTarget)
			} else {
				// no target prediction: fetch stalls until the jalr resolves
				c.fetchWait = true
				c.Stats.FetchJalrStalls++
			}
			redirected = true
		case in.Op.IsBranch():
			e.rasSnap = c.RAS.Snapshot()
			e.histBefore = c.Dir.History()
			taken, idx := c.Dir.Predict(pc)
			e.dirIdx = idx
			c.Dir.SpeculateHistory(taken)
			e.predTaken = taken
			if taken {
				e.predTarget = pc + uint64(in.Imm)
				c.fqPush(e)
				c.redirectFetch(pc, e.predTarget)
				redirected = true
			} else {
				c.fqPush(e)
			}
		default:
			c.fqPush(e)
		}
		if redirected {
			break
		}
		pc = nextPC
	}
	if c.sblk != nil {
		c.sblk.insert(&build)
	}
	if !redirected {
		c.fetchPC = pc
		if c.fetchAllowed <= c.now {
			c.fetchAllowed = c.now + 1
		}
	}
}

// redirectFetch points fetch at a predicted target, charging the IP-stage
// bubble unless the L0 BTB (IF-stage jump) or the loop buffer hides it.
func (c *Core) redirectFetch(branchPC, target uint64) {
	c.fetchPC = target
	bubble := uint64(c.Cfg.TakenPenalty)
	if c.Cfg.EnableLoopBuf && c.LoopBuf.Covers(target) && c.LoopBuf.Covers(branchPC) {
		bubble = 0 // back edge inside the captured loop: zero bubble (§III-C)
		c.Stats.LoopBufRedirects++
	} else if c.Cfg.EnableL0BTB {
		if _, ok := c.L0BTB.Lookup(branchPC); ok {
			bubble = 0 // IF-stage jump (§III-B)
			c.Stats.L0BTBRedirects++
		}
	}
	c.fetchAllowed = c.now + 1 + bubble
	if bubble > 0 && c.fetchAllowed > c.feRedirectUntil {
		c.feRedirectUntil = c.fetchAllowed // redirect bubble window (CPI stack)
	}
}

// decodeAt decodes the instruction at pc, reading through the MMU when
// translation is active. With the predecode cache enabled, a prior decode of
// the same physical address is reused without touching memory or the
// bit-level decoder; the cache is kept coherent with committed stores and
// fence.i (see predecode.go).
func (c *Core) decodeAt(pc uint64) (isa.Inst, bool) {
	pa := pc
	if c.MMU.Enabled() {
		var err error
		pa, _, err = c.MMU.Translate(pc, mmu.AccFetch, c.now)
		if err != nil {
			return isa.Inst{}, false
		}
	}
	if c.predec != nil {
		if in, ok := c.predec.lookup(pa); ok {
			c.Stats.PredecodeHits++
			return in, true
		}
		c.Stats.PredecodeMisses++
	}
	lo := uint16(c.Mem.Read(pa, 2))
	if lo&3 != 3 {
		in := isa.Decode16(lo)
		if c.predec != nil {
			c.predec.insert(pa, in)
		}
		return in, true
	}
	pa2 := pa + 2
	if c.MMU.Enabled() && (pc+2)&4095 == 0 {
		// the upper halfword lives on the next virtual page
		var err error
		pa2, _, err = c.MMU.Translate(pc+2, mmu.AccFetch, c.now)
		if err != nil {
			return isa.Inst{}, false
		}
	}
	in := isa.Decode(uint32(lo) | uint32(uint16(c.Mem.Read(pa2, 2)))<<16)
	if c.predec != nil && pa2 == pa+2 {
		// only physically-contiguous instructions are cacheable
		c.predec.insert(pa, in)
	}
	return in, true
}

// injectFetchFault enqueues a faulting pseudo-instruction so the instruction
// page fault is taken precisely at retirement.
func (c *Core) injectFetchFault(pc uint64, err error) {
	cause := isa.ExcInstPageFault
	if pf, ok := err.(*mmu.PageFault); ok {
		cause = pf.Cause()
	}
	c.fqPush(fqEntry{
		inst:     isa.NewInst(isa.ILLEGAL),
		pc:       pc,
		readyAt:  c.now + 1,
		fetchLag: 1,
		excCause: cause,
		excTval:  pc,
	})
	c.fetchWait = true
}
