package core

import (
	"testing"

	"xt910/internal/asm"
	"xt910/isa"
)

func TestPredecodeUnit(t *testing.T) {
	p := newPredecode()
	in4 := asmInstForTest(t, "addi a0, a0, 2")
	p.insert(0x1000, in4)
	if got, ok := p.lookup(0x1000); !ok || got != in4 {
		t.Fatal("insert/lookup round trip failed")
	}
	if _, ok := p.lookup(0x1002); ok {
		t.Fatal("neighbouring granule must miss")
	}

	// a write to any byte the instruction may span drops the entry
	for _, wr := range []struct {
		addr uint64
		size int
		hit  bool
	}{
		{0x0ffc, 2, true},  // ends below the entry: untouched
		{0x0ffe, 2, true},  // ends at 0xfff, still below the entry
		{0x0ffe, 4, false}, // overlaps the first halfword
		{0x1000, 1, false}, // first byte
		{0x1003, 1, false}, // last byte of the 4-byte encoding
		{0x1004, 8, true},  // starts past the entry
	} {
		p.flush()
		p.insert(0x1000, in4)
		p.invalidate(wr.addr, wr.size)
		if _, ok := p.lookup(0x1000); ok != wr.hit {
			t.Fatalf("write [%#x,+%d): lookup hit=%v, want %v", wr.addr, wr.size, ok, wr.hit)
		}
	}

	// underflow guard: invalidating at address 0 must not wrap
	p.invalidate(0, 4)
	p.flush()
	if _, ok := p.lookup(0x1000); ok {
		t.Fatal("flush must empty the cache")
	}
}

// TestPredecodeInvalidateWrapBoundary is the fixed repro for the wrap-boundary
// bug: a store whose byte range reaches the top of the address space makes
// pa+size overflow to 0, so the scan's `g < pa+size` condition was false on
// entry and nothing was invalidated — stale decodes survived a committed
// store. A 4-byte store straddling the 2-byte granules at the boundary must
// drop every entry it touches.
func TestPredecodeInvalidateWrapBoundary(t *testing.T) {
	in4 := asmInstForTest(t, "addi a0, a0, 2")
	top := ^uint64(0) - 3 // 0xfff...fffc: last 2-byte-aligned 4-byte slot

	p := newPredecode()
	p.insert(top, in4)
	p.invalidate(top, 4) // pa+size wraps to 0
	if _, ok := p.lookup(top); ok {
		t.Fatalf("store [%#x,+4) left the entry at %#x live (pa+size overflow)", top, top)
	}

	// The same store spans two granules; both must be dropped.
	p.flush()
	p.insert(top, in4)
	p.insert(top+2, in4) // entry whose 4 bytes wrap past the boundary
	p.invalidate(top+2, 4)
	if _, ok := p.lookup(top); ok {
		t.Fatalf("straddling store left the lower granule entry at %#x live", top)
	}
	if _, ok := p.lookup(top + 2); ok {
		t.Fatalf("straddling store left the upper granule entry at %#x live", top+2)
	}
}

// asmInstForTest assembles a single instruction and decodes it back.
func asmInstForTest(t *testing.T, src string) isa.Inst {
	t.Helper()
	prog, err := asm.Assemble("_start:\n    "+src+"\n", asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	c, memory := buildCore(XT910Config())
	prog.LoadInto(memory)
	got, ok := c.decodeAt(0x1000)
	if !ok {
		t.Fatal("decodeAt failed")
	}
	return got
}

// selfModifyingProgram patches a callee instruction at runtime: the first
// call adds 1, then the caller stores `addi a0, a0, 2` over it, issues
// fence.i, and calls again. Correct final a0 is 1 + 2 = 3.
const selfModifyingProgram = `
_start:
    li   a0, 0
    la   t1, patch
    la   t2, newinst
    lw   t3, 0(t2)
    jal  ra, patch
    sw   t3, 0(t1)
    fence.i
    jal  ra, patch
    li   a7, 93
    ecall
patch:
    addi a0, a0, 1
    ret
newinst:
    .word 0x00250513   # addi a0, a0, 2
`

func TestPredecodeSelfModifyingCode(t *testing.T) {
	for _, enabled := range []bool{true, false} {
		cfg := XT910Config()
		cfg.PredecodeCache = enabled
		c := runCore(t, cfg, selfModifyingProgram)
		if c.ExitCode != 3 {
			t.Fatalf("predecode=%v: exit = %d, want 3 (stale decode served?)", enabled, c.ExitCode)
		}
	}
}

// TestPredecodeSelfModifyingNoFence exercises the conservative invalidation:
// even without fence.i the model (cached or not) picks up the committed
// store, because the cache drops overlapping entries at commit time.
const smcNoFenceProgram = `
_start:
    li   a0, 0
    la   t1, patch
    la   t2, newinst
    lw   t3, 0(t2)
    sw   t3, 0(t1)
    jal  ra, patch
    li   a7, 93
    ecall
patch:
    addi a0, a0, 1
    ret
newinst:
    .word 0x00250513   # addi a0, a0, 2
`

func TestPredecodeSelfModifyingNoFence(t *testing.T) {
	var exits [2]int
	for i, enabled := range []bool{true, false} {
		cfg := XT910Config()
		cfg.PredecodeCache = enabled
		c := runCore(t, cfg, smcNoFenceProgram)
		exits[i] = c.ExitCode
	}
	if exits[0] != exits[1] {
		t.Fatalf("cache changed architectural behaviour: %d vs %d", exits[0], exits[1])
	}
}

func TestPredecodeHitRate(t *testing.T) {
	src := `
_start:
    li   t0, 1000
    li   a0, 0
loop:
    addi a0, a0, 3
    addi t0, t0, -1
    bnez t0, loop
    li   a7, 93
    ecall
`
	// superblock replay should carry the hot loop almost entirely
	cfg := XT910Config()
	c := runCore(t, cfg, src)
	if c.Stats.SuperblockHits == 0 {
		t.Fatal("hot loop must replay from the superblock cache")
	}
	if c.Stats.SuperblockHits < 10*(c.Stats.PredecodeMisses+c.Stats.PredecodeHits) {
		t.Fatalf("superblock replay rate too low: %d replays / %d decoder visits",
			c.Stats.SuperblockHits, c.Stats.PredecodeHits+c.Stats.PredecodeMisses)
	}

	// with superblocks off, the per-instruction cache takes over
	cfg.PredecodeSuperblock = false
	c1 := runCore(t, cfg, src)
	if c1.Stats.SuperblockHits != 0 {
		t.Fatal("disabled superblock cache must not count")
	}
	if c1.Stats.PredecodeHits == 0 {
		t.Fatal("hot loop must hit the predecode cache")
	}
	if c1.Stats.PredecodeHits < 10*c1.Stats.PredecodeMisses {
		t.Fatalf("hit rate too low: %d hits / %d misses",
			c1.Stats.PredecodeHits, c1.Stats.PredecodeMisses)
	}

	cfg.PredecodeCache = false
	c2 := runCore(t, cfg, src)
	if c2.Stats.PredecodeHits != 0 || c2.Stats.PredecodeMisses != 0 {
		t.Fatal("disabled cache must not count")
	}
	if c.ExitCode != c1.ExitCode || c.ExitCode != c2.ExitCode {
		t.Fatalf("cache changed architectural result: %d vs %d vs %d",
			c.ExitCode, c1.ExitCode, c2.ExitCode)
	}
	if c.Stats.Cycles != c1.Stats.Cycles {
		t.Fatalf("superblock replay changed timing: %d vs %d cycles",
			c.Stats.Cycles, c1.Stats.Cycles)
	}
}

// BenchmarkSimCycle measures host nanoseconds per simulated cycle with the
// predecode cache on and off — the reduced ns/simulated-cycle with the cache
// on is the acceptance measure for the fetch-path optimization.
func BenchmarkSimCycle(b *testing.B) {
	src := `
_start:
    li   t0, 50000
    li   a0, 0
loop:
    addi a0, a0, 3
    xor  a1, a1, a0
    slli t1, a0, 2
    add  a1, a1, t1
    andi t2, a1, 255
    add  a0, a0, t2
    addi t0, t0, -1
    bnez t0, loop
    li   a7, 93
    ecall
`
	prog, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name           string
		predec, sb, ff bool
	}{
		{"fastpath", true, true, true}, // the shipped default
		{"nofastforward", true, true, false},
		{"nosuperblock", true, false, false},
		{"nodecodecache", false, false, false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := XT910Config()
			cfg.PredecodeCache = mode.predec
			cfg.PredecodeSuperblock = mode.sb
			cfg.FastForward = mode.ff
			b.ReportAllocs()
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, memory := buildCore(cfg)
				prog.LoadInto(memory)
				c.Reset(prog.Entry, 0x80000)
				c.Run(100_000_000)
				if !c.Halted {
					b.Fatal("benchmark kernel did not halt")
				}
				cycles += c.Stats.Cycles
			}
			b.StopTimer()
			if cycles > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/simcycle")
			}
		})
	}
}
