package core

import (
	"testing"
)

// TestPerformanceMonitorCSRs checks that software can read the §II PMU
// counters through the mhpmcounter CSRs (the interface the CDS profiler of
// §IX consumes).
func TestPerformanceMonitorCSRs(t *testing.T) {
	c := runCore(t, XT910Config(), `
_start:
    la   t0, buf
    li   t1, 50
loop:
    ld   t2, 0(t0)
    sd   t2, 8(t0)
    addi t1, t1, -1
    bnez t1, loop
    csrr a1, mhpmcounter3    # branches
    csrr a2, mhpmcounter7    # loads
    csrr a3, mhpmcounter8    # stores
    beqz a1, bad
    beqz a2, bad
    beqz a3, bad
    li   a0, 0
    li   a7, 93
    ecall
bad:
    li   a0, 1
    li   a7, 93
    ecall
buf: .space 64
`)
	if c.ExitCode != 0 {
		t.Fatal("hpm counters must be nonzero and CSR-readable")
	}
	if got := c.CSR(0xB03); got != c.Stats.Branches {
		t.Fatalf("mhpmcounter3 = %d, want %d", got, c.Stats.Branches)
	}
	if got := c.CSR(0xB05); got != c.L1D.Cache.Stats.Misses {
		t.Fatalf("mhpmcounter5 = %d, want %d", got, c.L1D.Cache.Stats.Misses)
	}
}
