package core

// Transient-fault hooks for the internal/inject campaign runner. Each flips
// one bit of live microarchitectural or architectural state mid-run, modelling
// a particle strike; none of them touch timing bookkeeping (readyAt, LRU,
// fill state), so the only observable effect is the corrupted value itself.
// The checker in internal/cosim is then responsible for catching whatever
// propagates to architectural state.

// InjectArchRegBit flips one bit of the physical register currently backing
// architectural register reg (0–31 integer, 32–63 FP) in the retirement map.
// Faults on x0 are refused: its reads are hardwired to zero, so a flip there
// could never propagate and would dilute the campaign.
func (c *Core) InjectArchRegBit(reg int, bit uint) bool {
	reg &= 63
	if reg == 0 {
		return false
	}
	p := c.archRAT[reg]
	c.pf.val[p] ^= 1 << (bit & 63)
	return true
}

// InjectRenameBit flips one bit of the speculative rename-map entry for reg,
// wrapped into the physical register file's range so the fault stays a
// mis-mapping rather than an out-of-bounds index.
func (c *Core) InjectRenameBit(reg int, bit uint) bool {
	reg &= 63
	if reg == 0 {
		return false
	}
	v := int(c.rat[reg]) ^ (1 << (bit % 10))
	c.rat[reg] = int16(v % len(c.pf.val))
	return true
}

// InjectROBAgeBit flips one low-order bit of the n-th live ROB entry's age
// (sequence number), corrupting the ordering tag recovery and memory
// disambiguation depend on. Returns false when the ROB is empty.
func (c *Core) InjectROBAgeBit(n int, bit uint) bool {
	if c.robQ.empty() {
		return false
	}
	n %= c.robQ.len()
	i := 0
	c.robQ.forEach(func(_ int, u *uop) bool {
		if i == n {
			u.seq ^= 1 << (bit % 8)
			return false
		}
		i++
		return true
	})
	return true
}

// InjectMemBit flips one bit of a raw memory byte, bypassing the store path
// and every coherence hook — the honest silent-corruption channel: if the
// program never rereads the byte and the checker's written-line sweep never
// covers it, nothing will notice.
func (c *Core) InjectMemBit(addr uint64, bit uint) {
	c.Mem.StoreByte(addr, c.Mem.LoadByte(addr)^(1<<(bit&7)))
}

// InjectCacheLineBit flips one bit inside the n-th valid L1D line (the caches
// are tag-and-timing models, so the payload lives in backing memory). It
// returns the faulted byte's address, or ok=false when the L1D holds no valid
// lines.
func (c *Core) InjectCacheLineBit(n int, bit uint) (addr uint64, ok bool) {
	var lines []uint64
	c.L1D.Cache.ForEachValid(func(la uint64) {
		lines = append(lines, la)
	})
	if len(lines) == 0 {
		return 0, false
	}
	line := lines[n%len(lines)]
	off := uint64(bit/8) % uint64(c.L1D.Cache.LineBytes())
	addr = line + off
	c.Mem.StoreByte(addr, c.Mem.LoadByte(addr)^(1<<(bit&7)))
	return addr, true
}
