package core

import "xt910/isa"

// superblock extends the per-instruction predecode cache to straight-line
// decoded runs, the way DBT emulators fuse basic blocks: one fetch-group walk
// in flat (untranslated) mode records the instructions it decoded, keyed by
// the physical address of the walk's first instruction, and a later walk
// entering at the same address replays the decoded run without touching the
// bit-level decoder or memory at all. Replay feeds the exact same per-
// instruction branch-prediction switch as a cold walk, so fetch-queue
// contents, predictor state and every timing decision are byte-identical with
// the cache on or off — only the host-side Predecode*/Superblock* counters
// move.
//
// Like the single-instruction cache it is a host optimization with no
// architectural meaning, so it must never serve stale bytes: committed stores
// (local or cross-hart, via InvalidatePredecode) drop every block whose span
// *contains* the written range — not merely blocks starting there — and
// fence.i / icache.iall flush it entirely. Blocks are only built when
// translation is off (pa == pc for every instruction), so satp changes and
// virtual aliasing cannot bypass the PA-keyed invalidation.
const (
	sbEntries = 1 << 10 // direct-mapped on the entry PA's 2-byte granule
	sbMask    = sbEntries - 1
	// sbMaxInsts bounds one block: a walk covers one fetch group, and a
	// 16-byte group holds at most eight RVC instructions.
	sbMaxInsts = 8
	// sbMaxSpan bounds a block's byte span: the group's 16 bytes plus a
	// 4-byte tail instruction straddling the group boundary.
	sbMaxSpan = 18
)

type sbBlock struct {
	tag   uint64 // entry pa|1; 0 = free (entry PAs are 2-byte aligned)
	endPA uint64 // one past the last byte of the last cached instruction
	n     uint8
	insts [sbMaxInsts]isa.Inst
}

type superblockCache struct {
	blk [sbEntries]sbBlock
}

func newSuperblockCache() *superblockCache { return &superblockCache{} }

func sbIdx(pa uint64) uint64 { return (pa >> 1) & sbMask }

// lookup returns the block entered at pa, or nil.
func (s *superblockCache) lookup(pa uint64) *sbBlock {
	b := &s.blk[sbIdx(pa)]
	if b.tag == pa|1 {
		return b
	}
	return nil
}

// insert stores a completed walk. Any cached prefix of the true instruction
// stream at the entry PA is sound — replay falls back to the decoder when the
// block is exhausted mid-group — so partial walks (fetch queue filled) are
// cacheable too.
func (s *superblockCache) insert(b *sbBlock) {
	if b.n == 0 || b.tag&1 == 0 {
		return
	}
	s.blk[sbIdx(b.tag&^1)] = *b
}

// invalidate drops every block whose instruction bytes overlap [pa, pa+size).
// Candidate entry PAs lie within sbMaxSpan-2 bytes below the write (a block
// starting further down cannot reach it), scanned count-based so the walk is
// immune to uint64 wrap at either end of the address space, exactly like
// predecode.invalidate.
func (s *superblockCache) invalidate(pa uint64, size int) {
	if size <= 0 {
		return
	}
	start := (pa &^ 1) - (sbMaxSpan - 2) // wraps intentionally
	n := (pa - start + uint64(size) + 1) / 2
	for k := uint64(0); k < n; k++ {
		g := start + 2*k
		b := &s.blk[sbIdx(g)]
		if b.tag != g|1 {
			continue
		}
		// overlap iff the block starts inside the write, or the write's first
		// byte lands before the block's end (all distances mod 2^64)
		if g-pa < uint64(size) || pa-g < b.endPA-g {
			b.tag = 0
		}
	}
}

func (s *superblockCache) flush() {
	for i := range s.blk {
		s.blk[i].tag = 0
	}
}
