package core

import (
	"testing"

	"xt910/internal/asm"
)

// runWithIRQ runs src with a constant external interrupt source driving bits
// into mip.
func runWithIRQ(t *testing.T, src string, bits uint64) *Core {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	c, memory := buildCore(XT910Config())
	c.IntSource = func(int) uint64 { return bits }
	p.LoadInto(memory)
	c.Reset(p.Entry, 0x80000)
	c.Run(1_000_000)
	if !c.Halted {
		t.Fatalf("core did not halt: %s", c.Stats.String())
	}
	if msg := c.CheckInvariants(); msg != "" {
		t.Fatalf("pipeline invariant violated: %s", msg)
	}
	return c
}

// irqProgram installs a handler that exits with the low mcause bits, enables
// all three machine sources and spins.
const irqProgram = `
_start:
    la x5, handler
    csrw mtvec, x5
    li x5, 2184
    csrw mie, x5
    csrrsi x0, mstatus, 8
loop:
    addi x6, x6, 1
    j loop
.align 2
handler:
    csrr x10, mcause
    andi x10, x10, 255
    li x17, 93
    ecall
`

// TestInterruptPriority checks the machine-interrupt priority order
// MEI > MSI > MTI when several sources pend simultaneously.
func TestInterruptPriority(t *testing.T) {
	cases := []struct {
		name string
		bits uint64
		want int
	}{
		{"all three -> MEI", 1<<11 | 1<<3 | 1<<7, 11},
		{"MSI+MTI -> MSI", 1<<3 | 1<<7, 3},
		{"MTI alone -> MTI", 1 << 7, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := runWithIRQ(t, irqProgram, tc.bits)
			if c.ExitCode != tc.want {
				t.Fatalf("delivered cause %d, want %d", c.ExitCode, tc.want)
			}
			if c.Stats.Interrupts != 1 {
				t.Fatalf("Interrupts=%d, want 1", c.Stats.Interrupts)
			}
		})
	}
}

// TestWFIWakeWithoutTaking parks on WFI with the global MIE off; when the
// timer source pends, the hart must resume (clear the park) without taking
// the interrupt, per the privileged spec's WFI semantics.
func TestWFIWakeWithoutTaking(t *testing.T) {
	p, err := asm.Assemble(`
_start:
    li x5, 2184
    csrw mie, x5
    wfi
    li x10, 42
    li x17, 93
    ecall
`, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	c, memory := buildCore(XT910Config())
	// the threshold sits well past the cold-start fill (~210 cycles for the
	// first fetch to reach DRAM) so the WFI retires and parks before the
	// source pends
	c.IntSource = func(int) uint64 {
		if c.Now() >= 2000 {
			return 1 << 7
		}
		return 0
	}
	p.LoadInto(memory)
	c.Reset(p.Entry, 0x80000)
	c.Run(1_000_000)
	if !c.Halted || c.ExitCode != 42 {
		t.Fatalf("halted=%v exit=%d, want clean exit 42", c.Halted, c.ExitCode)
	}
	if c.Stats.Interrupts != 0 {
		t.Fatalf("Interrupts=%d: the gated interrupt must not be taken", c.Stats.Interrupts)
	}
	if c.Stats.WFIParkedCycles < 100 {
		t.Fatalf("WFIParkedCycles=%d: the hart never parked", c.Stats.WFIParkedCycles)
	}
}

// TestInterruptPendingWithoutHandler leaves mtvec at zero: the pending
// interrupt must stay pending (no vectoring through address 0) and the
// program must run to completion.
func TestInterruptPendingWithoutHandler(t *testing.T) {
	c := runWithIRQ(t, `
_start:
    li x5, 2184
    csrw mie, x5
    csrrsi x0, mstatus, 8
    li x10, 7
    li x17, 93
    ecall
`, 1<<7)
	if c.ExitCode != 7 {
		t.Fatalf("exit=%d, want 7", c.ExitCode)
	}
	if c.Stats.Interrupts != 0 {
		t.Fatalf("Interrupts=%d: delivery with mtvec=0 must be suppressed", c.Stats.Interrupts)
	}
}
