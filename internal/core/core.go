package core

import (
	"xt910/internal/branch"
	"xt910/internal/coherence"
	"xt910/internal/mem"
	"xt910/internal/mmu"
	"xt910/internal/prefetch"
	"xt910/internal/trace"
	"xt910/internal/vector"
	"xt910/isa"
)

// Core is one XT-910 hart: the 12-stage pipeline plus its private L1 caches,
// MMU and predictors, attached to a cluster's shared L2.
type Core struct {
	Cfg Config
	ID  int

	Mem *mem.Memory
	L1I *coherence.L1I
	L1D *coherence.L1D
	L2  *coherence.L2
	MMU *mmu.MMU

	Dir     *branch.DirectionPredictor
	L0BTB   *branch.BTB
	L1BTB   *branch.BTB
	RAS     *branch.RAS
	Ind     *branch.IndirectPredictor
	LoopBuf *branch.LoopBuffer
	PF      *prefetch.Engine

	Vec *vector.Unit

	// predec caches raw fetch bytes → decoded instructions (predecode.go);
	// nil when Cfg.PredecodeCache is off.
	predec *predecode

	// sblk caches whole decoded fetch-group walks (superblock.go); nil when
	// Cfg.PredecodeSuperblock is off.
	sblk *superblockCache

	// pipeline state
	now      uint64
	seq      uint64
	pf       *physFile
	rat      []int16 // speculative front-end map
	archRAT  []int16 // retirement map
	robQ     *rob
	queues   [numPipes][]int // ROB indices per issue queue
	pipeBusy [numPipes]uint64
	ckpts    []checkpoint

	lq []lqEntry
	sq []sqEntry

	fq           []fqEntry
	fetchPC      uint64
	fqHead       int // first live fq entry (head-indexed pop, fetch.go)
	fetchAllowed uint64
	fetchWait    bool // stalled on an unpredictable jalr / post-flush hold

	// vector scoreboard and configuration speculation state
	vregReady  [32]uint64
	vecBusy    uint64
	lastVL     uint64
	lastVecSeq uint64 // youngest executed vector op (see LastVectorSeq)

	// memory-dependence predictor: load PCs that caused ordering violations
	// are tagged and later forced to wait for older store addresses (§V-A).
	memDep map[uint64]bool

	// tr, when non-nil, receives per-µop pipeline lifecycle events and the
	// per-cycle CPI-stack attribution (internal/trace). Every call site is
	// guarded by a nil check, so a detached core pays one predictable branch
	// per event point and nothing else.
	tr *trace.Tracer
	// ffSkippedCycles counts cycles elided by fast-forward. Host-side
	// observability only — deliberately kept out of Stats so the byte-identity
	// contract covers the whole Stats struct.
	ffSkippedCycles uint64
	// badSpecUntil marks the recovery window after a misprediction or
	// memory-order squash; empty-ROB cycles inside it are attributed to the
	// bad-speculation CPI bucket rather than frontend-bound.
	badSpecUntil uint64
	// Frontend sub-bucket windows for the CPI stack's second level: an
	// empty-ROB frontend cycle inside one of these is refined to the
	// corresponding sub-bucket (priority icache > itlb > redirect; everything
	// else is frontend/other). Trace-only state — never read by the pipeline.
	feICacheUntil   uint64 // until the in-flight L1I miss fill lands
	feITLBUntil     uint64 // until the in-flight ITLB walk completes
	feRedirectUntil uint64 // until the current redirect/flush bubble drains

	// architectural system state (CSRs, privilege) — owned by retire.
	csr     map[uint16]uint64
	priv    int
	resAddr uint64
	resOK   bool

	Halted   bool
	ExitCode int
	Output   []byte

	Stats Stats

	// RetireHook observes every retired instruction (co-simulation tests).
	RetireHook func(pc uint64, in isa.Inst)

	// CommitHook observes every retired instruction with its commit record
	// (sequence number, destination value, effective address). It fires at
	// the same point as RetireHook: after the retirement map has been
	// updated, so Reg() reads post-commit architectural state. Instructions
	// that take an exception do not commit and are not reported.
	CommitHook func(Commit)

	// TLBBroadcast, when set by the SoC, carries tlbi.* maintenance to the
	// other harts over the interconnect (§V-E, no IPIs needed).
	TLBBroadcast func(op isa.Op, operand uint64, from int)

	// MemWriteHook, when set by the SoC, observes every committed memory
	// write so other harts' LR/SC reservations can be invalidated through
	// the coherence fabric.
	MemWriteHook func(pa uint64, size int, from int)

	// OwnStoresAtCommit makes every committing store re-acquire write
	// ownership of the line(s) it spans when a remote hart stole them
	// between the st.addr cache query and commit. Multi-hart sessions set
	// this so the store-order oracle's invariant — a store retires only
	// while its hart owns the line — holds by construction; single-core
	// systems leave it off (no remote thief exists, no timing change).
	OwnStoresAtCommit bool

	// AtomicsAtCommit defers an atomic's architectural read-modify-write
	// from its ROB-head cache access to the retirement boundary itself.
	// Multi-hart sessions set this so no cycle exists where memory holds an
	// atomic's result before its commit hooks ran (another hart's commits
	// interleave with the head-stall window); single-core systems leave it
	// off, keeping the execute-at-head semantics and timing.
	AtomicsAtCommit bool

	// MMIO, when set by the SoC, claims physical address ranges for devices
	// (CLINT, PLIC). MMIO loads execute non-speculatively at the ROB head;
	// MMIO stores take effect at retirement like all stores.
	MMIO MMIODevice

	// IntSource, when set by the SoC, returns the externally-driven mip bits
	// (MSIP/MTIP/MEIP) for this hart, sampled at every cycle boundary and
	// between same-cycle retirements.
	IntSource func(hart int) uint64

	// InterruptHook observes every taken interrupt with its cause and the
	// resume PC written to mepc (the oldest unretired instruction). It fires
	// after the flush, so CSRs read post-delivery state.
	InterruptHook func(cause uint64, resume uint64)

	wfiWait bool
}

// WFIParked reports whether the hart is parked on a wfi waiting for an
// interrupt source.
func (c *Core) WFIParked() bool { return c.wfiWait }

// MMIODevice is a memory-mapped device window.
type MMIODevice interface {
	Covers(pa uint64) bool
	Read(pa uint64, size int) uint64
	Write(pa uint64, size int, v uint64)
}

type lqEntry struct {
	seq      uint64
	robIdx   int
	addr     uint64
	size     int
	executed bool
}

type sqEntry struct {
	seq      uint64
	robIdx   int
	addr     uint64
	size     int
	val      uint64
	addrDone bool
	dataDone bool
}

type fqEntry struct {
	inst      isa.Inst
	pc        uint64
	readyAt   uint64
	predTaken bool
	// fetchLag is readyAt minus the cycle the fetch group was initiated
	// (trace StageFetch). Packed into the padding after predTaken so the
	// entry stays 120 bytes — it is copied on the rename hot path.
	fetchLag   uint32
	predTarget uint64
	dirIdx     uint64
	histBefore uint64
	rasSnap    []uint64
	fromLoop   bool
	excCause   int
	excTval    uint64
}

// New builds a core attached to a cluster L2.
func New(cfg Config, id int, memory *mem.Memory, l2 *coherence.L2) *Core {
	c := &Core{
		Cfg:    cfg,
		ID:     id,
		Mem:    memory,
		L2:     l2,
		L1I:    coherence.NewL1I(cfg.L1I, l2),
		L1D:    coherence.NewL1D(cfg.L1D, l2),
		Dir:    branch.NewDirectionPredictor(cfg.DirBits),
		L0BTB:  branch.NewBTB(cfg.L0BTBEntries, cfg.L0BTBEntries),
		L1BTB:  branch.NewBTB(cfg.L1BTBEntries, 4),
		RAS:    branch.NewRAS(cfg.RASDepth),
		Ind:    branch.NewIndirectPredictor(12),
		robQ:   newROB(cfg.ROBSize),
		ckpts:  make([]checkpoint, cfg.Checkpoints),
		memDep: make(map[uint64]bool),
		csr:    make(map[uint16]uint64),
		priv:   isa.PrivM,
	}
	c.LoopBuf = branch.NewLoopBuffer()
	c.MMU = mmu.New(func(pa uint64, now uint64) (uint64, uint64) {
		return memory.Read(pa, 8), l2.ReadWord(pa, now)
	})
	if cfg.UTLBEntries > 0 {
		c.MMU.Micro = mmu.NewMicroTLB(cfg.UTLBEntries)
	}
	if cfg.JTLBEntries > 0 {
		c.MMU.Joint = mmu.NewJointTLB(cfg.JTLBEntries, 4)
	}
	c.PF = prefetch.New(cfg.Prefetch, c)
	if cfg.EnableVector {
		c.Vec = vector.NewUnit(cfg.VLEN)
	}
	c.pf, c.rat = newPhysFile(cfg.IntPhysRegs, cfg.FpPhysRegs)
	c.archRAT = append([]int16(nil), c.rat...)
	c.csr[isa.CSRMhartid] = uint64(id)
	if cfg.PredecodeCache {
		c.predec = newPredecode()
	}
	if cfg.PredecodeSuperblock {
		c.sblk = newSuperblockCache()
	}
	return c
}

// Reset re-points the core at a new entry PC with a given stack pointer.
// Any predecoded instructions are dropped: Reset typically follows a program
// load that rewrote memory behind the core's back.
func (c *Core) Reset(pc, sp uint64) {
	c.fetchPC = pc
	c.pf.write(c.rat[isa.SP], sp, 0)
	c.Halted = false
	if c.predec != nil {
		c.predec.flush()
	}
	if c.sblk != nil {
		c.sblk.flush()
	}
}

// InvalidatePredecode drops cached decodes covering [pa, pa+size). The SoC
// calls it on every hart when any hart commits a store, so cross-core
// self-modifying code behaves exactly as it does without the cache.
func (c *Core) InvalidatePredecode(pa uint64, size int) {
	if c.predec != nil {
		c.predec.invalidate(pa, size)
	}
	if c.sblk != nil {
		c.sblk.invalidate(pa, size)
	}
}

// SetReg writes an architectural integer/FP register (pre-run setup).
func (c *Core) SetReg(r isa.Reg, v uint64) {
	c.pf.write(c.rat[int(r)], v, 0)
}

// Reg reads an architectural register through the retirement map (valid when
// the pipeline is drained).
func (c *Core) Reg(r isa.Reg) uint64 {
	return c.pf.read(c.archRAT[int(r)])
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// AttachTracer connects the pipeline-event tracer (nil detaches). Attach
// before the first Step: the CPI stack's exact-partition property (buckets
// sum to Stats.Cycles) holds only over cycles the tracer observed.
func (c *Core) AttachTracer(t *trace.Tracer) { c.tr = t }

// Tracer returns the attached tracer, or nil.
func (c *Core) Tracer() *trace.Tracer { return c.tr }

// SetPrivilege places the core in the given privilege level (harness setup
// for runs under SV39 translation).
func (c *Core) SetPrivilege(p int) {
	c.priv = p
	c.MMU.Priv = p
}

// CSR reads a CSR value (retire-time architectural state).
func (c *Core) CSR(num uint16) uint64 {
	switch num {
	case isa.CSRCycle, isa.CSRMcycle, isa.CSRTime:
		return c.now
	case isa.CSRInstret, isa.CSRMinstret:
		return c.Stats.Retired
	case isa.CSRVl:
		if c.Vec != nil {
			return c.Vec.VL
		}
		return 0
	case isa.CSRVtype:
		if c.Vec != nil {
			return uint64(c.Vec.VType)
		}
		return 0
	case isa.CSRVlenb:
		if c.Vec != nil {
			return uint64(c.Vec.File.VLENBits / 8)
		}
		return 0
	case isa.CSRMip:
		v := c.csr[num]
		if c.IntSource != nil {
			v |= c.IntSource(c.ID)
		}
		return v
	// §II performance monitors: the hpm counters expose the PMU events the
	// CDS profiling tool (§IX, Fig. 16) visualizes.
	case isa.CSRMhpmcounter3:
		return c.Stats.Branches
	case isa.CSRMhpmcounter4:
		return c.Stats.BrMispredicts
	case isa.CSRMhpmcounter5:
		return c.L1D.Cache.Stats.Misses
	case isa.CSRMhpmcounter6:
		return c.L1I.Cache.Stats.Misses
	case isa.CSRMhpmcounter7:
		return c.Stats.Loads
	case isa.CSRMhpmcounter8:
		return c.Stats.Stores
	case isa.CSRMhpmcounter9:
		return c.Stats.StoreForwards
	case isa.CSRMhpmcounter10:
		return c.Stats.Flushes
	case isa.CSRMhpmcounter11:
		return c.MMU.Stats.Walks
	case isa.CSRMhpmcounter12:
		return c.Stats.VecOps
	case isa.CSRFflags:
		return c.csr[isa.CSRFcsr] & 0x1F
	case isa.CSRFrm:
		return c.csr[isa.CSRFcsr] >> 5 & 7
	}
	return c.csr[num]
}

// SetCSR writes a CSR (setup / retire-time execution).
func (c *Core) SetCSR(num uint16, v uint64) {
	switch num {
	case isa.CSRSatp:
		c.csr[num] = v
		c.MMU.Satp = v
	case isa.CSRVl, isa.CSRVtype, isa.CSRVlenb, isa.CSRCycle, isa.CSRInstret:
		// read-only
	// The fflags/frm windows alias into fcsr, which is the canonical
	// storage; any write to the family dirties mstatus.FS.
	case isa.CSRFflags:
		c.csr[isa.CSRFcsr] = c.csr[isa.CSRFcsr]&^uint64(0x1F) | v&0x1F
		c.csr[isa.CSRMstatus] |= isa.MstatusFSDirty
	case isa.CSRFrm:
		c.csr[isa.CSRFcsr] = c.csr[isa.CSRFcsr]&^uint64(0xE0) | v&7<<5
		c.csr[isa.CSRMstatus] |= isa.MstatusFSDirty
	case isa.CSRFcsr:
		c.csr[isa.CSRFcsr] = v & 0xFF
		c.csr[isa.CSRMstatus] |= isa.MstatusFSDirty
	// Interrupt CSR WARL windows, identical to emu.SetCSR: unimplemented
	// bits read back zero, and mip's machine-level bits are source-driven.
	case isa.CSRMie:
		c.csr[num] = v & isa.MieWritableMask
	case isa.CSRMip:
		c.csr[num] = v & isa.MipWritableMask
	case isa.CSRMideleg:
		c.csr[num] = v & isa.MidelegWritableMask
	default:
		c.csr[num] = v
	}
}

// Step advances the pipeline by one cycle. Stage order is retire → execute →
// dispatch → fetch so that same-cycle structural effects resolve oldest-first.
// Asynchronous interrupts are sampled at the cycle boundary, giving precise
// interrupt state (Fig. 8's recovery machinery handles the flush).
func (c *Core) Step() {
	if c.Halted {
		return
	}
	if c.IntSource != nil {
		c.sampleInterrupts()
	}
	if c.wfiWait {
		if c.tr != nil {
			// a parked hart supplies nothing: frontend-bound by convention
			c.tr.Cycle(trace.CycleFrontend, trace.SubFeOther, trace.NoPC)
		}
		c.Stats.WFIParkedCycles++
		c.now++
		c.Stats.Cycles = c.now
		return
	}
	var retiredBefore uint64
	if c.tr != nil {
		retiredBefore = c.Stats.Retired
	}
	c.retire()
	if c.Halted {
		return
	}
	c.issueAndExecute()
	c.renameDispatch()
	c.fetch()
	if c.tr != nil {
		cl, sub, pc := c.cycleAttr(c.Stats.Retired - retiredBefore)
		c.tr.Cycle(cl, sub, pc)
	}
	c.now++
	c.Stats.Cycles = c.now
}

// cycleAttr implements the top-down CPI-stack attribution rule (see
// DESIGN.md): exactly one bucket per counted cycle, evaluated on end-of-cycle
// state, plus the second-level refinement (frontend and backend-memory
// sub-buckets) and the per-PC owner for backend cycles. The halting cycle is
// not counted in Stats.Cycles and gets no bucket, so the partition stays
// exact.
func (c *Core) cycleAttr(retired uint64) (trace.CycleClass, trace.SubClass, uint64) {
	if retired > 0 {
		return trace.CycleRetiring, trace.SubNone, trace.NoPC
	}
	if c.robQ.empty() {
		if c.now < c.badSpecUntil {
			return trace.CycleBadSpec, trace.SubNone, trace.NoPC
		}
		return trace.CycleFrontend, c.frontendSub(), trace.NoPC
	}
	return headCycleAttr(c.robQ.headEntry())
}

// frontendSub refines an empty-ROB frontend cycle by the starvation windows
// fetch recorded, highest-priority first: an in-flight I-cache miss beats an
// ITLB walk beats a redirect bubble; anything else (queue drain, jalr stalls,
// WFI parking) is frontend/other.
func (c *Core) frontendSub() trace.SubClass {
	switch {
	case c.now < c.feICacheUntil:
		return trace.SubFeICache
	case c.now < c.feITLBUntil:
		return trace.SubFeITLB
	case c.now < c.feRedirectUntil:
		return trace.SubFeRedirect
	}
	return trace.SubFeOther
}

// headCycleAttr attributes a backend (non-empty ROB, nothing retired) cycle:
// the class comes from the head's instruction class, the mem sub-bucket from
// the hierarchy level its cache access was served from, and the owning PC is
// the head's. Shared by the stepped path and fast-forward batching — the
// head, its memLevel and its pc are all constant across an inert window, so
// the two paths attribute identically.
func headCycleAttr(head *uop) (trace.CycleClass, trace.SubClass, uint64) {
	switch head.inst.Op.Class() {
	case isa.ClassLoad, isa.ClassStore, isa.ClassAMO, isa.ClassVLoad, isa.ClassVStore:
		return trace.CycleBackendMem, memSub(head.memLevel), head.pc
	}
	return trace.CycleBackendCore, trace.SubNone, head.pc
}

// memSub maps a coherence.Level* fill level onto its CPI sub-bucket.
func memSub(level uint8) trace.SubClass {
	switch level {
	case coherence.LevelL2:
		return trace.SubMemL2
	case coherence.LevelDRAM:
		return trace.SubMemDRAM
	}
	return trace.SubMemL1
}

// Run steps until halt or maxCycles. With Config.FastForward it jumps over
// provably inert stall windows (fastforward.go) instead of stepping them;
// interactive drivers (cosim sessions, the SoC's lock-step loop) call Step
// directly and are unaffected.
func (c *Core) Run(maxCycles uint64) {
	target := c.now + maxCycles
	if target < c.now {
		target = ^uint64(0) // saturate: callers pass huge budgets
	}
	for !c.Halted && c.now < target {
		if c.Cfg.FastForward && c.ffSkip(target) {
			continue
		}
		c.Step()
	}
}

// PrefetchL1 implements prefetch.Sink. Prefetches translate through resident
// TLB entries only; a TLB miss drops the request (hardware prefetchers do not
// trigger page walks — the §V-C TLB prefetcher keeps the entries warm).
func (c *Core) PrefetchL1(addr uint64, now uint64) {
	if pa, ok := c.MMU.TranslateNoWalk(addr); ok {
		c.L1D.Prefetch(pa, now)
	} else {
		c.Stats.PFDroppedTLB++
	}
}

// PrefetchL2 implements prefetch.Sink.
func (c *Core) PrefetchL2(addr uint64, now uint64) {
	if pa, ok := c.MMU.TranslateNoWalk(addr); ok {
		c.L2.Prefetch(pa, now)
	} else {
		c.Stats.PFDroppedTLB++
	}
}

// PrefetchTLB implements prefetch.Sink (§V-C cross-page prefetch).
func (c *Core) PrefetchTLB(va uint64) { c.MMU.Prefill(va) }
