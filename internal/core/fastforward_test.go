package core

import (
	"testing"

	"xt910/internal/asm"
	"xt910/internal/cache"
	"xt910/internal/coherence"
	"xt910/internal/mem"
	"xt910/internal/trace"
)

// ffStallProgram leans on every stall source the fast-forward path must
// model: cache-missing strided loads, the unpipelined divider, dependent FP
// latency chains, split stores, and a data-dependent branch the predictor
// gets wrong often enough to exercise recovery windows.
const ffStallProgram = `
_start:
    li   t0, 400
    li   a0, 0
    li   a1, 0x20000
    li   a2, 0
    fcvt.d.w fa0, t0
    fcvt.d.w fa1, a0
loop:
    slli t1, a2, 8          # 256-byte stride: L1D misses
    add  t1, t1, a1
    ld   t2, 0(t1)
    add  a0, a0, t2
    divu t3, a0, t0         # unpipelined divider stall
    sd   t3, 8(t1)
    fmul.d fa1, fa1, fa0    # dependent FP chain
    fadd.d fa1, fa1, fa0
    andi t4, a0, 7          # data-dependent branch
    beqz t4, skip
    addi a0, a0, 1
skip:
    addi a2, a2, 1
    addi t0, t0, -1
    bnez t0, loop
    andi a0, a0, 255
    li   a7, 93
    ecall
`

// ffChaseProgram serializes the whole machine: each load's address depends
// on the previous load's result (the loads return 0, so the 4 KiB stride
// keeps missing cold lines), and the unpipelined divider sits on the same
// chain. Once the ROB fills, nearly every cycle is a head-stall window the
// fast-forward path should elide.
const ffChaseProgram = `
_start:
    li   t0, 150
    li   a1, 0x40000
    li   a0, 0
loop:
    ld   t2, 0(a1)
    add  a1, a1, t2
    divu t3, a1, t0
    add  a0, a0, t3
    addi a1, a1, 2040
    addi a1, a1, 2040
    addi t0, t0, -1
    bnez t0, loop
    andi a0, a0, 255
    li   a7, 93
    ecall
`

// ffRunTraced runs src with the given config and a tracer attached,
// verifying the CPI stack still partitions total cycles exactly (the
// two-level tree invariant) and that the per-PC table reconciles with it.
func ffRunTraced(t *testing.T, cfg Config, src string) (*Core, *trace.Tracer) {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	memory := mem.NewMemory()
	dram := mem.NewDRAM()
	l2 := coherence.NewL2(cache.Config{
		SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, HitLatency: 10, ECC: true, Parity: true,
	}, dram)
	c := New(cfg, 0, memory, l2)
	tr := trace.New(trace.Config{SampleEvery: 1 << 62}) // CPI stack only
	c.AttachTracer(tr)
	p.LoadInto(memory)
	c.Reset(p.Entry, 0x80000)
	c.Run(20_000_000)
	if !c.Halted {
		t.Fatalf("core did not halt: %s", c.Stats.String())
	}
	if err := tr.CPI().Check(c.Stats.Cycles); err != nil {
		t.Fatal(err)
	}
	if err := tr.PCs().Check(tr.CPI()); err != nil {
		t.Fatal(err)
	}
	return c, tr
}

// pcRows flattens a per-PC table into its full sorted row set for equality
// comparison.
func pcRows(pcs *trace.PCStack) []trace.PCEntry {
	rows, other := pcs.TopN(pcs.Len())
	if other.Total() > 0 {
		rows = append(rows, other)
	}
	return rows
}

// TestFastForwardStatsIdentity is the satellite-2 invariant: fast-forward is
// a pure host optimization, so every Stats field, the exit code, every
// CPI-stack bucket — both levels of the tree, sub-buckets included — and the
// whole per-PC attribution table must be byte-identical with it on and off,
// on both the out-of-order and the in-order machine.
func TestFastForwardStatsIdentity(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"xt910", XT910Config()},
		{"u74", U74Config()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, src := range []string{ffStallProgram, ffChaseProgram, selfModifyingProgram} {
				on := tc.cfg
				on.FastForward = true
				off := tc.cfg
				off.FastForward = false
				cOn, trOn := ffRunTraced(t, on, src)
				cOff, trOff := ffRunTraced(t, off, src)
				if cOn.ExitCode != cOff.ExitCode {
					t.Fatalf("fast-forward changed the exit code: %d vs %d",
						cOn.ExitCode, cOff.ExitCode)
				}
				if cOn.Stats != cOff.Stats {
					t.Fatalf("fast-forward changed stats:\n on: %+v\noff: %+v",
						cOn.Stats, cOff.Stats)
				}
				if *trOn.CPI() != *trOff.CPI() {
					t.Fatalf("fast-forward changed the CPI stack:\n on: %v\noff: %v",
						trOn.CPI(), trOff.CPI())
				}
				rowsOn, rowsOff := pcRows(trOn.PCs()), pcRows(trOff.PCs())
				if len(rowsOn) != len(rowsOff) {
					t.Fatalf("fast-forward changed the per-PC table size: %d vs %d",
						len(rowsOn), len(rowsOff))
				}
				for i := range rowsOn {
					if rowsOn[i] != rowsOff[i] {
						t.Fatalf("fast-forward changed per-PC row %d:\n on: %+v\noff: %+v",
							i, rowsOn[i], rowsOff[i])
					}
				}
			}
		})
	}
}

// TestPerPCAttributionPointerChase pins the per-PC attribution on a kernel
// built to have one culprit: in the pointer chase every stall funnels
// through the dependent load, so the hottest PC must hold the majority of
// the backend-mem cycles, and the mem sub-buckets must blame DRAM (the 4 KiB
// stride misses cold lines every iteration), not the L1 array.
func TestPerPCAttributionPointerChase(t *testing.T) {
	c, tr := ffRunTraced(t, XT910Config(), ffChaseProgram)
	cpi := tr.CPI()
	memCycles := cpi.Buckets[trace.CycleBackendMem]
	if memCycles < c.Stats.Cycles/4 {
		t.Fatalf("chase kernel is not memory-bound (%d of %d cycles); the fixture regressed",
			memCycles, c.Stats.Cycles)
	}
	rows, _ := tr.PCs().TopN(1)
	if len(rows) == 0 {
		t.Fatal("no per-PC rows recorded")
	}
	top := rows[0]
	if top.Buckets[trace.CycleBackendMem]*2 < memCycles {
		t.Errorf("top PC 0x%x holds %d of %d backend-mem cycles; want a dominant load PC",
			top.PC, top.Buckets[trace.CycleBackendMem], memCycles)
	}
	if top.Buckets[trace.CycleBackendMem]*2 < top.Total() {
		t.Errorf("top PC 0x%x is not mem-dominated: %+v", top.PC, top.Buckets)
	}
	dram := cpi.Subs[trace.SubMemDRAM]
	if dram*2 < memCycles {
		t.Errorf("DRAM sub-bucket holds %d of %d mem cycles; cold-miss chase should blame DRAM",
			dram, memCycles)
	}
}

// TestFastForwardActuallySkips guards against the skip silently never
// engaging — a regression there would leave the identity test vacuously
// green. The host-side skip counter (kept out of Stats on purpose) must
// cover a meaningful share of the stall-heavy kernel's cycles, and a
// truncated budget must clamp exactly at the boundary (skips never overshoot
// the Run target).
func TestFastForwardActuallySkips(t *testing.T) {
	cfg := XT910Config()
	cfg.FastForward = true
	c := runCore(t, cfg, ffChaseProgram)
	if c.ffSkippedCycles == 0 {
		t.Fatal("fast-forward never engaged on the stall-heavy kernel")
	}
	if c.ffSkippedCycles < c.Stats.Cycles/10 {
		t.Fatalf("fast-forward elided only %d of %d cycles; the skip conditions regressed",
			c.ffSkippedCycles, c.Stats.Cycles)
	}
	c2, memory := buildCore(cfg)
	p, err := asm.Assemble(ffChaseProgram, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	p.LoadInto(memory)
	c2.Reset(p.Entry, 0x80000)
	budget := c.Stats.Cycles / 2
	c2.Run(budget)
	if c2.Halted {
		t.Fatal("half the cycle budget must not finish the kernel")
	}
	if c2.Stats.Cycles != budget {
		t.Fatalf("truncated run missed its budget boundary: %d cycles, want %d",
			c2.Stats.Cycles, budget)
	}
}
