package core

import "xt910/isa"

// Commit is the architectural record of one retired instruction, published
// through CommitHook for observers (the lock-step co-simulation checker).
type Commit struct {
	Seq  uint64 // pipeline sequence number
	PC   uint64
	Inst isa.Inst

	// RdVal is the committed destination value when HasRd is set (scalar
	// integer/FP destinations only; vector results live in the vector file).
	RdVal uint64
	HasRd bool

	// Addr is the effective memory address when HasAddr is set (loads,
	// stores and atomics).
	Addr    uint64
	HasAddr bool
}

// Reservation exposes the LR/SC reservation state for co-simulation.
func (c *Core) Reservation() (valid bool, addr uint64) {
	return c.resOK, c.resAddr
}

// commitRecord assembles the Commit for a uop about to be reported. It runs
// after the retirement map update, so archRAT reads give post-commit values.
func (c *Core) commitRecord(u *uop) Commit {
	ci := Commit{Seq: u.seq, PC: u.pc, Inst: u.inst}
	if u.inst.WritesReg() && !u.inst.Rd.IsV() {
		ci.RdVal = c.pf.read(c.archRAT[int(u.inst.Rd)])
		ci.HasRd = true
	}
	switch u.inst.Op.Class() {
	case isa.ClassLoad, isa.ClassStore, isa.ClassAMO:
		ci.Addr = u.addr
		ci.HasAddr = true
	}
	return ci
}
