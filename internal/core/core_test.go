package core

import (
	"fmt"
	"math/rand"
	"testing"

	"xt910/internal/asm"
	"xt910/internal/cache"
	"xt910/internal/coherence"
	"xt910/internal/emu"
	"xt910/internal/mem"
	"xt910/isa"
)

// buildCore assembles a single-core system around cfg.
func buildCore(cfg Config) (*Core, *mem.Memory) {
	memory := mem.NewMemory()
	dram := mem.NewDRAM()
	l2 := coherence.NewL2(cache.Config{
		SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, HitLatency: 10, ECC: true, Parity: true,
	}, dram)
	c := New(cfg, 0, memory, l2)
	return c, memory
}

// runCore assembles src and runs it on the given config until halt.
func runCore(t *testing.T, cfg Config, src string) *Core {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	c, memory := buildCore(cfg)
	p.LoadInto(memory)
	c.Reset(p.Entry, 0x80000)
	c.Run(20_000_000)
	if !c.Halted {
		t.Fatalf("core did not halt: %s", c.Stats.String())
	}
	if msg := c.CheckInvariants(); msg != "" {
		t.Fatalf("pipeline invariant violated: %s", msg)
	}
	return c
}

// runBoth runs src on the XT-910 core and the emulator and checks that the
// exit codes and all architectural integer registers match (co-simulation).
func runBoth(t *testing.T, cfg Config, src string) (*Core, *emu.Machine) {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	c, cm := buildCore(cfg)
	p.LoadInto(cm)
	c.Reset(p.Entry, 0x80000)
	c.Run(20_000_000)
	if msg := c.CheckInvariants(); msg != "" {
		t.Fatalf("pipeline invariant violated: %s", msg)
	}

	m := emu.New(mem.NewMemory())
	p.LoadInto(m.Mem)
	m.PC = p.Entry
	m.X[2] = 0x80000
	if err := m.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted || !m.Halted {
		t.Fatalf("halt mismatch: core=%v emu=%v (%s)", c.Halted, m.Halted, c.Stats.String())
	}
	if c.ExitCode != m.ExitCode {
		t.Fatalf("exit code mismatch: core=%d emu=%d", c.ExitCode, m.ExitCode)
	}
	for r := 0; r < 32; r++ {
		if got, want := c.Reg(isa.X(r)), m.X[r]; got != want {
			t.Fatalf("x%d mismatch: core=%#x emu=%#x", r, got, want)
		}
	}
	for r := 0; r < 32; r++ {
		if got, want := c.Reg(isa.F(r)), m.F[r]; got != want {
			t.Fatalf("f%d mismatch: core=%#x emu=%#x", r, got, want)
		}
	}
	return c, m
}

const exitSeq = `
    li a7, 93
    ecall
`

func TestCoreArithmetic(t *testing.T) {
	c := runCore(t, XT910Config(), `
_start:
    li   t0, 100
    li   t1, 7
    mul  t2, t0, t1
    div  t3, t2, t1
    add  a0, t2, t3
`+exitSeq)
	if c.ExitCode != 800 {
		t.Fatalf("exit = %d, want 800", c.ExitCode)
	}
}

func TestCoreFibonacci(t *testing.T) {
	c, _ := runBoth(t, XT910Config(), `
_start:
    li   a0, 0
    li   a1, 1
    li   t0, 200
loop:
    add  t1, a0, a1
    mv   a0, a1
    mv   a1, t1
    addi t0, t0, -1
    bnez t0, loop
`+exitSeq)
	if c.ExitCode != -1123705814761610347 {
		t.Fatalf("fib(200 mod 2^64) = %d", c.ExitCode)
	}
	if c.Stats.IPC() < 0.5 {
		t.Fatalf("tight loop IPC suspiciously low: %s", c.Stats.String())
	}
}

func TestCoreRecursion(t *testing.T) {
	c, _ := runBoth(t, XT910Config(), `
_start:
    li   a0, 12
    call fact
`+exitSeq+`
fact:
    li   t0, 2
    bge  a0, t0, rec
    li   a0, 1
    ret
rec:
    addi sp, sp, -16
    sd   ra, 0(sp)
    sd   a0, 8(sp)
    addi a0, a0, -1
    call fact
    ld   t1, 8(sp)
    mul  a0, a0, t1
    ld   ra, 0(sp)
    addi sp, sp, 16
    ret
`)
	if c.ExitCode != 479001600 {
		t.Fatalf("12! = %d", c.ExitCode)
	}
}

func TestCoreMemoryBytes(t *testing.T) {
	runBoth(t, XT910Config(), `
_start:
    la   t0, buf
    li   t1, -2
    sb   t1, 0(t0)
    lbu  t2, 0(t0)
    lb   t3, 0(t0)
    sh   t1, 2(t0)
    lhu  t4, 2(t0)
    add  a0, t2, t4
    add  a0, a0, t3
    li   t5, 0x1122334455667788
    sd   t5, 3(t0)
    ld   t6, 3(t0)
    xor  t6, t6, t5
    add  a0, a0, t6
`+exitSeq+`
buf: .space 32
`)
}

func TestStoreToLoadForwarding(t *testing.T) {
	c, _ := runBoth(t, XT910Config(), `
_start:
    la   t0, buf
    li   a0, 0
    li   t1, 64
loop:
    sd   t1, 0(t0)
    ld   t2, 0(t0)       # immediately reloads: forwards from the SQ
    add  a0, a0, t2
    addi t1, t1, -1
    bnez t1, loop
`+exitSeq+`
buf: .space 8
`)
	if c.ExitCode != 64*65/2 {
		t.Fatalf("sum = %d", c.ExitCode)
	}
	if c.Stats.StoreForwards == 0 {
		t.Fatal("expected store-to-load forwarding events")
	}
}

func TestMemOrderViolationRecovery(t *testing.T) {
	// The store's address depends on a slow divide, so the younger load
	// executes first (speculatively, §V-A), then gets squashed at retirement
	// when the store reveals the overlapping address.
	c, _ := runBoth(t, XT910Config(), `
_start:
    la   t0, buf
    li   a0, 0
    li   t5, 16
outer:
    li   t1, 400
    li   t2, 4
    divu t3, t1, t2       # 100, slow
    add  t4, t0, t3
    li   t6, 7
    sd   t6, 0(t4)        # store to buf+100, address late
    ld   a1, 100(t0)      # younger load, same address, executes early
    add  a0, a0, a1
    addi t5, t5, -1
    bnez t5, outer
`+exitSeq+`
buf: .space 256
`)
	if c.ExitCode != 16*7 {
		t.Fatalf("sum = %d, want 112", c.ExitCode)
	}
	if c.Stats.MemOrderViolations == 0 {
		t.Fatal("expected at least one §V-A ordering violation")
	}
	if c.Cfg.MemDepPredict && c.Stats.MemOrderFlushes >= 16 {
		t.Fatalf("dependence predictor should stop repeat violations: %d flushes",
			c.Stats.MemOrderFlushes)
	}
}

func TestBranchHeavyCorrectness(t *testing.T) {
	c, _ := runBoth(t, XT910Config(), `
_start:
    li   a0, 0
    li   t0, 0
    li   t1, 2000
loop:
    andi t2, t0, 7
    li   t3, 3
    bltu t2, t3, small
    addi a0, a0, 5
    j    next
small:
    addi a0, a0, 1
next:
    addi t0, t0, 1
    bne  t0, t1, loop
`+exitSeq)
	want := 2000/8*3*1 + 2000/8*5*5
	if c.ExitCode != want {
		t.Fatalf("exit = %d, want %d", c.ExitCode, want)
	}
	if c.Stats.Branches == 0 {
		t.Fatal("no branches counted")
	}
}

func TestCoreVectorDot(t *testing.T) {
	c := runCore(t, XT910Config(), `
_start:
    li   t0, 8
    vsetvli t1, t0, e32, m2
    la   a1, va
    la   a2, vb
    vle.v v0, (a1)
    vle.v v2, (a2)
    li   t2, 0
    vmv.s.x v8, t2
    vmv.v.x v4, t2
    vmacc.vv v4, v0, v2
    vredsum.vs v6, v4, v8
    vmv.x.s a0, v6
`+exitSeq+`
.align 4
va: .word 1, 2, 3, 4, 5, 6, 7, 8
vb: .word 8, 7, 6, 5, 4, 3, 2, 1
`)
	if c.ExitCode != 120 {
		t.Fatalf("vector dot = %d, want 120", c.ExitCode)
	}
	if c.Stats.VecOps == 0 {
		t.Fatal("vector ops not counted")
	}
}

func TestCoreCustomExtensions(t *testing.T) {
	c, _ := runBoth(t, XT910Config(), `
_start:
    la   t0, arr
    li   t1, 3
    lrw  a0, t0, t1, 2
    li   t2, 0xF0
    extu a1, t2, 7, 4
    li   a2, 0
    li   t3, 5
    li   t4, 6
    mula a2, t3, t4
    add  a0, a0, a1
    add  a0, a0, a2
`+exitSeq+`
arr: .word 0, 11, 22, 33, 44
`)
	if c.ExitCode != 78 {
		t.Fatalf("custom ext = %d", c.ExitCode)
	}
}

func TestCustomExtDisabledTraps(t *testing.T) {
	cfg := XT910Config()
	cfg.EnableCustomExt = false
	c := runCore(t, cfg, `
_start:
    li   t0, 1
    li   t1, 2
    addsl a0, t0, t1, 1
`+exitSeq)
	if c.ExitCode != -(16 + isa.ExcIllegalInst) {
		t.Fatalf("custom op with extensions disabled must trap: exit=%d", c.ExitCode)
	}
}

func TestCoreFloat(t *testing.T) {
	c, _ := runBoth(t, XT910Config(), `
_start:
    la    t0, vals
    fld   fa0, 0(t0)
    fld   fa1, 8(t0)
    fadd.d fa2, fa0, fa1
    fmul.d fa3, fa2, fa1
    fcvt.w.d a0, fa3
`+exitSeq+`
.align 3
vals:
    .dword 0x3FF0000000000000
    .dword 0x4004000000000000
`)
	if c.ExitCode != 8 {
		t.Fatalf("fp = %d", c.ExitCode)
	}
}

func TestCoreAMO(t *testing.T) {
	c, _ := runBoth(t, XT910Config(), `
_start:
    la   t0, cell
    li   t1, 5
    amoadd.d a0, t1, (t0)
retry:
    lr.d t2, (t0)
    addi t2, t2, 1
    sc.d t3, t2, (t0)
    bnez t3, retry
    ld   a0, 0(t0)
`+exitSeq+`
.align 3
cell: .dword 0
`)
	if c.ExitCode != 6 {
		t.Fatalf("amo = %d", c.ExitCode)
	}
}

func TestCoreCSRCounters(t *testing.T) {
	c := runCore(t, XT910Config(), `
_start:
    csrr t0, cycle
    csrr t1, instret
    nop
    nop
    csrr t2, cycle
    csrr t3, instret
    sub  a0, t2, t0      # elapsed cycles > 0
    sub  a1, t3, t1
    beqz a0, bad
    li   a0, 0
`+exitSeq+`
bad:
    li  a0, 1
`+exitSeq)
	if c.ExitCode != 0 {
		t.Fatal("cycle counter did not advance")
	}
}

func TestCoreTrapRoundTrip(t *testing.T) {
	c := runCore(t, XT910Config(), `
_start:
    la   t0, handler
    csrw mtvec, t0
    la   t1, umode
    csrw mepc, t1
    li   t2, 0x1800
    csrrc zero, mstatus, t2
    mret
umode:
    li   a7, 1234
    ecall
    ebreak
handler:
    csrr a0, mcause
`+exitSeq)
	if c.ExitCode != isa.ExcEcallU {
		t.Fatalf("mcause = %d, want %d", c.ExitCode, isa.ExcEcallU)
	}
}

func TestLoopBufferEngages(t *testing.T) {
	c := runCore(t, XT910Config(), `
_start:
    li   a0, 0
    li   t0, 3000
loop:
    addi a0, a0, 2
    addi t0, t0, -1
    bnez t0, loop
`+exitSeq)
	if c.ExitCode != 6000 {
		t.Fatalf("exit = %d", c.ExitCode)
	}
	if c.Stats.LoopBufInsts == 0 {
		t.Fatal("small hot loop should run from the LBUF (§III-C)")
	}
}

func TestInOrderConfigCorrect(t *testing.T) {
	c, _ := runBoth(t, U74Config(), `
_start:
    li   a0, 0
    li   t0, 500
loop:
    add  a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
`+exitSeq)
	if c.ExitCode != 500*501/2 {
		t.Fatalf("exit = %d", c.ExitCode)
	}
}

func TestXT910FasterThanU74(t *testing.T) {
	src := `
_start:
    li   a0, 0
    li   t0, 5000
    la   t1, data
loop:
    ld   t2, 0(t1)
    add  a0, a0, t2
    ld   t3, 8(t1)
    add  a0, a0, t3
    mul  t4, t2, t3
    add  a0, a0, t4
    addi t0, t0, -1
    bnez t0, loop
` + exitSeq + `
.align 3
data: .dword 3, 4
`
	xt := runCore(t, XT910Config(), src)
	u74 := runCore(t, U74Config(), src)
	if xt.ExitCode != u74.ExitCode {
		t.Fatalf("configs disagree architecturally: %d vs %d", xt.ExitCode, u74.ExitCode)
	}
	if xt.Stats.IPC() <= u74.Stats.IPC() {
		t.Fatalf("XT-910 (%.2f IPC) should beat the in-order U74-class (%.2f IPC)",
			xt.Stats.IPC(), u74.Stats.IPC())
	}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{XT910Config(), U74Config(), A73Config()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	bad := XT910Config()
	bad.L1D.SizeBytes = 128 << 10
	if bad.Validate() == nil {
		t.Error("128KB L1D violates Table I and must be rejected")
	}
}

func TestPhysRegIntegrityAfterRun(t *testing.T) {
	c := runCore(t, XT910Config(), `
_start:
    li   a0, 0
    li   t0, 300
loop:
    andi t1, t0, 3
    beqz t1, skip
    addi a0, a0, 1
skip:
    addi t0, t0, -1
    bnez t0, loop
`+exitSeq)
	seen := map[int16]bool{}
	for _, p := range c.pf.free {
		if seen[p] {
			t.Fatalf("free list contains duplicate phys %d", p)
		}
		seen[p] = true
	}
	for r, p := range c.archRAT {
		if seen[p] {
			t.Fatalf("arch reg %d's phys %d is also on the free list", r, p)
		}
	}
}

// TestRandomProgramCoSim is the heavyweight property test: random (but
// well-formed) programs must produce identical architectural results on the
// out-of-order pipeline and the functional emulator.
func TestRandomProgramCoSim(t *testing.T) {
	rng := rand.New(rand.NewSource(910))
	for trial := 0; trial < 50; trial++ {
		src := genRandomProgram(rng)
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			runBoth(t, XT910Config(), src)
		})
	}
}

// genRandomProgram emits a random straight-line-with-loops program over a
// scratch buffer, always terminating with the exit sequence.
func genRandomProgram(rng *rand.Rand) string {
	var b []byte
	app := func(s string) { b = append(b, s...); b = append(b, '\n') }
	regs := []string{"t0", "t1", "t2", "t3", "t4", "t5", "a1", "a2", "a3", "a4", "s2", "s3"}
	reg := func() string { return regs[rng.Intn(len(regs))] }
	app("_start:")
	app("    la s0, buf")
	app("    li a0, 0")
	for _, r := range regs {
		app(fmt.Sprintf("    li %s, %d", r, rng.Intn(1<<16)-1<<15))
	}
	fregs := []string{"ft0", "ft1", "fa0", "fa1", "fs2", "fs3"}
	freg := func() string { return fregs[rng.Intn(len(fregs))] }
	app("    fcvt.d.l ft0, t0")
	app("    fcvt.d.l ft1, t1")
	app("    fcvt.d.l fa0, a1")
	app("    fcvt.d.l fa1, a2")
	app("    fcvt.d.l fs2, a3")
	app("    fcvt.d.l fs3, a4")
	blocks := 3 + rng.Intn(4)
	for blk := 0; blk < blocks; blk++ {
		n := 4 + rng.Intn(12)
		for i := 0; i < n; i++ {
			switch rng.Intn(16) {
			case 0:
				app(fmt.Sprintf("    add %s, %s, %s", reg(), reg(), reg()))
			case 1:
				app(fmt.Sprintf("    sub %s, %s, %s", reg(), reg(), reg()))
			case 2:
				app(fmt.Sprintf("    mul %s, %s, %s", reg(), reg(), reg()))
			case 3:
				app(fmt.Sprintf("    xor %s, %s, %s", reg(), reg(), reg()))
			case 4:
				app(fmt.Sprintf("    sltu %s, %s, %s", reg(), reg(), reg()))
			case 5:
				app(fmt.Sprintf("    srli %s, %s, %d", reg(), reg(), rng.Intn(63)+1))
			case 6:
				app(fmt.Sprintf("    divu %s, %s, %s", reg(), reg(), reg()))
			case 7:
				off := rng.Intn(32) * 8
				app(fmt.Sprintf("    sd %s, %d(s0)", reg(), off))
			case 8:
				off := rng.Intn(32) * 8
				app(fmt.Sprintf("    ld %s, %d(s0)", reg(), off))
			case 9:
				app(fmt.Sprintf("    addiw %s, %s, %d", reg(), reg(), rng.Intn(4096)-2048))
			case 10: // §VIII custom bit manipulation
				lsb := rng.Intn(64)
				msb := lsb + rng.Intn(64-lsb)
				app(fmt.Sprintf("    extu %s, %s, %d, %d", reg(), reg(), msb, lsb))
			case 11: // §VIII MAC
				app(fmt.Sprintf("    mula %s, %s, %s", reg(), reg(), reg()))
			case 12: // §VIII indexed load (bounded index)
				app(fmt.Sprintf("    andi a5, %s, 24", reg()))
				app(fmt.Sprintf("    lrd %s, s0, a5, 0", reg()))
			case 13:
				app(fmt.Sprintf("    rev %s, %s", reg(), reg()))
			case 14: // double-precision FP chain
				app(fmt.Sprintf("    fadd.d %s, %s, %s", freg(), freg(), freg()))
				app(fmt.Sprintf("    fmul.d %s, %s, %s", freg(), freg(), freg()))
			case 15: // FP memory round trip
				off := rng.Intn(16) * 8
				app(fmt.Sprintf("    fsd %s, %d(s0)", freg(), off))
				app(fmt.Sprintf("    fld %s, %d(s0)", freg(), off))
			}
		}
		// a bounded loop over the block tail
		app(fmt.Sprintf("    li s1, %d", 2+rng.Intn(6)))
		app(fmt.Sprintf("blk%d:", blk))
		app(fmt.Sprintf("    add a0, a0, %s", reg()))
		off := rng.Intn(32) * 8
		app(fmt.Sprintf("    sd a0, %d(s0)", off))
		app(fmt.Sprintf("    ld a5, %d(s0)", off))
		app("    add a0, a0, a5")
		app("    addi s1, s1, -1")
		app(fmt.Sprintf("    bnez s1, blk%d", blk))
	}
	// a call/return pair exercises the RAS and link registers
	app("    call leaf")
	// fold everything into a0 deterministically
	for _, r := range regs {
		app(fmt.Sprintf("    add a0, a0, %s", r))
	}
	for _, r := range fregs {
		app(fmt.Sprintf("    fcvt.l.d a5, %s", r))
		app("    add a0, a0, a5")
	}
	app("    li a7, 93")
	app("    ecall")
	app("leaf:")
	app("    addi a1, a1, 13")
	app("    ret")
	app("buf: .space 256")
	return string(b)
}
