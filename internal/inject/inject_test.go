package inject

import (
	"context"
	"testing"
	"time"
)

func smallCampaign(t *testing.T, jobs int) *Report {
	t.Helper()
	rep, err := RunCampaign(context.Background(), Options{
		Seeds:         []int64{1, 2, 3, 4},
		FaultsPerSeed: 6,
		Jobs:          jobs,
		Timeout:       2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCampaignCoverage runs the fixed-seed campaign and checks the coverage
// contract: no control false positives, zero silent architectural corruption,
// and at least one detected fault with a measured latency.
func TestCampaignCoverage(t *testing.T) {
	rep := smallCampaign(t, 4)
	if len(rep.ControlFailures) > 0 {
		t.Fatalf("control runs diverged (false positives): %v", rep.ControlFailures)
	}
	if n := rep.SilentArch(); n > 0 {
		t.Fatalf("%d architectural-state faults went silent:\n%s", n, rep.Format())
	}
	if rep.Count(Detected) == 0 {
		t.Fatalf("campaign detected nothing:\n%s", rep.Format())
	}
	for _, fr := range rep.Results {
		if fr.Outcome == Crashed {
			t.Errorf("fault crashed the simulator: %+v: %s", fr.Fault, fr.Err)
		}
		if fr.Outcome == Detected && fr.CommitsAtInject == 0 {
			t.Errorf("detected fault with no injection commit recorded: %+v", fr.Fault)
		}
	}
}

// TestCampaignDeterministic requires the formatted report to be
// byte-identical at any worker-pool width.
func TestCampaignDeterministic(t *testing.T) {
	a := smallCampaign(t, 1).Format()
	b := smallCampaign(t, 4).Format()
	if a != b {
		t.Fatalf("campaign reports differ between jobs=1 and jobs=4:\n--- jobs=1\n%s\n--- jobs=4\n%s", a, b)
	}
}

// TestArchRegFaultsNeverSilent drives the archreg channel directly across a
// spread of cycles and bits: every fault must be Detected, Masked or (when
// the run ends first) NotInjected — Silent would be a checker coverage hole.
func TestArchRegFaultsNeverSilent(t *testing.T) {
	opts := Options{Timeout: 2 * time.Minute}
	for seed := int64(1); seed <= 3; seed++ {
		for i, cycle := range []uint64{50, 400, 1500} {
			f := Fault{
				Seed:   seed,
				Target: TargetArchReg,
				Cycle:  cycle,
				Reg:    1 + int(seed*7+int64(i*11))%63,
				Bit:    uint(i * 13 % 64),
			}
			fr := runFault(context.Background(), f, opts, 200_000)
			switch fr.Outcome {
			case Detected, Masked, NotInjected:
			default:
				t.Errorf("archreg fault %+v classified %s", f, fr.Outcome)
			}
		}
	}
}
