// Package inject runs seeded transient-fault campaigns against the lock-step
// checker: it flips single bits of live core state (architectural registers,
// rename-map entries, ROB age tags, L1D-resident lines, raw memory) at a
// chosen cycle mid-run and classifies what the differential cosim machinery
// does about it.
//
// The taxonomy, per fault:
//
//   - Detected: the checker diverged after the flip; detection latency is
//     measured in commits from injection to the first mismatch.
//   - Masked: the run finished clean and the faulted state had been
//     overwritten (or never consumed) — the fault provably did not escape.
//   - Silent: the run finished clean but the faulted word still differs
//     between the two models. Only the raw-memory and cache channels can
//     produce this (the checker's written-line sweep does not cover bytes no
//     store touched); architectural-state faults must never be Silent —
//     the register files are compared at every commit and at halt.
//   - Crashed: the simulator panicked; the worker pool converted it into a
//     recovered *sched.PanicError instead of killing the campaign.
//   - Timeout: the run blew its wall-clock deadline.
//   - NotInjected: the program halted before the injection cycle, or the
//     target never became available (e.g. an always-empty ROB).
//
// Campaigns are deterministic: every fault parameter derives from the seed,
// runs execute on the internal/sched pool, and results are reported in
// submission order, so a campaign's report is byte-identical at any worker
// count.
package inject

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"xt910/internal/asm"
	"xt910/internal/cosim"
	"xt910/internal/sched"
)

// Target names a fault-injection channel.
type Target int

// The five channels, in report order.
const (
	TargetArchReg Target = iota // retirement-map physical register payload
	TargetRename                // speculative rename-map entry
	TargetROBAge                // ROB entry sequence/age tag
	TargetCache                 // byte under a valid L1D line
	TargetMem                   // raw memory byte, bypassing every hook
	numTargets
)

var targetNames = [numTargets]string{"archreg", "rename", "robage", "cache", "mem"}

func (t Target) String() string { return targetNames[t] }

// Arch reports whether t corrupts state with an architectural contract: a
// Silent outcome on such a target is a checker coverage hole and fails the
// campaign.
func (t Target) Arch() bool { return t == TargetArchReg || t == TargetRename || t == TargetROBAge }

// Outcome classifies what became of one injected fault.
type Outcome int

// Outcomes, in report order.
const (
	Detected Outcome = iota
	Masked
	Silent
	Crashed
	Timeout
	NotInjected
	numOutcomes
)

var outcomeNames = [numOutcomes]string{"detected", "masked", "silent", "crashed", "timeout", "notinjected"}

func (o Outcome) String() string { return outcomeNames[o] }

// Fault is one planned bit flip.
type Fault struct {
	Seed   int64  // program seed (also seeds the fault parameters)
	Target Target // channel
	Cycle  uint64 // injection cycle
	Reg    int    // architectural register ordinal (archreg/rename)
	Bit    uint   // bit to flip
	Index  int    // ROB-entry / cache-line ordinal
	Addr   uint64 // memory fault address (mem target)
}

// FaultResult is one fault's classified outcome.
type FaultResult struct {
	Fault
	Outcome         Outcome
	Kind            string // cosim divergence class when Detected
	CommitsAtInject uint64
	DetectLatency   uint64 // commits from injection to first mismatch (Detected)
	FaultAddr       uint64 // resolved byte address (cache/mem targets)
	Err             string // recovered panic or pool error (Crashed)
}

// Options configures a campaign.
type Options struct {
	Seeds         []int64
	FaultsPerSeed int           // faults planned per seed (default 8)
	Segs          int           // program segments (0: fuzzer default)
	Jobs          int           // worker-pool width (0: GOMAXPROCS)
	Timeout       time.Duration // per-run wall deadline (default 60s)
	MaxCycles     uint64        // per-run cycle budget (0: 4×control + 20000)
}

// Report is a classified campaign.
type Report struct {
	ControlFailures []string // control (no-fault) runs that diverged: false positives
	Results         []FaultResult
}

// control holds one seed's clean-run measurements.
type control struct {
	cycles  uint64
	failure string
}

// RunCampaign executes the two-phase campaign: one control run per seed
// (false-positive check, and the cycle count that places the injections),
// then FaultsPerSeed fault runs per seed.
func RunCampaign(ctx context.Context, opts Options) (*Report, error) {
	if opts.FaultsPerSeed <= 0 {
		opts.FaultsPerSeed = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 60 * time.Second
	}
	rep := &Report{}

	// Phase 1: control runs.
	ctl := make([]control, len(opts.Seeds))
	jobs := make([]sched.Job, len(opts.Seeds))
	for i, seed := range opts.Seeds {
		i, seed := i, seed
		jobs[i] = sched.Job{
			ID:      fmt.Sprintf("control/seed%d", seed),
			Timeout: opts.Timeout,
			Run: func(ctx context.Context) (any, error) {
				r, err := cleanRun(ctx, seed, opts)
				if err != nil {
					return control{}, err
				}
				c := control{cycles: r.Cycles}
				if r.TimedOut {
					c.failure = fmt.Sprintf("seed %d: control run timed out", seed)
				} else if r.Diverged {
					c.failure = fmt.Sprintf("seed %d: control run diverged (%s at commit %d)", seed, r.Kind, r.FailCommit)
				}
				sched.AddCycles(ctx, r.Cycles)
				return c, nil
			},
		}
	}
	for i, r := range sched.Run(ctx, jobs, sched.Options{Workers: opts.Jobs}) {
		if r.Err != nil {
			return nil, r.Err
		}
		ctl[i] = r.Value.(control)
		if f := ctl[i].failure; f != "" {
			rep.ControlFailures = append(rep.ControlFailures, f)
		}
	}

	// Phase 2: fault runs. Parameters derive from the seed and fault ordinal
	// only, so a re-run (at any worker count) plans the identical campaign.
	var faults []Fault
	for i, seed := range opts.Seeds {
		if ctl[i].failure != "" || ctl[i].cycles == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(seed<<20 + 0x17ec7))
		for f := 0; f < opts.FaultsPerSeed; f++ {
			lo, hi := ctl[i].cycles/8, ctl[i].cycles*3/4
			if hi <= lo {
				hi = lo + 1
			}
			faults = append(faults, Fault{
				Seed:   seed,
				Target: Target(rng.Intn(int(numTargets))),
				Cycle:  lo + uint64(rng.Int63n(int64(hi-lo))),
				Reg:    1 + rng.Intn(63),
				Bit:    uint(rng.Intn(64)),
				Index:  rng.Intn(64),
				Addr:   uint64(rng.Intn(0x90000)),
			})
		}
	}
	jobs = make([]sched.Job, len(faults))
	for i, f := range faults {
		i, f := i, f
		maxCycles := opts.MaxCycles
		if maxCycles == 0 {
			for j, seed := range opts.Seeds {
				if seed == f.Seed {
					maxCycles = 4*ctl[j].cycles + 20000
					break
				}
			}
		}
		jobs[i] = sched.Job{
			ID:      fmt.Sprintf("fault/seed%d/%d", f.Seed, i),
			Timeout: opts.Timeout,
			Run: func(ctx context.Context) (any, error) {
				fr := runFault(ctx, f, opts, maxCycles)
				return fr, nil
			},
		}
	}
	rep.Results = make([]FaultResult, len(faults))
	for i, r := range sched.Run(ctx, jobs, sched.Options{Workers: opts.Jobs}) {
		if r.Err != nil {
			// a recovered panic is itself a campaign datum
			rep.Results[i] = FaultResult{Fault: faults[i], Outcome: Crashed, Err: r.Err.Error()}
			continue
		}
		rep.Results[i] = r.Value.(FaultResult)
	}
	return rep, nil
}

// cleanRun executes seed's program with no fault.
func cleanRun(ctx context.Context, seed int64, opts Options) (cosim.Result, error) {
	src, _ := cosim.GenerateSource(seed, opts.Segs, cosim.Options{})
	prog, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		return cosim.Result{}, fmt.Errorf("seed %d: %w", seed, err)
	}
	return cosim.RunContext(ctx, prog, cosim.Options{}), nil
}

// runFault executes one fault run: step to the injection cycle, flip the bit
// (with a bounded retry while the target is transiently unavailable), run the
// program out and classify.
func runFault(ctx context.Context, f Fault, opts Options, maxCycles uint64) FaultResult {
	fr := FaultResult{Fault: f, Outcome: NotInjected}
	src, _ := cosim.GenerateSource(f.Seed, opts.Segs, cosim.Options{})
	prog, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: true})
	if err != nil {
		fr.Outcome = Crashed
		fr.Err = err.Error()
		return fr
	}
	s := cosim.NewSession(prog, cosim.Options{MaxCycles: maxCycles})
	for !s.Done() && s.Cycles() < f.Cycle {
		s.Step()
	}
	// Inject, retrying for a bounded window when the target is transiently
	// unavailable (empty ROB, no valid L1D lines yet).
	injected := false
	for retry := 0; !injected && !s.Done() && retry < 4096; retry++ {
		c := s.Core()
		switch f.Target {
		case TargetArchReg:
			injected = c.InjectArchRegBit(f.Reg, f.Bit)
		case TargetRename:
			injected = c.InjectRenameBit(f.Reg, f.Bit)
		case TargetROBAge:
			injected = c.InjectROBAgeBit(f.Index, f.Bit)
		case TargetCache:
			fr.FaultAddr, injected = c.InjectCacheLineBit(f.Index, f.Bit)
		case TargetMem:
			fr.FaultAddr = f.Addr
			c.InjectMemBit(f.Addr, f.Bit)
			injected = true
		}
		if !injected {
			s.Step()
		}
	}
	if !injected {
		return fr
	}
	fr.CommitsAtInject = s.Commits()
	for i := 0; !s.Done(); i++ {
		s.Step()
		if i&1023 == 0 && ctx.Err() != nil {
			fr.Outcome = Timeout
			return fr
		}
	}
	r := s.Finish()
	switch {
	case r.TimedOut:
		fr.Outcome = Timeout
	case r.Diverged:
		fr.Outcome = Detected
		fr.Kind = r.Kind
		if r.FailCommit >= fr.CommitsAtInject {
			fr.DetectLatency = r.FailCommit - fr.CommitsAtInject
		}
	default:
		fr.Outcome = Masked
		if f.Target == TargetCache || f.Target == TargetMem {
			// the written-line sweep does not cover untouched bytes: check the
			// faulted byte itself to expose genuinely silent corruption
			if s.Core().Mem.LoadByte(fr.FaultAddr) != s.Emu().Mem.LoadByte(fr.FaultAddr) {
				fr.Outcome = Silent
			}
		}
	}
	return fr
}

// SilentArch counts Silent outcomes on architectural-state targets — the
// number that must be zero for the checker's coverage claim to hold.
func (r *Report) SilentArch() int {
	n := 0
	for _, fr := range r.Results {
		if fr.Outcome == Silent && fr.Target.Arch() {
			n++
		}
	}
	return n
}

// Count returns the number of results with the given outcome.
func (r *Report) Count(o Outcome) int {
	n := 0
	for _, fr := range r.Results {
		if fr.Outcome == o {
			n++
		}
	}
	return n
}

// Format renders the deterministic campaign report: outcome matrix per
// target, detection-latency statistics and the failure lists. It contains no
// wall-clock times, so two runs of the same campaign render byte-identically.
func (r *Report) Format() string {
	var b strings.Builder
	var mat [numTargets][numOutcomes]int
	lat := make(map[Target][]uint64)
	for _, fr := range r.Results {
		mat[fr.Target][fr.Outcome]++
		if fr.Outcome == Detected {
			lat[fr.Target] = append(lat[fr.Target], fr.DetectLatency)
		}
	}
	fmt.Fprintf(&b, "fault-injection campaign: %d faults\n\n", len(r.Results))
	fmt.Fprintf(&b, "%-8s", "target")
	for o := Outcome(0); o < numOutcomes; o++ {
		fmt.Fprintf(&b, "%12s", o)
	}
	b.WriteByte('\n')
	for t := Target(0); t < numTargets; t++ {
		fmt.Fprintf(&b, "%-8s", t)
		for o := Outcome(0); o < numOutcomes; o++ {
			fmt.Fprintf(&b, "%12d", mat[t][o])
		}
		b.WriteByte('\n')
	}
	b.WriteString("\ndetection latency (commits from injection to first mismatch):\n")
	for t := Target(0); t < numTargets; t++ {
		ls := lat[t]
		if len(ls) == 0 {
			continue
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		var sum uint64
		for _, l := range ls {
			sum += l
		}
		fmt.Fprintf(&b, "  %-8s n=%-4d min=%-6d median=%-6d max=%-6d mean=%.1f\n",
			t, len(ls), ls[0], ls[len(ls)/2], ls[len(ls)-1], float64(sum)/float64(len(ls)))
	}
	if len(r.ControlFailures) > 0 {
		b.WriteString("\ncontrol failures (false positives):\n")
		for _, f := range r.ControlFailures {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	if n := r.SilentArch(); n > 0 {
		fmt.Fprintf(&b, "\nSILENT ARCHITECTURAL CORRUPTION: %d faults escaped the checker\n", n)
		for _, fr := range r.Results {
			if fr.Outcome == Silent && fr.Target.Arch() {
				fmt.Fprintf(&b, "  seed %d %s reg=%d bit=%d cycle=%d\n", fr.Seed, fr.Target, fr.Reg, fr.Bit, fr.Cycle)
			}
		}
	}
	return b.String()
}
