// Package perf provides result-reporting plumbing for the paper-reproduction
// harness (formatted paper-vs-measured tables) and the first-order area/power
// model behind Table II.
package perf

import (
	"fmt"
	"math"
	"strings"
)

// Row is one line of a reproduced table or figure. The JSON names feed the
// xtbench -json output.
type Row struct {
	Label    string  `json:"label"`
	Measured float64 `json:"measured"`
	Paper    float64 `json:"paper,omitempty"` // 0: the paper gives no number for this row
	Unit     string  `json:"unit,omitempty"`
	Note     string  `json:"note,omitempty"`

	// CPI, when non-empty, is the row's top-down CPI-stack breakdown
	// (xtbench -cpistack), rendered on a continuation line.
	CPI string `json:"cpi,omitempty"`

	// CPIPC, when non-empty, is the row's per-PC backend-stall attribution
	// (the hottest stall PCs plus an exact "other" remainder), rendered on a
	// continuation line under the CPI stack.
	CPIPC string `json:"cpipc,omitempty"`

	// Interrupts and WFIParked surface the run's asynchronous-interrupt
	// deliveries and WFI-parked cycles (omitted for rows without a run, and
	// for runs that never took an interrupt or parked).
	Interrupts uint64 `json:"interrupts,omitempty"`
	WFIParked  uint64 `json:"wfi_parked,omitempty"`

	// HostMIPS and SimCyclesPerSec track simulator speed for this row's run:
	// retired instructions per host microsecond and simulated cycles per host
	// second. JSON-only — they depend on the host and never enter Format(),
	// so the text tables stay byte-identical across machines and -jobs widths.
	HostMIPS        float64 `json:"host_mips,omitempty"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
}

// Result is one reproduced experiment.
type Result struct {
	ID    string   `json:"id"` // "fig17", "table2", …
	Title string   `json:"title"`
	Rows  []Row    `json:"rows"`
	Notes []string `json:"notes,omitempty"`
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	width := 10
	for _, row := range r.Rows {
		if len(row.Label) > width {
			width = len(row.Label)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %12s  %12s  %s\n", width, "item", "measured", "paper", "unit")
	for _, row := range r.Rows {
		paper := "—"
		if row.Paper != 0 {
			paper = fmt.Sprintf("%12.3f", row.Paper)
		}
		fmt.Fprintf(&b, "  %-*s  %12.3f  %12s  %s", width, row.Label, row.Measured, paper, row.Unit)
		if row.Note != "" {
			fmt.Fprintf(&b, "   (%s)", row.Note)
		}
		b.WriteByte('\n')
		if row.CPI != "" {
			fmt.Fprintf(&b, "  %-*s    cpi: %s\n", width, "", row.CPI)
		}
		if row.CPIPC != "" {
			fmt.Fprintf(&b, "  %-*s    cpipc: %s\n", width, "", row.CPIPC)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Geomean returns the geometric mean of vs (1.0 for empty input).
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 1
	}
	prod := 1.0
	for _, v := range vs {
		prod *= v
	}
	return math.Pow(prod, 1/float64(len(vs)))
}
