package perf

// Table II reproduction: the paper reports silicon properties (frequency,
// area, dynamic power) that a simulator cannot measure, so this file provides
// a first-order analytical model calibrated against published TSMC-12nm
// design data and validated against the paper's own rows. DESIGN.md records
// this substitution.

// AreaPowerInput describes a core configuration for the model.
type AreaPowerInput struct {
	WithVector   bool
	L1KB         int // combined I+D in KB
	ROBEntries   int
	IssueWidth   int
	VoltageBoost bool // 1.0 V ULVT corner vs 0.8 V LVT corner
}

// AreaPowerResult mirrors Table II's rows.
type AreaPowerResult struct {
	AreaMM2         float64 // core area excluding L2 (mm²)
	FreqGHz         float64
	DynamicUWPerMHz float64
}

// AreaPowerModel evaluates the first-order model:
//   - area: a fixed scalar-core term plus SRAM area for the L1s, a window
//     term proportional to ROB size and issue width, and the vector unit
//     (the paper's 0.8 vs 0.6 mm² delta).
//   - frequency: 2.0 GHz at the 0.8 V LVT corner, 2.5 GHz with the 1.0 V
//     ULVT boost (Table II footnotes a/b).
//   - dynamic power: ~100 µW/MHz per core (Table II footnote c), scaled
//     weakly with structure sizes.
func AreaPowerModel(in AreaPowerInput) AreaPowerResult {
	area := 0.30                            // scalar datapath + FPU
	area += float64(in.L1KB) * 0.0012       // SRAM macros
	area += float64(in.ROBEntries) * 0.0004 // rename/window CAMs
	area += float64(in.IssueWidth) * 0.012  // issue/bypass network
	if in.WithVector {
		area += 0.20 // two 64-bit vector slices + VRF (§VII)
	}
	freq := 2.0
	if in.VoltageBoost {
		freq = 2.5
	}
	power := 82.0 + float64(in.L1KB)*0.18 + float64(in.ROBEntries)*0.02
	return AreaPowerResult{AreaMM2: area, FreqGHz: freq, DynamicUWPerMHz: power}
}

// XT910AreaPower returns the model's Table II row for the paper's default
// configuration (32/64KB L1, 192-entry ROB, 8-wide issue).
func XT910AreaPower(withVector, boost bool) AreaPowerResult {
	return AreaPowerModel(AreaPowerInput{
		WithVector:   withVector,
		L1KB:         128,
		ROBEntries:   192,
		IssueWidth:   8,
		VoltageBoost: boost,
	})
}
