package perf

import (
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %f", g)
	}
	if Geomean(nil) != 1 {
		t.Fatal("empty geomean must be 1")
	}
}

func TestResultFormat(t *testing.T) {
	r := Result{ID: "figX", Title: "demo", Rows: []Row{
		{Label: "a", Measured: 1.5, Paper: 1.4, Unit: "x"},
		{Label: "b", Measured: 2.5, Unit: "x"},
	}, Notes: []string{"hello"}}
	s := r.Format()
	for _, want := range []string{"figX", "demo", "1.500", "1.400", "—", "hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, s)
		}
	}
}

func TestTable2ModelMatchesPaper(t *testing.T) {
	// Table II: 0.8 mm² with vector, 0.6 mm² without; 2.0–2.5 GHz;
	// ~100 µW/MHz.
	withVec := XT910AreaPower(true, true)
	noVec := XT910AreaPower(false, false)
	check := func(name string, got, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.3f, want %.3f±%.2f", name, got, want, tol)
		}
	}
	check("area with vector", withVec.AreaMM2, 0.8, 0.1)
	check("area without vector", noVec.AreaMM2, 0.6, 0.1)
	check("boost frequency", withVec.FreqGHz, 2.5, 0.01)
	check("base frequency", noVec.FreqGHz, 2.0, 0.01)
	check("dynamic power", noVec.DynamicUWPerMHz, 100, 15)
}

func TestAreaScalesWithStructures(t *testing.T) {
	small := AreaPowerModel(AreaPowerInput{L1KB: 64, ROBEntries: 16, IssueWidth: 2})
	big := AreaPowerModel(AreaPowerInput{L1KB: 128, ROBEntries: 192, IssueWidth: 8, WithVector: true})
	if small.AreaMM2 >= big.AreaMM2 {
		t.Fatal("bigger machine must model bigger")
	}
}
