package asm

import (
	"strings"

	"xt910/isa"
)

// instruction assembles one mnemonic + operand list, expanding pseudo
// instructions first.
func (a *assembler) instruction(line srcLine, mnemonic string, ops []string) error {
	if done, err := a.pseudo(line, mnemonic, ops); done || err != nil {
		return err
	}
	op, ok := isa.ParseOp(mnemonic)
	if !ok {
		return a.errf(line, "unknown mnemonic %q", mnemonic)
	}
	in := isa.NewInst(op)

	switch op.Class() {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		return a.asmALU(line, op, in, ops)

	case isa.ClassBranch:
		if len(ops) != 3 {
			return a.errf(line, "branch needs rs1, rs2, target")
		}
		var err error
		if in.Rs1, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs2, err = a.reg(line, ops[1]); err != nil {
			return err
		}
		target, err := a.evalImm(line, ops[2])
		if err != nil {
			return err
		}
		in.Imm = target - int64(a.pc)
		return a.emitInst(line, in, false)

	case isa.ClassJump:
		return a.asmJump(line, op, in, ops)

	case isa.ClassLoad:
		return a.asmLoad(line, op, in, ops)

	case isa.ClassStore:
		return a.asmStore(line, op, in, ops)

	case isa.ClassAMO:
		return a.asmAMO(line, op, in, ops)

	case isa.ClassFPU:
		return a.asmFPU(line, op, in, ops)

	case isa.ClassCSR:
		return a.asmCSR(line, op, in, ops)

	case isa.ClassSys:
		if op == isa.SFENCEVMA && len(ops) == 2 {
			var err error
			if in.Rs1, err = a.reg(line, ops[0]); err != nil {
				return err
			}
			if in.Rs2, err = a.reg(line, ops[1]); err != nil {
				return err
			}
		}
		return a.emitInst(line, in, false)

	case isa.ClassVSet:
		return a.asmVSet(line, op, in, ops)

	case isa.ClassVALU, isa.ClassVFPU, isa.ClassVLoad, isa.ClassVStore:
		return a.asmVector(line, op, in, ops)

	case isa.ClassCacheOp:
		if len(ops) == 1 {
			var err error
			if in.Rs1, err = a.reg(line, ops[0]); err != nil {
				return err
			}
		}
		return a.emitInst(line, in, false)
	}
	return a.errf(line, "cannot assemble %v", op)
}

func (a *assembler) asmALU(line srcLine, op isa.Op, in isa.Inst, ops []string) error {
	var err error
	switch op {
	case isa.LUI, isa.AUIPC:
		if len(ops) != 2 {
			return a.errf(line, "%v needs rd, imm20", op)
		}
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		v, err := a.evalImm(line, ops[1])
		if err != nil {
			return err
		}
		in.Imm = int64(int32(uint32(v) << 12))
		return a.emitInst(line, in, a.opts.Compress)
	case isa.XADDSL:
		if len(ops) != 4 {
			return a.errf(line, "addsl needs rd, rs1, rs2, shift")
		}
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(line, ops[1]); err != nil {
			return err
		}
		if in.Rs2, err = a.reg(line, ops[2]); err != nil {
			return err
		}
		if in.Imm, err = a.evalImm(line, ops[3]); err != nil {
			return err
		}
		return a.emitInst(line, in, false)
	case isa.XEXT, isa.XEXTU:
		if len(ops) != 4 {
			return a.errf(line, "%v needs rd, rs1, msb, lsb", op)
		}
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(line, ops[1]); err != nil {
			return err
		}
		msb, err := a.evalImm(line, ops[2])
		if err != nil {
			return err
		}
		lsb, err := a.evalImm(line, ops[3])
		if err != nil {
			return err
		}
		in.Imm = msb<<6 | lsb
		return a.emitInst(line, in, false)
	case isa.XFF0, isa.XFF1, isa.XREV, isa.XTSTNBZ:
		if len(ops) != 2 {
			return a.errf(line, "%v needs rd, rs1", op)
		}
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(line, ops[1]); err != nil {
			return err
		}
		return a.emitInst(line, in, false)
	}
	if len(ops) != 3 {
		return a.errf(line, "%v needs 3 operands", op)
	}
	if in.Rd, err = a.reg(line, ops[0]); err != nil {
		return err
	}
	if in.Rs1, err = a.reg(line, ops[1]); err != nil {
		return err
	}
	// third operand: register or immediate
	if r, ok := isa.ParseReg(ops[2]); ok {
		in.Rs2 = r
	} else {
		if in.Imm, err = a.evalImm(line, ops[2]); err != nil {
			return err
		}
		switch op {
		case isa.ADDI, isa.SLTI, isa.SLTIU, isa.XORI, isa.ORI, isa.ANDI, isa.ADDIW:
			if in.Imm < -2048 || in.Imm > 2047 {
				return a.errf(line, "immediate %d out of 12-bit range", in.Imm)
			}
		}
	}
	return a.emitInst(line, in, a.opts.Compress)
}

func (a *assembler) asmJump(line srcLine, op isa.Op, in isa.Inst, ops []string) error {
	var err error
	if op == isa.JAL {
		switch len(ops) {
		case 1: // jal target → rd=ra
			in.Rd = isa.RA
			target, err := a.evalImm(line, ops[0])
			if err != nil {
				return err
			}
			in.Imm = target - int64(a.pc)
		case 2:
			if in.Rd, err = a.reg(line, ops[0]); err != nil {
				return err
			}
			target, err := a.evalImm(line, ops[1])
			if err != nil {
				return err
			}
			in.Imm = target - int64(a.pc)
		default:
			return a.errf(line, "jal needs [rd,] target")
		}
		return a.emitInst(line, in, false)
	}
	// jalr forms: "jalr rs1" | "jalr rd, rs1, imm" | "jalr rd, imm(rs1)"
	switch len(ops) {
	case 1:
		in.Rd = isa.RA
		if in.Rs1, err = a.reg(line, ops[0]); err != nil {
			return err
		}
	case 2:
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		if strings.Contains(ops[1], "(") {
			off, base, err := a.memOperand(line, ops[1])
			if err != nil {
				return err
			}
			in.Imm, in.Rs1 = off, base
		} else if in.Rs1, err = a.reg(line, ops[1]); err != nil {
			return err
		}
	case 3:
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(line, ops[1]); err != nil {
			return err
		}
		if in.Imm, err = a.evalImm(line, ops[2]); err != nil {
			return err
		}
	default:
		return a.errf(line, "bad jalr operands")
	}
	return a.emitInst(line, in, a.opts.Compress)
}

func (a *assembler) asmLoad(line srcLine, op isa.Op, in isa.Inst, ops []string) error {
	var err error
	switch op {
	case isa.XLRB, isa.XLRH, isa.XLRW, isa.XLRD, isa.XLURB, isa.XLURH, isa.XLURW:
		if len(ops) != 4 {
			return a.errf(line, "%v needs rd, rs1, rs2, shift", op)
		}
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(line, ops[1]); err != nil {
			return err
		}
		if in.Rs2, err = a.reg(line, ops[2]); err != nil {
			return err
		}
		if in.Imm, err = a.evalImm(line, ops[3]); err != nil {
			return err
		}
		return a.emitInst(line, in, false)
	}
	if len(ops) != 2 {
		return a.errf(line, "%v needs rd, off(rs1)", op)
	}
	if in.Rd, err = a.reg(line, ops[0]); err != nil {
		return err
	}
	off, base, err := a.memOperand(line, ops[1])
	if err != nil {
		return err
	}
	in.Imm, in.Rs1 = off, base
	return a.emitInst(line, in, a.opts.Compress)
}

func (a *assembler) asmStore(line srcLine, op isa.Op, in isa.Inst, ops []string) error {
	var err error
	switch op {
	case isa.XSRB, isa.XSRH, isa.XSRW, isa.XSRD:
		if len(ops) != 4 {
			return a.errf(line, "%v needs rdata, rs1, rs2, shift", op)
		}
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(line, ops[1]); err != nil {
			return err
		}
		if in.Rs2, err = a.reg(line, ops[2]); err != nil {
			return err
		}
		if in.Imm, err = a.evalImm(line, ops[3]); err != nil {
			return err
		}
		return a.emitInst(line, in, false)
	}
	if len(ops) != 2 {
		return a.errf(line, "%v needs rs2, off(rs1)", op)
	}
	if in.Rs2, err = a.reg(line, ops[0]); err != nil {
		return err
	}
	off, base, err := a.memOperand(line, ops[1])
	if err != nil {
		return err
	}
	in.Imm, in.Rs1 = off, base
	return a.emitInst(line, in, a.opts.Compress)
}

func (a *assembler) asmAMO(line srcLine, op isa.Op, in isa.Inst, ops []string) error {
	var err error
	if op == isa.LRW || op == isa.LRD {
		if len(ops) != 2 {
			return a.errf(line, "%v needs rd, (rs1)", op)
		}
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		_, base, err := a.memOperand(line, ops[1])
		if err != nil {
			return err
		}
		in.Rs1 = base
		return a.emitInst(line, in, false)
	}
	if len(ops) != 3 {
		return a.errf(line, "%v needs rd, rs2, (rs1)", op)
	}
	if in.Rd, err = a.reg(line, ops[0]); err != nil {
		return err
	}
	if in.Rs2, err = a.reg(line, ops[1]); err != nil {
		return err
	}
	_, base, err := a.memOperand(line, ops[2])
	if err != nil {
		return err
	}
	in.Rs1 = base
	return a.emitInst(line, in, false)
}

func (a *assembler) asmFPU(line srcLine, op isa.Op, in isa.Inst, ops []string) error {
	var err error
	regs := make([]isa.Reg, len(ops))
	for i, o := range ops {
		if regs[i], err = a.reg(line, o); err != nil {
			return err
		}
	}
	switch len(regs) {
	case 2:
		in.Rd, in.Rs1 = regs[0], regs[1]
	case 3:
		in.Rd, in.Rs1, in.Rs2 = regs[0], regs[1], regs[2]
	case 4:
		in.Rd, in.Rs1, in.Rs2, in.Rs3 = regs[0], regs[1], regs[2], regs[3]
	default:
		return a.errf(line, "bad FP operand count")
	}
	return a.emitInst(line, in, false)
}

func (a *assembler) asmCSR(line srcLine, op isa.Op, in isa.Inst, ops []string) error {
	if len(ops) != 3 {
		return a.errf(line, "%v needs rd, csr, src", op)
	}
	var err error
	if in.Rd, err = a.reg(line, ops[0]); err != nil {
		return err
	}
	csr, err := a.csrOperand(line, ops[1])
	if err != nil {
		return err
	}
	in.CSR = csr
	if op == isa.CSRRWI || op == isa.CSRRSI || op == isa.CSRRCI {
		if in.Imm, err = a.evalImm(line, ops[2]); err != nil {
			return err
		}
	} else if in.Rs1, err = a.reg(line, ops[2]); err != nil {
		return err
	}
	return a.emitInst(line, in, false)
}

func (a *assembler) csrOperand(line srcLine, s string) (uint16, error) {
	s = strings.TrimSpace(s)
	if n, ok := isa.ParseCSR(s); ok {
		return n, nil
	}
	v, err := a.evalImm(line, s)
	if err != nil {
		return 0, a.errf(line, "bad CSR %q", s)
	}
	return uint16(v), nil
}

func (a *assembler) asmVSet(line srcLine, op isa.Op, in isa.Inst, ops []string) error {
	var err error
	if len(ops) < 2 {
		return a.errf(line, "vsetvl/vsetvli need at least rd, rs1")
	}
	if in.Rd, err = a.reg(line, ops[0]); err != nil {
		return err
	}
	if in.Rs1, err = a.reg(line, ops[1]); err != nil {
		return err
	}
	if op == isa.VSETVL {
		if len(ops) != 3 {
			return a.errf(line, "vsetvl needs rd, rs1, rs2")
		}
		if in.Rs2, err = a.reg(line, ops[2]); err != nil {
			return err
		}
		return a.emitInst(line, in, false)
	}
	vt, err := isa.ParseVTypeArgs(ops[2:])
	if err != nil {
		return a.errf(line, "%v", err)
	}
	in.Imm = int64(vt)
	return a.emitInst(line, in, false)
}

// asmVector handles the uniform operand order this toolchain uses:
// .vv/.vi forms are "op vd, vs2, vs1/imm"; .vx forms are "op vd, vs2, rs1";
// loads are "op vd, (rs1)[, rs2stride]", stores "op vs, (rs1)[, rs2stride]".
func (a *assembler) asmVector(line srcLine, op isa.Op, in isa.Inst, ops []string) error {
	var err error
	// a trailing "v0.t" operand marks a masked form
	if n := len(ops); n > 0 && ops[n-1] == "v0.t" {
		in.Masked = true
		ops = ops[:n-1]
	}
	switch op {
	case isa.VLE, isa.VLSE, isa.VLXEI:
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		_, base, err := a.memOperand(line, ops[1])
		if err != nil {
			return err
		}
		in.Rs1 = base
		if op != isa.VLE {
			if len(ops) != 3 {
				return a.errf(line, "%v needs vd, (rs1), rs2", op)
			}
			if in.Rs2, err = a.reg(line, ops[2]); err != nil {
				return err
			}
			// loads keep the vector dest in Rd; the stride register (vlse)
			// or index vector (vlxei) goes in Rs2.
		}
		return a.emitInst(line, in, false)
	case isa.VSE, isa.VSSE, isa.VSXEI:
		if in.Rs2, err = a.reg(line, ops[0]); err != nil { // data vector
			return err
		}
		_, base, err := a.memOperand(line, ops[1])
		if err != nil {
			return err
		}
		in.Rs1 = base
		if op != isa.VSE {
			if len(ops) != 3 {
				return a.errf(line, "%v needs vs, (rs1), rs2", op)
			}
			if in.Rs3, err = a.reg(line, ops[2]); err != nil {
				return err
			}
		}
		return a.emitInst(line, in, false)
	case isa.VMVXS: // vmv.x.s rd, vs2
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs2, err = a.reg(line, ops[1]); err != nil {
			return err
		}
		return a.emitInst(line, in, false)
	case isa.VMVSX, isa.VMVVX: // vmv.s.x / vmv.v.x vd, rs1
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(line, ops[1]); err != nil {
			return err
		}
		return a.emitInst(line, in, false)
	case isa.VMVVV: // vmv.v.v vd, vs1
		if in.Rd, err = a.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(line, ops[1]); err != nil {
			return err
		}
		return a.emitInst(line, in, false)
	}
	if len(ops) != 3 {
		return a.errf(line, "%v needs vd, vs2, vs1/rs1/imm", op)
	}
	if in.Rd, err = a.reg(line, ops[0]); err != nil {
		return err
	}
	if in.Rs2, err = a.reg(line, ops[1]); err != nil {
		return err
	}
	if op == isa.VADDVI {
		if in.Imm, err = a.evalImm(line, ops[2]); err != nil {
			return err
		}
		return a.emitInst(line, in, false)
	}
	if in.Rs1, err = a.reg(line, ops[2]); err != nil {
		return err
	}
	return a.emitInst(line, in, false)
}
