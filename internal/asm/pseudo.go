package asm

import (
	"strings"

	"xt910/isa"
)

// pseudo expands the standard RISC-V pseudo-instructions. It returns
// done=true when the mnemonic was handled.
func (a *assembler) pseudo(line srcLine, mnemonic string, ops []string) (done bool, err error) {
	emit := func(op isa.Op, build func(*isa.Inst) error, compress bool) error {
		in := isa.NewInst(op)
		if build != nil {
			if err := build(&in); err != nil {
				return err
			}
		}
		return a.emitInst(line, in, compress && a.opts.Compress)
	}
	reg := func(i int) (isa.Reg, error) { return a.reg(line, ops[i]) }
	need := func(n int) error {
		if len(ops) != n {
			return a.errf(line, "%s needs %d operands", mnemonic, n)
		}
		return nil
	}

	switch mnemonic {
	case "nop":
		return true, emit(isa.ADDI, func(in *isa.Inst) error {
			in.Rd, in.Rs1 = isa.Zero, isa.Zero
			return nil
		}, true)

	case "li", "la":
		if err := need(2); err != nil {
			return true, err
		}
		rd, err := reg(0)
		if err != nil {
			return true, err
		}
		a.exprSym = false
		v, err := a.evalImm(line, ops[1])
		if err != nil {
			return true, err
		}
		if a.exprSym {
			// Label-derived values use a fixed two-instruction sequence so
			// pass-1 sizing never depends on the (forward) value.
			return true, a.liFixed(line, rd, v)
		}
		return true, a.li(line, rd, v)

	case "mv":
		if err := need(2); err != nil {
			return true, err
		}
		return true, emit(isa.ADDI, func(in *isa.Inst) error {
			var e error
			if in.Rd, e = reg(0); e != nil {
				return e
			}
			in.Rs1, e = reg(1)
			return e
		}, true)

	case "not":
		return true, emit(isa.XORI, func(in *isa.Inst) error {
			var e error
			if in.Rd, e = reg(0); e != nil {
				return e
			}
			in.Rs1, e = reg(1)
			in.Imm = -1
			return e
		}, false)

	case "neg", "negw":
		op := isa.SUB
		if mnemonic == "negw" {
			op = isa.SUBW
		}
		return true, emit(op, func(in *isa.Inst) error {
			var e error
			if in.Rd, e = reg(0); e != nil {
				return e
			}
			in.Rs1 = isa.Zero
			in.Rs2, e = reg(1)
			return e
		}, false)

	case "sext.w":
		return true, emit(isa.ADDIW, func(in *isa.Inst) error {
			var e error
			if in.Rd, e = reg(0); e != nil {
				return e
			}
			in.Rs1, e = reg(1)
			return e
		}, true)

	case "zext.w":
		// no single base instruction: slli+srli pair (the gap §VIII-A's
		// custom lurw/lurd extension addresses for address generation)
		rd, err := reg(0)
		if err != nil {
			return true, err
		}
		rs, err := reg(1)
		if err != nil {
			return true, err
		}
		in := isa.NewInst(isa.SLLI)
		in.Rd, in.Rs1, in.Imm = rd, rs, 32
		if err := a.emitInst(line, in, a.opts.Compress); err != nil {
			return true, err
		}
		in = isa.NewInst(isa.SRLI)
		in.Rd, in.Rs1, in.Imm = rd, rd, 32
		return true, a.emitInst(line, in, a.opts.Compress)

	case "seqz":
		return true, emit(isa.SLTIU, func(in *isa.Inst) error {
			var e error
			if in.Rd, e = reg(0); e != nil {
				return e
			}
			in.Rs1, e = reg(1)
			in.Imm = 1
			return e
		}, false)

	case "snez":
		return true, emit(isa.SLTU, func(in *isa.Inst) error {
			var e error
			if in.Rd, e = reg(0); e != nil {
				return e
			}
			in.Rs1 = isa.Zero
			in.Rs2, e = reg(1)
			return e
		}, false)

	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		if err := need(2); err != nil {
			return true, err
		}
		rs, err := reg(0)
		if err != nil {
			return true, err
		}
		target, err := a.evalImm(line, ops[1])
		if err != nil {
			return true, err
		}
		in := isa.NewInst(isa.BEQ)
		switch mnemonic {
		case "beqz":
			in.Op, in.Rs1, in.Rs2 = isa.BEQ, rs, isa.Zero
		case "bnez":
			in.Op, in.Rs1, in.Rs2 = isa.BNE, rs, isa.Zero
		case "blez":
			in.Op, in.Rs1, in.Rs2 = isa.BGE, isa.Zero, rs
		case "bgez":
			in.Op, in.Rs1, in.Rs2 = isa.BGE, rs, isa.Zero
		case "bltz":
			in.Op, in.Rs1, in.Rs2 = isa.BLT, rs, isa.Zero
		case "bgtz":
			in.Op, in.Rs1, in.Rs2 = isa.BLT, isa.Zero, rs
		}
		in.Imm = target - int64(a.pc)
		return true, a.emitInst(line, in, false)

	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return true, err
		}
		rs1, err := reg(0)
		if err != nil {
			return true, err
		}
		rs2, err := reg(1)
		if err != nil {
			return true, err
		}
		target, err := a.evalImm(line, ops[2])
		if err != nil {
			return true, err
		}
		var op isa.Op
		switch mnemonic {
		case "bgt":
			op = isa.BLT
		case "ble":
			op = isa.BGE
		case "bgtu":
			op = isa.BLTU
		case "bleu":
			op = isa.BGEU
		}
		in := isa.NewInst(op)
		in.Rs1, in.Rs2 = rs2, rs1 // swapped operands
		in.Imm = target - int64(a.pc)
		return true, a.emitInst(line, in, false)

	case "j":
		if err := need(1); err != nil {
			return true, err
		}
		target, err := a.evalImm(line, ops[0])
		if err != nil {
			return true, err
		}
		in := isa.NewInst(isa.JAL)
		in.Rd = isa.Zero
		in.Imm = target - int64(a.pc)
		return true, a.emitInst(line, in, false)

	case "jr":
		if err := need(1); err != nil {
			return true, err
		}
		rs, err := reg(0)
		if err != nil {
			return true, err
		}
		in := isa.NewInst(isa.JALR)
		in.Rd, in.Rs1, in.Imm = isa.Zero, rs, 0
		return true, a.emitInst(line, in, a.opts.Compress)

	case "call":
		if err := need(1); err != nil {
			return true, err
		}
		target, err := a.evalImm(line, ops[0])
		if err != nil {
			return true, err
		}
		in := isa.NewInst(isa.JAL)
		in.Rd = isa.RA
		in.Imm = target - int64(a.pc)
		return true, a.emitInst(line, in, false)

	case "tail":
		if err := need(1); err != nil {
			return true, err
		}
		target, err := a.evalImm(line, ops[0])
		if err != nil {
			return true, err
		}
		in := isa.NewInst(isa.JAL)
		in.Rd = isa.Zero
		in.Imm = target - int64(a.pc)
		return true, a.emitInst(line, in, false)

	case "ret":
		in := isa.NewInst(isa.JALR)
		in.Rd, in.Rs1, in.Imm = isa.Zero, isa.RA, 0
		return true, a.emitInst(line, in, a.opts.Compress)

	case "csrr":
		if err := need(2); err != nil {
			return true, err
		}
		rd, err := reg(0)
		if err != nil {
			return true, err
		}
		csr, err := a.csrOperand(line, ops[1])
		if err != nil {
			return true, err
		}
		in := isa.NewInst(isa.CSRRS)
		in.Rd, in.Rs1, in.CSR = rd, isa.Zero, csr
		return true, a.emitInst(line, in, false)

	case "csrw":
		if err := need(2); err != nil {
			return true, err
		}
		csr, err := a.csrOperand(line, ops[0])
		if err != nil {
			return true, err
		}
		rs, err := reg(1)
		if err != nil {
			return true, err
		}
		in := isa.NewInst(isa.CSRRW)
		in.Rd, in.Rs1, in.CSR = isa.Zero, rs, csr
		return true, a.emitInst(line, in, false)

	case "fmv.s", "fmv.d", "fneg.s", "fneg.d", "fabs.s", "fabs.d":
		if err := need(2); err != nil {
			return true, err
		}
		rd, err := reg(0)
		if err != nil {
			return true, err
		}
		rs, err := reg(1)
		if err != nil {
			return true, err
		}
		var op isa.Op
		switch mnemonic {
		case "fmv.s":
			op = isa.FSGNJS
		case "fmv.d":
			op = isa.FSGNJD
		case "fneg.s":
			op = isa.FSGNJNS
		case "fneg.d":
			op = isa.FSGNJND
		case "fabs.s":
			op = isa.FSGNJXS
		case "fabs.d":
			op = isa.FSGNJXD
		}
		in := isa.NewInst(op)
		in.Rd, in.Rs1, in.Rs2 = rd, rs, rs
		return true, a.emitInst(line, in, false)
	}
	_ = strings.TrimSpace
	return false, nil
}

// liFixed emits the fixed-size lui+addiw pair used for label addresses
// (which must fit in 32 bits — the model's physical address space does).
func (a *assembler) liFixed(line srcLine, rd isa.Reg, v int64) error {
	if v < -(1<<31) || v >= 1<<31 {
		return a.errf(line, "label value %#x out of la range", v)
	}
	lo := v << 52 >> 52
	hi := v - lo
	in := isa.NewInst(isa.LUI)
	in.Rd, in.Imm = rd, int64(int32(hi))
	if err := a.emitInst(line, in, false); err != nil {
		return err
	}
	in = isa.NewInst(isa.ADDIW)
	in.Rd, in.Rs1, in.Imm = rd, rd, lo
	return a.emitInst(line, in, false)
}

// li materializes an arbitrary 64-bit constant, mirroring the GNU assembler's
// expansion strategy.
func (a *assembler) li(line srcLine, rd isa.Reg, v int64) error {
	// 12-bit immediate
	if v >= -2048 && v < 2048 {
		in := isa.NewInst(isa.ADDI)
		in.Rd, in.Rs1, in.Imm = rd, isa.Zero, v
		return a.emitInst(line, in, a.opts.Compress)
	}
	// 32-bit: lui (+ addiw)
	if v >= -(1<<31) && v < 1<<31 {
		lo := v << 52 >> 52
		hi := v - lo
		in := isa.NewInst(isa.LUI)
		in.Rd, in.Imm = rd, int64(int32(hi))
		if err := a.emitInst(line, in, a.opts.Compress); err != nil {
			return err
		}
		if lo != 0 {
			in = isa.NewInst(isa.ADDIW)
			in.Rd, in.Rs1, in.Imm = rd, rd, lo
			return a.emitInst(line, in, a.opts.Compress)
		}
		return nil
	}
	// 64-bit: build upper part recursively, shift, add low bits
	lo := v << 52 >> 52
	hi := v - lo
	shift := 12
	for hi&(1<<uint(shift)) == 0 && shift < 63 {
		shift++
	}
	if err := a.li(line, rd, hi>>uint(shift)); err != nil {
		return err
	}
	in := isa.NewInst(isa.SLLI)
	in.Rd, in.Rs1, in.Imm = rd, rd, int64(shift)
	if err := a.emitInst(line, in, a.opts.Compress); err != nil {
		return err
	}
	if lo != 0 {
		in = isa.NewInst(isa.ADDI)
		in.Rd, in.Rs1, in.Imm = rd, rd, lo
		return a.emitInst(line, in, a.opts.Compress)
	}
	return nil
}
