// Package asm is the two-pass assembler of the XT-910 toolchain model. It
// accepts the GNU-flavoured subset the benchmark kernels are written in:
// labels, data directives, the standard pseudo-instructions (li, la, call,
// beqz, …), the vector 0.7.1 mnemonics, and the XT-910 custom extensions.
// With Compress enabled it emits RVC encodings where a compressed form
// exists, reproducing the code density the XT-910 front end is built around.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"xt910/internal/mem"
	"xt910/isa"
)

// Options configures assembly.
type Options struct {
	// Base is the load/link address of the first byte (default 0x1000).
	Base uint64
	// Compress enables RVC auto-compression for instructions that do not
	// reference labels (label-relative instructions keep fixed 4-byte forms
	// so that pass-1 sizing is exact).
	Compress bool
}

// Program is an assembled image.
type Program struct {
	Base    uint64
	Data    []byte
	Entry   uint64
	Symbols map[string]uint64
	// NumInsts is the number of machine instructions emitted (the §IX
	// toolchain comparison counts static instructions).
	NumInsts int
}

// LoadInto copies the image into physical memory.
func (p *Program) LoadInto(m *mem.Memory) {
	m.StoreBytes(p.Base, p.Data)
}

// End returns the first address past the image.
func (p *Program) End() uint64 { return p.Base + uint64(len(p.Data)) }

// Assemble assembles source text.
func Assemble(src string, opts Options) (*Program, error) {
	if opts.Base == 0 {
		opts.Base = 0x1000
	}
	a := &assembler{
		opts:    opts,
		symbols: map[string]uint64{},
		equs:    map[string]int64{},
	}
	lines := splitLines(src)
	// Pass 1: compute sizes and label addresses.
	if err := a.scan(lines, true); err != nil {
		return nil, err
	}
	// Pass 2: emit bytes.
	a.out = a.out[:0]
	a.numInsts = 0
	if err := a.scan(lines, false); err != nil {
		return nil, err
	}
	entry := opts.Base
	if e, ok := a.symbols["_start"]; ok {
		entry = e
	}
	return &Program{
		Base:     opts.Base,
		Data:     append([]byte(nil), a.out...),
		Entry:    entry,
		Symbols:  a.symbols,
		NumInsts: a.numInsts,
	}, nil
}

// MustAssemble panics on error; for known-good embedded kernels.
func MustAssemble(src string, opts Options) *Program {
	p, err := Assemble(src, opts)
	if err != nil {
		panic(err)
	}
	return p
}

type srcLine struct {
	num  int
	text string
}

func splitLines(src string) []srcLine {
	raw := strings.Split(src, "\n")
	out := make([]srcLine, 0, len(raw))
	for i, l := range raw {
		if idx := strings.IndexAny(l, "#"); idx >= 0 {
			l = l[:idx]
		}
		if idx := strings.Index(l, "//"); idx >= 0 {
			l = l[:idx]
		}
		l = strings.TrimSpace(l)
		if l != "" {
			out = append(out, srcLine{num: i + 1, text: l})
		}
	}
	return out
}

type assembler struct {
	opts     Options
	symbols  map[string]uint64
	equs     map[string]int64
	out      []byte
	pc       uint64
	pass1    bool
	numInsts int
	// exprSym is set by evalTerm when the last expression referenced a label
	// (or a pass-1 forward reference). li/la use it to pick a fixed-size
	// materialization so both passes agree on layout.
	exprSym bool
}

func (a *assembler) errf(line srcLine, format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s: %s", line.num, line.text, fmt.Sprintf(format, args...))
}

func (a *assembler) scan(lines []srcLine, pass1 bool) error {
	a.pass1 = pass1
	a.pc = a.opts.Base
	for _, line := range lines {
		text := line.text
		// labels (possibly several on one line)
		for {
			idx := strings.Index(text, ":")
			if idx < 0 || strings.ContainsAny(text[:idx], " \t\"") {
				break
			}
			name := strings.TrimSpace(text[:idx])
			if pass1 {
				if _, dup := a.symbols[name]; dup {
					return a.errf(line, "duplicate label %q", name)
				}
				a.symbols[name] = a.pc
			}
			text = strings.TrimSpace(text[idx+1:])
		}
		if text == "" {
			continue
		}
		if err := a.statement(line, text); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) emit(b ...byte) {
	if !a.pass1 {
		a.out = append(a.out, b...)
	}
	a.pc += uint64(len(b))
}

func (a *assembler) emit32(v uint32) {
	a.numInsts++
	a.emit(byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (a *assembler) emit16(v uint16) {
	a.numInsts++
	a.emit(byte(v), byte(v>>8))
}

// emitInst encodes one instruction, compressing when allowed.
func (a *assembler) emitInst(line srcLine, in isa.Inst, mayCompress bool) error {
	if a.opts.Compress && mayCompress {
		if c, ok := isa.Compress(in); ok {
			a.emit16(c)
			return nil
		}
	}
	raw, err := isa.Encode(in)
	if err != nil {
		return a.errf(line, "%v", err)
	}
	a.emit32(raw)
	return nil
}

func (a *assembler) statement(line srcLine, text string) error {
	fields := strings.Fields(text)
	mnemonic := strings.ToLower(fields[0])
	rest := strings.TrimSpace(text[len(fields[0]):])

	if strings.HasPrefix(mnemonic, ".") {
		return a.directive(line, mnemonic, rest)
	}
	operands := splitOperands(rest)
	return a.instruction(line, mnemonic, operands)
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func (a *assembler) directive(line srcLine, dir, rest string) error {
	args := splitOperands(rest)
	switch dir {
	case ".org":
		v, err := a.evalImm(line, args[0])
		if err != nil {
			return err
		}
		target := uint64(v)
		if target < a.pc {
			return a.errf(line, ".org moves backwards (pc=%#x)", a.pc)
		}
		for a.pc < target {
			a.emit(0)
		}
	case ".align":
		v, err := a.evalImm(line, args[0])
		if err != nil {
			return err
		}
		align := uint64(1) << uint(v)
		for a.pc%align != 0 {
			a.emit(0)
		}
	case ".byte", ".half", ".word", ".dword", ".quad":
		size := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".dword": 8, ".quad": 8}[dir]
		for _, arg := range args {
			v, err := a.evalImm(line, arg)
			if err != nil {
				return err
			}
			var b [8]byte
			for i := 0; i < size; i++ {
				b[i] = byte(uint64(v) >> (8 * i))
			}
			a.emit(b[:size]...)
		}
	case ".space", ".zero":
		v, err := a.evalImm(line, args[0])
		if err != nil {
			return err
		}
		for i := int64(0); i < v; i++ {
			a.emit(0)
		}
	case ".ascii", ".asciz", ".string":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return a.errf(line, "bad string literal")
		}
		a.emit([]byte(s)...)
		if dir != ".ascii" {
			a.emit(0)
		}
	case ".equ", ".set":
		if len(args) != 2 {
			return a.errf(line, ".equ needs name, value")
		}
		v, err := a.evalImm(line, args[1])
		if err != nil {
			return err
		}
		a.equs[args[0]] = v
	case ".global", ".globl", ".section", ".text", ".data", ".option", ".type", ".size":
		// accepted and ignored: flat single-section images
	default:
		return a.errf(line, "unknown directive %s", dir)
	}
	return nil
}

// evalImm evaluates an integer expression: decimal/hex literals, symbols,
// .equ constants, with +, - and * left-to-right.
func (a *assembler) evalImm(line srcLine, s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf(line, "empty expression")
	}
	// tokenize on +,-,* keeping operators; handle leading unary minus
	total := int64(0)
	op := byte('+')
	i := 0
	for i < len(s) {
		// read a term
		j := i
		if s[j] == '-' || s[j] == '+' {
			j++
		}
		for j < len(s) && !strings.ContainsRune("+-*", rune(s[j])) {
			j++
		}
		term := strings.TrimSpace(s[i:j])
		v, err := a.evalTerm(line, term)
		if err != nil {
			return 0, err
		}
		switch op {
		case '+':
			total += v
		case '-':
			total -= v
		case '*':
			total *= v
		}
		if j < len(s) {
			op = s[j]
			j++
		}
		i = j
	}
	return total, nil
}

func (a *assembler) evalTerm(line srcLine, t string) (int64, error) {
	if t == "" {
		return 0, a.errf(line, "empty term")
	}
	neg := false
	if t[0] == '-' {
		neg, t = true, strings.TrimSpace(t[1:])
	} else if t[0] == '+' {
		t = strings.TrimSpace(t[1:])
	}
	var v int64
	if t == "." {
		v = int64(a.pc)
	} else if n, err := strconv.ParseInt(t, 0, 64); err == nil {
		v = n
	} else if n, err := strconv.ParseUint(t, 0, 64); err == nil {
		v = int64(n)
	} else if c, ok := a.equs[t]; ok {
		v = c
	} else if sym, ok := a.symbols[t]; ok {
		v = int64(sym)
		a.exprSym = true
	} else if a.pass1 {
		v = 0 // forward reference; resolved in pass 2
		a.exprSym = true
	} else {
		return 0, a.errf(line, "undefined symbol %q", t)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (a *assembler) reg(line srcLine, s string) (isa.Reg, error) {
	r, ok := isa.ParseReg(strings.TrimSpace(s))
	if !ok {
		return 0, a.errf(line, "bad register %q", s)
	}
	return r, nil
}

// memOperand parses "imm(reg)" or "(reg)" or "label" (absolute, rare).
func (a *assembler) memOperand(line srcLine, s string) (off int64, base isa.Reg, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf(line, "bad memory operand %q", s)
	}
	base, err = a.reg(line, s[open+1:len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	if open > 0 {
		off, err = a.evalImm(line, s[:open])
		if err != nil {
			return 0, 0, err
		}
	}
	return off, base, nil
}
