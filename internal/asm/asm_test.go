package asm

import (
	"math/rand"
	"testing"

	"xt910/isa"
)

func decodeAll(t *testing.T, p *Program) []isa.Inst {
	t.Helper()
	var out []isa.Inst
	for off := 0; off < len(p.Data); {
		lo := uint16(p.Data[off]) | uint16(p.Data[off+1])<<8
		if lo&3 == 3 {
			raw := uint32(lo) | uint32(p.Data[off+2])<<16 | uint32(p.Data[off+3])<<24
			out = append(out, isa.Decode(raw))
			off += 4
		} else {
			out = append(out, isa.Decode16(lo))
			off += 2
		}
	}
	return out
}

func TestBasicProgram(t *testing.T) {
	src := `
_start:
    li   a0, 42
    li   a1, 0x12345678
    add  a2, a0, a1
    sd   a2, 0(sp)
    ld   a3, 0(sp)
    beq  a2, a3, ok
    ebreak
ok:
    ret
`
	p, err := Assemble(src, Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if insts[0].Op != isa.ADDI || insts[0].Imm != 42 {
		t.Fatalf("li expansion: %v", insts[0])
	}
	if p.Entry != 0x1000 {
		t.Fatalf("entry = %#x", p.Entry)
	}
	for _, in := range insts {
		if in.Op == isa.ILLEGAL {
			t.Fatalf("illegal instruction in output")
		}
	}
}

func TestBranchTargets(t *testing.T) {
	src := `
_start:
    beq a0, a1, fwd
    nop
fwd:
    bne a0, a1, _start
`
	p, err := Assemble(src, Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if insts[0].Imm != 8 {
		t.Fatalf("forward branch imm = %d, want 8", insts[0].Imm)
	}
	if insts[2].Imm != -8 {
		t.Fatalf("backward branch imm = %d, want -8", insts[2].Imm)
	}
}

func TestLiMaterialization(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	values := []int64{0, 1, -1, 2047, -2048, 2048, 1 << 20, -(1 << 20),
		1<<31 - 1, -(1 << 31), 1 << 31, 1 << 40, -(1 << 40), 0x7FFFFFFFFFFFFFFF, -0x8000000000000000}
	for i := 0; i < 50; i++ {
		values = append(values, rng.Int63()-rng.Int63())
	}
	for _, v := range values {
		p, err := Assemble("li a0, "+itoa(v), Options{})
		if err != nil {
			t.Fatalf("li %d: %v", v, err)
		}
		// interpret the expansion
		var reg int64
		for _, in := range decodeAll(t, p) {
			switch in.Op {
			case isa.ADDI:
				if in.Rs1 == isa.Zero {
					reg = in.Imm
				} else {
					reg += in.Imm
				}
			case isa.LUI:
				reg = in.Imm
			case isa.ADDIW:
				reg = int64(int32(reg + in.Imm))
			case isa.SLLI:
				reg <<= uint(in.Imm)
			default:
				t.Fatalf("unexpected op %v in li expansion of %d", in.Op, v)
			}
		}
		if reg != v {
			t.Fatalf("li %d materialized %d", v, reg)
		}
	}
}

func itoa(v int64) string {
	// strconv is already imported by the package; use simple formatting here
	if v >= 0 {
		return uitoa(uint64(v))
	}
	return "-" + uitoa(uint64(-v))
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestDataDirectives(t *testing.T) {
	src := `
_start:
    nop
data:
    .dword 0x1122334455667788
    .word 0xAABBCCDD
    .half 0x1234
    .byte 0xFF
    .asciz "hi"
    .align 3
aligned:
    .dword 7
`
	p, err := Assemble(src, Options{Base: 0x1000, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	d := p.Symbols["data"] - p.Base
	if p.Data[d] != 0x88 || p.Data[d+7] != 0x11 {
		t.Fatalf("dword bytes wrong: % x", p.Data[d:d+8])
	}
	al := p.Symbols["aligned"]
	if al%8 != 0 {
		t.Fatalf("aligned symbol %#x not 8-aligned", al)
	}
}

func TestCompression(t *testing.T) {
	src := `
_start:
    addi a0, a0, 1
    add  a1, a1, a0
    ld   a2, 8(a0)
    sd   a2, 16(a0)
`
	big, err := Assemble(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Assemble(src, Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Data) >= len(big.Data) {
		t.Fatalf("compression did not shrink image: %d vs %d", len(small.Data), len(big.Data))
	}
	if len(small.Data) != 8 { // all four should compress to 2 bytes each
		t.Fatalf("expected 8 bytes, got %d", len(small.Data))
	}
}

func TestPseudoInstructions(t *testing.T) {
	src := `
_start:
    mv   a0, a1
    not  a2, a3
    neg  a4, a5
    seqz a6, a7
    snez t0, t1
    sext.w t2, t3
    beqz a0, done
    bnez a0, done
    bgt  a0, a1, done
    ble  a0, a1, done
    j    done
    call done
    jr   ra
done:
    ret
`
	p, err := Assemble(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range decodeAll(t, p) {
		if in.Op == isa.ILLEGAL {
			t.Fatal("illegal instruction from pseudo expansion")
		}
	}
}

func TestVectorSyntax(t *testing.T) {
	src := `
_start:
    vsetvli t0, a0, e32, m2
    vle.v   v0, (a1)
    vle.v   v2, (a2)
    vadd.vv v4, v0, v2
    vmacc.vv v6, v0, v2
    vse.v   v4, (a3)
    vmv.x.s a4, v4
`
	p, err := Assemble(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if insts[0].Op != isa.VSETVLI || isa.VType(insts[0].Imm).SEW() != 32 {
		t.Fatalf("vsetvli: %+v", insts[0])
	}
	if insts[3].Op != isa.VADDVV || insts[3].Rd != isa.V(4) || insts[3].Rs2 != isa.V(0) {
		t.Fatalf("vadd.vv: %+v", insts[3])
	}
}

func TestCustomExtSyntax(t *testing.T) {
	src := `
_start:
    lrw   a0, a1, a2, 2
    srd   a3, a4, a5, 3
    addsl a0, a1, a2, 1
    ext   a0, a1, 15, 8
    extu  a0, a1, 15, 8
    ff1   a0, a1
    rev   a2, a3
    mula  a4, a5, a6
    tlbi.asid a0
    dcache.call
`
	p, err := Assemble(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if insts[0].Op != isa.XLRW || insts[0].Imm != 2 {
		t.Fatalf("lrw: %+v", insts[0])
	}
	if insts[3].Op != isa.XEXT || insts[3].Imm != 15<<6|8 {
		t.Fatalf("ext: %+v", insts[3])
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{
		"bogus a0, a1",
		"addi a0, a0, undefined_symbol_xyz",
		"lw a0, a1",  // bad memory operand
		"dup:\ndup:", // duplicate label
	} {
		if _, err := Assemble(src, Options{}); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestEquAndExpr(t *testing.T) {
	src := `
.equ N, 64
_start:
    li a0, N*8
    li a1, N+1
    li a2, N-1
`
	p, err := Assemble(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if insts[0].Imm != 512 || insts[1].Imm != 65 || insts[2].Imm != 63 {
		t.Fatalf("expr values: %d %d %d", insts[0].Imm, insts[1].Imm, insts[2].Imm)
	}
}

// TestDisasmReparses: the disassembler's output for data-path instructions
// must re-assemble to the identical instruction — the contract behind the
// `xtasm -d` listing. Control-flow ops are excluded (their printed immediate
// is a pc-relative offset, while assembly source names absolute targets).
func TestDisasmReparses(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ops := []isa.Op{
		isa.ADDI, isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.AND, isa.XORI,
		isa.SLLI, isa.SRAI, isa.ADDIW, isa.SUBW, isa.LD, isa.LW, isa.LBU,
		isa.SD, isa.SW, isa.SB, isa.FLD, isa.FSD, isa.FADDD, isa.FMULD,
		isa.FMADDD, isa.FCVTLD, isa.CSRRW, isa.CSRRS, isa.AMOADDD, isa.LRD,
		isa.SCD, isa.XLRW, isa.XSRD, isa.XADDSL, isa.XEXT, isa.XEXTU,
		isa.XFF1, isa.XREV, isa.XMULA, isa.XSRRI, isa.VSETVLI, isa.VADDVV,
		isa.VMACCVV, isa.VMVXS, isa.VLE, isa.VSE,
	}
	for _, op := range ops {
		for trial := 0; trial < 32; trial++ {
			in, ok := randInstAsm(rng, op)
			if !ok {
				continue
			}
			text := in.String()
			p, err := Assemble("_start:\n    "+text+"\n", Options{Base: 0})
			if err != nil {
				t.Fatalf("%v: %q does not re-assemble: %v", op, text, err)
			}
			got := decodeAll(t, p)
			if len(got) != 1 {
				t.Fatalf("%v: %q assembled to %d instructions", op, text, len(got))
			}
			g := got[0]
			g.Size = in.Size
			if g.Op != in.Op || g.Rd != in.Rd || g.Rs1 != in.Rs1 ||
				g.Rs2 != in.Rs2 || g.Rs3 != in.Rs3 || g.Imm != in.Imm || g.CSR != in.CSR {
				t.Fatalf("%v: %q round trip mismatch\n in: %+v\nout: %+v", op, text, in, g)
			}
		}
	}
}

// randInstAsm builds a random instruction whose printed form is re-parseable
// (CSR numbers limited to named CSRs, etc.).
func randInstAsm(rng *rand.Rand, op isa.Op) (isa.Inst, bool) {
	in := isa.NewInst(op)
	rx := func() isa.Reg { return isa.X(rng.Intn(31) + 1) }
	rf := func() isa.Reg { return isa.F(rng.Intn(32)) }
	rv := func() isa.Reg { return isa.V(rng.Intn(32)) }
	imm12 := func() int64 { return int64(rng.Intn(4096) - 2048) }
	switch op {
	case isa.ADDI, isa.XORI, isa.ADDIW:
		in.Rd, in.Rs1, in.Imm = rx(), rx(), imm12()
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.AND, isa.SUBW:
		in.Rd, in.Rs1, in.Rs2 = rx(), rx(), rx()
	case isa.SLLI, isa.SRAI, isa.XSRRI:
		in.Rd, in.Rs1, in.Imm = rx(), rx(), int64(rng.Intn(63)+1)
	case isa.LD, isa.LW, isa.LBU, isa.FLD:
		in.Rd, in.Rs1, in.Imm = rx(), rx(), imm12()
		if op == isa.FLD {
			in.Rd = rf()
		}
	case isa.SD, isa.SW, isa.SB, isa.FSD:
		in.Rs1, in.Rs2, in.Imm = rx(), rx(), imm12()
		if op == isa.FSD {
			in.Rs2 = rf()
		}
	case isa.FADDD, isa.FMULD:
		in.Rd, in.Rs1, in.Rs2 = rf(), rf(), rf()
	case isa.FMADDD:
		in.Rd, in.Rs1, in.Rs2, in.Rs3 = rf(), rf(), rf(), rf()
	case isa.FCVTLD:
		in.Rd, in.Rs1 = rx(), rf()
	case isa.CSRRW, isa.CSRRS:
		named := []uint16{0x300, 0x305, 0x341, 0x180, 0xC00}
		in.Rd, in.Rs1, in.CSR = rx(), rx(), named[rng.Intn(len(named))]
	case isa.AMOADDD, isa.SCD:
		in.Rd, in.Rs1, in.Rs2 = rx(), rx(), rx()
	case isa.LRD:
		in.Rd, in.Rs1 = rx(), rx()
	case isa.XLRW:
		in.Rd, in.Rs1, in.Rs2, in.Imm = rx(), rx(), rx(), int64(rng.Intn(4))
	case isa.XSRD:
		in.Rd, in.Rs1, in.Rs2, in.Imm = rx(), rx(), rx(), int64(rng.Intn(4))
	case isa.XADDSL:
		in.Rd, in.Rs1, in.Rs2, in.Imm = rx(), rx(), rx(), int64(rng.Intn(4))
	case isa.XEXT, isa.XEXTU:
		lsb := rng.Intn(64)
		msb := lsb + rng.Intn(64-lsb)
		in.Rd, in.Rs1, in.Imm = rx(), rx(), int64(msb<<6|lsb)
	case isa.XFF1, isa.XREV:
		in.Rd, in.Rs1 = rx(), rx()
	case isa.XMULA:
		in.Rd, in.Rs1, in.Rs2 = rx(), rx(), rx()
	case isa.VSETVLI:
		in.Rd, in.Rs1 = rx(), rx()
		in.Imm = int64(isa.MakeVType(rng.Intn(4), rng.Intn(4)))
	case isa.VADDVV, isa.VMACCVV:
		in.Rd, in.Rs1, in.Rs2 = rv(), rv(), rv()
	case isa.VMVXS:
		in.Rd, in.Rs2 = rx(), rv()
	case isa.VLE:
		in.Rd, in.Rs1 = rv(), rx()
	case isa.VSE:
		in.Rs1, in.Rs2 = rx(), rv()
	default:
		return in, false
	}
	return in, true
}
