package cliflags

import (
	"flag"
	"io"
	"testing"
	"time"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestSeedsExpansion(t *testing.T) {
	var c Campaign
	fs := newFS()
	c.RegisterSeeds(fs, 100)
	if err := fs.Parse([]string{"-n", "3", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	got := c.Seeds()
	want := []int64{7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("Seeds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Seeds() = %v, want %v", got, want)
		}
	}
}

func TestDeprecatedAliases(t *testing.T) {
	var c Campaign
	fs := newFS()
	c.RegisterSeeds(fs, 10, "seeds")
	c.RegisterTimeout(fs, 0, "per-seed watchdog", "budget")
	if err := fs.Parse([]string{"-seeds", "25", "-budget", "30s"}); err != nil {
		t.Fatal(err)
	}
	if c.N != 25 || c.Timeout != 30*time.Second {
		t.Fatalf("aliases: N=%d Timeout=%v, want 25, 30s", c.N, c.Timeout)
	}
}

func TestModeSpecFoldsAliases(t *testing.T) {
	var m ModeSpec
	fs := newFS()
	m.Register(fs, true)
	if err := fs.Parse([]string{"-modes", "smp", "-irq"}); err != nil {
		t.Fatal(err)
	}
	md, err := m.Modes()
	if err != nil || !md.SMP || !md.IRQ || md.Paged {
		t.Fatalf("Modes() = %+v, %v", md, err)
	}
}

func TestModeSpecRejectsIllegal(t *testing.T) {
	var m ModeSpec
	fs := newFS()
	m.Register(fs, true)
	if err := fs.Parse([]string{"-modes", "smp", "-paged"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Modes(); err == nil {
		t.Fatal("paged+smp accepted, want error")
	}
}
