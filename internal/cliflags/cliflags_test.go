package cliflags

import (
	"encoding/json"
	"flag"
	"io"
	"strings"
	"testing"
	"time"

	"xt910/internal/cosim"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestSeedsExpansion(t *testing.T) {
	var c Campaign
	fs := newFS()
	c.RegisterSeeds(fs, 100)
	if err := fs.Parse([]string{"-n", "3", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	got := c.Seeds()
	want := []int64{7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("Seeds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Seeds() = %v, want %v", got, want)
		}
	}
}

func TestDeprecatedAliases(t *testing.T) {
	var c Campaign
	fs := newFS()
	c.RegisterSeeds(fs, 10, "seeds")
	c.RegisterTimeout(fs, 0, "per-seed watchdog", "budget")
	if err := fs.Parse([]string{"-seeds", "25", "-budget", "30s"}); err != nil {
		t.Fatal(err)
	}
	if c.N != 25 || c.Timeout != 30*time.Second {
		t.Fatalf("aliases: N=%d Timeout=%v, want 25, 30s", c.N, c.Timeout)
	}
}

func TestModeSpecFoldsAliases(t *testing.T) {
	var m ModeSpec
	fs := newFS()
	m.Register(fs, true)
	if err := fs.Parse([]string{"-modes", "smp", "-irq"}); err != nil {
		t.Fatal(err)
	}
	md, err := m.Modes()
	if err != nil || !md.SMP || !md.IRQ || md.Paged {
		t.Fatalf("Modes() = %+v, %v", md, err)
	}
}

func TestModeSpecRejectsIllegal(t *testing.T) {
	var m ModeSpec
	fs := newFS()
	m.Register(fs, true)
	if err := fs.Parse([]string{"-modes", "smp", "-paged"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Modes(); err == nil {
		t.Fatal("paged+smp accepted, want error")
	}
}

// TestModeSpecAliasMatrix sweeps every deprecated-alias combination against
// every -modes spec. The contract under test: aliases MERGE into the spec
// (never overwrite it), and the merged set is what gets validated — so an
// alias that completes an illegal pair (e.g. -paged with -modes smp) must
// error rather than silently dropping one of the modes. The legality rule is
// restated here independently of cosim.Modes.Validate: paged excludes both
// irq and smp.
func TestModeSpecAliasMatrix(t *testing.T) {
	specs := []struct {
		spec string
		md   cosim.Modes
	}{
		{"", cosim.Modes{}},
		{"paged", cosim.Modes{Paged: true}},
		{"irq", cosim.Modes{IRQ: true}},
		{"smp", cosim.Modes{SMP: true}},
		{"paged,irq", cosim.Modes{Paged: true, IRQ: true}},
		{"paged,smp", cosim.Modes{Paged: true, SMP: true}},
		{"irq,smp", cosim.Modes{IRQ: true, SMP: true}},
		{"paged,irq,smp", cosim.Modes{Paged: true, IRQ: true, SMP: true}},
	}
	for _, aliasPaged := range []bool{false, true} {
		for _, aliasIRQ := range []bool{false, true} {
			for _, s := range specs {
				args := []string{"-modes", s.spec}
				if aliasPaged {
					args = append(args, "-paged")
				}
				if aliasIRQ {
					args = append(args, "-irq")
				}
				t.Run(strings.Join(args, " "), func(t *testing.T) {
					var m ModeSpec
					fs := newFS()
					m.Register(fs, true)
					if err := fs.Parse(args); err != nil {
						t.Fatal(err)
					}
					want := cosim.Modes{
						Paged: s.md.Paged || aliasPaged,
						IRQ:   s.md.IRQ || aliasIRQ,
						SMP:   s.md.SMP,
					}
					wantErr := want.Paged && (want.IRQ || want.SMP)
					got, err := m.Modes()
					if wantErr {
						if err == nil {
							t.Fatalf("Modes() = %+v, nil; want error for illegal merge", got)
						}
						return
					}
					if err != nil {
						t.Fatalf("Modes() error: %v", err)
					}
					if got != want {
						t.Fatalf("Modes() = %+v, want %+v", got, want)
					}
				})
			}
		}
	}
}

// TestSeedAliasLastWins pins the documented rule that when -n and a
// deprecated alias are both given, the last one parsed wins — in both orders.
func TestSeedAliasLastWins(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{[]string{"-n", "5", "-seeds", "10"}, 10},
		{[]string{"-seeds", "10", "-n", "5"}, 5},
	}
	for _, c := range cases {
		var cf Campaign
		fs := newFS()
		cf.RegisterSeeds(fs, 100, "seeds")
		if err := fs.Parse(c.args); err != nil {
			t.Fatal(err)
		}
		if cf.N != c.want {
			t.Fatalf("%v: N = %d, want %d", c.args, cf.N, c.want)
		}
	}
}

// TestTimeoutAliasLastWins is the same last-wins rule for -timeout/-budget.
func TestTimeoutAliasLastWins(t *testing.T) {
	cases := []struct {
		args []string
		want time.Duration
	}{
		{[]string{"-timeout", "5s", "-budget", "10s"}, 10 * time.Second},
		{[]string{"-budget", "10s", "-timeout", "5s"}, 5 * time.Second},
	}
	for _, c := range cases {
		var cf Campaign
		fs := newFS()
		cf.RegisterTimeout(fs, 0, "watchdog", "budget")
		if err := fs.Parse(c.args); err != nil {
			t.Fatal(err)
		}
		if cf.Timeout != c.want {
			t.Fatalf("%v: Timeout = %v, want %v", c.args, cf.Timeout, c.want)
		}
	}
}

// TestKnobsRoundTrip pins the manifest contract: parsed campaign flags survive
// Campaign.Knobs → JSON → Knobs.Campaign with identical values, and the
// recorded -modes spec re-parses through the same validator the CLIs use.
func TestKnobsRoundTrip(t *testing.T) {
	fs := newFS()
	var cf Campaign
	cf.RegisterSeeds(fs, 100)
	cf.RegisterPool(fs)
	cf.RegisterTimeout(fs, 0, "t")
	if err := fs.Parse([]string{"-n", "37", "-seed", "9", "-jobs", "3", "-timeout", "250ms"}); err != nil {
		t.Fatal(err)
	}

	k := cf.Knobs("paged")
	data, err := json.Marshal(k)
	if err != nil {
		t.Fatal(err)
	}
	var back Knobs
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != k {
		t.Fatalf("knobs changed across JSON: %+v != %+v", back, k)
	}
	if got := back.Campaign(); got != (Campaign{N: 37, Seed: 9, Jobs: 3, Timeout: 250 * time.Millisecond}) {
		t.Fatalf("Campaign() = %+v", got)
	}
	if seeds := back.Seeds(); len(seeds) != 37 || seeds[0] != 9 || seeds[36] != 45 {
		t.Fatalf("Seeds() = len %d, first %d, last %d", len(seeds), seeds[0], seeds[len(seeds)-1])
	}
	md, err := back.CosimModes()
	if err != nil || !md.Paged {
		t.Fatalf("CosimModes() = %+v, %v", md, err)
	}
}

// TestKnobsRejectIllegalModes: the recorded spec goes through Validate, so a
// manifest cannot smuggle in a mode combination the CLIs reject.
func TestKnobsRejectIllegalModes(t *testing.T) {
	for _, spec := range []string{"warp", "paged,smp"} {
		if _, err := (Knobs{Modes: spec}).CosimModes(); err == nil {
			t.Fatalf("modes %q: want error, got nil", spec)
		}
	}
}
