// Package cliflags defines the flag surface shared by the XT-910 campaign
// CLIs (xtfuzz, xtinject, xtbench): one definition of the uniform knobs
// -n / -seed / -jobs / -json / -timeout plus the composable -modes spec, so
// every tool spells them the same way and the seed-range and mode parsing
// live in exactly one place. Defaults differ per tool; names and meanings
// never do.
package cliflags

import (
	"flag"
	"runtime"
	"time"

	"xt910/internal/cosim"
)

// Campaign holds the uniform campaign knobs. A tool registers the subset it
// supports with the Register* helpers and reads the fields after fs.Parse.
type Campaign struct {
	N       int
	Seed    int64
	Jobs    int
	JSON    bool
	Timeout time.Duration
}

// RegisterSeeds registers -n (seed count, tool-specific default) and -seed
// (first seed). aliases lists deprecated extra names for -n a tool must keep
// accepting (xtinject's -seeds); when both are given the last one parsed wins.
func (c *Campaign) RegisterSeeds(fs *flag.FlagSet, defaultN int, aliases ...string) {
	fs.IntVar(&c.N, "n", defaultN, "number of seeds to run")
	for _, a := range aliases {
		fs.IntVar(&c.N, a, defaultN, "deprecated alias for -n")
	}
	fs.Int64Var(&c.Seed, "seed", 1, "first seed")
}

// Seeds expands (-seed, -n) into the campaign's seed list.
func (c *Campaign) Seeds() []int64 {
	s := make([]int64, c.N)
	for i := range s {
		s[i] = c.Seed + int64(i)
	}
	return s
}

// RegisterPool registers -jobs with the shared default and wording.
func (c *Campaign) RegisterPool(fs *flag.FlagSet) {
	fs.IntVar(&c.Jobs, "jobs", runtime.GOMAXPROCS(0),
		"worker-pool width (1 = serial; results identical at any width)")
}

// RegisterJSON registers -json.
func (c *Campaign) RegisterJSON(fs *flag.FlagSet) {
	fs.BoolVar(&c.JSON, "json", false, "emit machine-readable JSON on stdout")
}

// RegisterTimeout registers -timeout (tool-specific default and usage).
// aliases lists deprecated extra names a tool must keep accepting (xtfuzz's
// -budget).
func (c *Campaign) RegisterTimeout(fs *flag.FlagSet, def time.Duration, usage string, aliases ...string) {
	fs.DurationVar(&c.Timeout, "timeout", def, usage)
	for _, a := range aliases {
		fs.DurationVar(&c.Timeout, a, def, "deprecated alias for -timeout")
	}
}

// Knobs is the serializable image of the uniform campaign knob set: the same
// -n / -seed / -jobs / -timeout / -modes values a CLI invocation would carry,
// as a JSON document a campaign manifest can record and a service can
// reconstruct the exact run from. Round trip: Campaign.Knobs → JSON →
// Knobs.Campaign yields the identical knob values.
type Knobs struct {
	N       int           `json:"n,omitempty"`
	Seed    int64         `json:"seed,omitempty"`
	Jobs    int           `json:"jobs,omitempty"`
	Timeout time.Duration `json:"timeout,omitempty"`
	Modes   string        `json:"modes,omitempty"`
}

// Knobs packages the parsed campaign flags (plus a -modes spec string) for a
// manifest.
func (c *Campaign) Knobs(modes string) Knobs {
	return Knobs{N: c.N, Seed: c.Seed, Jobs: c.Jobs, Timeout: c.Timeout, Modes: modes}
}

// Campaign reconstructs the flag values the knobs were captured from.
func (k Knobs) Campaign() Campaign {
	return Campaign{N: k.N, Seed: k.Seed, Jobs: k.Jobs, Timeout: k.Timeout}
}

// Seeds expands the knob set's seed range, identically to Campaign.Seeds.
func (k Knobs) Seeds() []int64 {
	c := k.Campaign()
	return c.Seeds()
}

// CosimModes parses and validates the recorded -modes spec.
func (k Knobs) CosimModes() (cosim.Modes, error) {
	md, err := cosim.ParseModes(k.Modes)
	if err != nil {
		return md, err
	}
	return md, md.Validate()
}

// ModeSpec is the composable -modes flag plus the deprecated per-mode boolean
// aliases. Register it, parse the FlagSet, then call Modes.
type ModeSpec struct {
	spec  string
	paged bool
	irq   bool
}

// Register registers -modes and, when aliases is true, the deprecated -paged
// and -irq booleans that fold into it.
func (m *ModeSpec) Register(fs *flag.FlagSet, aliases bool) {
	fs.StringVar(&m.spec, "modes", "", "comma-separated fuzz modes: paged, irq, smp")
	if aliases {
		fs.BoolVar(&m.paged, "paged", false, "deprecated alias for -modes paged")
		fs.BoolVar(&m.irq, "irq", false, "deprecated alias for -modes irq")
	}
}

// Modes resolves the spec and aliases into one validated mode set.
func (m *ModeSpec) Modes() (cosim.Modes, error) {
	md, err := cosim.ParseModes(m.spec)
	if err != nil {
		return md, err
	}
	md.Paged = md.Paged || m.paged
	md.IRQ = md.IRQ || m.irq
	return md, md.Validate()
}
