package emu

import (
	"testing"

	"xt910/internal/asm"
	"xt910/internal/mem"
	"xt910/isa"
)

// TestClockCSRsDefaultToInstret pins the historical behaviour: without a
// CycleModel the clock CSRs read the retired-instruction count.
func TestClockCSRsDefaultToInstret(t *testing.T) {
	m := run(t, `
_start:
    li   t0, 1
    li   t1, 2
    add  t2, t0, t1
    csrr a0, cycle
`+exitSeq)
	// a0 was read after 3 instructions retired (csrr itself retires after the
	// read), and exit reports a0
	if m.ExitCode != 3 {
		t.Fatalf("rdcycle = %d, want 3 (instret at the read)", m.ExitCode)
	}
	for _, n := range []uint16{isa.CSRCycle, isa.CSRTime, isa.CSRMcycle} {
		if got := m.CSR(n); got != m.Instret {
			t.Errorf("CSR %#x = %d, want Instret %d", n, got, m.Instret)
		}
	}
}

// TestCycleModelDrivesClockCSRs installs a retired-instruction-derived cycle
// model (here: a fixed CPI of 3) and checks every clock CSR reads through it
// while instret stays untouched.
func TestCycleModelDrivesClockCSRs(t *testing.T) {
	p, err := asm.Assemble(`
_start:
    li   t0, 5
    add  t1, t0, t0
    csrr a0, mcycle
    li   a7, 93
    ecall
`, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	m := New(mem.NewMemory())
	p.LoadInto(m.Mem)
	m.PC = p.Entry
	m.CycleModel = func(instret uint64) uint64 { return instret * 3 }
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != 6 { // 2 retired instructions * CPI 3
		t.Fatalf("rdcycle under CPI-3 model = %d, want 6", m.ExitCode)
	}
	if got := m.CSR(isa.CSRInstret); got != m.Instret {
		t.Fatalf("instret = %d, want %d (cycle model must not touch it)", got, m.Instret)
	}
	if got, want := m.Cycles(), m.Instret*3; got != want {
		t.Fatalf("Cycles() = %d, want %d", got, want)
	}
}
