package emu

import (
	"fmt"

	"xt910/isa"
)

// ArchState is a point-in-time copy of one hart's architectural state: the
// scalar register files, PC, privilege, retired-instruction count, LR/SC
// reservation and a chosen set of CSRs. It is the unit of comparison for the
// co-simulation checker and for debugging dumps; vector state is held as raw
// register-file bytes so it can be diffed without knowing VL/SEW.
type ArchState struct {
	PC      uint64
	X       [32]uint64
	F       [32]uint64
	Priv    int
	Instret uint64

	ResValid bool
	ResAddr  uint64

	// CSR holds the values of exactly the CSRs requested from Snapshot.
	CSR map[uint16]uint64

	// V holds one byte slice per vector register (nil without a vector unit).
	V     [][]byte
	VL    uint64
	VType uint64
}

// Snapshot captures the current architectural state. The csrs list selects
// which control registers are recorded (counters like cycle/instret can be
// included or excluded as the caller's comparison policy requires).
func (m *Machine) Snapshot(csrs ...uint16) ArchState {
	s := ArchState{
		PC:       m.PC,
		X:        m.X,
		F:        m.F,
		Priv:     m.Priv,
		Instret:  m.Instret,
		ResValid: m.resValid,
		ResAddr:  m.resAddr,
	}
	if len(csrs) > 0 {
		s.CSR = make(map[uint16]uint64, len(csrs))
		for _, n := range csrs {
			s.CSR[n] = m.CSR(n)
		}
	}
	if m.Vec != nil {
		s.VL = m.Vec.VL
		s.VType = uint64(m.Vec.VType)
		s.V = make([][]byte, 32)
		for r := 0; r < 32; r++ {
			s.V[r] = append([]byte(nil), m.Vec.File.Bytes(r)...)
		}
	}
	return s
}

// DumpCSRs returns a copy of every CSR value the machine has materialized —
// the raw control-register file, unfiltered by any comparison policy. Paired
// with RestoreCSRs it round-trips CSR state exactly (no WARL re-masking),
// which is what a checkpoint needs: Snapshot records only the CSRs a checker
// compares, DumpCSRs records everything the machine would keep behaving on.
func (m *Machine) DumpCSRs() map[uint16]uint64 {
	out := make(map[uint16]uint64, len(m.csr))
	for n, v := range m.csr {
		out[n] = v
	}
	return out
}

// RestoreCSRs replaces the machine's raw CSR file with the given values
// (as produced by DumpCSRs) and invalidates the translation cache, since
// satp/privilege-dependent state may have changed.
func (m *Machine) RestoreCSRs(csrs map[uint16]uint64) {
	m.csr = make(map[uint16]uint64, len(csrs))
	for n, v := range csrs {
		m.csr[n] = v
	}
	m.stlb = nil
}

// SetReservation restores the LR/SC reservation (checkpoint restore).
func (m *Machine) SetReservation(valid bool, addr uint64) {
	m.resValid, m.resAddr = valid, addr
}

// RestoreArch loads the scalar architectural state from a snapshot: PC,
// register files, privilege, instret, the reservation and — when the snapshot
// carries vector state and the machine has a vector unit — the vector file,
// vl and vtype. CSRs are NOT restored here (a Snapshot records only the
// compared subset); use RestoreCSRs with a DumpCSRs image for those.
func (m *Machine) RestoreArch(s ArchState) {
	m.PC = s.PC
	m.X = s.X
	m.F = s.F
	m.Priv = s.Priv
	m.Instret = s.Instret
	m.resValid, m.resAddr = s.ResValid, s.ResAddr
	if m.Vec != nil && s.V != nil {
		m.Vec.VL = s.VL
		m.Vec.VType = isa.VType(s.VType)
		for r := 0; r < 32 && r < len(s.V); r++ {
			b := m.Vec.File.Bytes(r)
			for i := range b {
				b[i] = 0
			}
			copy(b, s.V[r])
		}
	}
	m.stlb = nil
}

// Diff returns one human-readable line per field where the two states differ;
// an empty slice means the states are architecturally identical. CSRs are
// compared over the union of the two snapshots' recorded sets.
func (a ArchState) Diff(b ArchState) []string {
	var out []string
	if a.PC != b.PC {
		out = append(out, fmt.Sprintf("pc: %#x != %#x", a.PC, b.PC))
	}
	if a.Priv != b.Priv {
		out = append(out, fmt.Sprintf("priv: %d != %d", a.Priv, b.Priv))
	}
	if a.Instret != b.Instret {
		out = append(out, fmt.Sprintf("instret: %d != %d", a.Instret, b.Instret))
	}
	for i := 0; i < 32; i++ {
		if a.X[i] != b.X[i] {
			out = append(out, fmt.Sprintf("%s: %#x != %#x", isa.X(i), a.X[i], b.X[i]))
		}
	}
	for i := 0; i < 32; i++ {
		if a.F[i] != b.F[i] {
			out = append(out, fmt.Sprintf("%s: %#x != %#x", isa.F(i), a.F[i], b.F[i]))
		}
	}
	if a.ResValid != b.ResValid || (a.ResValid && a.ResAddr != b.ResAddr) {
		out = append(out, fmt.Sprintf("reservation: valid=%v addr=%#x != valid=%v addr=%#x",
			a.ResValid, a.ResAddr, b.ResValid, b.ResAddr))
	}
	seen := make(map[uint16]bool)
	for _, m := range []map[uint16]uint64{a.CSR, b.CSR} {
		for n := range m {
			if seen[n] {
				continue
			}
			seen[n] = true
			if a.CSR[n] != b.CSR[n] {
				out = append(out, fmt.Sprintf("csr %s: %#x != %#x", isa.CSRName(n), a.CSR[n], b.CSR[n]))
			}
		}
	}
	if a.VL != b.VL {
		out = append(out, fmt.Sprintf("vl: %d != %d", a.VL, b.VL))
	}
	if a.VType != b.VType {
		out = append(out, fmt.Sprintf("vtype: %#x != %#x", a.VType, b.VType))
	}
	for r := 0; r < len(a.V) && r < len(b.V); r++ {
		for i := 0; i < len(a.V[r]) && i < len(b.V[r]); i++ {
			if a.V[r][i] != b.V[r][i] {
				out = append(out, fmt.Sprintf("%s byte %d: %02x != %02x", isa.V(r), i, a.V[r][i], b.V[r][i]))
				break
			}
		}
	}
	return out
}
