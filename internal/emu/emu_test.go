package emu

import (
	"testing"

	"xt910/internal/asm"
	"xt910/internal/mem"
	"xt910/internal/mmu"
	"xt910/isa"
)

// run assembles src, executes it to completion, and returns the machine.
func run(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	m := New(mem.NewMemory())
	p.LoadInto(m.Mem)
	m.PC = p.Entry
	m.X[2] = 0x80000 // stack
	if err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatal("program did not halt")
	}
	return m
}

const exitSeq = `
    li a7, 93
    ecall
`

func TestArithmeticProgram(t *testing.T) {
	m := run(t, `
_start:
    li   t0, 100
    li   t1, 7
    mul  t2, t0, t1       # 700
    div  t3, t2, t1       # 100
    rem  t4, t2, t0       # 0
    add  a0, t2, t3       # 800
    sub  a0, a0, t4
`+exitSeq)
	if m.ExitCode != 800 {
		t.Fatalf("exit code = %d, want 800", m.ExitCode)
	}
}

func TestFibonacciLoop(t *testing.T) {
	m := run(t, `
_start:
    li   a0, 0
    li   a1, 1
    li   t0, 20
loop:
    add  t1, a0, a1
    mv   a0, a1
    mv   a1, t1
    addi t0, t0, -1
    bnez t0, loop
`+exitSeq)
	if m.ExitCode != 6765 {
		t.Fatalf("fib(20) = %d, want 6765", m.ExitCode)
	}
}

func TestRecursiveCall(t *testing.T) {
	m := run(t, `
_start:
    li   a0, 10
    call fact
`+exitSeq+`
fact:                      # a0 = n -> a0 = n!
    li   t0, 2
    bge  a0, t0, rec
    li   a0, 1
    ret
rec:
    addi sp, sp, -16
    sd   ra, 0(sp)
    sd   a0, 8(sp)
    addi a0, a0, -1
    call fact
    ld   t1, 8(sp)
    mul  a0, a0, t1
    ld   ra, 0(sp)
    addi sp, sp, 16
    ret
`)
	if m.ExitCode != 3628800 {
		t.Fatalf("10! = %d", m.ExitCode)
	}
}

func TestMemoryAndBytes(t *testing.T) {
	m := run(t, `
_start:
    la   t0, buf
    li   t1, -2
    sb   t1, 0(t0)
    lbu  t2, 0(t0)        # 0xFE
    lb   t3, 0(t0)        # -2
    sh   t1, 2(t0)
    lhu  t4, 2(t0)        # 0xFFFE
    add  a0, t2, t4       # 0xFE + 0xFFFE = 0x100FC
    add  a0, a0, t3       # -2 -> 0x100FA
`+exitSeq+`
buf: .space 16
`)
	if m.ExitCode != 0x100FA {
		t.Fatalf("exit = %#x", m.ExitCode)
	}
}

func TestUnalignedAccess(t *testing.T) {
	m := run(t, `
_start:
    la   t0, buf
    li   t1, 0x1122334455667788
    sd   t1, 3(t0)        # unaligned store (LSU supports it, §II)
    ld   a0, 3(t0)
    xor  a0, a0, t1       # 0 if round-tripped
`+exitSeq+`
buf: .space 32
`)
	if m.ExitCode != 0 {
		t.Fatalf("unaligned round trip failed: %#x", m.ExitCode)
	}
}

func TestCustomExtensions(t *testing.T) {
	m := run(t, `
_start:
    la   t0, arr
    li   t1, 3            # index
    lrw  a0, t0, t1, 2    # arr[3] == 33
    li   t2, 0xF0
    extu a1, t2, 7, 4     # 0xF
    li   a2, 0
    li   t3, 5
    li   t4, 6
    mula a2, t3, t4       # 30
    add  a0, a0, a1
    add  a0, a0, a2       # 33 + 15 + 30 = 78
`+exitSeq+`
arr: .word 0, 11, 22, 33, 44
`)
	if m.ExitCode != 78 {
		t.Fatalf("custom ext result = %d, want 78", m.ExitCode)
	}
}

func TestFloatProgram(t *testing.T) {
	m := run(t, `
_start:
    la    t0, vals
    fld   fa0, 0(t0)
    fld   fa1, 8(t0)
    fadd.d fa2, fa0, fa1   # 3.5
    fmul.d fa3, fa2, fa1   # 8.75
    fcvt.w.d a0, fa3       # 8
`+exitSeq+`
.align 3
vals:
    .dword 0x3FF0000000000000   # 1.0
    .dword 0x4004000000000000   # 2.5
`)
	if m.ExitCode != 8 {
		t.Fatalf("fp result = %d, want 8", m.ExitCode)
	}
}

func TestVectorDotProduct(t *testing.T) {
	m := run(t, `
_start:
    li   t0, 8
    vsetvli t1, t0, e32, m2
    la   a1, va
    la   a2, vb
    vle.v v0, (a1)
    vle.v v2, (a2)
    li   t2, 0
    vmv.s.x v8, t2
    vmv.v.x v4, t2
    vmacc.vv v4, v0, v2      # elementwise products (acc from zero)
    vredsum.vs v6, v4, v8
    vmv.x.s a0, v6
`+exitSeq+`
.align 4
va: .word 1, 2, 3, 4, 5, 6, 7, 8
vb: .word 8, 7, 6, 5, 4, 3, 2, 1
`)
	// dot = 8+14+18+20+20+18+14+8 = 120
	if m.ExitCode != 120 {
		t.Fatalf("vector dot = %d, want 120", m.ExitCode)
	}
}

func TestVsetvlVLMax(t *testing.T) {
	m := run(t, `
_start:
    li   t0, 1000
    vsetvli a0, t0, e8, m1   # VLMAX = 128/8 = 16
`+exitSeq)
	if m.ExitCode != 16 {
		t.Fatalf("vl = %d, want 16 (VLEN=128, e8)", m.ExitCode)
	}
}

func TestAMOAndLRSC(t *testing.T) {
	m := run(t, `
_start:
    la   t0, cell
    li   t1, 5
    amoadd.d a0, t1, (t0)   # returns 0, cell=5
retry:
    lr.d t2, (t0)
    addi t2, t2, 1
    sc.d t3, t2, (t0)
    bnez t3, retry
    ld   a0, 0(t0)          # 6
`+exitSeq+`
.align 3
cell: .dword 0
`)
	if m.ExitCode != 6 {
		t.Fatalf("atomic result = %d, want 6", m.ExitCode)
	}
}

func TestWriteSyscall(t *testing.T) {
	m := run(t, `
_start:
    li  a7, 64
    li  a0, 1
    la  a1, msg
    li  a2, 5
    ecall
    li  a0, 0
`+exitSeq+`
msg: .ascii "hello"
`)
	if string(m.Output) != "hello" {
		t.Fatalf("output = %q", m.Output)
	}
}

func TestTrapRoundTrip(t *testing.T) {
	// install an M-mode trap handler, take an ecall from U-mode, return
	m := run(t, `
_start:
    la   t0, handler
    csrw mtvec, t0
    la   t1, umode
    csrw mepc, t1
    # mstatus.MPP = 0 (U)
    li   t2, 0x1800
    csrrc zero, mstatus, t2
    mret
umode:
    li   a7, 1234           # unknown syscall -> traps
    ecall
    ebreak                  # never reached
handler:
    csrr a0, mcause         # 8 = ecall from U
    li   a7, 93
    ecall
`)
	if m.ExitCode != isa.ExcEcallU {
		t.Fatalf("mcause = %d, want %d", m.ExitCode, isa.ExcEcallU)
	}
}

func TestSV39Translation(t *testing.T) {
	// Build page tables mapping VA 0x4000_0000 -> PA 0x1_0000, then run
	// code that stores through the virtual mapping from S-mode.
	p, err := asm.Assemble(`
_start:
    # enter S-mode at vcode
    la   t0, strap
    csrw mtvec, t0
    li   t1, 0x0800          # MPP = 01 (S)
    csrrs zero, mstatus, t1
    li   t1, 0x1000
    csrrc zero, mstatus, t1
    la   t2, scode
    csrw mepc, t2
    mret
scode:
    li   t0, 0x40000000
    li   t1, 77
    sd   t1, 0(t0)
    ld   a0, 0(t0)
    li   a7, 93
    ecall
strap:
    li   a0, -1
    li   a7, 93
    ecall
`, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	memory := mem.NewMemory()
	p.LoadInto(memory)
	tb := mmu.NewTableBuilder(memory, 0x200000)
	// identity-map the code/stack region, map the virtual window
	if err := tb.IdentityMap(0, 0x100000, mmu.PteR|mmu.PteW|mmu.PteX, false); err != nil {
		t.Fatal(err)
	}
	if err := tb.Map(0x40000000, 0x10000, 12, mmu.PteR|mmu.PteW); err != nil {
		t.Fatal(err)
	}
	m := New(memory)
	m.PC = p.Entry
	m.X[2] = 0x80000
	m.SetCSR(isa.CSRSatp, tb.Satp(1))
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted || m.ExitCode != 77 {
		t.Fatalf("exit = %d halted=%v, want 77", m.ExitCode, m.Halted)
	}
	if got := memory.Read(0x10000, 8); got != 77 {
		t.Fatalf("physical backing = %d, want 77", got)
	}
}

func TestPageFaultDelegation(t *testing.T) {
	p, err := asm.Assemble(`
_start:
    la   t0, mtrap
    csrw mtvec, t0
    la   t0, strap
    csrw stvec, t0
    li   t1, 0xB000          # delegate page faults (12,13,15) to S
    csrw medeleg, t1
    li   t1, 0x0800
    csrrs zero, mstatus, t1
    li   t1, 0x1000
    csrrc zero, mstatus, t1
    la   t2, scode
    csrw mepc, t2
    mret
scode:
    li   t0, 0x7FFFF000      # unmapped -> load page fault
    ld   a0, 0(t0)
    ebreak
strap:
    csrr a0, scause          # 13
    li   a7, 93
    ecall
mtrap:
    li   a0, -1
    li   a7, 93
    ecall
`, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	memory := mem.NewMemory()
	p.LoadInto(memory)
	tb := mmu.NewTableBuilder(memory, 0x200000)
	if err := tb.IdentityMap(0, 0x100000, mmu.PteR|mmu.PteW|mmu.PteX, false); err != nil {
		t.Fatal(err)
	}
	m := New(memory)
	m.PC = p.Entry
	m.X[2] = 0x80000
	m.SetCSR(isa.CSRSatp, tb.Satp(1))
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != isa.ExcLoadPageFault {
		t.Fatalf("scause = %d, want %d", m.ExitCode, isa.ExcLoadPageFault)
	}
}

func TestCompressedExecution(t *testing.T) {
	src := `
_start:
    li   a0, 0
    li   t0, 100
loop:
    addi a0, a0, 3
    addi t0, t0, -1
    bnez t0, loop
` + exitSeq
	for _, compress := range []bool{false, true} {
		p, err := asm.Assemble(src, asm.Options{Base: 0x1000, Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		m := New(mem.NewMemory())
		p.LoadInto(m.Mem)
		m.PC = p.Entry
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		if m.ExitCode != 300 {
			t.Fatalf("compress=%v: exit = %d, want 300", compress, m.ExitCode)
		}
	}
}

func TestCSRCounters(t *testing.T) {
	m := run(t, `
_start:
    csrr t0, instret
    nop
    nop
    nop
    csrr t1, instret
    sub  a0, t1, t0       # 4 (3 nops + the csrr itself)
`+exitSeq)
	if m.ExitCode != 4 {
		t.Fatalf("instret delta = %d, want 4", m.ExitCode)
	}
}

func TestIllegalInstructionTraps(t *testing.T) {
	memory := mem.NewMemory()
	memory.Write(0x1000, 4, 0xFFFFFFFF) // illegal (not a valid encoding)
	m := New(memory)
	m.PC = 0x1000
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if !m.Halted || m.ExitCode != -(16+isa.ExcIllegalInst) {
		t.Fatalf("expected illegal-inst halt, got halted=%v code=%d", m.Halted, m.ExitCode)
	}
}
