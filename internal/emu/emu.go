// Package emu is the architectural (functional) emulator of the XT-910 ISA:
// the golden model. It executes programs instruction-by-instruction with full
// RV64GCV + custom-extension semantics, M/S/U privilege, SV39 translation and
// traps, but no timing. The pipeline model is continuously cross-checked
// against it (co-simulation property tests), and it doubles as the
// "instruction accurate simulator" of the paper's CDS toolchain (§IX).
package emu

import (
	"fmt"

	"xt910/internal/mem"
	"xt910/internal/mmu"
	"xt910/internal/vector"
	"xt910/isa"
)

// EcallMode selects how ecall is handled.
type EcallMode int

const (
	// EcallHost services the minimal host ABI (exit/write) directly, the way
	// the benchmarks run bare-metal. Unknown syscalls fall through to a trap.
	EcallHost EcallMode = iota
	// EcallTrap always raises the architectural environment-call exception.
	EcallTrap
)

// Host syscall numbers (RISC-V Linux ABI subset).
const (
	SysExit  = 93
	SysWrite = 64
)

// Machine is one hart's architectural state.
type Machine struct {
	X   [32]uint64
	F   [32]uint64
	Vec *vector.Unit
	PC  uint64
	Mem *mem.Memory

	Priv int

	csr map[uint16]uint64

	Instret uint64

	resValid bool
	resAddr  uint64

	Halted   bool
	ExitCode int
	Output   []byte

	Ecall EcallMode

	// Trace, when set, observes every retired instruction.
	Trace func(pc uint64, in isa.Inst)

	// OnStore, when set, observes every architectural memory write (scalar
	// stores, SC, AMOs and vector stores) with its PHYSICAL address, so the
	// co-simulation checker can track touched memory independently of which
	// virtual alias the program stored through.
	OnStore func(pa uint64, size int)

	// OnCacheOp observes custom cache/TLB maintenance ops (the SoC model
	// hooks this; standalone emulation treats them as no-ops).
	OnCacheOp func(op isa.Op, operand uint64)

	// soft TLB for emulation speed; invalidated on satp writes and sfence
	stlb map[uint64]stlbEntry

	// BreakOnEbreak stops execution at ebreak instead of trapping.
	BreakOnEbreak bool

	// CycleModel, when set, derives the value the cycle/time/mcycle CSRs read
	// from the retired-instruction count — a coarse timing model for the
	// functional machine (e.g. instret/IPC from a prior pipeline run). Nil
	// keeps the historical behaviour of reporting Instret.
	CycleModel func(instret uint64) uint64

	// IntSource, when set, returns the externally-driven mip bits
	// (MSIP/MTIP/MEIP), checked before every instruction — the synchronous
	// model's equivalent of the core's per-retirement interrupt sample. mip
	// reads OR these bits in, mirroring core.CSR.
	IntSource func() uint64

	// OnInterrupt observes every taken machine interrupt with its cause
	// (co-simulation delivery checking).
	OnInterrupt func(cause uint64)

	// MMIO, when set, claims physical address ranges for devices (the
	// multi-hart cosimulator wires the emulator-side CLINT here so MSIP
	// IPIs work in the golden world too). Device accesses bypass memory,
	// the LR/SC reservation and OnStore, mirroring the pipeline's
	// uncached-device path.
	MMIO MMIODevice
}

// MMIODevice is a memory-mapped device window (structurally identical to the
// core package's interface; redeclared here because core imports emu).
type MMIODevice interface {
	Covers(pa uint64) bool
	Read(pa uint64, size int) uint64
	Write(pa uint64, size int, v uint64)
}

type stlbEntry struct {
	base  uint64 // pa of page start
	bits  uint
	perms uint8
}

// New creates a machine starting in M-mode at pc 0.
func New(m *mem.Memory) *Machine {
	return &Machine{
		Mem:  m,
		Vec:  vector.NewUnit(vector.DefaultVLEN),
		Priv: isa.PrivM,
		csr:  make(map[uint16]uint64),
		stlb: make(map[uint64]stlbEntry),
	}
}

// Reg reads an architectural register by unified number.
func (m *Machine) Reg(r isa.Reg) uint64 {
	switch {
	case r.IsX():
		return m.X[r.Index()]
	case r.IsF():
		return m.F[r.Index()]
	}
	return 0
}

func (m *Machine) setReg(r isa.Reg, v uint64) {
	switch {
	case r.IsX():
		if r != isa.Zero {
			m.X[r.Index()] = v
		}
	case r.IsF():
		m.F[r.Index()] = v
	}
}

// Cycles is the functional machine's notion of elapsed cycles: CycleModel
// applied to the retired-instruction count, or Instret itself (an IPC-1
// machine) when no model is installed.
func (m *Machine) Cycles() uint64 {
	if m.CycleModel != nil {
		return m.CycleModel(m.Instret)
	}
	return m.Instret
}

// CSR reads a CSR (modelled subset; unknown CSRs read as 0).
func (m *Machine) CSR(num uint16) uint64 {
	switch num {
	case isa.CSRCycle, isa.CSRMcycle, isa.CSRTime:
		return m.Cycles() // the functional model has no real cycles
	case isa.CSRInstret, isa.CSRMinstret:
		return m.Instret
	case isa.CSRVl:
		return m.Vec.VL
	case isa.CSRVtype:
		return uint64(m.Vec.VType)
	case isa.CSRVlenb:
		return uint64(m.Vec.File.VLENBits / 8)
	case isa.CSRFflags:
		return m.csr[isa.CSRFcsr] & 0x1F
	case isa.CSRFrm:
		return m.csr[isa.CSRFcsr] >> 5 & 7
	case isa.CSRMip:
		v := m.csr[num]
		if m.IntSource != nil {
			v |= m.IntSource()
		}
		return v
	}
	return m.csr[num]
}

// SetCSR writes a CSR, applying side effects (satp flushes the soft TLB;
// the fflags/frm windows alias into fcsr, which is the canonical storage).
func (m *Machine) SetCSR(num uint16, v uint64) {
	switch num {
	case isa.CSRSatp:
		m.stlb = make(map[uint64]stlbEntry)
	case isa.CSRVl, isa.CSRVtype, isa.CSRVlenb, isa.CSRCycle, isa.CSRInstret:
		return // read-only
	case isa.CSRFflags:
		m.csr[isa.CSRFcsr] = m.csr[isa.CSRFcsr]&^uint64(0x1F) | v&0x1F
		m.csr[isa.CSRMstatus] |= isa.MstatusFSDirty
		return
	case isa.CSRFrm:
		m.csr[isa.CSRFcsr] = m.csr[isa.CSRFcsr]&^uint64(0xE0) | v&7<<5
		m.csr[isa.CSRMstatus] |= isa.MstatusFSDirty
		return
	case isa.CSRFcsr:
		m.csr[isa.CSRFcsr] = v & 0xFF
		m.csr[isa.CSRMstatus] |= isa.MstatusFSDirty
		return
	// Interrupt CSR WARL windows: unimplemented bits are wired to zero, and
	// mip's machine-level bits are device-driven (IntSource), never stored.
	// The same masks live in core.SetCSR — csr_window_test pins the parity.
	case isa.CSRMie:
		m.csr[num] = v & isa.MieWritableMask
		return
	case isa.CSRMip:
		m.csr[num] = v & isa.MipWritableMask
		return
	case isa.CSRMideleg:
		m.csr[num] = v & isa.MidelegWritableMask
		return
	}
	m.csr[num] = v
}

// accrueFFlags ORs newly raised IEEE exception flags into fcsr and marks the
// floating-point context dirty in mstatus. Called for every executed FP
// instruction even when flags is 0: any FP-unit execution leaves FS=Dirty.
func (m *Machine) accrueFFlags(flags uint8) {
	m.csr[isa.CSRFcsr] |= uint64(flags)
	m.csr[isa.CSRMstatus] |= isa.MstatusFSDirty
}

// trapError carries an architectural exception through the execute switch.
type trapError struct {
	cause int
	tval  uint64
}

func (t *trapError) Error() string {
	return fmt.Sprintf("trap cause=%d tval=%#x", t.cause, t.tval)
}

// translate resolves a virtual address or raises a page fault.
func (m *Machine) translate(va uint64, acc mmu.Access) (uint64, error) {
	satp := m.csr[isa.CSRSatp]
	if isa.SatpMode(satp) != isa.SatpModeSV39 || m.Priv == isa.PrivM {
		return va, nil
	}
	key := va >> 12 << 2 // tag soft-TLB entries by page and access class
	if acc == mmu.AccStore {
		key |= 1
	} else if acc == mmu.AccFetch {
		key |= 2
	}
	if e, ok := m.stlb[key]; ok {
		return e.base | va&(1<<e.bits-1), nil
	}
	res, err := mmu.Walk(func(pa uint64) uint64 { return m.Mem.Read(pa, 8) },
		satp, va, acc, m.Priv)
	if err != nil {
		pf := err.(*mmu.PageFault)
		return 0, &trapError{cause: pf.Cause(), tval: va}
	}
	mask := uint64(1)<<res.PageBits - 1
	m.stlb[key] = stlbEntry{base: res.PA &^ mask, bits: res.PageBits, perms: res.Perms}
	return res.PA, nil
}

func (m *Machine) load(va uint64, size int) (uint64, error) {
	pa, err := m.translate(va, mmu.AccLoad)
	if err != nil {
		return 0, err
	}
	if m.MMIO != nil && m.MMIO.Covers(pa) {
		return m.MMIO.Read(pa, size), nil
	}
	return m.Mem.Read(pa, size), nil
}

func (m *Machine) store(va uint64, size int, v uint64) error {
	pa, err := m.translate(va, mmu.AccStore)
	if err != nil {
		return err
	}
	if m.MMIO != nil && m.MMIO.Covers(pa) {
		m.MMIO.Write(pa, size, v)
		return nil
	}
	m.Mem.Write(pa, size, v)
	// Any store that touches the reserved line invalidates an LR/SC
	// reservation (64-byte granule, mirroring the pipeline's cache line).
	// The granule is tracked in PHYSICAL addresses, like the core's, so a
	// store through a virtual alias of the reserved line kills it too.
	if m.resValid && pa>>6 == m.resAddr>>6 {
		m.resValid = false
	}
	if m.OnStore != nil {
		m.OnStore(pa, size)
	}
	return nil
}

// Reservation exposes the LR/SC reservation state for co-simulation.
func (m *Machine) Reservation() (valid bool, addr uint64) {
	return m.resValid, m.resAddr
}

// KillReservation drops the reservation when a write to [pa, pa+size) touches
// the reserved 64-byte granule. The multi-hart cosimulator broadcasts every
// emulator's store here so a remote hart's write invalidates this hart's LR/SC
// reservation exactly as the coherence fabric does in the pipeline world.
func (m *Machine) KillReservation(pa uint64, size int) {
	if m.resValid && pa>>6 == m.resAddr>>6 {
		m.resValid = false
	}
}

// Fetch decodes the instruction at va.
func (m *Machine) Fetch(va uint64) (isa.Inst, error) {
	pa, err := m.translate(va, mmu.AccFetch)
	if err != nil {
		return isa.Inst{}, err
	}
	lo := uint16(m.Mem.Read(pa, 2))
	if lo&3 == 3 {
		// 32-bit: the upper half may sit on the next (possibly different) page
		pa2, err := m.translate(va+2, mmu.AccFetch)
		if err != nil {
			return isa.Inst{}, err
		}
		hi := uint16(m.Mem.Read(pa2, 2))
		return isa.Decode(uint32(lo) | uint32(hi)<<16), nil
	}
	return isa.Decode16(lo), nil
}

// checkInterrupt takes the highest-priority enabled machine interrupt
// (MEI > MSI > MTI) before an instruction executes, mirroring the core's
// retirement-boundary sample: mcause gets bit 63, mepc points at the
// not-yet-executed instruction, and the MIE/MPIE/MPP dance matches
// core.takeInterrupt bit for bit. It returns true when a trap was taken —
// the step is consumed without executing or counting an instruction.
func (m *Machine) checkInterrupt() bool {
	if m.IntSource == nil {
		return false
	}
	pend := m.IntSource() & m.csr[isa.CSRMie]
	if pend == 0 {
		return false
	}
	// M-mode interrupts fire when running below M, or in M with MIE set.
	if m.Priv == isa.PrivM && m.csr[isa.CSRMstatus]&mstatusMIE == 0 {
		return false
	}
	var cause uint64
	switch {
	case pend&(1<<isa.IntMExt) != 0:
		cause = isa.IntMExt
	case pend&(1<<isa.IntMSoft) != 0:
		cause = isa.IntMSoft
	default:
		cause = isa.IntMTimer
	}
	target := m.csr[isa.CSRMtvec] &^ 3
	if target == 0 {
		return false // no handler installed: leave it pending, like the core
	}
	m.csr[isa.CSRMepc] = m.PC
	m.csr[isa.CSRMcause] = 1<<63 | cause
	m.csr[isa.CSRMtval] = 0
	st := m.csr[isa.CSRMstatus]
	st = st&^mstatusMPIE | (st&mstatusMIE)<<4&mstatusMPIE
	st &^= mstatusMIE
	st = st&^mstatusMPP | uint64(m.Priv)<<11
	m.csr[isa.CSRMstatus] = st
	m.Priv = isa.PrivM
	m.PC = target
	if m.OnInterrupt != nil {
		m.OnInterrupt(cause)
	}
	return true
}

// Step executes one instruction. It returns an error only for simulator-level
// failures; architectural exceptions are handled via the trap machinery.
func (m *Machine) Step() error {
	if m.Halted {
		return nil
	}
	if m.checkInterrupt() {
		return nil
	}
	in, err := m.Fetch(m.PC)
	if err != nil {
		m.enterTrap(err.(*trapError))
		return nil
	}
	if m.Trace != nil {
		m.Trace(m.PC, in)
	}
	nextPC := m.PC + uint64(in.Size)
	err = m.exec(&in, &nextPC)
	if err != nil {
		if te, ok := err.(*trapError); ok {
			// A trapping instruction does not retire: instret must not
			// count it (the OoO core flushes it without committing).
			m.enterTrap(te)
			return nil
		}
		return err
	}
	m.PC = nextPC
	m.Instret++
	return nil
}

// Run executes until halt or the instruction budget is exhausted.
func (m *Machine) Run(maxInsts uint64) error {
	for i := uint64(0); i < maxInsts && !m.Halted; i++ {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) exec(in *isa.Inst, nextPC *uint64) error {
	op := in.Op
	switch op.Class() {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		a, b := m.Reg(in.Rs1), m.Reg(in.Rs2)
		if res, ok := isa.EvalIntALU(op, a, b, m.PC, in.Imm, in.Size); ok {
			m.setReg(in.Rd, res)
			return nil
		}
		if res, ok := isa.EvalIntALU3(op, a, b, m.Reg(in.Rd)); ok {
			m.setReg(in.Rd, res)
			return nil
		}
		return &trapError{cause: isa.ExcIllegalInst, tval: 0}

	case isa.ClassBranch:
		if isa.EvalBranch(op, m.Reg(in.Rs1), m.Reg(in.Rs2)) {
			*nextPC = m.PC + uint64(in.Imm)
		}
		return nil

	case isa.ClassJump:
		link := m.PC + uint64(in.Size)
		if op == isa.JAL {
			*nextPC = m.PC + uint64(in.Imm)
		} else {
			*nextPC = (m.Reg(in.Rs1) + uint64(in.Imm)) &^ 1
		}
		m.setReg(in.Rd, link)
		return nil

	case isa.ClassLoad:
		addr := m.memAddr(in)
		size := op.MemBytes()
		v, err := m.load(addr, size)
		if err != nil {
			return err
		}
		m.setReg(in.Rd, loadExtend(op, v, size))
		if in.Rd.IsF() {
			m.csr[isa.CSRMstatus] |= isa.MstatusFSDirty
		}
		return nil

	case isa.ClassStore:
		addr := m.memAddr(in)
		size := op.MemBytes()
		data := m.Reg(in.Rs2)
		switch op {
		case isa.XSRB, isa.XSRH, isa.XSRW, isa.XSRD:
			data = m.Reg(in.Rd) // custom stores carry data in rd
		}
		return m.store(addr, size, data)

	case isa.ClassAMO:
		return m.execAMO(in)

	case isa.ClassFPU:
		a := m.Reg(in.Rs1)
		b := m.Reg(in.Rs2)
		c := m.Reg(in.Rs3)
		res, flags, ok := isa.EvalFPUFlags(op, a, b, c)
		if !ok {
			return &trapError{cause: isa.ExcIllegalInst, tval: 0}
		}
		m.setReg(in.Rd, res)
		m.accrueFFlags(flags)
		return nil

	case isa.ClassCSR:
		return m.execCSR(in)

	case isa.ClassSys:
		return m.execSys(in, nextPC)

	case isa.ClassVSet:
		requested := m.Reg(in.Rs1)
		var vt isa.VType
		if op == isa.VSETVLI {
			vt = isa.VType(in.Imm)
		} else {
			vt = isa.VType(m.Reg(in.Rs2))
		}
		if in.Rs1 == isa.Zero && in.Rd != isa.Zero {
			// rs1=x0: request VLMAX
			requested = ^uint64(0)
		}
		vl := m.Vec.SetVL(requested, vt)
		m.setReg(in.Rd, vl)
		return nil

	case isa.ClassVALU, isa.ClassVFPU, isa.ClassVLoad, isa.ClassVStore:
		return m.execVector(in)

	case isa.ClassCacheOp:
		operand := m.Reg(in.Rs1)
		if m.OnCacheOp != nil {
			m.OnCacheOp(op, operand)
		}
		if op == isa.XTLBIASID || op == isa.XTLBIVA {
			m.stlb = make(map[uint64]stlbEntry)
		}
		return nil
	}
	return &trapError{cause: isa.ExcIllegalInst, tval: 0}
}

// memAddr computes the effective address of any scalar memory op, including
// the custom indexed forms (§VIII-A).
func (m *Machine) memAddr(in *isa.Inst) uint64 {
	switch in.Op {
	case isa.XLRB, isa.XLRH, isa.XLRW, isa.XLRD,
		isa.XSRB, isa.XSRH, isa.XSRW, isa.XSRD:
		return m.Reg(in.Rs1) + m.Reg(in.Rs2)<<uint(in.Imm&3)
	case isa.XLURB, isa.XLURH, isa.XLURW:
		return m.Reg(in.Rs1) + uint64(uint32(m.Reg(in.Rs2)))<<uint(in.Imm&3)
	}
	return m.Reg(in.Rs1) + uint64(in.Imm)
}

func loadExtend(op isa.Op, v uint64, size int) uint64 {
	if op == isa.FLW {
		return isa.BoxF32(uint32(v))
	}
	if op == isa.FLD {
		return v
	}
	if op.LoadUnsigned() {
		return v
	}
	sh := uint(64 - 8*size)
	return uint64(int64(v<<sh) >> sh)
}

func (m *Machine) execAMO(in *isa.Inst) error {
	op := in.Op
	size := op.MemBytes()
	addr := m.Reg(in.Rs1)
	// Every AMO-class op — LR included — translates once with store-class
	// permission, so a read-only page raises a store page fault up front,
	// exactly as the pipeline does (it checks writability at retire so SC
	// can never fault after a successful LR). The reservation is kept as a
	// physical address: two virtual aliases of one line share one granule.
	pa, err := m.translate(addr, mmu.AccStore)
	if err != nil {
		if te, ok := err.(*trapError); ok {
			te.cause = isa.ExcStorePageFault
		}
		return err
	}
	switch op {
	case isa.LRW, isa.LRD:
		v := m.Mem.Read(pa, size)
		m.resValid, m.resAddr = true, pa
		m.setReg(in.Rd, loadExtendSized(v, size))
	case isa.SCW, isa.SCD:
		if m.resValid && m.resAddr == pa {
			m.Mem.Write(pa, size, m.Reg(in.Rs2))
			if m.OnStore != nil {
				m.OnStore(pa, size)
			}
			m.setReg(in.Rd, 0)
		} else {
			m.setReg(in.Rd, 1)
		}
		m.resValid = false
	default:
		old := m.Mem.Read(pa, size)
		m.Mem.Write(pa, size, isa.EvalAMO(op, old, m.Reg(in.Rs2)))
		if m.resValid && pa>>6 == m.resAddr>>6 {
			m.resValid = false
		}
		if m.OnStore != nil {
			m.OnStore(pa, size)
		}
		m.setReg(in.Rd, loadExtendSized(old, size))
	}
	return nil
}

func loadExtendSized(v uint64, size int) uint64 {
	if size == 4 {
		return uint64(int64(int32(uint32(v))))
	}
	return v
}

func (m *Machine) execCSR(in *isa.Inst) error {
	var src uint64
	useImm := in.Op == isa.CSRRWI || in.Op == isa.CSRRSI || in.Op == isa.CSRRCI
	if useImm {
		src = uint64(in.Imm)
	} else {
		src = m.Reg(in.Rs1)
	}
	old := m.CSR(in.CSR)
	switch in.Op {
	case isa.CSRRW, isa.CSRRWI:
		m.SetCSR(in.CSR, src)
	case isa.CSRRS, isa.CSRRSI:
		if src != 0 {
			m.SetCSR(in.CSR, old|src)
		}
	case isa.CSRRC, isa.CSRRCI:
		if src != 0 {
			m.SetCSR(in.CSR, old&^src)
		}
	}
	m.setReg(in.Rd, old)
	return nil
}

// mstatus bit positions used by the trap machinery.
const (
	mstatusSIE  = 1 << 1
	mstatusMIE  = 1 << 3
	mstatusSPIE = 1 << 5
	mstatusMPIE = 1 << 7
	mstatusSPP  = 1 << 8
	mstatusMPP  = 3 << 11
)

func (m *Machine) execSys(in *isa.Inst, nextPC *uint64) error {
	switch in.Op {
	case isa.ECALL:
		if m.Ecall == EcallHost && m.handleHostEcall() {
			return nil
		}
		cause := isa.ExcEcallU + m.Priv
		if m.Priv == isa.PrivM {
			cause = isa.ExcEcallM
		}
		return &trapError{cause: cause}
	case isa.EBREAK:
		if m.BreakOnEbreak {
			m.Halted = true
			return nil
		}
		return &trapError{cause: isa.ExcBreakpoint, tval: m.PC}
	case isa.MRET:
		st := m.csr[isa.CSRMstatus]
		m.Priv = int(st >> 11 & 3)
		// MIE ← MPIE, MPIE ← 1, MPP ← U
		st = st&^mstatusMIE | (st&mstatusMPIE)>>4&mstatusMIE
		st |= mstatusMPIE
		st &^= mstatusMPP
		m.csr[isa.CSRMstatus] = st
		*nextPC = m.csr[isa.CSRMepc]
		return nil
	case isa.SRET:
		st := m.csr[isa.CSRMstatus]
		if st&mstatusSPP != 0 {
			m.Priv = isa.PrivS
		} else {
			m.Priv = isa.PrivU
		}
		st = st&^mstatusSIE | (st&mstatusSPIE)>>4&mstatusSIE
		st |= mstatusSPIE
		st &^= mstatusSPP
		m.csr[isa.CSRMstatus] = st
		*nextPC = m.csr[isa.CSRSepc]
		return nil
	case isa.SFENCEVMA:
		m.stlb = make(map[uint64]stlbEntry)
		return nil
	case isa.FENCE, isa.FENCEI, isa.WFI:
		return nil
	}
	return &trapError{cause: isa.ExcIllegalInst}
}

// handleHostEcall services the bare-metal host ABI; returns false when the
// syscall number is unknown (which then traps architecturally).
func (m *Machine) handleHostEcall() bool {
	switch m.X[17] { // a7
	case SysExit:
		m.Halted = true
		m.ExitCode = int(int64(m.X[10]))
		return true
	case SysWrite:
		addr, n := m.X[11], m.X[12]
		for i := uint64(0); i < n; i++ {
			pa, err := m.translate(addr+i, mmu.AccLoad)
			if err != nil {
				break
			}
			m.Output = append(m.Output, m.Mem.LoadByte(pa))
		}
		m.X[10] = n
		return true
	}
	return false
}

func (m *Machine) execVector(in *isa.Inst) error {
	scalar := m.Reg(in.Rs1)
	vin := *in
	switch in.Op {
	case isa.VLSE:
		vin.Imm = int64(m.Reg(in.Rs2))
	case isa.VSSE:
		vin.Imm = int64(m.Reg(in.Rs3))
	}
	var memErr error
	ld := func(addr uint64, size int) uint64 {
		v, err := m.load(addr, size)
		if err != nil && memErr == nil {
			memErr = err
		}
		return v
	}
	st := func(addr uint64, size int, v uint64) {
		if err := m.store(addr, size, v); err != nil && memErr == nil {
			memErr = err
		}
	}
	xres, hasX, err := m.Vec.Exec(vin, scalar, ld, st)
	if err != nil {
		return &trapError{cause: isa.ExcIllegalInst}
	}
	if memErr != nil {
		return memErr
	}
	if hasX {
		m.setReg(in.Rd, xres)
	}
	return nil
}

// enterTrap implements the M/S trap entry flow with medeleg-based delegation.
func (m *Machine) enterTrap(t *trapError) {
	deleg := m.csr[isa.CSRMedeleg]
	toS := m.Priv != isa.PrivM && deleg>>uint(t.cause)&1 == 1
	st := m.csr[isa.CSRMstatus]
	if toS {
		m.csr[isa.CSRSepc] = m.PC
		m.csr[isa.CSRScause] = uint64(t.cause)
		m.csr[isa.CSRStval] = t.tval
		// SPIE ← SIE, SIE ← 0, SPP ← prior priv
		st = st&^mstatusSPIE | (st&mstatusSIE)<<4&mstatusSPIE
		st &^= mstatusSIE
		if m.Priv == isa.PrivS {
			st |= mstatusSPP
		} else {
			st &^= mstatusSPP
		}
		m.csr[isa.CSRMstatus] = st
		m.Priv = isa.PrivS
		m.PC = m.csr[isa.CSRStvec] &^ 3
		if m.csr[isa.CSRStvec] == 0 {
			// Same no-handler convention as the mtvec==0 path below, so a
			// delegated fault halts instead of spinning at VA 0.
			m.Halted = true
			m.ExitCode = -(16 + t.cause)
		}
		return
	}
	m.csr[isa.CSRMepc] = m.PC
	m.csr[isa.CSRMcause] = uint64(t.cause)
	m.csr[isa.CSRMtval] = t.tval
	st = st&^mstatusMPIE | (st&mstatusMIE)<<4&mstatusMPIE
	st &^= mstatusMIE
	st = st&^mstatusMPP | uint64(m.Priv)<<11
	m.csr[isa.CSRMstatus] = st
	m.Priv = isa.PrivM
	m.PC = m.csr[isa.CSRMtvec] &^ 3
	if m.csr[isa.CSRMtvec] == 0 {
		// No trap handler installed: a real bare-metal harness would spin;
		// halt with a distinctive code so tests notice immediately.
		m.Halted = true
		m.ExitCode = -(16 + t.cause)
	}
}
