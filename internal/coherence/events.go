package coherence

import "xt910/internal/cache"

// OwnerKind classifies a line-ownership transition on the cluster bus. The
// multi-hart cosimulator's store-order oracle consumes these events to keep
// an independent model of which port may legally retire a store to each line
// (DESIGN.md "Store-order oracle").
type OwnerKind uint8

const (
	// OwnExcl: port gained write ownership of the line (exclusive fetch,
	// upgrade of a shared copy, or a read fetch that found no other sharer
	// and installed Exclusive — which a store may silently promote to
	// Modified without further bus traffic).
	OwnExcl OwnerKind = iota
	// OwnShared: port gained a read-only copy alongside other holders.
	OwnShared
	// OwnDowngrade: port kept its copy but lost write ownership
	// (Modified→Owned or Exclusive→Shared from a remote read).
	OwnDowngrade
	// OwnRelease: port lost its copy entirely (invalidation, eviction,
	// writeback, or back-invalidation from an inclusive L2 eviction).
	OwnRelease
)

// String names the transition for divergence reports.
func (k OwnerKind) String() string {
	switch k {
	case OwnExcl:
		return "excl"
	case OwnShared:
		return "shared"
	case OwnDowngrade:
		return "downgrade"
	case OwnRelease:
		return "release"
	}
	return "?"
}

// OwnerEvent is one ownership transition: port's hold on the 64-byte line
// containing Line changed as described by Kind.
type OwnerEvent struct {
	Line uint64 // line-aligned physical address
	Port int    // L1 bus port (== hart id within the cluster)
	Kind OwnerKind
}

// fireOwner reports a transition to the observer, if any is attached.
func (l2 *L2) fireOwner(addr uint64, port int, kind OwnerKind) {
	if l2.OwnerHook != nil {
		l2.OwnerHook(OwnerEvent{Line: l2.Cache.LineAddr(addr), Port: port, Kind: kind})
	}
}

// dropSharer removes port's snoop-filter bit for addr's line and reports the
// release. L1 clean evictions and cache-maintenance invalidations route
// through here (instead of mutating the snoop filter directly) so the
// ownership stream stays complete.
func (l2 *L2) dropSharer(addr uint64, port int) {
	l2.snoop.Remove(l2.Cache.LineAddr(addr), port)
	l2.fireOwner(addr, port, OwnRelease)
}

// InjectOwnershipGrant corrupts the coherence state the way a dropped
// invalidation message would: port's L1 gains a Modified copy of addr's line
// and the snoop filter records it as the sole holder, while every other L1
// silently keeps its (now stale) copy — no snoops are sent and no ownership
// events fire. Fault-injection campaigns use this to prove the store-order
// oracle catches protocol violations that architectural state compare alone
// misses.
func (l2 *L2) InjectOwnershipGrant(addr uint64, port int) {
	if port < 0 || port >= len(l2.l1s) {
		return
	}
	addr = l2.Cache.LineAddr(addr)
	l1 := l2.l1s[port]
	if line := l1.Lookup(addr); line != nil && line.State != cache.Invalid {
		line.State = cache.Modified
		line.Dirty = true
	} else {
		l1.Fill(addr, cache.Modified, 0, false)
	}
	l2.snoop.SetExclusive(addr, port)
}
