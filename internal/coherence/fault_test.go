package coherence

import (
	"math/rand"
	"testing"

	"xt910/internal/cache"
	"xt910/internal/mem"
)

// Fault-injection tests for the §II reliability features: the L2 "supports
// both ECC and parity check". Parity detects injected upsets; ECC corrects
// them transparently.

func TestFaultInjectionParityDetects(t *testing.T) {
	dram := mem.NewDRAM()
	l2 := NewL2(cache.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64,
		HitLatency: 10, Parity: true}, dram)
	d := NewL1D(cache.Config{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64,
		HitLatency: 2, Parity: true}, l2)

	rng := rand.New(rand.NewSource(12))
	var resident []uint64
	for i := 0; i < 200; i++ {
		addr := uint64(rng.Intn(1<<18)) &^ 63
		d.Access(addr, false, uint64(i*4))
		resident = append(resident, addr)
	}
	// no errors before injection
	for _, a := range resident {
		d.Cache.VerifyParity(a)
	}
	if d.Cache.Stats.ParityErrors != 0 {
		t.Fatal("phantom parity errors")
	}
	// inject upsets into a handful of resident lines and sweep
	injected := 0
	for _, a := range resident[:40] {
		if d.Cache.InjectParityError(a) {
			injected++
		}
	}
	detected := 0
	for _, a := range resident {
		if !d.Cache.VerifyParity(a) {
			detected++
		}
	}
	if detected == 0 || uint64(detected) != d.Cache.Stats.ParityErrors {
		t.Fatalf("parity detection broken: injected>=%d detected=%d counted=%d",
			injected, detected, d.Cache.Stats.ParityErrors)
	}
}

func TestFaultInjectionECCCorrects(t *testing.T) {
	dram := mem.NewDRAM()
	l2 := NewL2(cache.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64,
		HitLatency: 10, Parity: true, ECC: true}, dram)
	d := NewL1D(cache.Config{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64,
		HitLatency: 2}, l2)
	d.Access(0x4000, false, 0)
	// upset the L2 copy; ECC must correct on verification
	if !l2.Cache.InjectParityError(0x4000) {
		t.Fatal("line not resident in inclusive L2")
	}
	if !l2.Cache.VerifyParity(0x4000) {
		t.Fatal("ECC should have corrected the upset")
	}
	if l2.Cache.Stats.ECCCorrected != 1 {
		t.Fatalf("corrections = %d", l2.Cache.Stats.ECCCorrected)
	}
	// the corrected line verifies cleanly afterwards
	if !l2.Cache.VerifyParity(0x4000) || l2.Cache.Stats.ECCCorrected != 1 {
		t.Fatal("correction was not persistent")
	}
}
