// Package coherence implements the XT-910 multi-core memory fabric (§VI):
// the shared, inclusive L2 cache with its MOSEI coherence protocol, the snoop
// filter that limits inter-core traffic, the intra-cluster bus, and the
// Ncore-style interconnect joining up to four clusters.
package coherence

import (
	"xt910/internal/cache"
	"xt910/internal/mem"
)

// Stats counts fabric events.
type Stats struct {
	Requests       uint64
	L2Hits         uint64
	L2Misses       uint64
	SnoopsSent     uint64 // snoops actually delivered to an L1
	SnoopsFiltered uint64 // snoops suppressed by the snoop filter
	Invalidations  uint64 // L1 lines invalidated by coherence
	Downgrades     uint64 // M/E → O/S transitions from remote reads
	BackInvals     uint64 // inclusive-eviction back-invalidations
	DirtyTransfers uint64 // cache-to-cache supplies of dirty data
	Writebacks     uint64 // L2 → DRAM writebacks
	CrossCluster   uint64 // requests escalated to the Ncore interconnect
}

// L2 is one cluster's shared inclusive L2 cache plus its local bus.
type L2 struct {
	Cache *cache.Cache
	DRAM  *mem.DRAM

	// BusLatency is the L1→L2 request latency; HitLatency is the L2 array
	// access time; TransferLatency is a cache-to-cache dirty supply.
	BusLatency      int
	HitLatency      int
	TransferLatency int
	// GapCycles models L2 port bandwidth (minimum spacing between requests).
	GapCycles int

	l1s      []*cache.Cache
	snoop    *SnoopFilter
	nextFree uint64
	ncore    *Ncore
	id       int
	Stats    Stats

	// OwnerHook, when set, observes every line-ownership transition on the
	// cluster bus (see OwnerEvent). The SMP cosimulator's store-order oracle
	// attaches here; nil costs nothing.
	OwnerHook func(OwnerEvent)
}

// NewL2 builds a cluster L2 with XT-910-like latencies.
func NewL2(cfg cache.Config, dram *mem.DRAM) *L2 {
	if cfg.HitLatency == 0 {
		cfg.HitLatency = 10
	}
	return &L2{
		Cache:           cache.New(cfg),
		DRAM:            dram,
		BusLatency:      4,
		HitLatency:      cfg.HitLatency,
		TransferLatency: 12,
		GapCycles:       2,
		snoop:           NewSnoopFilter(),
	}
}

// RegisterL1 attaches a core's L1 data cache to the cluster bus and returns
// its port number.
func (l2 *L2) RegisterL1(c *cache.Cache) int {
	l2.l1s = append(l2.l1s, c)
	return len(l2.l1s) - 1
}

// port arbitration: returns the cycle the request starts service.
func (l2 *L2) arbitrate(now uint64) uint64 {
	start := now + uint64(l2.BusLatency)
	if l2.nextFree > start {
		start = l2.nextFree
	}
	l2.nextFree = start + uint64(l2.GapCycles)
	return start
}

// FetchLine services an L1 miss from core `who` for the line containing addr.
// excl requests write permission. It returns the data-ready cycle and the
// MOSEI state the requesting L1 must install.
func (l2 *L2) FetchLine(who int, addr uint64, excl bool, now uint64) (done uint64, st cache.State) {
	addr = l2.Cache.LineAddr(addr)
	l2.Stats.Requests++
	t := l2.arbitrate(now)

	// Snoop the other L1s, guided by the snoop filter.
	sharers := l2.snoop.Sharers(addr)
	dirtySupply := false
	remaining := 0
	for i := range l2.l1s {
		if i == who {
			continue
		}
		if sharers&(1<<uint(i)) == 0 {
			l2.Stats.SnoopsFiltered++
			continue
		}
		l2.Stats.SnoopsSent++
		line := l2.l1s[i].Lookup(addr)
		if line == nil || line.State == cache.Invalid {
			l2.dropSharer(addr, i)
			continue
		}
		if excl {
			if line.State == cache.Modified || line.State == cache.Owned || line.Dirty {
				dirtySupply = true
			}
			l2.l1s[i].Invalidate(addr)
			l2.dropSharer(addr, i)
			l2.Stats.Invalidations++
		} else {
			switch line.State {
			case cache.Modified:
				line.State = cache.Owned
				dirtySupply = true
				l2.Stats.Downgrades++
				l2.fireOwner(addr, i, OwnDowngrade)
			case cache.Exclusive:
				line.State = cache.Shared
				l2.Stats.Downgrades++
				l2.fireOwner(addr, i, OwnDowngrade)
			}
			remaining++
		}
	}

	// L2 array lookup.
	l2line := l2.Cache.Lookup(addr)
	l2.Cache.Stats.Accesses++
	if l2line != nil {
		l2.Cache.Touch(l2line)
		l2.Stats.L2Hits++
		done = t + uint64(l2.HitLatency)
		if l2line.ReadyAt > done {
			done = l2line.ReadyAt // in-flight prefetch fill
		}
		if dirtySupply {
			done += uint64(l2.TransferLatency)
			l2.Stats.DirtyTransfers++
		}
	} else {
		l2.Cache.Stats.Misses++
		l2.Stats.L2Misses++
		fillReady := l2.fetchFromBeyond(addr, excl, t)
		l2.installL2(addr, fillReady, t, false)
		done = fillReady
	}

	if excl {
		if l := l2.Cache.Lookup(addr); l != nil {
			l.Dirty = true // the owner will write back through us eventually
		}
		l2.snoop.SetExclusive(addr, who)
		l2.fireOwner(addr, who, OwnExcl)
		return done, cache.Modified
	}
	l2.snoop.Add(addr, who)
	if remaining > 0 {
		l2.fireOwner(addr, who, OwnShared)
		return done, cache.Shared
	}
	// Sole holder: Exclusive install, silently promotable to Modified by a
	// store — so the oracle must treat it as write ownership.
	l2.fireOwner(addr, who, OwnExcl)
	return done, cache.Exclusive
}

// fetchFromBeyond brings a line into the cluster from the Ncore interconnect
// (other clusters) or DRAM.
func (l2 *L2) fetchFromBeyond(addr uint64, excl bool, now uint64) uint64 {
	if l2.ncore != nil {
		l2.Stats.CrossCluster++
		return l2.ncore.Fetch(l2.id, addr, excl, now)
	}
	return l2.DRAM.Access(now)
}

// installL2 fills the L2 array, maintaining inclusion: evicting a line
// back-invalidates every L1 copy via the snoop filter.
func (l2 *L2) installL2(addr uint64, readyAt, now uint64, prefetched bool) {
	evicted, had, wb := l2.Cache.Fill(addr, cache.Exclusive, readyAt, prefetched)
	if wb {
		// victim writeback: bandwidth charged near the request time (the
		// write buffer hides its latency and must not block the channel
		// until the fill completes)
		l2.DRAM.Access(now)
		l2.Stats.Writebacks++
	}
	if had {
		for i, l1 := range l2.l1s {
			if l2.snoop.Sharers(evicted)&(1<<uint(i)) != 0 {
				l1.Invalidate(evicted)
				l2.Stats.BackInvals++
				l2.fireOwner(evicted, i, OwnRelease)
			}
		}
		l2.snoop.Drop(evicted)
	}
}

// Upgrade grants write permission for a line core `who` already holds in a
// shared state, invalidating the other copies.
func (l2 *L2) Upgrade(who int, addr uint64, now uint64) uint64 {
	addr = l2.Cache.LineAddr(addr)
	t := l2.arbitrate(now)
	for i := range l2.l1s {
		if i == who || l2.snoop.Sharers(addr)&(1<<uint(i)) == 0 {
			continue
		}
		l2.Stats.SnoopsSent++
		l2.l1s[i].Invalidate(addr)
		l2.dropSharer(addr, i)
		l2.Stats.Invalidations++
	}
	if l := l2.Cache.Lookup(addr); l != nil {
		l.Dirty = true
	}
	l2.snoop.SetExclusive(addr, who)
	l2.fireOwner(addr, who, OwnExcl)
	return t + 2
}

// Writeback accepts a dirty line evicted from an L1.
func (l2 *L2) Writeback(who int, addr uint64, now uint64) {
	addr = l2.Cache.LineAddr(addr)
	l2.arbitrate(now)
	l2.dropSharer(addr, who)
	if l := l2.Cache.Lookup(addr); l != nil {
		l.Dirty = true
		return
	}
	// Inclusion means this should not happen, but tolerate it: forward to DRAM.
	l2.DRAM.Access(now)
	l2.Stats.Writebacks++
}

// FetchInst services an L1 instruction-cache miss. Instruction lines are
// read-only and are not tracked by the snoop filter.
func (l2 *L2) FetchInst(addr uint64, now uint64) uint64 {
	addr = l2.Cache.LineAddr(addr)
	l2.Stats.Requests++
	t := l2.arbitrate(now)
	l2.Cache.Stats.Accesses++
	if l := l2.Cache.Lookup(addr); l != nil {
		l2.Cache.Touch(l)
		l2.Stats.L2Hits++
		done := t + uint64(l2.HitLatency)
		if l.ReadyAt > done {
			done = l.ReadyAt
		}
		return done
	}
	l2.Cache.Stats.Misses++
	l2.Stats.L2Misses++
	ready := l2.fetchFromBeyond(addr, false, t)
	l2.installL2(addr, ready, t, false)
	return ready
}

// ReadWord is the timed PTE/word read used by the page-table walker: it goes
// through the L2 (walks hit cached page tables) and returns the data cycle.
func (l2 *L2) ReadWord(pa uint64, now uint64) uint64 {
	return l2.FetchInst(pa, now) // same read-only path and timing as I-fetch
}

// Prefetch installs a line into the L2 without a demand requester (§V-C L2
// destination prefetch). It charges DRAM occupancy but stalls nobody.
func (l2 *L2) Prefetch(addr uint64, now uint64) {
	addr = l2.Cache.LineAddr(addr)
	if l2.Cache.Lookup(addr) != nil {
		return
	}
	t := l2.arbitrate(now)
	ready := l2.fetchFromBeyond(addr, false, t)
	l2.installL2(addr, ready, t, true)
}

// HasLine reports whether the line is resident (used by tests and the
// inclusion property checker).
func (l2 *L2) HasLine(addr uint64) bool {
	return l2.Cache.Lookup(l2.Cache.LineAddr(addr)) != nil
}

// CheckInclusion verifies the inclusive-hierarchy invariant: every valid L1
// line is present in the L2. It returns the number of violations (0 when the
// invariant holds); property tests call it after random workloads.
func (l2 *L2) CheckInclusion() int {
	violations := 0
	for _, l1 := range l2.l1s {
		l1.ForEachValid(func(addr uint64) {
			if l2.Cache.Lookup(addr) == nil {
				violations++
			}
		})
	}
	return violations
}
