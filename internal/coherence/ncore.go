package coherence

import "xt910/internal/mem"

// Ncore is the inter-cluster interconnect (§VI: "up to 4 CPU clusters are
// connected using Ncore"). It keeps the cluster L2s coherent with a simple
// write-invalidate protocol: an exclusive fetch from one cluster invalidates
// the line in every other cluster's hierarchy; a shared fetch leaves remote
// copies in place but flushes remote dirty data first.
type Ncore struct {
	DRAM *mem.DRAM
	// HopLatency is the cluster-to-interconnect latency per crossing.
	HopLatency int

	clusters []*L2
	Stats    struct {
		Fetches       uint64
		RemoteHits    uint64 // lines found dirty or resident in a remote cluster
		Invalidations uint64
	}
}

// NewNcore creates the interconnect around a shared DRAM.
func NewNcore(dram *mem.DRAM) *Ncore {
	return &Ncore{DRAM: dram, HopLatency: 20}
}

// Attach registers a cluster L2 and returns its cluster id.
func (n *Ncore) Attach(l2 *L2) int {
	l2.ncore = n
	l2.id = len(n.clusters)
	n.clusters = append(n.clusters, l2)
	return l2.id
}

// Fetch services a cluster L2 miss, snooping the other clusters.
func (n *Ncore) Fetch(fromCluster int, addr uint64, excl bool, now uint64) uint64 {
	n.Stats.Fetches++
	t := now + uint64(n.HopLatency)
	remote := false
	for i, c := range n.clusters {
		if i == fromCluster {
			continue
		}
		line := c.Cache.Lookup(addr)
		if line == nil {
			continue
		}
		remote = true
		if excl {
			// invalidate the whole remote hierarchy for this line
			for j, l1 := range c.l1s {
				if c.snoop.Sharers(addr)&(1<<uint(j)) != 0 {
					l1.Invalidate(addr)
					c.fireOwner(addr, j, OwnRelease)
				}
			}
			c.snoop.Drop(addr)
			if c.Cache.Invalidate(addr) {
				n.DRAM.Access(t)
			}
			n.Stats.Invalidations++
		} else if line.Dirty {
			// flush remote dirty data so DRAM supplies fresh bytes
			line.Dirty = false
			n.DRAM.Access(t)
		}
	}
	if remote {
		n.Stats.RemoteHits++
		// cache-to-cache across the interconnect: cheaper than DRAM
		return t + uint64(2*n.HopLatency)
	}
	return n.DRAM.Access(t)
}

// Clusters returns the attached cluster count.
func (n *Ncore) Clusters() int { return len(n.clusters) }
