package coherence

import "xt910/internal/cache"

// Memory-hierarchy service levels reported by L1D.Access via LastLevel: the
// deepest level the access had to reach. The CPI stack's backend-memory
// sub-buckets are keyed on this.
const (
	LevelL1 uint8 = iota
	LevelL2
	LevelDRAM
)

// L1D is one core's coherent L1 data cache port onto the cluster bus.
// The LSU's load and store pipes call Access; the data prefetcher calls
// Prefetch.
type L1D struct {
	Cache *cache.Cache
	l2    *L2
	port  int
	// mshr holds the completion times of in-flight demand misses; a new
	// demand miss waits for the earliest slot (limited miss-level
	// parallelism, like real miss-status holding registers).
	mshr []uint64

	// LastLevel records which hierarchy level served the most recent Access
	// (LevelL1 for hits, LevelL2 for L1 misses the shared L2 supplied,
	// LevelDRAM when the line had to come from beyond the cluster).
	LastLevel uint8
}

// NewL1D creates an L1 data cache attached to the cluster's L2.
func NewL1D(cfg cache.Config, l2 *L2) *L1D {
	c := cache.New(cfg)
	n := cfg.MSHRs
	if n <= 0 {
		n = 8
	}
	return &L1D{Cache: c, l2: l2, port: l2.RegisterL1(c), mshr: make([]uint64, n)}
}

// mshrStart returns the cycle a new demand miss can begin service and
// reserves the slot until done (computed by the caller via reserve).
func (d *L1D) mshrStart(now uint64) (start uint64, slot int) {
	slot = 0
	for i := 1; i < len(d.mshr); i++ {
		if d.mshr[i] < d.mshr[slot] {
			slot = i
		}
	}
	start = now
	if d.mshr[slot] > start {
		start = d.mshr[slot]
	}
	return start, slot
}

// Port returns this cache's bus port number.
func (d *L1D) Port() int { return d.port }

// Access performs a demand load (write=false) or store (write=true) to addr
// and returns the data-ready cycle plus whether it hit in the L1.
func (d *L1D) Access(addr uint64, write bool, now uint64) (done uint64, hit bool) {
	c := d.Cache
	c.Stats.Accesses++
	d.LastLevel = LevelL1
	line := c.Lookup(addr)
	if line != nil && line.State != cache.Invalid {
		c.Touch(line)
		done = now + uint64(c.Config().HitLatency)
		if line.ReadyAt > done {
			done = line.ReadyAt // merge with an in-flight fill
		}
		if write {
			switch line.State {
			case cache.Shared, cache.Owned:
				done = d.l2.Upgrade(d.port, addr, now)
				line.State = cache.Modified
			case cache.Exclusive:
				line.State = cache.Modified
			}
			line.Dirty = true
		}
		return done, true
	}
	c.Stats.Misses++
	start := now
	slot := -1
	if !write {
		// demand loads contend for the MSHRs; stores drain through the
		// write buffer
		start, slot = d.mshrStart(now)
	}
	beyond := d.l2.Stats.L2Misses
	ready, st := d.l2.FetchLine(d.port, addr, write, start)
	if d.l2.Stats.L2Misses > beyond {
		d.LastLevel = LevelDRAM
	} else {
		d.LastLevel = LevelL2
	}
	if slot >= 0 {
		d.mshr[slot] = ready
	}
	d.install(addr, st, ready, now, false)
	if write {
		if l := c.Lookup(addr); l != nil {
			l.Dirty = true
		}
	}
	return ready, false
}

// Prefetch brings addr's line into the L1 in a shared-read state without a
// demand requester (§V-C L1-destination prefetch).
func (d *L1D) Prefetch(addr uint64, now uint64) {
	c := d.Cache
	if l := c.Lookup(addr); l != nil && l.State != cache.Invalid {
		return
	}
	ready, st := d.l2.FetchLine(d.port, addr, false, now)
	d.install(addr, st, ready, now, true)
}

func (d *L1D) install(addr uint64, st cache.State, ready, now uint64, prefetched bool) {
	evicted, had, wb := d.Cache.Fill(addr, st, ready, prefetched)
	if had {
		if wb {
			// the victim drains through the write buffer; its bandwidth is
			// charged near the request time — charging it at the (future)
			// fill time would serialize the whole port behind it
			d.l2.Writeback(d.port, evicted, now)
		} else {
			d.l2.dropSharer(evicted, d.port)
		}
	}
}

// FlushAll writes back all dirty lines and invalidates the cache
// (dcache.ciall-style maintenance).
func (d *L1D) FlushAll(now uint64) {
	d.Cache.ForEachValid(func(addr uint64) {
		if l := d.Cache.Lookup(addr); l != nil &&
			(l.Dirty || l.State == cache.Modified || l.State == cache.Owned) {
			d.l2.Writeback(d.port, addr, now)
		} else {
			d.l2.dropSharer(addr, d.port)
		}
	})
	d.Cache.InvalidateAll()
}

// FlushVA writes back/invalidates the single line containing addr
// (dcache.cva / dcache.iva custom ops).
func (d *L1D) FlushVA(addr uint64, invalidate bool, now uint64) {
	l := d.Cache.Lookup(addr)
	if l == nil {
		return
	}
	if l.Dirty || l.State == cache.Modified || l.State == cache.Owned {
		d.l2.Writeback(d.port, addr, now)
		l.Dirty = false
		l.State = cache.Shared
	}
	if invalidate {
		d.Cache.Invalidate(addr)
		d.l2.dropSharer(addr, d.port)
	}
}

// L1I is a core's instruction cache. Instruction lines are read-only; the
// cache refills through the shared L2 without coherence-state tracking.
type L1I struct {
	Cache *cache.Cache
	l2    *L2
}

// NewL1I creates an instruction cache attached to the cluster L2.
func NewL1I(cfg cache.Config, l2 *L2) *L1I {
	return &L1I{Cache: cache.New(cfg), l2: l2}
}

// Fetch returns the cycle at which the fetch group at addr is available.
func (i *L1I) Fetch(addr uint64, now uint64) (done uint64, hit bool) {
	c := i.Cache
	c.Stats.Accesses++
	if l := c.Lookup(addr); l != nil {
		c.Touch(l)
		done = now + uint64(c.Config().HitLatency)
		if l.ReadyAt > done {
			done = l.ReadyAt
		}
		return done, true
	}
	c.Stats.Misses++
	ready := i.l2.FetchInst(addr, now)
	c.Fill(addr, cache.Shared, ready, false)
	return ready, false
}
