package coherence

import (
	"math/rand"
	"testing"

	"xt910/internal/cache"
	"xt910/internal/mem"
)

func l1cfg() cache.Config {
	return cache.Config{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitLatency: 2}
}

func newCluster(t *testing.T, cores int) (*L2, []*L1D, *mem.DRAM) {
	t.Helper()
	dram := mem.NewDRAM()
	l2 := NewL2(cache.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, HitLatency: 10, ECC: true, Parity: true}, dram)
	l1s := make([]*L1D, cores)
	for i := range l1s {
		l1s[i] = NewL1D(l1cfg(), l2)
	}
	return l2, l1s, dram
}

func TestReadMissGetsExclusive(t *testing.T) {
	_, l1s, _ := newCluster(t, 2)
	done, hit := l1s[0].Access(0x1000, false, 100)
	if hit {
		t.Fatal("cold access must miss")
	}
	if done < 300 {
		t.Fatalf("cold miss must pay DRAM latency, done=%d", done)
	}
	l := l1s[0].Cache.Lookup(0x1000)
	if l.State != cache.Exclusive {
		t.Fatalf("sole reader should be Exclusive, got %v", l.State)
	}
}

func TestSecondReaderDowngradesToShared(t *testing.T) {
	_, l1s, _ := newCluster(t, 2)
	l1s[0].Access(0x1000, false, 0)
	l1s[1].Access(0x1000, false, 1000)
	if st := l1s[0].Cache.Lookup(0x1000).State; st != cache.Shared {
		t.Fatalf("first reader should be downgraded E->S, got %v", st)
	}
	if st := l1s[1].Cache.Lookup(0x1000).State; st != cache.Shared {
		t.Fatalf("second reader should be Shared, got %v", st)
	}
}

func TestWriteInvalidatesOthers(t *testing.T) {
	_, l1s, _ := newCluster(t, 4)
	for _, d := range l1s {
		d.Access(0x2000, false, 0)
	}
	l1s[2].Access(0x2000, true, 1000)
	for i, d := range l1s {
		l := d.Cache.Lookup(0x2000)
		if i == 2 {
			if l == nil || l.State != cache.Modified {
				t.Fatalf("writer must hold Modified")
			}
		} else if l != nil && l.State != cache.Invalid {
			t.Fatalf("core %d must be invalidated, has %v", i, l.State)
		}
	}
}

func TestRemoteReadOfDirtyLineMakesOwned(t *testing.T) {
	l2, l1s, _ := newCluster(t, 2)
	l1s[0].Access(0x3000, true, 0) // M in core 0
	l1s[1].Access(0x3000, false, 1000)
	if st := l1s[0].Cache.Lookup(0x3000).State; st != cache.Owned {
		t.Fatalf("dirty owner should become Owned (MOSEI), got %v", st)
	}
	if st := l1s[1].Cache.Lookup(0x3000).State; st != cache.Shared {
		t.Fatalf("reader should be Shared, got %v", st)
	}
	if l2.Stats.DirtyTransfers != 1 {
		t.Fatalf("dirty transfer not counted: %+v", l2.Stats)
	}
}

func TestSnoopFilterSuppressesIrrelevantSnoops(t *testing.T) {
	l2, l1s, _ := newCluster(t, 4)
	l1s[0].Access(0x4000, false, 0)
	// cores 1..3 fetch a different line: snoops toward non-sharers filtered
	l1s[1].Access(0x8000, false, 100)
	before := l2.Stats.SnoopsSent
	l1s[2].Access(0xC000, false, 200)
	if l2.Stats.SnoopsSent != before {
		t.Fatal("no snoops should be sent for unshared lines")
	}
	if l2.Stats.SnoopsFiltered == 0 {
		t.Fatal("snoop filter should be suppressing broadcasts")
	}
}

func TestL2HitFasterThanDRAM(t *testing.T) {
	_, l1s, _ := newCluster(t, 2)
	l1s[0].Access(0x5000, false, 0) // brings into L2
	// evict from core1's view: core1 cold, but line is in L2 now
	done, _ := l1s[1].Access(0x5000, false, 10000)
	if done-10000 > 60 {
		t.Fatalf("L2 hit should be fast, took %d cycles", done-10000)
	}
}

func TestInclusionInvariantRandomWorkload(t *testing.T) {
	l2, l1s, _ := newCluster(t, 4)
	rng := rand.New(rand.NewSource(2020))
	for i := 0; i < 20000; i++ {
		core := rng.Intn(4)
		addr := uint64(rng.Intn(1<<22)) &^ 63
		l1s[core].Access(addr, rng.Intn(3) == 0, uint64(i)*4)
	}
	if v := l2.CheckInclusion(); v != 0 {
		t.Fatalf("inclusion violated for %d lines", v)
	}
}

func TestSingleWriterInvariantRandomWorkload(t *testing.T) {
	// MOSEI safety: at most one L1 holds a line in M or E; if any holds
	// M/E, no other holds it in any valid state.
	_, l1s, _ := newCluster(t, 4)
	rng := rand.New(rand.NewSource(777))
	addrs := make([]uint64, 64)
	for i := range addrs {
		addrs[i] = uint64(i) * 64
	}
	for i := 0; i < 20000; i++ {
		core := rng.Intn(4)
		addr := addrs[rng.Intn(len(addrs))]
		l1s[core].Access(addr, rng.Intn(2) == 0, uint64(i)*4)
		for _, a := range addrs {
			owners, holders := 0, 0
			for _, d := range l1s {
				l := d.Cache.Lookup(a)
				if l == nil || l.State == cache.Invalid {
					continue
				}
				holders++
				if l.State == cache.Modified || l.State == cache.Exclusive {
					owners++
				}
			}
			if owners > 1 {
				t.Fatalf("step %d: line %#x has %d M/E owners", i, a, owners)
			}
			if owners == 1 && holders > 1 {
				t.Fatalf("step %d: line %#x owned exclusively but %d holders", i, a, holders)
			}
		}
	}
}

func TestBackInvalidationOnL2Evict(t *testing.T) {
	dram := mem.NewDRAM()
	// tiny L2: 4 lines, direct-mapped sets of 1 way
	l2 := NewL2(cache.Config{SizeBytes: 4 * 64, Ways: 1, LineBytes: 64, HitLatency: 5}, dram)
	d := NewL1D(l1cfg(), l2)
	d.Access(0, false, 0)
	// fill L2 set 0 with a conflicting line -> back-invalidate L1 copy
	d.Access(4*64, false, 1000)
	if l := d.Cache.Lookup(0); l != nil && l.State != cache.Invalid {
		t.Fatalf("L1 must be back-invalidated on inclusive L2 eviction")
	}
	if l2.Stats.BackInvals == 0 {
		t.Fatal("back-invalidation not counted")
	}
}

func TestL2Prefetch(t *testing.T) {
	l2, l1s, dram := newCluster(t, 1)
	l2.Prefetch(0x9000, 0)
	if dram.Accesses != 1 {
		t.Fatal("prefetch should access DRAM")
	}
	// demand access long after the prefetch completes: only L2 hit latency
	done, _ := l1s[0].Access(0x9000, false, 5000)
	if done-5000 > 60 {
		t.Fatalf("prefetched line should hit in L2, took %d", done-5000)
	}
}

func TestNcoreCrossClusterCoherence(t *testing.T) {
	dram := mem.NewDRAM()
	ncore := NewNcore(dram)
	var l1s []*L1D
	for c := 0; c < 2; c++ {
		l2 := NewL2(cache.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, HitLatency: 10}, dram)
		ncore.Attach(l2)
		l1s = append(l1s, NewL1D(l1cfg(), l2))
	}
	l1s[0].Access(0xA000, true, 0) // cluster 0 dirties the line
	l1s[1].Access(0xA000, true, 1000)
	// cluster 0's copy must be gone
	if l := l1s[0].Cache.Lookup(0xA000); l != nil && l.State != cache.Invalid {
		t.Fatalf("cross-cluster exclusive fetch must invalidate remote hierarchy")
	}
	if ncore.Stats.Invalidations == 0 {
		t.Fatal("ncore invalidations not counted")
	}
	if ncore.Clusters() != 2 {
		t.Fatal("cluster count")
	}
}

func TestWritebackPath(t *testing.T) {
	dram := mem.NewDRAM()
	l2 := NewL2(cache.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, HitLatency: 10}, dram)
	// L1 with one set: forces evictions
	d := NewL1D(cache.Config{SizeBytes: 2 * 64, Ways: 2, LineBytes: 64, HitLatency: 2}, l2)
	d.Access(0, true, 0)
	d.Access(64*128, true, 100) // different L1 set index? with 1 set they collide
	d.Access(64*256, true, 200)
	// at least one dirty eviction must have flowed back to L2
	if l := l2.Cache.Lookup(0); l == nil {
		t.Fatal("line 0 must remain in inclusive L2")
	}
}
