package coherence

// SnoopFilter tracks, per line, which L1 data caches may hold a copy. §VI:
// "A snoop filter that monitors access by the cores to the shared L2 cache
// effectively reduces the inter-core communications." Snoops are only sent to
// cores whose bit is set; all other snoops are counted as filtered.
type SnoopFilter struct {
	sharers map[uint64]uint32
}

// NewSnoopFilter returns an empty filter.
func NewSnoopFilter() *SnoopFilter {
	return &SnoopFilter{sharers: make(map[uint64]uint32)}
}

// Sharers returns the bitmap of cores that may hold the line.
func (f *SnoopFilter) Sharers(addr uint64) uint32 { return f.sharers[addr] }

// Add marks core as a sharer.
func (f *SnoopFilter) Add(addr uint64, core int) {
	f.sharers[addr] |= 1 << uint(core)
}

// SetExclusive makes core the sole holder.
func (f *SnoopFilter) SetExclusive(addr uint64, core int) {
	f.sharers[addr] = 1 << uint(core)
}

// Remove clears core's bit, dropping the entry when nobody holds the line.
func (f *SnoopFilter) Remove(addr uint64, core int) {
	v := f.sharers[addr] &^ (1 << uint(core))
	if v == 0 {
		delete(f.sharers, addr)
	} else {
		f.sharers[addr] = v
	}
}

// Drop forgets the line entirely (inclusive L2 eviction).
func (f *SnoopFilter) Drop(addr uint64) { delete(f.sharers, addr) }

// Entries reports how many lines are being tracked.
func (f *SnoopFilter) Entries() int { return len(f.sharers) }
