package soc

// CLINT is the core-local interruptor (§II: "standard CLint and PLIC
// multi-core interrupt controllers, timers"): the memory-mapped mtime /
// mtimecmp / msip registers at their conventional addresses, driving the
// machine timer and software (IPI) interrupts.
type CLINT struct {
	Base  uint64
	harts int

	mtime    uint64
	mtimecmp []uint64
	msip     []uint32

	// Divider slows mtime relative to the CPU clock (default 1: one tick
	// per cycle, keeping tests crisp).
	Divider uint64
	phase   uint64
}

// Conventional CLINT register offsets.
const (
	clintMSIPOff     = 0x0000
	clintMTimeCmpOff = 0x4000
	clintMTimeOff    = 0xBFF8
	clintSize        = 0xC000
)

// NewCLINT builds a CLINT for the given hart count at the conventional base.
func NewCLINT(harts int) *CLINT {
	c := &CLINT{
		Base:     0x02000000,
		harts:    harts,
		mtimecmp: make([]uint64, harts),
		msip:     make([]uint32, harts),
		Divider:  1,
	}
	for i := range c.mtimecmp {
		c.mtimecmp[i] = ^uint64(0) // timer disarmed at reset
	}
	return c
}

// Covers reports whether pa falls inside the CLINT's register window.
func (c *CLINT) Covers(pa uint64) bool {
	return pa >= c.Base && pa < c.Base+clintSize
}

// Tick advances mtime (called once per SoC cycle).
func (c *CLINT) Tick() {
	c.phase++
	if c.phase >= c.Divider {
		c.phase = 0
		c.mtime++
	}
}

// MTime returns the current timer value.
func (c *CLINT) MTime() uint64 { return c.mtime }

// TimerPending reports MTIP for a hart.
func (c *CLINT) TimerPending(hart int) bool {
	return hart < len(c.mtimecmp) && c.mtime >= c.mtimecmp[hart]
}

// SoftPending reports MSIP for a hart.
func (c *CLINT) SoftPending(hart int) bool {
	return hart < len(c.msip) && c.msip[hart]&1 != 0
}

// Read services a load from the register window.
func (c *CLINT) Read(pa uint64, size int) uint64 {
	off := pa - c.Base
	switch {
	case off >= clintMTimeOff && off < clintMTimeOff+8:
		return extractField(c.mtime, pa, size)
	case off >= clintMTimeCmpOff && off < clintMTimeCmpOff+uint64(8*c.harts):
		hart := int((off - clintMTimeCmpOff) / 8)
		return extractField(c.mtimecmp[hart], pa, size)
	case off < uint64(4*c.harts):
		return uint64(c.msip[off/4]) >> (8 * (pa & 3)) & mask(size)
	}
	return 0
}

// Write services a store to the register window.
func (c *CLINT) Write(pa uint64, size int, v uint64) {
	off := pa - c.Base
	switch {
	case off >= clintMTimeOff && off < clintMTimeOff+8:
		c.mtime = insertField(c.mtime, pa, size, v)
	case off >= clintMTimeCmpOff && off < clintMTimeCmpOff+uint64(8*c.harts):
		hart := int((off - clintMTimeCmpOff) / 8)
		c.mtimecmp[hart] = insertField(c.mtimecmp[hart], pa, size, v)
	case off < uint64(4*c.harts):
		hart := off / 4
		sh := 8 * (pa & 3)
		cur := uint64(c.msip[hart])
		c.msip[hart] = uint32(insertBits(cur, sh, size, v)) & 1
	}
}

func mask(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*size) - 1
}

// extractField reads `size` bytes out of a naturally-aligned 64-bit register.
func extractField(reg, pa uint64, size int) uint64 {
	sh := 8 * (pa & 7)
	return reg >> sh & mask(size)
}

func insertField(reg, pa uint64, size int, v uint64) uint64 {
	sh := 8 * (pa & 7)
	return insertBits(reg, sh, size, v)
}

func insertBits(reg, sh uint64, size int, v uint64) uint64 {
	m := mask(size) << sh
	return reg&^m | v<<sh&m
}

// PLIC is a minimal platform-level interrupt controller: per-source pending
// bits, per-hart enables, and claim/complete. External devices (or tests)
// raise lines with Raise.
type PLIC struct {
	Base    uint64
	pending uint64
	enable  []uint64 // per hart
	claimed uint64
}

// PLIC register offsets (simplified single-priority layout).
const (
	plicPendingOff = 0x1000
	plicEnableOff  = 0x2000 // + 8*hart
	plicClaimOff   = 0x200004
	plicSize       = 0x400000
)

// NewPLIC builds a PLIC at the conventional base.
func NewPLIC(harts int) *PLIC {
	return &PLIC{Base: 0x0C000000, enable: make([]uint64, harts)}
}

// Covers reports whether pa falls inside the PLIC window.
func (p *PLIC) Covers(pa uint64) bool {
	return pa >= p.Base && pa < p.Base+plicSize
}

// Raise marks external interrupt source line (1–63) pending.
func (p *PLIC) Raise(line int) {
	p.pending |= 1 << uint(line)
}

// ExtPending reports MEIP for a hart: any enabled, unclaimed source pending.
func (p *PLIC) ExtPending(hart int) bool {
	return hart < len(p.enable) && p.pending&p.enable[hart]&^p.claimed != 0
}

// Read services loads (pending word, enables, claim).
func (p *PLIC) Read(pa uint64, size int) uint64 {
	off := pa - p.Base
	switch {
	case off == plicPendingOff:
		return p.pending & mask(size)
	case off >= plicEnableOff && off < plicEnableOff+uint64(8*len(p.enable)):
		return p.enable[(off-plicEnableOff)/8] & mask(size)
	case off == plicClaimOff:
		// claim: highest pending enabled source (hart 0 semantics kept
		// simple: the claim register is shared in this lite model)
		avail := p.pending &^ p.claimed
		for line := 63; line >= 1; line-- {
			if avail&(1<<uint(line)) != 0 {
				p.claimed |= 1 << uint(line)
				return uint64(line)
			}
		}
		return 0
	}
	return 0
}

// Write services stores (enables, complete).
func (p *PLIC) Write(pa uint64, size int, v uint64) {
	off := pa - p.Base
	switch {
	case off >= plicEnableOff && off < plicEnableOff+uint64(8*len(p.enable)):
		p.enable[(off-plicEnableOff)/8] = v
	case off == plicClaimOff:
		// complete: clear pending + claimed for the source
		line := v & 63
		p.pending &^= 1 << line
		p.claimed &^= 1 << line
	}
}
