package soc

import (
	"testing"

	"xt910/internal/asm"
)

// The interrupt tests exercise the §II CLINT/PLIC machinery end to end:
// memory-mapped timer programming, asynchronous delivery, WFI parking, and
// software IPIs between harts.

func runIRQ(t *testing.T, cfg Config, src string, maxCycles uint64) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(src, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(p)
	s.Run(maxCycles)
	if !s.AllHalted() {
		t.Fatalf("system did not halt (core0: %s)", s.Cores[0].Stats.String())
	}
	return s
}

func TestTimerInterrupt(t *testing.T) {
	// program mtimecmp = mtime + 500, count timer interrupts until 5 fired
	s := runIRQ(t, DefaultConfig(), `
.equ CLINT_MTIME,    0x0200BFF8
.equ CLINT_MTIMECMP, 0x02004000
_start:
    la   t0, handler
    csrw mtvec, t0
    li   s2, 0            # interrupt count
    call arm_timer
    # enable machine timer interrupts
    li   t0, 0x80         # mie.MTIE
    csrw mie, t0
    li   t0, 0x8          # mstatus.MIE
    csrrs zero, mstatus, t0
spin:
    li   t1, 5
    blt  s2, t1, spin
    mv   a0, s2
    li   a7, 93
    ecall

arm_timer:
    li   t1, CLINT_MTIME
    ld   t2, 0(t1)
    addi t2, t2, 500
    li   t1, CLINT_MTIMECMP
    sd   t2, 0(t1)
    ret

handler:
    addi s2, s2, 1
    # re-arm (clears MTIP)
    addi sp, sp, -8
    sd   ra, 0(sp)
    call arm_timer
    ld   ra, 0(sp)
    addi sp, sp, 8
    mret
`, 2_000_000)
	if s.Cores[0].ExitCode != 5 {
		t.Fatalf("timer interrupts seen = %d, want 5", s.Cores[0].ExitCode)
	}
	if s.Cores[0].Stats.Interrupts != 5 {
		t.Fatalf("interrupt count stat = %d", s.Cores[0].Stats.Interrupts)
	}
}

func TestWFIWakesOnTimer(t *testing.T) {
	s := runIRQ(t, DefaultConfig(), `
.equ CLINT_MTIME,    0x0200BFF8
.equ CLINT_MTIMECMP, 0x02004000
_start:
    la   t0, handler
    csrw mtvec, t0
    li   t1, CLINT_MTIME
    ld   t2, 0(t1)
    li   t3, 2000
    add  t2, t2, t3
    li   t1, CLINT_MTIMECMP
    sd   t2, 0(t1)
    li   t0, 0x80
    csrw mie, t0
    li   t0, 0x8
    csrrs zero, mstatus, t0
    wfi                   # park until the timer fires
    # unreachable: the handler exits
    li   a0, -1
    li   a7, 93
    ecall
handler:
    li   a0, 42
    li   a7, 93
    ecall
`, 1_000_000)
	c := s.Cores[0]
	if c.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42 (handler)", c.ExitCode)
	}
	if c.Stats.Cycles < 1500 {
		t.Fatalf("WFI should have parked the hart ~2000 cycles, ran only %d", c.Stats.Cycles)
	}
	// while parked the hart must not have been burning retire slots
	if c.Stats.Retired > 200 {
		t.Fatalf("too many instructions retired for a parked hart: %d", c.Stats.Retired)
	}
}

func TestSoftwareIPI(t *testing.T) {
	// hart 0 sends an IPI to hart 1 through the CLINT msip register;
	// hart 1 WFIs until it arrives.
	cfg := DefaultConfig()
	cfg.CoresPerCluster = 2
	s := runIRQ(t, cfg, `
.equ CLINT_MSIP, 0x02000000
_start:
    csrr t0, mhartid
    bnez t0, receiver
    # sender: give the receiver time to park, then strike
    li   t1, 3000
delay:
    addi t1, t1, -1
    bnez t1, delay
    li   t1, CLINT_MSIP+4  # msip[hart1]
    li   t2, 1
    sw   t2, 0(t1)
    li   a0, 0
    li   a7, 93
    ecall
receiver:
    la   t0, handler
    csrw mtvec, t0
    li   t0, 0x8           # mie.MSIE
    csrw mie, t0
    li   t0, 0x8
    csrrs zero, mstatus, t0
    wfi
    li   a0, -1
    li   a7, 93
    ecall
handler:
    # acknowledge: clear our msip bit
    li   t1, CLINT_MSIP+4
    sw   zero, 0(t1)
    li   a0, 77
    li   a7, 93
    ecall
`, 2_000_000)
	if s.Cores[1].ExitCode != 77 {
		t.Fatalf("receiver exit = %d, want 77", s.Cores[1].ExitCode)
	}
	if s.Cores[1].Stats.Interrupts != 1 {
		t.Fatalf("receiver interrupts = %d", s.Cores[1].Stats.Interrupts)
	}
}

func TestPLICExternalInterrupt(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := `
.equ PLIC_ENABLE, 0x0C002000
.equ PLIC_CLAIM,  0x0C200004
_start:
    la   t0, handler
    csrw mtvec, t0
    # enable PLIC source 9 for hart 0
    li   t1, PLIC_ENABLE
    li   t2, 0x200
    sd   t2, 0(t1)
    li   t0, 0x800         # mie.MEIE
    csrw mie, t0
    li   t0, 0x8
    csrrs zero, mstatus, t0
spin:
    j    spin
handler:
    li   t1, PLIC_CLAIM
    lw   a0, 0(t1)         # claim: returns the source line
    sw   a0, 0(t1)         # complete
    li   a7, 93
    ecall
`
	p, err := asm.Assemble(src, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(p)
	// let the program set itself up, then raise the device line
	for i := 0; i < 2000 && !s.AllHalted(); i++ {
		s.Step()
	}
	s.PLIC.Raise(9)
	s.Run(100_000)
	if !s.AllHalted() {
		t.Fatal("hart never took the external interrupt")
	}
	if s.Cores[0].ExitCode != 9 {
		t.Fatalf("claimed source = %d, want 9", s.Cores[0].ExitCode)
	}
}

func TestCLINTRegisterAccess(t *testing.T) {
	c := NewCLINT(2)
	base := c.Base
	// mtimecmp word access round trip
	c.Write(base+clintMTimeCmpOff+8, 8, 0x123456789ABCDEF0) // hart 1
	if got := c.Read(base+clintMTimeCmpOff+8, 8); got != 0x123456789ABCDEF0 {
		t.Fatalf("mtimecmp round trip: %#x", got)
	}
	// 32-bit halves
	if got := c.Read(base+clintMTimeCmpOff+8+4, 4); got != 0x12345678 {
		t.Fatalf("mtimecmp high word: %#x", got)
	}
	// msip is a 1-bit register
	c.Write(base, 4, 0xFFFFFFFF)
	if got := c.Read(base, 4); got != 1 {
		t.Fatalf("msip must read back as 0/1, got %#x", got)
	}
	if !c.SoftPending(0) || c.SoftPending(1) {
		t.Fatal("msip pending bits wrong")
	}
	// timer comparison
	c.Write(base+clintMTimeCmpOff, 8, 10)
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if !c.TimerPending(0) {
		t.Fatal("timer should be pending at mtime >= mtimecmp")
	}
}
