package soc

import (
	"testing"

	"xt910/internal/asm"
	"xt910/isa"
)

func runSMP(t *testing.T, cfg Config, src string) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(src, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(p)
	s.Run(50_000_000)
	if !s.AllHalted() {
		t.Fatal("system did not halt")
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.CoresPerCluster = 3
	if bad.Validate() == nil {
		t.Error("3 cores per cluster violates Table I")
	}
	bad = DefaultConfig()
	bad.L2SizeBytes = 16 << 20
	if bad.Validate() == nil {
		t.Error("16MB L2 violates Table I")
	}
	bad = DefaultConfig()
	bad.Clusters = 5
	if bad.Validate() == nil {
		t.Error("5 clusters violates §VI")
	}
}

// the multi-core test program: each hart atomically adds (hartid+1) to a
// shared counter N times under an LR/SC spinlock, then hart 0 verifies.
const smpSrc = `
.equ N, 200
_start:
    csrr t0, mhartid
    la   t1, counter
    li   t2, N
loop:
    addi t3, t0, 1
retry:
    lr.d t4, (t1)
    add  t4, t4, t3
    sc.d t5, t4, (t1)
    bnez t5, retry
    addi t2, t2, -1
    bnez t2, loop
    # signal done: increment the done counter
    la   t1, done
incdone:
    lr.d t4, (t1)
    addi t4, t4, 1
    sc.d t5, t4, (t1)
    bnez t5, incdone
    csrr t0, mhartid
    bnez t0, halt      # secondaries exit 0
wait:
    ld   t4, 0(t1)
    li   t5, NCORES
    blt  t4, t5, wait
    la   t1, counter
    ld   a0, 0(t1)
    li   a7, 93
    ecall
halt:
    li   a0, 0
    li   a7, 93
    ecall
.align 3
counter: .dword 0
done:    .dword 0
`

func expectedSum(cores int) int {
	sum := 0
	for h := 0; h < cores; h++ {
		sum += (h + 1) * 200
	}
	return sum
}

func TestSMPSharedCounter4Cores(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoresPerCluster = 4
	src := ".equ NCORES, 4\n" + smpSrc
	s := runSMP(t, cfg, src)
	if got := s.Cores[0].ExitCode; got != expectedSum(4) {
		t.Fatalf("shared counter = %d, want %d", got, expectedSum(4))
	}
	// coherence activity must have occurred
	if s.Clusters[0].L2.Stats.Invalidations == 0 {
		t.Error("no coherence invalidations recorded")
	}
	if s.Clusters[0].L2.Stats.SnoopsFiltered == 0 {
		t.Error("snoop filter never engaged")
	}
}

func TestSMPMultiCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoresPerCluster = 2
	cfg.Clusters = 2
	src := ".equ NCORES, 4\n" + smpSrc
	s := runSMP(t, cfg, src)
	if got := s.Cores[0].ExitCode; got != expectedSum(4) {
		t.Fatalf("cross-cluster counter = %d, want %d", got, expectedSum(4))
	}
	if s.Ncore.Stats.Fetches == 0 {
		t.Error("inter-cluster traffic expected")
	}
}

func TestSMPDualCore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoresPerCluster = 2
	src := ".equ NCORES, 2\n" + smpSrc
	s := runSMP(t, cfg, src)
	if got := s.Cores[0].ExitCode; got != expectedSum(2) {
		t.Fatalf("counter = %d, want %d", got, expectedSum(2))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, uint64) {
		cfg := DefaultConfig()
		cfg.CoresPerCluster = 2
		src := ".equ NCORES, 2\n" + smpSrc
		s := runSMP(t, cfg, src)
		return s.Cores[0].ExitCode, s.Cores[0].Stats.Cycles
	}
	e1, c1 := run()
	e2, c2 := run()
	if e1 != e2 || c1 != c2 {
		t.Fatalf("simulation must be deterministic: (%d,%d) vs (%d,%d)", e1, c1, e2, c2)
	}
}

func TestTLBBroadcast(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoresPerCluster = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// warm a TLB entry on core 1 artificially, then have core 0 broadcast
	src := `
_start:
    csrr t0, mhartid
    bnez t0, other
    li   t1, 7
    tlbi.asid t1
    li   a0, 0
    li   a7, 93
    ecall
other:
    li   a0, 0
    li   a7, 93
    ecall
`
	p, err := asm.Assemble(src, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(p)
	s.Run(100000)
	if !s.AllHalted() {
		t.Fatal("did not halt")
	}
	if s.Cores[1].MMU.Stats.ASIDFlushes == 0 {
		t.Fatal("tlbi.asid must broadcast to the other hart (§V-E)")
	}
	_ = isa.XTLBIASID
}
