// Package soc assembles XT-910 cores into the paper's multi-core topology
// (§VI): one to four cores per cluster sharing an inclusive L2 with MOSEI
// coherence and a snoop filter, and up to four clusters joined by an
// Ncore-style interconnect. Cores step in deterministic lock-step, so every
// simulation is exactly reproducible.
package soc

import (
	"context"

	"xt910/internal/asm"
	"xt910/internal/cache"
	"xt910/internal/coherence"
	"xt910/internal/core"
	"xt910/internal/mem"
	"xt910/internal/trace"
	"xt910/isa"
)

// Config sizes a system (Table I bounds are enforced by Validate).
type Config struct {
	CoresPerCluster int // 1, 2 or 4
	Clusters        int // 1–4
	Core            core.Config
	L2SizeBytes     int // 256 KB – 8 MB per cluster
	L2Ways          int // 8 or 16
	DRAMLatency     int // CPU cycles (§X uses ~200)
	DRAMGap         int

	// StackBase/StackSize place each hart's stack.
	StackBase uint64
	StackSize uint64
}

// DefaultConfig is a single-core XT-910 with a 1 MB L2 and 200-cycle memory.
func DefaultConfig() Config {
	return Config{
		CoresPerCluster: 1,
		Clusters:        1,
		Core:            core.XT910Config(),
		L2SizeBytes:     1 << 20,
		L2Ways:          16,
		DRAMLatency:     200,
		DRAMGap:         4,
		StackBase:       0x400000,
		StackSize:       0x10000,
	}
}

// Validate checks the configuration against Table I.
func (c *Config) Validate() error {
	switch c.CoresPerCluster {
	case 1, 2, 4:
	default:
		return &core.ConfigError{Config: "soc", Reason: "cores per cluster must be 1, 2 or 4 (Table I)"}
	}
	if c.Clusters < 1 || c.Clusters > 4 {
		return &core.ConfigError{Config: "soc", Reason: "1–4 clusters (§VI)"}
	}
	if c.L2SizeBytes < 256<<10 || c.L2SizeBytes > 8<<20 {
		return &core.ConfigError{Config: "soc", Reason: "L2 must be 256KB–8MB (Table I)"}
	}
	if c.L2Ways != 8 && c.L2Ways != 16 {
		return &core.ConfigError{Config: "soc", Reason: "L2 is 8- or 16-way (§II)"}
	}
	return c.Core.Validate()
}

// Cluster is one CPU cluster: up to four cores and a shared L2.
type Cluster struct {
	L2    *coherence.L2
	Cores []*core.Core
}

// System is the whole SMP machine.
type System struct {
	Cfg      Config
	Mem      *mem.Memory
	DRAM     *mem.DRAM
	Ncore    *coherence.Ncore
	Clusters []*Cluster
	Cores    []*core.Core // flattened, hart id order
	CLINT    *CLINT
	PLIC     *PLIC
}

// mmioRouter multiplexes the CLINT and PLIC register windows.
type mmioRouter struct {
	clint *CLINT
	plic  *PLIC
}

func (r mmioRouter) Covers(pa uint64) bool {
	return r.clint.Covers(pa) || r.plic.Covers(pa)
}

func (r mmioRouter) Read(pa uint64, size int) uint64 {
	if r.clint.Covers(pa) {
		return r.clint.Read(pa, size)
	}
	return r.plic.Read(pa, size)
}

func (r mmioRouter) Write(pa uint64, size int, v uint64) {
	if r.clint.Covers(pa) {
		r.clint.Write(pa, size, v)
		return
	}
	r.plic.Write(pa, size, v)
}

// New builds the system.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{Cfg: cfg, Mem: mem.NewMemory()}
	s.DRAM = &mem.DRAM{Latency: cfg.DRAMLatency, GapCycles: cfg.DRAMGap}
	totalHarts := cfg.Clusters * cfg.CoresPerCluster
	s.CLINT = NewCLINT(totalHarts)
	s.PLIC = NewPLIC(totalHarts)
	if cfg.Clusters > 1 {
		s.Ncore = coherence.NewNcore(s.DRAM)
	}
	hart := 0
	for cl := 0; cl < cfg.Clusters; cl++ {
		l2cfg := cache.Config{
			SizeBytes: cfg.L2SizeBytes, Ways: cfg.L2Ways, LineBytes: 64,
			HitLatency: 10, ECC: true, Parity: true, // §II: ECC and parity
		}
		l2 := coherence.NewL2(l2cfg, s.DRAM)
		if s.Ncore != nil {
			s.Ncore.Attach(l2)
		}
		cluster := &Cluster{L2: l2}
		for i := 0; i < cfg.CoresPerCluster; i++ {
			c := core.New(cfg.Core, hart, s.Mem, l2)
			c.TLBBroadcast = s.broadcastTLB
			c.MemWriteHook = s.killReservations
			c.MMIO = mmioRouter{clint: s.CLINT, plic: s.PLIC}
			c.IntSource = s.interruptBits
			cluster.Cores = append(cluster.Cores, c)
			s.Cores = append(s.Cores, c)
			hart++
		}
		s.Clusters = append(s.Clusters, cluster)
	}
	return s, nil
}

// AttachTracer connects a pipeline tracer to one hart. Each hart needs its
// own tracer (a Tracer is single-core state); attaching nil detaches.
func (s *System) AttachTracer(hart int, t *trace.Tracer) {
	if hart >= 0 && hart < len(s.Cores) {
		s.Cores[hart].AttachTracer(t)
	}
}

// broadcastTLB implements the §V-E hardware TLB maintenance broadcast: the
// interconnect carries the invalidation to every hart without IPIs.
func (s *System) broadcastTLB(op isa.Op, operand uint64, from int) {
	for _, c := range s.Cores {
		if c.ID == from {
			continue // the local MMU was already maintained
		}
		switch op {
		case isa.XTLBIASID:
			c.MMU.FlushASID(uint16(operand))
		case isa.XTLBIVA:
			c.MMU.FlushVA(operand)
		}
	}
}

// killReservations invalidates other harts' LR/SC reservations covering a
// committed write (the coherence invalidation a real SC relies on), drops
// their predecoded instructions over the written range so cross-core
// self-modifying code stays exact, and squashes their speculatively-executed
// overlapping loads (the snoop-triggered machine clear that keeps a stale
// value from committing after a remote store).
func (s *System) killReservations(pa uint64, size int, from int) {
	for _, c := range s.Cores {
		if c.ID != from {
			c.KillReservation(pa, size)
			c.InvalidatePredecode(pa, size)
			c.SquashCoherentLoads(pa, size)
		}
	}
}

// LoadProgram loads an assembled image and resets every core to its entry,
// giving each hart its own stack.
func (s *System) LoadProgram(p *asm.Program) {
	p.LoadInto(s.Mem)
	for i, c := range s.Cores {
		c.Reset(p.Entry, s.Cfg.StackBase-uint64(i)*s.Cfg.StackSize)
	}
}

// interruptBits composes the externally-driven mip bits for a hart: MSIP
// (bit 3) from the CLINT's msip register, MTIP (bit 7) from the timer, MEIP
// (bit 11) from the PLIC.
func (s *System) interruptBits(hart int) uint64 {
	var v uint64
	if s.CLINT.SoftPending(hart) {
		v |= 1 << 3
	}
	if s.CLINT.TimerPending(hart) {
		v |= 1 << 7
	}
	if s.PLIC.ExtPending(hart) {
		v |= 1 << 11
	}
	return v
}

// Step advances every core by one cycle (deterministic lock-step).
func (s *System) Step() {
	s.CLINT.Tick()
	for _, c := range s.Cores {
		c.Step()
	}
}

// runCheckMask controls how often RunContext polls for cancellation: every
// 1024 simulated cycles, cheap enough to disappear in the noise yet prompt
// enough that a cancelled experiment stops within microseconds of host time.
const runCheckMask = 1<<10 - 1

// RunContext steps until every core halts, maxCycles elapse, or ctx is
// cancelled. It returns the number of cycles simulated and the context's
// error when the run was cut short by cancellation or deadline; the cycle
// count up to that point is still meaningful. Stepping is identical to Run,
// so a given program and configuration produce the same cycle count whether
// or not a context carries a (non-expiring) deadline.
func (s *System) RunContext(ctx context.Context, maxCycles uint64) (uint64, error) {
	var cycles uint64
	for ; cycles < maxCycles; cycles++ {
		if cycles&runCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return cycles, err
			}
		}
		allHalted := true
		s.CLINT.Tick()
		for _, c := range s.Cores {
			if !c.Halted {
				c.Step()
				allHalted = false
			}
		}
		if allHalted {
			break
		}
	}
	return cycles, nil
}

// Run steps until every core halts or maxCycles elapse. It returns the number
// of cycles simulated.
func (s *System) Run(maxCycles uint64) uint64 {
	cycles, _ := s.RunContext(context.Background(), maxCycles)
	return cycles
}

// AllHalted reports whether every core has halted.
func (s *System) AllHalted() bool {
	for _, c := range s.Cores {
		if !c.Halted {
			return false
		}
	}
	return true
}
