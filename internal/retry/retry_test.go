package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestBackoffDeterministic pins the exact delay schedule for a fixed
// (Policy, seed): the worker's retry timing is reproducible, so chaos-test
// timelines are too.
func TestBackoffDeterministic(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 2 * time.Second, Factor: 2, Jitter: 0.5}
	a := New(p, 42)
	b := New(p, 42)
	c := New(p, 43)
	var sa, sb, sc []time.Duration
	for i := 0; i < 12; i++ {
		da, _ := a.Next()
		db, _ := b.Next()
		dc, _ := c.Next()
		sa, sb, sc = append(sa, da), append(sb, db), append(sc, dc)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same seed diverges at attempt %d: %v != %v", i, sa[i], sb[i])
		}
	}
	diff := false
	for i := range sa {
		if sa[i] != sc[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

// TestBackoffSchedule is the table-driven shape check: exponential growth
// from Base by Factor, capped at Cap, each delay within the jitter envelope
// [d*(1-J), d).
func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		want []time.Duration // pre-jitter ideal delays
	}{
		{
			name: "doubling capped",
			p:    Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2, Jitter: 0.5},
			want: []time.Duration{10e6, 20e6, 40e6, 80e6, 80e6, 80e6},
		},
		{
			name: "no jitter exact",
			p:    Policy{Base: 5 * time.Millisecond, Cap: 40 * time.Millisecond, Factor: 2},
			want: []time.Duration{5e6, 10e6, 20e6, 40e6, 40e6},
		},
		{
			name: "factor 3 uncapped",
			p:    Policy{Base: 1 * time.Millisecond, Factor: 3},
			want: []time.Duration{1e6, 3e6, 9e6, 27e6},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := New(tc.p, 7)
			for i, ideal := range tc.want {
				d, ok := b.Next()
				if !ok {
					t.Fatalf("attempt %d: budget exhausted unexpectedly", i)
				}
				lo := time.Duration(float64(ideal) * (1 - tc.p.Jitter))
				if d < lo || d > ideal {
					t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, lo, ideal)
				}
				if tc.p.Jitter == 0 && d != ideal {
					t.Fatalf("attempt %d: jitter-free delay %v != %v", i, d, ideal)
				}
			}
		})
	}
}

func TestBackoffAttemptBudget(t *testing.T) {
	b := New(Policy{Base: time.Millisecond, Factor: 2, Attempts: 3}, 1)
	for i := 0; i < 3; i++ {
		if _, ok := b.Next(); !ok {
			t.Fatalf("attempt %d refused within budget", i)
		}
	}
	if _, ok := b.Next(); ok {
		t.Fatal("attempt past budget granted")
	}
	b.Reset()
	if _, ok := b.Next(); !ok {
		t.Fatal("Reset did not restore the budget")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	n := 0
	err := Do(context.Background(), Policy{Base: time.Microsecond, Factor: 2}, 1, func() error {
		n++
		if n < 4 {
			return fmt.Errorf("transient %d", n)
		}
		return nil
	})
	if err != nil || n != 4 {
		t.Fatalf("Do: err=%v n=%d, want nil/4", err, n)
	}
}

func TestDoPermanentStops(t *testing.T) {
	sentinel := errors.New("fenced off")
	n := 0
	err := Do(context.Background(), Policy{Base: time.Microsecond, Factor: 2}, 1, func() error {
		n++
		return Permanent(sentinel)
	})
	if !errors.Is(err, sentinel) || n != 1 {
		t.Fatalf("Do: err=%v n=%d, want sentinel/1", err, n)
	}
	if !IsPermanent(Permanent(sentinel)) || IsPermanent(sentinel) {
		t.Fatal("IsPermanent misclassifies")
	}
}

func TestDoAttemptBudgetReturnsLastError(t *testing.T) {
	n := 0
	err := Do(context.Background(), Policy{Base: time.Microsecond, Factor: 2, Attempts: 2}, 1, func() error {
		n++
		return fmt.Errorf("attempt %d", n)
	})
	if n != 3 {
		t.Fatalf("Attempts=2 ran f %d times, want 3", n)
	}
	if err == nil || err.Error() != "attempt 3" {
		t.Fatalf("Do returned %v, want last error", err)
	}
}

func TestDoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Do(ctx, Policy{Base: time.Hour, Factor: 2}, 1, func() error {
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do: %v, want context.Canceled", err)
	}
}
