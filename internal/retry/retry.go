// Package retry implements seeded exponential backoff with jitter for the
// distributed campaign protocol (coordinator ↔ worker HTTP). The delay
// sequence is a pure function of (Policy, seed), so tests can pin the exact
// schedule a worker will follow — determinism is the repo-wide contract and
// the retry layer is no exception.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy shapes a backoff schedule. The zero value is not useful; Default()
// returns the campaign-protocol policy.
type Policy struct {
	// Base is the first delay (pre-jitter).
	Base time.Duration
	// Cap bounds every delay (pre-jitter). 0 means no cap.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier; values below 1 are
	// treated as 2 (the conventional doubling).
	Factor float64
	// Jitter is the fraction of each delay randomized, in [0, 1]: the
	// emitted delay is d*(1-Jitter) + u*d*Jitter with u uniform in [0, 1).
	// 0 disables jitter entirely (fully deterministic schedule).
	Jitter float64
	// Attempts bounds how many times Next yields a delay; 0 means
	// unlimited.
	Attempts int
}

// Default is the policy the campaign worker uses for transient coordinator
// failures: quick first retry, capped at 2s so a partitioned worker re-probes
// the coordinator often enough to reclaim work soon after the partition
// heals, half-jittered so a worker fleet restarted together does not
// stampede.
func Default() Policy {
	return Policy{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Factor: 2, Jitter: 0.5}
}

// Backoff yields the delay schedule of one retry loop. Not safe for
// concurrent use; each loop owns its Backoff.
type Backoff struct {
	p   Policy
	rng *rand.Rand
	n   int
}

// New returns a Backoff over p whose jitter stream is seeded: the same
// (p, seed) pair always yields the same delay sequence.
func New(p Policy, seed int64) *Backoff {
	if p.Factor < 1 {
		p.Factor = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return &Backoff{p: p, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next delay, or false when the policy's attempt budget is
// exhausted.
func (b *Backoff) Next() (time.Duration, bool) {
	if b.p.Attempts > 0 && b.n >= b.p.Attempts {
		return 0, false
	}
	d := float64(b.p.Base)
	for i := 0; i < b.n; i++ {
		d *= b.p.Factor
		if b.p.Cap > 0 && d >= float64(b.p.Cap) {
			d = float64(b.p.Cap)
			break
		}
	}
	if b.p.Cap > 0 && d > float64(b.p.Cap) {
		d = float64(b.p.Cap)
	}
	b.n++
	if b.p.Jitter > 0 && d > 0 {
		u := float64(b.rng.Int63()) / float64(1<<63)
		d = d*(1-b.p.Jitter) + u*d*b.p.Jitter
	}
	return time.Duration(d), true
}

// Attempt reports how many delays Next has yielded so far.
func (b *Backoff) Attempt() int { return b.n }

// Reset rewinds the attempt counter (the jitter stream keeps advancing, so a
// reset loop still never repeats a schedule).
func (b *Backoff) Reset() { b.n = 0 }

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops retrying and returns it (unwrapped).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs f until it succeeds, returns a Permanent error, exhausts the
// policy's attempt budget, or ctx dies — sleeping the seeded backoff schedule
// between attempts. The attempt budget counts retries: Attempts=2 means f
// runs at most 3 times. Returns the last error (unwrapped when Permanent) or
// ctx.Err() when the context ends first.
func Do(ctx context.Context, p Policy, seed int64, f func() error) error {
	b := New(p, seed)
	for {
		err := f()
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		d, ok := b.Next()
		if !ok {
			return err
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}
