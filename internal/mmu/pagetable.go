package mmu

import (
	"fmt"

	"xt910/internal/mem"
	"xt910/isa"
)

// TableBuilder is the mini-OS page-table constructor used by benchmarks that
// run under SV39 translation. It supports the three page sizes the XT-910's
// Linux port relies on (§V-E: 4KB, 2MB and 1GB huge pages) and multiple
// address spaces distinguished by ASID.
type TableBuilder struct {
	Mem  *mem.Memory
	next uint64 // bump allocator for page-table pages
	root uint64
}

// NewTableBuilder creates a builder whose page-table pages are carved from
// physical memory starting at tableBase.
func NewTableBuilder(m *mem.Memory, tableBase uint64) *TableBuilder {
	b := &TableBuilder{Mem: m, next: tableBase &^ 0xFFF}
	b.root = b.allocPage()
	return b
}

func (b *TableBuilder) allocPage() uint64 {
	p := b.next
	b.next += 4096
	// zero the page (Memory reads as zero by default, but the page may have
	// been used before in re-built scenarios)
	for i := uint64(0); i < 4096; i += 8 {
		b.Mem.Write(p+i, 8, 0)
	}
	return p
}

// Root returns the root page-table physical address.
func (b *TableBuilder) Root() uint64 { return b.root }

// Satp composes a satp value for this table with the given ASID.
func (b *TableBuilder) Satp(asid uint16) uint64 {
	return isa.MakeSatp(isa.SatpModeSV39, asid, b.root>>12)
}

// Map installs a translation of the given page size (12, 21 or 30 bits).
// perms is a combination of PteR/PteW/PteX/PteU/PteG.
func (b *TableBuilder) Map(va, pa uint64, pageBits uint, perms uint8) error {
	if va&(1<<pageBits-1) != 0 || pa&(1<<pageBits-1) != 0 {
		return fmt.Errorf("mmu: misaligned mapping va=%#x pa=%#x bits=%d", va, pa, pageBits)
	}
	leafLevel := int(pageBits-12) / 9 // 0, 1 or 2
	vpn := [3]uint64{va >> 12 & 0x1FF, va >> 21 & 0x1FF, va >> 30 & 0x1FF}
	table := b.root
	for level := 2; level > leafLevel; level-- {
		pteAddr := table + vpn[level]*8
		pte := b.Mem.Read(pteAddr, 8)
		if pte&PteV == 0 {
			next := b.allocPage()
			b.Mem.Write(pteAddr, 8, next>>12<<10|PteV)
			table = next
		} else {
			if pte&(PteR|PteX) != 0 {
				return fmt.Errorf("mmu: mapping conflict at va=%#x level=%d", va, level)
			}
			table = pte >> 10 << 12
		}
	}
	pteAddr := table + vpn[leafLevel]*8
	b.Mem.Write(pteAddr, 8, pa>>12<<10|uint64(perms)|PteV|PteA|PteD)
	return nil
}

// IdentityMap maps [base, base+size) onto itself using the largest page size
// that fits alignment when huge is true, or 4K pages otherwise.
func (b *TableBuilder) IdentityMap(base, size uint64, perms uint8, huge bool) error {
	end := base + size
	va := base &^ 0xFFF
	for va < end {
		bits := uint(12)
		if huge {
			switch {
			case va&(1<<30-1) == 0 && va+1<<30 <= end:
				bits = 30
			case va&(1<<21-1) == 0 && va+1<<21 <= end:
				bits = 21
			}
		}
		if err := b.Map(va, va, bits, perms); err != nil {
			return err
		}
		va += 1 << bits
	}
	return nil
}

// IdentityPlusOffset builds the standard S-mode test layout shared by the
// paged cosim profile and the MMU tests: an identity RWX mapping of
// [0, physSize) in 4K pages, plus a read-write alias window mapping
// [offset, offset+physSize) onto the same physical range. The alias window
// is deliberately non-executable and gives every physical line two virtual
// addresses, which is what exposes VA-vs-PA confusion in reservation and
// dirty-line tracking. tableBase itself must lie outside [0, physSize) so
// the guest cannot scribble over its own page tables.
func IdentityPlusOffset(m *mem.Memory, tableBase, physSize, offset uint64) (*TableBuilder, error) {
	b := NewTableBuilder(m, tableBase)
	if err := b.IdentityMap(0, physSize, PteR|PteW|PteX, false); err != nil {
		return nil, err
	}
	for va := uint64(0); va < physSize; va += 4096 {
		if err := b.Map(offset+va, va, 12, PteR|PteW); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// ASIDAllocator models the OS-side ASID assignment policy whose behaviour
// §V-E measures: when the ASID space wraps, every TLB must be flushed. The
// XT-910 widens the field to 16 bits so wraps (and hence flushes) become
// ~10× rarer under context-switch-heavy loads.
type ASIDAllocator struct {
	Width  int // in bits: 8 for the baseline, 16 for the XT-910
	next   uint64
	Wraps  uint64 // each wrap forces a global TLB flush
	perGen map[uint64]uint16
	gen    uint64
}

// NewASIDAllocator returns an allocator with the given field width.
func NewASIDAllocator(width int) *ASIDAllocator {
	return &ASIDAllocator{Width: width, next: 1, perGen: make(map[uint64]uint16)}
}

// Assign returns the ASID for process pid, allocating a fresh one if the
// process has none in the current generation. flush reports that the
// allocation wrapped the ASID space and all TLBs must be flushed.
func (a *ASIDAllocator) Assign(pid uint64) (asid uint16, flush bool) {
	if got, ok := a.perGen[pid]; ok {
		return got, false
	}
	max := uint64(1)<<a.Width - 1
	if a.next > max {
		// generation rollover: flush everything, restart numbering
		a.next = 1
		a.gen++
		a.Wraps++
		a.perGen = make(map[uint64]uint16)
		flush = true
	}
	asid = uint16(a.next)
	a.next++
	a.perGen[pid] = asid
	return asid, flush
}
