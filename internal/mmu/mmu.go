package mmu

import "xt910/isa"

// Stats counts translation events for the paper's TLB experiments.
type Stats struct {
	Lookups     uint64
	MicroHits   uint64
	JointHits   uint64
	JointProbes uint64 // total probe rounds across jTLB lookups
	Walks       uint64
	Faults      uint64
	Flushes     uint64 // full-TLB flushes (the §V-E ASID metric)
	ASIDFlushes uint64
	Prefills    uint64 // entries installed by the TLB prefetcher
}

// TimedRead reads a 64-bit physical word and returns the cycle at which the
// data is available, given the request cycle. The core wires this to the
// cache hierarchy so page-table walks are charged realistically.
type TimedRead func(pa uint64, now uint64) (val uint64, done uint64)

// MMU is one hart's translation machinery.
type MMU struct {
	Micro *MicroTLB
	Joint *JointTLB
	PMP   *PMP

	// Satp mirrors the satp CSR; Priv is the current privilege level.
	Satp uint64
	Priv int

	// JTLBProbeCycles is the extra latency per jTLB probe round (default 2).
	JTLBProbeCycles int

	read  TimedRead
	Stats Stats
}

// New returns an MMU with XT-910-like defaults (32-entry uTLB, 1024-entry
// 4-way jTLB) reading PTEs through the supplied timed reader.
func New(read TimedRead) *MMU {
	return &MMU{
		Micro:           NewMicroTLB(32),
		Joint:           NewJointTLB(1024, 4),
		PMP:             NewPMP(),
		JTLBProbeCycles: 2,
		read:            read,
	}
}

// Enabled reports whether SV39 translation is active for data accesses.
func (m *MMU) Enabled() bool {
	return isa.SatpMode(m.Satp) == isa.SatpModeSV39 && m.Priv != isa.PrivM
}

// Translate translates va for the access type, returning the physical
// address and the cycle at which the translation is available.
// On a page fault it returns the *PageFault error.
func (m *MMU) Translate(va uint64, acc Access, now uint64) (pa uint64, done uint64, err error) {
	if !m.Enabled() {
		if !m.PMP.Allows(va, acc, m.Priv) {
			return 0, now, &PageFault{VA: va, Access: acc}
		}
		return va, now, nil
	}
	m.Stats.Lookups++
	asid := isa.SatpASID(m.Satp)
	if e, ok := m.Micro.Lookup(va, asid); ok {
		if !permOK(e.perms, acc, m.Priv) {
			m.Stats.Faults++
			return 0, now, &PageFault{VA: va, Access: acc}
		}
		m.Stats.MicroHits++
		return e.pa(va), now, nil
	}
	if e, probes, ok := m.Joint.Lookup(va, asid); ok {
		m.Stats.JointHits++
		m.Stats.JointProbes += uint64(probes)
		if !permOK(e.perms, acc, m.Priv) {
			m.Stats.Faults++
			return 0, now, &PageFault{VA: va, Access: acc}
		}
		m.Micro.Insert(*e)
		return e.pa(va), now + uint64(probes*m.JTLBProbeCycles), nil
	}
	m.Stats.JointProbes += uint64(len(probeOrder))
	// Page-table walk through the memory hierarchy.
	m.Stats.Walks++
	t := now + uint64(len(probeOrder)*m.JTLBProbeCycles)
	res, werr := Walk(func(ptePA uint64) uint64 {
		v, d := m.read(ptePA, t)
		t = d
		return v
	}, m.Satp, va, acc, m.Priv)
	if werr != nil {
		m.Stats.Faults++
		return 0, t, werr
	}
	e := Entry{
		vpnTag:   va >> res.PageBits,
		asid:     asid,
		global:   res.Global,
		pageBits: res.PageBits,
		ppn:      res.PA >> res.PageBits,
		perms:    res.Perms,
	}
	m.Joint.Insert(e)
	m.Micro.Insert(e)
	if !m.PMP.Allows(res.PA, acc, m.Priv) {
		m.Stats.Faults++
		return 0, t, &PageFault{VA: va, Access: acc}
	}
	return res.PA, t, nil
}

// TranslateNoWalk resolves va using only resident TLB entries — the path
// hardware prefetch requests take: a prefetch that misses the TLB is dropped
// rather than triggering a page-table walk. (The §V-C TLB prefetcher exists
// precisely to keep these entries resident; Fig. 21 scenario e measures the
// cost of turning it off.)
func (m *MMU) TranslateNoWalk(va uint64) (uint64, bool) {
	if !m.Enabled() {
		return va, true
	}
	asid := isa.SatpASID(m.Satp)
	if e, ok := m.Micro.Lookup(va, asid); ok {
		return e.pa(va), true
	}
	if e, _, ok := m.Joint.Lookup(va, asid); ok {
		return e.pa(va), true
	}
	return 0, false
}

// Prefill translates va in the background (the §V-C cross-page TLB prefetch)
// and installs the result without charging the requesting load. It never
// faults; failed speculative walks are simply dropped.
func (m *MMU) Prefill(va uint64) {
	if !m.Enabled() {
		return
	}
	asid := isa.SatpASID(m.Satp)
	if _, ok := m.Micro.Lookup(va, asid); ok {
		return
	}
	if e, _, ok := m.Joint.Lookup(va, asid); ok {
		m.Micro.Insert(*e)
		return
	}
	res, err := Walk(func(ptePA uint64) uint64 {
		v, _ := m.read(ptePA, 0)
		return v
	}, m.Satp, va, AccLoad, m.Priv)
	if err != nil {
		return
	}
	e := Entry{
		vpnTag:   va >> res.PageBits,
		asid:     asid,
		global:   res.Global,
		pageBits: res.PageBits,
		ppn:      res.PA >> res.PageBits,
		perms:    res.Perms,
	}
	m.Joint.Insert(e)
	m.Micro.Insert(e)
	m.Stats.Prefills++
}

func (e *Entry) pa(va uint64) uint64 {
	mask := uint64(1)<<e.pageBits - 1
	return e.ppn<<e.pageBits | va&mask
}

// FlushAll invalidates both TLB levels (sfence.vma with rs1=rs2=x0).
func (m *MMU) FlushAll() {
	m.Micro.FlushAll()
	m.Joint.FlushAll()
	m.Stats.Flushes++
}

// FlushASID invalidates one address space (the broadcast tlbi.asid custom op,
// §V-E: hardware maintenance without IPIs).
func (m *MMU) FlushASID(asid uint16) {
	m.Micro.FlushASID(asid)
	m.Joint.FlushASID(asid)
	m.Stats.ASIDFlushes++
}

// FlushVA invalidates translations covering one virtual address.
func (m *MMU) FlushVA(va uint64) {
	m.Micro.FlushVA(va)
	m.Joint.FlushVA(va)
}
