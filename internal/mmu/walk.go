// Package mmu implements the XT-910 memory-management unit: the SV39 page
// table walker, the multi-size (4K/2M/1G) micro-TLB and joint-TLB hierarchy
// described in §V-D, 16-bit ASIDs (§V-E), physical memory protection, and a
// mini-OS page-table builder used by the benchmarks that run with paging on.
package mmu

import (
	"fmt"

	"xt910/isa"
)

// Access distinguishes the three translation request types.
type Access int

// Access kinds.
const (
	AccFetch Access = iota
	AccLoad
	AccStore
)

func (a Access) String() string {
	switch a {
	case AccFetch:
		return "fetch"
	case AccLoad:
		return "load"
	case AccStore:
		return "store"
	}
	return "?"
}

// PTE flag bits (SV39).
const (
	PteV = 1 << 0
	PteR = 1 << 1
	PteW = 1 << 2
	PteX = 1 << 3
	PteU = 1 << 4
	PteG = 1 << 5
	PteA = 1 << 6
	PteD = 1 << 7
)

// PageFault describes a translation failure; it maps onto the RISC-V
// page-fault exception for the access type.
type PageFault struct {
	VA     uint64
	Access Access
}

func (e *PageFault) Error() string {
	return fmt.Sprintf("mmu: %s page fault at %#x", e.Access, e.VA)
}

// Cause returns the RISC-V exception cause code for the fault.
func (e *PageFault) Cause() int {
	switch e.Access {
	case AccFetch:
		return isa.ExcInstPageFault
	case AccStore:
		return isa.ExcStorePageFault
	}
	return isa.ExcLoadPageFault
}

// ReadMem reads an aligned 64-bit word of physical memory. The walker uses it
// for PTE fetches; callers that want timing charge it per call.
type ReadMem func(pa uint64) uint64

// WalkResult describes a successful SV39 translation.
type WalkResult struct {
	PA       uint64   // translated physical address
	PageBits uint     // 12 (4K), 21 (2M) or 30 (1G) — §V-D multi-size pages
	Perms    uint8    // PTE R/W/X/U bits
	Global   bool     // PTE G bit
	PTEAddrs []uint64 // physical addresses of the PTEs read (for timing)
}

// Walk performs a full SV39 page-table walk. It validates alignment of
// superpage leaves and checks permissions for the access type at the given
// privilege level. Hardware-managed A/D bits are modelled as always-set.
func Walk(read ReadMem, satp, va uint64, acc Access, priv int) (WalkResult, error) {
	var res WalkResult
	fault := func() (WalkResult, error) { return res, &PageFault{VA: va, Access: acc} }

	// SV39 requires va bits [63:39] to equal bit 38.
	if sx := int64(va<<25) >> 63; uint64(sx)>>39 != va>>39 {
		return fault()
	}
	root := isa.SatpPPN(satp) << 12
	vpn := [3]uint64{va >> 12 & 0x1FF, va >> 21 & 0x1FF, va >> 30 & 0x1FF}
	a := root
	for level := 2; level >= 0; level-- {
		pteAddr := a + vpn[level]*8
		res.PTEAddrs = append(res.PTEAddrs, pteAddr)
		pte := read(pteAddr)
		if pte&PteV == 0 || (pte&PteR == 0 && pte&PteW != 0) {
			return fault()
		}
		if pte&(PteR|PteX) == 0 {
			// pointer to next level
			a = pte >> 10 << 12
			continue
		}
		// leaf
		ppn := pte >> 10
		pageBits := uint(12 + 9*level)
		if level > 0 && ppn&(1<<(9*uint(level))-1) != 0 {
			return fault() // misaligned superpage
		}
		if !permOK(uint8(pte), acc, priv) {
			return fault()
		}
		mask := uint64(1)<<pageBits - 1
		res.PA = ppn<<12&^mask | va&mask
		res.PageBits = pageBits
		res.Perms = uint8(pte & (PteR | PteW | PteX | PteU))
		res.Global = pte&PteG != 0
		return res, nil
	}
	return fault()
}

func permOK(flags uint8, acc Access, priv int) bool {
	if priv == isa.PrivU && flags&PteU == 0 {
		return false
	}
	// S-mode access to U pages: allowed for data in this model (SUM assumed
	// set, as the mini-OS runs with user mappings visible), but never for
	// fetches, per the privileged spec.
	if priv == isa.PrivS && flags&PteU != 0 && acc == AccFetch {
		return false
	}
	switch acc {
	case AccFetch:
		return flags&PteX != 0
	case AccLoad:
		return flags&PteR != 0
	case AccStore:
		return flags&PteW != 0
	}
	return false
}
