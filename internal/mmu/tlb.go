package mmu

// The XT-910 TLB hierarchy (§V-D): a fully-associative micro-TLB backed by a
// 4-way set-associative joint TLB. Every entry carries a page-size property;
// the jTLB is probed with the 4K index first, then 2M, then 1G. On a jTLB hit
// the entry is refilled into the micro-TLB; when all sizes miss, the hardware
// page-table walk is triggered.

// Entry is one translation held in a TLB.
type Entry struct {
	valid    bool
	vpnTag   uint64 // va >> pageBits
	asid     uint16
	global   bool
	pageBits uint
	ppn      uint64 // pa >> pageBits
	perms    uint8
	lru      uint64
}

func (e *Entry) match(va uint64, asid uint16) bool {
	return e.valid && e.vpnTag == va>>e.pageBits && (e.global || e.asid == asid)
}

// MicroTLB is the first-level fully-associative TLB. Lookups cost zero extra
// cycles on a hit.
type MicroTLB struct {
	entries []Entry
	tick    uint64
}

// NewMicroTLB returns a micro-TLB with n entries (XT-910 default: 32).
func NewMicroTLB(n int) *MicroTLB { return &MicroTLB{entries: make([]Entry, n)} }

// Lookup probes all entries in parallel (fully associative).
func (t *MicroTLB) Lookup(va uint64, asid uint16) (*Entry, bool) {
	t.tick++
	for i := range t.entries {
		if t.entries[i].match(va, asid) {
			t.entries[i].lru = t.tick
			return &t.entries[i], true
		}
	}
	return nil, false
}

// Insert refills a translation, evicting the least recently used entry.
func (t *MicroTLB) Insert(e Entry) {
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.tick++
	e.lru = t.tick
	e.valid = true
	t.entries[victim] = e
}

// FlushAll invalidates every entry.
func (t *MicroTLB) FlushAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

// FlushASID invalidates all non-global entries for one ASID.
func (t *MicroTLB) FlushASID(asid uint16) {
	for i := range t.entries {
		if t.entries[i].valid && !t.entries[i].global && t.entries[i].asid == asid {
			t.entries[i].valid = false
		}
	}
}

// FlushVA invalidates entries covering a virtual address.
func (t *MicroTLB) FlushVA(va uint64) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpnTag == va>>e.pageBits {
			e.valid = false
		}
	}
}

// JointTLB is the second-level 4-way set-associative TLB. A single lookup can
// only use one kind of index at a time; Lookup probes 4K → 2M → 1G and
// reports how many probe rounds were needed (each costs extra cycles).
type JointTLB struct {
	ways    int
	sets    int
	entries []Entry // sets × ways
	tick    uint64
}

// NewJointTLB returns a joint TLB with the given total entry count and
// associativity (XT-910: 4-way, ~1K entries).
func NewJointTLB(entries, ways int) *JointTLB {
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	return &JointTLB{ways: ways, sets: sets, entries: make([]Entry, sets*ways)}
}

var probeOrder = [3]uint{12, 21, 30}

func (t *JointTLB) set(va uint64, pageBits uint) []Entry {
	idx := (va >> pageBits) % uint64(t.sets)
	return t.entries[idx*uint64(t.ways) : (idx+1)*uint64(t.ways)]
}

// Lookup probes the three page sizes in order. probes reports the number of
// index types tried (1–3), which the core charges as extra lookup cycles.
func (t *JointTLB) Lookup(va uint64, asid uint16) (e *Entry, probes int, ok bool) {
	t.tick++
	for round, bits := range probeOrder {
		set := t.set(va, bits)
		for i := range set {
			if set[i].pageBits == bits && set[i].match(va, asid) {
				set[i].lru = t.tick
				return &set[i], round + 1, true
			}
		}
	}
	return nil, len(probeOrder), false
}

// Insert refills an entry into the set selected by its own page size.
func (t *JointTLB) Insert(e Entry) {
	va := e.vpnTag << e.pageBits
	set := t.set(va, e.pageBits)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	t.tick++
	e.lru = t.tick
	e.valid = true
	set[victim] = e
}

// FlushAll invalidates the whole jTLB.
func (t *JointTLB) FlushAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

// FlushASID invalidates all non-global entries for one ASID.
func (t *JointTLB) FlushASID(asid uint16) {
	for i := range t.entries {
		if t.entries[i].valid && !t.entries[i].global && t.entries[i].asid == asid {
			t.entries[i].valid = false
		}
	}
}

// FlushVA invalidates entries covering a virtual address.
func (t *JointTLB) FlushVA(va uint64) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpnTag == va>>e.pageBits {
			e.valid = false
		}
	}
}
