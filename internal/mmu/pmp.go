package mmu

// PMP models the XT-910's 8–16 region physical memory protection (§II) with
// naturally-aligned power-of-two (NAPOT-style) address ranges. M-mode
// accesses bypass PMP unless a region is locked, following the privileged
// spec's intent; the model keeps the simpler rule that M-mode always passes.
type PMP struct {
	regions []PMPRegion
}

// PMPRegion grants or denies an access range.
type PMPRegion struct {
	Base, Size uint64
	R, W, X    bool
}

// NewPMP returns a PMP with no regions configured; with no regions, all
// accesses are allowed (matching reset behaviour for S/U in this model).
func NewPMP() *PMP { return &PMP{} }

// MaxRegions is the XT-910 configuration ceiling.
const MaxRegions = 16

// AddRegion appends a region; it reports false once the hardware limit is
// reached.
func (p *PMP) AddRegion(r PMPRegion) bool {
	if len(p.regions) >= MaxRegions {
		return false
	}
	p.regions = append(p.regions, r)
	return true
}

// Clear removes all regions.
func (p *PMP) Clear() { p.regions = p.regions[:0] }

// NumRegions reports the configured region count.
func (p *PMP) NumRegions() int { return len(p.regions) }

// Allows checks an access against the region list. The first matching region
// decides, like the priority encoding in hardware.
func (p *PMP) Allows(pa uint64, acc Access, priv int) bool {
	if len(p.regions) == 0 || priv == 3 {
		return true
	}
	for _, r := range p.regions {
		if pa >= r.Base && pa < r.Base+r.Size {
			switch acc {
			case AccFetch:
				return r.X
			case AccLoad:
				return r.R
			case AccStore:
				return r.W
			}
		}
	}
	return false
}
