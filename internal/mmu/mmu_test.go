package mmu

import (
	"math/rand"
	"testing"

	"xt910/internal/mem"
	"xt910/isa"
)

func newEnv(t *testing.T) (*mem.Memory, *TableBuilder) {
	t.Helper()
	m := mem.NewMemory()
	return m, NewTableBuilder(m, 0x100000)
}

func plainRead(m *mem.Memory) ReadMem {
	return func(pa uint64) uint64 { return m.Read(pa, 8) }
}

func TestWalk4K(t *testing.T) {
	m, tb := newEnv(t)
	if err := tb.Map(0x40000000, 0x10000, 12, PteR|PteW); err != nil {
		t.Fatal(err)
	}
	res, err := Walk(plainRead(m), tb.Satp(1), 0x40000ABC, AccLoad, isa.PrivS)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 0x10ABC || res.PageBits != 12 {
		t.Fatalf("pa=%#x bits=%d", res.PA, res.PageBits)
	}
	if len(res.PTEAddrs) != 3 {
		t.Fatalf("4K walk should read 3 PTEs, read %d", len(res.PTEAddrs))
	}
}

func TestWalkSuperpages(t *testing.T) {
	m, tb := newEnv(t)
	if err := tb.Map(0x80000000, 0x200000, 21, PteR|PteW); err != nil {
		t.Fatal(err)
	}
	if err := tb.Map(0x100000000, 0x40000000, 30, PteR|PteX); err != nil {
		t.Fatal(err)
	}
	res, err := Walk(plainRead(m), tb.Satp(1), 0x80012345, AccStore, isa.PrivS)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 0x212345 || res.PageBits != 21 {
		t.Fatalf("2M: pa=%#x bits=%d", res.PA, res.PageBits)
	}
	if len(res.PTEAddrs) != 2 {
		t.Fatalf("2M walk reads 2 PTEs, read %d", len(res.PTEAddrs))
	}
	res, err = Walk(plainRead(m), tb.Satp(1), 0x10ABCDEF0, AccFetch, isa.PrivS)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 0x40000000|0xABCDEF0 || res.PageBits != 30 {
		t.Fatalf("1G: pa=%#x bits=%d", res.PA, res.PageBits)
	}
	if len(res.PTEAddrs) != 1 {
		t.Fatalf("1G walk reads 1 PTE, read %d", len(res.PTEAddrs))
	}
}

func TestWalkPermissions(t *testing.T) {
	m, tb := newEnv(t)
	if err := tb.Map(0x1000, 0x1000, 12, PteR); err != nil {
		t.Fatal(err)
	}
	if _, err := Walk(plainRead(m), tb.Satp(0), 0x1000, AccStore, isa.PrivS); err == nil {
		t.Fatal("store to read-only page must fault")
	}
	if _, err := Walk(plainRead(m), tb.Satp(0), 0x1000, AccFetch, isa.PrivS); err == nil {
		t.Fatal("fetch from non-executable page must fault")
	}
	// user-bit enforcement
	if _, err := Walk(plainRead(m), tb.Satp(0), 0x1000, AccLoad, isa.PrivU); err == nil {
		t.Fatal("U-mode access to S page must fault")
	}
}

func TestWalkUnmappedFaults(t *testing.T) {
	m, tb := newEnv(t)
	_, err := Walk(plainRead(m), tb.Satp(0), 0x12345000, AccLoad, isa.PrivS)
	pf, ok := err.(*PageFault)
	if !ok {
		t.Fatalf("want PageFault, got %v", err)
	}
	if pf.Cause() != isa.ExcLoadPageFault {
		t.Fatalf("cause = %d", pf.Cause())
	}
}

func TestMicroTLBLRU(t *testing.T) {
	tlb := NewMicroTLB(2)
	e := func(vpn uint64) Entry {
		return Entry{vpnTag: vpn, pageBits: 12, ppn: vpn, perms: PteR}
	}
	tlb.Insert(e(1))
	tlb.Insert(e(2))
	if _, ok := tlb.Lookup(1<<12, 0); !ok {
		t.Fatal("entry 1 should hit")
	}
	tlb.Insert(e(3)) // evicts 2 (LRU)
	if _, ok := tlb.Lookup(2<<12, 0); ok {
		t.Fatal("entry 2 should have been evicted")
	}
	if _, ok := tlb.Lookup(1<<12, 0); !ok {
		t.Fatal("entry 1 should survive")
	}
}

func TestTLBASIDMatching(t *testing.T) {
	tlb := NewMicroTLB(8)
	tlb.Insert(Entry{vpnTag: 5, asid: 1, pageBits: 12, ppn: 50, perms: PteR})
	tlb.Insert(Entry{vpnTag: 5, asid: 2, pageBits: 12, ppn: 60, perms: PteR})
	e1, ok1 := tlb.Lookup(5<<12, 1)
	e2, ok2 := tlb.Lookup(5<<12, 2)
	if !ok1 || !ok2 || e1.ppn != 50 || e2.ppn != 60 {
		t.Fatal("ASID-tagged entries must coexist")
	}
	tlb.FlushASID(1)
	if _, ok := tlb.Lookup(5<<12, 1); ok {
		t.Fatal("asid 1 should be flushed")
	}
	if _, ok := tlb.Lookup(5<<12, 2); !ok {
		t.Fatal("asid 2 must survive")
	}
}

func TestGlobalEntriesSurviveASIDFlush(t *testing.T) {
	tlb := NewJointTLB(64, 4)
	tlb.Insert(Entry{vpnTag: 7, asid: 3, global: true, pageBits: 12, ppn: 70, perms: PteR})
	tlb.FlushASID(3)
	if _, _, ok := tlb.Lookup(7<<12, 3); !ok {
		t.Fatal("global entry must survive ASID flush")
	}
}

func TestJointTLBProbeOrder(t *testing.T) {
	tlb := NewJointTLB(64, 4)
	tlb.Insert(Entry{vpnTag: 0x80000000 >> 21, asid: 0, pageBits: 21, ppn: 1, perms: PteR})
	_, probes, ok := tlb.Lookup(0x80012345, 0)
	if !ok || probes != 2 {
		t.Fatalf("2M entry must hit on the second probe round: ok=%v probes=%d", ok, probes)
	}
	tlb.Insert(Entry{vpnTag: 1, asid: 0, pageBits: 12, ppn: 2, perms: PteR})
	_, probes, ok = tlb.Lookup(0x1400, 0)
	if !ok || probes != 1 {
		t.Fatalf("4K probes first: ok=%v probes=%d", ok, probes)
	}
}

func TestMMUTranslateTiming(t *testing.T) {
	m, tb := newEnv(t)
	if err := tb.IdentityMap(0, 0x40000, PteR|PteW|PteX, false); err != nil {
		t.Fatal(err)
	}
	reads := 0
	mmuU := New(func(pa uint64, now uint64) (uint64, uint64) {
		reads++
		return m.Read(pa, 8), now + 20 // pretend every PTE read costs 20 cycles
	})
	mmuU.Satp = tb.Satp(1)
	mmuU.Priv = isa.PrivS

	// first access: full walk (3 PTE reads after 3 jTLB probe rounds)
	_, done, err := mmuU.Translate(0x2000, AccLoad, 100)
	if err != nil {
		t.Fatal(err)
	}
	if reads != 3 {
		t.Fatalf("walk read %d PTEs", reads)
	}
	if done <= 100 {
		t.Fatal("walk must cost cycles")
	}
	// second access: micro-TLB hit, free
	_, done2, err := mmuU.Translate(0x2008, AccLoad, 200)
	if err != nil || done2 != 200 {
		t.Fatalf("uTLB hit should be free: done=%d err=%v", done2, err)
	}
	if mmuU.Stats.Walks != 1 || mmuU.Stats.MicroHits != 1 {
		t.Fatalf("stats: %+v", mmuU.Stats)
	}
}

func TestMMUPrefill(t *testing.T) {
	m, tb := newEnv(t)
	if err := tb.IdentityMap(0, 0x40000, PteR|PteW, false); err != nil {
		t.Fatal(err)
	}
	mmuU := New(func(pa uint64, now uint64) (uint64, uint64) {
		return m.Read(pa, 8), now + 20
	})
	mmuU.Satp = tb.Satp(1)
	mmuU.Priv = isa.PrivS
	mmuU.Prefill(0x3000)
	if mmuU.Stats.Prefills != 1 {
		t.Fatal("prefill should install an entry")
	}
	_, done, err := mmuU.Translate(0x3000, AccLoad, 500)
	if err != nil || done != 500 {
		t.Fatalf("prefilled translation should be a free uTLB hit: %d %v", done, err)
	}
	if mmuU.Stats.Walks != 0 {
		t.Fatal("no demand walk expected after prefill")
	}
}

func TestPMP(t *testing.T) {
	p := NewPMP()
	if !p.Allows(0x1234, AccStore, isa.PrivU) {
		t.Fatal("no regions -> allow")
	}
	p.AddRegion(PMPRegion{Base: 0x1000, Size: 0x1000, R: true, W: false, X: false})
	if !p.Allows(0x1800, AccLoad, isa.PrivU) {
		t.Fatal("read allowed")
	}
	if p.Allows(0x1800, AccStore, isa.PrivU) {
		t.Fatal("write denied")
	}
	if p.Allows(0x5000, AccLoad, isa.PrivU) {
		t.Fatal("outside all regions denied when regions configured")
	}
	if !p.Allows(0x1800, AccStore, isa.PrivM) {
		t.Fatal("M-mode bypasses PMP")
	}
	for i := 0; i < MaxRegions+4; i++ {
		p.AddRegion(PMPRegion{Base: uint64(i) << 20, Size: 1 << 20, R: true})
	}
	if p.NumRegions() != MaxRegions {
		t.Fatalf("regions capped at %d, got %d", MaxRegions, p.NumRegions())
	}
}

func TestASIDAllocatorWraps(t *testing.T) {
	// Simulate process churn: many short-lived processes, as in the §V-E
	// context-switch measurement.
	churn := func(width int, procs int) uint64 {
		a := NewASIDAllocator(width)
		for pid := 0; pid < procs; pid++ {
			a.Assign(uint64(pid))
		}
		return a.Wraps
	}
	w8 := churn(8, 100000)
	w16 := churn(16, 100000)
	if w8 == 0 {
		t.Fatal("8-bit allocator must wrap under churn")
	}
	if w16 >= w8 {
		t.Fatalf("16-bit ASID must wrap far less: 8-bit=%d 16-bit=%d", w8, w16)
	}
	ratio := float64(w8) / float64(w16+1)
	if ratio < 10 {
		t.Fatalf("flush reduction ratio %.1f, want >= 10 (paper: ~10x)", ratio)
	}
}

func TestWalkSuperpageMisaligned(t *testing.T) {
	m, tb := newEnv(t)
	// Hand-craft a level-1 leaf whose PPN is not 2M-aligned: the builder
	// refuses to create one, but a buggy or hostile guest table can.
	if err := tb.Map(0x80000000, 0x200000, 21, PteR|PteW); err != nil {
		t.Fatal(err)
	}
	res, err := Walk(plainRead(m), tb.Satp(0), 0x80000000, AccLoad, isa.PrivS)
	if err != nil {
		t.Fatal(err)
	}
	pteAddr := res.PTEAddrs[len(res.PTEAddrs)-1]
	pte := m.Read(pteAddr, 8)
	m.Write(pteAddr, 8, pte|1<<10) // PPN[0] |= 1: misaligned superpage
	_, err = Walk(plainRead(m), tb.Satp(0), 0x80000000, AccStore, isa.PrivS)
	pf, ok := err.(*PageFault)
	if !ok {
		t.Fatalf("misaligned superpage must fault, got %v", err)
	}
	if pf.Cause() != isa.ExcStorePageFault || pf.VA != 0x80000000 {
		t.Fatalf("cause=%d va=%#x", pf.Cause(), pf.VA)
	}
}

func TestWalkADBitsModeledAsSet(t *testing.T) {
	m, tb := newEnv(t)
	if err := tb.Map(0x3000, 0x5000, 12, PteR|PteW); err != nil {
		t.Fatal(err)
	}
	res, err := Walk(plainRead(m), tb.Satp(0), 0x3000, AccLoad, isa.PrivS)
	if err != nil {
		t.Fatal(err)
	}
	// The model treats A/D as hardware-managed and always set (the builder
	// pre-sets them); a cleared A or D bit neither faults nor gets written
	// back — the walker is read-only. Pin both properties.
	pteAddr := res.PTEAddrs[len(res.PTEAddrs)-1]
	pte := m.Read(pteAddr, 8)
	m.Write(pteAddr, 8, pte&^uint64(PteA|PteD))
	if _, err := Walk(plainRead(m), tb.Satp(0), 0x3008, AccStore, isa.PrivS); err != nil {
		t.Fatalf("A/D-clear store should translate in the always-set model: %v", err)
	}
	if got := m.Read(pteAddr, 8); got != pte&^uint64(PteA|PteD) {
		t.Fatalf("walker must not write PTEs back: %#x", got)
	}
}

// TestIdentityPlusOffsetAliases pins the layout the paged fuzz profile boots
// with: identity RWX, an RW alias window at offset, and — the property the
// LR/SC checker depends on — both virtual views of one line landing in the
// same physical reservation granule.
func TestIdentityPlusOffsetAliases(t *testing.T) {
	m := mem.NewMemory()
	const physSize, offset = 0xA0000, 0x40000000
	tb, err := IdentityPlusOffset(m, 0x100000, physSize, offset)
	if err != nil {
		t.Fatal(err)
	}
	idRes, err := Walk(plainRead(m), tb.Satp(1), 0x5018, AccStore, isa.PrivS)
	if err != nil {
		t.Fatal(err)
	}
	alRes, err := Walk(plainRead(m), tb.Satp(1), offset+0x5018, AccStore, isa.PrivS)
	if err != nil {
		t.Fatal(err)
	}
	if idRes.PA != 0x5018 || alRes.PA != idRes.PA {
		t.Fatalf("alias pa=%#x, identity pa=%#x", alRes.PA, idRes.PA)
	}
	if idRes.PA>>6 != alRes.PA>>6 {
		t.Fatal("aliases must share a physical reservation granule")
	}
	// VA granules differ even though the PA granule is shared
	if (uint64(0x5018)>>6) == (offset+0x5018)>>6 {
		t.Fatal("test premise broken: VA granules should differ")
	}
	// the alias window must not be executable, and identity must be
	if _, err := Walk(plainRead(m), tb.Satp(1), offset+0x5000, AccFetch, isa.PrivS); err == nil {
		t.Fatal("fetch from alias window must fault")
	}
	if _, err := Walk(plainRead(m), tb.Satp(1), 0x5000, AccFetch, isa.PrivS); err != nil {
		t.Fatalf("identity fetch: %v", err)
	}
	// a page-crossing 8-byte window translates page by page: last byte of
	// one page and first of the next both map, contiguously here
	a, err := Walk(plainRead(m), tb.Satp(1), offset+0x5FF8, AccStore, isa.PrivS)
	if err != nil {
		t.Fatal(err)
	}
	bRes, err := Walk(plainRead(m), tb.Satp(1), offset+0x6000, AccStore, isa.PrivS)
	if err != nil {
		t.Fatal(err)
	}
	if a.PA+8 != bRes.PA {
		t.Fatalf("page-crossing pair: %#x then %#x", a.PA, bRes.PA)
	}
	// beyond the mapped window: faults with the faulting VA reported
	_, err = Walk(plainRead(m), tb.Satp(1), offset+physSize, AccLoad, isa.PrivS)
	pf, ok := err.(*PageFault)
	if !ok || pf.VA != offset+physSize {
		t.Fatalf("unmapped alias access: %v", err)
	}
}

func TestWalkRandomizedAgainstTables(t *testing.T) {
	m, tb := newEnv(t)
	rng := rand.New(rand.NewSource(99))
	type mapping struct {
		va, pa uint64
		bits   uint
	}
	var maps []mapping
	for i := 0; i < 64; i++ {
		bits := []uint{12, 12, 12, 21}[rng.Intn(4)]
		va := (uint64(rng.Intn(1<<17)) << bits) & (1<<38 - 1)
		pa := uint64(rng.Intn(1<<16)) << bits
		if err := tb.Map(va, pa, bits, PteR|PteW); err != nil {
			continue // conflicts possible; skip
		}
		maps = append(maps, mapping{va, pa, bits})
	}
	for _, mp := range maps {
		off := uint64(rng.Intn(1 << mp.bits))
		res, err := Walk(plainRead(m), tb.Satp(0), mp.va+off, AccLoad, isa.PrivS)
		if err != nil {
			t.Fatalf("va=%#x: %v", mp.va+off, err)
		}
		if res.PA != mp.pa+off {
			t.Fatalf("va=%#x -> %#x, want %#x", mp.va+off, res.PA, mp.pa+off)
		}
	}
}
