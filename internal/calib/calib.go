package calib

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"xt910/internal/bench"
	"xt910/internal/core"
	"xt910/internal/perf"
	"xt910/internal/sched"
	"xt910/internal/workloads"
)

// Env is the knob-application surface: the three comparison-core
// configurations plus the harness memory-system knobs. A Knob mutates one
// field; the measurement functions read whichever configs their point needs.
type Env struct {
	XT910 core.Config
	U74   core.Config
	A73   core.Config
	Sys   bench.MeasureSys
}

// BaseEnv is the uncalibrated model: the stock configurations every
// experiment in internal/bench runs with.
func BaseEnv() Env {
	return Env{
		XT910: core.XT910Config(),
		U74:   core.U74Config(),
		A73:   core.A73Config(),
		Sys:   bench.MeasureSys{L2HitLatency: 10},
	}
}

// Knob is one timing parameter the sweep may adjust. Values[0] is the stock
// setting (the coordinate descent starts there, and ties resolve back to
// it), so an empty sweep reproduces the uncalibrated model exactly.
type Knob struct {
	Name   string
	Values []int
	Apply  func(*Env, int)
}

// Knobs is the stock calibration knob set over internal/core/config.go: the
// branch penalties, L1/L2 latencies, MSHR count and issue widths the ISSUE's
// gap analysis names. The measured CoreMark ratio overshoots the paper's
// (the model's U74-class is too slow relative to its XT-910), so the grid
// spans both directions: settings that speed the U74 model up and settings
// that slow the XT-910 model down.
func Knobs() []Knob {
	return []Knob{
		{"xt910.l1d_hit_latency", []int{2, 3, 4, 5, 6}, func(e *Env, v int) { e.XT910.L1D.HitLatency = v }},
		{"xt910.taken_penalty", []int{2, 3, 4, 5, 6}, func(e *Env, v int) { e.XT910.TakenPenalty = v }},
		{"xt910.issue_width", []int{8, 6, 4, 3}, func(e *Env, v int) { e.XT910.IssueWidth = v }},
		{"xt910.l1d_mshrs", []int{8, 4, 2, 1}, func(e *Env, v int) { e.XT910.L1D.MSHRs = v }},
		{"u74.taken_penalty", []int{1, 0}, func(e *Env, v int) { e.U74.TakenPenalty = v }},
		{"u74.mispredict_min", []int{3, 2, 1}, func(e *Env, v int) { e.U74.MispredictMin = v }},
		{"u74.issue_width", []int{2, 3, 4}, func(e *Env, v int) { e.U74.IssueWidth = v }},
		{"u74.frontend_delay", []int{1, 0}, func(e *Env, v int) { e.U74.FrontendDelay = v }},
		{"sys.l2_hit_latency", []int{10, 6, 14, 20, 28}, func(e *Env, v int) { e.Sys.L2HitLatency = v }},
	}
}

// apply builds the Env a value assignment (one index per knob) describes.
func apply(knobs []Knob, assign []int) Env {
	e := BaseEnv()
	for i, k := range knobs {
		k.Apply(&e, k.Values[assign[i]])
	}
	return e
}

// Err is the per-point shape-error metric: |ln(measured/paper)|, symmetric
// in over- and under-shoot and unit-free across ratio scales.
func Err(measured, paper float64) float64 {
	return math.Abs(math.Log(measured / paper))
}

// Measurer evaluates one point's scalar under an Env. Sweep takes it as a
// parameter so tests can substitute synthetic landscapes; MeasurePoint is
// the real one.
type Measurer func(ctx context.Context, o bench.Options, env Env, id string) (float64, error)

// runSpec is one simulator run inside a point measurement.
type runSpec struct {
	workload string
	iters    int
	cfg      core.Config
}

// measureRuns fans the specs out on the worker pool and returns their
// results in submission order (deterministic at any concurrency).
func measureRuns(ctx context.Context, o bench.Options, env Env, specs []runSpec) ([]bench.MeasureRun, error) {
	jobs := make([]sched.Job, len(specs))
	for i, s := range specs {
		s := s
		jobs[i] = sched.Job{ID: "calib/" + s.workload + "/" + s.cfg.Name, Run: func(ctx context.Context) (any, error) {
			return bench.MeasureWorkload(ctx, o, s.workload, s.iters, s.cfg, env.Sys)
		}}
	}
	workers := o.Jobs
	if workers < 1 {
		workers = 1
	}
	rs := sched.Run(ctx, jobs, sched.Options{Workers: workers})
	if err := sched.FirstError(rs); err != nil {
		return nil, err
	}
	out := make([]bench.MeasureRun, len(rs))
	for i, r := range rs {
		out[i] = r.Value.(bench.MeasureRun)
	}
	return out, nil
}

// MeasurePoint evaluates one PaperTable point under env: the same kernels,
// iteration scaling and ratio conventions as the corresponding experiment in
// internal/bench, so the fidelity table lines up with EXPERIMENTS.md.
func MeasurePoint(ctx context.Context, o bench.Options, env Env, id string) (float64, error) {
	switch id {
	case "fig17/coremark-ratio":
		rs, err := measureRuns(ctx, o, env, []runSpec{
			{"coremark", 0, env.XT910},
			{"coremark", 0, env.U74},
		})
		if err != nil {
			return 0, err
		}
		if rs[0].Exit != rs[1].Exit {
			return 0, fmt.Errorf("calib: coremark architectural mismatch across configs")
		}
		return float64(rs[1].Cycles) / float64(rs[0].Cycles), nil
	case "fig18/eembc-geomean":
		return suiteGeomean(ctx, o, env, workloads.EEMBC())
	case "fig19/nbench-geomean":
		return suiteGeomean(ctx, o, env, workloads.NBench())
	case "spec/xt910-vs-a73":
		iters := workloads.SpecLike.DefaultIters
		if o.Quick {
			iters = 1
		}
		rs, err := measureRuns(ctx, o, env, []runSpec{
			{workloads.SpecLike.Name, iters, env.XT910},
			{workloads.SpecLike.Name, iters, env.A73},
		})
		if err != nil {
			return 0, err
		}
		if rs[0].Exit != rs[1].Exit {
			return 0, fmt.Errorf("calib: speclike architectural mismatch across configs")
		}
		return float64(rs[1].Cycles) / float64(rs[0].Cycles), nil
	}
	return 0, fmt.Errorf("calib: unknown point %q", id)
}

// suiteGeomean mirrors bench.suiteVsA73's quantity: the geomean over the
// suite of per-kernel cycle ratios A73/XT910 (>1 means the XT-910 model is
// faster).
func suiteGeomean(ctx context.Context, o bench.Options, env Env, suite []workloads.Workload) (float64, error) {
	specs := make([]runSpec, 0, 2*len(suite))
	for _, w := range suite {
		specs = append(specs,
			runSpec{w.Name, 0, env.XT910},
			runSpec{w.Name, 0, env.A73})
	}
	rs, err := measureRuns(ctx, o, env, specs)
	if err != nil {
		return 0, err
	}
	ratios := make([]float64, len(suite))
	for i := range suite {
		xt, a73 := rs[2*i], rs[2*i+1]
		if xt.Exit != a73.Exit {
			return 0, fmt.Errorf("calib: %s architectural mismatch across configs", suite[i].Name)
		}
		ratios[i] = float64(a73.Cycles) / float64(xt.Cycles)
	}
	return perf.Geomean(ratios), nil
}

// Options tunes a sweep.
type Options struct {
	Quick bool
	Jobs  int
	Seed  int64
	// Passes bounds the coordinate-descent passes over the knob set
	// (default 2; the descent also stops early once a pass changes nothing).
	Passes int
}

// KnobReport records one knob's sweep outcome.
type KnobReport struct {
	Name   string `json:"name"`
	Base   int    `json:"base"`
	Chosen int    `json:"chosen"`
	Values []int  `json:"values"`
}

// PointReport is one row of the fidelity error table.
type PointReport struct {
	ID           string  `json:"id"`
	Figure       string  `json:"figure"`
	Desc         string  `json:"desc"`
	Paper        float64 `json:"paper"`
	Weight       float64 `json:"weight"`
	Uncalibrated float64 `json:"uncalibrated"`
	Calibrated   float64 `json:"calibrated"`
	ErrUncal     float64 `json:"err_uncal"`
	ErrCal       float64 `json:"err_cal"`
}

// Schema identifies the FIDELITY_*.json document layout.
const Schema = "xt910-fidelity-v1"

// Result is the fidelity document: the sweep's provenance (seed, profile,
// evaluation count), the chosen knob assignment, and the per-point error
// table at the base and calibrated assignments. Simulation is deterministic,
// so the JSON encoding is byte-identical across hosts and -jobs widths.
type Result struct {
	Schema  string `json:"schema"`
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`
	Passes  int    `json:"passes"`
	Evals   int    `json:"evals"`

	ObjectiveUncal float64 `json:"objective_uncal"`
	ObjectiveCal   float64 `json:"objective_cal"`

	Knobs  []KnobReport  `json:"knobs"`
	Points []PointReport `json:"points"`
}

// Run sweeps the stock knob set against the checked-in paper table with real
// simulator measurements.
func Run(ctx context.Context, o Options) (*Result, error) {
	return Sweep(ctx, o, Knobs(), PaperTable(), MeasurePoint)
}

// Sweep is seeded coordinate descent: starting from the all-stock
// assignment, it visits the knobs in a seed-permuted order and greedily
// adopts, per knob, the grid value minimizing the weighted mean shape error
// over the Weight > 0 points (ties resolve to the earliest grid index, so a
// flat landscape keeps the stock setting). Passes repeat until a pass
// changes nothing. The descent only ever adopts improvements, so the
// calibrated objective is never worse than the uncalibrated one; every
// point — weighted or not — is then re-measured at both assignments for the
// error table.
func Sweep(ctx context.Context, o Options, knobs []Knob, points []Point, measure Measurer) (*Result, error) {
	passes := o.Passes
	if passes <= 0 {
		passes = 2
	}
	bo := bench.Options{Quick: o.Quick, Jobs: o.Jobs}

	var weighted []Point
	for _, p := range points {
		if p.Weight > 0 {
			weighted = append(weighted, p)
		}
	}

	evals := 0
	memo := map[string]float64{}
	objective := func(assign []int) (float64, error) {
		key := assignKey(assign)
		if v, ok := memo[key]; ok {
			return v, nil
		}
		env := apply(knobs, assign)
		var sum, wsum float64
		for _, p := range weighted {
			m, err := measure(ctx, bo, env, p.ID)
			if err != nil {
				return 0, fmt.Errorf("point %s: %w", p.ID, err)
			}
			sum += p.Weight * Err(m, p.Paper)
			wsum += p.Weight
		}
		obj := 0.0
		if wsum > 0 {
			obj = sum / wsum
		}
		evals++
		memo[key] = obj
		return obj, nil
	}

	assign := make([]int, len(knobs))
	base := append([]int(nil), assign...)
	objUncal, err := objective(base)
	if err != nil {
		return nil, err
	}

	order := rand.New(rand.NewSource(o.Seed)).Perm(len(knobs))
	ranPasses := 0
	for pass := 0; pass < passes && len(weighted) > 0; pass++ {
		changed := false
		for _, ki := range order {
			bestIdx, bestObj := -1, math.Inf(1)
			for vi := range knobs[ki].Values {
				cand := append([]int(nil), assign...)
				cand[ki] = vi
				obj, err := objective(cand)
				if err != nil {
					return nil, err
				}
				if obj < bestObj {
					bestIdx, bestObj = vi, obj
				}
			}
			if bestIdx != assign[ki] {
				assign[ki] = bestIdx
				changed = true
			}
		}
		ranPasses++
		if !changed {
			break
		}
	}
	objCal, err := objective(assign)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Schema:         Schema,
		Profile:        profile(o.Quick),
		Seed:           o.Seed,
		Passes:         ranPasses,
		Evals:          evals,
		ObjectiveUncal: objUncal,
		ObjectiveCal:   objCal,
	}
	for i, k := range knobs {
		res.Knobs = append(res.Knobs, KnobReport{
			Name: k.Name, Base: k.Values[0], Chosen: k.Values[assign[i]],
			Values: k.Values,
		})
	}
	baseEnv, calEnv := apply(knobs, base), apply(knobs, assign)
	for _, p := range points {
		mu, err := measure(ctx, bo, baseEnv, p.ID)
		if err != nil {
			return nil, fmt.Errorf("point %s (base): %w", p.ID, err)
		}
		mc, err := measure(ctx, bo, calEnv, p.ID)
		if err != nil {
			return nil, fmt.Errorf("point %s (calibrated): %w", p.ID, err)
		}
		res.Points = append(res.Points, PointReport{
			ID: p.ID, Figure: p.Figure, Desc: p.Desc, Paper: p.Paper, Weight: p.Weight,
			Uncalibrated: mu, Calibrated: mc,
			ErrUncal: Err(mu, p.Paper), ErrCal: Err(mc, p.Paper),
		})
	}
	sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].ID < res.Points[j].ID })
	return res, nil
}

func profile(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}

func assignKey(assign []int) string {
	var b strings.Builder
	for _, v := range assign {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// Format renders the fidelity document as an aligned text table.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== fidelity: paper-vs-measured shape error (%s profile, seed %d, %d evals) ==\n",
		r.Profile, r.Seed, r.Evals)
	fmt.Fprintf(&b, "  objective (weighted mean |ln m/p|): %.4f uncalibrated -> %.4f calibrated\n",
		r.ObjectiveUncal, r.ObjectiveCal)
	fmt.Fprintf(&b, "  %-22s %8s %8s %8s %9s %9s\n", "point", "paper", "uncal", "cal", "err-uncal", "err-cal")
	for _, p := range r.Points {
		tag := ""
		if p.Weight > 0 {
			tag = "  (objective)"
		}
		fmt.Fprintf(&b, "  %-22s %8.3f %8.3f %8.3f %9.4f %9.4f%s\n",
			p.ID, p.Paper, p.Uncalibrated, p.Calibrated, p.ErrUncal, p.ErrCal, tag)
	}
	changed := 0
	for _, k := range r.Knobs {
		if k.Chosen != k.Base {
			fmt.Fprintf(&b, "  knob %-22s %d -> %d\n", k.Name, k.Base, k.Chosen)
			changed++
		}
	}
	if changed == 0 {
		fmt.Fprintf(&b, "  knobs: all at stock settings\n")
	}
	return b.String()
}
