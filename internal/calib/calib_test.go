package calib

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"xt910/internal/bench"
)

// synLandscape builds a synthetic knob set and measurer with a known
// separable optimum: the point's error is 0.1*(|l2hit-14| + |width-6|), so
// coordinate descent must land on l2_hit=14 and issue_width=6 regardless of
// visit order, while the inert knob must stay at its stock index 0.
func synLandscape() ([]Knob, []Point, Measurer) {
	knobs := []Knob{
		{"syn.l2_hit", []int{10, 12, 14, 16}, func(e *Env, v int) { e.Sys.L2HitLatency = v }},
		{"syn.width", []int{2, 6}, func(e *Env, v int) { e.XT910.IssueWidth = v }},
		{"syn.inert", []int{1, 2, 3}, func(e *Env, v int) { e.U74.TakenPenalty = v }},
	}
	points := []Point{
		{ID: "syn/objective", Figure: "syn", Desc: "synthetic", Paper: 1.0, Weight: 1},
		{ID: "syn/holdout", Figure: "syn", Desc: "holdout", Paper: 2.0},
	}
	measure := func(ctx context.Context, o bench.Options, env Env, id string) (float64, error) {
		switch id {
		case "syn/objective":
			d := 0.1 * (math.Abs(float64(env.Sys.L2HitLatency-14)) +
				math.Abs(float64(env.XT910.IssueWidth-6)))
			return math.Exp(d), nil // Err(m, 1.0) == d
		case "syn/holdout":
			return 2.0 * math.Exp(0.05*math.Abs(float64(env.Sys.L2HitLatency-10))), nil
		}
		return 0, fmt.Errorf("unknown synthetic point %q", id)
	}
	return knobs, points, measure
}

// TestSweepConvergence: the descent must recover the known optimum of the
// synthetic landscape from the all-stock start, whatever the seed permutes,
// and leave the knob that cannot affect the objective at its stock value.
func TestSweepConvergence(t *testing.T) {
	knobs, points, measure := synLandscape()
	for _, seed := range []int64{0, 1, 7, 42} {
		r, err := Sweep(context.Background(), Options{Seed: seed}, knobs, points, measure)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		chosen := map[string]int{}
		for _, k := range r.Knobs {
			chosen[k.Name] = k.Chosen
		}
		if chosen["syn.l2_hit"] != 14 || chosen["syn.width"] != 6 {
			t.Errorf("seed %d: did not recover optimum: %v", seed, chosen)
		}
		if chosen["syn.inert"] != 1 {
			t.Errorf("seed %d: inert knob moved off stock: %v", seed, chosen)
		}
		if r.ObjectiveCal > r.ObjectiveUncal {
			t.Errorf("seed %d: calibration made objective worse: %.4f -> %.4f",
				seed, r.ObjectiveUncal, r.ObjectiveCal)
		}
		if math.Abs(r.ObjectiveCal) > 1e-12 {
			t.Errorf("seed %d: optimum objective not zero: %g", seed, r.ObjectiveCal)
		}
		// The error table must carry both points (sorted by ID), including
		// the zero-weight holdout, with errors consistent with Err().
		if len(r.Points) != 2 || r.Points[0].ID != "syn/holdout" || r.Points[1].ID != "syn/objective" {
			t.Fatalf("seed %d: bad point table: %+v", seed, r.Points)
		}
		for _, p := range r.Points {
			if got := Err(p.Uncalibrated, p.Paper); math.Abs(got-p.ErrUncal) > 1e-12 {
				t.Errorf("seed %d: %s err_uncal %g inconsistent with Err()=%g", seed, p.ID, p.ErrUncal, got)
			}
			if got := Err(p.Calibrated, p.Paper); math.Abs(got-p.ErrCal) > 1e-12 {
				t.Errorf("seed %d: %s err_cal %g inconsistent with Err()=%g", seed, p.ID, p.ErrCal, got)
			}
		}
	}
}

// TestSweepFlatLandscapeKeepsStock: when no knob changes the objective every
// tie must resolve to the stock assignment, so the calibrated model is the
// uncalibrated model exactly.
func TestSweepFlatLandscapeKeepsStock(t *testing.T) {
	knobs, points, _ := synLandscape()
	flat := func(ctx context.Context, o bench.Options, env Env, id string) (float64, error) {
		return 1.5, nil
	}
	r, err := Sweep(context.Background(), Options{Seed: 3}, knobs, points, flat)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range r.Knobs {
		if k.Chosen != k.Base {
			t.Errorf("flat landscape moved knob %s: %d -> %d", k.Name, k.Base, k.Chosen)
		}
	}
	if r.ObjectiveCal != r.ObjectiveUncal {
		t.Errorf("flat landscape changed objective: %v -> %v", r.ObjectiveUncal, r.ObjectiveCal)
	}
	// A flat pass changes nothing, so the early-stop fires after one pass.
	if r.Passes != 1 {
		t.Errorf("flat landscape ran %d passes, want early stop after 1", r.Passes)
	}
}

// TestSweepDeterministicAcrossJobs: the FIDELITY document must be
// byte-identical at any -jobs width and across repeated runs with the same
// seed.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	knobs, points, measure := synLandscape()
	var docs [][]byte
	for _, jobs := range []int{1, 4, 8, 1} {
		r, err := Sweep(context.Background(), Options{Jobs: jobs, Seed: 9}, knobs, points, measure)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, b)
	}
	for i := 1; i < len(docs); i++ {
		if string(docs[i]) != string(docs[0]) {
			t.Fatalf("FIDELITY JSON differs between runs 0 and %d:\n%s\n----\n%s",
				i, docs[0], docs[i])
		}
	}
	var back Result
	if err := json.Unmarshal(docs[0], &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Schema != Schema {
		t.Fatalf("schema %q, want %q", back.Schema, Schema)
	}
}

// TestErrMetric pins the shape-error metric: zero at exact match, symmetric
// in over/undershoot, and scale-free.
func TestErrMetric(t *testing.T) {
	if Err(1.39, 1.39) != 0 {
		t.Error("Err at exact match not zero")
	}
	if d := math.Abs(Err(2, 1) - Err(0.5, 1)); d > 1e-12 {
		t.Errorf("Err not symmetric: %g", d)
	}
	if d := math.Abs(Err(2, 1) - Err(20, 10)); d > 1e-12 {
		t.Errorf("Err not scale-free: %g", d)
	}
}

// TestPaperTableGolden pins the checked-in paper numbers and the error-table
// rendering, so an accidental edit to the targets is a visible diff.
func TestPaperTableGolden(t *testing.T) {
	pts := PaperTable()
	want := map[string]float64{
		"fig17/coremark-ratio": 7.1 / 5.1,
		"fig18/eembc-geomean":  1.0,
		"fig19/nbench-geomean": 1.0,
		"spec/xt910-vs-a73":    6.11 / 6.75,
	}
	if len(pts) != len(want) {
		t.Fatalf("PaperTable has %d points, want %d", len(pts), len(want))
	}
	weighted := 0
	for _, p := range pts {
		w, ok := want[p.ID]
		if !ok {
			t.Errorf("unexpected point %q", p.ID)
			continue
		}
		if p.Paper != w {
			t.Errorf("%s paper value %v, want %v", p.ID, p.Paper, w)
		}
		if p.Weight > 0 {
			weighted++
			if p.ID != "fig17/coremark-ratio" {
				t.Errorf("unexpected weighted point %q", p.ID)
			}
		}
	}
	if weighted != 1 {
		t.Errorf("%d weighted points, want exactly 1 (fig17)", weighted)
	}

	// Golden formatting of a fixed document.
	r := &Result{
		Schema: Schema, Profile: "quick", Seed: 1, Passes: 2, Evals: 10,
		ObjectiveUncal: 0.4462, ObjectiveCal: 0.1,
		Knobs: []KnobReport{
			{Name: "u74.taken_penalty", Base: 1, Chosen: 0, Values: []int{1, 0}},
			{Name: "xt910.issue_width", Base: 8, Chosen: 8, Values: []int{8, 6, 4}},
		},
		Points: []PointReport{{
			ID: "fig17/coremark-ratio", Figure: "fig17", Paper: 1.392,
			Weight: 1, Uncalibrated: 2.175, Calibrated: 1.539,
			ErrUncal: 0.4462, ErrCal: 0.1,
		}},
	}
	golden := "== fidelity: paper-vs-measured shape error (quick profile, seed 1, 10 evals) ==\n" +
		"  objective (weighted mean |ln m/p|): 0.4462 uncalibrated -> 0.1000 calibrated\n" +
		"  point                     paper    uncal      cal err-uncal   err-cal\n" +
		"  fig17/coremark-ratio      1.392    2.175    1.539    0.4462    0.1000  (objective)\n" +
		"  knob u74.taken_penalty      1 -> 0\n"
	if got := r.Format(); got != golden {
		t.Errorf("Format golden mismatch:\n got:\n%s\nwant:\n%s", got, golden)
	}
}

// TestMeasurePointFig17 runs the real fig17 measurement quickly on the stock
// environment: the ratio must be finite, above 1 (the XT-910 model is faster
// than the U74-class model), and identical at any -jobs width.
func TestMeasurePointFig17(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulator measurement")
	}
	ctx := context.Background()
	env := BaseEnv()
	v1, err := MeasurePoint(ctx, bench.Options{Quick: true, Jobs: 1}, env, "fig17/coremark-ratio")
	if err != nil {
		t.Fatal(err)
	}
	v4, err := MeasurePoint(ctx, bench.Options{Quick: true, Jobs: 4}, env, "fig17/coremark-ratio")
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v4 {
		t.Fatalf("fig17 ratio differs across jobs widths: %v vs %v", v1, v4)
	}
	if !(v1 > 1 && v1 < 10) {
		t.Fatalf("implausible coremark ratio %v", v1)
	}
}

// TestMeasurePointUnknown: unknown IDs must error, not silently return 0.
func TestMeasurePointUnknown(t *testing.T) {
	_, err := MeasurePoint(context.Background(), bench.Options{}, BaseEnv(), "nope")
	if err == nil {
		t.Fatal("expected error for unknown point")
	}
}
