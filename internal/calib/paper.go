// Package calib is the accuracy-calibration harness: a seeded coordinate-
// descent sweep over the model's timing knobs (internal/core/config.go and
// the harness memory system) that minimizes shape error against the paper's
// per-figure numbers, plus the paper-vs-measured error table xtbench
// -fidelity emits as FIDELITY_*.json. The PAPERS.md calibration literature
// (Chatzopoulos et al., Barai et al.) is the model: per-benchmark error
// tracking plus parameter fitting is what makes a performance model credible.
package calib

// Point is one paper-vs-measured comparison: a scalar shape quantity (a
// ratio or a geomean of ratios — never an absolute cycle count, which the
// paper does not publish) with the paper's value. Points with Weight > 0
// form the sweep objective; zero-weight points are measured and reported but
// never steer the descent, so the error table stays an honest holdout.
type Point struct {
	ID     string  `json:"id"`
	Figure string  `json:"figure"`
	Desc   string  `json:"desc"`
	Paper  float64 `json:"paper"`
	Weight float64 `json:"weight"`
}

// PaperTable is the checked-in encoding of the paper's §X evaluation numbers
// the harness can measure. fig17's CoreMark ratio is the sole sweep
// objective — the headline claim ("7.1 CoreMark/MHz, 40% faster than SiFive
// U74") and the EXPERIMENTS.md acceptance metric; the rest are report-only
// holdouts that show whether fitting one figure distorts the others.
func PaperTable() []Point {
	return []Point{
		{
			ID:     "fig17/coremark-ratio",
			Figure: "fig17",
			Desc:   "CoreMark XT-910 / U74-class speedup (paper: 7.1/5.1)",
			Paper:  7.1 / 5.1,
			Weight: 1,
		},
		{
			ID:     "fig18/eembc-geomean",
			Figure: "fig18",
			Desc:   "EEMBC geomean speedup vs A73-class (paper: parity)",
			Paper:  1.0,
		},
		{
			ID:     "fig19/nbench-geomean",
			Figure: "fig19",
			Desc:   "NBench geomean speedup vs A73-class (paper: parity)",
			Paper:  1.0,
		},
		{
			ID:     "spec/xt910-vs-a73",
			Figure: "spec",
			Desc:   "SPECInt-like XT-910 / A73-class ratio (paper: 6.11/6.75)",
			Paper:  6.11 / 6.75,
		},
	}
}
