package compiler

import (
	"fmt"
	"strings"
)

// Optimized is the XT-910 toolchain backend (§IX + §VIII custom extensions).
type Optimized struct {
	// UseCustomExt selects the §VIII instructions (indexed load/store, mula).
	// Disabling it isolates the pure compiler-optimization gain.
	UseCustomExt bool
}

// Name implements Backend.
func (o Optimized) Name() string {
	if o.UseCustomExt {
		return "optimized+ext"
	}
	return "optimized"
}

// Compile implements Backend.
func (o Optimized) Compile(f *Function) (string, error) {
	var b strings.Builder
	al := newAllocator()
	emit := func(format string, args ...any) {
		fmt.Fprintf(&b, "    "+format+"\n", args...)
	}

	// global layout offsets from the anchor (§IX item 2: "allocates the
	// variables of the same function to a continuous address space, saves
	// the starting address of this space to a register")
	offsets := map[string]int{}
	off := 0
	for _, g := range f.Globals {
		offsets[g.Name] = off
		off += g.Words * 4
	}

	b.WriteString("_start:\n")
	emit("la   s0, globals        # anchor register (§IX)")
	// addrOf emits "s1 = anchor + off" regardless of offset magnitude
	addrOf := func(off int) {
		if off >= -2048 && off <= 2047 {
			emit("addi s1, s0, %d", off)
		} else {
			emit("li   s1, %d", off)
			emit("add  s1, s1, s0")
		}
	}
	if f.Repeat > 1 {
		emit("li   s11, %d", f.Repeat)
		b.WriteString("bench_rep:\n")
	}

	label := 0
	// genStmt generates one statement outside loops (no strength reduction).
	genStmt := func(s *Stmt) error {
		dst, err := al.reg(s.Dst)
		if err != nil {
			return err
		}
		ra, _ := al.reg(s.A)
		rb, _ := al.reg(s.B)
		switch s.Kind {
		case SConst:
			emit("li   %s, %d", dst, s.Imm)
		case SAdd:
			emit("add  %s, %s, %s", dst, ra, rb)
		case SSub:
			emit("sub  %s, %s, %s", dst, ra, rb)
		case SMul:
			emit("mul  %s, %s, %s", dst, ra, rb)
		case SAddImm:
			emit("addi %s, %s, %d", dst, ra, s.Imm) // churn removed (§IX item 1)
		case SShl:
			emit("slli %s, %s, %d", dst, ra, s.Imm)
		case SLoadIdx:
			idx, _ := al.reg(s.Idx)
			if o.UseCustomExt {
				addrOf(offsets[s.G])
				emit("lrw  %s, s1, %s, 2", dst, idx) // §VIII-A indexed load
			} else {
				addrOf(offsets[s.G])
				emit("slli t6, %s, 2", idx)
				emit("add  s1, s1, t6")
				emit("lw   %s, 0(s1)", dst)
			}
		case SStoreIdx:
			idx, _ := al.reg(s.Idx)
			if o.UseCustomExt {
				addrOf(offsets[s.G])
				emit("srw  %s, s1, %s, 2", ra, idx)
			} else {
				addrOf(offsets[s.G])
				emit("slli t6, %s, 2", idx)
				emit("add  s1, s1, t6")
				emit("sw   %s, 0(s1)", ra)
			}
		case SLoadG:
			if off := offsets[s.G]; off >= -2048 && off <= 2047 {
				emit("lw   %s, %d(s0)", dst, off)
			} else {
				addrOf(off)
				emit("lw   %s, 0(s1)", dst)
			}
		case SStoreG:
			if off := offsets[s.G]; off >= -2048 && off <= 2047 {
				emit("sw   %s, %d(s0)", ra, off)
			} else {
				addrOf(off)
				emit("sw   %s, 0(s1)", ra)
			}
		case SAccum:
			if o.UseCustomExt {
				emit("mula %s, %s, %s", dst, ra, rb) // §VIII-B MAC
			} else {
				emit("mul  s1, %s, %s", ra, rb)
				emit("add  %s, %s, s1", dst, dst)
			}
		default:
			return fmt.Errorf("compiler: unknown stmt kind %d", s.Kind)
		}
		return nil
	}

	for _, n := range f.Code {
		switch {
		case n.Stmt != nil:
			if err := genStmt(n.Stmt); err != nil {
				return "", err
			}
		case n.Loop != nil:
			if err := o.genLoop(&b, al, n.Loop, offsets, &label, genStmt); err != nil {
				return "", err
			}
		}
	}
	res, err := al.reg(f.Result)
	if err != nil {
		return "", err
	}
	if f.Repeat > 1 {
		emit("addi s11, s11, -1")
		emit("bnez s11, bench_rep")
	}
	emit("mv   a0, %s", res)
	emit("li   a7, 93")
	emit("ecall")
	emitGlobals(&b, f)
	return b.String(), nil
}

// genLoop applies DSE and induction-variable strength reduction, then emits a
// count-down loop with walking pointers for induction-indexed arrays.
func (o Optimized) genLoop(b *strings.Builder, al *allocator, lp *Loop,
	offsets map[string]int, label *int, genStmt func(*Stmt) error) error {

	emit := func(format string, args ...any) {
		fmt.Fprintf(b, "    "+format+"\n", args...)
	}
	body := deadStoreEliminate(lp.Body)

	// find arrays indexed by the induction variable → walking pointers
	type ptrInfo struct{ reg string }
	ptrs := map[string]*ptrInfo{}
	var ptrOrder []string // deterministic emit order
	ptrRegs := []string{"s3", "s4", "s5", "s6", "s7"}
	needsIV := false
	for i := range body {
		s := &body[i]
		switch s.Kind {
		case SLoadIdx, SStoreIdx:
			if s.Idx == lp.Induction {
				if ptrs[s.G] == nil {
					if len(ptrs) >= len(ptrRegs) {
						return fmt.Errorf("compiler: too many strength-reduced arrays")
					}
					ptrs[s.G] = &ptrInfo{reg: ptrRegs[len(ptrs)]}
					ptrOrder = append(ptrOrder, s.G)
				}
			} else {
				needsIV = true
			}
		default:
			for _, v := range []VReg{s.A, s.B, s.Idx} {
				if v == lp.Induction {
					needsIV = true
				}
			}
		}
	}

	// preheader: pointers start at the array bases; a count-down register
	// replaces the compare-against-bound (§IX item 1: control code moved
	// out of the loop)
	for _, g := range ptrOrder {
		if off := offsets[g]; off >= -2048 && off <= 2047 {
			emit("addi %s, s0, %d", ptrs[g].reg, off)
		} else {
			emit("li   %s, %d", ptrs[g].reg, off)
			emit("add  %s, %s, s0", ptrs[g].reg, ptrs[g].reg)
		}
	}
	var iv string
	if needsIV {
		var err error
		iv, err = al.reg(lp.Induction)
		if err != nil {
			return err
		}
		emit("li   %s, 0", iv)
	}
	emit("li   s2, %d", lp.N)
	*label++
	lbl := *label
	fmt.Fprintf(b, "loop%d:\n", lbl)
	for i := range body {
		s := &body[i]
		switch s.Kind {
		case SLoadIdx:
			if p := ptrs[s.G]; p != nil && s.Idx == lp.Induction {
				dst, err := al.reg(s.Dst)
				if err != nil {
					return err
				}
				emit("lw   %s, 0(%s)", dst, p.reg)
				continue
			}
		case SStoreIdx:
			if p := ptrs[s.G]; p != nil && s.Idx == lp.Induction {
				ra, _ := al.reg(s.A)
				emit("sw   %s, 0(%s)", ra, p.reg)
				continue
			}
		}
		if err := genStmt(s); err != nil {
			return err
		}
	}
	for _, g := range ptrOrder {
		emit("addi %s, %s, 4", ptrs[g].reg, ptrs[g].reg)
	}
	if needsIV {
		emit("addi %s, %s, 1", iv, iv)
	}
	emit("addi s2, s2, -1")
	emit("bnez s2, loop%d", lbl)
	return nil
}

// deadStoreEliminate removes stores that are overwritten by a later store to
// the same location with no intervening read of that global (§IX item 3).
func deadStoreEliminate(body []Stmt) []Stmt {
	keep := make([]bool, len(body))
	for i := range keep {
		keep[i] = true
	}
	for i, s := range body {
		if s.Kind != SStoreG && s.Kind != SStoreIdx {
			continue
		}
		for j := i + 1; j < len(body); j++ {
			t := body[j]
			// a read of the same global keeps the store live
			if (t.Kind == SLoadG || t.Kind == SLoadIdx) && t.G == s.G {
				break
			}
			if t.Kind == s.Kind && t.G == s.G && t.Idx == s.Idx {
				keep[i] = false // killed before any read
				break
			}
		}
	}
	out := make([]Stmt, 0, len(body))
	for i, s := range body {
		if keep[i] {
			out = append(out, s)
		}
	}
	return out
}

// StaticInsts counts the instructions a compiled program contains (the §IX
// "total number of the instructions" metric).
func StaticInsts(asmSrc string) int {
	n := 0
	for _, line := range strings.Split(asmSrc, "\n") {
		t := strings.TrimSpace(line)
		if i := strings.IndexByte(t, ':'); i >= 0 && !strings.ContainsAny(t[:i], " \t") {
			t = strings.TrimSpace(t[i+1:]) // strip a leading label
		}
		if t == "" || strings.HasPrefix(t, ".") || strings.HasPrefix(t, "#") {
			continue
		}
		n++
	}
	return n
}
