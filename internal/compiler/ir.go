// Package compiler is the toolchain model for the §IX co-optimization study
// (Fig. 20). It compiles a small three-address IR to XT-910 assembly through
// two backends:
//
//   - Baseline: the "native RISC-V ISA and compiler" code generator — global
//     variables materialize their address at every access, loop bodies
//     recompute indexed addresses with sign-extension churn, induction
//     variables update via addiw with the control code inside the loop, and
//     dead stores are retained.
//   - Optimized: the XT-910 toolchain — an anchor register addresses all
//     globals by offset (§IX item 2), induction-variable optimization hoists
//     address computation into strength-reduced pointers (§IX item 1), dead
//     store elimination runs (§IX item 3), and the §VIII custom extensions
//     (indexed loads/stores, addsl, mula) are selected.
//
// The IR deliberately exposes exactly the patterns the paper's optimizations
// target, so compiling the same kernel both ways reproduces Fig. 20's
// ~20% end-to-end improvement.
package compiler

import "fmt"

// VReg is a virtual register.
type VReg int

// StmtKind enumerates IR operations.
type StmtKind int

// IR statement kinds.
const (
	SConst    StmtKind = iota // dst = imm
	SAdd                      // dst = a + b
	SSub                      // dst = a - b
	SMul                      // dst = a * b
	SAddImm                   // dst = a + imm
	SShl                      // dst = a << imm
	SLoadIdx                  // dst = sext32(mem32[global + idx<<2])
	SStoreIdx                 // mem32[global + idx<<2] = a
	SLoadG                    // dst = sext32(global scalar)
	SStoreG                   // global scalar = a
	SAccum                    // dst = dst + a*b (MAC pattern)
)

// Stmt is one IR statement.
type Stmt struct {
	Kind StmtKind
	Dst  VReg
	A, B VReg
	Imm  int64
	G    string // global name for memory ops
	Idx  VReg   // index register for *Idx ops
}

// Node is either a straight-line statement or a counted loop.
type Node struct {
	Stmt *Stmt
	Loop *Loop
}

// Loop is a counted loop; Body references Induction as the index variable
// running 0..N-1.
type Loop struct {
	N         int
	Induction VReg
	Body      []Stmt
}

// Global declares a named data object of Words 32-bit words.
type Global struct {
	Name  string
	Words int
	Init  func(i int) int32 // nil: zero-initialized
}

// Function is a compilable unit. Result is the virtual register whose final
// value becomes the program's exit code (checksum).
type Function struct {
	Name    string
	Globals []Global
	Code    []Node
	Result  VReg
	// Repeat wraps the whole body in an outer benchmark-iteration loop.
	Repeat int
}

// S creates a statement node.
func S(s Stmt) Node { return Node{Stmt: &s} }

// L creates a loop node.
func L(l Loop) Node { return Node{Loop: &l} }

// Backend compiles a function to assembly source.
type Backend interface {
	// Compile returns the assembly text; the program exits with Result.
	Compile(f *Function) (string, error)
	// Name identifies the backend in reports.
	Name() string
}

// maxVRegs bounds the trivial register allocator.
var physRegs = []string{
	"t0", "t1", "t2", "t3", "t4", "t5",
	"a2", "a3", "a4", "a5", "a6", "a7",
	"s2", "s3", "s4", "s5", "s6", "s7",
}

// allocator maps virtual registers onto physical names (s0/s1/a0/s11/t6 are
// reserved for the backends' own use).
type allocator struct {
	m map[VReg]string
}

func newAllocator() *allocator { return &allocator{m: map[VReg]string{}} }

func (a *allocator) reg(v VReg) (string, error) {
	if r, ok := a.m[v]; ok {
		return r, nil
	}
	if len(a.m) >= len(physRegs) {
		return "", fmt.Errorf("compiler: out of registers (%d virtuals)", len(a.m)+1)
	}
	r := physRegs[len(a.m)]
	a.m[v] = r
	return r, nil
}
