package compiler

// Fig20Kernels returns the IR kernels compiled both ways for the Fig. 20
// reproduction. Each exercises at least one of the §IX/§VIII mechanisms:
// dot-product (induction variables + MACs + indexed loads), global
// accumulation (anchor), redundant-store filtering (DSE) and a vector-add
// style sweep (address-generation churn).
func Fig20Kernels() []*Function {
	return []*Function{
		DotProduct(), GlobalAccum(), RedundantStores(), VecAdd(),
	}
}

// DotProduct: s = Σ a[i]*b[i] over 256 elements.
func DotProduct() *Function {
	const n = 256
	const (
		vSum VReg = iota
		vI
		vA
		vB
	)
	return &Function{
		Name:   "dotprod",
		Repeat: 16,
		Globals: []Global{
			{Name: "dp_a", Words: n, Init: func(i int) int32 { return int32((i*13+7)%101 - 50) }},
			{Name: "dp_b", Words: n, Init: func(i int) int32 { return int32((i*29+3)%89 - 44) }},
		},
		Code: []Node{
			S(Stmt{Kind: SConst, Dst: vSum, Imm: 0}),
			L(Loop{N: n, Induction: vI, Body: []Stmt{
				{Kind: SLoadIdx, Dst: vA, G: "dp_a", Idx: vI},
				{Kind: SLoadIdx, Dst: vB, G: "dp_b", Idx: vI},
				{Kind: SAccum, Dst: vSum, A: vA, B: vB},
			}}),
		},
		Result: vSum,
	}
}

// GlobalAccum: a loop updating several distinct global scalars — the anchor
// optimization's target pattern.
func GlobalAccum() *Function {
	const (
		vSum VReg = iota
		vI
		vT0
		vT1
		vT2
		vT3
	)
	return &Function{
		Name:   "globals",
		Repeat: 16,
		Globals: []Global{
			{Name: "g_cnt", Words: 1},
			{Name: "g_min", Words: 1, Init: func(int) int32 { return 1000 }},
			{Name: "g_max", Words: 1},
			{Name: "g_acc", Words: 1},
			{Name: "g_tab", Words: 64, Init: func(i int) int32 { return int32(i*i - 40*i) }},
		},
		Code: []Node{
			S(Stmt{Kind: SConst, Dst: vSum, Imm: 0}),
			L(Loop{N: 64, Induction: vI, Body: []Stmt{
				{Kind: SLoadIdx, Dst: vT0, G: "g_tab", Idx: vI},
				{Kind: SLoadG, Dst: vT1, G: "g_cnt"},
				{Kind: SAddImm, Dst: vT1, A: vT1, Imm: 1},
				{Kind: SStoreG, A: vT1, G: "g_cnt"},
				{Kind: SLoadG, Dst: vT2, G: "g_acc"},
				{Kind: SAdd, Dst: vT2, A: vT2, B: vT0},
				{Kind: SStoreG, A: vT2, G: "g_acc"},
				{Kind: SLoadG, Dst: vT3, G: "g_max"},
				{Kind: SAdd, Dst: vSum, A: vSum, B: vT2},
			}}),
		},
		Result: vSum,
	}
}

// RedundantStores: scratch cells written repeatedly before the final value —
// the DSE target. The dead stores are real work in the baseline.
func RedundantStores() *Function {
	const (
		vSum VReg = iota
		vI
		vT0
		vT1
	)
	return &Function{
		Name:   "deadstores",
		Repeat: 16,
		Globals: []Global{
			{Name: "ds_scratch", Words: 1},
			{Name: "ds_out", Words: 128},
			{Name: "ds_in", Words: 128, Init: func(i int) int32 { return int32(i*7 - 300) }},
		},
		Code: []Node{
			S(Stmt{Kind: SConst, Dst: vSum, Imm: 0}),
			L(Loop{N: 128, Induction: vI, Body: []Stmt{
				{Kind: SLoadIdx, Dst: vT0, G: "ds_in", Idx: vI},
				// intermediate results parked in a scratch global, each
				// immediately overwritten (the pattern §IX item 3 removes)
				{Kind: SStoreG, A: vT0, G: "ds_scratch"},
				{Kind: SAddImm, Dst: vT1, A: vT0, Imm: 5},
				{Kind: SStoreG, A: vT1, G: "ds_scratch"},
				{Kind: SMul, Dst: vT1, A: vT1, B: vT1},
				{Kind: SStoreG, A: vT1, G: "ds_scratch"},
				// the final store is live (read back after the overwrites)
				{Kind: SLoadG, Dst: vT0, G: "ds_scratch"},
				{Kind: SStoreIdx, A: vT0, G: "ds_out", Idx: vI},
				{Kind: SAdd, Dst: vSum, A: vSum, B: vT0},
			}}),
		},
		Result: vSum,
	}
}

// VecAdd: c[i] = a[i] + b[i] — pure address-generation churn in the baseline,
// three walking pointers in the optimized code.
func VecAdd() *Function {
	const n = 256
	const (
		vSum VReg = iota
		vI
		vA
		vB
		vC
	)
	return &Function{
		Name:   "vecadd",
		Repeat: 16,
		Globals: []Global{
			{Name: "va_a", Words: n, Init: func(i int) int32 { return int32(i*3 - 100) }},
			{Name: "va_b", Words: n, Init: func(i int) int32 { return int32(200 - i*5) }},
			{Name: "va_c", Words: n},
		},
		Code: []Node{
			S(Stmt{Kind: SConst, Dst: vSum, Imm: 0}),
			L(Loop{N: n, Induction: vI, Body: []Stmt{
				{Kind: SLoadIdx, Dst: vA, G: "va_a", Idx: vI},
				{Kind: SLoadIdx, Dst: vB, G: "va_b", Idx: vI},
				{Kind: SAdd, Dst: vC, A: vA, B: vB},
				{Kind: SStoreIdx, A: vC, G: "va_c", Idx: vI},
				{Kind: SAdd, Dst: vSum, A: vSum, B: vC},
			}}),
		},
		Result: vSum,
	}
}
