package compiler

import (
	"testing"

	"xt910/internal/asm"
	"xt910/internal/cache"
	"xt910/internal/coherence"
	"xt910/internal/core"
	"xt910/internal/emu"
	"xt910/internal/mem"
)

func compileAndRun(t *testing.T, f *Function, be Backend) (int, *core.Core) {
	t.Helper()
	src, err := be.Compile(f)
	if err != nil {
		t.Fatalf("%s/%s: %v", f.Name, be.Name(), err)
	}
	p, err := asm.Assemble(src, asm.Options{Base: 0x1000})
	if err != nil {
		t.Fatalf("%s/%s assemble: %v\n%s", f.Name, be.Name(), err, src)
	}
	// golden reference
	m := emu.New(mem.NewMemory())
	p.LoadInto(m.Mem)
	m.PC = p.Entry
	if err := m.Run(50_000_000); err != nil || !m.Halted {
		t.Fatalf("%s/%s: emulator did not finish (%v)", f.Name, be.Name(), err)
	}
	// pipeline run
	memory := mem.NewMemory()
	l2 := coherence.NewL2(cache.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, HitLatency: 10}, mem.NewDRAM())
	c := core.New(core.XT910Config(), 0, memory, l2)
	p.LoadInto(memory)
	c.Reset(p.Entry, 0x400000)
	c.Run(100_000_000)
	if !c.Halted {
		t.Fatalf("%s/%s: pipeline did not halt", f.Name, be.Name())
	}
	if c.ExitCode != m.ExitCode {
		t.Fatalf("%s/%s: pipeline=%d emulator=%d", f.Name, be.Name(), c.ExitCode, m.ExitCode)
	}
	return c.ExitCode, c
}

func TestBackendsAgreeOnSemantics(t *testing.T) {
	for _, f := range Fig20Kernels() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			base, _ := compileAndRun(t, f, Baseline{})
			opt, _ := compileAndRun(t, f, Optimized{})
			ext, _ := compileAndRun(t, f, Optimized{UseCustomExt: true})
			if base != opt || base != ext {
				t.Fatalf("backends disagree: base=%d opt=%d ext=%d", base, opt, ext)
			}
		})
	}
}

func TestOptimizedIsFaster(t *testing.T) {
	var totBase, totExt uint64
	for _, f := range Fig20Kernels() {
		_, cb := compileAndRun(t, f, Baseline{})
		_, ce := compileAndRun(t, f, Optimized{UseCustomExt: true})
		totBase += cb.Stats.Cycles
		totExt += ce.Stats.Cycles
		t.Logf("%-12s base=%8d ext=%8d speedup=%.2fx", f.Name,
			cb.Stats.Cycles, ce.Stats.Cycles,
			float64(cb.Stats.Cycles)/float64(ce.Stats.Cycles))
	}
	gain := float64(totBase)/float64(totExt) - 1
	t.Logf("overall toolchain gain: %.1f%% (paper: ~20%%)", gain*100)
	if gain < 0.10 {
		t.Fatalf("optimized toolchain should gain >=10%%, got %.1f%%", gain*100)
	}
}

func TestDSERemovesDeadStores(t *testing.T) {
	f := RedundantStores()
	srcBase, err := (Baseline{}).Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	srcOpt, err := (Optimized{}).Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	if StaticInsts(srcOpt) >= StaticInsts(srcBase) {
		t.Fatalf("DSE should shrink the program: base=%d opt=%d",
			StaticInsts(srcBase), StaticInsts(srcOpt))
	}
}

func TestDeadStoreEliminationUnit(t *testing.T) {
	body := []Stmt{
		{Kind: SStoreG, A: 1, G: "x"},
		{Kind: SStoreG, A: 2, G: "x"}, // kills the first
		{Kind: SLoadG, Dst: 3, G: "x"},
		{Kind: SStoreG, A: 4, G: "x"}, // live (last write)
	}
	out := deadStoreEliminate(body)
	if len(out) != 3 {
		t.Fatalf("expected 3 statements after DSE, got %d", len(out))
	}
	// a read between stores keeps the earlier store alive
	body2 := []Stmt{
		{Kind: SStoreG, A: 1, G: "y"},
		{Kind: SLoadG, Dst: 3, G: "y"},
		{Kind: SStoreG, A: 2, G: "y"},
	}
	if out2 := deadStoreEliminate(body2); len(out2) != 3 {
		t.Fatalf("store before a read must survive, got %d stmts", len(out2))
	}
}

func TestAllocatorOverflow(t *testing.T) {
	f := &Function{Name: "big", Result: 0}
	var body []Stmt
	for i := 0; i < 40; i++ {
		body = append(body, Stmt{Kind: SConst, Dst: VReg(i), Imm: int64(i)})
	}
	for i := range body {
		f.Code = append(f.Code, S(body[i]))
	}
	if _, err := (Baseline{}).Compile(f); err == nil {
		t.Fatal("expected register allocator overflow error")
	}
}

func TestStaticInstsCountsCode(t *testing.T) {
	src := `
_start:
    li a0, 1
    # comment
    add a0, a0, a0
.align 3
data: .word 5
`
	if n := StaticInsts(src); n != 2 {
		t.Fatalf("static count = %d, want 2", n)
	}
}
