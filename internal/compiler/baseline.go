package compiler

import (
	"fmt"
	"strings"
)

// Baseline is the stock-compiler backend: no induction-variable optimization,
// no anchors, no DSE, base ISA only (§IX's description of "the existing
// RISC-V compilers").
type Baseline struct{}

// Name implements Backend.
func (Baseline) Name() string { return "baseline" }

// Compile implements Backend.
func (Baseline) Compile(f *Function) (string, error) {
	var b strings.Builder
	al := newAllocator()
	emit := func(format string, args ...any) {
		fmt.Fprintf(&b, "    "+format+"\n", args...)
	}
	b.WriteString("_start:\n")
	if f.Repeat > 1 {
		emit("li   s11, %d", f.Repeat)
		b.WriteString("bench_rep:\n")
	}
	label := 0
	var genStmt func(s *Stmt) error
	genStmt = func(s *Stmt) error {
		dst, err := al.reg(s.Dst)
		if err != nil {
			return err
		}
		ra, _ := al.reg(s.A)
		rb, _ := al.reg(s.B)
		switch s.Kind {
		case SConst:
			emit("li   %s, %d", dst, s.Imm)
		case SAdd:
			emit("add  %s, %s, %s", dst, ra, rb)
		case SSub:
			emit("sub  %s, %s, %s", dst, ra, rb)
		case SMul:
			emit("mul  %s, %s, %s", dst, ra, rb)
		case SAddImm:
			emit("addiw %s, %s, %d", dst, ra, s.Imm) // 32-bit churn (§IX item 1)
		case SShl:
			emit("slli %s, %s, %d", dst, ra, s.Imm)
		case SLoadIdx:
			idx, _ := al.reg(s.Idx)
			// the stock compiler re-materializes the base and sign-extends
			// the index at every access
			emit("la   s0, %s", s.G) // re-materialized at every access
			emit("sext.w s1, %s", idx)
			emit("slli s1, s1, 2")
			emit("add  s1, s1, s0")
			emit("lw   %s, 0(s1)", dst)
		case SStoreIdx:
			idx, _ := al.reg(s.Idx)
			emit("la   s0, %s", s.G)
			emit("sext.w s1, %s", idx)
			emit("slli s1, s1, 2")
			emit("add  s1, s1, s0")
			emit("sw   %s, 0(s1)", ra)
		case SLoadG:
			emit("la   s0, %s", s.G)
			emit("lw   %s, 0(s0)", dst)
		case SStoreG:
			emit("la   s0, %s", s.G)
			emit("sw   %s, 0(s0)", ra)
		case SAccum:
			emit("mul  s1, %s, %s", ra, rb)
			emit("add  %s, %s, s1", dst, dst)
		default:
			return fmt.Errorf("compiler: unknown stmt kind %d", s.Kind)
		}
		return nil
	}
	for _, n := range f.Code {
		switch {
		case n.Stmt != nil:
			if err := genStmt(n.Stmt); err != nil {
				return "", err
			}
		case n.Loop != nil:
			// The baseline is -O2-class: array bases are hoisted out of the
			// loop. What it lacks is exactly what §IX lists — induction
			// variable optimization (each access still sign-extends the
			// 32-bit index and rebuilds the element address), the anchor
			// scheme (each global gets its own base register / reload), and
			// DSE (every store is emitted).
			lp := n.Loop
			iv, err := al.reg(lp.Induction)
			if err != nil {
				return "", err
			}
			bases := map[string]string{}
			var order []string
			baseRegs := []string{"s3", "s4", "s5", "s6", "s7"}
			for i := range lp.Body {
				s := &lp.Body[i]
				switch s.Kind {
				case SLoadIdx, SStoreIdx, SLoadG, SStoreG:
					if bases[s.G] == "" {
						if len(order) >= len(baseRegs) {
							return "", fmt.Errorf("compiler: too many arrays in loop")
						}
						bases[s.G] = baseRegs[len(order)]
						order = append(order, s.G)
					}
				}
			}
			for _, g := range order {
				emit("la   %s, %s", bases[g], g)
			}
			label++
			emit("li   %s, 0", iv)
			fmt.Fprintf(&b, "loop%d:\n", label)
			genInLoop := func(s *Stmt) error {
				base := bases[s.G]
				dst, err := al.reg(s.Dst)
				if err != nil {
					return err
				}
				ra, _ := al.reg(s.A)
				switch s.Kind {
				case SLoadIdx:
					idx, _ := al.reg(s.Idx)
					emit("sext.w s1, %s", idx) // §IX item 1 churn
					emit("slli s1, s1, 2")
					emit("add  s1, s1, %s", base)
					emit("lw   %s, 0(s1)", dst)
				case SStoreIdx:
					idx, _ := al.reg(s.Idx)
					emit("sext.w s1, %s", idx)
					emit("slli s1, s1, 2")
					emit("add  s1, s1, %s", base)
					emit("sw   %s, 0(s1)", ra)
				case SLoadG:
					emit("lw   %s, 0(%s)", dst, base)
				case SStoreG:
					emit("sw   %s, 0(%s)", ra, base)
				default:
					return genStmt(s)
				}
				return nil
			}
			for i := range lp.Body {
				if err := genInLoop(&lp.Body[i]); err != nil {
					return "", err
				}
			}
			// index auto-increment with the control code inside the loop
			emit("addiw %s, %s, 1", iv, iv)
			emit("li   s0, %d", lp.N)
			emit("blt  %s, s0, loop%d", iv, label)
		}
	}
	res, err := al.reg(f.Result)
	if err != nil {
		return "", err
	}
	if f.Repeat > 1 {
		emit("addi s11, s11, -1")
		emit("bnez s11, bench_rep")
	}
	emit("mv   a0, %s", res)
	emit("li   a7, 93")
	emit("ecall")
	emitGlobals(&b, f)
	return b.String(), nil
}

// emitGlobals lays all globals out contiguously under a single label so the
// optimized backend can anchor them; the baseline simply addresses each one
// absolutely.
func emitGlobals(b *strings.Builder, f *Function) {
	b.WriteString("\n.align 3\nglobals:\n")
	for _, g := range f.Globals {
		fmt.Fprintf(b, "%s:\n", g.Name)
		for i := 0; i < g.Words; i++ {
			v := int32(0)
			if g.Init != nil {
				v = g.Init(i)
			}
			fmt.Fprintf(b, "    .word %d\n", v)
		}
	}
}
