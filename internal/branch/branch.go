// Package branch implements the XT-910 hybrid branch prediction machinery
// (§III): the global-history direction predictor with its two-level prefetch
// buffers (BUF1/BUF2), the cascaded L0/L1 branch target buffers, the return
// address stack, the indirect-branch predictor, and the 16-entry loop buffer.
package branch

// Stats counts predictor events for the harness.
type Stats struct {
	DirLookups   uint64
	DirMispred   uint64
	L0Hits       uint64
	L1Hits       uint64
	BTBMispred   uint64
	RASPushes    uint64
	RASPops      uint64
	IndLookups   uint64
	IndMispred   uint64
	BufBypass    uint64 // back-to-back predictions served from BUF1/BUF2
	LoopBufHits  uint64
	LoopBufFills uint64
}

// DirectionPredictor is the §III-A design: prediction counters stored in
// SRAM banks whose one-cycle read latency is hidden by prefetching candidate
// counters into a two-level buffer (BUF1 for the branch in the current cycle,
// BUF2 for the branch in the next cycle). The functional content is a
// gshare-style global-history table; the buffers model the "conditional
// branch instructions at two adjacent cycles" bypass.
type DirectionPredictor struct {
	table   []uint8 // 2-bit saturating counters in the SRAM banks
	history uint64
	bits    uint

	// buf1/buf2 hold prefetched counter values; valid when the tags match.
	buf1, buf2 bufEntry

	Stats Stats
}

type bufEntry struct {
	valid bool
	index uint64
	ctr   uint8
}

// NewDirectionPredictor builds a predictor with 2^bits counters (the XT-910's
// high-density SRAM banks; the model defaults to 14 bits = 16K counters).
// Counters initialize to weakly-not-taken (1).
func NewDirectionPredictor(bits uint) *DirectionPredictor {
	p := &DirectionPredictor{table: make([]uint8, 1<<bits), bits: bits}
	for i := range p.table {
		p.table[i] = 1
	}
	return p
}

// historyBits is the effective global-history length folded into the index.
// A short history keeps loop-closing branches' warm-up fast while still
// separating correlated patterns.
const historyBits = 8

func (p *DirectionPredictor) index(pc uint64) uint64 {
	return (pc>>1 ^ (p.history&(1<<historyBits-1))<<(p.bits-historyBits)) & (1<<p.bits - 1)
}

// Predict returns the predicted direction for the branch at pc along with the
// counter index used (the core carries the index to Update so training uses
// the same history the prediction saw). The two-level buffer is consulted
// first, modelling the SRAM-latency bypass that lets two adjacent-cycle
// branches (or two branches in one 128-bit fetch line) both predict without a
// bubble (§III-A, Fig. 6).
func (p *DirectionPredictor) Predict(pc uint64) (taken bool, idx uint64) {
	p.Stats.DirLookups++
	idx = p.index(pc)
	ctr := p.table[idx]
	if p.buf1.valid && p.buf1.index == idx {
		ctr = p.buf1.ctr
		p.Stats.BufBypass++
	} else if p.buf2.valid && p.buf2.index == idx {
		ctr = p.buf2.ctr
		p.Stats.BufBypass++
		// BUF2 moves up to BUF1 for the branch in the next cycle
		p.buf1 = p.buf2
	}
	// prefetch the likely next counters into the buffers (fuzzy match: the
	// next sequential fetch line's index under the speculated history)
	p.buf2 = bufEntry{valid: true, index: p.index(pc + 16), ctr: p.table[p.index(pc+16)]}
	return ctr >= 2, idx
}

// SpeculateHistory shifts the predicted outcome into the speculative global
// history (consumed by subsequent Predict calls in the shadow of the branch).
func (p *DirectionPredictor) SpeculateHistory(taken bool) {
	p.history = p.history<<1 | b2u(taken)
}

// Update trains the counter at idx (captured by Predict) with the resolved
// outcome and records mispredictions.
func (p *DirectionPredictor) Update(idx uint64, taken, predicted bool) {
	ctr := p.table[idx]
	if taken && ctr < 3 {
		ctr++
	}
	if !taken && ctr > 0 {
		ctr--
	}
	p.table[idx] = ctr
	if taken != predicted {
		p.Stats.DirMispred++
	}
}

// RestoreHistory rewinds the speculative history after a flush; the caller
// passes the checkpointed value.
func (p *DirectionPredictor) RestoreHistory(h uint64) { p.history = h }

// History exposes the current speculative history for checkpointing.
func (p *DirectionPredictor) History() uint64 { return p.history }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTBEntry is one target-buffer entry.
type BTBEntry struct {
	valid  bool
	tag    uint64
	target uint64
	isRet  bool
	isCall bool
	isInd  bool
	lru    uint64
}

// BTB is a set-associative branch target buffer. The L0 BTB (16-entry fully
// associative) redirects at IF with zero bubbles; the L1 BTB (>1K entries,
// set-associative) redirects at IP and is verified at IB (§III-B).
type BTB struct {
	entries []BTBEntry
	sets    int
	ways    int
	tick    uint64
}

// NewBTB builds a BTB. sets=1 yields a fully-associative buffer (the L0).
func NewBTB(entries, ways int) *BTB {
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	return &BTB{entries: make([]BTBEntry, sets*ways), sets: sets, ways: ways}
}

func (b *BTB) set(pc uint64) []BTBEntry {
	idx := (pc >> 1) % uint64(b.sets)
	return b.entries[idx*uint64(b.ways) : (idx+1)*uint64(b.ways)]
}

// Lookup returns the predicted target for the control-flow instruction at pc.
func (b *BTB) Lookup(pc uint64) (*BTBEntry, bool) {
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			b.tick++
			set[i].lru = b.tick
			return &set[i], true
		}
	}
	return nil, false
}

// Insert installs or updates the target for pc.
func (b *BTB) Insert(pc, target uint64, isCall, isRet, isInd bool) {
	set := b.set(pc)
	victim := &set[0]
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			victim = &set[i]
			break
		}
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	b.tick++
	*victim = BTBEntry{valid: true, tag: pc, target: target,
		isCall: isCall, isRet: isRet, isInd: isInd, lru: b.tick}
}

// Target returns the stored target.
func (e *BTBEntry) Target() uint64 { return e.target }

// IsReturn reports whether the entry was trained as a function return.
func (e *BTBEntry) IsReturn() bool { return e.isRet }

// IsCall reports whether the entry was trained as a call.
func (e *BTBEntry) IsCall() bool { return e.isCall }

// IsIndirect reports whether the entry was trained as an indirect jump.
func (e *BTBEntry) IsIndirect() bool { return e.isInd }

// RAS is the return-address stack used for subroutine return prediction.
type RAS struct {
	stack []uint64
	max   int
}

// NewRAS builds a stack with the given depth (XT-910 model default: 16).
func NewRAS(depth int) *RAS { return &RAS{max: depth} }

// Push records a call's return address.
func (r *RAS) Push(addr uint64) {
	if len(r.stack) == r.max {
		copy(r.stack, r.stack[1:])
		r.stack = r.stack[:r.max-1]
	}
	r.stack = append(r.stack, addr)
}

// Pop predicts a return target (0 when empty).
func (r *RAS) Pop() uint64 {
	if len(r.stack) == 0 {
		return 0
	}
	v := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return v
}

// Depth reports the current stack depth.
func (r *RAS) Depth() int { return len(r.stack) }

// Snapshot/Restore support checkpoint recovery after flushes.
func (r *RAS) Snapshot() []uint64 { return append([]uint64(nil), r.stack...) }

// Restore rewinds to a snapshot.
func (r *RAS) Restore(s []uint64) { r.stack = append(r.stack[:0], s...) }

// IndirectPredictor predicts indirect-jump targets with a small
// history-hashed target cache (§III-B: "the IFU also has an indirect branch
// predictor for indirect branch instructions").
type IndirectPredictor struct {
	targets map[uint64]uint64
	bits    uint
}

// NewIndirectPredictor builds a predictor with 2^bits entries.
func NewIndirectPredictor(bits uint) *IndirectPredictor {
	return &IndirectPredictor{targets: make(map[uint64]uint64), bits: bits}
}

func (p *IndirectPredictor) key(pc, hist uint64) uint64 {
	return (pc ^ hist<<3) & (1<<p.bits - 1)
}

// Predict returns the predicted target (ok=false when untrained).
func (p *IndirectPredictor) Predict(pc, hist uint64) (uint64, bool) {
	t, ok := p.targets[p.key(pc, hist)]
	return t, ok
}

// Update trains the predictor with the resolved target.
func (p *IndirectPredictor) Update(pc, hist, target uint64) {
	p.targets[p.key(pc, hist)] = target
}
