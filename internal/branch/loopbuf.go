package branch

// LoopBuffer is the XT-910 LBUF (§III-C): a 16-entry buffer that captures
// small loop bodies so that instruction fetch bypasses the L1 I-cache
// entirely, the backward jump costs no bubble, and the last instruction of
// one iteration issues together with the first instruction of the next.
// Forward branches inside the body (if-else) are allowed. The buffer is
// flushed on context switches.
type LoopBuffer struct {
	// entries are the PCs of the captured loop body, in order.
	entries  []uint64
	capacity int

	// detection state: candidate backward branch and hit counting
	candBranch uint64 // PC of the backward branch closing the loop
	candTarget uint64 // loop head
	candCount  int    // consecutive taken sightings

	active bool
	head   uint64 // loop start PC
	end    uint64 // the backward branch PC

	Stats Stats
}

// NewLoopBuffer returns the 16-entry LBUF.
func NewLoopBuffer() *LoopBuffer { return &LoopBuffer{capacity: 16} }

// trainThreshold is how many consecutive taken sightings of the same
// backward branch arm capture.
const trainThreshold = 3

// Observe trains the LBUF with a resolved taken backward branch.
// bodyPCs lists the instruction PCs from target..branch when the body is
// small enough to capture (the fetch unit supplies them).
func (l *LoopBuffer) Observe(branchPC, targetPC uint64, bodyLen int) {
	if l.active || targetPC >= branchPC {
		return
	}
	if bodyLen > l.capacity {
		return
	}
	if l.candBranch == branchPC && l.candTarget == targetPC {
		l.candCount++
		if l.candCount >= trainThreshold {
			l.active = true
			l.head = targetPC
			l.end = branchPC
			l.Stats.LoopBufFills++
		}
		return
	}
	l.candBranch, l.candTarget, l.candCount = branchPC, targetPC, 1
}

// Covers reports whether fetch at pc can be served from the LBUF (no I-cache
// access, zero-bubble back edge).
func (l *LoopBuffer) Covers(pc uint64) bool {
	if !l.active {
		return false
	}
	if pc >= l.head && pc <= l.end {
		l.Stats.LoopBufHits++
		return true
	}
	return false
}

// Active reports whether a loop is currently captured.
func (l *LoopBuffer) Active() bool { return l.active }

// Head and End expose the captured range.
func (l *LoopBuffer) Head() uint64 { return l.head }

// End returns the loop-closing branch PC.
func (l *LoopBuffer) End() uint64 { return l.end }

// Exit deactivates the captured loop (the backward branch fell through).
func (l *LoopBuffer) Exit() {
	l.active = false
	l.candCount = 0
}

// Flush clears everything (context switch, §III-C).
func (l *LoopBuffer) Flush() {
	l.active = false
	l.candBranch, l.candTarget, l.candCount = 0, 0, 0
	l.entries = l.entries[:0]
}
