package branch

import (
	"math/rand"
	"testing"
)

func TestDirectionLearnsBias(t *testing.T) {
	p := NewDirectionPredictor(12)
	pc := uint64(0x1000)
	for i := 0; i < 100; i++ {
		pred, idx := p.Predict(pc)
		p.Update(idx, true, pred)
		p.SpeculateHistory(true)
	}
	if taken, _ := p.Predict(pc); !taken {
		t.Fatal("always-taken branch must predict taken after training")
	}
}

func TestDirectionLearnsAlternating(t *testing.T) {
	// gshare uses global history, so a strict alternating pattern becomes
	// predictable once history differentiates the two cases.
	p := NewDirectionPredictor(12)
	pc := uint64(0x2000)
	correct := 0
	taken := false
	for i := 0; i < 400; i++ {
		taken = !taken
		pred, idx := p.Predict(pc)
		if pred == taken {
			correct++
		}
		p.Update(idx, taken, pred)
		p.SpeculateHistory(taken)
	}
	if correct < 300 {
		t.Fatalf("alternating pattern should be learned via history: %d/400", correct)
	}
}

func TestTwoLevelBufferBypass(t *testing.T) {
	p := NewDirectionPredictor(12)
	// consecutive predictions in adjacent "cycles" exercise BUF1/BUF2
	for i := 0; i < 50; i++ {
		pred, _ := p.Predict(0x4000)
		p.SpeculateHistory(pred)
		pred2, _ := p.Predict(0x4010) // the prefetched next line
		p.SpeculateHistory(pred2)
	}
	if p.Stats.BufBypass == 0 {
		t.Fatal("adjacent-line predictions should hit the prefetch buffers")
	}
}

func TestBTBInsertLookupLRU(t *testing.T) {
	l0 := NewBTB(16, 16) // fully associative
	for i := 0; i < 16; i++ {
		l0.Insert(uint64(0x1000+i*4), uint64(0x2000+i*4), false, false, false)
	}
	if _, ok := l0.Lookup(0x1000); !ok {
		t.Fatal("entry should be present")
	}
	// touch all but 0x1004, then insert a 17th: 0x1004 must be evicted
	for i := 0; i < 16; i++ {
		if i != 1 {
			l0.Lookup(uint64(0x1000 + i*4))
		}
	}
	l0.Insert(0x9000, 0xA000, false, false, false)
	if _, ok := l0.Lookup(0x1004); ok {
		t.Fatal("LRU entry should have been evicted")
	}
	if e, ok := l0.Lookup(0x9000); !ok || e.Target() != 0xA000 {
		t.Fatal("new entry missing")
	}
}

func TestBTBUpdateExisting(t *testing.T) {
	b := NewBTB(1024, 4)
	b.Insert(0x5000, 0x6000, false, false, false)
	b.Insert(0x5000, 0x7000, false, false, true)
	e, ok := b.Lookup(0x5000)
	if !ok || e.Target() != 0x7000 || !e.IsIndirect() {
		t.Fatal("insert must update in place")
	}
}

func TestRASMatchesCallStack(t *testing.T) {
	r := NewRAS(16)
	var model []uint64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if rng.Intn(2) == 0 || len(model) == 0 {
			addr := uint64(rng.Intn(1 << 20))
			r.Push(addr)
			model = append(model, addr)
			if len(model) > 16 {
				model = model[1:]
			}
		} else {
			want := model[len(model)-1]
			model = model[:len(model)-1]
			if got := r.Pop(); got != want {
				t.Fatalf("step %d: pop %#x, want %#x", i, got, want)
			}
		}
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	r.Push(2)
	snap := r.Snapshot()
	r.Push(3)
	r.Pop()
	r.Pop()
	r.Restore(snap)
	if r.Depth() != 2 || r.Pop() != 2 || r.Pop() != 1 {
		t.Fatal("restore must rewind the stack")
	}
}

func TestIndirectPredictor(t *testing.T) {
	p := NewIndirectPredictor(10)
	if _, ok := p.Predict(0x1000, 0); ok {
		t.Fatal("untrained must miss")
	}
	p.Update(0x1000, 0, 0x4000)
	p.Update(0x1000, 5, 0x5000)
	if tgt, ok := p.Predict(0x1000, 0); !ok || tgt != 0x4000 {
		t.Fatal("history 0 target")
	}
	if tgt, ok := p.Predict(0x1000, 5); !ok || tgt != 0x5000 {
		t.Fatal("history-differentiated target")
	}
}

func TestLoopBufferCapture(t *testing.T) {
	l := NewLoopBuffer()
	branch, head := uint64(0x1020), uint64(0x1000)
	for i := 0; i < trainThreshold; i++ {
		l.Observe(branch, head, 8)
	}
	if !l.Active() {
		t.Fatal("loop should be captured after repeated taken backward branch")
	}
	if !l.Covers(0x1008) || !l.Covers(head) || !l.Covers(branch) {
		t.Fatal("body PCs must be covered")
	}
	if l.Covers(0x1024) {
		t.Fatal("PC past the loop must not be covered")
	}
	l.Exit()
	if l.Active() {
		t.Fatal("exit must deactivate")
	}
}

func TestLoopBufferRejectsBigBodies(t *testing.T) {
	l := NewLoopBuffer()
	for i := 0; i < 10; i++ {
		l.Observe(0x2000, 0x1000, 100) // body of 100 > 16 entries
	}
	if l.Active() {
		t.Fatal("oversized loop must not be captured")
	}
}

func TestLoopBufferFlushOnContextSwitch(t *testing.T) {
	l := NewLoopBuffer()
	for i := 0; i < trainThreshold; i++ {
		l.Observe(0x1020, 0x1000, 8)
	}
	l.Flush()
	if l.Active() || l.Covers(0x1008) {
		t.Fatal("flush must clear the captured loop (§III-C)")
	}
}
