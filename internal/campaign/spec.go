// Package campaign is the sharded, resumable campaign service behind
// cmd/xtcampd: it schedules fuzz (xtfuzz), fault-injection (xtinject) and
// benchmark (xtbench) campaigns as manifests of independent work items,
// journals every finished item to a state directory, and merges shard
// reports deterministically — the merged report of an interrupted-and-
// resumed campaign is byte-identical to an uninterrupted run at any shard
// count and any worker width, because items are keyed by their position in
// the manifest and each item's record depends only on its own inputs (the
// determinism-at-any-width contract of internal/sched, lifted to a service
// that can be killed and restarted).
//
// See DESIGN.md "Campaign service" for the manifest format, the checkpoint
// soundness argument and the divergence-signature scheme.
package campaign

import (
	"fmt"
	"time"

	"xt910/internal/bench"
	"xt910/internal/cliflags"
)

// Spec is a campaign manifest: which tool to run, the uniform campaign knobs
// (the same -n/-seed/-jobs/-timeout/-modes surface the CLIs expose, via
// cliflags.Knobs) and the tool-specific extras. A Spec plus the repo version
// fully determines the merged report.
type Spec struct {
	// Tool selects the campaign kind: "fuzz", "inject" or "bench".
	Tool string `json:"tool"`

	// Knobs is the uniform knob set. N/Seed span the seed range (fuzz and
	// inject), Jobs is the per-shard worker width (0: server default; the
	// report is identical at any width), Timeout is the per-seed watchdog,
	// Modes the fuzz mode spec.
	cliflags.Knobs

	// Shards splits the manifest into this many contiguous work ranges
	// (0 or 1: a single shard). Shard reports merge byte-identically, so
	// sharding changes scheduling granularity, never results.
	Shards int `json:"shards,omitempty"`

	// Fuzz extras (the xtfuzz flags of the same names).
	Segs   int    `json:"segs,omitempty"`
	Cycles uint64 `json:"cycles,omitempty"`
	Harts  int    `json:"harts,omitempty"`

	// Inject extras.
	FaultsPerSeed int `json:"faults_per_seed,omitempty"`

	// Bench extras: the experiment IDs to run (empty: every registered
	// experiment, in paper order) and the -quick profile.
	Experiments []string `json:"experiments,omitempty"`
	Quick       bool     `json:"quick,omitempty"`
}

// Item is one unit of campaign work: a seed (fuzz, inject) or an experiment
// (bench). Index is the item's position in the whole-campaign manifest — the
// key its report line merges under.
type Item struct {
	Index int    `json:"index"`
	Seed  int64  `json:"seed,omitempty"`
	Exp   string `json:"exp,omitempty"`
}

// Key names the item in logs and job IDs.
func (it Item) Key() string {
	if it.Exp != "" {
		return "exp:" + it.Exp
	}
	return fmt.Sprintf("seed:%d", it.Seed)
}

// Validate checks the manifest before admission.
func (s *Spec) Validate() error {
	switch s.Tool {
	case "fuzz", "inject":
		if s.N <= 0 {
			return fmt.Errorf("campaign: tool %q needs n > 0 seeds", s.Tool)
		}
		if _, err := s.CosimModes(); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	case "bench":
		for _, id := range s.Experiments {
			if _, ok := bench.Find(id); !ok {
				return fmt.Errorf("campaign: unknown experiment %q", id)
			}
		}
	default:
		return fmt.Errorf("campaign: unknown tool %q (want fuzz, inject or bench)", s.Tool)
	}
	if s.Shards < 0 {
		return fmt.Errorf("campaign: negative shard count")
	}
	if s.Timeout < 0 {
		return fmt.Errorf("campaign: negative timeout")
	}
	return nil
}

// Items expands the manifest into its full work list, in report order.
func (s *Spec) Items() []Item {
	var out []Item
	switch s.Tool {
	case "fuzz", "inject":
		for i, seed := range s.Seeds() {
			out = append(out, Item{Index: i, Seed: seed})
		}
	case "bench":
		ids := s.Experiments
		if len(ids) == 0 {
			for _, e := range bench.Experiments() {
				ids = append(ids, e.ID)
			}
		}
		for i, id := range ids {
			out = append(out, Item{Index: i, Exp: id})
		}
	}
	return out
}

// ShardItems splits the work list into the manifest's shard descriptors:
// contiguous near-equal ranges, earlier shards taking the remainder. The
// concatenation of the shards in order is exactly Items(), which is what
// makes the shard-report merge trivially byte-identical to an unsharded run.
func (s *Spec) ShardItems() [][]Item {
	items := s.Items()
	n := s.Shards
	if n <= 1 {
		return [][]Item{items}
	}
	if n > len(items) {
		n = len(items)
	}
	if n == 0 {
		return [][]Item{items}
	}
	out := make([][]Item, 0, n)
	base, rem := len(items)/n, len(items)%n
	start := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, items[start:start+size])
		start += size
	}
	return out
}

// SeedTimeout is the per-seed watchdog as a duration (Knobs serializes it in
// nanoseconds, like time.Duration JSON defaults).
func (s *Spec) SeedTimeout() time.Duration { return s.Timeout }
