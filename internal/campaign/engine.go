package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xt910/internal/sched"
)

// Campaign statuses.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Options configures an Engine.
type Options struct {
	// StateDir holds every campaign's manifest, journals and report plus the
	// divergence corpus. Required.
	StateDir string
	// Jobs is the per-shard worker width for specs that leave Jobs at 0
	// (<= 0: GOMAXPROCS). Any width produces the identical merged report.
	Jobs int
	// Runner substitutes the item executor (tests); nil selects the real
	// tool runner.
	Runner Runner
}

// Engine owns the campaign store and the single worker loop that executes
// campaigns FIFO, one at a time, each shard in order, items on a sched pool.
// Open resumes every unfinished campaign found in the state directory before
// accepting new work.
type Engine struct {
	opts   Options
	corpus *Corpus

	mu        sync.Mutex
	campaigns map[string]*state
	order     []string // submission order (IDs are sequential, but keep it explicit)
	nextID    int
	draining  bool

	queue  chan *state
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// state is one campaign's in-memory state, rebuilt from the journals on
// resume.
type state struct {
	id   string
	dir  string
	spec *Spec

	mu      sync.Mutex
	status  string
	errMsg  string
	shards  [][]Item
	done    []map[int]json.RawMessage // per shard: item index -> report line
	divs    map[int]*Divergence       // item index -> divergence
	started time.Time
	instrs  uint64 // retired instructions executed so far (host-MIPS numerator)
	wall    time.Duration
}

// Open loads the state directory, resumes unfinished campaigns and starts
// the worker loop.
func Open(opts Options) (*Engine, error) {
	if opts.StateDir == "" {
		return nil, fmt.Errorf("campaign: Options.StateDir is required")
	}
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	if opts.Runner == nil {
		opts.Runner = toolRunner{}
	}
	if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
		return nil, err
	}
	corpus, err := OpenCorpus(filepath.Join(opts.StateDir, "corpus"))
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		opts:      opts,
		corpus:    corpus,
		campaigns: make(map[string]*state),
		nextID:    1,
		queue:     make(chan *state, 1024),
		ctx:       ctx,
		cancel:    cancel,
	}
	if err := e.loadAll(); err != nil {
		cancel()
		return nil, err
	}
	e.wg.Add(1)
	go e.worker()
	return e, nil
}

// loadAll rebuilds every campaign from disk and queues the unfinished ones
// in ID order.
func (e *Engine) loadAll() error {
	ents, err := os.ReadDir(e.opts.StateDir)
	if err != nil {
		return err
	}
	var ids []string
	for _, ent := range ents {
		if ent.IsDir() && strings.HasPrefix(ent.Name(), "c") {
			if n, err := strconv.Atoi(ent.Name()[1:]); err == nil {
				ids = append(ids, ent.Name())
				if n >= e.nextID {
					e.nextID = n + 1
				}
			}
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		st, err := e.load(id)
		if err != nil {
			return err
		}
		e.campaigns[id] = st
		e.order = append(e.order, id)
		if st.status == StatusQueued {
			e.queue <- st
		}
	}
	return nil
}

// load rebuilds one campaign: manifest, then each shard journal (compacted,
// so the append file is well-formed again after a torn tail).
func (e *Engine) load(id string) (*state, error) {
	dir := filepath.Join(e.opts.StateDir, id)
	spec, err := loadSpec(dir)
	if err != nil {
		return nil, err
	}
	st := &state{id: id, dir: dir, spec: spec, status: StatusQueued,
		shards: spec.ShardItems(), divs: make(map[int]*Divergence)}
	st.done = make([]map[int]json.RawMessage, len(st.shards))
	complete := true
	for si := range st.shards {
		st.done[si] = make(map[int]json.RawMessage)
		path := shardJournalPath(dir, si)
		entries, err := readJournal(path)
		if err != nil {
			return nil, err
		}
		if err := compactJournal(path, entries); err != nil {
			return nil, err
		}
		valid := make(map[int]bool, len(st.shards[si]))
		for _, it := range st.shards[si] {
			valid[it.Index] = true
		}
		for _, en := range entries {
			if !valid[en.Index] {
				continue // stale entry from an edited manifest; ignore
			}
			st.done[si][en.Index] = en.Line
			if en.Div != nil {
				st.divs[en.Index] = en.Div
			}
		}
		if len(st.done[si]) < len(st.shards[si]) {
			complete = false
		}
	}
	if complete {
		// Everything ran; the report may still be missing if the daemon died
		// between the last journal append and the report rename.
		if err := st.writeReport(); err != nil {
			return nil, err
		}
		st.status = StatusDone
	}
	return st, nil
}

// Submit validates and admits a campaign, returning its ID. The manifest is
// durable before Submit returns.
func (e *Engine) Submit(spec *Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return "", fmt.Errorf("campaign: engine is draining")
	}
	id := fmt.Sprintf("c%04d", e.nextID)
	e.nextID++
	e.mu.Unlock()

	dir := filepath.Join(e.opts.StateDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	if err := saveSpec(dir, spec); err != nil {
		return "", err
	}
	st := &state{id: id, dir: dir, spec: spec, status: StatusQueued,
		shards: spec.ShardItems(), divs: make(map[int]*Divergence)}
	st.done = make([]map[int]json.RawMessage, len(st.shards))
	for si := range st.shards {
		st.done[si] = make(map[int]json.RawMessage)
	}
	e.mu.Lock()
	e.campaigns[id] = st
	e.order = append(e.order, id)
	e.mu.Unlock()
	e.queue <- st
	return id, nil
}

// worker drains the campaign queue FIFO until Close.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.ctx.Done():
			return
		case st := <-e.queue:
			e.run(st)
		}
	}
}

// run executes one campaign: every shard in order, each shard's pending
// items on a worker pool, every finished item journaled from OnResult (which
// sched serializes). Cancellation mid-shard leaves the journals as the
// resume point; the campaign stays queued on disk and re-runs only the
// missing items after restart.
func (e *Engine) run(st *state) {
	st.mu.Lock()
	st.status = StatusRunning
	st.started = time.Now()
	st.mu.Unlock()

	width := st.spec.Jobs
	if width <= 0 {
		width = e.opts.Jobs
	}
	for si, items := range st.shards {
		var pending []Item
		st.mu.Lock()
		for _, it := range items {
			if _, ok := st.done[si][it.Index]; !ok {
				pending = append(pending, it)
			}
		}
		st.mu.Unlock()
		if len(pending) == 0 {
			continue
		}
		jw, err := openJournal(shardJournalPath(st.dir, si))
		if err != nil {
			e.fail(st, err)
			return
		}
		jobs := make([]sched.Job, len(pending))
		for j, it := range pending {
			it := it
			jobs[j] = sched.Job{
				ID: fmt.Sprintf("%s/shard%d/%s", st.id, si, it.Key()),
				Run: func(ctx context.Context) (any, error) {
					res, err := e.opts.Runner.Run(ctx, st.spec, it)
					return res, err
				},
			}
		}
		var itemErr error
		rs := sched.Run(e.ctx, jobs, sched.Options{
			Workers: width,
			OnResult: func(j int, r sched.Result) {
				if r.Err != nil {
					return // cancellation or item failure: nothing durable to record
				}
				res := r.Value.(ItemResult)
				en := journalEntry{Index: pending[j].Index, Line: res.Line, Div: res.Div}
				if err := jw.append(en); err != nil && itemErr == nil {
					itemErr = err
				}
				st.mu.Lock()
				st.done[si][pending[j].Index] = res.Line
				if res.Div != nil {
					st.divs[pending[j].Index] = res.Div
				}
				st.instrs += r.Instrs
				st.mu.Unlock()
				if res.Div != nil {
					if _, err := e.corpus.Add(st.id, res.Div); err != nil && itemErr == nil {
						itemErr = err
					}
				}
			},
		})
		jw.Close()
		if e.ctx.Err() != nil {
			st.mu.Lock()
			st.status = StatusQueued // resumes from the journals on restart
			st.wall += time.Since(st.started)
			st.mu.Unlock()
			return
		}
		if itemErr == nil {
			itemErr = sched.FirstError(rs)
		}
		if itemErr != nil {
			e.fail(st, itemErr)
			return
		}
	}
	st.mu.Lock()
	st.wall += time.Since(st.started)
	err := st.writeReport()
	if err != nil {
		st.status = StatusFailed
		st.errMsg = err.Error()
	} else {
		st.status = StatusDone
	}
	st.mu.Unlock()
}

func (e *Engine) fail(st *state, err error) {
	st.mu.Lock()
	st.status = StatusFailed
	st.errMsg = err.Error()
	st.wall += time.Since(st.started)
	st.mu.Unlock()
}

// writeReport merges the shard journals into report.jsonl: every item's line
// in manifest order, concatenation over shards in shard order. Atomic, so
// the report's existence is the done marker. Callers hold st.mu or have
// exclusive access.
func (st *state) writeReport() error {
	var buf bytes.Buffer
	for si, items := range st.shards {
		for _, it := range items {
			line, ok := st.done[si][it.Index]
			if !ok {
				return fmt.Errorf("campaign: %s: item %d missing at merge", st.id, it.Index)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
	}
	return writeAtomic(reportPath(st.dir), buf.Bytes())
}

// Close drains the engine: new submissions are rejected, the in-flight
// campaign is cancelled at the next item boundary (its finished items are
// already journaled), and the worker exits. Safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
}

// Draining reports whether Close has begun.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// ShardStatus is one shard's live progress.
type ShardStatus struct {
	Shard     int `json:"shard"`
	ItemsDone int `json:"items_done"`
	Items     int `json:"items"`
}

// Status is a campaign's live progress snapshot, the /campaigns/{id} API
// document.
type Status struct {
	ID          string        `json:"id"`
	Tool        string        `json:"tool"`
	Status      string        `json:"status"`
	Error       string        `json:"error,omitempty"`
	Shards      []ShardStatus `json:"shards"`
	ItemsDone   int           `json:"items_done"`
	Items       int           `json:"items"`
	Divergences int           `json:"divergences"`
	// HostMIPS is the retired-instruction throughput of the campaign so far
	// (millions of simulated instructions per host second, summed over
	// workers). Zero for tools that do not report instruction counts.
	HostMIPS float64 `json:"host_mips,omitempty"`
}

func (st *state) snapshot() Status {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Status{ID: st.id, Tool: st.spec.Tool, Status: st.status, Error: st.errMsg,
		Divergences: len(st.divs)}
	for si, items := range st.shards {
		s.Shards = append(s.Shards, ShardStatus{Shard: si, ItemsDone: len(st.done[si]), Items: len(items)})
		s.ItemsDone += len(st.done[si])
		s.Items += len(items)
	}
	wall := st.wall
	if st.status == StatusRunning {
		wall += time.Since(st.started)
	}
	if secs := wall.Seconds(); secs > 0 {
		s.HostMIPS = float64(st.instrs) / secs / 1e6
	}
	return s
}

// Get returns one campaign's status.
func (e *Engine) Get(id string) (Status, bool) {
	e.mu.Lock()
	st, ok := e.campaigns[id]
	e.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return st.snapshot(), true
}

// List returns every campaign's status in submission order.
func (e *Engine) List() []Status {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	e.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if s, ok := e.Get(id); ok {
			out = append(out, s)
		}
	}
	return out
}

// Report returns the merged report of a finished campaign.
func (e *Engine) Report(id string) ([]byte, error) {
	e.mu.Lock()
	st, ok := e.campaigns[id]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("campaign: unknown campaign %q", id)
	}
	st.mu.Lock()
	status := st.status
	st.mu.Unlock()
	if status != StatusDone {
		return nil, fmt.Errorf("campaign: %s is %s, report not ready", id, status)
	}
	return os.ReadFile(reportPath(st.dir))
}

// Divergences returns a campaign's divergences in manifest order.
func (e *Engine) Divergences(id string) ([]*Divergence, error) {
	e.mu.Lock()
	st, ok := e.campaigns[id]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("campaign: unknown campaign %q", id)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	idx := make([]int, 0, len(st.divs))
	for i := range st.divs {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]*Divergence, 0, len(idx))
	for _, i := range idx {
		d := *st.divs[i]
		out = append(out, &d)
	}
	return out, nil
}

// Repro returns the shrunken reproducer a campaign found for a seed.
func (e *Engine) Repro(id string, seed int64) (string, error) {
	divs, err := e.Divergences(id)
	if err != nil {
		return "", err
	}
	for _, d := range divs {
		if d.Seed == seed {
			if d.Shrunk == "" {
				return "", fmt.Errorf("campaign: seed %d diverged but has no shrunken repro", seed)
			}
			return d.Shrunk, nil
		}
	}
	return "", fmt.Errorf("campaign: no divergence for seed %d in %s", seed, id)
}

// Corpus exposes the engine's divergence corpus.
func (e *Engine) Corpus() *Corpus { return e.corpus }
