package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xt910/internal/sched"
)

// Campaign statuses.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// localWorkerID names the coordinator's in-process fallback executor in the
// lease registry and the /progress view.
const localWorkerID = "local"

// Options configures an Engine.
type Options struct {
	// StateDir holds every campaign's manifest, journals and report plus the
	// divergence corpus and the fencing-token counter. Required.
	StateDir string
	// Jobs is the per-shard worker width for specs that leave Jobs at 0
	// (<= 0: GOMAXPROCS). Any width produces the identical merged report.
	Jobs int
	// Runner substitutes the item executor (tests); nil selects the real
	// tool runner.
	Runner Runner
	// LeaseTTL bounds every shard lease: a worker that misses heartbeats
	// for this long loses the shard back to the pending queue. <= 0 picks
	// the 10s default.
	LeaseTTL time.Duration
	// DisableLocal turns off the in-process fallback executor, making the
	// engine a pure dispatcher: shards only run on remote workers.
	DisableLocal bool
	// LocalGrace is how long the local fallback defers to an absent fleet:
	// the coordinator runs a pending shard itself only once this much time
	// has passed since the later of engine start and the last remote-worker
	// contact, and no remote worker is currently live. 0 (default): the
	// coordinator picks up work the moment no live worker exists — PR 8's
	// single-process behavior when no worker ever connects.
	LocalGrace time.Duration
	// Logf receives operational log lines (lease expiries, worker churn);
	// nil discards them.
	Logf func(format string, args ...any)

	// clock substitutes the registry/liveness clock (tests).
	clock func() time.Time
}

// Engine is the campaign coordinator: it owns the campaign store, the lease
// registry that dispatches shards to workers (remote via the HTTP API, plus
// an in-process fallback executor), and the merge that turns journals into
// reports. Open resumes every unfinished campaign found in the state
// directory before accepting new work.
type Engine struct {
	opts   Options
	corpus *Corpus
	leases *leaseRegistry
	now    func() time.Time

	mu        sync.Mutex
	campaigns map[string]*state
	order     []string // submission order (IDs are sequential, but keep it explicit)
	nextID    int
	draining  bool

	workersMu   sync.Mutex
	workers     map[string]time.Time // remote worker ID -> last contact
	lastRemote  time.Time            // last contact from any remote worker
	bootTime    time.Time
	ctx         context.Context
	cancel      context.CancelFunc
	wg          sync.WaitGroup
	dispatchNow chan struct{} // kick the dispatcher (submit, expiry interest)
}

// state is one campaign's in-memory state, rebuilt from the journals on
// resume.
type state struct {
	id   string
	dir  string
	spec *Spec

	mu      sync.Mutex
	status  string
	errMsg  string
	shards  [][]Item
	done    []map[int]json.RawMessage // per shard: item index -> report line
	divs    map[int]*Divergence       // item index -> divergence
	started time.Time
	instrs  uint64 // retired instructions executed so far (host-MIPS numerator)
	wall    time.Duration
}

// Open loads the state directory, resumes unfinished campaigns and starts
// the dispatcher loop.
func Open(opts Options) (*Engine, error) {
	if opts.StateDir == "" {
		return nil, fmt.Errorf("campaign: Options.StateDir is required")
	}
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	if opts.Runner == nil {
		opts.Runner = toolRunner{}
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.clock == nil {
		opts.clock = time.Now
	}
	if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
		return nil, err
	}
	corpus, err := OpenCorpus(filepath.Join(opts.StateDir, "corpus"))
	if err != nil {
		return nil, err
	}
	fence, err := openFence(filepath.Join(opts.StateDir, "fence"))
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		opts:        opts,
		corpus:      corpus,
		leases:      newLeaseRegistry(opts.LeaseTTL, opts.clock, fence),
		now:         opts.clock,
		campaigns:   make(map[string]*state),
		nextID:      1,
		workers:     make(map[string]time.Time),
		bootTime:    opts.clock(),
		ctx:         ctx,
		cancel:      cancel,
		dispatchNow: make(chan struct{}, 1),
	}
	if err := e.loadAll(); err != nil {
		cancel()
		return nil, err
	}
	e.wg.Add(1)
	go e.dispatcher()
	return e, nil
}

// loadAll rebuilds every campaign from disk and registers the unfinished
// shards for dispatch in ID order.
func (e *Engine) loadAll() error {
	ents, err := os.ReadDir(e.opts.StateDir)
	if err != nil {
		return err
	}
	var ids []string
	for _, ent := range ents {
		if ent.IsDir() && strings.HasPrefix(ent.Name(), "c") {
			if n, err := strconv.Atoi(ent.Name()[1:]); err == nil {
				ids = append(ids, ent.Name())
				if n >= e.nextID {
					e.nextID = n + 1
				}
			}
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		st, err := e.load(id)
		if err != nil {
			return err
		}
		e.campaigns[id] = st
		e.order = append(e.order, id)
		if st.status == StatusQueued {
			e.registerShards(st)
		}
	}
	return nil
}

// load rebuilds one campaign: manifest, then each shard journal (compacted,
// so the append file is well-formed again after a torn tail).
func (e *Engine) load(id string) (*state, error) {
	dir := filepath.Join(e.opts.StateDir, id)
	spec, err := loadSpec(dir)
	if err != nil {
		return nil, err
	}
	st := &state{id: id, dir: dir, spec: spec, status: StatusQueued,
		shards: spec.ShardItems(), divs: make(map[int]*Divergence)}
	st.done = make([]map[int]json.RawMessage, len(st.shards))
	complete := true
	for si := range st.shards {
		st.done[si] = make(map[int]json.RawMessage)
		path := shardJournalPath(dir, si)
		entries, err := readJournal(path)
		if err != nil {
			return nil, err
		}
		if err := compactJournal(path, entries); err != nil {
			return nil, err
		}
		valid := make(map[int]bool, len(st.shards[si]))
		for _, it := range st.shards[si] {
			valid[it.Index] = true
		}
		for _, en := range entries {
			if !valid[en.Index] {
				continue // stale entry from an edited manifest; ignore
			}
			st.done[si][en.Index] = en.Line
			st.instrs += en.Instrs
			if en.Div != nil {
				st.divs[en.Index] = en.Div
			}
		}
		if len(st.done[si]) < len(st.shards[si]) {
			complete = false
		}
	}
	if complete {
		// Everything ran; the report may still be missing if the daemon died
		// between the last journal append and the report rename.
		if err := st.writeReport(); err != nil {
			return nil, err
		}
		st.status = StatusDone
	}
	return st, nil
}

// registerShards queues every not-yet-complete shard of a campaign for
// dispatch.
func (e *Engine) registerShards(st *state) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for si := range st.shards {
		if len(st.done[si]) < len(st.shards[si]) {
			e.leases.Enqueue(shardRef{Campaign: st.id, Shard: si})
		}
	}
	e.kick()
}

// kick nudges the dispatcher without blocking.
func (e *Engine) kick() {
	select {
	case e.dispatchNow <- struct{}{}:
	default:
	}
}

// Submit validates and admits a campaign, returning its ID. The manifest is
// durable before Submit returns.
func (e *Engine) Submit(spec *Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return "", fmt.Errorf("campaign: engine is draining")
	}
	id := fmt.Sprintf("c%04d", e.nextID)
	e.nextID++
	e.mu.Unlock()

	dir := filepath.Join(e.opts.StateDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	if err := saveSpec(dir, spec); err != nil {
		return "", err
	}
	st := &state{id: id, dir: dir, spec: spec, status: StatusQueued,
		shards: spec.ShardItems(), divs: make(map[int]*Divergence)}
	st.done = make([]map[int]json.RawMessage, len(st.shards))
	for si := range st.shards {
		st.done[si] = make(map[int]json.RawMessage)
	}
	e.mu.Lock()
	e.campaigns[id] = st
	e.order = append(e.order, id)
	e.mu.Unlock()
	e.registerShards(st)
	return id, nil
}

// ---------------------------------------------------------------------------
// Dispatch: remote lease protocol + local fallback executor.

// touchWorker records remote-worker contact (lease poll, heartbeat or
// complete) for the liveness view.
func (e *Engine) touchWorker(id string) {
	now := e.now()
	e.workersMu.Lock()
	e.workers[id] = now
	e.lastRemote = now
	e.workersMu.Unlock()
}

// liveWorkers counts remote workers heard from within one lease TTL.
func (e *Engine) liveWorkers() int {
	cutoff := e.now().Add(-e.opts.LeaseTTL)
	e.workersMu.Lock()
	defer e.workersMu.Unlock()
	n := 0
	for id, last := range e.workers {
		if last.Before(cutoff) {
			delete(e.workers, id) // forget the dead; healthz counts the living
			continue
		}
		n++
	}
	return n
}

// WorkerCount is the /healthz live remote worker count.
func (e *Engine) WorkerCount() int { return e.liveWorkers() }

// localMayRun decides whether the in-process fallback should pick up work:
// never while a remote worker is live, and only after LocalGrace has passed
// since the later of boot and the last remote contact — so a briefly
// partitioned fleet gets first refusal on its own shards.
func (e *Engine) localMayRun() bool {
	if e.opts.DisableLocal {
		return false
	}
	if e.liveWorkers() > 0 {
		return false
	}
	e.workersMu.Lock()
	since := e.bootTime
	if e.lastRemote.After(since) {
		since = e.lastRemote
	}
	e.workersMu.Unlock()
	return e.now().Sub(since) >= e.opts.LocalGrace
}

// dispatcher is the engine's background loop: it reaps expired leases
// (requeueing their shards) and, when no remote fleet is live, executes
// pending shards in-process one at a time — PR 8's local execution path,
// now just another lease-holding worker.
func (e *Engine) dispatcher() {
	defer e.wg.Done()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-e.ctx.Done():
			return
		case <-tick.C:
		case <-e.dispatchNow:
		}
		for _, l := range e.leases.ExpireStale() {
			e.opts.Logf("campaign: lease expired: %s worker=%s token=%d (requeued)",
				l.ref, l.worker, l.token)
		}
		for e.localMayRun() {
			l, err := e.leases.Acquire(localWorkerID)
			if err != nil {
				break // no pending work
			}
			e.runLocalShard(l)
			if e.ctx.Err() != nil {
				return
			}
		}
	}
}

// stateFor returns a campaign's in-memory state.
func (e *Engine) stateFor(id string) (*state, bool) {
	e.mu.Lock()
	st, ok := e.campaigns[id]
	e.mu.Unlock()
	return st, ok
}

// markRunning flips a campaign to running on its first lease grant.
func (st *state) markRunning(now time.Time) {
	st.mu.Lock()
	if st.status == StatusQueued {
		st.status = StatusRunning
	}
	if st.started.IsZero() {
		st.started = now
	}
	st.mu.Unlock()
}

// pendingItems lists a shard's not-yet-journaled items and the indexes
// already done.
func (st *state) pendingItems(si int) (pending []Item, done []int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, it := range st.shards[si] {
		if _, ok := st.done[si][it.Index]; ok {
			done = append(done, it.Index)
		} else {
			pending = append(pending, it)
		}
	}
	return pending, done
}

// applyEntry journals one finished item and folds it into the in-memory
// state, keep-first: an index already recorded (a re-run under at-least-once
// dispatch) is skipped entirely, so the journal gains no duplicate line and
// the first-landed record is the one true copy. Returns whether the entry
// was fresh.
func (e *Engine) applyEntry(jw *journalWriter, st *state, si int, en journalEntry) (bool, error) {
	st.mu.Lock()
	if _, dup := st.done[si][en.Index]; dup {
		st.mu.Unlock()
		return false, nil
	}
	st.mu.Unlock()
	if err := jw.append(en); err != nil {
		return false, err
	}
	st.mu.Lock()
	st.done[si][en.Index] = en.Line
	st.instrs += en.Instrs
	if en.Div != nil {
		st.divs[en.Index] = en.Div
	}
	st.mu.Unlock()
	if en.Div != nil {
		if _, err := e.corpus.Add(st.id, en.Div); err != nil {
			return true, err
		}
	}
	return true, nil
}

// applyEntries batch-applies worker-streamed entries to one shard's journal.
func (e *Engine) applyEntries(st *state, si int, entries []journalEntry) error {
	if len(entries) == 0 {
		return nil
	}
	valid := make(map[int]bool, len(st.shards[si]))
	st.mu.Lock()
	for _, it := range st.shards[si] {
		valid[it.Index] = true
	}
	st.mu.Unlock()
	jw, err := openJournal(shardJournalPath(st.dir, si))
	if err != nil {
		return err
	}
	defer jw.Close()
	for _, en := range entries {
		if !valid[en.Index] {
			return fmt.Errorf("campaign: %s shard %d: entry index %d outside manifest", st.id, si, en.Index)
		}
		if _, err := e.applyEntry(jw, st, si, en); err != nil {
			return err
		}
	}
	return nil
}

// shardComplete reports whether every item of a shard is journaled.
func (st *state) shardComplete(si int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.done[si]) >= len(st.shards[si])
}

// maybeFinish merges and finalizes a campaign once every shard is complete.
func (e *Engine) maybeFinish(st *state) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.status == StatusDone || st.status == StatusFailed {
		return
	}
	for si := range st.shards {
		if len(st.done[si]) < len(st.shards[si]) {
			return
		}
	}
	if !st.started.IsZero() {
		st.wall += time.Since(st.started)
		st.started = time.Time{}
	}
	if err := st.writeReport(); err != nil {
		st.status = StatusFailed
		st.errMsg = err.Error()
		return
	}
	st.status = StatusDone
}

// fail marks a campaign failed and withdraws its remaining shards from
// dispatch.
func (e *Engine) fail(st *state, err error) {
	st.mu.Lock()
	st.status = StatusFailed
	st.errMsg = err.Error()
	if !st.started.IsZero() {
		st.wall += time.Since(st.started)
		st.started = time.Time{}
	}
	st.mu.Unlock()
	e.leases.Remove(st.id)
}

// runLocalShard executes one leased shard in-process: pending items on a
// sched pool, every finished item journaled from OnResult (which sched
// serializes), the lease renewed on a heartbeat ticker exactly like a remote
// worker's. Cancellation mid-shard requeues the lease and leaves the
// journals as the resume point.
func (e *Engine) runLocalShard(l *lease) {
	st, ok := e.stateFor(l.ref.Campaign)
	if !ok {
		e.leases.Complete(l.ref, l.token)
		return
	}
	st.markRunning(time.Now())
	si := l.ref.Shard
	pending, _ := st.pendingItems(si)
	if len(pending) == 0 {
		e.completeShard(st, l.ref, l.token)
		return
	}

	width := st.spec.Jobs
	if width <= 0 {
		width = e.opts.Jobs
	}
	jw, err := openJournal(shardJournalPath(st.dir, si))
	if err != nil {
		e.fail(st, err)
		return
	}

	// Renew the local lease on the same cadence a remote worker would; the
	// registry treats the in-process executor like any other leaseholder.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(e.opts.LeaseTTL / 3)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				if _, err := e.leases.Renew(l.ref, l.token); err != nil {
					e.opts.Logf("campaign: local lease on %s lost: %v", l.ref, err)
					return
				}
			}
		}
	}()

	jobs := make([]sched.Job, len(pending))
	for j, it := range pending {
		it := it
		jobs[j] = sched.Job{
			ID: fmt.Sprintf("%s/shard%d/%s", st.id, si, it.Key()),
			Run: func(ctx context.Context) (any, error) {
				res, err := e.opts.Runner.Run(ctx, st.spec, it)
				return res, err
			},
		}
	}
	var itemErr error
	rs := sched.Run(e.ctx, jobs, sched.Options{
		Workers: width,
		OnResult: func(j int, r sched.Result) {
			if r.Err != nil {
				return // cancellation or item failure: nothing durable to record
			}
			res := r.Value.(ItemResult)
			en := journalEntry{Index: pending[j].Index, Line: res.Line, Div: res.Div, Instrs: r.Instrs}
			if _, err := e.applyEntry(jw, st, si, en); err != nil && itemErr == nil {
				itemErr = err
			}
		},
	})
	jw.Close()
	close(hbStop)
	hbWG.Wait()
	if e.ctx.Err() != nil {
		st.mu.Lock()
		st.status = StatusQueued // resumes from the journals on restart
		if !st.started.IsZero() {
			st.wall += time.Since(st.started)
			st.started = time.Time{}
		}
		st.mu.Unlock()
		e.leases.Requeue(l.ref, l.token)
		return
	}
	if itemErr == nil {
		itemErr = sched.FirstError(rs)
	}
	if itemErr != nil {
		e.fail(st, itemErr)
		return
	}
	e.completeShard(st, l.ref, l.token)
}

// completeShard releases the lease and, when the shard's journal really
// covers every item, checks the campaign for completion. A "complete" on a
// shard with missing items (a buggy or fenced-off worker) requeues the shard
// instead of wedging the campaign.
func (e *Engine) completeShard(st *state, ref shardRef, token uint64) error {
	if err := e.leases.Complete(ref, token); err != nil {
		return err
	}
	if !st.shardComplete(ref.Shard) {
		e.opts.Logf("campaign: %s completed with items missing; requeued", ref)
		e.leases.Enqueue(ref)
		e.kick()
		return fmt.Errorf("campaign: %s: complete with items missing; requeued", ref)
	}
	e.maybeFinish(st)
	return nil
}

// ---------------------------------------------------------------------------
// Remote worker API (the engine half of /lease, /heartbeat, /complete).

// LeaseGrant is the /api/v1/lease response: everything a worker needs to run
// one shard — the manifest, the shard's item list, which items are already
// journaled, and the lease identity (token + TTL) it must renew.
type LeaseGrant struct {
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Token    uint64 `json:"token"`
	TTLMS    int64  `json:"ttl_ms"`
	Spec     *Spec  `json:"spec"`
	Items    []Item `json:"items"`
	Done     []int  `json:"done,omitempty"`
}

// AcquireShard grants the oldest pending shard to a remote worker.
// ErrNoWork when nothing is pending.
func (e *Engine) AcquireShard(workerID string) (*LeaseGrant, error) {
	e.touchWorker(workerID)
	l, err := e.leases.Acquire(workerID)
	if err != nil {
		return nil, err
	}
	st, ok := e.stateFor(l.ref.Campaign)
	if !ok {
		e.leases.Complete(l.ref, l.token)
		return nil, ErrNoWork
	}
	st.markRunning(time.Now())
	_, done := st.pendingItems(l.ref.Shard)
	st.mu.Lock()
	items := append([]Item(nil), st.shards[l.ref.Shard]...)
	spec := st.spec
	st.mu.Unlock()
	e.opts.Logf("campaign: leased %s to worker=%s token=%d", l.ref, workerID, l.token)
	return &LeaseGrant{
		Campaign: l.ref.Campaign,
		Shard:    l.ref.Shard,
		Token:    l.token,
		TTLMS:    e.opts.LeaseTTL.Milliseconds(),
		Spec:     spec,
		Items:    items,
		Done:     done,
	}, nil
}

// HeartbeatShard renews a worker's lease and journals the entries it
// streamed since the last beat. A stale token is fenced off with
// ErrLeaseLost and the entries are discarded — only the current leaseholder
// writes; the items re-run under the next lease and merge idempotently.
func (e *Engine) HeartbeatShard(workerID, campaignID string, shard int, token uint64, entries []journalEntry) (time.Duration, error) {
	e.touchWorker(workerID)
	ref := shardRef{Campaign: campaignID, Shard: shard}
	ttl, err := e.leases.Renew(ref, token)
	if err != nil {
		return 0, err
	}
	st, ok := e.stateFor(campaignID)
	if !ok {
		return 0, ErrLeaseLost
	}
	if err := e.applyEntries(st, shard, entries); err != nil {
		e.fail(st, err)
		return 0, err
	}
	return ttl, nil
}

// CompleteShard finishes a worker's shard: journal the final entries, fence-
// check the token, release the lease and (perhaps) finalize the campaign.
// workerErr marks the shard failed on the worker; a valid token then fails
// the whole campaign, matching the local executor's item-error semantics.
func (e *Engine) CompleteShard(workerID, campaignID string, shard int, token uint64, entries []journalEntry, workerErr string) error {
	e.touchWorker(workerID)
	ref := shardRef{Campaign: campaignID, Shard: shard}
	st, ok := e.stateFor(campaignID)
	if !ok {
		return ErrLeaseLost
	}
	if !e.leases.Holds(ref, token) {
		return ErrLeaseLost
	}
	if workerErr != "" {
		if err := e.leases.Complete(ref, token); err != nil {
			return err
		}
		e.fail(st, errors.New(workerErr))
		return nil
	}
	if err := e.applyEntries(st, shard, entries); err != nil {
		e.fail(st, err)
		return err
	}
	return e.completeShard(st, ref, token)
}

// ---------------------------------------------------------------------------

// writeReport merges the shard journals into report.jsonl: every item's line
// in manifest order, concatenation over shards in shard order. Atomic, so
// the report's existence is the done marker. Callers hold st.mu or have
// exclusive access.
func (st *state) writeReport() error {
	var buf bytes.Buffer
	for si, items := range st.shards {
		for _, it := range items {
			line, ok := st.done[si][it.Index]
			if !ok {
				return fmt.Errorf("campaign: %s: item %d missing at merge", st.id, it.Index)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
	}
	return writeAtomic(reportPath(st.dir), buf.Bytes())
}

// Close drains the engine: new submissions are rejected, the in-flight local
// shard is cancelled at the next item boundary (its finished items are
// already journaled), and the dispatcher exits. Remote leases are left to
// age out; their shards requeue when a restarted coordinator reloads the
// journals. Safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
}

// Draining reports whether Close has begun.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// Shard lease states in the /progress view.
const (
	ShardPending = "pending"
	ShardLeased  = "leased"
	ShardDone    = "done"
)

// ShardStatus is one shard's live progress, including which worker holds its
// lease and for how long — the field that tells a stuck shard (lease aging
// toward expiry, no items landing) from a merely slow one.
type ShardStatus struct {
	Shard     int    `json:"shard"`
	ItemsDone int    `json:"items_done"`
	Items     int    `json:"items"`
	State     string `json:"state"`
	Worker    string `json:"worker,omitempty"`
	Token     uint64 `json:"token,omitempty"`
	// LeaseAgeMS is how long the current lease has been held.
	LeaseAgeMS int64 `json:"lease_age_ms,omitempty"`
}

// Status is a campaign's live progress snapshot, the /campaigns/{id} API
// document.
type Status struct {
	ID          string        `json:"id"`
	Tool        string        `json:"tool"`
	Status      string        `json:"status"`
	Error       string        `json:"error,omitempty"`
	Shards      []ShardStatus `json:"shards"`
	ItemsDone   int           `json:"items_done"`
	Items       int           `json:"items"`
	Divergences int           `json:"divergences"`
	// HostMIPS is the retired-instruction throughput of the campaign so far
	// (millions of simulated instructions per host second, summed over
	// workers). Zero for tools that do not report instruction counts.
	HostMIPS float64 `json:"host_mips,omitempty"`
}

func (st *state) snapshot() Status {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Status{ID: st.id, Tool: st.spec.Tool, Status: st.status, Error: st.errMsg,
		Divergences: len(st.divs)}
	for si, items := range st.shards {
		sh := ShardStatus{Shard: si, ItemsDone: len(st.done[si]), Items: len(items),
			State: ShardPending}
		if sh.ItemsDone >= sh.Items {
			sh.State = ShardDone
		}
		s.Shards = append(s.Shards, sh)
		s.ItemsDone += len(st.done[si])
		s.Items += len(items)
	}
	wall := st.wall
	if st.status == StatusRunning && !st.started.IsZero() {
		wall += time.Since(st.started)
	}
	if secs := wall.Seconds(); secs > 0 {
		s.HostMIPS = float64(st.instrs) / secs / 1e6
	}
	return s
}

// Get returns one campaign's status, lease assignments overlaid.
func (e *Engine) Get(id string) (Status, bool) {
	st, ok := e.stateFor(id)
	if !ok {
		return Status{}, false
	}
	s := st.snapshot()
	for i := range s.Shards {
		ref := shardRef{Campaign: id, Shard: s.Shards[i].Shard}
		if info, held := e.leases.Info(ref); held {
			s.Shards[i].State = ShardLeased
			s.Shards[i].Worker = info.Worker
			s.Shards[i].Token = info.Token
			s.Shards[i].LeaseAgeMS = info.Age.Milliseconds()
		}
	}
	return s, true
}

// List returns every campaign's status in submission order.
func (e *Engine) List() []Status {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	e.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if s, ok := e.Get(id); ok {
			out = append(out, s)
		}
	}
	return out
}

// Report returns the merged report of a finished campaign.
func (e *Engine) Report(id string) ([]byte, error) {
	st, ok := e.stateFor(id)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown campaign %q", id)
	}
	st.mu.Lock()
	status := st.status
	st.mu.Unlock()
	if status != StatusDone {
		return nil, fmt.Errorf("campaign: %s is %s, report not ready", id, status)
	}
	return os.ReadFile(reportPath(st.dir))
}

// Divergences returns a campaign's divergences in manifest order.
func (e *Engine) Divergences(id string) ([]*Divergence, error) {
	st, ok := e.stateFor(id)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown campaign %q", id)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	idx := make([]int, 0, len(st.divs))
	for i := range st.divs {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]*Divergence, 0, len(idx))
	for _, i := range idx {
		d := *st.divs[i]
		out = append(out, &d)
	}
	return out, nil
}

// Repro returns the shrunken reproducer a campaign found for a seed.
func (e *Engine) Repro(id string, seed int64) (string, error) {
	divs, err := e.Divergences(id)
	if err != nil {
		return "", err
	}
	for _, d := range divs {
		if d.Seed == seed {
			if d.Shrunk == "" {
				return "", fmt.Errorf("campaign: seed %d diverged but has no shrunken repro", seed)
			}
			return d.Shrunk, nil
		}
	}
	return "", fmt.Errorf("campaign: no divergence for seed %d in %s", seed, id)
}

// Corpus exposes the engine's divergence corpus.
func (e *Engine) Corpus() *Corpus { return e.corpus }
