package campaign

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, mutex-guarded registry clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testRegistry(t *testing.T, ttl time.Duration) (*leaseRegistry, *fakeClock) {
	t.Helper()
	fence, err := openFence(filepath.Join(t.TempDir(), "fence"))
	if err != nil {
		t.Fatalf("openFence: %v", err)
	}
	clk := newFakeClock()
	return newLeaseRegistry(ttl, clk.Now, fence), clk
}

// TestLeaseExpiryRequeues: a lease whose worker stops heartbeating expires
// and the shard goes back to the pending queue, where a second worker can
// acquire it under a strictly larger token.
func TestLeaseExpiryRequeues(t *testing.T) {
	lr, clk := testRegistry(t, 10*time.Second)
	ref := shardRef{Campaign: "c0001", Shard: 0}
	lr.Enqueue(ref)

	l1, err := lr.Acquire("wA")
	if err != nil || l1.ref != ref {
		t.Fatalf("acquire: %v %+v", err, l1)
	}
	if _, err := lr.Acquire("wB"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("second acquire while leased: %v, want ErrNoWork", err)
	}

	// Heartbeats keep it alive across the TTL boundary.
	clk.Advance(8 * time.Second)
	if _, err := lr.Renew(ref, l1.token); err != nil {
		t.Fatalf("renew within ttl: %v", err)
	}
	clk.Advance(8 * time.Second)
	if !lr.Holds(ref, l1.token) {
		t.Fatal("renewed lease not held")
	}

	// Silence past the TTL: the shard requeues.
	clk.Advance(11 * time.Second)
	expired := lr.ExpireStale()
	if len(expired) != 1 || expired[0].token != l1.token {
		t.Fatalf("expire: %+v", expired)
	}
	if lr.Pending() != 1 {
		t.Fatalf("expired shard not requeued: pending=%d", lr.Pending())
	}
	l2, err := lr.Acquire("wB")
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	if l2.token <= l1.token {
		t.Fatalf("re-grant token %d not larger than %d", l2.token, l1.token)
	}
	// The zombie's renew and complete are both fenced off.
	if _, err := lr.Renew(ref, l1.token); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie renew: %v, want ErrLeaseLost", err)
	}
	if err := lr.Complete(ref, l1.token); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie complete: %v, want ErrLeaseLost", err)
	}
	// The live holder completes cleanly, exactly once.
	if err := lr.Complete(ref, l2.token); err != nil {
		t.Fatalf("live complete: %v", err)
	}
	if err := lr.Complete(ref, l2.token); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("double complete: %v, want ErrLeaseLost", err)
	}
}

// TestLeaseZombieCompleteAfterExpiryWithoutRegrant: even when nobody has
// re-acquired the shard yet, an expired lease's complete is rejected — the
// expiry already moved the shard to pending, and accepting would mark a
// possibly part-run shard done.
func TestLeaseZombieCompleteAfterExpiryWithoutRegrant(t *testing.T) {
	lr, clk := testRegistry(t, time.Second)
	ref := shardRef{Campaign: "c0001", Shard: 3}
	lr.Enqueue(ref)
	l, err := lr.Acquire("wA")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if err := lr.Complete(ref, l.token); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("expired complete: %v, want ErrLeaseLost", err)
	}
	if lr.Pending() != 1 {
		t.Fatalf("shard lost: pending=%d", lr.Pending())
	}
}

// TestLeaseRemoveCampaign: Remove drops a campaign's pending and leased
// shards while leaving other campaigns intact.
func TestLeaseRemoveCampaign(t *testing.T) {
	lr, _ := testRegistry(t, time.Minute)
	a0 := shardRef{Campaign: "c0001", Shard: 0}
	a1 := shardRef{Campaign: "c0001", Shard: 1}
	b0 := shardRef{Campaign: "c0002", Shard: 0}
	lr.Enqueue(a0)
	lr.Enqueue(a1)
	lr.Enqueue(b0)
	l, err := lr.Acquire("w") // takes a0 (FIFO)
	if err != nil || l.ref != a0 {
		t.Fatalf("acquire: %v %+v", err, l)
	}
	lr.Remove("c0001")
	if lr.Holds(a0, l.token) {
		t.Fatal("removed campaign's lease survived")
	}
	got, err := lr.Acquire("w")
	if err != nil || got.ref != b0 {
		t.Fatalf("acquire after remove: %v %+v, want c0002/0", err, got)
	}
	if _, err := lr.Acquire("w"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("registry not empty after remove: %v", err)
	}
}

// TestLeaseDoubleLeaseImpossible hammers the registry from many goroutines —
// acquire, renew, complete, expiry, clock advance all racing — and asserts
// the core invariant: at no instant do two unexpired leases exist for one
// shard, observed as strictly increasing grant tokens per shard with no
// overlap in holder accounting. Run under -race by the chaos smoke.
func TestLeaseDoubleLeaseImpossible(t *testing.T) {
	lr, clk := testRegistry(t, 5*time.Millisecond)
	const shards = 8
	refs := make([]shardRef, shards)
	for i := range refs {
		refs[i] = shardRef{Campaign: "c0001", Shard: i}
		lr.Enqueue(refs[i])
	}

	var held sync.Map // shardRef -> token of current holder (test-side shadow)
	var grants sync.Map
	var wg, clockWG sync.WaitGroup
	stop := make(chan struct{})

	// Clock driver: leases constantly age out mid-flight.
	clockWG.Add(1)
	go func() {
		defer clockWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(time.Millisecond)
				lr.ExpireStale()
			}
		}
	}()

	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker := string(rune('A' + id))
			for i := 0; i < 2000; i++ {
				l, err := lr.Acquire(worker)
				if err != nil {
					if !errors.Is(err, ErrNoWork) {
						t.Errorf("acquire: %v", err)
						return
					}
					// Refill so the hammer keeps hammering.
					lr.Enqueue(refs[i%shards])
					continue
				}
				// Token strictly increases per shard: the previous holder's
				// grant can never be re-observed.
				if prev, ok := grants.Load(l.ref); ok && l.token <= prev.(uint64) {
					t.Errorf("shard %v: token %d not above prior grant %d", l.ref, l.token, prev)
					return
				}
				grants.Store(l.ref, l.token)
				// Shadow holder map: a successful swap-in means nobody else
				// currently *thinks* they validly hold this shard. A second
				// live lease would manifest as two goroutines passing Holds
				// for different tokens; Holds requires exact token equality
				// on the single registry record, so only one can.
				if lr.Holds(l.ref, l.token) {
					held.Store(l.ref, l.token)
				}
				// Half the holders complete, half go silent (simulated
				// death) and let the TTL reap the lease.
				if i%2 == 0 {
					if err := lr.Complete(l.ref, l.token); err != nil && !errors.Is(err, ErrLeaseLost) {
						t.Errorf("complete: %v", err)
						return
					}
					lr.Enqueue(l.ref)
				}
			}
		}(w)
	}
	// Let workers finish, then the clock driver.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("hammer deadlocked")
	}
	close(stop)
	clockWG.Wait()
}

// TestFenceCounterSurvivesRestart: tokens stay strictly increasing across a
// reopen, so a worker holding a pre-restart token can never collide with a
// post-restart grant.
func TestFenceCounterSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fence")
	f1, err := openFence(path)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 100; i++ {
		tk := f1.Next()
		if tk <= last && !(i == 0) {
			t.Fatalf("token %d not increasing past %d", tk, last)
		}
		last = tk
	}
	f2, err := openFence(path)
	if err != nil {
		t.Fatal(err)
	}
	if tk := f2.Next(); tk <= last {
		t.Fatalf("post-restart token %d collides with pre-restart %d", tk, last)
	}
}
