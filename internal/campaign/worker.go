package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xt910/internal/retry"
	"xt910/internal/sched"
)

// WorkerOptions configures one campaign worker process (cmd/xtworker,
// xtcampd -worker, or an in-process worker in tests).
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port). Required.
	Coordinator string
	// ID is the worker's identity in leases and /progress. Required.
	ID string
	// Jobs is the item pool width within a shard (<= 0: the shard spec's
	// Jobs, then GOMAXPROCS). Any width produces identical report lines.
	Jobs int
	// Runner substitutes the item executor (tests); nil selects the real
	// tool runner.
	Runner Runner
	// Client substitutes the HTTP client (tests inject chaos transports);
	// nil uses a fresh client with a 30s per-request timeout.
	Client *http.Client
	// Poll is the idle re-poll interval when the coordinator has no work
	// (<= 0: 500ms). Polling doubles as the worker's liveness signal while
	// idle.
	Poll time.Duration
	// Retry shapes the backoff for transient coordinator failures
	// (connection refused, 5xx/503 drain). Zero value: retry.Default().
	Retry retry.Policy
	// Seed seeds the backoff jitter stream; 0 derives one from ID, so a
	// restarted fleet does not stampede in phase.
	Seed int64
	// Logf receives worker log lines; nil discards them.
	Logf func(format string, args ...any)
	// MaxShards stops the worker after completing (or abandoning) this many
	// shards; 0 runs until ctx ends. Tests and drain scripts use it.
	MaxShards int

	// DropHeartbeat is a chaos hook: when it returns true the worker
	// silently skips sending that heartbeat (simulating heartbeat loss
	// without killing the worker). Nil: never drop.
	DropHeartbeat func() bool
}

// RunWorker pulls shard leases from the coordinator and executes them until
// ctx ends (or MaxShards is reached): items run on a sched pool through the
// same Runner entry points the local executor uses, finished entries stream
// back on every heartbeat, and the final batch rides the /complete call.
// Transient coordinator failures back off on the seeded retry schedule; a
// fencing rejection (409) abandons the shard immediately — some newer lease
// owns it, and at-least-once re-execution is safe by journal keep-first.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Coordinator == "" || opts.ID == "" {
		return fmt.Errorf("campaign: worker needs Coordinator and ID")
	}
	if opts.ID == localWorkerID {
		return fmt.Errorf("campaign: worker id %q is reserved", localWorkerID)
	}
	if opts.Runner == nil {
		opts.Runner = toolRunner{}
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if (opts.Retry == retry.Policy{}) {
		opts.Retry = retry.Default()
	}
	if opts.Seed == 0 {
		h := fnv.New64a()
		io.WriteString(h, opts.ID)
		opts.Seed = int64(h.Sum64())
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}

	w := &worker{opts: opts, backoff: retry.New(opts.Retry, opts.Seed)}
	completed := 0
	for ctx.Err() == nil {
		grant, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			w.sleepBackoff(ctx)
			continue
		}
		if grant == nil { // no work pending
			w.backoff.Reset()
			w.sleep(ctx, opts.Poll)
			continue
		}
		w.backoff.Reset()
		w.runShard(ctx, grant)
		completed++
		if opts.MaxShards > 0 && completed >= opts.MaxShards {
			break
		}
	}
	if ctx.Err() != nil {
		return nil
	}
	return nil
}

type worker struct {
	opts    WorkerOptions
	backoff *retry.Backoff
}

func (w *worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// backoffDelay yields the next lease-loop delay. Once a bounded policy's
// attempt budget runs out the loop must keep probing the coordinator anyway,
// so it holds at the poll cadence instead of spinning on zero-length sleeps.
func (w *worker) backoffDelay() time.Duration {
	if d, ok := w.backoff.Next(); ok {
		return d
	}
	return w.opts.Poll
}

func (w *worker) sleepBackoff(ctx context.Context) {
	w.sleep(ctx, w.backoffDelay())
}

// statusError carries a non-2xx coordinator reply.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("campaign: coordinator replied %d: %s", e.code, e.body)
}

// post sends one JSON request. Network errors and 5xx are transient (retry);
// 409 is the fencing rejection; other 4xx are protocol errors.
func (w *worker) post(ctx context.Context, path string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.opts.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return resp.StatusCode, nil
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return resp.StatusCode, &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// lease asks for a shard. nil grant (no error) means no work is pending.
func (w *worker) lease(ctx context.Context) (*LeaseGrant, error) {
	var grant LeaseGrant
	code, err := w.post(ctx, "/api/v1/lease", leaseRequest{Worker: w.opts.ID}, &grant)
	if err != nil {
		return nil, err
	}
	if code == http.StatusNoContent {
		return nil, nil
	}
	return &grant, nil
}

// entryBuffer accumulates finished entries between heartbeats.
type entryBuffer struct {
	mu      sync.Mutex
	entries []journalEntry
}

func (b *entryBuffer) add(e journalEntry) {
	b.mu.Lock()
	b.entries = append(b.entries, e)
	b.mu.Unlock()
}

// take drains the buffer; give returns entries after a failed send.
func (b *entryBuffer) take() []journalEntry {
	b.mu.Lock()
	out := b.entries
	b.entries = nil
	b.mu.Unlock()
	return out
}

func (b *entryBuffer) give(es []journalEntry) {
	if len(es) == 0 {
		return
	}
	b.mu.Lock()
	b.entries = append(es, b.entries...)
	b.mu.Unlock()
}

// entryBatchBytes bounds the encoded entry payload of one worker POST,
// leaving the coordinator's maxEntryBody request cap ample headroom for the
// envelope fields and encoder overhead.
const entryBatchBytes = maxEntryBody / 2

// splitEntryBatches cuts entries into consecutive sub-slices whose summed
// encoded sizes stay under limit, so a backlog accumulated during a long
// partition never produces a request the coordinator rejects with 413. A
// single entry over the limit still gets its own batch — splitting cannot
// shrink it, and nothing the runner emits approaches the cap. An empty
// input yields one empty batch (a bare lease renewal).
func splitEntryBatches(entries []journalEntry, limit int) [][]journalEntry {
	if len(entries) == 0 {
		return [][]journalEntry{nil}
	}
	var batches [][]journalEntry
	start, size := 0, 0
	for i, e := range entries {
		b, _ := json.Marshal(e)
		n := len(b) + 1 // separator
		if i > start && size+n > limit {
			batches = append(batches, entries[start:i])
			start, size = i, 0
		}
		size += n
	}
	return append(batches, entries[start:])
}

// flattenBatches rejoins a tail of batches (after a mid-stream send failure)
// so the unsent entries can go back into the buffer in order.
func flattenBatches(batches [][]journalEntry) []journalEntry {
	if len(batches) == 1 {
		return batches[0]
	}
	var out []journalEntry
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

// runShard executes one leased shard: the not-yet-done items on a sched
// pool, heartbeats (with streamed entries) every TTL/3, the remainder on
// /complete. A fenced-off heartbeat cancels the run mid-shard.
func (w *worker) runShard(ctx context.Context, g *LeaseGrant) {
	ttl := time.Duration(g.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	doneSet := make(map[int]bool, len(g.Done))
	for _, i := range g.Done {
		doneSet[i] = true
	}
	var pending []Item
	for _, it := range g.Items {
		if !doneSet[it.Index] {
			pending = append(pending, it)
		}
	}
	w.opts.Logf("xtworker %s: leased %s/shard%d token=%d (%d/%d items pending)",
		w.opts.ID, g.Campaign, g.Shard, g.Token, len(pending), len(g.Items))

	width := w.opts.Jobs
	if width <= 0 {
		width = g.Spec.Jobs
	}
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}

	var buf entryBuffer
	var fenced atomic.Bool // set by the heartbeat loop before it cancels
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat loop: renew the lease and stream the entries finished since
	// the last beat, in batches bounded under the coordinator's request cap.
	// Transient failures put the unsent entries back and try again next tick
	// (the TTL gives us ~3 misses of slack); a 409 means the token is fenced
	// off — abandon the shard, the work re-runs elsewhere.
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-t.C:
			}
			if w.opts.DropHeartbeat != nil && w.opts.DropHeartbeat() {
				w.opts.Logf("xtworker %s: chaos: dropping heartbeat for %s/shard%d",
					w.opts.ID, g.Campaign, g.Shard)
				continue
			}
			batches := splitEntryBatches(buf.take(), entryBatchBytes)
			for bi, batch := range batches {
				msg := shardMessage{Worker: w.opts.ID, Campaign: g.Campaign,
					Shard: g.Shard, Token: g.Token, Entries: batch}
				code, err := w.post(shardCtx, "/api/v1/heartbeat", msg, nil)
				if err == nil {
					continue
				}
				if code == http.StatusConflict {
					w.opts.Logf("xtworker %s: lease on %s/shard%d fenced off; abandoning",
						w.opts.ID, g.Campaign, g.Shard)
					fenced.Store(true)
					cancel()
					return
				}
				// Transient (partition, drain, 5xx): keep this batch and the
				// unsent remainder for the next beat and keep computing.
				buf.give(flattenBatches(batches[bi:]))
				w.opts.Logf("xtworker %s: heartbeat failed (will retry): %v", w.opts.ID, err)
				break
			}
		}
	}()

	jobs := make([]sched.Job, len(pending))
	for j, it := range pending {
		it := it
		jobs[j] = sched.Job{
			ID: fmt.Sprintf("%s/shard%d/%s", g.Campaign, g.Shard, it.Key()),
			Run: func(jctx context.Context) (any, error) {
				res, err := w.opts.Runner.Run(jctx, g.Spec, it)
				return res, err
			},
		}
	}
	var itemErr error
	rs := sched.Run(shardCtx, jobs, sched.Options{
		Workers: width,
		OnResult: func(j int, r sched.Result) {
			if r.Err != nil {
				return
			}
			res := r.Value.(ItemResult)
			buf.add(journalEntry{Index: pending[j].Index, Line: res.Line,
				Div: res.Div, Instrs: r.Instrs})
		},
	})
	cancel()
	hbWG.Wait()

	if ctx.Err() != nil {
		return // worker shutting down; lease ages out, shard requeues
	}
	if itemErr == nil {
		itemErr = sched.FirstError(rs)
	}
	if fenced.Load() && itemErr != nil {
		// Abandoned mid-run by the fenced-off heartbeat loop: the shard is
		// someone else's now, nothing to send. (itemErr == nil means every
		// item finished before the cancel landed — fall through and offer
		// the completion; the token check decides.)
		return
	}

	// Completion retries transient failures on the seeded backoff, bounded:
	// past a handful of attempts the lease has aged out anyway and the shard
	// will re-run elsewhere. Fencing rejections are permanent.
	policy := w.opts.Retry
	if policy.Attempts == 0 {
		policy.Attempts = 8
	}
	isPermanentCode := func(code int) bool {
		return code == http.StatusConflict || (code >= 400 && code < 500 && code != 429)
	}

	// A long partition can leave more finished entries than one request's
	// budget. Stream all but the last batch down over /heartbeat first —
	// those entries journal durably — so the /complete body itself always
	// fits under the coordinator's cap.
	batches := splitEntryBatches(buf.take(), entryBatchBytes)
	for bi, batch := range batches[:len(batches)-1] {
		hb := shardMessage{Worker: w.opts.ID, Campaign: g.Campaign, Shard: g.Shard,
			Token: g.Token, Entries: batch}
		err := retry.Do(ctx, policy, w.opts.Seed+int64(g.Token)+int64(bi), func() error {
			code, err := w.post(ctx, "/api/v1/heartbeat", hb, nil)
			if err != nil && isPermanentCode(code) {
				return retry.Permanent(err)
			}
			return err
		})
		if err != nil {
			w.opts.Logf("xtworker %s: draining entries for %s/shard%d token=%d failed: %v",
				w.opts.ID, g.Campaign, g.Shard, g.Token, err)
			return
		}
	}

	msg := shardMessage{Worker: w.opts.ID, Campaign: g.Campaign, Shard: g.Shard,
		Token: g.Token, Entries: batches[len(batches)-1]}
	if itemErr != nil {
		msg.Error = itemErr.Error()
	}
	err := retry.Do(ctx, policy, w.opts.Seed+int64(g.Token), func() error {
		code, err := w.post(ctx, "/api/v1/complete", msg, nil)
		if err != nil && isPermanentCode(code) {
			return retry.Permanent(err)
		}
		return err
	})
	if err != nil {
		w.opts.Logf("xtworker %s: complete %s/shard%d token=%d not accepted: %v",
			w.opts.ID, g.Campaign, g.Shard, g.Token, err)
		return
	}
	w.opts.Logf("xtworker %s: completed %s/shard%d token=%d", w.opts.ID, g.Campaign, g.Shard, g.Token)
}
