package campaign

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// NewHandler wires the campaign HTTP/JSON API (stdlib net/http only):
//
//	POST /api/v1/campaigns                   submit a Spec, returns {"id": ...}
//	GET  /api/v1/campaigns                   list campaign statuses
//	GET  /api/v1/campaigns/{id}              one campaign's live status
//	GET  /api/v1/campaigns/{id}/report       merged report (JSONL; 409 until done)
//	GET  /api/v1/campaigns/{id}/divergences  divergence records
//	GET  /api/v1/campaigns/{id}/repro/{seed} shrunken reproducer (assembly)
//	GET  /api/v1/corpus                      deduplicated divergence corpus
//	GET  /healthz                            "ok", or 503 while draining
//
// Submissions during drain are rejected with 503 so a supervisor restarting
// the daemon can tell "retry later" from a bad request.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if e.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("POST /api/v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		if e.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		spec := new(Spec)
		if err := json.NewDecoder(r.Body).Decode(spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := e.Submit(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id})
	})

	mux.HandleFunc("GET /api/v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, e.List())
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := e.Get(r.PathValue("id"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, s)
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s, ok := e.Get(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		if s.Status != StatusDone {
			http.Error(w, "campaign is "+s.Status+"; report not ready", http.StatusConflict)
			return
		}
		b, err := e.Report(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		w.Write(b)
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}/divergences", func(w http.ResponseWriter, r *http.Request) {
		divs, err := e.Divergences(r.PathValue("id"))
		if err != nil {
			http.NotFound(w, r)
			return
		}
		if divs == nil {
			divs = []*Divergence{}
		}
		writeJSON(w, divs)
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}/repro/{seed}", func(w http.ResponseWriter, r *http.Request) {
		seed, err := strconv.ParseInt(r.PathValue("seed"), 10, 64)
		if err != nil {
			http.Error(w, "bad seed", http.StatusBadRequest)
			return
		}
		src, err := e.Repro(r.PathValue("id"), seed)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(src))
	})

	mux.HandleFunc("GET /api/v1/corpus", func(w http.ResponseWriter, r *http.Request) {
		entries := e.Corpus().Entries()
		if entries == nil {
			entries = []*CorpusEntry{}
		}
		writeJSON(w, entries)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
