package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// Request body caps. Specs are small; heartbeat/complete bodies carry
// streamed journal entries (report lines plus shrunken repro sources), which
// are modest per item but batch up, so they get more headroom.
const (
	maxSpecBody  = 1 << 20
	maxEntryBody = 64 << 20
)

// Wire types of the distributed campaign protocol. journalEntry (state.go)
// is the entry wire format — the same shape the coordinator journals, so a
// worker streams exactly what lands on disk.

// leaseRequest is the /api/v1/lease body.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// shardMessage is the /api/v1/heartbeat and /api/v1/complete body: the lease
// identity plus the entries finished since the last message. Error marks the
// shard failed on the worker (complete only).
type shardMessage struct {
	Worker   string         `json:"worker"`
	Campaign string         `json:"campaign"`
	Shard    int            `json:"shard"`
	Token    uint64         `json:"token"`
	Entries  []journalEntry `json:"entries,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// heartbeatResponse acknowledges a renewal with the remaining TTL.
type heartbeatResponse struct {
	TTLMS int64 `json:"ttl_ms"`
}

// healthResponse is the /healthz document.
type healthResponse struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
}

// NewHandler wires the campaign HTTP/JSON API (stdlib net/http only):
//
//	POST /api/v1/campaigns                   submit a Spec, returns {"id": ...}
//	GET  /api/v1/campaigns                   list campaign statuses
//	GET  /api/v1/campaigns/{id}              one campaign's live status (per-shard
//	                                         lease assignment + age included)
//	GET  /api/v1/campaigns/{id}/report       merged report (JSONL; 409 until done)
//	GET  /api/v1/campaigns/{id}/divergences  divergence records
//	GET  /api/v1/campaigns/{id}/repro/{seed} shrunken reproducer (assembly)
//	GET  /api/v1/corpus                      deduplicated divergence corpus
//	POST /api/v1/lease                       worker pulls a shard lease (204: no work)
//	POST /api/v1/heartbeat                   renew a lease + stream finished entries
//	POST /api/v1/complete                    finish a shard (409: token fenced off)
//	GET  /healthz                            {"status":"ok","workers":N}, 503 draining
//
// Submissions and lease traffic during drain get 503 so a supervisor
// restarting the daemon can tell "retry later" from a bad request; workers
// back off and re-poll until the restarted coordinator re-grants the
// requeued shards.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if e.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, healthResponse{Status: "ok", Workers: e.WorkerCount()})
	})

	mux.HandleFunc("POST /api/v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		if e.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		spec := new(Spec)
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody)).Decode(spec); err != nil {
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				status = http.StatusRequestEntityTooLarge
			}
			http.Error(w, err.Error(), status)
			return
		}
		id, err := e.Submit(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id})
	})

	mux.HandleFunc("GET /api/v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, e.List())
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := e.Get(r.PathValue("id"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, s)
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s, ok := e.Get(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		if s.Status != StatusDone {
			http.Error(w, "campaign is "+s.Status+"; report not ready", http.StatusConflict)
			return
		}
		b, err := e.Report(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		w.Write(b)
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}/divergences", func(w http.ResponseWriter, r *http.Request) {
		divs, err := e.Divergences(r.PathValue("id"))
		if err != nil {
			http.NotFound(w, r)
			return
		}
		if divs == nil {
			divs = []*Divergence{}
		}
		writeJSON(w, divs)
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}/repro/{seed}", func(w http.ResponseWriter, r *http.Request) {
		seed, err := strconv.ParseInt(r.PathValue("seed"), 10, 64)
		if err != nil {
			http.Error(w, "bad seed", http.StatusBadRequest)
			return
		}
		src, err := e.Repro(r.PathValue("id"), seed)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(src))
	})

	mux.HandleFunc("GET /api/v1/corpus", func(w http.ResponseWriter, r *http.Request) {
		entries := e.Corpus().Entries()
		if entries == nil {
			entries = []*CorpusEntry{}
		}
		writeJSON(w, entries)
	})

	// --- distributed worker protocol ---

	mux.HandleFunc("POST /api/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		if e.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		var req leaseRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Worker == "" || req.Worker == localWorkerID {
			http.Error(w, "campaign: lease needs a non-reserved worker id", http.StatusBadRequest)
			return
		}
		grant, err := e.AcquireShard(req.Worker)
		if errors.Is(err, ErrNoWork) {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, grant)
	})

	mux.HandleFunc("POST /api/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if e.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		msg, ok := decodeShardMessage(w, r)
		if !ok {
			return
		}
		ttl, err := e.HeartbeatShard(msg.Worker, msg.Campaign, msg.Shard, msg.Token, msg.Entries)
		if errors.Is(err, ErrLeaseLost) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, heartbeatResponse{TTLMS: ttl.Milliseconds()})
	})

	mux.HandleFunc("POST /api/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		if e.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		msg, ok := decodeShardMessage(w, r)
		if !ok {
			return
		}
		err := e.CompleteShard(msg.Worker, msg.Campaign, msg.Shard, msg.Token, msg.Entries, msg.Error)
		if errors.Is(err, ErrLeaseLost) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]string{"status": "ok"})
	})

	return mux
}

func decodeShardMessage(w http.ResponseWriter, r *http.Request) (shardMessage, bool) {
	var msg shardMessage
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEntryBody)).Decode(&msg); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return msg, false
	}
	if msg.Worker == "" || msg.Campaign == "" {
		http.Error(w, "campaign: worker and campaign are required", http.StatusBadRequest)
		return msg, false
	}
	return msg, true
}

// writeJSON encodes v to a buffer first so an encode failure surfaces as a
// 500 instead of a silently truncated 200 body.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, "campaign: encode response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// HardenServer applies the timeout discipline every xtcampd listener gets:
// slowloris-resistant header reads, bounded request reads, and idle-
// connection reaping. Worker long-polls are not used by the protocol (lease
// misses return 204 immediately), so flat read timeouts are safe.
func HardenServer(srv *http.Server) {
	srv.ReadHeaderTimeout = 5 * time.Second
	srv.ReadTimeout = 60 * time.Second
	srv.IdleTimeout = 120 * time.Second
}
