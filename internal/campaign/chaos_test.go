package campaign

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xt910/internal/cliflags"
)

// chaosTransport injects network failure into a worker's HTTP client: a
// seeded per-request drop probability plus a hard partition window the test
// opens and closes. Dropped requests fail before reaching the coordinator —
// to the worker they are indistinguishable from a dead network.
type chaosTransport struct {
	inner http.RoundTripper

	mu          sync.Mutex
	rng         *rand.Rand
	dropP       float64
	partitioned atomic.Bool
}

type errDropped struct{}

func (errDropped) Error() string { return "chaos: request dropped" }

func (c *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if c.partitioned.Load() {
		return nil, errDropped{}
	}
	c.mu.Lock()
	drop := c.rng.Float64() < c.dropP
	c.mu.Unlock()
	if drop {
		return nil, errDropped{}
	}
	return c.inner.RoundTrip(req)
}

// blockRunner never finishes an item: it parks until the context dies, the
// in-process stand-in for a worker that is about to be SIGKILLed mid-shard.
type blockRunner struct{}

func (blockRunner) Run(ctx context.Context, spec *Spec, it Item) (ItemResult, error) {
	<-ctx.Done()
	return ItemResult{}, ctx.Err()
}

// slowRunner stretches every item past the point where a heartbeat-dropping
// worker's lease must expire mid-shard.
type slowRunner struct {
	inner Runner
	delay time.Duration
}

func (s slowRunner) Run(ctx context.Context, spec *Spec, it Item) (ItemResult, error) {
	select {
	case <-ctx.Done():
		return ItemResult{}, ctx.Err()
	case <-time.After(s.delay):
	}
	return s.inner.Run(ctx, spec, it)
}

// TestChaosByteIdenticalReport is the acceptance property of the distributed
// campaign protocol, exercised with real simulation work under -race:
//
//   - worker A leases a shard and is "SIGKILLed" mid-item (context cut, no
//     complete, no further heartbeats) — its lease expires and the shard
//     requeues with whatever entries it had streamed;
//   - worker B drops every heartbeat, so each lease it takes expires mid-
//     shard and its late /complete is fenced off with 409 — the live zombie
//     path;
//   - worker C is honest but sits behind a lossy link that also suffers a
//     full coordinator partition longer than the lease TTL mid-campaign;
//   - the coordinator runs with local execution disabled, so every item is
//     forced through the failure-riddled remote path.
//
// The merged report must still come out byte-identical to an unfailed
// single-process local run — at-least-once re-execution is invisible because
// re-runs are deterministic and the journals merge keep-first.
func TestChaosByteIdenticalReport(t *testing.T) {
	spec := &Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 8, Seed: 1}, Shards: 4, Segs: 10}

	// The oracle: the same campaign on a plain local engine, no failures.
	ref := runToReport(t, t.TempDir(), spec)

	const ttl = 300 * time.Millisecond
	e, err := Open(Options{StateDir: t.TempDir(), Jobs: 2, DisableLocal: true,
		LeaseTTL: ttl, Logf: t.Logf})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	// Worker A: leases, blocks mid-item, gets its process yanked.
	actx, akill := context.WithCancel(ctx)
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunWorker(actx, WorkerOptions{
			Coordinator: srv.URL, ID: "chaos-a", Jobs: 2, Runner: blockRunner{},
			Poll: 20 * time.Millisecond, Seed: 1, Logf: t.Logf,
			DropHeartbeat: func() bool { return true }, // silent while blocked
		})
	}()

	// Worker B: computes slowly enough that its silent lease always expires
	// before its /complete lands; every completion must be fenced off. Two
	// shards of zombie duty, then it retires.
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunWorker(ctx, WorkerOptions{
			Coordinator: srv.URL, ID: "chaos-b", Jobs: 1,
			Runner: slowRunner{inner: toolRunner{}, delay: ttl},
			Poll:   20 * time.Millisecond, Seed: 2, Logf: t.Logf,
			MaxShards:     2,
			DropHeartbeat: func() bool { return true },
		})
	}()

	// Worker C: honest executor behind a lossy, partitionable link.
	chaosC := &chaosTransport{inner: http.DefaultTransport,
		rng: rand.New(rand.NewSource(42)), dropP: 0.15}
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunWorker(ctx, WorkerOptions{
			Coordinator: srv.URL, ID: "chaos-c", Jobs: 2, Runner: toolRunner{},
			Client: &http.Client{Transport: chaosC, Timeout: 10 * time.Second},
			Poll:   20 * time.Millisecond, Seed: 3, Logf: t.Logf,
		})
	}()

	id, err := e.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Let the fleet grab shards, then kill A outright and partition C away
	// from the coordinator for longer than the lease TTL.
	time.Sleep(ttl / 2)
	akill()
	chaosC.partitioned.Store(true)
	time.Sleep(ttl + ttl/2)
	chaosC.partitioned.Store(false)

	s := waitStatus(t, e, id, StatusDone)
	if s.ItemsDone != s.Items {
		t.Fatalf("campaign done with %d/%d items", s.ItemsDone, s.Items)
	}
	got, err := e.Report(id)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if !bytes.Equal(ref, got) {
		t.Fatalf("chaos-run report differs from unfailed local run\n--- local ---\n%s--- chaos ---\n%s", ref, got)
	}

	cancel()
	wg.Wait()
}
