package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xt910/internal/cliflags"
)

// getJSON fetches url; when v is non-nil it decodes the body into v and
// closes it, otherwise the caller owns the (still open) body.
func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if v != nil {
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("GET %s: decode: %v", url, err)
			}
		}
	}
	return resp
}

func TestHTTPAPI(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{StateDir: dir, Jobs: 2,
		Runner: stubRunner{sigFor: func(seed int64) string {
			if seed == 2 {
				return "xreg/x7/mul"
			}
			return ""
		}}})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// healthz
	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// submit
	spec := &Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 4, Seed: 1}, Shards: 2}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	resp.Body.Close()
	if sub.ID == "" {
		t.Fatal("submit returned no id")
	}

	// invalid spec -> 400
	resp, _ = http.Post(srv.URL+"/api/v1/campaigns", "application/json",
		strings.NewReader(`{"tool":"warp"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// poll status to done
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st Status
		if resp := getJSON(t, srv.URL+"/api/v1/campaigns/"+sub.ID, &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d", resp.StatusCode)
		}
		if st.Status == StatusDone {
			if st.ItemsDone != 4 || st.Items != 4 || len(st.Shards) != 2 {
				t.Fatalf("unexpected final status: %+v", st)
			}
			break
		}
		if st.Status == StatusFailed {
			t.Fatalf("campaign failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never finished: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// list
	var list []Status
	getJSON(t, srv.URL+"/api/v1/campaigns", &list)
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("list: %+v", list)
	}

	// merged report: one line per seed, seed order
	resp = getJSON(t, srv.URL+"/api/v1/campaigns/"+sub.ID+"/report", nil)
	rep, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimRight(string(rep), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("report has %d lines, want 4:\n%s", len(lines), rep)
	}
	for i, ln := range lines {
		var row struct {
			Seed int64 `json:"seed"`
		}
		if err := json.Unmarshal([]byte(ln), &row); err != nil || row.Seed != int64(i+1) {
			t.Fatalf("report line %d wrong: %q (%v)", i, ln, err)
		}
	}

	// divergences
	var divs []*Divergence
	getJSON(t, srv.URL+"/api/v1/campaigns/"+sub.ID+"/divergences", &divs)
	if len(divs) != 1 || divs[0].Seed != 2 || divs[0].Signature != "xreg/x7/mul" {
		t.Fatalf("divergences: %+v", divs)
	}

	// repro
	resp = getJSON(t, srv.URL+"/api/v1/campaigns/"+sub.ID+"/repro/2", nil)
	src, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(src), "li x5, 2") {
		t.Fatalf("repro: status %d body %q", resp.StatusCode, src)
	}
	if resp := getJSON(t, srv.URL+"/api/v1/campaigns/"+sub.ID+"/repro/3", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("repro for clean seed: status %d, want 404", resp.StatusCode)
	}

	// corpus
	var corpus []*CorpusEntry
	getJSON(t, srv.URL+"/api/v1/corpus", &corpus)
	if len(corpus) != 1 || corpus[0].Signature != "xreg/x7/mul" || corpus[0].Campaign != sub.ID {
		t.Fatalf("corpus: %+v", corpus)
	}

	// unknown campaign -> 404
	if resp := getJSON(t, srv.URL+"/api/v1/campaigns/c9999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: status %d", resp.StatusCode)
	}
}

func TestHTTPDrainRejectsSubmissions(t *testing.T) {
	e, err := Open(Options{StateDir: t.TempDir(),
		Runner: stubRunner{sigFor: func(int64) string { return "" }}})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	e.Close() // drain

	spec, _ := json.Marshal(&Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 1}})
	resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
}

// TestReportNotReady pins the 409 until the campaign finishes.
func TestReportNotReady(t *testing.T) {
	gate := &gateRunner{inner: stubRunner{sigFor: func(int64) string { return "" }}, allow: 0}
	e, err := Open(Options{StateDir: t.TempDir(), Jobs: 1, Runner: gate})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	id, err := e.Submit(&Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 2, Seed: 1}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	resp := getJSON(t, fmt.Sprintf("%s/api/v1/campaigns/%s/report", srv.URL, id), nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("report before done: status %d, want 409", resp.StatusCode)
	}
}
