package campaign

import (
	"context"
	"encoding/json"
	"fmt"

	"xt910/internal/bench"
	"xt910/internal/cosim"
	"xt910/internal/inject"
	"xt910/internal/sched"
)

// ItemResult is one finished work item: the JSON line it contributes to the
// merged report (no trailing newline) plus the divergence payload, when the
// item found one, for the report/repro queries and the corpus.
type ItemResult struct {
	Line json.RawMessage
	Div  *Divergence
}

// Divergence is the queryable record of one diverging item: the root-cause
// signature (cosim.Result.Signature), the full first-mismatch report and the
// minimized reproducer when the tool produced one.
type Divergence struct {
	Seed      int64  `json:"seed"`
	Signature string `json:"signature"`
	Kind      string `json:"kind"`
	Modes     string `json:"modes,omitempty"`
	Report    string `json:"report"`
	Shrunk    string `json:"shrunk,omitempty"`
}

// Runner executes one campaign work item. The production implementation is
// toolRunner; tests substitute gated or synthetic runners through
// Options.Runner.
type Runner interface {
	Run(ctx context.Context, spec *Spec, it Item) (ItemResult, error)
}

// toolRunner runs items in-process with the same code paths the CLIs use, so
// a campaign's merged fuzz report is byte-identical to `xtfuzz -json` over
// the same seed range.
type toolRunner struct{}

func (toolRunner) Run(ctx context.Context, spec *Spec, it Item) (ItemResult, error) {
	switch spec.Tool {
	case "fuzz":
		return runFuzzItem(ctx, spec, it)
	case "inject":
		return runInjectItem(ctx, spec, it)
	case "bench":
		return runBenchItem(ctx, spec, it)
	}
	return ItemResult{}, fmt.Errorf("campaign: unknown tool %q", spec.Tool)
}

func runFuzzItem(ctx context.Context, spec *Spec, it Item) (ItemResult, error) {
	modes, err := spec.CosimModes()
	if err != nil {
		return ItemResult{}, err
	}
	opts := cosim.Options{MaxCycles: spec.Cycles, Modes: modes, Harts: spec.Harts,
		SeedTimeout: spec.SeedTimeout()}
	if err := opts.Validate(); err != nil {
		return ItemResult{}, err
	}
	fr := cosim.FuzzWatched(ctx, it.Seed, spec.Segs, opts)
	if fr.Err != nil {
		return ItemResult{}, fr.Err
	}
	// A drain-cancelled run looks like a watchdog timeout; report the
	// cancellation instead of journaling a bogus "timeout" row — the item
	// reruns cleanly after restart.
	if fr.TimedOut && ctx.Err() != nil {
		return ItemResult{}, ctx.Err()
	}
	sched.AddCycles(ctx, fr.Result.Cycles)
	sched.AddInstrs(ctx, fr.Result.Commits)
	line, err := json.Marshal(cosim.NewSeedRecord(fr))
	if err != nil {
		return ItemResult{}, err
	}
	res := ItemResult{Line: line}
	if fr.Diverged {
		res.Div = &Divergence{
			Seed:      fr.Seed,
			Signature: fr.Result.Signature(),
			Kind:      fr.Result.Kind,
			Modes:     modes.String(),
			Report:    fr.Result.Report,
			Shrunk:    fr.Shrunk,
		}
	}
	return res, nil
}

// injectRecord is the merged-report row of one fault-injection seed: the
// seed's control-run verdict and every classified fault outcome.
type injectRecord struct {
	Seed            int64                `json:"seed"`
	ControlFailures []string             `json:"control_failures,omitempty"`
	Faults          []inject.FaultResult `json:"faults"`
}

func runInjectItem(ctx context.Context, spec *Spec, it Item) (ItemResult, error) {
	rep, err := inject.RunCampaign(ctx, inject.Options{
		Seeds:         []int64{it.Seed},
		FaultsPerSeed: spec.FaultsPerSeed,
		Segs:          spec.Segs,
		Jobs:          1, // one item = one seed; the shard pool provides the width
		Timeout:       spec.SeedTimeout(),
		MaxCycles:     spec.Cycles,
	})
	if err != nil {
		if ctx.Err() != nil {
			return ItemResult{}, ctx.Err()
		}
		return ItemResult{}, err
	}
	rec := injectRecord{Seed: it.Seed, ControlFailures: rep.ControlFailures, Faults: rep.Results}
	if rec.Faults == nil {
		rec.Faults = []inject.FaultResult{}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return ItemResult{}, err
	}
	return ItemResult{Line: line}, nil
}

// benchRecord is the merged-report row of one benchmark experiment. Wall
// times are deliberately absent: every field derives from simulated state,
// so the row is deterministic.
type benchRecord struct {
	ID     string `json:"id"`
	Result any    `json:"result"`
}

func runBenchItem(ctx context.Context, spec *Spec, it Item) (ItemResult, error) {
	e, ok := bench.Find(it.Exp)
	if !ok {
		return ItemResult{}, fmt.Errorf("campaign: unknown experiment %q", it.Exp)
	}
	res, err := e.Fn(ctx, bench.Options{Quick: spec.Quick, Jobs: 1, Timeout: spec.SeedTimeout()})
	if err != nil {
		if ctx.Err() != nil {
			return ItemResult{}, ctx.Err()
		}
		return ItemResult{}, err
	}
	line, err := json.Marshal(benchRecord{ID: it.Exp, Result: res})
	if err != nil {
		return ItemResult{}, err
	}
	return ItemResult{Line: line}, nil
}
