package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xt910/internal/cliflags"
	"xt910/internal/retry"
)

// mkEntry builds a synthetic journal entry for engine-level protocol tests.
func mkEntry(idx int, seed int64) journalEntry {
	line, _ := json.Marshal(map[string]any{"seed": seed, "status": "ok"})
	return journalEntry{Index: idx, Line: line, Instrs: 100}
}

// shardGrantFor acquires leases until one lands on the wanted shard,
// completing unwanted grants is not possible (that would need their items),
// so it just collects; callers use small shard counts.
func acquireAll(t *testing.T, e *Engine, worker string, n int) map[int]*LeaseGrant {
	t.Helper()
	out := make(map[int]*LeaseGrant)
	for i := 0; i < n; i++ {
		g, err := e.AcquireShard(worker)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		out[g.Shard] = g
	}
	return out
}

// TestLeaseProtocolStreamingAndFencing drives the engine half of the worker
// protocol directly: entries streamed over heartbeats are durable before the
// worker dies, the dead worker's token is fenced off everywhere, and the
// re-granted lease reports exactly the already-journaled items as done.
func TestLeaseProtocolStreamingAndFencing(t *testing.T) {
	e, err := Open(Options{StateDir: t.TempDir(), Jobs: 1, DisableLocal: true,
		LeaseTTL: 150 * time.Millisecond,
		Runner:   stubRunner{sigFor: func(int64) string { return "" }}})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	id, err := e.Submit(&Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 6, Seed: 1}, Shards: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	grants := acquireAll(t, e, "wA", 2)
	g0 := grants[0]
	if g0 == nil || len(g0.Items) != 3 || g0.Spec.Tool != "fuzz" {
		t.Fatalf("grant for shard 0 malformed: %+v", g0)
	}
	if _, err := e.AcquireShard("wB"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("third acquire with 2 shards leased: %v, want ErrNoWork", err)
	}

	// Stream two of shard 0's three items over heartbeats.
	if _, err := e.HeartbeatShard("wA", id, 0, g0.Token,
		[]journalEntry{mkEntry(g0.Items[0].Index, g0.Items[0].Seed)}); err != nil {
		t.Fatalf("heartbeat 1: %v", err)
	}
	if _, err := e.HeartbeatShard("wA", id, 0, g0.Token,
		[]journalEntry{mkEntry(g0.Items[1].Index, g0.Items[1].Seed)}); err != nil {
		t.Fatalf("heartbeat 2: %v", err)
	}

	// Worker dies: silence past the TTL. (A heartbeat poll would renew the
	// lease and keep it alive — exactly the protocol working as designed —
	// so go quiet instead.) The dispatcher requeues both shards; the zombie
	// token is then fenced off on every verb.
	time.Sleep(3 * 150 * time.Millisecond)
	if _, err := e.HeartbeatShard("wA", id, 0, g0.Token, nil); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie heartbeat after TTL: %v, want ErrLeaseLost", err)
	}
	if err := e.CompleteShard("wA", id, 0, g0.Token, nil, ""); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie complete: %v, want ErrLeaseLost", err)
	}

	// Re-grant: the streamed items are already done; only the third remains.
	regrants := acquireAll(t, e, "wB", 2)
	r0 := regrants[0]
	if r0 == nil {
		t.Fatalf("shard 0 not re-granted: %+v", regrants)
	}
	if r0.Token <= g0.Token {
		t.Fatalf("re-grant token %d not above zombie token %d", r0.Token, g0.Token)
	}
	if len(r0.Done) != 2 {
		t.Fatalf("re-grant done list %v, want the 2 streamed items", r0.Done)
	}

	// A duplicate of an already-streamed item (at-least-once re-run) merges
	// keep-first; completing both shards finishes the campaign.
	var remaining []journalEntry
	for _, it := range r0.Items {
		remaining = append(remaining, mkEntry(it.Index, it.Seed)) // includes dups
	}
	if err := e.CompleteShard("wB", id, 0, r0.Token, remaining, ""); err != nil {
		t.Fatalf("complete shard 0: %v", err)
	}
	r1 := regrants[1]
	if r1 == nil {
		t.Fatalf("shard 1 not re-granted: %+v", regrants)
	}
	var e1 []journalEntry
	for _, it := range r1.Items {
		e1 = append(e1, mkEntry(it.Index, it.Seed))
	}
	if err := e.CompleteShard("wB", id, 1, r1.Token, e1, ""); err != nil {
		t.Fatalf("complete shard 1: %v", err)
	}

	s := waitStatus(t, e, id, StatusDone)
	if s.ItemsDone != 6 {
		t.Fatalf("items done %d, want 6", s.ItemsDone)
	}
	rep, err := e.Report(id)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	lines := bytes.Split(bytes.TrimRight(rep, "\n"), []byte("\n"))
	if len(lines) != 6 {
		t.Fatalf("report has %d lines, want 6:\n%s", len(lines), rep)
	}
	for i, ln := range lines {
		var row struct {
			Seed int64 `json:"seed"`
		}
		if err := json.Unmarshal(ln, &row); err != nil || row.Seed != int64(i+1) {
			t.Fatalf("report line %d = %q, want seed %d", i, ln, i+1)
		}
	}
}

// TestCompleteWithMissingItemsRequeues: a complete whose entries do not
// cover the shard (a buggy worker) must not wedge the campaign — the shard
// requeues and a later, honest completion finishes it.
func TestCompleteWithMissingItemsRequeues(t *testing.T) {
	e, err := Open(Options{StateDir: t.TempDir(), Jobs: 1, DisableLocal: true,
		LeaseTTL: time.Minute,
		Runner:   stubRunner{sigFor: func(int64) string { return "" }}})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	id, err := e.Submit(&Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 3, Seed: 1}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	g, err := e.AcquireShard("wA")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Only 1 of 3 items: the completion must be refused and the shard
	// requeued under a fresh token.
	if err := e.CompleteShard("wA", id, g.Shard, g.Token,
		[]journalEntry{mkEntry(0, 1)}, ""); err == nil {
		t.Fatal("incomplete complete accepted")
	}
	g2, err := e.AcquireShard("wB")
	if err != nil {
		t.Fatalf("re-acquire after bogus complete: %v", err)
	}
	if len(g2.Done) != 1 {
		t.Fatalf("re-grant done %v, want the 1 journaled item", g2.Done)
	}
	var rest []journalEntry
	for _, it := range g2.Items {
		if it.Index != 0 {
			rest = append(rest, mkEntry(it.Index, it.Seed))
		}
	}
	if err := e.CompleteShard("wB", id, g2.Shard, g2.Token, rest, ""); err != nil {
		t.Fatalf("honest complete: %v", err)
	}
	waitStatus(t, e, id, StatusDone)
}

// TestWorkerErrorFailsCampaign: a worker-reported shard error under a valid
// token fails the campaign, matching local item-error semantics.
func TestWorkerErrorFailsCampaign(t *testing.T) {
	e, err := Open(Options{StateDir: t.TempDir(), Jobs: 1, DisableLocal: true,
		LeaseTTL: time.Minute,
		Runner:   stubRunner{sigFor: func(int64) string { return "" }}})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	id, err := e.Submit(&Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 2, Seed: 1}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	g, err := e.AcquireShard("wA")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if err := e.CompleteShard("wA", id, g.Shard, g.Token, nil, "runner exploded"); err != nil {
		t.Fatalf("error complete: %v", err)
	}
	s := waitStatus(t, e, id, StatusFailed)
	if !strings.Contains(s.Error, "runner exploded") {
		t.Fatalf("campaign error %q missing worker message", s.Error)
	}
	if _, err := e.AcquireShard("wB"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("failed campaign still dispatching: %v", err)
	}
}

// TestWorkerEndToEndHTTP runs a real RunWorker loop against the real HTTP
// handler: the worker drains the whole campaign remotely (local execution
// disabled) and the merged report is byte-identical to a plain local run.
func TestWorkerEndToEndHTTP(t *testing.T) {
	spec := &Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 6, Seed: 1}, Shards: 3}
	stub := stubRunner{sigFor: func(seed int64) string {
		if seed == 3 {
			return "xreg/x9/div"
		}
		return ""
	}}

	// Reference: unfailed local single-process run.
	refDir := t.TempDir()
	refEng, err := Open(Options{StateDir: refDir, Jobs: 2, Runner: stub})
	if err != nil {
		t.Fatalf("open ref: %v", err)
	}
	refID, err := refEng.Submit(spec)
	if err != nil {
		t.Fatalf("submit ref: %v", err)
	}
	waitStatus(t, refEng, refID, StatusDone)
	ref, err := refEng.Report(refID)
	if err != nil {
		t.Fatalf("ref report: %v", err)
	}
	refEng.Close()

	// Distributed: pure coordinator + one HTTP worker.
	e, err := Open(Options{StateDir: t.TempDir(), Jobs: 2, DisableLocal: true,
		LeaseTTL: 500 * time.Millisecond, Runner: stub})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunWorker(ctx, WorkerOptions{
			Coordinator: srv.URL, ID: "w-e2e", Jobs: 2, Runner: stub,
			Poll: 20 * time.Millisecond, Seed: 7, Logf: t.Logf,
		})
	}()

	id, err := e.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitStatus(t, e, id, StatusDone)

	// While the worker is still polling, healthz-side liveness sees it and
	// /progress reported its ID on the leased shards at some point; check
	// the worker count now (it polled within the TTL).
	if n := e.WorkerCount(); n != 1 {
		t.Fatalf("live workers %d, want 1", n)
	}

	got, err := e.Report(id)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if !bytes.Equal(ref, got) {
		t.Fatalf("worker-run report differs from local run\nlocal:\n%s\nworker:\n%s", ref, got)
	}

	// Divergences flowed through the wire into the corpus.
	divs, err := e.Divergences(id)
	if err != nil || len(divs) != 1 || divs[0].Seed != 3 {
		t.Fatalf("divergences: %v %+v", err, divs)
	}
	if entries := e.Corpus().Entries(); len(entries) != 1 || entries[0].Signature != "xreg/x9/div" {
		t.Fatalf("corpus: %+v", entries)
	}

	cancel()
	wg.Wait()
}

// TestLocalFallbackDefersToLiveWorkers pins the degradation contract both
// ways: while a remote worker is live the coordinator does not execute
// shards itself, and once the worker goes silent past the TTL the local
// executor picks the requeued shards up and finishes the campaign.
func TestLocalFallbackDefersToLiveWorkers(t *testing.T) {
	runnerCalls := make(chan int64, 64)
	counting := stubRunner{sigFor: func(int64) string { return "" }}
	e, err := Open(Options{StateDir: t.TempDir(), Jobs: 1,
		LeaseTTL:   200 * time.Millisecond,
		LocalGrace: 300 * time.Millisecond,
		Runner: runnerFunc(func(ctx context.Context, spec *Spec, it Item) (ItemResult, error) {
			runnerCalls <- it.Seed
			return counting.Run(ctx, spec, it)
		})})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()

	id, err := e.Submit(&Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 4, Seed: 1}, Shards: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// A remote worker leases shard 0 and goes silent. While it is live
	// (within TTL), the local executor must stay out — the only permissible
	// local activity begins after expiry.
	g, err := e.AcquireShard("wGhost")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	time.Sleep(100 * time.Millisecond) // half the TTL: worker still "live"
	select {
	case seed := <-runnerCalls:
		t.Fatalf("local executor ran seed %d while a remote worker was live", seed)
	default:
	}
	_ = g
	// Past the TTL the ghost's lease expires, liveness lapses, and the
	// local executor rescues the whole campaign.
	waitStatus(t, e, id, StatusDone)
	rep, err := e.Report(id)
	if err != nil || len(rep) == 0 {
		t.Fatalf("report after rescue: %v", err)
	}
}

// runnerFunc adapts a function to the Runner interface.
type runnerFunc func(ctx context.Context, spec *Spec, it Item) (ItemResult, error)

func (f runnerFunc) Run(ctx context.Context, spec *Spec, it Item) (ItemResult, error) {
	return f(ctx, spec, it)
}

// TestProgressShowsLeases: /progress (Engine.Get) reports per-shard worker
// assignment, lease age and state, so an operator can tell a stuck shard
// from a slow one.
func TestProgressShowsLeases(t *testing.T) {
	e, err := Open(Options{StateDir: t.TempDir(), Jobs: 1, DisableLocal: true,
		LeaseTTL: time.Minute,
		Runner:   stubRunner{sigFor: func(int64) string { return "" }}})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	id, err := e.Submit(&Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 4, Seed: 1}, Shards: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s, _ := e.Get(id)
	for _, sh := range s.Shards {
		if sh.State != ShardPending {
			t.Fatalf("shard %d state %q before any lease, want pending", sh.Shard, sh.State)
		}
	}
	g, err := e.AcquireShard("wOp")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	s, _ = e.Get(id)
	var leasedSeen bool
	for _, sh := range s.Shards {
		if sh.Shard == g.Shard {
			leasedSeen = true
			if sh.State != ShardLeased || sh.Worker != "wOp" || sh.Token != g.Token {
				t.Fatalf("leased shard status wrong: %+v", sh)
			}
			if sh.LeaseAgeMS <= 0 {
				t.Fatalf("lease age %dms, want > 0", sh.LeaseAgeMS)
			}
		}
	}
	if !leasedSeen {
		t.Fatal("leased shard missing from progress")
	}

	// Finish it: state flips to done and the lease fields clear.
	var entries []journalEntry
	for _, it := range g.Items {
		entries = append(entries, mkEntry(it.Index, it.Seed))
	}
	if err := e.CompleteShard("wOp", id, g.Shard, g.Token, entries, ""); err != nil {
		t.Fatalf("complete: %v", err)
	}
	s, _ = e.Get(id)
	for _, sh := range s.Shards {
		if sh.Shard == g.Shard && (sh.State != ShardDone || sh.Worker != "") {
			t.Fatalf("completed shard status wrong: %+v", sh)
		}
	}
}

// TestHTTPLeaseEndpoints drives the wire surface: lease grant JSON, 204 on
// empty queue, heartbeat renewal, fenced complete as 409, and the healthz
// worker count.
func TestHTTPLeaseEndpoints(t *testing.T) {
	e, err := Open(Options{StateDir: t.TempDir(), Jobs: 1, DisableLocal: true,
		LeaseTTL: time.Minute,
		Runner:   stubRunner{sigFor: func(int64) string { return "" }}})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	post := func(path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}

	// Empty queue: 204.
	if resp, _ := post("/api/v1/lease", `{"worker":"w1"}`); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("lease on empty queue: %d, want 204", resp.StatusCode)
	}
	// Reserved/missing worker IDs: 400.
	if resp, _ := post("/api/v1/lease", `{"worker":"local"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reserved worker id: %d, want 400", resp.StatusCode)
	}
	if resp, _ := post("/api/v1/lease", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing worker id: %d, want 400", resp.StatusCode)
	}

	id, err := e.Submit(&Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 2, Seed: 5}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	resp, body := post("/api/v1/lease", `{"worker":"w1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease: %d: %s", resp.StatusCode, body)
	}
	var grant LeaseGrant
	if err := json.Unmarshal([]byte(body), &grant); err != nil {
		t.Fatalf("grant decode: %v", err)
	}
	if grant.Campaign != id || grant.Token == 0 || grant.TTLMS <= 0 ||
		len(grant.Items) != 2 || grant.Spec == nil || grant.Spec.Seed != 5 {
		t.Fatalf("grant malformed: %+v", grant)
	}

	// Heartbeat with one streamed entry.
	hb := fmt.Sprintf(`{"worker":"w1","campaign":"%s","shard":0,"token":%d,"entries":[{"i":0,"line":{"seed":5,"status":"ok"}}]}`,
		id, grant.Token)
	if resp, body := post("/api/v1/heartbeat", hb); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, "ttl_ms") {
		t.Fatalf("heartbeat: %d %s", resp.StatusCode, body)
	}

	// Fenced verbs: bogus token gets 409.
	bogus := fmt.Sprintf(`{"worker":"w2","campaign":"%s","shard":0,"token":%d}`, id, grant.Token+999)
	if resp, _ := post("/api/v1/heartbeat", bogus); resp.StatusCode != http.StatusConflict {
		t.Fatalf("bogus heartbeat: %d, want 409", resp.StatusCode)
	}
	if resp, _ := post("/api/v1/complete", bogus); resp.StatusCode != http.StatusConflict {
		t.Fatalf("bogus complete: %d, want 409", resp.StatusCode)
	}

	// Healthz counts the live worker.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || health.Workers < 1 {
		t.Fatalf("healthz: %+v, want ok with >=1 worker", health)
	}

	// Honest complete finishes the campaign over the wire.
	done := fmt.Sprintf(`{"worker":"w1","campaign":"%s","shard":0,"token":%d,"entries":[{"i":0,"line":{"seed":5,"status":"ok"}},{"i":1,"line":{"seed":6,"status":"ok"}}]}`,
		id, grant.Token)
	if resp, body := post("/api/v1/complete", done); resp.StatusCode != http.StatusOK {
		t.Fatalf("complete: %d %s", resp.StatusCode, body)
	}
	waitStatus(t, e, id, StatusDone)
}

// TestWorkerReportsItemErrorOverHTTP drives a deterministically failing item
// through the full RunWorker loop: the error must ride /complete and fail the
// campaign, matching the local executor's semantics. Regression: the worker
// once mistook its own post-run cancel for a fencing abandon and never
// reported item errors, leaving the shard in an expiry/requeue loop forever.
func TestWorkerReportsItemErrorOverHTTP(t *testing.T) {
	stub := stubRunner{sigFor: func(int64) string { return "" }}
	e, err := Open(Options{StateDir: t.TempDir(), Jobs: 1, DisableLocal: true,
		LeaseTTL: 500 * time.Millisecond, Runner: stub})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	failing := runnerFunc(func(ctx context.Context, spec *Spec, it Item) (ItemResult, error) {
		if it.Seed == 2 {
			return ItemResult{}, errors.New("runner exploded on seed 2")
		}
		return stub.Run(ctx, spec, it)
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunWorker(ctx, WorkerOptions{
			Coordinator: srv.URL, ID: "w-itemerr", Jobs: 1, Runner: failing,
			Poll: 20 * time.Millisecond, Seed: 11, Logf: t.Logf,
		})
	}()

	id, err := e.Submit(&Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 4, Seed: 1}, Shards: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s := waitStatus(t, e, id, StatusFailed)
	if !strings.Contains(s.Error, "runner exploded") {
		t.Fatalf("campaign error %q missing the worker's item error", s.Error)
	}
	cancel()
	wg.Wait()
}

// TestSplitEntryBatches pins the batching that keeps worker uploads under
// the coordinator's request cap: batches respect the size limit, preserve
// order, drop nothing, and an empty input still yields the one empty batch
// that carries a bare lease renewal.
func TestSplitEntryBatches(t *testing.T) {
	if got := splitEntryBatches(nil, 100); len(got) != 1 || got[0] != nil {
		t.Fatalf("empty input: %v, want one empty batch", got)
	}

	var entries []journalEntry
	for i := 0; i < 10; i++ {
		entries = append(entries, mkEntry(i, int64(i)))
	}
	one, _ := json.Marshal(entries[0])
	limit := 3 * (len(one) + 1) // ~3 entries per batch

	batches := splitEntryBatches(entries, limit)
	if len(batches) < 3 {
		t.Fatalf("10 entries under a 3-entry budget split into %d batches", len(batches))
	}
	var flat []journalEntry
	for _, b := range batches {
		size := 0
		for _, e := range b {
			enc, _ := json.Marshal(e)
			size += len(enc) + 1
		}
		if size > limit {
			t.Fatalf("batch of %d entries encodes to %d bytes, over the %d limit", len(b), size, limit)
		}
		flat = append(flat, b...)
	}
	if len(flat) != len(entries) {
		t.Fatalf("batches hold %d entries, want %d", len(flat), len(entries))
	}
	for i := range flat {
		if flat[i].Index != entries[i].Index {
			t.Fatalf("entry %d reordered: got index %d", i, flat[i].Index)
		}
	}
	if got := flattenBatches(batches); len(got) != len(entries) || got[0].Index != 0 {
		t.Fatalf("flattenBatches: %d entries", len(got))
	}

	// One entry over the limit still travels (its own batch).
	big := splitEntryBatches(entries[:1], 1)
	if len(big) != 1 || len(big[0]) != 1 {
		t.Fatalf("oversized single entry: %v", big)
	}
}

// TestBackoffDelayExhaustedFallsBackToPoll: a caller-supplied bounded retry
// policy must not make the lease loop spin hot once its attempt budget is
// spent — the worker holds at the poll cadence instead.
func TestBackoffDelayExhaustedFallsBackToPoll(t *testing.T) {
	opts := WorkerOptions{Poll: 123 * time.Millisecond,
		Retry: retry.Policy{Base: 10 * time.Millisecond, Attempts: 1}}
	w := &worker{opts: opts, backoff: retry.New(opts.Retry, 1)}
	if d := w.backoffDelay(); d != 10*time.Millisecond {
		t.Fatalf("first delay %v, want the policy base", d)
	}
	for i := 0; i < 3; i++ {
		if d := w.backoffDelay(); d != opts.Poll {
			t.Fatalf("exhausted delay %v, want poll interval %v", d, opts.Poll)
		}
	}
}
