package campaign

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The lease registry is the coordinator's dispatch core: every unfinished
// shard of every admitted campaign is in exactly one of three states —
// pending (queued FIFO), leased (held by one worker under a time-bounded
// lease) or done — and the transitions are serialized under one mutex, which
// is what makes a double lease structurally impossible. Leases carry a
// fencing token drawn from a strictly-increasing persistent counter: a worker
// that loses its lease (missed heartbeats, coordinator restart) can never
// pass a later validity check, because any re-grant of the shard carries a
// strictly larger token and validation demands exact equality.
//
// At-least-once execution is safe on top of this because shard journals
// dedup keep-first and every item's report line is a deterministic function
// of the manifest — a re-run of a lost shard re-produces byte-identical
// lines, so whichever copy lands first is the one true record. Fencing is
// not what protects the report (determinism is); fencing protects the
// *bookkeeping*: only the current leaseholder may mark a shard complete, so
// a zombie's partial `/complete` can never freeze an unfinished shard as
// done.

// ErrLeaseLost is returned to a worker whose token no longer matches the
// shard's current lease: the lease expired and was (or will be) re-granted.
// The worker must abandon the shard and request a fresh lease.
var ErrLeaseLost = errors.New("campaign: lease lost (token fenced off)")

// ErrNoWork is returned by Acquire when no shard is pending.
var ErrNoWork = errors.New("campaign: no shard pending")

// shardRef names one shard of one campaign.
type shardRef struct {
	Campaign string
	Shard    int
}

func (r shardRef) String() string { return fmt.Sprintf("%s/shard%d", r.Campaign, r.Shard) }

// lease is one live grant.
type lease struct {
	ref     shardRef
	worker  string
	token   uint64
	granted time.Time
	expires time.Time
}

// leaseRegistry tracks pending shards and live leases across all campaigns.
type leaseRegistry struct {
	ttl   time.Duration
	now   func() time.Time
	fence *fenceCounter

	mu      sync.Mutex
	pending []shardRef          // FIFO dispatch order
	queued  map[shardRef]bool   // membership mirror of pending
	leased  map[shardRef]*lease // at most one live lease per shard
}

func newLeaseRegistry(ttl time.Duration, now func() time.Time, fence *fenceCounter) *leaseRegistry {
	if now == nil {
		now = time.Now
	}
	return &leaseRegistry{
		ttl:    ttl,
		now:    now,
		fence:  fence,
		queued: make(map[shardRef]bool),
		leased: make(map[shardRef]*lease),
	}
}

// Enqueue queues a shard for dispatch. A shard already pending or leased is
// left alone (Enqueue is idempotent, so resume paths can re-register freely).
func (lr *leaseRegistry) Enqueue(ref shardRef) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if lr.queued[ref] || lr.leased[ref] != nil {
		return
	}
	lr.pending = append(lr.pending, ref)
	lr.queued[ref] = true
}

// Acquire expires stale leases, then grants the oldest pending shard to the
// worker under a fresh lease. ErrNoWork when nothing is pending.
func (lr *leaseRegistry) Acquire(worker string) (*lease, error) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.expireLocked()
	if len(lr.pending) == 0 {
		return nil, ErrNoWork
	}
	ref := lr.pending[0]
	lr.pending = lr.pending[1:]
	delete(lr.queued, ref)
	if lr.leased[ref] != nil {
		// Structurally unreachable: a shard is never both pending and
		// leased. Guarded anyway — the chaos suite asserts it stays that
		// way.
		return nil, fmt.Errorf("campaign: shard %s already leased (invariant breach)", ref)
	}
	now := lr.now()
	l := &lease{ref: ref, worker: worker, token: lr.fence.Next(),
		granted: now, expires: now.Add(lr.ttl)}
	lr.leased[ref] = l
	return l, nil
}

// Renew extends the lease iff token exactly matches the shard's current
// live lease. Anything else — expired, re-granted, never granted, completed —
// is ErrLeaseLost.
func (lr *leaseRegistry) Renew(ref shardRef, token uint64) (time.Duration, error) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.expireLocked()
	l := lr.leased[ref]
	if l == nil || l.token != token {
		return 0, ErrLeaseLost
	}
	l.expires = lr.now().Add(lr.ttl)
	return lr.ttl, nil
}

// Complete releases the lease iff token matches, removing the shard from the
// registry entirely (the engine marks it done). A stale token is fenced off
// with ErrLeaseLost.
func (lr *leaseRegistry) Complete(ref shardRef, token uint64) error {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.expireLocked()
	l := lr.leased[ref]
	if l == nil || l.token != token {
		return ErrLeaseLost
	}
	delete(lr.leased, ref)
	return nil
}

// Holds reports whether token is the shard's current live lease token
// (heartbeat-entry application checks this before journaling).
func (lr *leaseRegistry) Holds(ref shardRef, token uint64) bool {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.expireLocked()
	l := lr.leased[ref]
	return l != nil && l.token == token
}

// ExpireStale requeues every shard whose lease deadline has passed and
// returns the expired leases (for logging).
func (lr *leaseRegistry) ExpireStale() []*lease {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.expireLocked()
}

func (lr *leaseRegistry) expireLocked() []*lease {
	now := lr.now()
	var expired []*lease
	for ref, l := range lr.leased {
		if now.After(l.expires) {
			expired = append(expired, l)
			delete(lr.leased, ref)
			if !lr.queued[ref] {
				lr.pending = append(lr.pending, ref)
				lr.queued[ref] = true
			}
		}
	}
	return expired
}

// Remove drops every shard of a campaign (failed or completed campaigns stop
// dispatching; in-flight workers get ErrLeaseLost on their next call).
func (lr *leaseRegistry) Remove(campaignID string) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	kept := lr.pending[:0]
	for _, ref := range lr.pending {
		if ref.Campaign == campaignID {
			delete(lr.queued, ref)
			continue
		}
		kept = append(kept, ref)
	}
	lr.pending = kept
	for ref := range lr.leased {
		if ref.Campaign == campaignID {
			delete(lr.leased, ref)
		}
	}
}

// Requeue returns a leased shard to the pending queue (local drain path:
// the engine gives the shard back rather than letting the lease age out).
func (lr *leaseRegistry) Requeue(ref shardRef, token uint64) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	l := lr.leased[ref]
	if l == nil || l.token != token {
		return
	}
	delete(lr.leased, ref)
	if !lr.queued[ref] {
		lr.pending = append(lr.pending, ref)
		lr.queued[ref] = true
	}
}

// Pending reports how many shards await dispatch.
func (lr *leaseRegistry) Pending() int {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return len(lr.pending)
}

// leaseInfo is the /progress view of one live lease.
type leaseInfo struct {
	Worker  string
	Token   uint64
	Age     time.Duration
	Expires time.Time
}

// Info returns the live lease on a shard, if any.
func (lr *leaseRegistry) Info(ref shardRef) (leaseInfo, bool) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	l := lr.leased[ref]
	if l == nil {
		return leaseInfo{}, false
	}
	return leaseInfo{Worker: l.worker, Token: l.token,
		Age: lr.now().Sub(l.granted), Expires: l.expires}, true
}

// fenceCounter issues strictly-increasing fencing tokens that survive
// coordinator restarts. Tokens are reserved from disk in blocks: the file
// holds the upper bound of every token ever *reservable*, so a crash loses
// at most the unissued remainder of the current block and can never reissue
// a token an old worker might still hold. One small file write per
// fenceBlock grants — in practice once per boot.
type fenceCounter struct {
	mu       sync.Mutex
	path     string
	next     uint64
	reserved uint64
}

const fenceBlock = 1 << 20

func openFence(path string) (*fenceCounter, error) {
	f := &fenceCounter{path: path}
	b, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		f.next = 1 // token 0 never issued: zero-valued requests always fence off
	case err != nil:
		return nil, err
	default:
		n, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
		if perr != nil {
			return nil, fmt.Errorf("campaign: fence file %s: %w", path, perr)
		}
		f.next = n
	}
	if err := f.reserveLocked(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *fenceCounter) reserveLocked() error {
	f.reserved = f.next + fenceBlock
	if err := os.MkdirAll(filepath.Dir(f.path), 0o755); err != nil {
		return err
	}
	return writeAtomic(f.path, []byte(strconv.FormatUint(f.reserved, 10)+"\n"))
}

// Next returns the next fencing token. Reservation failures fall back to
// burning the whole next block in memory — still strictly increasing within
// this process; the theoretical cross-restart reuse window requires the
// state directory itself to be failing.
func (f *fenceCounter) Next() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next >= f.reserved {
		if err := f.reserveLocked(); err != nil {
			f.reserved = f.next + fenceBlock
		}
	}
	t := f.next
	f.next++
	return t
}
