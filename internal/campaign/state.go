package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Persistence layout, under the engine's state directory:
//
//	<state>/<id>/spec.json     the manifest (atomic write at submit)
//	<state>/<id>/shard<K>.jsonl append-only journal of finished items
//	<state>/<id>/report.jsonl  the merged report; doubles as the done marker
//	<state>/corpus/...         the cross-campaign divergence corpus
//
// Journals are the crash-safety mechanism: one JSON line per finished item,
// appended after the item's record is complete. A kill can tear at most the
// final line; readJournal tolerates a torn tail and the engine compacts the
// journal on reopen, so a restarted daemon resumes from exactly the set of
// items whose lines were durably appended — never re-running a finished
// item, never trusting a torn one.

// journalEntry is one journal line: the item's manifest index, its merged-
// report line and, for diverging items, the divergence payload. Instrs is
// the item's retired-instruction count (the host-MIPS numerator), carried so
// a resumed or remotely-executed campaign keeps its throughput accounting.
// journalEntry doubles as the wire format worker entries stream back in
// (heartbeat/complete bodies).
type journalEntry struct {
	Index  int             `json:"i"`
	Line   json.RawMessage `json:"line"`
	Div    *Divergence     `json:"div,omitempty"`
	Instrs uint64          `json:"instrs,omitempty"`
}

// writeAtomic writes data to path via a same-directory temp file and rename,
// so readers never observe a partial file.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// readJournal parses a shard journal, stopping silently at the first
// malformed line (the torn tail of a kill mid-append). Duplicate indexes —
// an item that finished, was journaled, and re-ran after a crash that lost
// the in-memory state but not the line — keep the first occurrence; both
// occurrences are byte-identical anyway, by the determinism contract.
func readJournal(path string) ([]journalEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []journalEntry
	seen := make(map[int]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			break // torn tail: everything after is untrusted
		}
		if seen[e.Index] {
			continue
		}
		seen[e.Index] = true
		out = append(out, e)
	}
	if err := sc.Err(); err != nil && len(out) == 0 {
		return nil, err
	}
	return out, nil
}

// compactJournal rewrites a journal to exactly the given entries (dropping a
// torn tail and duplicates), atomically, so subsequent appends land on a
// well-formed file.
func compactJournal(path string, entries []journalEntry) error {
	if len(entries) == 0 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
		return nil
	}
	var buf bytes.Buffer
	for _, e := range entries {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return writeAtomic(path, buf.Bytes())
}

// journalWriter appends entries to a shard journal, one fsync-free write per
// entry (a killed process loses nothing already written; the page cache
// survives the process).
type journalWriter struct {
	f *os.File
}

func openJournal(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journalWriter{f: f}, nil
}

func (w *journalWriter) append(e journalEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("campaign: journal append: %w", err)
	}
	return nil
}

func (w *journalWriter) Close() error { return w.f.Close() }

// loadSpec reads a campaign's manifest.
func loadSpec(dir string) (*Spec, error) {
	b, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, err
	}
	spec := new(Spec)
	if err := json.Unmarshal(b, spec); err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", dir, err)
	}
	return spec, nil
}

// saveSpec writes a campaign's manifest atomically.
func saveSpec(dir string, spec *Spec) error {
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(dir, "spec.json"), append(b, '\n'))
}

func shardJournalPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", shard))
}

func reportPath(dir string) string { return filepath.Join(dir, "report.jsonl") }
