package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Corpus is the cross-campaign divergence corpus: shrunken reproducers
// deduplicated by divergence signature (compare kind + first diverging field
// + opcode class — see cosim.Result.Signature). The first repro of each
// signature is kept as a fixed-seed regression fixture, an assembly file
// runnable directly with `xtfuzz -repro`; later repros with the same
// signature are overwhelmingly the same root cause and are dropped.
type Corpus struct {
	dir string

	mu      sync.Mutex
	entries map[string]*CorpusEntry
}

// CorpusEntry is one deduplicated divergence class.
type CorpusEntry struct {
	Signature string `json:"signature"`
	Seed      int64  `json:"seed"` // first seed that exposed the class
	Kind      string `json:"kind"`
	Modes     string `json:"modes,omitempty"`
	Campaign  string `json:"campaign"` // campaign that first found it
	File      string `json:"file,omitempty"` // fixture filename (repro source present)
	Dups      int    `json:"dups"` // later repros folded into this entry
}

// OpenCorpus loads (or initializes) the corpus in dir.
func OpenCorpus(dir string) (*Corpus, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Corpus{dir: dir, entries: make(map[string]*CorpusEntry)}
	b, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	var list []*CorpusEntry
	if err := json.Unmarshal(b, &list); err != nil {
		return nil, fmt.Errorf("campaign: corpus index: %w", err)
	}
	for _, e := range list {
		c.entries[e.Signature] = e
	}
	return c, nil
}

// Add records a divergence under its signature. The first sighting of a
// signature creates a fixture and an index entry and returns true; repeats
// only bump the duplicate count. Divergences without a signature (timeouts
// have none) are ignored.
func (c *Corpus) Add(campaignID string, d *Divergence) (bool, error) {
	if d == nil || d.Signature == "" {
		return false, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[d.Signature]; ok {
		e.Dups++
		return false, c.saveIndexLocked()
	}
	e := &CorpusEntry{
		Signature: d.Signature,
		Seed:      d.Seed,
		Kind:      d.Kind,
		Modes:     d.Modes,
		Campaign:  campaignID,
	}
	if d.Shrunk != "" {
		e.File = fixtureName(d.Signature)
		if err := writeAtomic(filepath.Join(c.dir, e.File), []byte(fixtureSource(d))); err != nil {
			return false, err
		}
	}
	c.entries[d.Signature] = e
	return true, c.saveIndexLocked()
}

// Entries returns the corpus sorted by signature (a stable order for the API
// and for diffing state directories).
func (c *Corpus) Entries() []*CorpusEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*CorpusEntry, 0, len(c.entries))
	for _, e := range c.entries {
		cp := *e
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signature < out[j].Signature })
	return out
}

// Fixture returns the fixture source for a signature, when one exists.
func (c *Corpus) Fixture(sig string) (string, bool) {
	c.mu.Lock()
	e, ok := c.entries[sig]
	c.mu.Unlock()
	if !ok || e.File == "" {
		return "", false
	}
	b, err := os.ReadFile(filepath.Join(c.dir, e.File))
	if err != nil {
		return "", false
	}
	return string(b), true
}

func (c *Corpus) saveIndexLocked() error {
	list := make([]*CorpusEntry, 0, len(c.entries))
	for _, e := range c.entries {
		list = append(list, e)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Signature < list[j].Signature })
	b, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(c.dir, "index.json"), append(b, '\n'))
}

// fixtureName maps a signature to a filesystem-safe fixture filename.
func fixtureName(sig string) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, sig)
	return s + ".s"
}

// fixtureSource renders a regression fixture: the shrunken reproducer with a
// comment header the assembler skips (it accepts '#' comments), so the file
// runs unmodified under `xtfuzz -repro`.
func fixtureSource(d *Divergence) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# cosim regression fixture (auto-emitted by the campaign service)\n")
	fmt.Fprintf(&b, "# signature: %s\n", d.Signature)
	fmt.Fprintf(&b, "# seed: %d\n", d.Seed)
	if d.Modes != "" {
		fmt.Fprintf(&b, "# run: xtfuzz -modes %s -repro <this file>\n", d.Modes)
	} else {
		fmt.Fprintf(&b, "# run: xtfuzz -repro <this file>\n")
	}
	b.WriteString(d.Shrunk)
	if !strings.HasSuffix(d.Shrunk, "\n") {
		b.WriteByte('\n')
	}
	return b.String()
}
