package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xt910/internal/cliflags"
)

// waitStatus polls until the campaign reaches want (or fails the test).
func waitStatus(t *testing.T, e *Engine, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		s, ok := e.Get(id)
		if !ok {
			t.Fatalf("campaign %s vanished", id)
		}
		if s.Status == want {
			return s
		}
		if s.Status == StatusFailed && want != StatusFailed {
			t.Fatalf("campaign %s failed: %s", id, s.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s (want %s): %+v", id, s.Status, want, s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitItemsDone polls until at least n items have been journaled.
func waitItemsDone(t *testing.T, e *Engine, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		s, ok := e.Get(id)
		if !ok {
			t.Fatalf("campaign %s vanished", id)
		}
		if s.ItemsDone >= n {
			return
		}
		if s.Status == StatusFailed {
			t.Fatalf("campaign %s failed: %s", id, s.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck at %d items (want >= %d)", id, s.ItemsDone, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// gateRunner wraps the real runner but blocks every item after the first
// `allow` until the context dies — guaranteeing the engine is killed
// mid-shard with a known number of items journaled.
type gateRunner struct {
	inner Runner
	allow int

	mu sync.Mutex
	n  int
}

func (g *gateRunner) Run(ctx context.Context, spec *Spec, it Item) (ItemResult, error) {
	g.mu.Lock()
	idx := g.n
	g.n++
	g.mu.Unlock()
	if idx >= g.allow {
		<-ctx.Done()
		return ItemResult{}, ctx.Err()
	}
	return g.inner.Run(ctx, spec, it)
}

// runToReport submits the spec on a fresh engine over dir and returns the
// finished merged report.
func runToReport(t *testing.T, dir string, spec *Spec) []byte {
	t.Helper()
	e, err := Open(Options{StateDir: dir, Jobs: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	id, err := e.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitStatus(t, e, id, StatusDone)
	rep, err := e.Report(id)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	return rep
}

// TestResumeByteIdentical is the acceptance property: a campaign interrupted
// mid-shard (engine killed with items in flight) and resumed by a fresh
// engine over the same state dir produces a merged report byte-identical to
// an uninterrupted run — in the base profile and under -modes smp.
func TestResumeByteIdentical(t *testing.T) {
	specs := map[string]*Spec{
		"base": {Tool: "fuzz", Knobs: cliflags.Knobs{N: 6, Seed: 1}, Shards: 2, Segs: 10},
		"smp":  {Tool: "fuzz", Knobs: cliflags.Knobs{N: 4, Seed: 1, Modes: "smp"}, Shards: 2, Segs: 8},
	}
	for name, spec := range specs {
		spec := spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			straight := runToReport(t, t.TempDir(), spec)

			// Interrupted run: let 2 items finish, then drain mid-shard.
			dir := t.TempDir()
			e, err := Open(Options{StateDir: dir, Jobs: 2,
				Runner: &gateRunner{inner: toolRunner{}, allow: 2}})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			id, err := e.Submit(spec)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			waitItemsDone(t, e, id, 2)
			e.Close()

			if s, _ := e.Get(id); s.Status == StatusDone {
				t.Fatal("campaign finished before the interrupt; gate did not hold")
			}

			// Fresh engine over the same state dir: must resume, not restart.
			e2, err := Open(Options{StateDir: dir, Jobs: 3})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer e2.Close()
			s := waitStatus(t, e2, id, StatusDone)
			if s.ItemsDone != s.Items {
				t.Fatalf("resumed campaign incomplete: %d/%d", s.ItemsDone, s.Items)
			}
			resumed, err := e2.Report(id)
			if err != nil {
				t.Fatalf("report: %v", err)
			}
			if !bytes.Equal(straight, resumed) {
				t.Fatalf("resumed report differs from uninterrupted run\nstraight:\n%s\nresumed:\n%s",
					straight, resumed)
			}
		})
	}
}

// stubRunner synthesizes results without simulating: seeds in divSeeds
// "diverge" with the given signature.
type stubRunner struct {
	sigFor func(seed int64) string // "" = clean
}

func (s stubRunner) Run(ctx context.Context, spec *Spec, it Item) (ItemResult, error) {
	line, _ := json.Marshal(map[string]any{"seed": it.Seed, "status": "ok"})
	res := ItemResult{Line: line}
	if sig := s.sigFor(it.Seed); sig != "" {
		res.Div = &Divergence{
			Seed:      it.Seed,
			Signature: sig,
			Kind:      "xreg",
			Report:    fmt.Sprintf("divergence for seed %d", it.Seed),
			Shrunk:    fmt.Sprintf("_start:\n    li x5, %d\n    ebreak\n", it.Seed),
		}
	}
	return res, nil
}

// TestCorpusDedupBySignature: same-signature repros fold into one corpus
// entry (first seed wins, duplicates counted); distinct signatures get
// distinct entries and fixtures.
func TestCorpusDedupBySignature(t *testing.T) {
	dir := t.TempDir()
	sigs := map[int64]string{
		1: "xreg/x5/alu",
		3: "xreg/x5/alu", // same root cause as seed 1
		5: "mem/addr/store",
		7: "xreg/x5/alu", // and again
	}
	e, err := Open(Options{StateDir: dir, Jobs: 2,
		Runner: stubRunner{sigFor: func(seed int64) string { return sigs[seed] }}})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	id, err := e.Submit(&Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 8, Seed: 1}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s := waitStatus(t, e, id, StatusDone)
	if s.Divergences != 4 {
		t.Fatalf("campaign saw %d divergences, want 4", s.Divergences)
	}

	entries := e.Corpus().Entries()
	if len(entries) != 2 {
		t.Fatalf("corpus holds %d entries, want 2 (deduped from 4 divergences): %+v", len(entries), entries)
	}
	bySig := map[string]*CorpusEntry{}
	for _, en := range entries {
		bySig[en.Signature] = en
	}
	alu := bySig["xreg/x5/alu"]
	if alu == nil || alu.Seed != 1 || alu.Dups != 2 {
		t.Fatalf("xreg/x5/alu entry wrong (want first seed 1, 2 dups): %+v", alu)
	}
	mem := bySig["mem/addr/store"]
	if mem == nil || mem.Seed != 5 || mem.Dups != 0 {
		t.Fatalf("mem/addr/store entry wrong: %+v", mem)
	}

	// Fixtures are runnable assembly with the provenance header.
	src, ok := e.Corpus().Fixture("xreg/x5/alu")
	if !ok {
		t.Fatal("no fixture for xreg/x5/alu")
	}
	for _, want := range []string{"# signature: xreg/x5/alu", "# seed: 1", "li x5, 1"} {
		if !bytes.Contains([]byte(src), []byte(want)) {
			t.Fatalf("fixture missing %q:\n%s", want, src)
		}
	}

	// The corpus survives a restart and stays deduplicated.
	e.Close()
	e2, err := Open(Options{StateDir: dir, Jobs: 1,
		Runner: stubRunner{sigFor: func(int64) string { return "" }}})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer e2.Close()
	if got := len(e2.Corpus().Entries()); got != 2 {
		t.Fatalf("corpus reloaded with %d entries, want 2", got)
	}
}

func TestJournalTornTailAndDuplicates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard0.jsonl")
	good1, _ := json.Marshal(journalEntry{Index: 0, Line: json.RawMessage(`{"seed":1}`)})
	good2, _ := json.Marshal(journalEntry{Index: 1, Line: json.RawMessage(`{"seed":2}`)})
	dup, _ := json.Marshal(journalEntry{Index: 0, Line: json.RawMessage(`{"seed":1}`)})
	content := append(append(append(append([]byte{}, good1...), '\n'), good2...), '\n')
	content = append(content, dup...)
	content = append(content, '\n')
	content = append(content, []byte(`{"i":2,"line":{"se`)...) // torn tail
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := readJournal(path)
	if err != nil {
		t.Fatalf("readJournal: %v", err)
	}
	if len(entries) != 2 || entries[0].Index != 0 || entries[1].Index != 1 {
		t.Fatalf("want entries [0 1], got %+v", entries)
	}
	// Compaction rewrites a well-formed journal.
	if err := compactJournal(path, entries); err != nil {
		t.Fatalf("compact: %v", err)
	}
	again, err := readJournal(path)
	if err != nil || len(again) != 2 {
		t.Fatalf("compacted journal unreadable: %v %+v", err, again)
	}
}

func TestShardItemsPartition(t *testing.T) {
	spec := &Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 11, Seed: 100}, Shards: 3}
	shards := spec.ShardItems()
	if len(shards) != 3 {
		t.Fatalf("want 3 shards, got %d", len(shards))
	}
	var flat []Item
	for _, sh := range shards {
		flat = append(flat, sh...)
	}
	items := spec.Items()
	if len(flat) != len(items) {
		t.Fatalf("shards cover %d items, want %d", len(flat), len(items))
	}
	for i := range items {
		if flat[i] != items[i] {
			t.Fatalf("shard concatenation reorders item %d: %+v != %+v", i, flat[i], items[i])
		}
	}
	for _, sh := range shards {
		if len(sh) < 3 || len(sh) > 4 {
			t.Fatalf("uneven shard sizes: %d", len(sh))
		}
	}
	// More shards than items degrades gracefully.
	tiny := &Spec{Tool: "fuzz", Knobs: cliflags.Knobs{N: 2, Seed: 1}, Shards: 8}
	if got := tiny.ShardItems(); len(got) != 2 {
		t.Fatalf("2 items across 8 shards: want 2 shards, got %d", len(got))
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []*Spec{
		{Tool: "nope"},
		{Tool: "fuzz"},                                                  // n == 0
		{Tool: "fuzz", Knobs: cliflags.Knobs{N: 1, Modes: "warp"}},      // bad mode
		{Tool: "fuzz", Knobs: cliflags.Knobs{N: 1, Modes: "paged,smp"}}, // illegal combo
		{Tool: "bench", Experiments: []string{"no-such-exp"}},
		{Tool: "fuzz", Knobs: cliflags.Knobs{N: 1}, Shards: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, s)
		}
	}
	good := []*Spec{
		{Tool: "fuzz", Knobs: cliflags.Knobs{N: 1}},
		{Tool: "inject", Knobs: cliflags.Knobs{N: 1}},
		{Tool: "bench"},
		{Tool: "bench", Experiments: []string{"table1", "table2"}},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Fatalf("good spec %d rejected: %v", i, err)
		}
	}
}
